// Matching runs the randomized CRCW maximal-matching kernel (after the
// paper's reference [23]) on a generated graph: a two-level arbitrary
// concurrent write per round — heads race on tails' proposal slots, then
// tails race on heads' acceptance slots — all guarded by CAS-LT with zero
// per-round re-initialization.
//
// Run:
//
//	go run ./examples/matching [-n 20000] [-m 60000] [-threads 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"crcwpram/internal/alg/matching"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

func main() {
	n := flag.Int("n", 20000, "vertices")
	m := flag.Int("m", 60000, "edges")
	threads := flag.Int("threads", 4, "worker count")
	seed := flag.Int64("seed", 42, "graph seed")
	flag.Parse()

	g := graph.RandomUndirected(*n, *m, *seed)
	fmt.Println("graph:", graph.ComputeStats(g))

	mach := machine.New(*threads)
	defer mach.Close()
	k := matching.NewKernel(mach, g)

	greedy := matching.SequentialGreedy(g)
	fmt.Printf("sequential greedy matching: %d pairs\n", greedy.Size())

	for trial := uint64(1); trial <= 3; trial++ {
		k.Prepare()
		start := time.Now()
		r := k.Run(trial)
		elapsed := time.Since(start)
		if err := matching.Validate(g, r); err != nil {
			log.Fatalf("trial %d: %v", trial, err)
		}
		fmt.Printf("parallel run (seed %d): %d pairs in %d rounds, %v — valid & maximal\n",
			trial, r.Size(), r.Iterations, elapsed.Round(10*time.Microsecond))
	}
}
