// Quickstart: the smallest complete use of the public API.
//
// N*W virtual processors perform an arbitrary concurrent write: W writers
// race on each of N cells, each trying to commit its own id. CAS-LT picks
// exactly one winner per cell per round; everyone else skips the write.
// A second round then overwrites half the cells — with no re-initialization
// of any auxiliary state, because advancing the round id is all CAS-LT
// needs (the paper's key property).
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crcwpram/pram"
)

func main() {
	const (
		n       = 8 // concurrent-write targets
		writers = 4 // competing writers per target
		workers = 4 // physical workers
	)

	m := pram.NewMachine(workers)
	defer m.Close()

	cells := pram.NewCellArray(n, pram.Packed)
	data := make([]int, n)

	// Round 1: every target is written by `writers` virtual processors,
	// each offering a different value — an arbitrary concurrent write.
	round := m.NextRound()
	m.ParallelFor(n*writers, func(i int) {
		target := i % n
		if cells.TryClaim(target, round) {
			data[target] = i // winner's value; losers skip
		}
	})
	// The ParallelFor's implicit barrier is the synchronization point the
	// paper requires before dependent reads.
	fmt.Println("after round 1:")
	for i, v := range data {
		if v%n != i {
			log.Fatalf("cell %d holds %d — not one of its writers' values", i, v)
		}
		fmt.Printf("  data[%d] = %d (writer %d of %d won)\n", i, v, v/n, writers)
	}

	// Round 2: rewrite the even cells. No gatekeeper-style reset pass —
	// just a new round id.
	round = m.NextRound()
	m.ParallelFor(n/2*writers, func(i int) {
		target := (i % (n / 2)) * 2
		if cells.TryClaim(target, round) {
			data[target] = -1
		}
	})
	fmt.Println("after round 2 (even cells rewritten, zero re-initialization):")
	for i, v := range data {
		fmt.Printf("  data[%d] = %d\n", i, v)
		if i%2 == 0 && v != -1 {
			log.Fatalf("cell %d not rewritten", i)
		}
	}
}
