// Maxfind runs the paper's constant-time maximum kernel (Figure 4) with
// every concurrent-write method and reports times and speedups — a
// miniature of the paper's Figures 5 and 6.
//
// Run:
//
//	go run ./examples/maxfind [-n 4096] [-threads 4] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"crcwpram/internal/alg/maxfind"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/stats"
)

func main() {
	n := flag.Int("n", 4096, "list size (the kernel does n^2 comparisons)")
	threads := flag.Int("threads", 4, "worker count")
	reps := flag.Int("reps", 3, "repetitions per method (median reported)")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	list := make([]uint32, *n)
	for i := range list {
		list[i] = rng.Uint32()
	}
	want := maxfind.Sequential(list)
	fmt.Printf("list of %d elements; true maximum list[%d] = %d\n\n", *n, want, list[want])

	m := machine.New(*threads)
	defer m.Close()
	k := maxfind.NewKernel(m, *n)

	methods := []cw.Method{cw.Naive, cw.Gatekeeper, cw.GatekeeperChecked, cw.CASLT, cw.Mutex}
	medians := map[cw.Method]time.Duration{}
	for _, method := range methods {
		var s stats.Sample
		for r := 0; r < *reps; r++ {
			k.Prepare(list) // untimed initialization, as in the paper
			start := time.Now()
			got := k.Run(method)
			s.Add(time.Since(start))
			if got != want {
				log.Fatalf("%v returned %d, want %d", method, got, want)
			}
		}
		medians[method] = s.Median()
		fmt.Printf("%-19s %12s\n", method, stats.FormatDuration(s.Median()))
	}

	fmt.Println("\nspeedup vs naive (the paper's Figure 5 comparison):")
	for _, method := range methods {
		if method == cw.Naive {
			continue
		}
		fmt.Printf("%-19s %8s\n", method, stats.FormatRatio(stats.Speedup(medians[cw.Naive], medians[method])))
	}

	// The work-efficient comparisons the paper's conclusion motivates.
	fmt.Println("\nwork-efficient algorithms (same result, W(N) instead of W(N^2)):")
	for _, alt := range []struct {
		name string
		run  func() int
	}{
		{"tournament (EREW)", func() int { return maxfind.TournamentMax(m, list) }},
		{"reduction (priority CW)", func() int { return maxfind.ReduceMax(m, list) }},
		{"doubly-log (CRCW)", func() int { return maxfind.DoublyLogMax(m, list) }},
	} {
		start := time.Now()
		got := alt.run()
		d := time.Since(start)
		if got != want {
			log.Fatalf("%s returned %d, want %d", alt.name, got, want)
		}
		fmt.Printf("%-26s %12s\n", alt.name, stats.FormatDuration(d))
	}
}
