// CC runs the Awerbuch-Shiloach connected-components kernel — the paper's
// arbitrary-CW benchmark — on a generated random graph, validates the
// labelling and the spanning forest recovered from the hook records, and
// reports times — a miniature of the paper's Figures 10-12. The naive
// method is deliberately absent: the hooking write updates multiple arrays
// and is unsafe without winner selection (the paper, Section 7).
//
// Run:
//
//	go run ./examples/cc [-n 20000] [-m 100000] [-threads 4] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"crcwpram/internal/alg/cc"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/stats"
)

func main() {
	n := flag.Int("n", 20000, "vertices")
	m := flag.Int("m", 100000, "edges")
	threads := flag.Int("threads", 4, "worker count")
	reps := flag.Int("reps", 3, "repetitions per method (median reported)")
	seed := flag.Int64("seed", 42, "graph seed")
	flag.Parse()

	g := graph.RandomUndirected(*n, *m, *seed)
	st := graph.ComputeStats(g)
	fmt.Println("graph:", st)

	mach := machine.New(*threads)
	defer mach.Close()
	k := cc.NewKernel(mach, g)

	methods := []cw.Method{cw.Gatekeeper, cw.GatekeeperChecked, cw.CASLT, cw.Mutex}
	medians := map[cw.Method]time.Duration{}
	for _, method := range methods {
		var s stats.Sample
		var iters int
		for r := 0; r < *reps; r++ {
			k.Prepare()
			start := time.Now()
			res := k.Run(method)
			s.Add(time.Since(start))
			iters = res.Iterations
			if err := cc.Validate(g, res); err != nil {
				log.Fatalf("%v: %v", method, err)
			}
		}
		medians[method] = s.Median()
		fmt.Printf("%-19s %12s  (%d iterations, %d components)\n",
			method, stats.FormatDuration(s.Median()), iters, st.Components)
	}

	fmt.Println("\nspeedup vs gatekeeper (the paper's Figure 10 comparison):")
	for _, method := range methods {
		if method == cw.Gatekeeper {
			continue
		}
		fmt.Printf("%-19s %8s\n", method, stats.FormatRatio(stats.Speedup(medians[cw.Gatekeeper], medians[method])))
	}

	// The hook records double as a spanning forest — count its edges.
	k.Prepare()
	res := k.RunCASLT()
	hooks := 0
	for _, e := range res.HookEdge {
		if e != cc.NoHook {
			hooks++
		}
	}
	fmt.Printf("\nspanning forest from hook records: %d edges = %d vertices - %d components\n",
		hooks, g.NumVertices(), st.Components)
}
