// BFS runs the paper's Rodinia-style breadth-first search (Figure 3) on a
// generated random graph with every safe concurrent-write method, checks
// every result against the sequential baseline, and reports times — a
// miniature of the paper's Figures 7-9.
//
// Run:
//
//	go run ./examples/bfs [-n 20000] [-m 200000] [-threads 4] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/stats"
)

func main() {
	n := flag.Int("n", 20000, "vertices")
	m := flag.Int("m", 200000, "edges")
	threads := flag.Int("threads", 4, "worker count")
	reps := flag.Int("reps", 3, "repetitions per method (median reported)")
	seed := flag.Int64("seed", 42, "graph seed")
	flag.Parse()

	g := graph.ConnectedRandom(*n, *m, *seed)
	fmt.Println("graph:", graph.ComputeStats(g))

	mach := machine.New(*threads)
	defer mach.Close()
	k := bfs.NewKernel(mach, g)

	seq := bfs.Sequential(g, 0)
	fmt.Printf("BFS from vertex 0: depth %d\n\n", seq.Depth)

	methods := []cw.Method{cw.Naive, cw.Gatekeeper, cw.GatekeeperChecked, cw.CASLT, cw.Mutex}
	medians := map[cw.Method]time.Duration{}
	for _, method := range methods {
		var s stats.Sample
		for r := 0; r < *reps; r++ {
			k.Prepare(0)
			start := time.Now()
			res := k.Run(method)
			s.Add(time.Since(start))
			if err := bfs.Validate(g, 0, res, method.SafeForArbitrary()); err != nil {
				log.Fatalf("%v: %v", method, err)
			}
		}
		medians[method] = s.Median()
		fmt.Printf("%-19s %12s\n", method, stats.FormatDuration(s.Median()))
	}

	fmt.Println("\nspeedup vs naive (Rodinia's approach — the paper's Figure 7 comparison):")
	for _, method := range methods {
		if method == cw.Naive {
			continue
		}
		fmt.Printf("%-19s %8s\n", method, stats.FormatRatio(stats.Speedup(medians[cw.Naive], medians[method])))
	}
}
