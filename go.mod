module crcwpram

go 1.24
