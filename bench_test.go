// Package crcwpram_test holds the repository's top-level benchmark suite:
// one testing.B family per paper figure (5 through 12) plus the ablation
// benchmarks called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks time exactly what the paper times — the kernel run,
// with initialization (Prepare) outside the timer. Sizes are scaled to a
// small machine; the cmd/crcwbench binary runs the full paper-style sweeps
// (including -paper sizes) with table output.
package crcwpram_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/alg/listrank"
	"crcwpram/internal/alg/matching"
	"crcwpram/internal/alg/maxfind"
	"crcwpram/internal/alg/mis"
	"crcwpram/internal/barrier"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/sched"
)

const benchThreads = 4

var figMethods = []cw.Method{cw.Naive, cw.Gatekeeper, cw.CASLT}
var ccBenchMethods = []cw.Method{cw.Gatekeeper, cw.CASLT}

func randList(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	l := make([]uint32, n)
	for i := range l {
		l[i] = rng.Uint32()
	}
	return l
}

// BenchmarkFig05MaxBySize: constant-time maximum, time vs list size
// (paper Figure 5).
func BenchmarkFig05MaxBySize(b *testing.B) {
	for _, method := range figMethods {
		for _, n := range []int{512, 1024, 2048} {
			b.Run(fmt.Sprintf("%s/N=%d", method, n), func(b *testing.B) {
				m := machine.New(benchThreads)
				defer m.Close()
				k := maxfind.NewKernel(m, n)
				list := randList(n, int64(n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					k.Prepare(list)
					b.StartTimer()
					k.Run(method)
				}
			})
		}
	}
}

// BenchmarkFig06MaxByThreads: constant-time maximum, time vs thread count
// at fixed N (paper Figure 6, N=60K there).
func BenchmarkFig06MaxByThreads(b *testing.B) {
	const n = 2048
	list := randList(n, 6)
	for _, method := range figMethods {
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/p=%d", method, p), func(b *testing.B) {
				m := machine.New(p)
				defer m.Close()
				k := maxfind.NewKernel(m, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					k.Prepare(list)
					b.StartTimer()
					k.Run(method)
				}
			})
		}
	}
}

func benchBFS(b *testing.B, nv, ne, threads int, method cw.Method) {
	g := graph.ConnectedRandom(nv, ne, 7)
	m := machine.New(threads)
	defer m.Close()
	k := bfs.NewKernel(m, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k.Prepare(0)
		b.StartTimer()
		k.Run(method)
	}
}

// BenchmarkFig07BFSByEdges: BFS, time vs edge count (paper Figure 7:
// 100K vertices, 1M-30M edges, 32 threads).
func BenchmarkFig07BFSByEdges(b *testing.B) {
	for _, method := range figMethods {
		for _, ne := range []int{50000, 100000, 200000} {
			b.Run(fmt.Sprintf("%s/m=%d", method, ne), func(b *testing.B) {
				benchBFS(b, 10000, ne, benchThreads, method)
			})
		}
	}
}

// BenchmarkFig08BFSByVertices: BFS, time vs vertex count at fixed edges
// (paper Figure 8: 30M edges).
func BenchmarkFig08BFSByVertices(b *testing.B) {
	for _, method := range figMethods {
		for _, nv := range []int{5000, 10000, 20000} {
			b.Run(fmt.Sprintf("%s/n=%d", method, nv), func(b *testing.B) {
				benchBFS(b, nv, 100000, benchThreads, method)
			})
		}
	}
}

// BenchmarkFig09BFSByThreads: BFS, time vs thread count (paper Figure 9).
func BenchmarkFig09BFSByThreads(b *testing.B) {
	for _, method := range figMethods {
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/p=%d", method, p), func(b *testing.B) {
				benchBFS(b, 10000, 100000, p, method)
			})
		}
	}
}

func benchCC(b *testing.B, nv, ne, threads int, method cw.Method) {
	g := graph.RandomUndirected(nv, ne, 9)
	m := machine.New(threads)
	defer m.Close()
	k := cc.NewKernel(m, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k.Prepare()
		b.StartTimer()
		k.Run(method)
	}
}

// BenchmarkFig10CCByEdges: connected components, time vs edge count
// (paper Figure 10). No naive series: unsafe for the multi-array
// arbitrary hooking write.
func BenchmarkFig10CCByEdges(b *testing.B) {
	for _, method := range ccBenchMethods {
		for _, ne := range []int{50000, 100000, 200000} {
			b.Run(fmt.Sprintf("%s/m=%d", method, ne), func(b *testing.B) {
				benchCC(b, 10000, ne, benchThreads, method)
			})
		}
	}
}

// BenchmarkFig11CCByVertices: connected components, time vs vertex count
// (paper Figure 11).
func BenchmarkFig11CCByVertices(b *testing.B) {
	for _, method := range ccBenchMethods {
		for _, nv := range []int{5000, 10000, 20000} {
			b.Run(fmt.Sprintf("%s/n=%d", method, nv), func(b *testing.B) {
				benchCC(b, nv, 100000, benchThreads, method)
			})
		}
	}
}

// BenchmarkFig12CCByThreads: connected components, time vs thread count
// (paper Figure 12).
func BenchmarkFig12CCByThreads(b *testing.B) {
	for _, method := range ccBenchMethods {
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/p=%d", method, p), func(b *testing.B) {
				benchCC(b, 10000, 100000, p, method)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md Section 5)
// ---------------------------------------------------------------------------

// BenchmarkAblationCASLTPrecheck quantifies what the line-6 load pre-check
// saves versus always executing the CAS, and what the retry loop costs, on
// a fully contended cell.
func BenchmarkAblationCASLTPrecheck(b *testing.B) {
	variants := map[string]func(c *cw.Cell, r uint32) bool{
		"precheck": func(c *cw.Cell, r uint32) bool { return c.TryClaim(r) },
		"nocheck":  func(c *cw.Cell, r uint32) bool { return c.TryClaimNoCheck(r) },
		"retry":    func(c *cw.Cell, r uint32) bool { return c.Claim(r) },
	}
	for name, try := range variants {
		for _, writers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/w=%d", name, writers), func(b *testing.B) {
				var c cw.Cell
				var wg sync.WaitGroup
				rounds := b.N
				b.ResetTimer()
				wg.Add(writers)
				for w := 0; w < writers; w++ {
					go func() {
						defer wg.Done()
						for r := 1; r <= rounds; r++ {
							try(&c, uint32(r))
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkAblationGatekeeperCheck measures the paper's suggested
// mitigation: skipping the fetch-and-add once the gatekeeper is non-zero.
func BenchmarkAblationGatekeeperCheck(b *testing.B) {
	for _, checked := range []bool{false, true} {
		name := "plain"
		if checked {
			name = "checked"
		}
		for _, writers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/w=%d", name, writers), func(b *testing.B) {
				var g cw.Gate
				var wg sync.WaitGroup
				rounds := b.N
				b.ResetTimer()
				wg.Add(writers)
				for w := 0; w < writers; w++ {
					go func() {
						defer wg.Done()
						for r := 0; r < rounds; r++ {
							if checked {
								g.TryEnterChecked()
							} else {
								g.TryEnter()
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkAblationGateReset isolates the O(N) re-initialization pass the
// gatekeeper method pays between rounds and CAS-LT does not.
func BenchmarkAblationGateReset(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := cw.NewGateArray(n, cw.Packed)
			m := machine.New(benchThreads)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ParallelRange(n, func(lo, hi, _ int) { g.ResetRange(lo, hi) })
			}
		})
	}
}

// BenchmarkAblationPadding compares packed vs cache-line-padded cell
// arrays under neighbouring-cell claims (false sharing).
func BenchmarkAblationPadding(b *testing.B) {
	for _, layout := range []cw.Layout{cw.Packed, cw.PaddedLayout} {
		b.Run(layout.String(), func(b *testing.B) {
			const cells = 16
			a := cw.NewArray(cells, layout)
			var wg sync.WaitGroup
			rounds := b.N
			b.ResetTimer()
			wg.Add(cells)
			for w := 0; w < cells; w++ {
				w := w
				go func() {
					defer wg.Done()
					for r := 1; r <= rounds; r++ {
						a.TryClaim(w, uint32(r)) // distinct cells: pure layout effect
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkAblationMutex prices the "trivial but bad" critical-section CW
// against CAS-LT on the maximum kernel.
func BenchmarkAblationMutex(b *testing.B) {
	const n = 1024
	list := randList(n, 11)
	for _, method := range []cw.Method{cw.CASLT, cw.Mutex} {
		b.Run(method.String(), func(b *testing.B) {
			m := machine.New(benchThreads)
			defer m.Close()
			k := maxfind.NewKernel(m, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				k.Prepare(list)
				b.StartTimer()
				k.Run(method)
			}
		})
	}
}

// BenchmarkAblationBarrier compares barrier constructions under the
// machine (per-round synchronization cost).
func BenchmarkAblationBarrier(b *testing.B) {
	for _, kind := range barrier.Kinds {
		for _, p := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/p=%d", kind, p), func(b *testing.B) {
				m := machine.New(p, machine.WithBarrier(kind))
				defer m.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.ParallelFor(p, func(int) {})
				}
			})
		}
	}
}

// BenchmarkExtensionMaxWorkDepth is the comparison the paper's conclusion
// proposes: EREW/CREW algorithms "currently in use" against CRCW
// algorithms with better work-depth bounds, on the maximum problem.
// Sequential scan W(N); tournament (EREW) W(N) D(log N); reduction
// (priority CW) W(N) D(N/P); doubly-log (CRCW) W(N log log N)
// D(log log N); and the paper's constant-time CRCW kernel W(N^2) D(1).
func BenchmarkExtensionMaxWorkDepth(b *testing.B) {
	const n = 4096
	list := randList(n, 13)
	m := machine.New(benchThreads)
	defer m.Close()
	k := maxfind.NewKernel(m, n)
	algos := []struct {
		name string
		run  func() int
	}{
		{"sequential", func() int { return maxfind.Sequential(list) }},
		{"tournament-erew", func() int { return maxfind.TournamentMax(m, list) }},
		{"reduction-priority", func() int { return maxfind.ReduceMax(m, list) }},
		{"doubly-log-crcw", func() int { return maxfind.DoublyLogMax(m, list) }},
		{"constant-time-crcw", func() int {
			k.Prepare(list)
			return k.RunCASLT()
		}},
	}
	want := maxfind.Sequential(list)
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if a.run() != want {
					b.Fatal("wrong maximum")
				}
			}
		})
	}
}

// BenchmarkExtensionMISMethods compares the concurrent-write methods on a
// fourth kernel, Luby's maximal independent set, whose per-round
// neighbourhood-kill writes are common CWs like the maximum kernel's.
func BenchmarkExtensionMISMethods(b *testing.B) {
	g := graph.RandomUndirected(10000, 100000, 21)
	for _, method := range []cw.Method{cw.Naive, cw.Gatekeeper, cw.CASLT, cw.Mutex} {
		b.Run(method.String(), func(b *testing.B) {
			m := machine.New(benchThreads)
			defer m.Close()
			k := mis.NewKernel(m, g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				k.Prepare()
				b.StartTimer()
				k.Run(method, uint64(i))
			}
		})
	}
}

// BenchmarkExtensionMatching measures the two-level arbitrary-CW maximal
// matching against its greedy sequential baseline.
func BenchmarkExtensionMatching(b *testing.B) {
	g := graph.RandomUndirected(10000, 50000, 23)
	b.Run("greedy-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.SequentialGreedy(g)
		}
	})
	b.Run("parallel-caslt", func(b *testing.B) {
		m := machine.New(benchThreads)
		defer m.Close()
		k := matching.NewKernel(m, g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			k.Prepare()
			b.StartTimer()
			k.Run(uint64(i))
		}
	})
}

// BenchmarkExtensionListRank measures Wyllie's EREW list ranking (the
// machine's non-CW workload) against its sequential baseline.
func BenchmarkExtensionListRank(b *testing.B) {
	const n = 1 << 15
	next := listrank.RandomList(n, 3)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			listrank.SequentialRank(next)
		}
	})
	b.Run("wyllie", func(b *testing.B) {
		m := machine.New(benchThreads)
		defer m.Close()
		for i := 0; i < b.N; i++ {
			listrank.Rank(m, next)
		}
	})
}

// BenchmarkAblationBFSFrontier compares the paper's full-sweep BFS
// formulation (Figure 3: scan all N vertices per level) against the
// frontier-compacted refinement, both under CAS-LT, on a deep path where
// the sweep pays Θ(N) per level and on a shallow random graph where both
// are comparable.
func BenchmarkAblationBFSFrontier(b *testing.B) {
	graphs := map[string]*graph.Graph{
		"path-2k":    graph.Path(2000),
		"random-10k": graph.ConnectedRandom(10000, 100000, 3),
	}
	for name, g := range graphs {
		for _, variant := range []string{"sweep", "frontier"} {
			b.Run(name+"/"+variant, func(b *testing.B) {
				m := machine.New(benchThreads)
				defer m.Close()
				k := bfs.NewKernel(m, g)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					k.Prepare(0)
					b.StartTimer()
					if variant == "sweep" {
						k.RunCASLT()
					} else {
						k.RunCASLTFrontier()
					}
				}
			})
		}
	}
}

// BenchmarkAblationScheduler compares loop partitioning policies on a
// uniform body.
func BenchmarkAblationScheduler(b *testing.B) {
	const n = 1 << 16
	for _, policy := range sched.Policies {
		b.Run(policy.String(), func(b *testing.B) {
			m := machine.New(benchThreads, machine.WithPolicy(policy), machine.WithChunk(512))
			defer m.Close()
			sink := make([]uint32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ParallelFor(n, func(j int) { sink[j]++ })
			}
		})
	}
}
