package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crcwpram/internal/race"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// capture redirects the process stdout around f. The CLI writes through
// os.Stdout directly, so tests swap the file descriptor.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		var sb strings.Builder
		b := make([]byte, 64*1024)
		for {
			n, err := r.Read(b)
			sb.Write(b[:n])
			if err != nil {
				break
			}
		}
		outCh <- sb.String()
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	return <-outCh, runErr
}

func TestRunSingleFigureTiny(t *testing.T) {
	if race.Enabled {
		t.Skip("figure 5's paper method set includes the intentionally racy naive variant")
	}
	out, err := capture(t, func() error { return run([]string{"-tiny", "-figure", "5"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig5", "naive", "gatekeeper", "caslt", "geomean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fig6") {
		t.Fatal("-figure 5 also ran figure 6")
	}
}

func TestRunAllFiguresTiny(t *testing.T) {
	args := []string{"-tiny", "-reps", "1"}
	if race.Enabled {
		args = append(args, "-methods", "gatekeeper,caslt")
	}
	out, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		if !strings.Contains(out, fig) {
			t.Fatalf("output missing %s", fig)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	_, err := capture(t, func() error {
		return run([]string{"-tiny", "-figure", "10", "-csv", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "figure,") || !strings.Contains(text, "fig10") {
		t.Fatalf("csv content wrong:\n%s", text)
	}
	if strings.Contains(text, "naive") {
		t.Fatal("CC csv contains naive series")
	}
}

func TestRunMethodFilter(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-tiny", "-figure", "5", "-methods", "caslt,mutex"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "caslt") || !strings.Contains(out, "mutex") {
		t.Fatalf("filtered methods missing:\n%s", out)
	}
	if strings.Contains(out, "gatekeeper") {
		t.Fatal("filtered-out method present")
	}
}

func TestRunExecAxisJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	out, err := capture(t, func() error {
		return run([]string{"-tiny", "-figure", "7", "-exec", "pool,team",
			"-methods", "caslt", "-reps", "1", "-json", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pool exec") || !strings.Contains(out, "team exec") {
		t.Fatalf("expected one fig7 table per exec mode:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Bench  string  `json:"bench"`
		Figure string  `json:"figure"`
		Kernel string  `json:"kernel"`
		Method string  `json:"method"`
		Exec   string  `json:"exec"`
		NsOp   float64 `json:"ns_op"`
	}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("json output unparsable: %v\n%s", err, data)
	}
	execs := map[string]int{}
	for _, r := range rows {
		if r.Bench != "figure" || r.Figure != "fig7" || r.Kernel != "bfs" || r.Method != "caslt" {
			t.Fatalf("unexpected row identity: %+v", r)
		}
		if r.NsOp <= 0 {
			t.Fatalf("non-positive ns_op: %+v", r)
		}
		execs[r.Exec]++
	}
	if execs["pool"] == 0 || execs["team"] == 0 || execs["pool"] != execs["team"] {
		t.Fatalf("want equal pool and team row counts, got %v", execs)
	}
}

func TestRunRoundOverhead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	out, err := capture(t, func() error {
		return run([]string{"-tiny", "-roundoverhead", "-reps", "1", "-json", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"roundoverhead", "pool/team"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fig5") {
		t.Fatal("-roundoverhead without -figure ran the figure sweep")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Bench   string  `json:"bench"`
		Exec    string  `json:"exec"`
		Threads int     `json:"threads"`
		NsOp    float64 `json:"ns_op"`
	}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("json output unparsable: %v\n%s", err, data)
	}
	if len(rows) == 0 {
		t.Fatal("no roundoverhead rows in json")
	}
	for _, r := range rows {
		if r.Bench != "roundoverhead" || r.Threads <= 0 || r.NsOp <= 0 {
			t.Fatalf("bad roundoverhead row: %+v", r)
		}
	}
}

func TestRunEdgeBalance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eb.json")
	out, err := capture(t, func() error {
		return run([]string{"-tiny", "-edgebalance", "-reps", "1", "-json", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"edgebalance", "bfs-hybrid", "bfs-pull", "imbal", "skew"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fig5") {
		t.Fatal("-edgebalance without -figure ran the figure sweep")
	}
	// The emitted file must pass the CLI's own validator.
	vout, err := capture(t, func() error {
		return run([]string{"-validatejson", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vout, "rows ok") {
		t.Fatalf("validatejson output wrong:\n%s", vout)
	}
}

func TestRunStealingSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "steal.json")
	out, err := capture(t, func() error {
		return run([]string{"-tiny", "-stealing", "-reps", "1", "-json", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stealing", "guided", "crit", "local"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fig5") {
		t.Fatal("-stealing without -figure ran the figure sweep")
	}
	// The emitted file must pass the CLI's own validator.
	vout, err := capture(t, func() error {
		return run([]string{"-validatejson", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vout, "rows ok") {
		t.Fatalf("validatejson output wrong:\n%s", vout)
	}
}

func TestRunLocalitySweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loc.json")
	out, err := capture(t, func() error {
		return run([]string{"-tiny", "-locality", "-relabel", "none,degree", "-reps", "1", "-json", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"locality", "relabel=none", "relabel=degree", "bfs-pull", "bitmap", "ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "relabel=bfs") {
		t.Fatal("-relabel none,degree also ran the bfs mode")
	}
	if strings.Contains(out, "fig5") {
		t.Fatal("-locality without -figure ran the figure sweep")
	}
	// The emitted file must pass the CLI's own validator.
	vout, err := capture(t, func() error {
		return run([]string{"-validatejson", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vout, "rows ok") {
		t.Fatalf("validatejson output wrong:\n%s", vout)
	}
}

func TestRunPolicyFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pol.json")
	_, err := capture(t, func() error {
		return run([]string{"-tiny", "-figure", "5", "-policy", "stealing",
			"-methods", "caslt", "-reps", "1", "-json", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Bench  string `json:"bench"`
		Policy string `json:"policy"`
	}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("json output unparsable: %v\n%s", err, data)
	}
	if len(rows) == 0 {
		t.Fatal("no figure rows in json")
	}
	for _, r := range rows {
		if r.Bench != "figure" || r.Policy != "stealing" {
			t.Fatalf("figure row does not carry the requested policy: %+v", r)
		}
	}
	// Figure rows run uninstrumented machines, so the validator must accept
	// a stealing-policy figure row without deque counters.
	if _, err := capture(t, func() error { return run([]string{"-validatejson", path}) }); err != nil {
		t.Fatalf("stealing-policy figure rows rejected: %v", err)
	}
}

func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	_, err := capture(t, func() error {
		return run([]string{"-tiny", "-figure", "5", "-methods", "caslt", "-reps", "1",
			"-cpuprofile", cpu, "-memprofile", mem})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s: empty profile", p)
		}
	}
}

func TestRunBalanceAxis(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-tiny", "-figure", "7", "-balance", "vertex,edge",
			"-methods", "caslt", "-reps", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vertex balance") || !strings.Contains(out, "edge balance") {
		t.Fatalf("expected one fig7 table per balance policy:\n%s", out)
	}
	// A non-BFS figure runs once, under the first policy only.
	out, err = capture(t, func() error {
		return run([]string{"-tiny", "-figure", "5", "-balance", "vertex,edge",
			"-methods", "caslt", "-reps", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out, "== fig5"); n != 1 {
		t.Fatalf("figure 5 rendered %d tables across the balance axis, want 1:\n%s", n, out)
	}
}

func TestRunValidateJSONRejects(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`[{"bench":"x","exec":"omp","threads":1,"ns_op":1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error { return run([]string{"-validatejson", path}) }); err == nil {
		t.Fatal("malformed json accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"-validatejson", filepath.Join(t.TempDir(), "missing.json")}) }); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunOpCount(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-opcount", "-threads", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "section-6") || !strings.Contains(out, "P_PRAM") {
		t.Fatalf("opcount output wrong:\n%s", out)
	}
}

// TestListGolden pins the -list introspection output. The listing is
// generated from the kernel registry, so this is the contract that every
// registered kernel and every axis it supports is user-addressable;
// regenerate with `go test ./cmd/crcwbench -run TestListGolden -update`
// after a deliberate registration change.
func TestListGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := listKernels(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/list.golden"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("-list output drifted from %s (rerun with -update after a deliberate registry change):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestRunSelectorFlag drives the generic -run path through the real CLI
// entry point: one legal assignment per input kind must execute, validate
// and report; an illegal one must fail with a diagnostic naming the axis.
func TestRunSelectorFlag(t *testing.T) {
	good := map[string]string{
		"kernel=maxfind,exec=pool,method=gatekeeper":               "median",
		"kernel=bfs,method=caslt,exec=team,balance=edge,threads=4": "depth",
		"kernel=bfs-frontier,repr=bitmap,policy=stealing":          "policy=stealing",
		"kernel=listrank,exec=trace":                               "trace replay",
		"kernel=cc,relabel=degree":                                 "relabel=degree",
	}
	for sel, wantSub := range good {
		out, err := capture(t, func() error { return run([]string{"-tiny", "-run", sel}) })
		if err != nil {
			t.Errorf("-run %s: %v", sel, err)
			continue
		}
		if !strings.Contains(out, wantSub) {
			t.Errorf("-run %s output missing %q:\n%s", sel, wantSub, out)
		}
	}
	bad := map[string]string{
		"kernel=bfs,method=bogus":    "method",
		"kernel=nope":                "unknown kernel",
		"kernel=maxfind,repr=bitmap": "no repr axis",
		"kernel=bfs,threads=zero":    "threads",
		"method=caslt":               "missing kernel",
	}
	for sel, wantSub := range bad {
		_, err := capture(t, func() error { return run([]string{"-tiny", "-run", sel}) })
		if err == nil {
			t.Errorf("-run %s: accepted", sel)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("-run %s: error %q does not mention %q", sel, err, wantSub)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-figure", "4"},
		{"-figure", "13"},
		{"-methods", "bogus"},
		{"-exec", "bogus"},
		{"-balance", "bogus"},
		{"-policy", "bogus"},
		{"-relabel", "bogus"},
		{"-tiny", "-paper"},
		{"-nonexistent-flag"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
