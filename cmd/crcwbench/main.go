// Command crcwbench regenerates the paper's evaluation figures.
//
// Each paper figure (5 through 12) is a time-vs-parameter sweep comparing
// concurrent-write methods; crcwbench runs one figure or all of them,
// prints a paper-style table with per-point and geometric-mean speedups,
// and can additionally emit CSV for plotting.
//
// Usage:
//
//	crcwbench [flags]
//
//	-figure N       figure to run: 5..12, or 0 for all (default 0)
//	-threads P      worker count for fixed-thread figures
//	-reps R         repetitions per point (median reported)
//	-seed S         workload generation seed
//	-methods LIST   comma-separated subset: caslt,gatekeeper,
//	                gatekeeper-checked,naive,mutex
//	-paper          use the paper's full-size parameters (needs a large
//	                machine; the default is a scaled-down sweep with the
//	                same shape)
//	-csv FILE       also write raw medians as CSV
//	-v              log per-point progress to stderr
//	-tiny           miniature smoke-test sweep
//
// Instead of a timing figure, three analyses are available:
//
//	-opcount        the Section-6 validation: atomic operations per
//	                concurrent-write step on one cell, as P_PRAM grows
//	-kernelops      selection-protocol operation counts over full BFS and
//	                CC runs (instrumented resolvers)
//	-simulations    one Priority write step per rung of the CW hierarchy
//	                (native / common-CW all-pairs / EREW tournament)
//
// Examples:
//
//	crcwbench -figure 5
//	crcwbench -figure 10 -threads 8 -reps 5 -csv fig10.csv
//	crcwbench -paper -figure 7
//	crcwbench -kernelops
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crcwpram/internal/bench"
	"crcwpram/internal/core/cw"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crcwbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crcwbench", flag.ContinueOnError)
	var (
		figure      = fs.Int("figure", 0, "paper figure to reproduce (5..12), 0 = all")
		threads     = fs.Int("threads", 0, "worker count for fixed-thread figures (0 = default)")
		reps        = fs.Int("reps", 0, "repetitions per point (0 = default)")
		seed        = fs.Int64("seed", 0, "workload seed (0 = default)")
		methods     = fs.String("methods", "", "comma-separated method subset (empty = figure's paper set)")
		paper       = fs.Bool("paper", false, "use the paper's full-size parameters")
		csvPath     = fs.String("csv", "", "also write raw medians as CSV to this file")
		verbose     = fs.Bool("v", false, "log per-point progress to stderr")
		tiny        = fs.Bool("tiny", false, "miniature sweep for smoke tests (seconds, shapes not meaningful)")
		opcount     = fs.Bool("opcount", false, "run the Section-6 atomic-operation-count validation instead of a timing figure")
		kernelops   = fs.Bool("kernelops", false, "count selection-protocol operations over full BFS/CC runs instead of timing")
		simulations = fs.Bool("simulations", false, "time one Priority write step per rung of the CW hierarchy instead of a figure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.DefaultConfig()
	if *paper {
		cfg = bench.PaperConfig()
	}
	if *tiny {
		if *paper {
			return fmt.Errorf("-tiny and -paper are mutually exclusive")
		}
		cfg = bench.TinyConfig()
	}
	if *threads > 0 {
		cfg.Threads = *threads
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	if *methods != "" {
		for _, name := range strings.Split(*methods, ",") {
			m, ok := cw.ParseMethod(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown method %q (known: %v)", name, cw.Methods)
			}
			cfg.Methods = append(cfg.Methods, m)
		}
	}

	if *opcount {
		rows := bench.OpCountTable(cfg.Threads, []int{1000, 10000, 100000, 1000000})
		return bench.FormatOpCounts(os.Stdout, cfg.Threads, rows)
	}
	if *kernelops {
		nv, ne := cfg.BFSVertices, cfg.BFSEdges
		rows := bench.KernelOpCounts(cfg.Threads, nv, ne, cfg.Seed)
		return bench.FormatKernelOps(os.Stdout, nv, ne, rows)
	}
	if *simulations {
		rows := bench.SimulationTable(cfg.Threads, cfg.Reps, []int{64, 256, 1024, 4096}, cfg.Seed)
		return bench.FormatSimulations(os.Stdout, rows)
	}

	ids := bench.SortedFigureIDs()
	if *figure != 0 {
		ids = []int{*figure}
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		csvFile = f
	}

	for i, id := range ids {
		table, err := bench.Figure(id, cfg)
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Println()
		}
		if err := table.Format(os.Stdout); err != nil {
			return err
		}
		if csvFile != nil {
			if err := table.WriteCSV(csvFile); err != nil {
				return fmt.Errorf("write csv: %w", err)
			}
		}
	}
	return nil
}
