// Command crcwbench regenerates the paper's evaluation figures.
//
// Each paper figure (5 through 12) is a time-vs-parameter sweep comparing
// concurrent-write methods; crcwbench runs one figure or all of them,
// prints a paper-style table with per-point and geometric-mean speedups,
// and can additionally emit CSV for plotting.
//
// Usage:
//
//	crcwbench [flags]
//
//	-figure N       figure to run: 5..12, or 0 for all (default 0)
//	-threads P      worker count for fixed-thread figures
//	-reps R         repetitions per point (median reported)
//	-seed S         workload generation seed
//	-methods LIST   comma-separated subset: caslt,gatekeeper,
//	                gatekeeper-checked,naive,mutex
//	-exec LIST      comma-separated execution modes: pool (one worker-pool
//	                round per ParallelFor, the default), team (one
//	                persistent parallel region per kernel) and/or trace
//	                (serial counting replay, for debugging); figures run
//	                once per listed mode
//	-balance LIST   comma-separated work-partitioning policies: vertex
//	                (equal vertex counts, the paper's split, the default)
//	                and/or edge (equal arc counts); the BFS figures run
//	                once per listed policy, other figures ignore the axis
//	-policy NAME    machine loop-scheduling policy for the figure and
//	                list-ranking sweeps: block (static split, the default),
//	                cyclic, dynamic, guided or stealing (per-worker deques
//	                with randomized stealing); the dedicated sweeps pick
//	                their own policies and ignore this
//	-paper          use the paper's full-size parameters (needs a large
//	                machine; the default is a scaled-down sweep with the
//	                same shape)
//	-csv FILE       also write raw medians as CSV
//	-json FILE      write machine-readable results (kernel, method, exec
//	                mode, threads, ns/op) for all benchmarks run
//	-cpuprofile F   write a pprof CPU profile of the whole run to F
//	-memprofile F   write a pprof heap profile (after a forced GC) to F
//	                when the run finishes
//	-v              log per-point progress to stderr
//	-tiny           miniature smoke-test sweep
//
// The per-round fixed-cost microbenchmark behind the team mode:
//
//	-roundoverhead  measure ns per empty work-shared round for both
//	                execution modes across the thread sweep; combinable
//	                with -figure N (use -figure 0 explicitly to also run
//	                all figures)
//	-edgebalance    run the load-balance sweep: the CAS-LT BFS variants
//	                (sweep, frontier, pull, hybrid) on an RMAT and a star
//	                graph under both balance policies and both execution
//	                modes, reporting wall medians plus the deterministic
//	                work model; combinable like -roundoverhead
//	-listrank       time Wyllie's list ranking (the EREW comparison kernel)
//	                across the size sweep under both timed execution modes;
//	                combinable like -roundoverhead
//	-stealing       run the scheduling-policy sweep: frontier and hybrid
//	                BFS on an RMAT and a degree-uniform graph across every
//	                policy and the StealThreads axis, reporting wall
//	                medians, the deterministic scheduling model (critical
//	                path with per-chunk acquisition costs vs the ideal
//	                split) and the live deque counters of the stealing
//	                cells; combinable like -roundoverhead
//	-locality       run the memory-layout sweep: pull and hybrid BFS on an
//	                RMAT graph across the representation axis (word-per-cell
//	                membership arrays vs bit-packed fetch-OR frontiers), the
//	                CSR relabeling axis and the LocThreads axis, reporting
//	                wall medians plus the deterministic cache-line-touch
//	                model on the bitmap cells; combinable like
//	                -roundoverhead
//	-relabel LIST   comma-separated CSR relabeling modes for the locality
//	                sweep: none (identity), degree (descending-degree
//	                sort) and/or bfs (visitation order); default is all
//	                three
//
// Live contention metrics (the observability layer, not a timing figure —
// the per-cell probe adds contention of its own, so these runs are never
// timed):
//
//	-metrics        run every kernel under the guarded CW methods with the
//	                machine's metrics recorder and per-cell probe enabled,
//	                and print per-kernel CAS attempts / wins / losses,
//	                pre-check skips, the observed maximum executed attempts
//	                on any cell in any round (checked against the paper's
//	                ≤ P bound), rounds to convergence, and the busy /
//	                barrier-wait split; combinable like -roundoverhead
//	-metricsjson F  write just the metrics rows as JSON to F (the rows are
//	                also appended to -json output when both are given)
//	-overhead       time a full CAS-LT BFS run under the three
//	                instrumentation variants (off / metrics / evtrace) at
//	                p=1 and p=-threads; the JSON rows are the
//	                BENCH_metrics_overhead.json baseline; combinable like
//	                -roundoverhead
//
// Round-level timelines (the event-trace flight recorder,
// internal/core/trace; attaches a recorder to every machine the sweeps
// build, so combine these with any sweep, figure or -run):
//
//	-trace FILE     drain every machine's flight recorder when the run
//	                finishes and write the merged timeline as Chrome
//	                trace-event / Perfetto JSON (load in ui.perfetto.dev
//	                or chrome://tracing): one track per worker with
//	                round / region / barrier-wait / fault spans and
//	                steal / claim instants, plus per-round CAS win/loss
//	                counter tracks
//	-runtimetrace F additionally write a runtime/trace of the whole run
//	                to F, with PRAM rounds as trace regions aligned with
//	                goroutine scheduling (view with go tool trace F)
//	-httpaddr ADDR  serve the live observability endpoint on ADDR (e.g.
//	                :6060) while the run executes: /debug/vars carries
//	                the "evtrace" rolling counters (round rate, current
//	                round, CAS wins/losses), /debug/pprof/* the standard
//	                profiles
//	-httphold DUR   keep the -httpaddr endpoint up DUR after the
//	                benchmarks finish, so a scraper can read the final
//	                counters (CI's trace-smoke job does)
//	-validatetrace F schema-check a -trace output file against the
//	                trace-event format and exit (used by CI); runs
//	                nothing else
//
// Registry introspection and single runs (every kernel and axis below
// comes from the kernel registry — a kernel added by one Register call
// appears here with no crcwbench edits):
//
//	-list           print every registered kernel with its swept axes and
//	                their legal values; runs nothing else
//	-run SEL        run one registered kernel under one full axis
//	                assignment, e.g.
//	                kernel=bfs,method=caslt,exec=team,balance=edge,threads=4;
//	                unset axes keep the sweep defaults (pool exec, CAS-LT
//	                where supported, block policy, -threads workers); runs
//	                nothing else
//
// Adversarial robustness (the chaos layer; never a timing figure):
//
//	-chaos SPEC     run the registry-wide chaos matrix: every kernel ×
//	                method × pool/team × block/stealing × seed under
//	                deterministic schedule faults, byte-compared against
//	                unperturbed references with the runtime CW invariant
//	                checker attached; SPEC is
//	                seed=S1+S2+...,faults=F1+F2+... with faults drawn from
//	                stall, jitter, steal-delay, storm, sticky-loser, all
//	                (-chaos default = seeds 1+2+3, all faults); runs
//	                nothing else
//
// And a baseline checker:
//
//	-validatejson F  parse a -json output file and verify its shape (used
//	                 by CI's perf-smoke step); runs nothing else
//
// Instead of a timing figure, four analyses are available:
//
//	-opcount        the Section-6 validation: atomic operations per
//	                concurrent-write step on one cell, as P_PRAM grows
//	-kernelops      selection-protocol operation counts over full BFS and
//	                CC runs (counting resolvers composed with the trace
//	                execution backend); combinable with -json
//	-kerneltrace    structural cost (steps, barriers, CW rounds, per-worker
//	                iteration split) of every kernel of the suite under the
//	                trace backend; combinable with -json
//	-simulations    one Priority write step per rung of the CW hierarchy
//	                (native / common-CW all-pairs / EREW tournament)
//
// Examples:
//
//	crcwbench -figure 5
//	crcwbench -figure 10 -threads 8 -reps 5 -csv fig10.csv
//	crcwbench -paper -figure 7
//	crcwbench -figure 7 -exec pool,team -json bench.json
//	crcwbench -figure 7 -policy stealing -methods caslt
//	crcwbench -roundoverhead
//	crcwbench -edgebalance -threads 8 -json BENCH_edgebalance.json
//	crcwbench -validatejson BENCH_edgebalance.json
//	crcwbench -listrank -threads 8
//	crcwbench -stealing -json BENCH_stealing.json
//	crcwbench -stealing -cpuprofile steal.prof
//	crcwbench -locality -json BENCH_locality.json
//	crcwbench -locality -relabel none,degree -threads 8
//	crcwbench -tiny -metrics -exec pool,team -metricsjson metrics.json
//	crcwbench -overhead -json BENCH_metrics_overhead.json
//	crcwbench -locality -trace timeline.json -httpaddr :6060
//	crcwbench -run kernel=bfs-hybrid,exec=team -trace out.json -runtimetrace rt.out
//	crcwbench -validatetrace timeline.json
//	crcwbench -kernelops -kerneltrace -json kernelops.json
//	crcwbench -list
//	crcwbench -run kernel=bfs-hybrid,repr=bitmap,policy=stealing -tiny
//	crcwbench -chaos default
//	crcwbench -chaos seed=7+8,faults=stall+storm+sticky-loser -v
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"crcwpram/internal/bench"
	"crcwpram/internal/core/chaos"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	evtrace "crcwpram/internal/core/trace"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
	"crcwpram/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crcwbench:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("crcwbench", flag.ContinueOnError)
	var (
		figure        = fs.Int("figure", 0, "paper figure to reproduce (5..12), 0 = all")
		threads       = fs.Int("threads", 0, "worker count for fixed-thread figures (0 = default)")
		reps          = fs.Int("reps", 0, "repetitions per point (0 = default)")
		seed          = fs.Int64("seed", 0, "workload seed (0 = default)")
		methods       = fs.String("methods", "", "comma-separated method subset (empty = figure's paper set)")
		paper         = fs.Bool("paper", false, "use the paper's full-size parameters")
		csvPath       = fs.String("csv", "", "also write raw medians as CSV to this file")
		verbose       = fs.Bool("v", false, "log per-point progress to stderr")
		tiny          = fs.Bool("tiny", false, "miniature sweep for smoke tests (seconds, shapes not meaningful)")
		execList      = fs.String("exec", "pool", "comma-separated execution modes to measure: pool, team and/or trace")
		balanceList   = fs.String("balance", "vertex", "comma-separated work-partitioning policies for the BFS figures: vertex and/or edge")
		policyName    = fs.String("policy", "", "machine loop-scheduling policy for the figure and listrank sweeps: block, cyclic, dynamic, guided or stealing (empty = block)")
		jsonPath      = fs.String("json", "", "write machine-readable results as JSON to this file")
		roundoverhead = fs.Bool("roundoverhead", false, "measure ns per empty round for both execution modes across the thread sweep")
		edgebalance   = fs.Bool("edgebalance", false, "run the BFS load-balance sweep (balance x kernel x exec) with the deterministic work model")
		listrankSweep = fs.Bool("listrank", false, "time Wyllie's list ranking across the size sweep under both timed execution modes")
		stealingSweep = fs.Bool("stealing", false, "run the scheduling-policy sweep (kernel x policy x threads on RMAT and uniform graphs) with the deterministic scheduling model and live deque counters")
		localitySweep = fs.Bool("locality", false, "run the memory-layout sweep (kernel x repr x relabel x threads on an RMAT graph) with the deterministic cache-line-touch model")
		relabelList   = fs.String("relabel", "", "comma-separated CSR relabeling modes for the locality sweep: none, degree and/or bfs (empty = all)")
		validateJSON  = fs.String("validatejson", "", "validate a -json output file and exit")
		listKernelSet = fs.Bool("list", false, "print every registered kernel with its sweepable axes and exit")
		chaosSpec     = fs.String("chaos", "", "run the adversarial-schedule chaos matrix over every registered kernel and exit; value is seed=S1+S2+...,faults=F1+F2+... (faults: stall, jitter, steal-delay, storm, sticky-loser, all; empty value parts default to seeds 1+2+3 and all faults, so -chaos default works)")
		runSelector   = fs.String("run", "", "run one kernel under one axis assignment, e.g. kernel=bfs,method=caslt,exec=team,threads=4; runs nothing else")
		opcount       = fs.Bool("opcount", false, "run the Section-6 atomic-operation-count validation instead of a timing figure")
		kernelops     = fs.Bool("kernelops", false, "count selection-protocol operations over full BFS/CC runs (trace backend) instead of timing")
		kerneltrace   = fs.Bool("kerneltrace", false, "report every kernel's structural cost (steps, barriers, rounds) under the trace backend")
		metricsTable  = fs.Bool("metrics", false, "run every kernel on a metrics-enabled machine and report live contention (CAS attempts/wins/losses, pre-check skips, max RMWs per cell per round, busy/barrier time split) per listed timed exec mode")
		metricsJSON   = fs.String("metricsjson", "", "write the -metrics contention rows alone as JSON to this file (implies -metrics)")
		overhead      = fs.Bool("overhead", false, "time a full CAS-LT BFS run under the three instrumentation variants (off, metrics, evtrace) at p=1 and p=-threads")
		tracePath     = fs.String("trace", "", "write the merged round-level timeline of every machine the run builds as Chrome trace-event / Perfetto JSON to this file")
		runtimeTraceP = fs.String("runtimetrace", "", "write a runtime/trace of the whole run (PRAM rounds as regions) to this file; view with go tool trace")
		httpAddr      = fs.String("httpaddr", "", "serve the live observability endpoint (/debug/vars with the evtrace counters, /debug/pprof) on this address while the run executes, e.g. :6060")
		httpHold      = fs.Duration("httphold", 0, "keep the -httpaddr endpoint up this long after the benchmarks finish")
		validateTrace = fs.String("validatetrace", "", "schema-check a -trace output file against the Chrome trace-event format and exit")
		simulations   = fs.Bool("simulations", false, "time one Priority write step per rung of the CW hierarchy instead of a figure")
		cpuProfile    = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile    = fs.String("memprofile", "", "write a pprof heap profile (after a forced GC) to this file when the run finishes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.DefaultConfig()
	if *paper {
		cfg = bench.PaperConfig()
	}
	if *tiny {
		if *paper {
			return fmt.Errorf("-tiny and -paper are mutually exclusive")
		}
		cfg = bench.TinyConfig()
	}
	if *threads > 0 {
		cfg.Threads = *threads
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	if *methods != "" {
		for _, name := range strings.Split(*methods, ",") {
			m, ok := cw.ParseMethod(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown method %q (known: %v)", name, cw.Methods)
			}
			cfg.Methods = append(cfg.Methods, m)
		}
	}
	var execs []machine.Exec
	for _, name := range strings.Split(*execList, ",") {
		e, ok := machine.ParseExec(strings.TrimSpace(name))
		if !ok {
			return fmt.Errorf("unknown exec mode %q (known: %v)", name, machine.Execs)
		}
		execs = append(execs, e)
	}
	var balances []graph.Balance
	for _, name := range strings.Split(*balanceList, ",") {
		b, ok := graph.ParseBalance(strings.TrimSpace(name))
		if !ok {
			return fmt.Errorf("unknown balance policy %q (known: %v)", name, graph.Balances)
		}
		balances = append(balances, b)
	}
	if *relabelList != "" {
		cfg.Relabels = nil
		for _, name := range strings.Split(*relabelList, ",") {
			mode, ok := graph.ParseRelabel(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown relabel mode %q (known: %v)", name, graph.RelabelModes)
			}
			cfg.Relabels = append(cfg.Relabels, mode)
		}
	}
	if *policyName != "" {
		pol, ok := sched.ParsePolicy(strings.TrimSpace(*policyName))
		if !ok {
			return fmt.Errorf("unknown scheduling policy %q (known: %v)", *policyName, sched.Policies)
		}
		cfg.Policy = pol
	}

	// Profiling wraps everything the run does, including the dedicated
	// sweeps, so a single flag profiles whichever benchmark was requested.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("close cpu profile: %w", cerr)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			if werr := writeHeapProfile(*memProfile); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	if *validateJSON != "" {
		f, err := os.Open(*validateJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := bench.ValidateJSON(f)
		if err != nil {
			return fmt.Errorf("%s: %w", *validateJSON, err)
		}
		fmt.Printf("%s: %d rows ok\n", *validateJSON, n)
		return nil
	}
	if *validateTrace != "" {
		f, err := os.Open(*validateTrace)
		if err != nil {
			return err
		}
		defer f.Close()
		st, err := evtrace.ValidateChromeTrace(f)
		if err != nil {
			return fmt.Errorf("%s: %w", *validateTrace, err)
		}
		fmt.Printf("%s: %d events ok (%d spans, %d instants, %d counter samples, %d worker tracks)\n",
			*validateTrace, st.Events, st.Spans, st.Instants, st.Counters, st.Workers)
		return nil
	}

	if *listKernelSet {
		return listKernels(os.Stdout)
	}
	if *chaosSpec != "" {
		return runChaos(os.Stdout, cfg.Threads, *chaosSpec, *verbose)
	}

	// The event-trace sink rides along with whatever else was requested:
	// every machine a sweep (or -run) builds gets a flight recorder, the
	// live endpoint reads the rolling counters while runs execute, and the
	// merged timeline is written once everything finishes.
	var sink *evtrace.Sink
	if *tracePath != "" || *httpAddr != "" || *runtimeTraceP != "" {
		var sopts []evtrace.Option
		if *runtimeTraceP != "" {
			sopts = append(sopts, evtrace.WithRuntimeTrace())
		}
		sink = evtrace.NewSink(0, sopts...)
		cfg.Events = sink
	}
	if *runtimeTraceP != "" {
		f, err := os.Create(*runtimeTraceP)
		if err != nil {
			return fmt.Errorf("create runtime trace: %w", err)
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return fmt.Errorf("start runtime trace: %w", err)
		}
		defer func() {
			rtrace.Stop()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("close runtime trace: %w", cerr)
			}
		}()
	}
	if *httpAddr != "" {
		srv, addr, serr := sink.Serve(*httpAddr)
		if serr != nil {
			return fmt.Errorf("serve %s: %w", *httpAddr, serr)
		}
		fmt.Fprintf(os.Stderr, "crcwbench: live endpoint on http://%s/debug/vars\n", addr)
		defer func() {
			if *httpHold > 0 {
				time.Sleep(*httpHold)
			}
			srv.Close()
		}()
	}

	// writeTrace drains the sink into one merged timeline and writes the
	// Chrome trace-event JSON; it runs after the last benchmark on every
	// path that executes kernels (including -run's early return).
	writeTrace := func() error {
		if *tracePath == "" {
			return nil
		}
		tl := sink.Timeline()
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("create trace: %w", err)
		}
		defer f.Close()
		if err := tl.WriteChromeTrace(f); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "crcwbench: wrote %d spans over %d worker tracks (%d dropped) to %s\n",
			len(tl.Spans), tl.P, tl.Dropped, *tracePath)
		return nil
	}

	if *runSelector != "" {
		res, err := bench.RunSelector(kernel.Default, cfg, *runSelector)
		if err != nil {
			return err
		}
		if err := bench.FormatSelector(os.Stdout, res); err != nil {
			return err
		}
		return writeTrace()
	}

	if *opcount {
		rows := bench.OpCountTable(cfg.Threads, []int{1000, 10000, 100000, 1000000})
		return bench.FormatOpCounts(os.Stdout, cfg.Threads, rows)
	}
	if *simulations {
		rows := bench.SimulationTable(cfg.Threads, cfg.Reps, []int{64, 256, 1024, 4096}, cfg.Seed)
		return bench.FormatSimulations(os.Stdout, rows)
	}

	var jsonRows []bench.Row
	printed := false
	section := func() {
		if printed {
			fmt.Println()
		}
		printed = true
	}

	if *kernelops {
		nv, ne := cfg.BFSVertices, cfg.BFSEdges
		rows := bench.KernelOpCounts(kernel.Default, cfg.Threads, nv, ne, cfg.Seed)
		section()
		if err := bench.FormatKernelOps(os.Stdout, nv, ne, rows); err != nil {
			return err
		}
		jsonRows = append(jsonRows, bench.KernelOpsJSONRows(rows, cfg.Threads)...)
	}

	if *kerneltrace {
		nv, ne := cfg.BFSVertices, cfg.BFSEdges
		rows := bench.KernelTraceCounts(kernel.Default, cfg.Threads, nv, ne, cfg.Seed)
		section()
		if err := bench.FormatKernelTraces(os.Stdout, nv, ne, rows); err != nil {
			return err
		}
		jsonRows = append(jsonRows, bench.KernelTraceJSONRows(rows)...)
	}

	if *metricsTable || *metricsJSON != "" {
		nv, ne := cfg.BFSVertices, cfg.BFSEdges
		rows, err := bench.Contention(kernel.Default, cfg.Threads, nv, ne, cfg.Seed, execs)
		if err != nil {
			return err
		}
		section()
		if err := bench.FormatContention(os.Stdout, cfg.Threads, nv, ne, rows); err != nil {
			return err
		}
		mrows := bench.ContentionJSONRows(rows, cfg.Threads)
		jsonRows = append(jsonRows, mrows...)
		if *metricsJSON != "" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				return fmt.Errorf("create metrics json: %w", err)
			}
			defer f.Close()
			if err := bench.WriteJSON(f, mrows); err != nil {
				return fmt.Errorf("write metrics json: %w", err)
			}
		}
	}

	if *overhead {
		rows, err := bench.ObservabilityOverhead(cfg)
		if err != nil {
			return err
		}
		section()
		if err := bench.FormatObsOverhead(os.Stdout, rows); err != nil {
			return err
		}
		jsonRows = append(jsonRows, bench.ObsOverheadJSONRows(rows)...)
	}

	if *roundoverhead {
		rows := bench.RoundOverhead(cfg.ThreadSweep, 0, cfg.Reps, cfg.Log)
		section()
		if err := bench.FormatRoundOverhead(os.Stdout, rows); err != nil {
			return err
		}
		jsonRows = append(jsonRows, bench.OverheadJSONRows(rows)...)
	}

	if *edgebalance {
		// Like -roundoverhead, the sweep is itself a pool-vs-team
		// comparison, so it always measures both modes.
		infos, rows, err := bench.EdgeBalance(cfg, nil)
		if err != nil {
			return err
		}
		section()
		if err := bench.FormatEdgeBalance(os.Stdout, infos, rows); err != nil {
			return err
		}
		jsonRows = append(jsonRows, bench.EdgeBalanceJSONRows(rows)...)
	}

	if *listrankSweep {
		// Also a pool-vs-team comparison by construction.
		rows, err := bench.ListRank(cfg, nil)
		if err != nil {
			return err
		}
		section()
		if err := bench.FormatListRank(os.Stdout, cfg.Threads, rows); err != nil {
			return err
		}
		jsonRows = append(jsonRows, bench.ListRankJSONRows(rows)...)
	}

	if *stealingSweep {
		// The policy axis IS the sweep here, so -policy does not apply; the
		// first listed exec mode drives the timed cells.
		rows, err := bench.Stealing(cfg, execs[0])
		if err != nil {
			return err
		}
		section()
		if err := bench.FormatStealing(os.Stdout, rows); err != nil {
			return err
		}
		jsonRows = append(jsonRows, bench.StealingJSONRows(rows)...)
	}

	if *localitySweep {
		// The representation axis IS the comparison here; like -stealing,
		// the first listed exec mode drives the timed cells.
		rows, err := bench.Locality(cfg, execs[0])
		if err != nil {
			return err
		}
		section()
		if err := bench.FormatLocality(os.Stdout, rows); err != nil {
			return err
		}
		jsonRows = append(jsonRows, bench.LocalityJSONRows(rows)...)
	}

	figureSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "figure" {
			figureSet = true
		}
	})
	ids := bench.SortedFigureIDs()
	if *figure != 0 {
		ids = []int{*figure}
	} else if (*roundoverhead || *overhead || *edgebalance || *listrankSweep || *stealingSweep || *localitySweep ||
		*kernelops || *kerneltrace || *metricsTable || *metricsJSON != "") && !figureSet {
		// The dedicated sweeps and analyses alone run only themselves; add
		// -figure 0 explicitly to also sweep every figure.
		ids = nil
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		csvFile = f
	}

	for _, exec := range execs {
		cfg.Exec = exec
		for _, id := range ids {
			// The balance axis only moves the BFS figures; everything else
			// runs once, under the first listed policy.
			bals := balances
			if !bench.FigureUsesBalance(id) {
				bals = balances[:1]
			}
			for _, bal := range bals {
				cfg.Balance = bal
				table, err := bench.Figure(id, cfg)
				if err != nil {
					return err
				}
				section()
				if err := table.Format(os.Stdout); err != nil {
					return err
				}
				if csvFile != nil {
					if err := table.WriteCSV(csvFile); err != nil {
						return fmt.Errorf("write csv: %w", err)
					}
				}
				jsonRows = append(jsonRows, table.Rows(cfg.Threads)...)
			}
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fmt.Errorf("create json: %w", err)
		}
		defer f.Close()
		if err := bench.WriteJSON(f, jsonRows); err != nil {
			return fmt.Errorf("write json: %w", err)
		}
	}
	return writeTrace()
}

// listKernels prints the registry: every kernel with its summary and its
// sweepable axes with their legal values. This output is derived entirely
// from the descriptors, so a kernel added by a single registration appears
// here (and becomes -run addressable) with no other edits.
func listKernels(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "registered kernels (%d):\n", len(kernel.All()))
	for _, d := range kernel.All() {
		fmt.Fprintf(&b, "\n%s (%s)\n", d.Name, d.Pkg)
		fmt.Fprintf(&b, "  %s\n", d.Summary)
		for _, ax := range d.Axes() {
			fmt.Fprintf(&b, "  %-8s %s\n", ax.Name, strings.Join(ax.Values, " | "))
		}
		fmt.Fprintf(&b, "  %-8s any positive integer\n", kernel.AxisThreads)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// runChaos parses the -chaos spec and drives the registry-wide chaos
// matrix: every kernel × method × timed backend × block/stealing policy ×
// seed under the requested faults, byte-compared against unperturbed
// references with the runtime invariant checker attached. It reports the
// matrix shape on success and the first divergence or violation on
// failure.
func runChaos(w io.Writer, threads int, spec string, verbose bool) error {
	s, err := chaos.ParseSpec(spec)
	if err != nil {
		return err
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "chaos: %d kernels, seeds %v, faults %s, threads %d\n",
			len(kernel.All()), s.Seeds, s.Faults, threads)
	}
	if err := kernel.DifferentialChaos(kernel.Default, threads, s.Seeds, s.Faults); err != nil {
		return err
	}
	fmt.Fprintf(w, "chaos matrix ok: %d kernels x methods x {pool, team} x {block, stealing} x %d seeds, faults=%s, threads=%d\n",
		len(kernel.All()), len(s.Seeds), s.Faults, threads)
	return nil
}

// writeHeapProfile dumps the live-heap profile after forcing a collection,
// so the numbers reflect retained allocations rather than garbage awaiting
// the next GC cycle.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("write mem profile: %w", err)
	}
	return nil
}
