// Command graphgen generates the benchmark input graphs and serializes
// them in the repository's binary or text edge-list format.
//
// Usage:
//
//	graphgen -kind random -n 100000 -m 30000000 -o graph.bin
//	graphgen -kind connected -n 100000 -m 30000000 -seed 7 -format text -o graph.txt
//	graphgen -kind rmat -scale 17 -m 30000000 -o rmat.bin
//	graphgen -kind star -n 1000 -o star.bin
//	graphgen -stats graph.bin
//
// Kinds: random (uniform multigraph, the paper's input family), connected
// (random + guaranteed connectivity, used for BFS), rmat, star, path,
// cycle, grid (uses -rows/-cols), complete.
package main

import (
	"flag"
	"fmt"
	"os"

	"crcwpram/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		kind   = fs.String("kind", "random", "graph kind: random|connected|rmat|star|path|cycle|grid|complete")
		n      = fs.Int("n", 1000, "vertex count (star/path/cycle/complete/random/connected)")
		m      = fs.Int("m", 5000, "edge count (random/connected/rmat)")
		scale  = fs.Int("scale", 10, "rmat: vertex count is 2^scale")
		rows   = fs.Int("rows", 32, "grid: rows")
		cols   = fs.Int("cols", 32, "grid: cols")
		seed   = fs.Int64("seed", 42, "generation seed")
		format = fs.String("format", "binary", "output format: binary|text")
		out    = fs.String("o", "", "output file (default stdout)")
		stats  = fs.String("stats", "", "print statistics of an existing binary graph file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *stats != "" {
		f, err := os.Open(*stats)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := graph.ReadBinary(f)
		if err != nil {
			return err
		}
		fmt.Println(graph.ComputeStats(g))
		return nil
	}

	var g *graph.Graph
	switch *kind {
	case "random":
		g = graph.RandomUndirected(*n, *m, *seed)
	case "connected":
		g = graph.ConnectedRandom(*n, *m, *seed)
	case "rmat":
		g = graph.RMAT(*scale, *m, 0.57, 0.19, 0.19, *seed)
	case "star":
		g = graph.Star(*n)
	case "path":
		g = graph.Path(*n)
	case "cycle":
		g = graph.Cycle(*n)
	case "grid":
		g = graph.Grid2D(*rows, *cols)
	case "complete":
		g = graph.Complete(*n)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "binary":
		if err := graph.WriteBinary(w, g); err != nil {
			return err
		}
	case "text":
		if err := graph.WriteEdgeList(w, g); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	fmt.Fprintln(os.Stderr, graph.ComputeStats(g))
	return nil
}
