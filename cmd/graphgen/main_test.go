package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crcwpram/internal/graph"
)

func TestGenerateBinaryAndStats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	if err := run([]string{"-kind", "connected", "-n", "100", "-m", "300", "-o", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 100 || g.NumEdges() != 300 {
		t.Fatalf("generated n=%d m=%d, want 100/300", g.NumVertices(), g.NumEdges())
	}
	if graph.CountComponents(g) != 1 {
		t.Fatal("connected graph is not connected")
	}

	// -stats mode on the file we just wrote.
	if err := run([]string{"-stats", path}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTextFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := run([]string{"-kind", "star", "-n", "10", "-format", "text", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# 10 9 undirected") {
		t.Fatalf("text header wrong: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	g, err := graph.ReadEdgeList(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 9 {
		t.Fatal("star hub degree wrong after round trip")
	}
}

func TestAllKinds(t *testing.T) {
	dir := t.TempDir()
	kinds := []string{"random", "connected", "rmat", "star", "path", "cycle", "grid", "complete"}
	for _, kind := range kinds {
		path := filepath.Join(dir, kind+".bin")
		args := []string{"-kind", kind, "-n", "50", "-m", "100", "-scale", "6", "-rows", "5", "-cols", "6", "-o", path}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := graph.ReadBinary(f); err != nil {
			t.Fatalf("%s: unreadable output: %v", kind, err)
		}
		f.Close()
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "bogus"},
		{"-format", "bogus", "-o", filepath.Join(t.TempDir(), "x")},
		{"-stats", "/nonexistent/file"},
		{"-bad-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
