package pram_test

import (
	"fmt"

	"crcwpram/pram"
)

// The paper's core pattern: an arbitrary concurrent write where many
// virtual processors race on one cell and exactly one commits, with
// round advancement replacing any re-initialization.
func Example_arbitraryWrite() {
	m := pram.NewMachine(2)
	defer m.Close()

	var cell pram.Cell
	value := 0

	round := m.NextRound()
	m.ParallelFor(100, func(i int) {
		if cell.TryClaim(round) {
			value = i + 1 // exactly one of the 100 writers commits
		}
	})
	fmt.Println("written:", value > 0, "— round:", cell.Round())

	// Next concurrent write to the same cell: just a bigger round id.
	round = m.NextRound()
	m.ParallelFor(100, func(i int) {
		if cell.TryClaim(round) {
			value = -(i + 1)
		}
	})
	fmt.Println("rewritten:", value < 0, "— round:", cell.Round())
	// Output:
	// written: true — round: 1
	// rewritten: true — round: 2
}

// Multi-word payloads commit atomically through a typed Slot: the winner's
// whole struct survives, fields can never mix between writers.
func Example_structPayload() {
	type match struct {
		Index int
		Score float64
		Label string
	}

	m := pram.NewMachine(2)
	defer m.Close()

	var best pram.Slot[match]
	round := m.NextRound()
	m.ParallelFor(10, func(i int) {
		// All writers offer self-consistent structs; one commits whole.
		best.TryWrite(round, match{Index: i, Score: float64(i) / 2, Label: "candidate"})
	})
	got := best.Load()
	fmt.Println(got.Label, got.Score == float64(got.Index)/2)
	// Output:
	// candidate true
}

// The gatekeeper comparison in miniature: after one winner exists, the
// gatekeeper must be Reset before the cell can host another concurrent
// write, while CAS-LT just uses the next round id.
func Example_gatekeeperVsCASLT() {
	var g pram.Gate
	fmt.Println("gate round 1:", g.TryEnter(), g.TryEnter())
	fmt.Println("gate round 2 without reset:", g.TryEnter())
	g.Reset()
	fmt.Println("gate round 2 after reset:", g.TryEnter())

	var c pram.Cell
	fmt.Println("caslt round 1:", c.TryClaim(1), c.TryClaim(1))
	fmt.Println("caslt round 2, no reset:", c.TryClaim(2))
	// Output:
	// gate round 1: true false
	// gate round 2 without reset: false
	// gate round 2 after reset: true
	// caslt round 1: true false
	// caslt round 2, no reset: true
}
