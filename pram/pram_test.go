package pram_test

import (
	"sync/atomic"
	"testing"

	"crcwpram/pram"
)

// The doc-comment example, end to end: an arbitrary concurrent write in
// which exactly one virtual processor per target commits.
func TestQuickstartPattern(t *testing.T) {
	const n = 64
	const writersPerTarget = 8
	m := pram.NewMachine(4)
	defer m.Close()

	cells := pram.NewCellArray(n, pram.Packed)
	data := make([]uint32, n)
	writes := make([]atomic.Int32, n)

	round := m.NextRound()
	m.ParallelFor(n*writersPerTarget, func(i int) {
		target := i % n
		if cells.TryClaim(target, round) {
			data[target] = uint32(i) // arbitrary CW: different writers, one winner
			writes[target].Add(1)
		}
	})
	for i := 0; i < n; i++ {
		if w := writes[i].Load(); w != 1 {
			t.Fatalf("target %d written %d times, want exactly 1", i, w)
		}
		if int(data[i])%n != i {
			t.Fatalf("target %d holds %d, not one of its writers' values", i, data[i])
		}
	}

	// Next round: advance the round id, no re-initialization needed.
	round = m.NextRound()
	m.ParallelFor(n, func(i int) {
		cells.TryClaim(i, round)
	})
	for i := 0; i < n; i++ {
		if !cells.Cell(i).Written(round) {
			t.Fatalf("cell %d not claimed in round 2", i)
		}
	}
}

func TestMethodSurface(t *testing.T) {
	for _, m := range pram.Methods {
		got, ok := pram.ParseMethod(m.String())
		if !ok || got != m {
			t.Fatalf("ParseMethod(%q) failed", m.String())
		}
	}
	if pram.CASLT.NeedsReset() {
		t.Fatal("CASLT claims to need reset")
	}
	if !pram.Gatekeeper.NeedsReset() {
		t.Fatal("Gatekeeper claims to need no reset")
	}
	if pram.Naive.SafeForArbitrary() {
		t.Fatal("Naive claims arbitrary-CW safety")
	}
}

func TestResolverSurface(t *testing.T) {
	r := pram.NewResolver(pram.CASLT, 4, pram.Padded)
	ran := false
	if !r.Do(2, 1, func() { ran = true }) || !ran {
		t.Fatal("resolver Do did not execute winning write")
	}
	if r.Do(2, 1, func() {}) {
		t.Fatal("second winner for same target/round")
	}
}

func TestMachineOptionsSurface(t *testing.T) {
	m := pram.NewMachine(2,
		pram.WithPolicy(pram.Dynamic),
		pram.WithChunk(8),
		pram.WithBarrier(pram.BarrierTree),
	)
	defer m.Close()
	var n atomic.Int32
	m.ParallelFor(100, func(int) { n.Add(1) })
	if n.Load() != 100 {
		t.Fatalf("visited %d, want 100", n.Load())
	}
}

func TestGraphSurface(t *testing.T) {
	g, err := pram.FromEdges(3, []pram.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatal("FromEdges surface broken")
	}
	if pram.ConnectedRandom(10, 20, 1).NumEdges() != 20 {
		t.Fatal("ConnectedRandom surface broken")
	}
	if pram.RandomUndirected(10, 5, 1).NumVertices() != 10 {
		t.Fatal("RandomUndirected surface broken")
	}
	if pram.RMAT(4, 10, 0.57, 0.19, 0.19, 1).NumVertices() != 16 {
		t.Fatal("RMAT surface broken")
	}
}
