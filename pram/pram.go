// Package pram is the public API of crcwpram, a Go implementation of
// arbitrary/common CRCW PRAM concurrent writes after Ghanim, ElWasif and
// Bernholdt, "Implementing Arbitrary/Common Concurrent Writes of CRCW
// PRAM" (ICPP 2021).
//
// The package re-exports, under one import path, the three layers a
// downstream user needs:
//
//   - the concurrent-write primitives (CAS-LT cells and their comparators)
//     from internal/core/cw;
//   - the PRAM step executor (lock-step parallel-for over a worker pool)
//     from internal/core/machine;
//   - the graph substrate used by the paper's kernels from internal/graph.
//
// A minimal arbitrary concurrent write looks like:
//
//	m := pram.NewMachine(8)
//	defer m.Close()
//	cells := pram.NewCellArray(n, pram.Packed)
//	round := m.NextRound()
//	m.ParallelFor(n, func(i int) {
//		target := ...          // index this virtual processor writes
//		if cells.TryClaim(target, round) {
//			data[target] = ... // winner commits; losers skip
//		}
//	}) // implicit barrier: dependent reads are safe after this
//
// The paper's three benchmark kernels are available as importable packages
// (crcwpram/internal/alg/{maxfind,bfs,cc}) and as runnable binaries and
// examples; see the repository README.
package pram

import (
	"crcwpram/internal/barrier"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
	evtrace "crcwpram/internal/core/trace"
	"crcwpram/internal/graph"
	"crcwpram/internal/sched"
)

// Core concurrent-write types (see crcwpram/internal/core/cw).
type (
	// Cell is the CAS-LT auxiliary word guarding one concurrent-write
	// target (the paper's lastRoundUpdated).
	Cell = cw.Cell
	// Cell64 is Cell with a 64-bit round counter.
	Cell64 = cw.Cell64
	// CellArray is a fixed array of CAS-LT cells.
	CellArray = cw.Array
	// BitArray is a bit-packed common-CW array: 64 one-bit cells per
	// atomic word (512 per cache line), wait-free fetch-OR Set plus the
	// winner-selecting TryClaimBit forms.
	BitArray = cw.BitArray
	// Gate is the prior-practice gatekeeper (atomic prefix-sum) word.
	Gate = cw.Gate
	// GateArray is a fixed array of gatekeeper words.
	GateArray = cw.GateArray
	// MutexArray is the critical-section baseline.
	MutexArray = cw.MutexArray
	// PriorityMinCell implements the Priority CRCW rule (minimum wins).
	PriorityMinCell = cw.PriorityMinCell
	// PriorityMaxCell implements the Priority CRCW rule (maximum wins).
	PriorityMaxCell = cw.PriorityMaxCell
	// Method names a concurrent-write implementation strategy.
	Method = cw.Method
	// Resolver is the uniform winner-selection interface over n targets.
	Resolver = cw.Resolver
	// Layout selects packed or cache-line padded auxiliary arrays.
	Layout = cw.Layout
)

// Slot is a typed concurrent-write target: exactly one writer per round
// commits its complete value, so multi-word payloads ("structure and class
// copies", one of the paper's stated goals) can never tear.
type Slot[T any] = cw.Slot[T]

// SlotArray is a fixed array of typed concurrent-write targets.
type SlotArray[T any] = cw.SlotArray[T]

// NewSlotArray returns an n-slot array of empty typed targets.
func NewSlotArray[T any](n int) *SlotArray[T] { return cw.NewSlotArray[T](n) }

// Concurrent-write method identifiers.
const (
	CASLT             = cw.CASLT
	Gatekeeper        = cw.Gatekeeper
	GatekeeperChecked = cw.GatekeeperChecked
	Naive             = cw.Naive
	Mutex             = cw.Mutex
)

// Auxiliary-array layouts.
const (
	Packed = cw.Packed
	Padded = cw.PaddedLayout
)

// NewCellArray returns an n-cell CAS-LT array.
func NewCellArray(n int, layout Layout) *CellArray { return cw.NewArray(n, layout) }

// NewBitArray returns an n-cell bit-packed common-CW array.
func NewBitArray(n int) *BitArray { return cw.NewBitArray(n) }

// NewGateArray returns an n-gate gatekeeper array.
func NewGateArray(n int, layout Layout) *GateArray { return cw.NewGateArray(n, layout) }

// NewMutexArray returns an n-lock critical-section array.
func NewMutexArray(n int) *MutexArray { return cw.NewMutexArray(n) }

// NewResolver returns a Resolver for the given method over n targets.
func NewResolver(m Method, n int, layout Layout) Resolver { return cw.NewResolver(m, n, layout) }

// ParseMethod converts a method name ("caslt", "gatekeeper", ...) to a
// Method.
func ParseMethod(s string) (Method, bool) { return cw.ParseMethod(s) }

// Methods lists all concurrent-write methods in presentation order.
var Methods = cw.Methods

// Machine executes PRAM rounds over a fixed worker pool (see
// crcwpram/internal/core/machine).
type Machine = machine.Machine

// NewMachine returns a PRAM machine with p workers; Close it when done.
func NewMachine(p int, opts ...machine.Option) *Machine { return machine.New(p, opts...) }

// Machine options.
var (
	// WithPolicy selects the loop partitioning policy.
	WithPolicy = machine.WithPolicy
	// WithChunk sets the dynamic/guided chunk size.
	WithChunk = machine.WithChunk
	// WithBarrier selects the barrier construction.
	WithBarrier = machine.WithBarrier
	// WithExec selects the machine's default execution backend — what the
	// kernels' plain Run entry points dispatch through.
	WithExec = machine.WithExec
	// WithMetrics enables the live contention-metrics recorder; read it
	// with Machine.Snapshot after a run. Off by default at zero cost.
	WithMetrics = machine.WithMetrics
	// WithEventTrace attaches a round-level event-trace flight recorder
	// (build one with NewEventTrace; its worker count must match the
	// machine's). Implies metrics. Drain the recorder into a Timeline
	// after a run and export it with Timeline.WriteChromeTrace.
	WithEventTrace = machine.WithEventTrace
)

// Round-level execution tracing (see crcwpram/internal/core/trace): a
// per-worker flight recorder of round / barrier / steal / fault / claim
// span events, drained post-run into a sorted timeline with per-round
// summaries and exportable as Chrome trace-event / Perfetto JSON.
type (
	// EventTrace is the flight recorder WithEventTrace attaches.
	EventTrace = evtrace.Recorder
	// Timeline is a drained recorder: sorted spans plus per-round
	// summaries (critical-path worker, barrier skew, claim histogram).
	Timeline = evtrace.Timeline
	// TimelineEvent is one recorded span or instant.
	TimelineEvent = evtrace.Event
	// RoundSummary aggregates one round's spans across workers.
	RoundSummary = evtrace.RoundSummary
)

// NewEventTrace returns a flight recorder for a p-worker machine with
// the given per-worker ring capacity (capPerWorker < 1 selects the
// default). Pass it to WithEventTrace; after a run, Drain it into a
// Timeline. Options: WithRuntimeTrace emits matching runtime/trace
// regions for go tool trace.
func NewEventTrace(p, capPerWorker int, opts ...evtrace.Option) *EventTrace {
	return evtrace.New(p, capPerWorker, opts...)
}

// WithRuntimeTrace makes an event-trace recorder additionally emit
// runtime/trace regions, so PRAM rounds appear in go tool trace aligned
// with goroutine scheduling.
var WithRuntimeTrace = evtrace.WithRuntimeTrace

// MetricsSnapshot is the aggregated view of a metrics-enabled machine's
// recorder: CAS attempts/wins/losses, pre-check skips, busy and
// barrier-wait time per worker, round wall time and round count. See
// crcwpram/internal/core/metrics.
type MetricsSnapshot = metrics.Snapshot

// Exec selects how kernels drive the machine (see the Exec* constants).
type Exec = machine.Exec

// Execution backends for WithExec and the kernels' RunExec entry points.
const (
	// ExecPool re-enters the worker pool from the caller for every
	// lock-step round (one fork/join per round) — the default.
	ExecPool = machine.ExecPool
	// ExecTeam runs the whole kernel inside one persistent parallel
	// region; rounds are separated by sense barriers.
	ExecTeam = machine.ExecTeam
	// ExecTrace replays the kernel serially with P logical workers,
	// counting steps, barriers and per-worker iterations instead of
	// synchronizing — an observability backend, not a timed one.
	ExecTrace = machine.ExecTrace
)

// ParseExec converts a backend name ("pool", "team", "trace") to an Exec.
func ParseExec(s string) (Exec, bool) { return machine.ParseExec(s) }

// Execs lists the timed execution backends in presentation order.
var Execs = machine.Execs

// Scheduling policies for WithPolicy.
const (
	Block   = sched.Block
	Cyclic  = sched.Cyclic
	Dynamic = sched.Dynamic
	Guided  = sched.Guided
	// Stealing partitions each loop onto per-worker chunk deques (each
	// worker's block share); idle workers steal chunks from random victims,
	// with no shared cursor on the common path.
	Stealing = sched.Stealing
)

// ParsePolicy converts a policy name ("block", "cyclic", "dynamic",
// "guided", "stealing") to a Policy for WithPolicy.
func ParsePolicy(s string) (sched.Policy, bool) { return sched.ParsePolicy(s) }

// Policies lists all scheduling policies in presentation order.
var Policies = sched.Policies

// Barrier constructions for WithBarrier.
const (
	BarrierCentral = barrier.KindCentral
	BarrierSense   = barrier.KindSense
	BarrierTree    = barrier.KindTree
)

// Graph substrate (see crcwpram/internal/graph).
type (
	// Graph is an immutable CSR graph.
	Graph = graph.Graph
	// Edge is one undirected edge (or directed arc).
	Edge = graph.Edge
)

// Graph constructors and generators.
var (
	// FromEdges builds a CSR graph from an edge list.
	FromEdges = graph.FromEdges
	// RandomUndirected generates the paper's random-graph input family.
	RandomUndirected = graph.RandomUndirected
	// ConnectedRandom generates a connected random multigraph.
	ConnectedRandom = graph.ConnectedRandom
	// RMAT generates a skewed power-law-ish multigraph.
	RMAT = graph.RMAT
)
