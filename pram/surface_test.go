package pram_test

import (
	"sync"
	"testing"

	"crcwpram/pram"
)

func TestGateArraySurface(t *testing.T) {
	g := pram.NewGateArray(4, pram.Packed)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.TryEnter(2) || g.TryEnter(2) {
		t.Fatal("gate winner semantics broken through facade")
	}
	g.ResetRange(0, 4)
	if !g.TryEnterChecked(2) {
		t.Fatal("reset did not reopen gate")
	}
}

func TestMutexArraySurface(t *testing.T) {
	m := pram.NewMutexArray(2)
	var x int
	var wg sync.WaitGroup
	wg.Add(8)
	for i := 0; i < 8; i++ {
		go func() {
			defer wg.Done()
			m.Do(0, func() { x++ })
		}()
	}
	wg.Wait()
	if x != 8 {
		t.Fatalf("x = %d, want 8 (mutual exclusion broken)", x)
	}
}

func TestSlotArraySurface(t *testing.T) {
	type pair struct{ A, B int }
	a := pram.NewSlotArray[pair](3)
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	if !a.TryWrite(1, 1, pair{A: 4, B: 8}) {
		t.Fatal("first slot write failed")
	}
	if a.TryWrite(1, 1, pair{A: 9, B: 9}) {
		t.Fatal("second writer won the same round")
	}
	if got := a.Load(1); got.A != 4 || got.B != 8 {
		t.Fatalf("Load = %+v", got)
	}
	if !a.Written(1, 1) || a.Written(0, 1) {
		t.Fatal("Written bookkeeping wrong")
	}
	a.ResetRange(0, 3)
	if a.Written(1, 1) {
		t.Fatal("reset slot still written")
	}
}

func TestPriorityCellsSurface(t *testing.T) {
	var mn pram.PriorityMinCell
	mn.Reset()
	mn.Offer(5, 1)
	mn.Offer(3, 2)
	if mn.Value() != 3 || mn.ID() != 2 {
		t.Fatalf("min cell winner (%d,%d)", mn.Value(), mn.ID())
	}
	var mx pram.PriorityMaxCell
	mx.Offer(5, 1)
	mx.Offer(3, 2)
	if mx.Value() != 5 || mx.ID() != 1 {
		t.Fatalf("max cell winner (%d,%d)", mx.Value(), mx.ID())
	}
}

func TestCell64Surface(t *testing.T) {
	var c pram.Cell64
	if !c.TryClaim(1) || c.TryClaim(1) {
		t.Fatal("Cell64 winner semantics broken")
	}
	if !c.Claim(1 << 40) {
		t.Fatal("Cell64 Claim failed")
	}
}
