package bench

import (
	"bytes"
	"strings"
	"testing"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/sched"
)

// TestStealingModelAcceptance pins the sweep's headline claim at the real
// sweep scale: on the default RMAT workload (scale 16, density 4) at P=8,
// the modelled critical path of frontier BFS under the stealing policy
// beats the dynamic policy by at least 1.3x — fine chunks and cheap deque
// claims versus DefaultChunk-sized grabs on a contended cursor. The model
// is deterministic, so this is a hard regression gate on both the chunk
// geometry (sched.StealChunk) and the cost constants.
func TestStealingModelAcceptance(t *testing.T) {
	cfg := DefaultConfig()
	g := graph.RMAT(cfg.StealScale, 4<<cfg.StealScale, 0.57, 0.19, 0.19, cfg.Seed)
	seq := bfs.Sequential(g, 0)
	b := newBFSModel(g, 0, 8, seq)
	dyn := b.ForSched("bfs-frontier", sched.Dynamic, 0)
	st := b.ForSched("bfs-frontier", sched.Stealing, 0)
	if st.Crit == 0 || dyn.Crit == 0 {
		t.Fatalf("degenerate model: dyn=%+v steal=%+v", dyn, st)
	}
	ratio := float64(dyn.Crit) / float64(st.Crit)
	t.Logf("rmat%d p=8 frontier: dynamic crit=%d stealing crit=%d ideal=%d ratio=%.3f",
		cfg.StealScale, dyn.Crit, st.Crit, st.Ideal, ratio)
	if ratio < 1.3 {
		t.Fatalf("stealing/dynamic critical-path ratio %.3f < 1.3 on rmat%d at p=8",
			ratio, cfg.StealScale)
	}

	// The negative control: on the degree-uniform graph block is already
	// balanced, and stealing must not burden it — the kernels keep block
	// (no auto-steal) there, which DegreeSkewed decides.
	u := graph.ConnectedRandom(1<<cfg.StealScale, 4<<cfg.StealScale, cfg.Seed)
	if graph.DegreeSkewed(u) {
		t.Fatal("uniform graph classified as skewed: kernels would auto-steal a regular sweep")
	}
	if !graph.DegreeSkewed(g) {
		t.Fatal("RMAT graph classified as uniform: kernels would not auto-steal the hubs")
	}
}

// TestStealingModelInvariants checks the per-policy round scheduler on a
// hand-made cost vector: exact coverage is implied by Crit >= Ideal >=
// max cost, block with uniform costs is perfect, and a single huge index
// pins block's critical path while stealing's stays near ideal.
func TestStealingModelInvariants(t *testing.T) {
	const p = 4
	uniform := make([]uint64, 1024)
	for i := range uniform {
		uniform[i] = 3
	}
	if got, want := policyCrit(uniform, sched.Block, p, 0), uint64(3*1024/p); got != want {
		t.Fatalf("block crit on uniform costs = %d, want %d", got, want)
	}
	skewed := make([]uint64, 1024)
	for i := range skewed {
		skewed[i] = 1
	}
	skewed[10] = 100000
	bl := policyCrit(skewed, sched.Block, p, 0)
	st := policyCrit(skewed, sched.Stealing, p, 0)
	if bl < 100000+uint64(len(skewed)/p-1) {
		t.Fatalf("block crit %d does not contain the straggler's whole share", bl)
	}
	if st < 100000 {
		t.Fatalf("stealing crit %d below the largest single cost", st)
	}
	if st >= bl {
		t.Fatalf("stealing crit %d not below block crit %d on a one-hub round", st, bl)
	}
	for _, pol := range sched.Policies {
		if c := policyCrit(skewed, pol, p, 0); c < 100000 {
			t.Fatalf("%s crit %d below the unsplittable largest cost", pol, c)
		}
	}
	if policyCrit(nil, sched.Dynamic, p, 0) != 0 {
		t.Fatal("empty round has nonzero crit")
	}
}

// TestStealingSweep runs the tiny sweep end to end and checks the row
// grid, the counter discipline (steal counters nonzero exactly on
// stealing-policy cells), the JSON round-trip through ValidateJSON, and
// the rendered table.
func TestStealingSweep(t *testing.T) {
	cfg := tinyConfig()
	cfg.StealScale = 7
	cfg.StealThreads = []int{2, 4}
	rows, err := Stealing(cfg, machine.ExecPool)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * len(cfg.StealThreads) * len(sched.Policies) * len(stealKernels)
	if len(rows) != wantRows {
		t.Fatalf("sweep produced %d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if r.Policy == sched.Stealing {
			if r.ChunksLocal == 0 {
				t.Fatalf("%s %s p=%d: stealing cell claimed no local chunks", r.Graph, r.Kernel, r.Threads)
			}
		} else if r.ChunksLocal != 0 || r.Steals != 0 || r.StealFails != 0 {
			t.Fatalf("%s %s %s p=%d: non-stealing cell carries steal counters", r.Graph, r.Kernel, r.Policy, r.Threads)
		}
		if r.Model.Ideal == 0 || r.Model.Crit < r.Model.Ideal {
			t.Fatalf("%s %s %s p=%d: inconsistent model %+v", r.Graph, r.Kernel, r.Policy, r.Threads, r.Model)
		}
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, StealingJSONRows(rows)); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateJSON(&buf)
	if err != nil {
		t.Fatalf("sweep JSON does not validate: %v", err)
	}
	if n != wantRows {
		t.Fatalf("validated %d rows, want %d", n, wantRows)
	}

	var tbl strings.Builder
	if err := FormatStealing(&tbl, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rmat7", "uniform7", "stealing", "guided", "crit"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("rendered table missing %q:\n%s", want, tbl.String())
		}
	}
}

// TestValidateJSONStealingBranch exercises the stealing-specific rejects.
func TestValidateJSONStealingBranch(t *testing.T) {
	base := Row{Bench: "stealing", Kernel: "bfs-frontier", Method: "caslt",
		Exec: "pool", Threads: 4, NsOp: 100, Graph: "rmat7", Policy: "stealing",
		WorkTotal: 1000, WorkCrit: 400, WorkIdeal: 300, Imbalance: 1.33,
		ChunksLocal: 10, Steals: 2}
	check := func(mutate func(*Row), wantErr string) {
		t.Helper()
		r := base
		mutate(&r)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, []Row{r}); err != nil {
			t.Fatal(err)
		}
		_, err := ValidateJSON(&buf)
		if wantErr == "" {
			if err != nil {
				t.Fatalf("unexpected reject: %v", err)
			}
			return
		}
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("got %v, want error containing %q", err, wantErr)
		}
	}
	check(func(*Row) {}, "")
	check(func(r *Row) { r.Policy = "lottery" }, "unknown policy")
	check(func(r *Row) { r.Policy = "" }, "missing graph/policy")
	check(func(r *Row) { r.ChunksLocal = 0 }, "no local chunks")
	check(func(r *Row) { r.Policy = "dynamic" }, "carries steal counters")
	check(func(r *Row) { r.Policy = "dynamic"; r.ChunksLocal = 0; r.Steals = 0 }, "")
	check(func(r *Row) { r.WorkCrit = 200 }, "inconsistent scheduling model")
	check(func(r *Row) { r.Imbalance = 0.8 }, "imbalance")
}
