package bench

import (
	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/graph"
	"crcwpram/internal/sched"
)

// This file is the deterministic work model behind the edge-balance sweep.
//
// Wall time on a shared (or oversubscribed) host cannot attribute a delta
// to load balance: with fewer cores than workers every partitioning runs the
// same total work serially, and the straggler effect the edge-balanced
// shards remove is invisible. The model instead *replays* each BFS
// variant's partitioning decisions — the same sched.BlockRange /
// graph.ArcBounds / sched.WeightedRange boundaries and the same
// bfs.NextDirection switches, driven by the exact sequential levels — and
// counts abstract work units per worker per round:
//
//	1 unit per vertex an iteration touches + 1 unit per arc it examines.
//
// Three aggregates summarize a run:
//
//	WorkTotal — all units (the algorithm's cost, partitioning-independent
//	            for a fixed direction schedule);
//	WorkCrit  — Σ over rounds of the busiest worker's units: the modelled
//	            critical path, what a wall clock with one core per worker
//	            would show;
//	WorkIdeal — Σ over rounds of ceil(roundTotal/P), the best any
//	            contiguous partitioning could do under the same rounds.
//
// Imbalance = WorkCrit / WorkIdeal is then the figure of merit: 1.0 means
// the partitioning is perfect, P means one worker does everything.
//
// The model is exact for the sweep variants (static shards, full-range
// scans). For the frontier variants it orders each level's frontier by
// vertex id, whereas a real run orders it by worker discovery; per-vertex
// costs are identical, so only the shard assignment can differ slightly.

// WorkModel is the replayed cost of one (kernel, balance) combination.
type WorkModel struct {
	Total uint64
	Crit  uint64
	Ideal uint64
	Depth int
}

// Imbalance returns Crit/Ideal, the modelled load-balance factor.
func (m WorkModel) Imbalance() float64 {
	if m.Ideal == 0 {
		return 1
	}
	return float64(m.Crit) / float64(m.Ideal)
}

func (m *WorkModel) addRound(shard []uint64) {
	var sum, max uint64
	for _, w := range shard {
		sum += w
		if w > max {
			max = w
		}
	}
	if sum == 0 {
		return
	}
	p := uint64(len(shard))
	m.Total += sum
	m.Crit += max
	m.Ideal += (sum + p - 1) / p
}

// bfsModel precomputes the level structure one replay needs.
type bfsModel struct {
	g      *graph.Graph
	p      int
	n      int
	source uint32
	levels []uint32
	depth  int
	// byLevel[L] lists the vertices at level L in id order.
	byLevel [][]uint32
	// degLevel[L] is the summed degree of level L — the hybrid's m_f.
	degLevel []uint64
	// firstHit[u] is the number of arcs a pull scan of u examines in the
	// round that discovers it: 1 + the CSR position of u's first neighbor
	// at level[u]-1. Zero for the source and unreached vertices.
	firstHit []uint32
	// arcBounds caches the edge-balanced static shards.
	arcBounds []int
	// scratch
	shard []uint64
	cum   []uint32
	costs []uint64 // per-index round costs for the scheduling model
}

// newBFSModel builds the replay state from a sequential BFS result.
func newBFSModel(g *graph.Graph, source uint32, p int, seq bfs.Result) *bfsModel {
	n := g.NumVertices()
	b := &bfsModel{
		g:        g,
		p:        p,
		n:        n,
		source:   source,
		levels:   seq.Level,
		depth:    seq.Depth,
		byLevel:  make([][]uint32, seq.Depth+2),
		degLevel: make([]uint64, seq.Depth+2),
		firstHit: make([]uint32, n),
		shard:    make([]uint64, p),
		cum:      make([]uint32, n+1),
	}
	offsets, targets := g.Offsets(), g.Targets()
	for v := 0; v < n; v++ {
		L := b.levels[v]
		if L == bfs.Unreached || int(L) > b.depth {
			continue
		}
		b.byLevel[L] = append(b.byLevel[L], uint32(v))
		b.degLevel[L] += uint64(g.Degree(uint32(v)))
		if L == 0 {
			continue
		}
		for j := offsets[v]; j < offsets[v+1]; j++ {
			if b.levels[targets[j]] == L-1 {
				b.firstHit[v] = j - offsets[v] + 1
				break
			}
		}
	}
	return b
}

func (b *bfsModel) bounds(bal graph.Balance) []int {
	if bal == graph.BalanceEdge {
		if b.arcBounds == nil {
			b.arcBounds = graph.ArcBounds(b.g, b.p)
		}
		return b.arcBounds
	}
	bounds := make([]int, b.p+1)
	for w := 0; w < b.p; w++ {
		bounds[w], bounds[w+1] = sched.BlockRange(b.n, b.p, w)
	}
	return bounds
}

// For replays one kernel under one balance policy. Kernel names match the
// edge-balance sweep: "bfs" (full sweep), "bfs-frontier", "bfs-pull",
// "bfs-hybrid".
func (b *bfsModel) For(kernel string, bal graph.Balance) WorkModel {
	var m WorkModel
	switch kernel {
	case "bfs":
		m = b.sweep(bal)
	case "bfs-frontier":
		m = b.frontier(bal)
	case "bfs-pull":
		m = b.pull(bal)
	case "bfs-hybrid":
		m = b.hybrid(bal)
	default:
		panic("bench: no work model for kernel " + kernel)
	}
	m.Depth = b.depth
	return m
}

// sweep models the full-sweep push kernel: depth+1 rounds (the last one
// finds nothing), each scanning every vertex and relaxing the arcs of the
// vertices at the current level, over the static vertex- or arc-balanced
// shards.
func (b *bfsModel) sweep(bal graph.Balance) WorkModel {
	var m WorkModel
	bounds := b.bounds(bal)
	for L := uint32(0); int(L) <= b.depth; L++ {
		for w := 0; w < b.p; w++ {
			work := uint64(bounds[w+1] - bounds[w])
			for v := bounds[w]; v < bounds[w+1]; v++ {
				if b.levels[v] == L {
					work += uint64(b.g.Degree(uint32(v)))
				}
			}
			b.shard[w] = work
		}
		m.addRound(b.shard)
	}
	return m
}

// frontierRound fills shard with the per-worker cost of relaxing frontier f
// under the balance policy: 1 + deg(u) per frontier vertex, split by vertex
// count or by the degree prefix (mirroring relaxFrontier).
func (b *bfsModel) frontierRound(f []uint32, bal graph.Balance) {
	for w := range b.shard {
		b.shard[w] = 0
	}
	nf := len(f)
	if bal == graph.BalanceEdge && nf > 1 {
		cum := b.cum[:nf+1]
		cum[0] = 0
		for i, u := range f {
			cum[i+1] = cum[i] + uint32(b.g.Degree(u))
		}
		for w := 0; w < b.p; w++ {
			lo, hi := sched.WeightedRange(cum, b.p, w)
			var work uint64
			for i := lo; i < hi; i++ {
				work += 1 + uint64(b.g.Degree(f[i]))
			}
			b.shard[w] = work
		}
		return
	}
	for w := 0; w < b.p; w++ {
		lo, hi := sched.BlockRange(nf, b.p, w)
		var work uint64
		for i := lo; i < hi; i++ {
			work += 1 + uint64(b.g.Degree(f[i]))
		}
		b.shard[w] = work
	}
}

// frontier models the explicit-frontier push kernel: one round per level
// 0..depth (the last frontier relaxes and discovers nothing).
func (b *bfsModel) frontier(bal graph.Balance) WorkModel {
	var m WorkModel
	for L := 0; L <= b.depth; L++ {
		b.frontierRound(b.byLevel[L], bal)
		m.addRound(b.shard)
	}
	return m
}

// pullRound fills shard with the cost of one bottom-up round at level L
// over the static shards: reached vertices cost the filter read, vertices
// about to be discovered scan up to their first level-L neighbor, everyone
// else scans their whole list.
func (b *bfsModel) pullRound(L uint32, bounds []int) {
	for w := 0; w < b.p; w++ {
		var work uint64
		for v := bounds[w]; v < bounds[w+1]; v++ {
			switch lv := b.levels[v]; {
			case lv <= L: // reached in an earlier round: filter only
				work++
			case lv == L+1: // discovered this round: scan to the hit
				work += 1 + uint64(b.firstHit[v])
			default: // still unreached: full scan
				work += 1 + uint64(b.g.Degree(uint32(v)))
			}
		}
		b.shard[w] = work
	}
}

// pull models the pure bottom-up kernel: rounds L = 0..depth (the last one
// discovers nothing and stops the loop).
func (b *bfsModel) pull(bal graph.Balance) WorkModel {
	var m WorkModel
	bounds := b.bounds(bal)
	for L := uint32(0); int(L) <= b.depth; L++ {
		b.pullRound(L, bounds)
		m.addRound(b.shard)
	}
	return m
}

// hybrid replays the direction-optimizing kernel: the same frontier /
// bottom-up rounds as above, chosen per level by bfs.NextDirection with the
// kernel's own m_f / m_u bookkeeping.
func (b *bfsModel) hybrid(bal graph.Balance) WorkModel {
	var m WorkModel
	bounds := b.bounds(bal)
	mf := uint64(b.g.Degree(b.source))
	mu := uint64(b.g.NumArcs()) - mf
	pull := false
	for L := 0; L <= b.depth; L++ {
		nf := uint64(len(b.byLevel[L]))
		pull = bfs.NextDirection(pull, mf, mu, nf, uint64(b.n))
		if pull {
			b.pullRound(uint32(L), bounds)
		} else {
			b.frontierRound(b.byLevel[L], bal)
		}
		m.addRound(b.shard)
		var disc uint64
		if L+1 <= b.depth {
			disc = b.degLevel[L+1]
		}
		mu -= disc
		mf = disc
	}
	return m
}
