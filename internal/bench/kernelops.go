package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// KernelOpRow reports the selection-protocol memory operations one method
// executed over one full kernel run.
type KernelOpRow struct {
	Kernel string
	Method cw.Method
	Loads  uint64
	RMWs   uint64
	Wins   uint64
}

// kernelOpMethods are the methods with counting resolvers.
var kernelOpMethods = []cw.Method{cw.CASLT, cw.GatekeeperChecked, cw.Gatekeeper}

// KernelOpCounts runs BFS and CC over a generated random graph once per
// method with instrumented resolvers and reports the atomic traffic each
// method generated — the whole-kernel extension of the single-cell
// Section 6 experiment. Results are validated before being reported.
func KernelOpCounts(threads, vertices, edges int, seed int64) []KernelOpRow {
	m := machine.New(threads)
	defer m.Close()
	var rows []KernelOpRow

	bg := graph.ConnectedRandom(vertices, edges, seed)
	bk := bfs.NewKernel(m, bg)
	for _, method := range kernelOpMethods {
		var ops cw.OpCounts
		r := cw.NewCountingResolver(method, bg.NumVertices(), &ops)
		bk.Prepare(0)
		res := bk.RunResolver(r)
		if err := bfs.Validate(bg, 0, res, true); err != nil {
			panic(fmt.Sprintf("bench: kernelops bfs %v: %v", method, err))
		}
		loads, rmws, wins := ops.Snapshot()
		rows = append(rows, KernelOpRow{Kernel: "bfs", Method: method, Loads: loads, RMWs: rmws, Wins: wins})
	}

	cg := graph.RandomUndirected(vertices, edges, seed)
	ck := cc.NewKernel(m, cg)
	for _, method := range kernelOpMethods {
		var ops cw.OpCounts
		r := cw.NewCountingResolver(method, cg.NumVertices(), &ops)
		ck.Prepare()
		res := ck.RunResolver(r)
		if err := cc.Validate(cg, res); err != nil {
			panic(fmt.Sprintf("bench: kernelops cc %v: %v", method, err))
		}
		loads, rmws, wins := ops.Snapshot()
		rows = append(rows, KernelOpRow{Kernel: "cc", Method: method, Loads: loads, RMWs: rmws, Wins: wins})
	}
	return rows
}

// FormatKernelOps renders the per-kernel operation counts as an aligned
// table.
func FormatKernelOps(w io.Writer, vertices, edges int, rows []KernelOpRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== kernel-ops: selection-protocol operations per full run (n=%d, m=%d) ==\n", vertices, edges)
	out := [][]string{{"kernel", "method", "loads", "atomic RMWs", "wins"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Kernel,
			r.Method.String(),
			strconv.FormatUint(r.Loads, 10),
			strconv.FormatUint(r.RMWs, 10),
			strconv.FormatUint(r.Wins, 10),
		})
	}
	writeAligned(&b, out)
	b.WriteString("\nwins are identical across methods (same algorithm, one winner per\n" +
		"target per round); the gatekeeper turns every attempt into an atomic RMW,\n" +
		"the pre-checked variants turn almost all of them into plain loads.\n")
	_, err := io.WriteString(w, b.String())
	return err
}
