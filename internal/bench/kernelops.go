package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/alg/listrank"
	"crcwpram/internal/alg/matching"
	"crcwpram/internal/alg/maxfind"
	"crcwpram/internal/alg/mis"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// KernelOpRow reports the selection-protocol memory operations one method
// executed over one full kernel run, plus the structural shape of that run
// as seen by the trace backend: the counting resolver attributes the
// atomic traffic, the trace attributes the rounds and barriers it was
// spread over. Both instruments observe the *same* deterministic replay.
type KernelOpRow struct {
	Kernel   string
	Method   cw.Method
	Loads    uint64
	RMWs     uint64
	Wins     uint64
	Steps    uint64 // work-shared loops in the traced run
	Barriers uint64 // synchronization points in the traced run
}

// KernelTraceRow is one kernel's structural cost under the trace backend:
// the numbers a timed backend would have to pay for, independent of the
// concurrent-write method (all methods share the round structure).
type KernelTraceRow struct {
	Kernel    string
	P         int
	Steps     uint64
	Barriers  uint64
	Singles   uint64
	Rounds    uint32 // region-local CAS-LT round ids consumed
	IterMax   uint64 // busiest logical worker (unit-cost critical path)
	IterTotal uint64 // summed iterations over all logical workers
}

// kernelOpMethods are the methods with counting resolvers.
var kernelOpMethods = []cw.Method{cw.CASLT, cw.GatekeeperChecked, cw.Gatekeeper}

// traceRow flattens a kernel's TraceStats into a KernelTraceRow.
func traceRow(kernel string, st *exec.TraceStats) KernelTraceRow {
	if st == nil {
		panic("bench: kernel ran under the trace backend but recorded no trace")
	}
	return KernelTraceRow{
		Kernel:    kernel,
		P:         st.P,
		Steps:     uint64(st.Steps),
		Barriers:  uint64(st.Barriers),
		Singles:   uint64(st.Singles),
		Rounds:    st.Rounds,
		IterMax:   st.MaxIters(),
		IterTotal: st.TotalIters(),
	}
}

// KernelOpCounts runs BFS and CC over a generated random graph once per
// method with instrumented resolvers under the trace backend and reports
// the atomic traffic each method generated — the whole-kernel extension of
// the single-cell Section 6 experiment — alongside the step/barrier
// structure of the traced run. Results are validated before being
// reported.
func KernelOpCounts(threads, vertices, edges int, seed int64) []KernelOpRow {
	m := machine.New(threads)
	defer m.Close()
	var rows []KernelOpRow

	bg := graph.ConnectedRandom(vertices, edges, seed)
	bk := bfs.NewKernel(m, bg)
	for _, method := range kernelOpMethods {
		var ops cw.OpCounts
		r := cw.NewCountingResolver(method, bg.NumVertices(), &ops)
		bk.Prepare(0)
		res := bk.RunResolverExec(machine.ExecTrace, r)
		if err := bfs.Validate(bg, 0, res, true); err != nil {
			panic(fmt.Sprintf("bench: kernelops bfs %v: %v", method, err))
		}
		loads, rmws, wins := ops.Snapshot()
		st := bk.Trace()
		rows = append(rows, KernelOpRow{
			Kernel: "bfs", Method: method,
			Loads: loads, RMWs: rmws, Wins: wins,
			Steps: uint64(st.Steps), Barriers: uint64(st.Barriers),
		})
	}

	cg := graph.RandomUndirected(vertices, edges, seed)
	ck := cc.NewKernel(m, cg)
	for _, method := range kernelOpMethods {
		var ops cw.OpCounts
		r := cw.NewCountingResolver(method, cg.NumVertices(), &ops)
		ck.Prepare()
		res := ck.RunResolverExec(machine.ExecTrace, r)
		if err := cc.Validate(cg, res); err != nil {
			panic(fmt.Sprintf("bench: kernelops cc %v: %v", method, err))
		}
		loads, rmws, wins := ops.Snapshot()
		st := ck.Trace()
		rows = append(rows, KernelOpRow{
			Kernel: "cc", Method: method,
			Loads: loads, RMWs: rmws, Wins: wins,
			Steps: uint64(st.Steps), Barriers: uint64(st.Barriers),
		})
	}
	return rows
}

// KernelTraceCounts replays every kernel of the suite once under the trace
// backend with P logical workers and reports each run's structural cost.
// maxfind runs on its own much smaller list (its work is N², so the
// BFS-sized n would swamp the replay for no extra information). Every
// result is validated before its trace is reported.
func KernelTraceCounts(threads, vertices, edges int, seed int64) []KernelTraceRow {
	m := machine.New(threads, machine.WithExec(machine.ExecTrace))
	defer m.Close()
	var rows []KernelTraceRow

	const maxfindN = 512
	list := randomList(maxfindN, seed)
	mk := maxfind.NewKernel(m, maxfindN)
	mk.Prepare(list)
	if got, want := mk.Run(cw.CASLT), maxfind.Sequential(list); got != want {
		panic(fmt.Sprintf("bench: kerneltrace maxfind: got %d, want %d", got, want))
	}
	rows = append(rows, traceRow("maxfind", mk.Trace()))

	bg := graph.ConnectedRandom(vertices, edges, seed)
	bk := bfs.NewKernel(m, bg)
	bk.Prepare(0)
	if err := bfs.Validate(bg, 0, bk.RunCASLT(), true); err != nil {
		panic(fmt.Sprintf("bench: kerneltrace bfs: %v", err))
	}
	rows = append(rows, traceRow("bfs", bk.Trace()))

	ug := graph.RandomUndirected(vertices, edges, seed)
	ck := cc.NewKernel(m, ug)
	ck.Prepare()
	if err := cc.Validate(ug, ck.RunCASLT()); err != nil {
		panic(fmt.Sprintf("bench: kerneltrace cc: %v", err))
	}
	rows = append(rows, traceRow("cc", ck.Trace()))

	sk := mis.NewKernel(m, ug)
	sk.Prepare()
	if err := mis.Validate(ug, sk.Run(cw.CASLT, uint64(seed))); err != nil {
		panic(fmt.Sprintf("bench: kerneltrace mis: %v", err))
	}
	rows = append(rows, traceRow("mis", sk.Trace()))

	wk := matching.NewKernel(m, ug)
	wk.Prepare()
	if err := matching.Validate(ug, wk.Run(uint64(seed))); err != nil {
		panic(fmt.Sprintf("bench: kerneltrace matching: %v", err))
	}
	rows = append(rows, traceRow("matching", wk.Trace()))

	next := listrank.RandomList(vertices, seed)
	ranks, st := listrank.RankExecTrace(m, machine.ExecTrace, next)
	want := listrank.SequentialRank(next)
	for i := range ranks {
		if ranks[i] != want[i] {
			panic(fmt.Sprintf("bench: kerneltrace listrank: rank[%d] = %d, want %d", i, ranks[i], want[i]))
		}
	}
	rows = append(rows, traceRow("listrank", st))

	return rows
}

// FormatKernelOps renders the per-kernel operation counts as an aligned
// table.
func FormatKernelOps(w io.Writer, vertices, edges int, rows []KernelOpRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== kernel-ops: selection-protocol operations per full run (n=%d, m=%d) ==\n", vertices, edges)
	out := [][]string{{"kernel", "method", "loads", "atomic RMWs", "wins", "steps", "barriers"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Kernel,
			r.Method.String(),
			strconv.FormatUint(r.Loads, 10),
			strconv.FormatUint(r.RMWs, 10),
			strconv.FormatUint(r.Wins, 10),
			strconv.FormatUint(r.Steps, 10),
			strconv.FormatUint(r.Barriers, 10),
		})
	}
	writeAligned(&b, out)
	b.WriteString("\nwins are identical across methods (same algorithm, one winner per\n" +
		"target per round); the gatekeeper turns every attempt into an atomic RMW,\n" +
		"the pre-checked variants turn almost all of them into plain loads.\n" +
		"steps/barriers come from the trace backend's deterministic replay:\n" +
		"the synchronization structure every method pays for identically.\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatKernelTraces renders the per-kernel structural costs as an aligned
// table.
func FormatKernelTraces(w io.Writer, vertices, edges int, rows []KernelTraceRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== kernel-trace: structural cost per full run (n=%d, m=%d; maxfind n=512) ==\n", vertices, edges)
	out := [][]string{{"kernel", "p", "steps", "barriers", "singles", "cw rounds", "iter max", "iter total"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Kernel,
			strconv.Itoa(r.P),
			strconv.FormatUint(r.Steps, 10),
			strconv.FormatUint(r.Barriers, 10),
			strconv.FormatUint(r.Singles, 10),
			strconv.FormatUint(uint64(r.Rounds), 10),
			strconv.FormatUint(r.IterMax, 10),
			strconv.FormatUint(r.IterTotal, 10),
		})
	}
	writeAligned(&b, out)
	b.WriteString("\nsteps are work-shared loops; barriers are the synchronizations a timed\n" +
		"backend would execute (pool: fork/join steps; team: sense barriers).\n" +
		"iter max / p vs iter total / p² is the unit-cost load imbalance.\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// KernelOpsJSONRows converts the op-count rows to the machine-readable
// trajectory rows. They carry counts rather than a timing, so NsOp stays
// zero and the exec field records the trace backend that produced them.
func KernelOpsJSONRows(rows []KernelOpRow, threads int) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:    "kernelops",
			Kernel:   r.Kernel,
			Method:   r.Method.String(),
			Exec:     machine.ExecTrace.String(),
			Threads:  threads,
			Loads:    r.Loads,
			RMWs:     r.RMWs,
			Wins:     r.Wins,
			Steps:    r.Steps,
			Barriers: r.Barriers,
		})
	}
	return out
}

// KernelTraceJSONRows converts the trace rows to the machine-readable
// trajectory rows.
func KernelTraceJSONRows(rows []KernelTraceRow) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:     "kerneltrace",
			Kernel:    r.Kernel,
			Exec:      machine.ExecTrace.String(),
			Threads:   r.P,
			Steps:     r.Steps,
			Barriers:  r.Barriers,
			Singles:   r.Singles,
			Rounds:    uint64(r.Rounds),
			IterMax:   r.IterMax,
			IterTotal: r.IterTotal,
		})
	}
	return out
}
