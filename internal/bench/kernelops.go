package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/alg/listrank"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
)

// KernelOpRow reports the selection-protocol memory operations one method
// executed over one full kernel run, plus the structural shape of that run
// as seen by the trace backend: the counting resolver attributes the
// atomic traffic, the trace attributes the rounds and barriers it was
// spread over. Both instruments observe the *same* deterministic replay.
type KernelOpRow struct {
	Kernel   string
	Method   cw.Method
	Loads    uint64
	RMWs     uint64
	Wins     uint64
	Steps    uint64 // work-shared loops in the traced run
	Barriers uint64 // synchronization points in the traced run
}

// KernelTraceRow is one kernel's structural cost under the trace backend:
// the numbers a timed backend would have to pay for, independent of the
// concurrent-write method (all methods share the round structure).
type KernelTraceRow struct {
	Kernel    string
	P         int
	Steps     uint64
	Barriers  uint64
	Singles   uint64
	Rounds    uint32 // region-local CAS-LT round ids consumed
	IterMax   uint64 // busiest logical worker (unit-cost critical path)
	IterTotal uint64 // summed iterations over all logical workers
}

// kernelOpMethods are the methods with counting resolvers.
var kernelOpMethods = []cw.Method{cw.CASLT, cw.GatekeeperChecked, cw.Gatekeeper}

// traceRow flattens a kernel's TraceStats into a KernelTraceRow.
func traceRow(kernel string, st *exec.TraceStats) KernelTraceRow {
	if st == nil {
		panic("bench: kernel ran under the trace backend but recorded no trace")
	}
	return KernelTraceRow{
		Kernel:    kernel,
		P:         st.P,
		Steps:     uint64(st.Steps),
		Barriers:  uint64(st.Barriers),
		Singles:   uint64(st.Singles),
		Rounds:    st.Rounds,
		IterMax:   st.MaxIters(),
		IterTotal: st.TotalIters(),
	}
}

// countWorkload builds the standard counting-sweep workload for a
// registered kernel: a random graph of the requested size (undirected when
// the kernel demands symmetry), a chain of `vertices` nodes for the EREW
// ranker, or the fixed 512-element list for maxfind (its work is N², so the
// BFS-sized n would swamp the replay for no extra information).
func countWorkload(d *kernel.Descriptor, vertices, edges int, seed int64) kernel.Workload {
	switch d.Input {
	case kernel.InputList:
		const maxfindN = 512
		return kernel.Workload{List: randomList(maxfindN, seed), Seed: uint64(seed)}
	case kernel.InputChain:
		return kernel.Workload{Next: listrank.RandomList(vertices, seed), Seed: uint64(seed)}
	default:
		g := graph.ConnectedRandom(vertices, edges, seed)
		if d.Symmetric {
			g = graph.RandomUndirected(vertices, edges, seed)
		}
		return kernel.Workload{Graph: g, Seed: uint64(seed)}
	}
}

// countCells is the concurrent-write cell count a workload exposes to the
// counting resolver and the contention probe: one per vertex or list
// element, none for the EREW chain.
func countCells(d *kernel.Descriptor, w kernel.Workload) int {
	switch d.Input {
	case kernel.InputList:
		return len(w.List)
	case kernel.InputChain:
		return 0
	default:
		return w.Graph.NumVertices()
	}
}

// KernelOpCounts runs every registered kernel exposing the generic-resolver
// hook (BFS and CC in the base suite) over a generated random graph once
// per counting-capable method under the trace backend and reports the
// atomic traffic each method generated — the whole-kernel extension of the
// single-cell Section 6 experiment — alongside the step/barrier structure
// of the traced run. Results are validated before being reported.
func KernelOpCounts(reg *kernel.Registry, threads, vertices, edges int, seed int64) []KernelOpRow {
	m := machine.New(threads)
	defer m.Close()
	var rows []KernelOpRow
	for _, d := range reg.All() {
		w := countWorkload(d, vertices, edges, seed)
		inst := d.New(m, w)
		rr, ok := inst.(kernel.ResolverRunner)
		if !ok {
			continue
		}
		for _, method := range kernelOpMethods {
			if !d.SupportsMethod(method) {
				continue
			}
			var ops cw.OpCounts
			r := cw.NewCountingResolver(method, countCells(d, w), &ops)
			inst.Prepare(kernel.Settings{Exec: machine.ExecTrace, Method: method})
			rr.RunResolver(machine.ExecTrace, r)
			if err := inst.Validate(); err != nil {
				panic(fmt.Sprintf("bench: kernelops %s %v: %v", d.Name, method, err))
			}
			loads, rmws, wins := ops.Snapshot()
			st := inst.Trace()
			if st == nil {
				panic("bench: kernelops " + d.Name + " recorded no trace")
			}
			rows = append(rows, KernelOpRow{
				Kernel: d.Name, Method: method,
				Loads: loads, RMWs: rmws, Wins: wins,
				Steps: uint64(st.Steps), Barriers: uint64(st.Barriers),
			})
		}
	}
	return rows
}

// KernelTraceCounts replays every registered kernel once under the trace
// backend with P logical workers and reports each run's structural cost.
// Every result is validated before its trace is reported. A kernel added by
// a single registration shows up here with no other edits.
func KernelTraceCounts(reg *kernel.Registry, threads, vertices, edges int, seed int64) []KernelTraceRow {
	m := machine.New(threads, machine.WithExec(machine.ExecTrace))
	defer m.Close()
	var rows []KernelTraceRow
	for _, d := range reg.All() {
		w := countWorkload(d, vertices, edges, seed)
		inst := d.New(m, w)
		s := kernel.Settings{Exec: machine.ExecTrace, Method: cw.CASLT}
		if len(d.Methods) > 0 && !d.SupportsMethod(cw.CASLT) {
			s.Method = d.Methods[0]
		}
		inst.Prepare(s)
		inst.Run(s)
		if err := inst.Validate(); err != nil {
			panic(fmt.Sprintf("bench: kerneltrace %s: %v", d.Name, err))
		}
		rows = append(rows, traceRow(d.Name, inst.Trace()))
	}
	return rows
}

// FormatKernelOps renders the per-kernel operation counts as an aligned
// table.
func FormatKernelOps(w io.Writer, vertices, edges int, rows []KernelOpRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== kernel-ops: selection-protocol operations per full run (n=%d, m=%d) ==\n", vertices, edges)
	out := [][]string{{"kernel", "method", "loads", "atomic RMWs", "wins", "steps", "barriers"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Kernel,
			r.Method.String(),
			strconv.FormatUint(r.Loads, 10),
			strconv.FormatUint(r.RMWs, 10),
			strconv.FormatUint(r.Wins, 10),
			strconv.FormatUint(r.Steps, 10),
			strconv.FormatUint(r.Barriers, 10),
		})
	}
	writeAligned(&b, out)
	b.WriteString("\nwins are identical across methods (same algorithm, one winner per\n" +
		"target per round); the gatekeeper turns every attempt into an atomic RMW,\n" +
		"the pre-checked variants turn almost all of them into plain loads.\n" +
		"steps/barriers come from the trace backend's deterministic replay:\n" +
		"the synchronization structure every method pays for identically.\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatKernelTraces renders the per-kernel structural costs as an aligned
// table.
func FormatKernelTraces(w io.Writer, vertices, edges int, rows []KernelTraceRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== kernel-trace: structural cost per full run (n=%d, m=%d; maxfind n=512) ==\n", vertices, edges)
	out := [][]string{{"kernel", "p", "steps", "barriers", "singles", "cw rounds", "iter max", "iter total"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Kernel,
			strconv.Itoa(r.P),
			strconv.FormatUint(r.Steps, 10),
			strconv.FormatUint(r.Barriers, 10),
			strconv.FormatUint(r.Singles, 10),
			strconv.FormatUint(uint64(r.Rounds), 10),
			strconv.FormatUint(r.IterMax, 10),
			strconv.FormatUint(r.IterTotal, 10),
		})
	}
	writeAligned(&b, out)
	b.WriteString("\nsteps are work-shared loops; barriers are the synchronizations a timed\n" +
		"backend would execute (pool: fork/join steps; team: sense barriers).\n" +
		"iter max / p vs iter total / p² is the unit-cost load imbalance.\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// KernelOpsJSONRows converts the op-count rows to the machine-readable
// trajectory rows. They carry counts rather than a timing, so NsOp stays
// zero and the exec field records the trace backend that produced them.
func KernelOpsJSONRows(rows []KernelOpRow, threads int) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:    "kernelops",
			Kernel:   r.Kernel,
			Method:   r.Method.String(),
			Exec:     machine.ExecTrace.String(),
			Threads:  threads,
			Loads:    r.Loads,
			RMWs:     r.RMWs,
			Wins:     r.Wins,
			Steps:    r.Steps,
			Barriers: r.Barriers,
		})
	}
	return out
}

// KernelTraceJSONRows converts the trace rows to the machine-readable
// trajectory rows.
func KernelTraceJSONRows(rows []KernelTraceRow) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:     "kerneltrace",
			Kernel:    r.Kernel,
			Exec:      machine.ExecTrace.String(),
			Threads:   r.P,
			Steps:     r.Steps,
			Barriers:  r.Barriers,
			Singles:   r.Singles,
			Rounds:    uint64(r.Rounds),
			IterMax:   r.IterMax,
			IterTotal: r.IterTotal,
		})
	}
	return out
}
