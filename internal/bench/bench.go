// Package bench is the experiment harness that regenerates the paper's
// evaluation (Figures 5 through 12): for each figure it sweeps the same
// parameter the paper sweeps, times every concurrent-write method on the
// same prepared inputs, and renders a table with per-point speedups and the
// geometric-mean speedup the paper reports.
//
// Timing follows the paper's protocol: "any provided measurement of
// execution time excludes all time spent in initialization code" — kernels
// pre-allocate in NewKernel and re-initialize in Prepare, and only Run is
// inside the timed region. Each point is measured Reps times and the median
// is reported.
//
// The package divides into timed drivers and counting/observability
// drivers, and the distinction matters when reading its numbers:
//
//   - TIMED (production measurement): the figure sweeps (figures.go), the
//     round-overhead microbenchmark (roundoverhead.go), the edge-balance
//     sweep (edgebalance.go) and the list-ranking sweep (listrank.go) run
//     uninstrumented kernels and report wall time.
//   - COUNTING/OBSERVABILITY (never timings): the Section-6 op-count table
//     (opcount.go) and the whole-kernel op counts (kernelops.go) run the
//     test-only counting resolvers under the serial trace backend, and the
//     live-contention sweep (metrics.go) runs instrumented kernels with the
//     per-cell probe attached; all three deliberately report operation
//     counts without ns/op, because their instrumentation perturbs timing.
package bench

import (
	"fmt"
	"io"
	"time"

	"crcwpram/internal/bench/sweep"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	evtrace "crcwpram/internal/core/trace"
	"crcwpram/internal/graph"
	"crcwpram/internal/sched"
	"crcwpram/internal/stats"
)

// Config controls an experiment sweep. Zero values are filled from
// DefaultConfig.
type Config struct {
	// Threads is the worker count for fixed-thread figures (the paper
	// uses 32, the full core count of an Andes node).
	Threads int
	// ThreadSweep is the x-axis for the threads figures (6, 9, 12).
	ThreadSweep []int
	// Reps is the number of repetitions per point; the median is
	// reported.
	Reps int
	// Seed makes workload generation deterministic.
	Seed int64
	// Methods are the concurrent-write methods to compare; defaults to
	// the paper's set for the figure at hand.
	Methods []cw.Method
	// Exec selects how kernels drive the machine: machine.ExecPool (one
	// pool round per ParallelFor, the default) or machine.ExecTeam (one
	// persistent parallel region per kernel).
	Exec machine.Exec

	// MaxSizes is the list-size x-axis of Figure 5.
	MaxSizes []int
	// MaxN is the fixed list size of Figure 6 (paper: 60K).
	MaxN int

	// BFSVertices is the fixed vertex count of Figures 7 and 9 (paper:
	// 100K).
	BFSVertices int
	// BFSEdgeSweep is the edge-count x-axis of Figure 7.
	BFSEdgeSweep []int
	// BFSEdges is the fixed edge count of Figures 8 and 9 (paper: 30M).
	BFSEdges int
	// BFSVertexSweep is the vertex-count x-axis of Figure 8.
	BFSVertexSweep []int

	// CCVertices, CCEdgeSweep, CCEdges, CCVertexSweep mirror the BFS
	// fields for Figures 10-12.
	CCVertices    int
	CCEdgeSweep   []int
	CCEdges       int
	CCVertexSweep []int

	// ListRankSizes is the list-length x-axis of the list-ranking sweep
	// (the EREW comparison point the paper's conclusion proposes).
	ListRankSizes []int

	// Balance selects the work-partitioning policy the BFS figures hand to
	// their kernels (the -balance axis); the zero value is the paper's
	// vertex-count split.
	Balance graph.Balance
	// Policy selects the machines' loop-scheduling policy for the figure
	// and list-ranking sweeps (the -policy axis); the zero value is Block,
	// the static split every other sweep uses.
	Policy sched.Policy
	// EBScale and EBStar size the edge-balance sweep's workloads: an RMAT
	// graph on 2^EBScale vertices with 8·2^EBScale edges, and the star on
	// EBStar vertices.
	EBScale int
	EBStar  int

	// StealScale sizes the stealing sweep's workloads (an RMAT graph and a
	// uniform random graph, both on 2^StealScale vertices with
	// 4·2^StealScale edges); StealThreads is its worker-count axis.
	StealScale   int
	StealThreads []int

	// LocScale sizes the locality sweep's workload (an RMAT graph on
	// 2^LocScale vertices with 8·2^LocScale edges); LocThreads is its
	// worker-count axis; Relabels restricts its CSR-relabeling axis (the
	// -relabel list; empty means all of graph.RelabelModes).
	LocScale   int
	LocThreads []int
	Relabels   []graph.RelabelMode

	// Log, when non-nil, receives progress lines during a sweep.
	Log io.Writer

	// Events, when non-nil, attaches an event-trace flight recorder
	// (internal/core/trace) to every machine the sweeps build through
	// the sweep engine. The caller owns the sink: it can serve the live
	// endpoint while sweeps run and drain the merged Timeline when they
	// finish. Nil (the default) is tracing off. Timed medians taken with
	// a sink attached carry the recorder's (small, benchmarked) span
	// cost; the committed figure baselines are always produced with it
	// nil.
	Events *evtrace.Sink
}

// newRunner builds the sweep engine for one driver, threading the
// config's event-trace sink (nil means tracing off) so every machine a
// sweep creates shows up in the merged timeline.
func (cfg Config) newRunner() *sweep.Runner {
	r := sweep.NewRunner(cfg.Reps)
	r.Events = cfg.Events
	return r
}

// DefaultConfig returns a configuration scaled to finish in minutes on a
// small shared machine while preserving every sweep's shape. Use
// PaperConfig for the paper's actual sizes.
func DefaultConfig() Config {
	return Config{
		Threads:        4,
		ThreadSweep:    []int{1, 2, 4, 8, 16, 32},
		Reps:           3,
		Seed:           42,
		MaxSizes:       []int{256, 512, 1024, 2048, 4096},
		MaxN:           2048,
		BFSVertices:    20000,
		BFSEdgeSweep:   []int{50000, 100000, 200000, 400000, 800000},
		BFSEdges:       400000,
		BFSVertexSweep: []int{5000, 10000, 20000, 40000, 80000},
		CCVertices:     20000,
		CCEdgeSweep:    []int{50000, 100000, 200000, 400000, 800000},
		CCEdges:        400000,
		CCVertexSweep:  []int{5000, 10000, 20000, 40000, 80000},
		ListRankSizes:  []int{4096, 16384, 65536},
		EBScale:        16,
		EBStar:         1 << 16,
		StealScale:     16,
		StealThreads:   []int{2, 4, 8},
		LocScale:       16,
		LocThreads:     []int{2, 4, 8},
		Relabels:       graph.RelabelModes,
	}
}

// TinyConfig returns a miniature configuration for smoke tests: every
// figure completes in seconds. Shapes measured at this scale are not
// meaningful.
func TinyConfig() Config {
	return Config{
		Threads:        2,
		ThreadSweep:    []int{1, 2},
		Reps:           1,
		Seed:           42,
		MaxSizes:       []int{64, 128},
		MaxN:           128,
		BFSVertices:    500,
		BFSEdgeSweep:   []int{1000, 2000},
		BFSEdges:       2000,
		BFSVertexSweep: []int{250, 500},
		CCVertices:     500,
		CCEdgeSweep:    []int{1000, 2000},
		CCEdges:        2000,
		CCVertexSweep:  []int{250, 500},
		ListRankSizes:  []int{128, 256},
		EBScale:        8,
		EBStar:         1 << 8,
		StealScale:     8,
		StealThreads:   []int{2, 4},
		LocScale:       8,
		LocThreads:     []int{2},
		Relabels:       graph.RelabelModes,
	}
}

// PaperConfig returns the paper's experimental parameters: 32 threads,
// 100K-vertex graphs with up to 30M edges, 60K-element lists. Running it
// requires a machine comparable to an OLCF Andes node.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Threads = 32
	c.ThreadSweep = []int{1, 2, 4, 8, 16, 32}
	c.Reps = 5
	c.MaxSizes = []int{10000, 20000, 30000, 40000, 50000, 60000}
	c.MaxN = 60000
	c.BFSVertices = 100000
	c.BFSEdgeSweep = []int{1000000, 5000000, 10000000, 20000000, 30000000}
	c.BFSEdges = 30000000
	c.BFSVertexSweep = []int{25000, 50000, 100000, 200000, 400000}
	c.CCVertices = 100000
	c.CCEdgeSweep = []int{1000000, 5000000, 10000000, 20000000, 30000000}
	c.CCEdges = 30000000
	c.CCVertexSweep = []int{25000, 50000, 100000, 200000, 400000}
	c.ListRankSizes = []int{100000, 400000, 1600000}
	return c
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Threads == 0 {
		c.Threads = d.Threads
	}
	if len(c.ThreadSweep) == 0 {
		c.ThreadSweep = d.ThreadSweep
	}
	if c.Reps == 0 {
		c.Reps = d.Reps
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if len(c.MaxSizes) == 0 {
		c.MaxSizes = d.MaxSizes
	}
	if c.MaxN == 0 {
		c.MaxN = d.MaxN
	}
	if c.BFSVertices == 0 {
		c.BFSVertices = d.BFSVertices
	}
	if len(c.BFSEdgeSweep) == 0 {
		c.BFSEdgeSweep = d.BFSEdgeSweep
	}
	if c.BFSEdges == 0 {
		c.BFSEdges = d.BFSEdges
	}
	if len(c.BFSVertexSweep) == 0 {
		c.BFSVertexSweep = d.BFSVertexSweep
	}
	if c.CCVertices == 0 {
		c.CCVertices = d.CCVertices
	}
	if len(c.CCEdgeSweep) == 0 {
		c.CCEdgeSweep = d.CCEdgeSweep
	}
	if c.CCEdges == 0 {
		c.CCEdges = d.CCEdges
	}
	if len(c.CCVertexSweep) == 0 {
		c.CCVertexSweep = d.CCVertexSweep
	}
	if len(c.ListRankSizes) == 0 {
		c.ListRankSizes = d.ListRankSizes
	}
	if c.EBScale == 0 {
		c.EBScale = d.EBScale
	}
	if c.EBStar == 0 {
		c.EBStar = d.EBStar
	}
	if c.StealScale == 0 {
		c.StealScale = d.StealScale
	}
	if len(c.StealThreads) == 0 {
		c.StealThreads = d.StealThreads
	}
	if c.LocScale == 0 {
		c.LocScale = d.LocScale
	}
	if len(c.LocThreads) == 0 {
		c.LocThreads = d.LocThreads
	}
	if len(c.Relabels) == 0 {
		c.Relabels = d.Relabels
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format, args...)
	}
}

// newMachine builds a sweep machine honoring the config's scheduling
// policy.
func (c Config) newMachine(p int) *machine.Machine {
	return machine.New(p, machine.WithPolicy(c.Policy))
}

// Point is one measured cell of a figure: method's median time at one
// x-axis position.
type Point struct {
	Median time.Duration
	Sample stats.Sample
}

// Series is one curve of a figure.
type Series struct {
	Method cw.Method
	Points []Point
}

// Table is one reproduced figure.
type Table struct {
	ID       string // e.g. "fig5"
	Title    string
	Kernel   string // kernel name for machine-readable output
	Exec     string // execution mode the series were measured under
	Balance  string // work-partitioning policy, when the kernel honors one
	Policy   string // machine loop-scheduling policy the sweep ran under
	XLabel   string
	Xs       []int
	Series   []Series
	Baseline cw.Method // speedups reported as baseline / method
}

// seriesFor returns the Series for a method, or nil.
func (t *Table) seriesFor(m cw.Method) *Series {
	for i := range t.Series {
		if t.Series[i].Method == m {
			return &t.Series[i]
		}
	}
	return nil
}

// Speedups returns, for the given method, baseline_time / method_time at
// every x position.
func (t *Table) Speedups(m cw.Method) []float64 {
	base := t.seriesFor(t.Baseline)
	ser := t.seriesFor(m)
	if base == nil || ser == nil {
		return nil
	}
	out := make([]float64, len(t.Xs))
	for i := range t.Xs {
		out[i] = stats.Speedup(base.Points[i].Median, ser.Points[i].Median)
	}
	return out
}

// GeoMeanSpeedup returns the geometric-mean speedup of a method over the
// baseline across the sweep — the number the paper quotes per figure.
func (t *Table) GeoMeanSpeedup(m cw.Method) float64 {
	return stats.GeoMean(t.Speedups(m))
}

// MaxSpeedup returns the largest per-point speedup of a method over the
// baseline.
func (t *Table) MaxSpeedup(m cw.Method) float64 {
	best := 0.0
	for _, s := range t.Speedups(m) {
		if s > best {
			best = s
		}
	}
	return best
}
