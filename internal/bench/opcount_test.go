package bench

import (
	"bytes"
	"strings"
	"testing"

	"crcwpram/internal/kernel"
)

func TestOpCountTableValidatesSectionSix(t *testing.T) {
	const threads = 4
	sweep := []int{100, 1000, 10000}
	rows := OpCountTable(threads, sweep)
	if len(rows) != len(sweep) {
		t.Fatalf("%d rows, want %d", len(rows), len(sweep))
	}
	for _, r := range rows {
		p := uint64(r.PPRAM)
		// Gatekeeper: one RMW per virtual writer, exactly.
		if r.Gate[1] != p {
			t.Fatalf("P_PRAM=%d: gatekeeper RMWs = %d, want %d", r.PPRAM, r.Gate[1], p)
		}
		// CAS-LT: one load per writer, RMWs bounded by the physical
		// concurrency (losers that raced past the pre-check), never by
		// P_PRAM.
		if r.CASLT[0] != p {
			t.Fatalf("P_PRAM=%d: caslt loads = %d, want %d", r.PPRAM, r.CASLT[0], p)
		}
		if r.CASLT[1] > uint64(threads+1) {
			t.Fatalf("P_PRAM=%d: caslt RMWs = %d, want <= P_Phys+1 = %d", r.PPRAM, r.CASLT[1], threads+1)
		}
		// Checked gatekeeper: same load/RMW split as CAS-LT in this
		// single-round experiment.
		if r.GateChecked[0] != p {
			t.Fatalf("P_PRAM=%d: gate-checked loads = %d, want %d", r.PPRAM, r.GateChecked[0], p)
		}
		if r.GateChecked[1] > uint64(threads+1) {
			t.Fatalf("P_PRAM=%d: gate-checked RMWs = %d, want <= %d", r.PPRAM, r.GateChecked[1], threads+1)
		}
		// Exactly one winner everywhere.
		if r.CASLT[2] != 1 || r.Gate[2] != 1 || r.GateChecked[2] != 1 {
			t.Fatalf("P_PRAM=%d: wins = %d/%d/%d, want 1 each", r.PPRAM, r.CASLT[2], r.GateChecked[2], r.Gate[2])
		}
	}

	var out bytes.Buffer
	if err := FormatOpCounts(&out, threads, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"section-6", "P_PRAM", "gatekeeper RMWs"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("formatted op-count table missing %q", want)
		}
	}
}

func TestKernelOpCounts(t *testing.T) {
	rows := KernelOpCounts(kernel.Default, 2, 300, 1200, 7)
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (2 kernels x 3 methods)", len(rows))
	}
	byKey := map[string]KernelOpRow{}
	for _, r := range rows {
		byKey[r.Kernel+"/"+r.Method.String()] = r
	}
	for _, kernel := range []string{"bfs", "cc"} {
		caslt := byKey[kernel+"/caslt"]
		gate := byKey[kernel+"/gatekeeper"]
		checked := byKey[kernel+"/gatekeeper-checked"]
		// Same algorithm, same winner structure.
		if caslt.Wins == 0 {
			t.Fatalf("%s: no wins recorded", kernel)
		}
		// The plain gatekeeper never uses loads and pays an RMW per
		// attempt; the pre-checked methods can only have fewer RMWs.
		if gate.Loads != 0 {
			t.Fatalf("%s: plain gatekeeper recorded %d loads", kernel, gate.Loads)
		}
		if caslt.RMWs > gate.RMWs || checked.RMWs > gate.RMWs {
			t.Fatalf("%s: pre-checked methods exceeded plain gatekeeper RMWs (%d/%d vs %d)",
				kernel, caslt.RMWs, checked.RMWs, gate.RMWs)
		}
	}

	var out bytes.Buffer
	if err := FormatKernelOps(&out, 300, 1200, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kernel-ops") || !strings.Contains(out.String(), "atomic RMWs") {
		t.Fatalf("kernel-ops table malformed:\n%s", out.String())
	}
}

func TestSimulationTable(t *testing.T) {
	rows := SimulationTable(2, 1, []int{8, 32}, 5)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Direct <= 0 || r.AllPairs <= 0 || r.Tournament <= 0 {
			t.Fatalf("non-positive timing in %+v", r)
		}
	}
	var out bytes.Buffer
	if err := FormatSimulations(&out, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"simulations", "all-pairs", "tournament", "log P"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("simulation table missing %q:\n%s", want, out.String())
		}
	}
}
