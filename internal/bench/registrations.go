package bench

// The sweeps are configured by kernel *name* against the shared registry
// (kernel.Default); importing the algorithm packages is what populates it.
// Every package under internal/alg self-registers in its init, so linking
// them here is the bench suite's single registration point.
import (
	_ "crcwpram/internal/alg/bfs"
	_ "crcwpram/internal/alg/cc"
	_ "crcwpram/internal/alg/listrank"
	_ "crcwpram/internal/alg/matching"
	_ "crcwpram/internal/alg/maxfind"
	_ "crcwpram/internal/alg/mis"
)
