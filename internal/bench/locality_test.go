package bench

import (
	"bytes"
	"strings"
	"testing"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// TestLocalityModelAcceptance is the sweep's headline gate at the default
// workload size: on RMAT-16 at P=8 the bit-packed pull must model at
// least 8x fewer distinct line touches than the word representation (the
// asymptotic packing factor is 32x; the gate leaves room for the bitmap's
// extra clearing rounds and the shared level stores).
func TestLocalityModelAcceptance(t *testing.T) {
	cfg := DefaultConfig()
	g := graph.RMAT(cfg.LocScale, 8<<cfg.LocScale, 0.57, 0.19, 0.19, cfg.Seed)
	seq := bfs.Sequential(g, 0)
	lm := newLineModel(newBFSModel(g, 0, 8, seq))
	for _, kernel := range locKernels {
		word := lm.Lines(kernel, false)
		bit := lm.Lines(kernel, true)
		if word == 0 || bit == 0 {
			t.Fatalf("%s: degenerate model word=%d bitmap=%d", kernel, word, bit)
		}
		ratio := float64(word) / float64(bit)
		t.Logf("%s: word=%d bitmap=%d ratio=%.1fx", kernel, word, bit, ratio)
		if kernel == "bfs-pull" && ratio < 8 {
			t.Fatalf("bfs-pull: bitmap models only %.1fx fewer line touches, want >= 8x", ratio)
		}
	}
}

// TestLocalityModelDeterministic pins that the model is a pure function of
// its inputs — the property that makes committed line counts diffable.
func TestLocalityModelDeterministic(t *testing.T) {
	g := graph.RMAT(10, 8<<10, 0.57, 0.19, 0.19, 7)
	seq := bfs.Sequential(g, 0)
	lm := newLineModel(newBFSModel(g, 0, 4, seq))
	for _, kernel := range locKernels {
		for _, bitmap := range []bool{false, true} {
			a := lm.Lines(kernel, bitmap)
			b := lm.Lines(kernel, bitmap)
			if a != b {
				t.Fatalf("%s bitmap=%v: model not deterministic (%d vs %d)", kernel, bitmap, a, b)
			}
		}
	}
}

// TestLocalitySweep runs the tiny sweep end to end and checks the row
// grid, the JSON conversion and the validator round trip.
func TestLocalitySweep(t *testing.T) {
	cfg := TinyConfig()
	rows, err := Locality(cfg, machine.ExecPool)
	if err != nil {
		t.Fatal(err)
	}
	want := len(graph.RelabelModes) * len(cfg.LocThreads) * len(locKernels) * len(locReprs)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		bitmap := r.Repr == "bitmap"
		if bitmap != (r.Lines > 0) || bitmap != (r.LinesWord > 0) {
			t.Fatalf("row %+v: line model must ride on bitmap rows exactly", r)
		}
		relabeled := r.Relabel != graph.RelabelNone
		if relabeled != (r.PermHash != 0) {
			t.Fatalf("row %+v: perm hash must ride on relabeled rows exactly", r)
		}
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, LocalityJSONRows(rows)); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateJSON(&buf)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if n != want {
		t.Fatalf("validated %d rows, want %d", n, want)
	}
	var tbl strings.Builder
	if err := FormatLocality(&tbl, rows); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"relabel=none", "relabel=degree", "relabel=bfs", "bfs-pull", "bitmap"} {
		if !strings.Contains(tbl.String(), needle) {
			t.Fatalf("table output missing %q:\n%s", needle, tbl.String())
		}
	}
}

// TestValidateJSONLocalityRejects exercises the validator's locality
// branch: each malformed row must fail with a distinctive error.
func TestValidateJSONLocalityRejects(t *testing.T) {
	base := Row{
		Bench: "locality", Kernel: "bfs-pull", Method: "fetch-or", Exec: "pool",
		Threads: 2, NsOp: 100, Graph: "rmat8", Repr: "bitmap", Relabel: "none",
		LineTouches: 10, LineTouchesWord: 100,
	}
	cases := []struct {
		name   string
		mutate func(*Row)
		want   string
	}{
		{"bad repr", func(r *Row) { r.Repr = "nibble" }, "repr"},
		{"bad relabel", func(r *Row) { r.Relabel = "hilbert" }, "relabel"},
		{"bitmap without model", func(r *Row) { r.LineTouches = 0 }, "line-touch"},
		{"word with model", func(r *Row) { r.Repr = "word" }, "line touches"},
		{"relabel without hash", func(r *Row) { r.Relabel = "degree" }, "perm_hash"},
		{"hash without relabel", func(r *Row) { r.PermHash = 99 }, "perm_hash"},
		{"missing graph", func(r *Row) { r.Graph = "" }, "graph"},
	}
	for _, tc := range cases {
		row := base
		tc.mutate(&row)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, []Row{row}); err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateJSON(&buf); err == nil {
			t.Fatalf("%s: validator accepted malformed row", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// And the well-formed base row must pass.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Row{base}); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateJSON(&buf); err != nil {
		t.Fatalf("well-formed row rejected: %v", err)
	}
}
