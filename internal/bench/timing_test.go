package bench

import "testing"

func TestMeasure(t *testing.T) {
	prepares, runs := 0, 0
	p := measure(4, func() { prepares++ }, func() {
		if runs == prepares {
			t.Fatal("run executed before its prepare")
		}
		runs++
	})
	if prepares != 4 || runs != 4 {
		t.Fatalf("prepares=%d runs=%d, want 4 each", prepares, runs)
	}
	if p.Sample.N() != 4 {
		t.Fatalf("sample n=%d, want 4", p.Sample.N())
	}
	if p.Median != p.Sample.Median() {
		t.Fatalf("point median %v != sample median %v", p.Median, p.Sample.Median())
	}
}

func TestMedianNs(t *testing.T) {
	resets, bodies := 0, 0
	ns := medianNs(3, func() { resets++ }, func() { bodies++ })
	if resets != 3 || bodies != 3 {
		t.Fatalf("resets=%d bodies=%d, want 3 each", resets, bodies)
	}
	if ns < 0 {
		t.Fatalf("median %v ns, want non-negative", ns)
	}
}

func TestWarmup(t *testing.T) {
	calls := 0
	warmup(func() { calls++ })
	if calls != 1 {
		t.Fatalf("warmup ran the body %d times, want exactly once", calls)
	}
}
