package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
)

// OpCountRow is one row of the Section 6 validation experiment: the
// atomic operations each method executes when pprm virtual processors
// concurrently write one shared cell.
type OpCountRow struct {
	PPRAM int
	// Per method: loads, atomic RMWs, wins.
	CASLT       [3]uint64
	GateChecked [3]uint64
	Gate        [3]uint64
}

// OpCountTable empirically validates the paper's Section 6 asymptotics:
// for a concurrent-write step of P_PRAM virtual processors on one cell,
// the gatekeeper executes Θ(P_PRAM) atomic read-modify-writes (full
// serialization), the checked gatekeeper and CAS-LT replace almost all of
// them with plain loads, and CAS-LT's RMW count stays bounded by the
// physical concurrency regardless of P_PRAM. threads is P_Phys.
func OpCountTable(threads int, pprmSweep []int) []OpCountRow {
	m := machine.New(threads)
	defer m.Close()
	rows := make([]OpCountRow, 0, len(pprmSweep))
	for _, pprm := range pprmSweep {
		var row OpCountRow
		row.PPRAM = pprm

		var ops cw.OpCounts
		cell := cw.NewCountingCell(&ops)
		m.ParallelFor(pprm, func(int) { cell.TryClaim(1) })
		row.CASLT[0], row.CASLT[1], row.CASLT[2] = ops.Snapshot()

		ops.Reset()
		gate := cw.NewCountingGate(&ops)
		m.ParallelFor(pprm, func(int) { gate.TryEnterChecked() })
		row.GateChecked[0], row.GateChecked[1], row.GateChecked[2] = ops.Snapshot()

		ops.Reset()
		gate = cw.NewCountingGate(&ops)
		m.ParallelFor(pprm, func(int) { gate.TryEnter() })
		row.Gate[0], row.Gate[1], row.Gate[2] = ops.Snapshot()

		rows = append(rows, row)
	}
	return rows
}

// FormatOpCounts renders the op-count experiment as an aligned table.
func FormatOpCounts(w io.Writer, threads int, rows []OpCountRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== section-6: atomic operations per concurrent-write step (P_Phys=%d workers) ==\n", threads)
	out := [][]string{{
		"P_PRAM",
		"caslt loads", "caslt RMWs",
		"gate-checked loads", "gate-checked RMWs",
		"gatekeeper RMWs",
	}}
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.PPRAM),
			strconv.FormatUint(r.CASLT[0], 10),
			strconv.FormatUint(r.CASLT[1], 10),
			strconv.FormatUint(r.GateChecked[0], 10),
			strconv.FormatUint(r.GateChecked[1], 10),
			strconv.FormatUint(r.Gate[1], 10),
		})
	}
	writeAligned(&b, out)
	b.WriteString("\nthe paper's Section 6 claims, checked: gatekeeper RMWs = P_PRAM (full\n" +
		"serialization); CAS-LT RMWs stay O(P_Phys) while its loads scale as P_PRAM;\n" +
		"the checked gatekeeper recovers most of the gap but still needs the O(N)\n" +
		"reset pass between rounds, which CAS-LT never pays.\n")
	_, err := io.WriteString(w, b.String())
	return err
}
