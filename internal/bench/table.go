package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/stats"
)

// Format renders the table the way the paper's figures read: one row per
// x-axis value with each method's median time, followed by per-method
// speedup rows against the baseline and the geometric-mean / maximum
// speedups the paper quotes in its text.
func (t *Table) Format(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)

	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Method.String())
	}
	rows := [][]string{header}
	for i, x := range t.Xs {
		row := []string{formatX(x)}
		for _, s := range t.Series {
			row = append(row, stats.FormatDuration(s.Points[i].Median))
		}
		rows = append(rows, row)
	}
	writeAligned(&b, rows)

	base := t.seriesFor(t.Baseline)
	if base != nil {
		fmt.Fprintf(&b, "\nspeedup vs %s:\n", t.Baseline)
		rows = rows[:0]
		header = []string{t.XLabel}
		for _, s := range t.Series {
			if s.Method == t.Baseline {
				continue
			}
			header = append(header, s.Method.String())
		}
		rows = append(rows, header)
		for i, x := range t.Xs {
			row := []string{formatX(x)}
			for _, s := range t.Series {
				if s.Method == t.Baseline {
					continue
				}
				row = append(row, stats.FormatRatio(stats.Speedup(base.Points[i].Median, s.Points[i].Median)))
			}
			rows = append(rows, row)
		}
		geo := []string{"geomean"}
		max := []string{"max"}
		for _, s := range t.Series {
			if s.Method == t.Baseline {
				continue
			}
			geo = append(geo, stats.FormatRatio(t.GeoMeanSpeedup(s.Method)))
			max = append(max, stats.FormatRatio(t.MaxSpeedup(s.Method)))
		}
		rows = append(rows, geo, max)
		writeAligned(&b, rows)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatX(x int) string {
	switch {
	case x >= 1000000 && x%1000000 == 0:
		return strconv.Itoa(x/1000000) + "M"
	case x >= 1000 && x%1000 == 0:
		return strconv.Itoa(x/1000) + "K"
	default:
		return strconv.Itoa(x)
	}
}

// writeAligned renders rows as space-padded columns.
func writeAligned(b *strings.Builder, rows [][]string) {
	widths := make([]int, 0)
	for _, row := range rows {
		for c, cell := range row {
			if c >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%*s", widths[c], cell)
		}
		b.WriteByte('\n')
	}
}

// WriteCSV emits the raw medians (nanoseconds) for external plotting: one
// record per (x, method) pair.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", t.XLabel, "method", "exec", "median_ns", "reps"}); err != nil {
		return err
	}
	for _, s := range t.Series {
		for i, x := range t.Xs {
			rec := []string{
				t.ID,
				strconv.Itoa(x),
				s.Method.String(),
				t.Exec,
				strconv.FormatInt(s.Points[i].Median.Nanoseconds(), 10),
				strconv.Itoa(s.Points[i].Sample.N()),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
