package bench

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
	"crcwpram/internal/kernel"
	"crcwpram/internal/sched"
)

// MetricsRow is one kernel run's live-contention snapshot: the aggregated
// per-worker counters (internal/core/metrics) of a full run under a timed
// execution backend. Unlike the counting benches, which replay serially
// under the trace backend, these numbers come from genuinely concurrent
// runs — they show the contention the paper's protocols actually absorb,
// at the price of not being bit-for-bit repeatable.
type MetricsRow struct {
	Kernel string
	Method string // "" for listrank (EREW by construction: no CW method)
	Exec   machine.Exec
	// Policy is set only for the stealing-scheduler rows (the default
	// machine's rows leave it empty); those rows additionally carry the
	// deque-claim counters in the snapshot.
	Policy string
	Snap   metrics.Snapshot
}

// contentionMethods are the guarded selection protocols the contention
// table compares. Naive and Mutex are omitted: naive records every issued
// store as a win (no selection to observe) and mutex contention lives in
// the lock, not in a countable RMW.
var contentionMethods = []cw.Method{cw.CASLT, cw.GatekeeperChecked, cw.Gatekeeper}

// contentionRunMethods intersects the contention method set with a guarded
// descriptor's method axis; a kernel whose method is fixed by construction
// (an empty intersection) runs once under its own fixed method.
func contentionRunMethods(d *kernel.Descriptor) []cw.Method {
	var out []cw.Method
	for _, m := range contentionMethods {
		if d.SupportsMethod(m) {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		fixed := cw.CASLT
		if len(d.Methods) > 0 {
			fixed = d.Methods[0]
		}
		out = []cw.Method{fixed}
	}
	return out
}

// Contention runs every registered contention-classified kernel on a
// metrics-enabled machine under each requested timed backend (trace entries
// are skipped: the trace backend is serial, so its "contention" is vacuous
// and Ctx.Metrics is nil by design) and reports each run's aggregated
// metrics snapshot. ContentionNone and ContentionCAS kernels are skipped
// (no guarded round-structured CW to observe); the EREW ranker is the
// negative control whose counters must stay zero. The per-cell probe is
// attached for every run, so the table includes the paper's bound quantity
// — the maximum executed read-modify-writes any cell absorbed in a single
// round — and the run times are therefore NOT reported as measurements
// (the probe is an observer that adds a CAS per executed attempt).
//
// For CAS-LT rows the probe maximum is checked against the paper's bound:
// at most P executed CASes per cell per round, scaled by the descriptor's
// ProbeBoundFactor (2 for matching, whose propose and accept cell arrays
// share the probe's index space, giving two guarded writes per vertex id
// per round). A violation returns an error — it would falsify the claim
// the metrics layer exists to verify.
//
// Every result is validated against its sequential oracle before its
// snapshot is reported.
func Contention(reg *kernel.Registry, threads, vertices, edges int, seed int64, execs []machine.Exec) ([]MetricsRow, error) {
	m := machine.New(threads, machine.WithMetrics())
	defer m.Close()
	rec := m.Metrics()

	var rows []MetricsRow
	// run resets the recorder, attaches a cells-sized probe, executes one
	// prepared run under pprof labels identifying it (resetting again after
	// Prepare, whose untimed machine loops pollute the counters), validates,
	// then snapshots.
	run := func(d *kernel.Descriptor, inst kernel.Instance, name string, e machine.Exec, cells int, s kernel.Settings) error {
		rec.Reset()
		rec.EnableProbe(cells)
		var err error
		labels := pprof.Labels("kernel", d.Name, "method", name, "exec", e.String())
		pprof.Do(context.Background(), labels, func(context.Context) {
			inst.Prepare(s)
			rec.Reset()
			inst.Run(s)
			err = inst.Validate()
		})
		if err != nil {
			return fmt.Errorf("bench: metrics %s/%s/%s: %w", d.Name, name, e, err)
		}
		snap := m.Snapshot()
		if name == cw.CASLT.String() {
			bound := uint64(threads) * uint64(d.ProbeBoundFactor)
			if snap.MaxCellClaims > bound {
				return fmt.Errorf("bench: metrics %s/%s/%s: %d executed CASes on one cell in one round, paper bounds it by %d",
					d.Name, name, e, snap.MaxCellClaims, bound)
			}
		}
		rows = append(rows, MetricsRow{Kernel: d.Name, Method: name, Exec: e, Snap: snap})
		return nil
	}

	insts := map[string]kernel.Instance{}
	cells := map[string]int{}
	var swept []*kernel.Descriptor
	for _, d := range reg.All() {
		if d.Contention == kernel.ContentionNone || d.Contention == kernel.ContentionCAS {
			continue
		}
		w := countWorkload(d, vertices, edges, seed)
		insts[d.Name] = d.New(m, w)
		cells[d.Name] = countCells(d, w)
		swept = append(swept, d)
	}

	for _, e := range execs {
		if e == machine.ExecTrace {
			continue
		}
		for _, d := range swept {
			inst := insts[d.Name]
			if d.Contention == kernel.ContentionEREW {
				// The EREW kernels are the negative control: no concurrent
				// writes, so their rows carry only the time split with the
				// counters at zero. No probe, no method label.
				if err := run(d, inst, "", e, 0, kernel.Settings{Exec: e}); err != nil {
					return nil, err
				}
				continue
			}
			for _, method := range contentionRunMethods(d) {
				s := kernel.Settings{Exec: e, Method: method}
				if err := run(d, inst, method.String(), e, cells[d.Name], s); err != nil {
					return nil, err
				}
			}
		}
	}

	// The stealing-scheduler observability pass: random-mate CC on a
	// stealing-policy machine with its hooking loop opted into StealRange,
	// so the snapshot's deque-claim counters (chunks_local / steals /
	// steal_fails) are live alongside the usual contention split. Random
	// mate is the vehicle because its CAS-LT hooking both consumes round
	// ids (NextRound, so the rounds-to-convergence column stays populated)
	// and relaxes an arc-shaped irregular loop — the loop stealing exists
	// for. One row per timed backend, tagged with the policy. A registry
	// without the kernel (a pruned test registry) simply skips the pass.
	sd, ok := reg.Lookup("cc-randmate")
	if !ok {
		return rows, nil
	}
	sm := machine.New(threads, machine.WithMetrics(), machine.WithPolicy(sched.Stealing))
	defer sm.Close()
	srec := sm.Metrics()
	sw := countWorkload(sd, vertices, edges, seed)
	sinst := sd.New(sm, sw)
	for _, e := range execs {
		if e == machine.ExecTrace {
			continue
		}
		s := kernel.Settings{Exec: e, Method: cw.CASLT, Steal: kernel.StealOn}
		srec.Reset()
		srec.EnableProbe(countCells(sd, sw))
		sinst.Prepare(s)
		srec.Reset()
		sinst.Run(s)
		if err := sinst.Validate(); err != nil {
			return nil, fmt.Errorf("bench: metrics %s/caslt/%s policy=stealing: %w", sd.Name, e, err)
		}
		snap := sm.Snapshot()
		if snap.MaxCellClaims > uint64(threads)*uint64(sd.ProbeBoundFactor) {
			return nil, fmt.Errorf("bench: metrics %s/caslt/%s policy=stealing: %d executed CASes on one cell in one round, paper bounds it by %d",
				sd.Name, e, snap.MaxCellClaims, threads)
		}
		if snap.ChunksLocal == 0 {
			return nil, fmt.Errorf("bench: metrics %s/caslt/%s policy=stealing: no deque claims recorded", sd.Name, e)
		}
		rows = append(rows, MetricsRow{
			Kernel: sd.Name,
			Method: cw.CASLT.String(),
			Exec:   e,
			Policy: sched.Stealing.String(),
			Snap:   snap,
		})
	}
	return rows, nil
}

// FormatContention renders the contention snapshots as an aligned table.
func FormatContention(w io.Writer, threads, vertices, edges int, rows []MetricsRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== metrics: live contention per full run (p=%d, n=%d, m=%d; maxfind n=512) ==\n",
		threads, vertices, edges)
	out := [][]string{{"kernel", "method", "exec", "policy", "attempts", "wins", "losses",
		"skips", "max/cell/round", "rounds", "steals", "busy", "barrier", "roundwall"}}
	ms := func(ns int64) string {
		return time.Duration(ns).Round(10 * time.Microsecond).String()
	}
	for _, r := range rows {
		method := r.Method
		if method == "" {
			method = "-"
		}
		policy := r.Policy
		if policy == "" {
			policy = "-"
		}
		out = append(out, []string{
			r.Kernel,
			method,
			r.Exec.String(),
			policy,
			strconv.FormatUint(r.Snap.CASAttempts, 10),
			strconv.FormatUint(r.Snap.CASWins, 10),
			strconv.FormatUint(r.Snap.CASLosses, 10),
			strconv.FormatUint(r.Snap.PrecheckSkips, 10),
			strconv.FormatUint(r.Snap.MaxCellClaims, 10),
			strconv.FormatUint(r.Snap.Rounds, 10),
			strconv.FormatUint(r.Snap.Steals, 10),
			ms(r.Snap.BusyNs),
			ms(r.Snap.BarrierWaitNs),
			ms(r.Snap.RoundNs),
		})
	}
	writeAligned(&b, out)
	b.WriteString("\nattempts are executed RMWs (wins + losses); skips were resolved by the\n" +
		"plain-load pre-check without touching an atomic. max/cell/round is the\n" +
		"most RMWs any single cell absorbed in one round — the paper bounds it\n" +
		"by P for CAS-LT. busy/barrier sum each worker's in-loop vs waiting\n" +
		"time; roundwall is the coordinator's wall clock over parallel rounds.\n" +
		"The per-cell probe is attached, so these runs are NOT timings.\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ContentionJSONRows converts the contention snapshots to the
// machine-readable trajectory rows. Like the counting benches they carry
// no ns_op — the probe distorts timing — but unlike those they record the
// timed backend that produced them, because the contention itself is the
// measurement.
func ContentionJSONRows(rows []MetricsRow, threads int) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:         "metrics",
			Kernel:        r.Kernel,
			Method:        r.Method,
			Exec:          r.Exec.String(),
			Policy:        r.Policy,
			Threads:       threads,
			Rounds:        r.Snap.Rounds,
			CASAttempts:   r.Snap.CASAttempts,
			CASWins:       r.Snap.CASWins,
			CASLosses:     r.Snap.CASLosses,
			PrecheckSkips: r.Snap.PrecheckSkips,
			MaxCellClaims: r.Snap.MaxCellClaims,
			ChunksLocal:   r.Snap.ChunksLocal,
			Steals:        r.Snap.Steals,
			StealFails:    r.Snap.StealFails,
			BusyNs:        r.Snap.BusyNs,
			BarrierWaitNs: r.Snap.BarrierWaitNs,
			RoundNs:       r.Snap.RoundNs,
			RoundWallNs:   r.Snap.RoundWallNs,
		})
	}
	return out
}
