package bench

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/alg/listrank"
	"crcwpram/internal/alg/matching"
	"crcwpram/internal/alg/maxfind"
	"crcwpram/internal/alg/mis"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
	"crcwpram/internal/graph"
	"crcwpram/internal/sched"
)

// MetricsRow is one kernel run's live-contention snapshot: the aggregated
// per-worker counters (internal/core/metrics) of a full run under a timed
// execution backend. Unlike the counting benches, which replay serially
// under the trace backend, these numbers come from genuinely concurrent
// runs — they show the contention the paper's protocols actually absorb,
// at the price of not being bit-for-bit repeatable.
type MetricsRow struct {
	Kernel string
	Method string // "" for listrank (EREW by construction: no CW method)
	Exec   machine.Exec
	// Policy is set only for the stealing-scheduler rows (the default
	// machine's rows leave it empty); those rows additionally carry the
	// deque-claim counters in the snapshot.
	Policy string
	Snap   metrics.Snapshot
}

// contentionMethods are the guarded selection protocols the contention
// table compares. Naive and Mutex are omitted: naive records every issued
// store as a win (no selection to observe) and mutex contention lives in
// the lock, not in a countable RMW.
var contentionMethods = []cw.Method{cw.CASLT, cw.GatekeeperChecked, cw.Gatekeeper}

// Contention runs every kernel of the suite on a metrics-enabled machine
// under each requested timed backend (trace entries are skipped: the trace
// backend is serial, so its "contention" is vacuous and Ctx.Metrics is nil
// by design) and reports each run's aggregated metrics snapshot. The
// per-cell probe is attached for every run, so the table includes the
// paper's bound quantity — the maximum executed read-modify-writes any
// cell absorbed in a single round — and the run times are therefore NOT
// reported as measurements (the probe is an observer that adds a CAS per
// executed attempt).
//
// For CAS-LT rows the probe maximum is checked against the paper's bound:
// at most P executed CASes per cell per round (2P for matching, whose
// propose and accept cell arrays share the probe's index space, giving two
// guarded writes per vertex id per round). A violation returns an error —
// it would falsify the claim the metrics layer exists to verify.
//
// Every result is validated against its sequential oracle before its
// snapshot is reported.
func Contention(threads, vertices, edges int, seed int64, execs []machine.Exec) ([]MetricsRow, error) {
	m := machine.New(threads, machine.WithMetrics())
	defer m.Close()
	rec := m.Metrics()

	var rows []MetricsRow
	// run resets the recorder (Prepare's untimed machine loops have already
	// polluted it), attaches a cells-sized probe, executes body under pprof
	// labels identifying the run, validates, then snapshots.
	run := func(kernel, method string, e machine.Exec, cells int, body func() error) error {
		rec.Reset()
		rec.EnableProbe(cells)
		var err error
		labels := pprof.Labels("kernel", kernel, "method", method, "exec", e.String())
		pprof.Do(context.Background(), labels, func(context.Context) { err = body() })
		if err != nil {
			return fmt.Errorf("bench: metrics %s/%s/%s: %w", kernel, method, e, err)
		}
		snap := m.Snapshot()
		if method == cw.CASLT.String() {
			bound := uint64(threads)
			if kernel == "matching" {
				bound *= 2 // two cell arrays share the probe index space
			}
			if snap.MaxCellClaims > bound {
				return fmt.Errorf("bench: metrics %s/%s/%s: %d executed CASes on one cell in one round, paper bounds it by %d",
					kernel, method, e, snap.MaxCellClaims, bound)
			}
		}
		rows = append(rows, MetricsRow{Kernel: kernel, Method: method, Exec: e, Snap: snap})
		return nil
	}

	const maxfindN = 512
	list := randomList(maxfindN, seed)
	maxWant := maxfind.Sequential(list)
	mk := maxfind.NewKernel(m, maxfindN)

	bg := graph.ConnectedRandom(vertices, edges, seed)
	bk := bfs.NewKernel(m, bg)
	ug := graph.RandomUndirected(vertices, edges, seed)
	ck := cc.NewKernel(m, ug)
	sk := mis.NewKernel(m, ug)
	wk := matching.NewKernel(m, ug)

	next := listrank.RandomList(vertices, seed)
	rankWant := listrank.SequentialRank(next)

	for _, e := range execs {
		if e == machine.ExecTrace {
			continue
		}
		for _, method := range contentionMethods {
			name := method.String()
			if err := run("maxfind", name, e, maxfindN, func() error {
				mk.Prepare(list)
				rec.Reset()
				if got := mk.RunExec(e, method); got != maxWant {
					return fmt.Errorf("got max %d, want %d", got, maxWant)
				}
				return nil
			}); err != nil {
				return nil, err
			}
			if err := run("bfs", name, e, vertices, func() error {
				bk.Prepare(0)
				rec.Reset()
				return bfs.Validate(bg, 0, bk.RunExec(e, method), true)
			}); err != nil {
				return nil, err
			}
			if err := run("cc", name, e, vertices, func() error {
				ck.Prepare()
				rec.Reset()
				return cc.Validate(ug, ck.RunExec(e, method))
			}); err != nil {
				return nil, err
			}
			if err := run("mis", name, e, vertices, func() error {
				sk.Prepare()
				rec.Reset()
				return mis.Validate(ug, sk.RunExec(e, method, uint64(seed)))
			}); err != nil {
				return nil, err
			}
		}
		// Matching's two-level arbitrary CW is CAS-LT by construction.
		if err := run("matching", cw.CASLT.String(), e, vertices, func() error {
			wk.Prepare()
			rec.Reset()
			return matching.Validate(ug, wk.RunExec(e, uint64(seed)))
		}); err != nil {
			return nil, err
		}
		// List ranking is the EREW comparison kernel: no concurrent writes,
		// so its row carries only the time split and shows the counters at
		// zero — the observability layer's negative control.
		if err := run("listrank", "", e, 0, func() error {
			ranks := listrank.RankExec(m, e, next)
			for i := range ranks {
				if ranks[i] != rankWant[i] {
					return fmt.Errorf("rank[%d] = %d, want %d", i, ranks[i], rankWant[i])
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// The stealing-scheduler observability pass: random-mate CC on a
	// stealing-policy machine with its hooking loop opted into StealRange,
	// so the snapshot's deque-claim counters (chunks_local / steals /
	// steal_fails) are live alongside the usual contention split. Random
	// mate is the vehicle because its CAS-LT hooking both consumes round
	// ids (NextRound, so the rounds-to-convergence column stays populated)
	// and relaxes an arc-shaped irregular loop — the loop stealing exists
	// for. One row per timed backend, tagged with the policy.
	sm := machine.New(threads, machine.WithMetrics(), machine.WithPolicy(sched.Stealing))
	defer sm.Close()
	srec := sm.Metrics()
	sck := cc.NewKernel(sm, ug)
	sck.SetStealing(true)
	for _, e := range execs {
		if e == machine.ExecTrace {
			continue
		}
		srec.Reset()
		srec.EnableProbe(vertices)
		sck.Prepare()
		srec.Reset()
		if err := cc.Validate(ug, sck.RunRandMateExec(e, uint64(seed))); err != nil {
			return nil, fmt.Errorf("bench: metrics cc/caslt/%s policy=stealing: %w", e, err)
		}
		snap := sm.Snapshot()
		if snap.MaxCellClaims > uint64(threads) {
			return nil, fmt.Errorf("bench: metrics cc/caslt/%s policy=stealing: %d executed CASes on one cell in one round, paper bounds it by %d",
				e, snap.MaxCellClaims, threads)
		}
		if snap.ChunksLocal == 0 {
			return nil, fmt.Errorf("bench: metrics cc/caslt/%s policy=stealing: no deque claims recorded", e)
		}
		rows = append(rows, MetricsRow{
			Kernel: "cc",
			Method: cw.CASLT.String(),
			Exec:   e,
			Policy: sched.Stealing.String(),
			Snap:   snap,
		})
	}
	return rows, nil
}

// FormatContention renders the contention snapshots as an aligned table.
func FormatContention(w io.Writer, threads, vertices, edges int, rows []MetricsRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== metrics: live contention per full run (p=%d, n=%d, m=%d; maxfind n=512) ==\n",
		threads, vertices, edges)
	out := [][]string{{"kernel", "method", "exec", "policy", "attempts", "wins", "losses",
		"skips", "max/cell/round", "rounds", "steals", "busy", "barrier", "roundwall"}}
	ms := func(ns int64) string {
		return time.Duration(ns).Round(10 * time.Microsecond).String()
	}
	for _, r := range rows {
		method := r.Method
		if method == "" {
			method = "-"
		}
		policy := r.Policy
		if policy == "" {
			policy = "-"
		}
		out = append(out, []string{
			r.Kernel,
			method,
			r.Exec.String(),
			policy,
			strconv.FormatUint(r.Snap.CASAttempts, 10),
			strconv.FormatUint(r.Snap.CASWins, 10),
			strconv.FormatUint(r.Snap.CASLosses, 10),
			strconv.FormatUint(r.Snap.PrecheckSkips, 10),
			strconv.FormatUint(r.Snap.MaxCellClaims, 10),
			strconv.FormatUint(r.Snap.Rounds, 10),
			strconv.FormatUint(r.Snap.Steals, 10),
			ms(r.Snap.BusyNs),
			ms(r.Snap.BarrierWaitNs),
			ms(r.Snap.RoundNs),
		})
	}
	writeAligned(&b, out)
	b.WriteString("\nattempts are executed RMWs (wins + losses); skips were resolved by the\n" +
		"plain-load pre-check without touching an atomic. max/cell/round is the\n" +
		"most RMWs any single cell absorbed in one round — the paper bounds it\n" +
		"by P for CAS-LT. busy/barrier sum each worker's in-loop vs waiting\n" +
		"time; roundwall is the coordinator's wall clock over parallel rounds.\n" +
		"The per-cell probe is attached, so these runs are NOT timings.\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ContentionJSONRows converts the contention snapshots to the
// machine-readable trajectory rows. Like the counting benches they carry
// no ns_op — the probe distorts timing — but unlike those they record the
// timed backend that produced them, because the contention itself is the
// measurement.
func ContentionJSONRows(rows []MetricsRow, threads int) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:         "metrics",
			Kernel:        r.Kernel,
			Method:        r.Method,
			Exec:          r.Exec.String(),
			Policy:        r.Policy,
			Threads:       threads,
			Rounds:        r.Snap.Rounds,
			CASAttempts:   r.Snap.CASAttempts,
			CASWins:       r.Snap.CASWins,
			CASLosses:     r.Snap.CASLosses,
			PrecheckSkips: r.Snap.PrecheckSkips,
			MaxCellClaims: r.Snap.MaxCellClaims,
			ChunksLocal:   r.Snap.ChunksLocal,
			Steals:        r.Snap.Steals,
			StealFails:    r.Snap.StealFails,
			BusyNs:        r.Snap.BusyNs,
			BarrierWaitNs: r.Snap.BarrierWaitNs,
			RoundNs:       r.Snap.RoundNs,
		})
	}
	return out
}
