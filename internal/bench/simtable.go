package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/simulate"
	"crcwpram/internal/stats"
)

// SimRow is one row of the conflict-resolution-hierarchy experiment: the
// measured cost of performing one Priority concurrent-write step of p
// requests through each simulation rung.
type SimRow struct {
	P          int
	Direct     time.Duration
	AllPairs   time.Duration
	Tournament time.Duration
}

// SimulationTable measures the Section-2 hierarchy: the same priority
// write step executed by the native primitive, by the O(1)-depth W(P²)
// common-CW simulation, and by the D(log P) EREW tournament, over a sweep
// of request-set sizes. Every rung's winner is cross-checked against the
// sequential reference.
func SimulationTable(threads, reps int, sweep []int, seed int64) []SimRow {
	m := machine.New(threads)
	defer m.Close()
	rng := rand.New(rand.NewSource(seed))
	rows := make([]SimRow, 0, len(sweep))
	for _, p := range sweep {
		reqs := make([]simulate.Req, p)
		for i := range reqs {
			reqs[i] = simulate.Req{Value: rng.Uint32(), Writer: uint32(i)}
		}
		want, _ := simulate.Sequential(reqs)
		timeIt := func(run func() (simulate.Req, bool)) time.Duration {
			var s stats.Sample
			for r := 0; r < reps; r++ {
				start := time.Now()
				got, ok := run()
				s.Add(time.Since(start))
				if !ok || got != want {
					panic(fmt.Sprintf("bench: simulation returned %+v, want %+v", got, want))
				}
			}
			return s.Median()
		}
		rows = append(rows, SimRow{
			P:          p,
			Direct:     timeIt(func() (simulate.Req, bool) { return simulate.Direct(m, reqs) }),
			AllPairs:   timeIt(func() (simulate.Req, bool) { return simulate.ViaCommonAllPairs(m, reqs) }),
			Tournament: timeIt(func() (simulate.Req, bool) { return simulate.ViaTournament(m, reqs) }),
		})
	}
	return rows
}

// FormatSimulations renders the hierarchy experiment with each rung's
// theoretical work/depth next to its measured time.
func FormatSimulations(w io.Writer, rows []SimRow) error {
	var b strings.Builder
	b.WriteString("== simulations: one Priority concurrent-write step, per rung of the CW hierarchy ==\n")
	out := [][]string{{
		"P", "direct (W=P, D=1)", "common all-pairs (W=P², D=1)", "erew tournament (W=P, D=log P)", "log P",
	}}
	for _, r := range rows {
		_, depth := simulate.WorkDepth("tournament", r.P)
		out = append(out, []string{
			strconv.Itoa(r.P),
			stats.FormatDuration(r.Direct),
			stats.FormatDuration(r.AllPairs),
			stats.FormatDuration(r.Tournament),
			strconv.Itoa(depth),
		})
	}
	writeAligned(&b, out)
	b.WriteString("\nthe paper's Section 2 in numbers: weaker rules simulate on stronger ones in\n" +
		"O(1) (direct); a stronger rule on weaker ones costs either quadratic work\n" +
		"(all-pairs on common CW) or logarithmic depth (tournament on EREW).\n")
	_, err := io.WriteString(w, b.String())
	return err
}
