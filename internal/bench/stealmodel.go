package bench

import (
	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/sched"
)

// This file extends the edge-balance work model (workmodel.go) along the
// scheduling-policy axis for the stealing sweep. The question it answers
// is the one a wall clock on an oversubscribed host cannot: with one core
// per worker, how long is the critical path of an irregular loop under
// each partitioning policy?
//
// The model replays each BFS variant's level structure (driven by the
// exact sequential levels, as in workmodel.go) and schedules each round's
// per-index costs (1 unit per index + 1 per arc examined) onto P model
// workers the way the policy would:
//
//   - block / cyclic: the static assignment is exact — each worker's time
//     is its share's summed cost, the round's critical path the maximum.
//   - dynamic / guided / stealing: chunks are assigned greedily in index
//     order to the earliest-available worker (the fluid limit of a shared
//     cursor or an idle thief: whoever is free claims next), and every
//     claim is charged an acquisition cost.
//
// The acquisition costs are the policies' structural difference, in the
// same abstract units as the work itself:
//
//   - grabCursor (16) per chunk for dynamic and guided: a fetch-add on a
//     cursor every worker hammers is a contended cache-line ping-pong,
//     tens of cycles against the ~1-cycle unit of an arc probe. This is
//     why dynamic must use big chunks (DefaultChunk = 256) — and big
//     chunks are exactly what strands a hub vertex in one worker's lap.
//   - grabDeque (2) per chunk for stealing: the owner's pop is an
//     uncontended load + store on its own line (the single CAS fires only
//     on the last element), and the occasional steal CAS amortizes over
//     the chunks it migrates. Cheap claims let stealing run the finer
//     sched.StealChunk geometry that splits a hub across the party.
//
// Crit sums the per-round maxima (including acquisition), Ideal the
// per-round ceil(total/P) with no acquisition — the same figure of merit
// as the edge-balance model, so Imbalance is comparable across sweeps.
const (
	grabCursor = 16
	grabDeque  = 2
)

// critChunks schedules costs[pos:pos+size] chunks (size chosen by next
// from the remaining count) onto p workers greedily in index order and
// returns the makespan. grab is charged per claimed chunk.
func critChunks(costs []uint64, p int, grab uint64, next func(remaining int) int) uint64 {
	busy := make([]uint64, p)
	n := len(costs)
	for pos := 0; pos < n; {
		w := 0
		for i := 1; i < p; i++ {
			if busy[i] < busy[w] {
				w = i
			}
		}
		size := next(n - pos)
		if size < 1 {
			size = 1
		}
		hi := pos + size
		if hi > n {
			hi = n
		}
		var s uint64
		for i := pos; i < hi; i++ {
			s += costs[i]
		}
		busy[w] += s + grab
		pos = hi
	}
	var max uint64
	for _, b := range busy {
		if b > max {
			max = b
		}
	}
	return max
}

// policyCrit returns the modelled critical path of one round whose
// per-index costs are given, under one scheduling policy. chunk is the
// machine's configured chunk size (machine.Chunk; <= 0 means
// sched.DefaultChunk, matching sched.NewCursor's sanitization).
func policyCrit(costs []uint64, pol sched.Policy, p, chunk int) uint64 {
	n := len(costs)
	if n == 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = sched.DefaultChunk
	}
	switch pol {
	case sched.Block:
		var max uint64
		for w := 0; w < p; w++ {
			lo, hi := sched.BlockRange(n, p, w)
			var s uint64
			for i := lo; i < hi; i++ {
				s += costs[i]
			}
			if s > max {
				max = s
			}
		}
		return max
	case sched.Cyclic:
		busy := make([]uint64, p)
		for i, c := range costs {
			busy[i%p] += c
		}
		var max uint64
		for _, b := range busy {
			if b > max {
				max = b
			}
		}
		return max
	case sched.Dynamic:
		return critChunks(costs, p, grabCursor, func(int) int { return chunk })
	case sched.Guided:
		return critChunks(costs, p, grabCursor, func(remaining int) int {
			size := remaining / p
			if size < chunk {
				size = chunk
			}
			return size
		})
	case sched.Stealing:
		cs := sched.StealChunk(n, p, chunk)
		return critChunks(costs, p, grabDeque, func(int) int { return cs })
	default:
		panic("bench: no scheduling model for policy " + pol.String())
	}
}

// addSchedRound accumulates one modelled round: policy-scheduled critical
// path, acquisition-free ideal, and the raw total.
func (m *WorkModel) addSchedRound(costs []uint64, pol sched.Policy, p, chunk int) {
	var tot uint64
	for _, c := range costs {
		tot += c
	}
	if tot == 0 {
		return
	}
	m.Total += tot
	m.Crit += policyCrit(costs, pol, p, chunk)
	m.Ideal += (tot + uint64(p) - 1) / uint64(p)
}

// frontierCosts fills the model's cost scratch with the push cost of each
// frontier vertex: the index visit plus its arcs.
func (b *bfsModel) frontierCosts(f []uint32) []uint64 {
	costs := b.costScratch(len(f))
	for i, v := range f {
		costs[i] = 1 + uint64(b.g.Degree(v))
	}
	return costs
}

// pullCosts fills the scratch with the per-vertex cost of a bottom-up
// round at level L (the same case split as pullRound, per index instead of
// per shard).
func (b *bfsModel) pullCosts(L uint32) []uint64 {
	costs := b.costScratch(b.n)
	for v := 0; v < b.n; v++ {
		switch lv := b.levels[v]; {
		case lv <= L:
			costs[v] = 1
		case lv == L+1:
			costs[v] = 1 + uint64(b.firstHit[v])
		default:
			costs[v] = 1 + uint64(b.g.Degree(uint32(v)))
		}
	}
	return costs
}

func (b *bfsModel) costScratch(n int) []uint64 {
	if cap(b.costs) < n {
		b.costs = make([]uint64, n)
	}
	return b.costs[:n]
}

// ForSched replays one kernel's relaxation rounds under one scheduling
// policy at the model's worker count (vertex balance — the stealing
// sweep's fixed setting; the -balance axis is the edge-balance sweep's).
// Kernel names match the sweep: "bfs-frontier" and "bfs-hybrid".
func (b *bfsModel) ForSched(kernel string, pol sched.Policy, chunk int) WorkModel {
	p := b.p
	var m WorkModel
	switch kernel {
	case "bfs-frontier":
		for L := 0; L <= b.depth; L++ {
			m.addSchedRound(b.frontierCosts(b.byLevel[L]), pol, p, chunk)
		}
	case "bfs-hybrid":
		mf := uint64(b.g.Degree(b.source))
		mu := uint64(b.g.NumArcs()) - mf
		pull := false
		for L := 0; L <= b.depth; L++ {
			nf := uint64(len(b.byLevel[L]))
			pull = bfs.NextDirection(pull, mf, mu, nf, uint64(b.n))
			if pull {
				m.addSchedRound(b.pullCosts(uint32(L)), pol, p, chunk)
			} else {
				m.addSchedRound(b.frontierCosts(b.byLevel[L]), pol, p, chunk)
			}
			var disc uint64
			if L+1 <= b.depth {
				disc = b.degLevel[L+1]
			}
			mu -= disc
			mf = disc
		}
	default:
		panic("bench: no scheduling model for kernel " + kernel)
	}
	m.Depth = b.depth
	return m
}
