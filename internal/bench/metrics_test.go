package bench

import (
	"bytes"
	"strings"
	"testing"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/kernel"
)

// TestContentionSweep runs the miniature live-contention sweep end to end:
// row counts, per-row invariants, the CAS-LT bound check, formatting, and
// the JSON round trip through ValidateJSON.
func TestContentionSweep(t *testing.T) {
	const (
		threads  = 2
		vertices = 300
		edges    = 1200
		seed     = 7
	)
	execs := []machine.Exec{machine.ExecPool, machine.ExecTeam, machine.ExecTrace}
	rows, err := Contention(kernel.Default, threads, vertices, edges, seed, execs)
	if err != nil {
		t.Fatal(err)
	}
	// The expected row count is derived from the registry the sweep walks:
	// per timed exec, one row per guarded (kernel, contention method) pair
	// plus one per EREW control; plus the stealing-scheduler pass. The trace
	// entry must be skipped, not reported.
	perExec := 0
	for _, d := range kernel.All() {
		switch d.Contention {
		case kernel.ContentionNone, kernel.ContentionCAS:
		case kernel.ContentionEREW:
			perExec++
		default:
			perExec += len(contentionRunMethods(d))
		}
	}
	want := 2*perExec + 2
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	stealingRows := 0
	for _, r := range rows {
		if r.Policy == "stealing" {
			stealingRows++
			if r.Kernel != "cc-randmate" {
				t.Fatalf("stealing metrics row on kernel %q, want cc-randmate", r.Kernel)
			}
			if r.Snap.ChunksLocal == 0 {
				t.Fatalf("stealing metrics row without deque claims: %+v", r.Snap)
			}
		} else if r.Snap.ChunksLocal != 0 || r.Snap.Steals != 0 || r.Snap.StealFails != 0 {
			t.Fatalf("%s/%s/%s: default-policy row carries steal counters: %+v",
				r.Kernel, r.Method, r.Exec, r.Snap)
		}
	}
	if stealingRows != 2 {
		t.Fatalf("got %d stealing metrics rows, want one per timed exec", stealingRows)
	}
	for _, r := range rows {
		if r.Exec == machine.ExecTrace {
			t.Fatalf("trace backend leaked a contention row: %+v", r)
		}
		s := r.Snap
		if s.CASAttempts != s.CASWins+s.CASLosses {
			t.Fatalf("%s/%s/%s: attempts %d != wins %d + losses %d",
				r.Kernel, r.Method, r.Exec, s.CASAttempts, s.CASWins, s.CASLosses)
		}
		if r.Kernel == "listrank" {
			if s.CASAttempts != 0 || s.PrecheckSkips != 0 || s.MaxCellClaims != 0 {
				t.Fatalf("listrank (EREW control) recorded CW activity: %+v", s)
			}
		} else if s.CASWins == 0 {
			t.Fatalf("%s/%s/%s: no winning attempts recorded", r.Kernel, r.Method, r.Exec)
		}
		if s.Rounds == 0 || s.BusyNs <= 0 || s.RoundNs <= 0 {
			t.Fatalf("%s/%s/%s: missing rounds/time split: %+v", r.Kernel, r.Method, r.Exec, s)
		}
	}

	var out strings.Builder
	if err := FormatContention(&out, threads, vertices, edges, rows); err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{"metrics", "max/cell/round", "maxfind", "listrank", "NOT timings"} {
		if !strings.Contains(out.String(), wantStr) {
			t.Fatalf("format output missing %q:\n%s", wantStr, out.String())
		}
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, ContentionJSONRows(rows, threads)); err != nil {
		t.Fatal(err)
	}
	nrows, err := ValidateJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nrows != want {
		t.Fatalf("ValidateJSON counted %d rows, want %d", nrows, want)
	}
}

// TestValidateJSONMetricsBranch pins the metrics-row failure classes the
// -validatejson CI gate relies on, plus a representative good row of each
// flavour (guarded kernel, EREW control).
func TestValidateJSONMetricsBranch(t *testing.T) {
	bad := map[string]string{
		"trace exec": `[{"bench":"metrics","exec":"trace","threads":2,"kernel":"bfs",
			"cas_attempts":5,"cas_wins":5,"busy_ns":1,"round_ns":1,"rounds":3}]`,
		"carries ns_op": `[{"bench":"metrics","exec":"pool","threads":2,"kernel":"bfs","ns_op":9,
			"cas_attempts":5,"cas_wins":5,"busy_ns":1,"round_ns":1,"rounds":3}]`,
		"no kernel": `[{"bench":"metrics","exec":"pool","threads":2,
			"cas_attempts":5,"cas_wins":5,"busy_ns":1,"round_ns":1,"rounds":3}]`,
		"attempts mismatch": `[{"bench":"metrics","exec":"pool","threads":2,"kernel":"bfs",
			"cas_attempts":5,"cas_wins":3,"cas_losses":1,"busy_ns":1,"round_ns":1,"rounds":3}]`,
		"listrank with counters": `[{"bench":"metrics","exec":"pool","threads":2,"kernel":"listrank",
			"cas_attempts":1,"cas_wins":1,"busy_ns":1,"round_ns":1,"rounds":3}]`,
		"guarded without attempts": `[{"bench":"metrics","exec":"pool","threads":2,"kernel":"bfs",
			"busy_ns":1,"round_ns":1,"rounds":3}]`,
		"no time split": `[{"bench":"metrics","exec":"pool","threads":2,"kernel":"bfs",
			"cas_attempts":5,"cas_wins":5,"rounds":3}]`,
		"no rounds": `[{"bench":"metrics","exec":"pool","threads":2,"kernel":"bfs",
			"cas_attempts":5,"cas_wins":5,"busy_ns":1,"round_ns":1}]`,
	}
	for name, text := range bad {
		if _, err := ValidateJSON(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
	good := `[
		{"bench":"metrics","exec":"team","threads":2,"kernel":"cc","method":"caslt",
		 "cas_attempts":7,"cas_wins":5,"cas_losses":2,"precheck_skips":40,
		 "max_cell_claims":2,"busy_ns":100,"barrier_wait_ns":20,"round_ns":120,"rounds":6},
		{"bench":"metrics","exec":"pool","threads":2,"kernel":"listrank",
		 "busy_ns":100,"round_ns":120,"rounds":9}
	]`
	if n, err := ValidateJSON(strings.NewReader(good)); err != nil || n != 2 {
		t.Fatalf("good rows rejected: n=%d err=%v", n, err)
	}
}
