package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/race"
	"crcwpram/internal/stats"
)

// raceSafe narrows a config to race-detector-clean methods: the figures'
// default sets include the intentionally racy naive variant.
func raceSafe(cfg Config) Config {
	if race.Enabled {
		cfg.Methods = []cw.Method{cw.Gatekeeper, cw.CASLT}
	}
	return cfg
}

// tinyConfig keeps harness tests fast: miniature sweeps, 1 rep.
func tinyConfig() Config {
	return Config{
		Threads:        2,
		ThreadSweep:    []int{1, 2},
		Reps:           1,
		Seed:           7,
		MaxSizes:       []int{32, 64},
		MaxN:           64,
		BFSVertices:    200,
		BFSEdgeSweep:   []int{400, 800},
		BFSEdges:       800,
		BFSVertexSweep: []int{100, 200},
		CCVertices:     200,
		CCEdgeSweep:    []int{400, 800},
		CCEdges:        800,
		CCVertexSweep:  []int{100, 200},
	}
}

func TestWithDefaultsFillsZeroFields(t *testing.T) {
	var c Config
	c = c.withDefaults()
	d := DefaultConfig()
	if c.Threads != d.Threads || c.Reps != d.Reps || c.MaxN != d.MaxN {
		t.Fatal("withDefaults did not fill zero fields")
	}
	// Non-zero fields survive.
	c2 := Config{Threads: 9}.withDefaults()
	if c2.Threads != 9 {
		t.Fatal("withDefaults overwrote a set field")
	}
}

func TestPaperConfigMatchesPaperParameters(t *testing.T) {
	c := PaperConfig()
	if c.Threads != 32 {
		t.Fatalf("paper threads = %d, want 32", c.Threads)
	}
	if c.MaxN != 60000 {
		t.Fatalf("paper MaxN = %d, want 60000 (Figure 6)", c.MaxN)
	}
	if c.BFSVertices != 100000 || c.BFSEdges != 30000000 {
		t.Fatalf("paper BFS fixed sizes = %d/%d, want 100K/30M (Figures 7-9)", c.BFSVertices, c.BFSEdges)
	}
	if c.CCVertices != 100000 || c.CCEdges != 30000000 {
		t.Fatalf("paper CC fixed sizes = %d/%d, want 100K/30M (Figures 10-12)", c.CCVertices, c.CCEdges)
	}
}

func TestAllFiguresRunOnTinyConfig(t *testing.T) {
	for _, id := range SortedFigureIDs() {
		tab, err := Figure(id, raceSafe(tinyConfig()))
		if err != nil {
			t.Fatalf("figure %d: %v", id, err)
		}
		if len(tab.Series) == 0 || len(tab.Xs) == 0 {
			t.Fatalf("figure %d: empty table", id)
		}
		for _, s := range tab.Series {
			if len(s.Points) != len(tab.Xs) {
				t.Fatalf("figure %d %v: %d points for %d xs", id, s.Method, len(s.Points), len(tab.Xs))
			}
			for i, p := range s.Points {
				if p.Median <= 0 {
					t.Fatalf("figure %d %v x=%d: non-positive median %v", id, s.Method, tab.Xs[i], p.Median)
				}
			}
		}
	}
}

func TestFigureRejectsUnknownID(t *testing.T) {
	if _, err := Figure(4, tinyConfig()); err == nil {
		t.Fatal("figure 4 accepted")
	}
	if _, err := Figure(13, tinyConfig()); err == nil {
		t.Fatal("figure 13 accepted")
	}
}

func TestMethodSetsMatchPaper(t *testing.T) {
	if race.Enabled {
		t.Skip("figure default sets include the intentionally racy naive variant")
	}
	tab := Fig5MaxBySize(tinyConfig())
	want := map[cw.Method]bool{cw.Naive: true, cw.Gatekeeper: true, cw.CASLT: true}
	if len(tab.Series) != len(want) {
		t.Fatalf("fig5 has %d series, want %d", len(tab.Series), len(want))
	}
	for _, s := range tab.Series {
		if !want[s.Method] {
			t.Fatalf("fig5 unexpected method %v", s.Method)
		}
	}
	// CC figures must not include naive (unsafe for arbitrary CW).
	tab = Fig10CCByEdges(tinyConfig())
	for _, s := range tab.Series {
		if s.Method == cw.Naive {
			t.Fatal("fig10 includes naive; the paper excludes it for CC")
		}
	}
	if tab.Baseline != cw.Gatekeeper {
		t.Fatalf("fig10 baseline = %v, want gatekeeper", tab.Baseline)
	}
}

func TestMethodsOverride(t *testing.T) {
	cfg := tinyConfig()
	cfg.Methods = []cw.Method{cw.CASLT}
	tab := Fig5MaxBySize(cfg)
	if len(tab.Series) != 1 || tab.Series[0].Method != cw.CASLT {
		t.Fatal("Methods override not honoured")
	}
}

func TestSpeedupAccessors(t *testing.T) {
	tab := Table{
		ID:       "x",
		Xs:       []int{1, 2},
		Baseline: cw.Naive,
		Series: []Series{
			{Method: cw.Naive, Points: []Point{{Median: 100 * time.Millisecond}, {Median: 200 * time.Millisecond}}},
			{Method: cw.CASLT, Points: []Point{{Median: 50 * time.Millisecond}, {Median: 50 * time.Millisecond}}},
		},
	}
	sp := tab.Speedups(cw.CASLT)
	if sp[0] != 2 || sp[1] != 4 {
		t.Fatalf("speedups = %v, want [2 4]", sp)
	}
	if g := tab.GeoMeanSpeedup(cw.CASLT); math.Abs(g-2.828) > 0.01 {
		t.Fatalf("geomean = %v, want ~2.83", g)
	}
	if mx := tab.MaxSpeedup(cw.CASLT); mx != 4 {
		t.Fatalf("max = %v, want 4", mx)
	}
	if tab.Speedups(cw.Mutex) != nil {
		t.Fatal("speedups for absent method not nil")
	}
}

func TestFormatAndCSV(t *testing.T) {
	if race.Enabled {
		t.Skip("fig5's paper method set includes the intentionally racy naive variant")
	}
	tab := Fig5MaxBySize(tinyConfig())
	var out bytes.Buffer
	if err := tab.Format(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"fig5", "list size", "caslt", "naive", "geomean", "speedup vs naive"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := tab.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// header + methods*xs records
	want := 1 + len(tab.Series)*len(tab.Xs)
	if len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "figure,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestFormatX(t *testing.T) {
	cases := map[int]string{
		999:      "999",
		1000:     "1K",
		60000:    "60K",
		1000000:  "1M",
		30000000: "30M",
		1500:     "1500",
	}
	for x, want := range cases {
		if got := formatX(x); got != want {
			t.Errorf("formatX(%d) = %q, want %q", x, got, want)
		}
	}
}

func TestMeasureUsesMedian(t *testing.T) {
	n := 0
	p := measure(5, func() { n++ }, func() { time.Sleep(time.Millisecond) })
	if n != 5 {
		t.Fatalf("prepare ran %d times, want 5", n)
	}
	if p.Sample.N() != 5 {
		t.Fatalf("sample has %d entries, want 5", p.Sample.N())
	}
	if p.Median != p.Sample.Median() {
		t.Fatal("Point.Median != sample median")
	}
	if p.Median < time.Millisecond {
		t.Fatalf("median %v below the sleep floor", p.Median)
	}
	_ = stats.FormatDuration(p.Median)
}

func TestLogOutput(t *testing.T) {
	cfg := raceSafe(tinyConfig())
	var log bytes.Buffer
	cfg.Log = &log
	Fig5MaxBySize(cfg)
	if !strings.Contains(log.String(), "fig5") {
		t.Fatal("progress log empty")
	}
}
