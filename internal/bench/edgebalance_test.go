package bench

import (
	"bytes"
	"strings"
	"testing"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// ebTestConfig is a miniature edge-balance sweep configuration.
func ebTestConfig() Config {
	cfg := tinyConfig()
	cfg.EBScale = 6
	cfg.EBStar = 64
	return cfg
}

func modelFor(t *testing.T, g *graph.Graph, source uint32, p int) *bfsModel {
	t.Helper()
	return newBFSModel(g, source, p, bfs.Sequential(g, source))
}

// TestWorkModelInvariants pins the aggregate ordering every replay must
// satisfy: Total >= Crit >= Ideal >= 1, so Imbalance >= 1.
func TestWorkModelInvariants(t *testing.T) {
	graphs := map[string]struct {
		g   *graph.Graph
		src uint32
	}{
		"rmat": {graph.RMAT(7, 1000, 0.57, 0.19, 0.19, 5), 0},
		"star": {graph.Star(100), 1},
		"grid": {graph.Grid2D(8, 9), 0},
	}
	for name, tc := range graphs {
		for _, p := range []int{1, 2, 8} {
			b := modelFor(t, tc.g, tc.src, p)
			for _, kernel := range ebKernels {
				for _, bal := range graph.Balances {
					m := b.For(kernel, bal)
					if m.Total < m.Crit || m.Crit < m.Ideal || m.Ideal == 0 {
						t.Fatalf("%s %s %s p=%d: total=%d crit=%d ideal=%d",
							name, kernel, bal, p, m.Total, m.Crit, m.Ideal)
					}
					if m.Imbalance() < 1 {
						t.Fatalf("%s %s %s p=%d: imbalance %v < 1", name, kernel, bal, p, m.Imbalance())
					}
					if m.Depth != bfs.Sequential(tc.g, tc.src).Depth {
						t.Fatalf("%s %s %s: depth %d", name, kernel, bal, m.Depth)
					}
				}
			}
		}
	}
}

// TestWorkModelFrontierTotal cross-checks the frontier replay's Total
// against the closed form: every reached vertex is touched once and relaxes
// its whole adjacency list, in any balance.
func TestWorkModelFrontierTotal(t *testing.T) {
	g := graph.RMAT(7, 1000, 0.57, 0.19, 0.19, 5)
	seq := bfs.Sequential(g, 0)
	var want uint64
	for v := 0; v < g.NumVertices(); v++ {
		if seq.Level[v] != bfs.Unreached {
			want += 1 + uint64(g.Degree(uint32(v)))
		}
	}
	b := newBFSModel(g, 0, 4, seq)
	for _, bal := range graph.Balances {
		if got := b.For("bfs-frontier", bal).Total; got != want {
			t.Fatalf("%s frontier total %d, want %d", bal, got, want)
		}
	}
	// P=1: the critical path is the total.
	b1 := newBFSModel(g, 0, 1, seq)
	if m := b1.For("bfs-frontier", graph.BalanceVertex); m.Crit != m.Total {
		t.Fatalf("p=1 crit %d != total %d", m.Crit, m.Total)
	}
}

// TestWorkModelEdgeBeatsVertexOnSkew is the sweep's thesis at model level:
// on a skewed-degree graph the push kernels' critical path shrinks under
// edge balancing, and the hybrid does less total work than the pure push
// frontier (the point of direction optimization).
func TestWorkModelEdgeBeatsVertexOnSkew(t *testing.T) {
	g := graph.RMAT(12, 8<<12, 0.57, 0.19, 0.19, 42)
	b := modelFor(t, g, 0, 8)
	for _, kernel := range []string{"bfs", "bfs-frontier"} {
		v := b.For(kernel, graph.BalanceVertex)
		e := b.For(kernel, graph.BalanceEdge)
		if e.Crit >= v.Crit {
			t.Errorf("%s: edge crit %d not below vertex crit %d", kernel, e.Crit, v.Crit)
		}
	}
	for _, bal := range graph.Balances {
		f := b.For("bfs-frontier", bal)
		h := b.For("bfs-hybrid", bal)
		if h.Total >= f.Total {
			t.Errorf("%s: hybrid total %d not below frontier total %d", bal, h.Total, f.Total)
		}
	}
	// Star from a leaf: the level-1 frontier is one hub, which no frontier
	// partitioning can split — but the hybrid's pull levels can.
	star := graph.Star(1 << 10)
	bs := modelFor(t, star, 1, 8)
	f := bs.For("bfs-frontier", graph.BalanceVertex)
	h := bs.For("bfs-hybrid", graph.BalanceVertex)
	if h.Crit >= f.Crit {
		t.Errorf("star: hybrid crit %d not below frontier crit %d", h.Crit, f.Crit)
	}
}

// TestWorkModelHybridReplaysDirections pins the replayed direction schedule
// against the real kernel on the star: push the leaf's level, then pull.
func TestWorkModelHybridReplaysDirections(t *testing.T) {
	// Same bookkeeping the model and kernel share.
	n, src := uint64(1<<10), uint32(1)
	g := graph.Star(int(n))
	mf := uint64(g.Degree(src))
	mu := uint64(g.NumArcs()) - mf
	if bfs.NextDirection(false, mf, mu, 1, n) {
		t.Fatal("level 0 (one leaf) chose pull")
	}
	hub := uint64(g.Degree(0))
	if !bfs.NextDirection(false, hub, mu-hub, 1, n) {
		t.Fatal("level 1 (the hub) did not choose pull")
	}
}

// TestEdgeBalanceSweep runs the miniature sweep end to end: row counts,
// validation, formatting, and the JSON round trip through ValidateJSON.
func TestEdgeBalanceSweep(t *testing.T) {
	infos, rows, err := EdgeBalance(ebTestConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("got %d workloads, want 2", len(infos))
	}
	want := 2 * len(graph.Balances) * len(machine.Execs) * len(ebKernels)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, info := range infos {
		if info.Stats.MaxDegree == 0 || info.Stats.Skew < 1 {
			t.Fatalf("%s: degenerate stats %+v", info.Name, info.Stats)
		}
	}

	var out strings.Builder
	if err := FormatEdgeBalance(&out, infos, rows); err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{"edgebalance", "bfs-hybrid", "imbal", "skew", "star64", "rmat6"} {
		if !strings.Contains(out.String(), wantStr) {
			t.Fatalf("format output missing %q:\n%s", wantStr, out.String())
		}
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, EdgeBalanceJSONRows(rows)); err != nil {
		t.Fatal(err)
	}
	nrows, err := ValidateJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nrows != want {
		t.Fatalf("ValidateJSON counted %d rows, want %d", nrows, want)
	}
}

// TestEdgeBalanceRespectsExecFilter checks the exec subset parameter.
func TestEdgeBalanceRespectsExecFilter(t *testing.T) {
	_, rows, err := EdgeBalance(ebTestConfig(), []machine.Exec{machine.ExecTeam})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Exec != "team" {
			t.Fatalf("exec filter leaked row %+v", r)
		}
	}
}

// TestValidateJSONRejectsMalformed pins every failure class CI relies on.
func TestValidateJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       "bogus",
		"empty":          "[]",
		"trailing":       `[{"bench":"b","exec":"pool","threads":1,"ns_op":1}] 7`,
		"no bench":       `[{"exec":"pool","threads":1,"ns_op":1}]`,
		"bad exec":       `[{"bench":"b","exec":"omp","threads":1,"ns_op":1}]`,
		"zero threads":   `[{"bench":"b","exec":"pool","ns_op":1}]`,
		"zero ns":        `[{"bench":"b","exec":"pool","threads":1}]`,
		"eb no graph":    `[{"bench":"edgebalance","exec":"pool","threads":1,"ns_op":1}]`,
		"eb model order": `[{"bench":"edgebalance","exec":"pool","threads":1,"ns_op":1,"graph":"g","balance":"edge","work_total":1,"work_crit":2,"work_ideal":3,"imbalance":1}]`,
	}
	for name, text := range cases {
		if _, err := ValidateJSON(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
	good := `[{"bench":"edgebalance","exec":"team","threads":2,"ns_op":5,` +
		`"graph":"g","balance":"vertex","work_total":30,"work_crit":20,"work_ideal":10,"imbalance":2}]`
	if n, err := ValidateJSON(strings.NewReader(good)); err != nil || n != 1 {
		t.Fatalf("good row rejected: n=%d err=%v", n, err)
	}
}
