package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/bench/sweep"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
)

// The edge-balance sweep is the load-balancing experiment behind the
// -balance axis: the four CAS-LT BFS formulations (full sweep, explicit
// frontier, pure bottom-up, direction-optimizing hybrid) on two
// skewed-degree workloads — an RMAT power-law graph and the star, the
// maximal-straggler input — under both partitioning policies and both
// execution modes. Each cell reports the median wall time *and* the
// deterministic work model (see workmodel.go): on a host with fewer cores
// than workers the wall clock cannot see the straggler that vertex
// balancing creates, while WorkCrit/Imbalance expose it exactly.

// ebKernels are the swept BFS formulations, in presentation order.
var ebKernels = []string{"bfs", "bfs-frontier", "bfs-pull", "bfs-hybrid"}

// EdgeBalanceGraph identifies one workload of the sweep.
type EdgeBalanceGraph struct {
	Name   string
	Source uint32
	Stats  graph.Stats
}

// EdgeBalanceRow is one measured cell.
type EdgeBalanceRow struct {
	Graph   string
	Kernel  string
	Balance graph.Balance
	Exec    string
	Threads int
	NsOp    float64
	Model   WorkModel
}

// EdgeBalance runs the sweep: for each workload × balance × kernel ×
// execution mode, the median wall time over cfg.Reps runs (validated once
// per cell, outside the timed region, by the registered kernel's own
// oracle) plus the replayed work model. The workload sizes come from
// cfg.EBScale / cfg.EBStar; the worker count is cfg.Threads. Dispatch goes
// through the kernel registry: ebKernels is pure configuration.
func EdgeBalance(cfg Config, execs []machine.Exec) ([]EdgeBalanceGraph, []EdgeBalanceRow, error) {
	cfg = cfg.withDefaults()
	if len(execs) == 0 {
		execs = machine.Execs
	}
	type workload struct {
		name   string
		g      *graph.Graph
		source uint32
	}
	// RMAT: BFS from vertex 0, the likeliest hub under the canonical
	// probabilities. Star: BFS from a leaf, so the entire level-1 frontier
	// is the hub — the worst straggler a vertex partition can produce.
	workloads := []workload{
		{fmt.Sprintf("rmat%d", cfg.EBScale),
			graph.RMAT(cfg.EBScale, 8<<cfg.EBScale, 0.57, 0.19, 0.19, cfg.Seed), 0},
		{fmt.Sprintf("star%d", cfg.EBStar), graph.Star(cfg.EBStar), 1},
	}
	run := cfg.newRunner()
	defer run.Close()
	m := run.Machine(sweep.MachineKey{Threads: cfg.Threads})
	var infos []EdgeBalanceGraph
	var rows []EdgeBalanceRow
	for _, wl := range workloads {
		infos = append(infos, EdgeBalanceGraph{
			Name:   wl.name,
			Source: wl.source,
			Stats:  graph.ComputeStats(wl.g),
		})
		seq := bfs.Sequential(wl.g, wl.source)
		model := newBFSModel(wl.g, wl.source, cfg.Threads, seq)
		w := &kernel.Workload{Graph: wl.g, Source: wl.source}
		for _, bal := range graph.Balances {
			models := make(map[string]WorkModel, len(ebKernels))
			for _, kname := range ebKernels {
				models[kname] = model.For(kname, bal)
			}
			for _, e := range execs {
				for _, kname := range ebKernels {
					d, ok := kernel.Lookup(kname)
					if !ok {
						return nil, nil, fmt.Errorf("edgebalance: unregistered kernel %s", kname)
					}
					inst := run.Instance(d, m, w)
					cell, err := run.Timed(inst, kernel.Settings{
						Exec: e, Method: cw.CASLT, Balance: bal,
					})
					if err != nil {
						return nil, nil, fmt.Errorf("edgebalance %s %s %s %s: %w",
							wl.name, kname, bal, e, err)
					}
					rows = append(rows, EdgeBalanceRow{
						Graph:   wl.name,
						Kernel:  kname,
						Balance: bal,
						Exec:    e.String(),
						Threads: cfg.Threads,
						NsOp:    float64(cell.Median.Nanoseconds()),
						Model:   models[kname],
					})
					cfg.logf("edgebalance %s kernel=%s bal=%s exec=%s median=%v imbal=%.2f\n",
						wl.name, kname, bal, e, cell.Median, models[kname].Imbalance())
				}
			}
		}
	}
	return infos, rows, nil
}

// FormatEdgeBalance renders one table per workload: a (kernel, balance)
// line with both execution modes' wall medians side by side and the work
// model's critical path, ideal, and imbalance.
func FormatEdgeBalance(w io.Writer, infos []EdgeBalanceGraph, rows []EdgeBalanceRow) error {
	var b strings.Builder
	ms := func(ns float64) string {
		return strconv.FormatFloat(ns/1e6, 'f', 3, 64)
	}
	for gi, info := range infos {
		if gi > 0 {
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "== edgebalance: %s source=%d ==\n", info.Name, info.Source)
		fmt.Fprintf(&b, "   %s\n", info.Stats)
		table := [][]string{{"kernel", "balance", "pool(ms)", "team(ms)", "crit", "ideal", "imbal", "depth"}}
		for _, kernel := range ebKernels {
			for _, bal := range graph.Balances {
				var pool, team float64
				var m WorkModel
				found := false
				for _, r := range rows {
					if r.Graph != info.Name || r.Kernel != kernel || r.Balance != bal {
						continue
					}
					found = true
					m = r.Model
					if r.Exec == "team" {
						team = r.NsOp
					} else {
						pool = r.NsOp
					}
				}
				if !found {
					continue
				}
				table = append(table, []string{
					kernel,
					bal.String(),
					ms(pool),
					ms(team),
					strconv.FormatUint(m.Crit, 10),
					strconv.FormatUint(m.Ideal, 10),
					strconv.FormatFloat(m.Imbalance(), 'f', 2, 64),
					strconv.Itoa(m.Depth),
				})
			}
		}
		writeAligned(&b, table)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// EdgeBalanceJSONRows converts the sweep to the machine-readable rows.
func EdgeBalanceJSONRows(rows []EdgeBalanceRow) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:     "edgebalance",
			Kernel:    r.Kernel,
			Method:    "caslt",
			Exec:      r.Exec,
			Threads:   r.Threads,
			NsOp:      r.NsOp,
			Graph:     r.Graph,
			Balance:   r.Balance.String(),
			Depth:     r.Model.Depth,
			WorkTotal: r.Model.Total,
			WorkCrit:  r.Model.Crit,
			WorkIdeal: r.Model.Ideal,
			Imbalance: r.Model.Imbalance(),
		})
	}
	return out
}
