package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/alg/maxfind"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// maxMethods is the method set of Figures 5-9 (the paper compares naive,
// the atomic prefix-sum gatekeeper, and CAS-LT).
var maxMethods = []cw.Method{cw.Naive, cw.Gatekeeper, cw.CASLT}

// ccMethods is the method set of Figures 10-12: the paper implements no
// naive CC because the hooking write is an unsafe arbitrary multi-array
// write.
var ccMethods = []cw.Method{cw.Gatekeeper, cw.CASLT}

// Figure runs the reproduction of one paper figure (5..12).
func Figure(id int, cfg Config) (Table, error) {
	switch id {
	case 5:
		return Fig5MaxBySize(cfg), nil
	case 6:
		return Fig6MaxByThreads(cfg), nil
	case 7:
		return Fig7BFSByEdges(cfg), nil
	case 8:
		return Fig8BFSByVertices(cfg), nil
	case 9:
		return Fig9BFSByThreads(cfg), nil
	case 10:
		return Fig10CCByEdges(cfg), nil
	case 11:
		return Fig11CCByVertices(cfg), nil
	case 12:
		return Fig12CCByThreads(cfg), nil
	default:
		return Table{}, fmt.Errorf("bench: no figure %d (paper figures are 5..12)", id)
	}
}

// FigureIDs lists the reproducible paper figures.
var FigureIDs = []int{5, 6, 7, 8, 9, 10, 11, 12}

// FigureUsesBalance reports whether a figure's kernel honors the
// work-partitioning axis (-balance): the BFS figures do, the maximum and CC
// figures split by element/vertex count regardless.
func FigureUsesBalance(id int) bool { return id >= 7 && id <= 9 }

func methodsOr(cfg Config, def []cw.Method) []cw.Method {
	if len(cfg.Methods) > 0 {
		return cfg.Methods
	}
	return def
}

// runMax/runBFS/runCC dispatch a kernel run to the configured execution
// backend, so every figure measures (and validates) the same code path the
// -exec axis selects.
func runMax(k *maxfind.Kernel, method cw.Method, exec machine.Exec) int {
	return k.RunExec(exec, method)
}

func runBFS(k *bfs.Kernel, method cw.Method, exec machine.Exec) bfs.Result {
	return k.RunExec(exec, method)
}

func runCC(k *cc.Kernel, method cw.Method, exec machine.Exec) cc.Result {
	return k.RunExec(exec, method)
}

func randomList(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	list := make([]uint32, n)
	for i := range list {
		list[i] = rng.Uint32()
	}
	return list
}

// Fig5MaxBySize reproduces Figure 5: constant-time maximum execution time
// vs. list size at a fixed thread count.
func Fig5MaxBySize(cfg Config) Table {
	cfg = cfg.withDefaults()
	methods := methodsOr(cfg, maxMethods)
	t := Table{
		ID:       "fig5",
		Title:    fmt.Sprintf("Constant-time maximum: time vs list size (%d threads, %s exec)", cfg.Threads, cfg.Exec),
		Kernel:   "maxfind",
		Exec:     cfg.Exec.String(),
		Policy:   cfg.Policy.String(),
		XLabel:   "list size",
		Xs:       cfg.MaxSizes,
		Baseline: cw.Naive,
	}
	m := cfg.newMachine(cfg.Threads)
	defer m.Close()
	for _, method := range methods {
		ser := Series{Method: method}
		for _, n := range cfg.MaxSizes {
			k := maxfind.NewKernel(m, n)
			list := randomList(n, cfg.Seed+int64(n))
			want := maxfind.Sequential(list)
			p := measure(cfg.Reps, func() { k.Prepare(list) }, func() {
				if got := runMax(k, method, cfg.Exec); got != want {
					panic(fmt.Sprintf("bench: fig5 %v returned %d, want %d", method, got, want))
				}
			})
			ser.Points = append(ser.Points, p)
			cfg.logf("fig5 %s n=%d median=%v\n", method, n, p.Median)
		}
		t.Series = append(t.Series, ser)
	}
	return t
}

// Fig6MaxByThreads reproduces Figure 6: maximum execution time vs. thread
// count at a fixed list size (paper: 60K elements).
func Fig6MaxByThreads(cfg Config) Table {
	cfg = cfg.withDefaults()
	methods := methodsOr(cfg, maxMethods)
	t := Table{
		ID:       "fig6",
		Title:    fmt.Sprintf("Constant-time maximum: time vs threads (N=%d, %s exec)", cfg.MaxN, cfg.Exec),
		Kernel:   "maxfind",
		Exec:     cfg.Exec.String(),
		Policy:   cfg.Policy.String(),
		XLabel:   "threads",
		Xs:       cfg.ThreadSweep,
		Baseline: cw.Naive,
	}
	list := randomList(cfg.MaxN, cfg.Seed)
	want := maxfind.Sequential(list)
	for _, method := range methods {
		ser := Series{Method: method}
		for _, p := range cfg.ThreadSweep {
			m := cfg.newMachine(p)
			k := maxfind.NewKernel(m, cfg.MaxN)
			pt := measure(cfg.Reps, func() { k.Prepare(list) }, func() {
				if got := runMax(k, method, cfg.Exec); got != want {
					panic(fmt.Sprintf("bench: fig6 %v returned %d, want %d", method, got, want))
				}
			})
			m.Close()
			ser.Points = append(ser.Points, pt)
			cfg.logf("fig6 %s p=%d median=%v\n", method, p, pt.Median)
		}
		t.Series = append(t.Series, ser)
	}
	return t
}

// bfsFigure sweeps xs; pick maps each x to the point's (vertices, edges,
// threads).
func bfsFigure(id int, cfg Config, title, xlabel string, xs []int, pick func(x int) (nv, ne, p int)) Table {
	methods := methodsOr(cfg, maxMethods)
	t := Table{
		ID:       fmt.Sprintf("fig%d", id),
		Title:    title,
		Kernel:   "bfs",
		Exec:     cfg.Exec.String(),
		Policy:   cfg.Policy.String(),
		Balance:  cfg.Balance.String(),
		XLabel:   xlabel,
		Xs:       xs,
		Baseline: cw.Naive,
	}
	for _, method := range methods {
		ser := Series{Method: method}
		for i, x := range xs {
			nv, ne, p := pick(x)
			g := graph.ConnectedRandom(nv, ne, cfg.Seed+int64(i))
			m := cfg.newMachine(p)
			k := bfs.NewKernel(m, g)
			k.SetBalance(cfg.Balance)
			pt := measure(cfg.Reps, func() { k.Prepare(0) }, func() { runBFS(k, method, cfg.Exec) })
			// Validate once per point, outside the timed region.
			k.Prepare(0)
			if err := bfs.Validate(g, 0, runBFS(k, method, cfg.Exec), method.SafeForArbitrary()); err != nil {
				panic(fmt.Sprintf("bench: fig%d %v: %v", id, method, err))
			}
			m.Close()
			ser.Points = append(ser.Points, pt)
			cfg.logf("fig%d %s x=%d median=%v\n", id, method, x, pt.Median)
		}
		t.Series = append(t.Series, ser)
	}
	return t
}

// Fig7BFSByEdges reproduces Figure 7: BFS time vs. edge count at fixed
// vertices and threads.
func Fig7BFSByEdges(cfg Config) Table {
	cfg = cfg.withDefaults()
	return bfsFigure(7, cfg,
		fmt.Sprintf("BFS: time vs edges (%d vertices, %d threads, %s exec, %s balance)", cfg.BFSVertices, cfg.Threads, cfg.Exec, cfg.Balance),
		"edges", cfg.BFSEdgeSweep,
		func(x int) (int, int, int) { return cfg.BFSVertices, x, cfg.Threads })
}

// Fig8BFSByVertices reproduces Figure 8: BFS time vs. vertex count at fixed
// edges and threads.
func Fig8BFSByVertices(cfg Config) Table {
	cfg = cfg.withDefaults()
	return bfsFigure(8, cfg,
		fmt.Sprintf("BFS: time vs vertices (%d edges, %d threads, %s exec, %s balance)", cfg.BFSEdges, cfg.Threads, cfg.Exec, cfg.Balance),
		"vertices", cfg.BFSVertexSweep,
		func(x int) (int, int, int) { return x, cfg.BFSEdges, cfg.Threads })
}

// Fig9BFSByThreads reproduces Figure 9: BFS time vs. thread count at fixed
// graph size.
func Fig9BFSByThreads(cfg Config) Table {
	cfg = cfg.withDefaults()
	return bfsFigure(9, cfg,
		fmt.Sprintf("BFS: time vs threads (%d vertices, %d edges, %s exec, %s balance)", cfg.BFSVertices, cfg.BFSEdges, cfg.Exec, cfg.Balance),
		"threads", cfg.ThreadSweep,
		func(x int) (int, int, int) { return cfg.BFSVertices, cfg.BFSEdges, x })
}

func ccFigure(id int, cfg Config, title, xlabel string, xs []int) Table {
	methods := methodsOr(cfg, ccMethods)
	t := Table{
		ID:       fmt.Sprintf("fig%d", id),
		Title:    title,
		Kernel:   "cc",
		Exec:     cfg.Exec.String(),
		Policy:   cfg.Policy.String(),
		XLabel:   xlabel,
		Xs:       xs,
		Baseline: cw.Gatekeeper,
	}
	for _, method := range methods {
		ser := Series{Method: method}
		for i := range xs {
			nv, ne, p := cfg.CCVertices, cfg.CCEdges, cfg.Threads
			switch xlabel {
			case "edges":
				ne = xs[i]
			case "vertices":
				nv = xs[i]
			case "threads":
				p = xs[i]
			}
			g := graph.RandomUndirected(nv, ne, cfg.Seed+int64(i))
			m := cfg.newMachine(p)
			k := cc.NewKernel(m, g)
			pt := measure(cfg.Reps, func() { k.Prepare() }, func() { runCC(k, method, cfg.Exec) })
			k.Prepare()
			if err := cc.Validate(g, runCC(k, method, cfg.Exec)); err != nil {
				panic(fmt.Sprintf("bench: fig%d %v: %v", id, method, err))
			}
			m.Close()
			ser.Points = append(ser.Points, pt)
			cfg.logf("fig%d %s x=%d median=%v\n", id, method, xs[i], pt.Median)
		}
		t.Series = append(t.Series, ser)
	}
	return t
}

// Fig10CCByEdges reproduces Figure 10: CC time vs. edge count.
func Fig10CCByEdges(cfg Config) Table {
	cfg = cfg.withDefaults()
	return ccFigure(10, cfg,
		fmt.Sprintf("Connected components: time vs edges (%d vertices, %d threads, %s exec)", cfg.CCVertices, cfg.Threads, cfg.Exec),
		"edges", cfg.CCEdgeSweep)
}

// Fig11CCByVertices reproduces Figure 11: CC time vs. vertex count.
func Fig11CCByVertices(cfg Config) Table {
	cfg = cfg.withDefaults()
	return ccFigure(11, cfg,
		fmt.Sprintf("Connected components: time vs vertices (%d edges, %d threads, %s exec)", cfg.CCEdges, cfg.Threads, cfg.Exec),
		"vertices", cfg.CCVertexSweep)
}

// Fig12CCByThreads reproduces Figure 12: CC time vs. thread count.
func Fig12CCByThreads(cfg Config) Table {
	cfg = cfg.withDefaults()
	return ccFigure(12, cfg,
		fmt.Sprintf("Connected components: time vs threads (%d vertices, %d edges, %s exec)", cfg.CCVertices, cfg.CCEdges, cfg.Exec),
		"threads", cfg.ThreadSweep)
}

// SortedFigureIDs returns FigureIDs ascending (defensive copy).
func SortedFigureIDs() []int {
	ids := append([]int(nil), FigureIDs...)
	sort.Ints(ids)
	return ids
}
