package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"crcwpram/internal/bench/sweep"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
)

// maxMethods is the method set of Figures 5-9 (the paper compares naive,
// the atomic prefix-sum gatekeeper, and CAS-LT).
var maxMethods = []cw.Method{cw.Naive, cw.Gatekeeper, cw.CASLT}

// ccMethods is the method set of Figures 10-12: the paper implements no
// naive CC because the hooking write is an unsafe arbitrary multi-array
// write.
var ccMethods = []cw.Method{cw.Gatekeeper, cw.CASLT}

// Figure runs the reproduction of one paper figure (5..12).
func Figure(id int, cfg Config) (Table, error) {
	switch id {
	case 5:
		return Fig5MaxBySize(cfg), nil
	case 6:
		return Fig6MaxByThreads(cfg), nil
	case 7:
		return Fig7BFSByEdges(cfg), nil
	case 8:
		return Fig8BFSByVertices(cfg), nil
	case 9:
		return Fig9BFSByThreads(cfg), nil
	case 10:
		return Fig10CCByEdges(cfg), nil
	case 11:
		return Fig11CCByVertices(cfg), nil
	case 12:
		return Fig12CCByThreads(cfg), nil
	default:
		return Table{}, fmt.Errorf("bench: no figure %d (paper figures are 5..12)", id)
	}
}

// FigureIDs lists the reproducible paper figures.
var FigureIDs = []int{5, 6, 7, 8, 9, 10, 11, 12}

// FigureUsesBalance reports whether a figure's kernel honors the
// work-partitioning axis (-balance): the BFS figures do, the maximum and CC
// figures split by element/vertex count regardless.
func FigureUsesBalance(id int) bool { return id >= 7 && id <= 9 }

func methodsOr(cfg Config, def []cw.Method) []cw.Method {
	if len(cfg.Methods) > 0 {
		return cfg.Methods
	}
	return def
}

// figKernel resolves a registered kernel for a figure, panicking on a
// missing registration — a figure naming an unregistered kernel is a
// programming error, not a runtime condition.
func figKernel(name string) *kernel.Descriptor {
	d, ok := kernel.Lookup(name)
	if !ok {
		panic("bench: figure kernel " + name + " not registered")
	}
	return d
}

func randomList(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	list := make([]uint32, n)
	for i := range list {
		list[i] = rng.Uint32()
	}
	return list
}

// figPoint measures one figure cell through the sweep engine and panics on
// a validation failure: the figures' contract is that a table they return
// is a table whose every point was checked.
func figPoint(run *sweep.Runner, d *kernel.Descriptor, inst kernel.Instance, s kernel.Settings, what string) Point {
	cell, err := run.Timed(inst, s)
	if err != nil {
		panic(fmt.Sprintf("bench: %s: %v", what, err))
	}
	return Point{Median: cell.Median, Sample: cell.Sample}
}

// Fig5MaxBySize reproduces Figure 5: constant-time maximum execution time
// vs. list size at a fixed thread count.
func Fig5MaxBySize(cfg Config) Table {
	cfg = cfg.withDefaults()
	methods := methodsOr(cfg, maxMethods)
	t := Table{
		ID:       "fig5",
		Title:    fmt.Sprintf("Constant-time maximum: time vs list size (%d threads, %s exec)", cfg.Threads, cfg.Exec),
		Kernel:   "maxfind",
		Exec:     cfg.Exec.String(),
		Policy:   cfg.Policy.String(),
		XLabel:   "list size",
		Xs:       cfg.MaxSizes,
		Baseline: cw.Naive,
	}
	d := figKernel("maxfind")
	run := cfg.newRunner()
	defer run.Close()
	m := run.Machine(sweep.MachineKey{Threads: cfg.Threads, Policy: cfg.Policy})
	workloads := make([]*kernel.Workload, len(cfg.MaxSizes))
	for i, n := range cfg.MaxSizes {
		workloads[i] = &kernel.Workload{List: randomList(n, cfg.Seed+int64(n))}
	}
	for _, method := range methods {
		ser := Series{Method: method}
		for i, n := range cfg.MaxSizes {
			inst := run.Instance(d, m, workloads[i])
			pt := figPoint(run, d, inst, kernel.Settings{Exec: cfg.Exec, Method: method},
				fmt.Sprintf("fig5 %v n=%d", method, n))
			ser.Points = append(ser.Points, pt)
			cfg.logf("fig5 %s n=%d median=%v\n", method, n, pt.Median)
		}
		t.Series = append(t.Series, ser)
	}
	return t
}

// Fig6MaxByThreads reproduces Figure 6: maximum execution time vs. thread
// count at a fixed list size (paper: 60K elements).
func Fig6MaxByThreads(cfg Config) Table {
	cfg = cfg.withDefaults()
	methods := methodsOr(cfg, maxMethods)
	t := Table{
		ID:       "fig6",
		Title:    fmt.Sprintf("Constant-time maximum: time vs threads (N=%d, %s exec)", cfg.MaxN, cfg.Exec),
		Kernel:   "maxfind",
		Exec:     cfg.Exec.String(),
		Policy:   cfg.Policy.String(),
		XLabel:   "threads",
		Xs:       cfg.ThreadSweep,
		Baseline: cw.Naive,
	}
	d := figKernel("maxfind")
	run := cfg.newRunner()
	defer run.Close()
	w := &kernel.Workload{List: randomList(cfg.MaxN, cfg.Seed)}
	for _, method := range methods {
		ser := Series{Method: method}
		for _, p := range cfg.ThreadSweep {
			m := run.Machine(sweep.MachineKey{Threads: p, Policy: cfg.Policy})
			inst := run.Instance(d, m, w)
			pt := figPoint(run, d, inst, kernel.Settings{Exec: cfg.Exec, Method: method},
				fmt.Sprintf("fig6 %v p=%d", method, p))
			ser.Points = append(ser.Points, pt)
			cfg.logf("fig6 %s p=%d median=%v\n", method, p, pt.Median)
		}
		t.Series = append(t.Series, ser)
	}
	return t
}

// bfsFigure sweeps xs; pick maps each x to the point's (vertices, edges,
// threads).
func bfsFigure(id int, cfg Config, title, xlabel string, xs []int, pick func(x int) (nv, ne, p int)) Table {
	methods := methodsOr(cfg, maxMethods)
	t := Table{
		ID:       fmt.Sprintf("fig%d", id),
		Title:    title,
		Kernel:   "bfs",
		Exec:     cfg.Exec.String(),
		Policy:   cfg.Policy.String(),
		Balance:  cfg.Balance.String(),
		XLabel:   xlabel,
		Xs:       xs,
		Baseline: cw.Naive,
	}
	d := figKernel("bfs")
	run := cfg.newRunner()
	defer run.Close()
	workloads := make([]*kernel.Workload, len(xs))
	threads := make([]int, len(xs))
	for i, x := range xs {
		nv, ne, p := pick(x)
		workloads[i] = &kernel.Workload{Graph: graph.ConnectedRandom(nv, ne, cfg.Seed+int64(i))}
		threads[i] = p
	}
	for _, method := range methods {
		ser := Series{Method: method}
		for i, x := range xs {
			m := run.Machine(sweep.MachineKey{Threads: threads[i], Policy: cfg.Policy})
			inst := run.Instance(d, m, workloads[i])
			pt := figPoint(run, d, inst,
				kernel.Settings{Exec: cfg.Exec, Method: method, Balance: cfg.Balance},
				fmt.Sprintf("fig%d %v x=%d", id, method, x))
			ser.Points = append(ser.Points, pt)
			cfg.logf("fig%d %s x=%d median=%v\n", id, method, x, pt.Median)
		}
		t.Series = append(t.Series, ser)
	}
	return t
}

// Fig7BFSByEdges reproduces Figure 7: BFS time vs. edge count at fixed
// vertices and threads.
func Fig7BFSByEdges(cfg Config) Table {
	cfg = cfg.withDefaults()
	return bfsFigure(7, cfg,
		fmt.Sprintf("BFS: time vs edges (%d vertices, %d threads, %s exec, %s balance)", cfg.BFSVertices, cfg.Threads, cfg.Exec, cfg.Balance),
		"edges", cfg.BFSEdgeSweep,
		func(x int) (int, int, int) { return cfg.BFSVertices, x, cfg.Threads })
}

// Fig8BFSByVertices reproduces Figure 8: BFS time vs. vertex count at fixed
// edges and threads.
func Fig8BFSByVertices(cfg Config) Table {
	cfg = cfg.withDefaults()
	return bfsFigure(8, cfg,
		fmt.Sprintf("BFS: time vs vertices (%d edges, %d threads, %s exec, %s balance)", cfg.BFSEdges, cfg.Threads, cfg.Exec, cfg.Balance),
		"vertices", cfg.BFSVertexSweep,
		func(x int) (int, int, int) { return x, cfg.BFSEdges, cfg.Threads })
}

// Fig9BFSByThreads reproduces Figure 9: BFS time vs. thread count at fixed
// graph size.
func Fig9BFSByThreads(cfg Config) Table {
	cfg = cfg.withDefaults()
	return bfsFigure(9, cfg,
		fmt.Sprintf("BFS: time vs threads (%d vertices, %d edges, %s exec, %s balance)", cfg.BFSVertices, cfg.BFSEdges, cfg.Exec, cfg.Balance),
		"threads", cfg.ThreadSweep,
		func(x int) (int, int, int) { return cfg.BFSVertices, cfg.BFSEdges, x })
}

func ccFigure(id int, cfg Config, title, xlabel string, xs []int) Table {
	methods := methodsOr(cfg, ccMethods)
	t := Table{
		ID:       fmt.Sprintf("fig%d", id),
		Title:    title,
		Kernel:   "cc",
		Exec:     cfg.Exec.String(),
		Policy:   cfg.Policy.String(),
		XLabel:   xlabel,
		Xs:       xs,
		Baseline: cw.Gatekeeper,
	}
	d := figKernel("cc")
	run := cfg.newRunner()
	defer run.Close()
	workloads := make([]*kernel.Workload, len(xs))
	threads := make([]int, len(xs))
	for i := range xs {
		nv, ne, p := cfg.CCVertices, cfg.CCEdges, cfg.Threads
		switch xlabel {
		case "edges":
			ne = xs[i]
		case "vertices":
			nv = xs[i]
		case "threads":
			p = xs[i]
		}
		workloads[i] = &kernel.Workload{Graph: graph.RandomUndirected(nv, ne, cfg.Seed+int64(i))}
		threads[i] = p
	}
	for _, method := range methods {
		ser := Series{Method: method}
		for i := range xs {
			m := run.Machine(sweep.MachineKey{Threads: threads[i], Policy: cfg.Policy})
			inst := run.Instance(d, m, workloads[i])
			pt := figPoint(run, d, inst, kernel.Settings{Exec: cfg.Exec, Method: method},
				fmt.Sprintf("fig%d %v x=%d", id, method, xs[i]))
			ser.Points = append(ser.Points, pt)
			cfg.logf("fig%d %s x=%d median=%v\n", id, method, xs[i], pt.Median)
		}
		t.Series = append(t.Series, ser)
	}
	return t
}

// Fig10CCByEdges reproduces Figure 10: CC time vs. edge count.
func Fig10CCByEdges(cfg Config) Table {
	cfg = cfg.withDefaults()
	return ccFigure(10, cfg,
		fmt.Sprintf("Connected components: time vs edges (%d vertices, %d threads, %s exec)", cfg.CCVertices, cfg.Threads, cfg.Exec),
		"edges", cfg.CCEdgeSweep)
}

// Fig11CCByVertices reproduces Figure 11: CC time vs. vertex count.
func Fig11CCByVertices(cfg Config) Table {
	cfg = cfg.withDefaults()
	return ccFigure(11, cfg,
		fmt.Sprintf("Connected components: time vs vertices (%d edges, %d threads, %s exec)", cfg.CCEdges, cfg.Threads, cfg.Exec),
		"vertices", cfg.CCVertexSweep)
}

// Fig12CCByThreads reproduces Figure 12: CC time vs. thread count.
func Fig12CCByThreads(cfg Config) Table {
	cfg = cfg.withDefaults()
	return ccFigure(12, cfg,
		fmt.Sprintf("Connected components: time vs threads (%d vertices, %d edges, %s exec)", cfg.CCVertices, cfg.CCEdges, cfg.Exec),
		"threads", cfg.ThreadSweep)
}

// SortedFigureIDs returns FigureIDs ascending (defensive copy).
func SortedFigureIDs() []int {
	ids := append([]int(nil), FigureIDs...)
	sort.Ints(ids)
	return ids
}
