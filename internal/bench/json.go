package bench

import (
	"encoding/json"
	"io"
)

// Row is one machine-readable measurement, the unit of the -json output:
// enough identity (kernel, method, execution mode, worker count, sweep
// position) to track a benchmark trajectory across commits.
type Row struct {
	Bench   string  `json:"bench"`            // "figure" or "roundoverhead"
	Figure  string  `json:"figure,omitempty"` // e.g. "fig7"
	Kernel  string  `json:"kernel,omitempty"` // "maxfind", "bfs", "cc", ...
	Method  string  `json:"method,omitempty"` // concurrent-write method
	Exec    string  `json:"exec"`             // execution mode: pool | team
	Threads int     `json:"threads"`          // worker count of the point
	XLabel  string  `json:"x_label,omitempty"`
	X       int     `json:"x,omitempty"`
	NsOp    float64 `json:"ns_op"` // median ns per run (or per round)
}

// Rows flattens a figure table into machine-readable rows. defaultThreads
// is the fixed worker count of non-thread-sweep figures; for thread sweeps
// the x value is the worker count.
func (t *Table) Rows(defaultThreads int) []Row {
	var out []Row
	for _, s := range t.Series {
		for i, x := range t.Xs {
			threads := defaultThreads
			if t.XLabel == "threads" {
				threads = x
			}
			out = append(out, Row{
				Bench:   "figure",
				Figure:  t.ID,
				Kernel:  t.Kernel,
				Method:  s.Method.String(),
				Exec:    t.Exec,
				Threads: threads,
				XLabel:  t.XLabel,
				X:       x,
				NsOp:    float64(s.Points[i].Median.Nanoseconds()),
			})
		}
	}
	return out
}

// WriteJSON emits rows as indented JSON (one array), stable for diffing
// committed baselines.
func WriteJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
