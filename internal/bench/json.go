package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
	"crcwpram/internal/sched"
)

// Row is one machine-readable measurement, the unit of the -json output:
// enough identity (kernel, method, execution mode, worker count, sweep
// position) to track a benchmark trajectory across commits.
type Row struct {
	Bench   string  `json:"bench"`            // "figure" or "roundoverhead"
	Figure  string  `json:"figure,omitempty"` // e.g. "fig7"
	Kernel  string  `json:"kernel,omitempty"` // "maxfind", "bfs", "cc", ...
	Method  string  `json:"method,omitempty"` // concurrent-write method
	Exec    string  `json:"exec"`             // execution mode: pool | team | trace
	Threads int     `json:"threads"`          // worker count of the point
	XLabel  string  `json:"x_label,omitempty"`
	X       int     `json:"x,omitempty"`
	NsOp    float64 `json:"ns_op"` // median ns per run (or per round)

	// Edge-balance sweep extras (bench "edgebalance"): the workload identity
	// and the deterministic work model. WorkCrit is the modelled critical
	// path (sum over rounds of the busiest worker's units), WorkIdeal the
	// per-round perfect split of the same units, Imbalance their ratio — the
	// number a wall clock would show with one core per worker, reported
	// alongside NsOp because wall time on an oversubscribed host cannot
	// separate balance from scheduling noise.
	Graph     string  `json:"graph,omitempty"`   // workload graph name
	Balance   string  `json:"balance,omitempty"` // partitioning: vertex | edge
	Policy    string  `json:"policy,omitempty"`  // scheduling policy of the cell
	Depth     int     `json:"depth,omitempty"`   // BFS depth reached
	WorkTotal uint64  `json:"work_total,omitempty"`
	WorkCrit  uint64  `json:"work_crit,omitempty"`
	WorkIdeal uint64  `json:"work_ideal,omitempty"`
	Imbalance float64 `json:"imbalance,omitempty"` // WorkCrit / WorkIdeal

	// Counting extras (benches "kernelops" and "kerneltrace"): produced by
	// the trace execution backend composed with the cw layer's counting
	// resolvers. These rows carry no timing (NsOp is zero by construction —
	// a traced replay is not a measurement) but pin the per-run operation
	// and synchronization totals, which are deterministic and therefore
	// diffable across commits without noise.
	Loads     uint64 `json:"loads,omitempty"`      // resolver plain loads
	RMWs      uint64 `json:"rmws,omitempty"`       // resolver atomic RMWs
	Wins      uint64 `json:"wins,omitempty"`       // resolver winning writes
	Steps     uint64 `json:"steps,omitempty"`      // work-shared loops
	Barriers  uint64 `json:"barriers,omitempty"`   // synchronization points
	Singles   uint64 `json:"singles,omitempty"`    // serial sections
	Rounds    uint64 `json:"rounds,omitempty"`     // CW round ids consumed
	IterMax   uint64 `json:"iter_max,omitempty"`   // busiest logical worker
	IterTotal uint64 `json:"iter_total,omitempty"` // summed iterations

	// Live-contention extras (bench "metrics"): aggregated from the
	// metrics layer's per-worker shards over one full kernel run under a
	// timed backend (internal/core/metrics). These rows also carry no
	// ns_op — the per-cell probe that produces MaxCellClaims adds a CAS
	// per executed attempt, so their wall clock is not a measurement —
	// but the exec field names the timed backend that ran them, because
	// contention only exists under genuine concurrency.
	// Steal counters (benches "stealing" and "metrics"): the deque-claim
	// split of the stealing scheduler, aggregated from the same per-worker
	// shards. Zero by construction for every policy but stealing.
	ChunksLocal uint64 `json:"chunks_local,omitempty"` // chunks a worker popped from its own deque
	Steals      uint64 `json:"steals,omitempty"`       // chunks taken from a victim's deque
	StealFails  uint64 `json:"steal_fails,omitempty"`  // steal attempts that found nothing (or lost the CAS)

	// Locality extras (bench "locality"): the representation and CSR-order
	// axes plus the deterministic cache-line-touch model (localitymodel.go).
	// Bitmap rows carry the modelled line-touch pair — their own number and
	// the word-representation baseline of the same cell — so the packing
	// ratio is diffable from a single row; word rows are pure timings.
	// PermHash fingerprints the applied CSR permutation and is nonzero
	// exactly on relabeled rows.
	Repr            string `json:"repr,omitempty"`              // membership repr: word | bitmap
	Relabel         string `json:"relabel,omitempty"`           // CSR order: none | degree | bfs
	LineTouches     uint64 `json:"line_touches,omitempty"`      // modelled distinct line touches
	LineTouchesWord uint64 `json:"line_touches_word,omitempty"` // word baseline of the same cell
	PermHash        uint64 `json:"perm_hash,omitempty"`         // relabeling permutation fingerprint

	// Observability-overhead extras (bench "metricsoverhead"): Variant
	// names the instrumentation configuration of a timed cell — "off"
	// (bare machine, the production default), "metrics" (counter shards
	// attached) or "evtrace" (the event-trace flight recorder attached,
	// which implies metrics) — so the committed baseline pins all three
	// medians of the same kernel and the off-vs-on deltas are diffable
	// across commits.
	Variant string `json:"variant,omitempty"`

	// RoundWallNs is the per-round coordinator wall-time series of a
	// metrics row (metrics.Snapshot.RoundWallNs); its entries sum to
	// RoundNs. Present only when the producing run recorded round times.
	RoundWallNs []int64 `json:"round_wall_ns,omitempty"`

	CASAttempts   uint64 `json:"cas_attempts,omitempty"`    // executed RMWs (wins + losses)
	CASWins       uint64 `json:"cas_wins,omitempty"`        // winning RMWs
	CASLosses     uint64 `json:"cas_losses,omitempty"`      // losing RMWs
	PrecheckSkips uint64 `json:"precheck_skips,omitempty"`  // resolved by plain-load pre-check
	MaxCellClaims uint64 `json:"max_cell_claims,omitempty"` // max RMWs on one cell in one round
	BusyNs        int64  `json:"busy_ns,omitempty"`         // summed worker in-loop time
	BarrierWaitNs int64  `json:"barrier_wait_ns,omitempty"` // summed worker barrier waits
	RoundNs       int64  `json:"round_ns,omitempty"`        // coordinator wall over parallel rounds
}

// countingBench reports whether a bench's rows are deterministic counts
// rather than timings (see the counting extras on Row).
func countingBench(bench string) bool {
	return bench == "kernelops" || bench == "kerneltrace"
}

// Rows flattens a figure table into machine-readable rows. defaultThreads
// is the fixed worker count of non-thread-sweep figures; for thread sweeps
// the x value is the worker count.
func (t *Table) Rows(defaultThreads int) []Row {
	var out []Row
	for _, s := range t.Series {
		for i, x := range t.Xs {
			threads := defaultThreads
			if t.XLabel == "threads" {
				threads = x
			}
			out = append(out, Row{
				Bench:   "figure",
				Figure:  t.ID,
				Kernel:  t.Kernel,
				Method:  s.Method.String(),
				Exec:    t.Exec,
				Balance: t.Balance,
				Policy:  t.Policy,
				Threads: threads,
				XLabel:  t.XLabel,
				X:       x,
				NsOp:    float64(s.Points[i].Median.Nanoseconds()),
			})
		}
	}
	return out
}

// WriteJSON emits rows as indented JSON (one array), stable for diffing
// committed baselines.
func WriteJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// ValidateJSON reads a -json output back and checks its shape: one
// non-empty array whose every row names a bench, a known execution mode, a
// positive worker count and a positive measurement — except the counting
// benches (kernelops, kerneltrace), whose rows are trace-produced counts
// and must instead carry a zero timing, the trace exec and a non-empty
// structure. Edge-balance rows additionally carry a consistent work model
// (Total >= Crit >= Ideal > 0). CI's perf-smoke step runs this so a
// malformed trajectory fails the build instead of polluting committed
// baselines. It returns the number of rows checked.
//
// The legal value sets — exec names, method names, representation and
// relabel axes, scheduling policies — come from the axis metadata of the
// kernel registry and the parsers it is built on, not from literals
// duplicated per sweep, so a kernel or axis value added by registration is
// accepted here with no edits. Which counter discipline applies to a
// metrics row likewise follows the registered kernel's contention class.
func ValidateJSON(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	var rows []Row
	if err := dec.Decode(&rows); err != nil {
		return 0, fmt.Errorf("parse: %w", err)
	}
	if dec.More() {
		return 0, fmt.Errorf("trailing data after the row array")
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("no rows")
	}
	for i, row := range rows {
		fail := func(format string, args ...any) (int, error) {
			return 0, fmt.Errorf("row %d: %s", i, fmt.Sprintf(format, args...))
		}
		if row.Bench == "" {
			return fail("missing bench")
		}
		if !kernel.ValidAxisValue(kernel.AxisExec, row.Exec) {
			return fail("unknown exec %q", row.Exec)
		}
		if row.Threads <= 0 {
			return fail("non-positive threads %d", row.Threads)
		}
		if countingBench(row.Bench) {
			// Counting rows are traced, not timed: no ns_op, but the
			// structure must be there — every kernel has at least one
			// work-shared loop and its closing barrier.
			if row.Exec != "trace" {
				return fail("%s row with exec %q, want trace", row.Bench, row.Exec)
			}
			if row.NsOp != 0 {
				return fail("%s row carries ns_op %v", row.Bench, row.NsOp)
			}
			if row.Steps == 0 || row.Barriers == 0 {
				return fail("%s row missing steps/barriers", row.Bench)
			}
		} else if row.Bench == "metrics" {
			// Contention rows come from a probe-carrying run under a timed
			// backend: no ns_op, but every guarded kernel must have executed
			// attempts, and the EREW negative controls (registered with
			// ContentionEREW, e.g. listrank) must have zero counters. The
			// class is looked up in the registry; an unregistered kernel name
			// defaults to the guarded discipline.
			if row.Exec == "trace" {
				return fail("metrics row with exec trace, want a timed backend")
			}
			if row.NsOp != 0 {
				return fail("metrics row carries ns_op %v", row.NsOp)
			}
			if row.Kernel == "" {
				return fail("metrics row missing kernel")
			}
			if row.CASAttempts != row.CASWins+row.CASLosses {
				return fail("metrics row attempts %d != wins %d + losses %d",
					row.CASAttempts, row.CASWins, row.CASLosses)
			}
			erew := false
			if d, ok := kernel.Lookup(row.Kernel); ok {
				erew = d.Contention == kernel.ContentionEREW
			}
			if erew {
				if row.CASAttempts != 0 || row.PrecheckSkips != 0 {
					return fail("%s (EREW) metrics row carries CW counters", row.Kernel)
				}
			} else if row.CASAttempts == 0 || row.CASWins == 0 {
				return fail("metrics row for %s without executed attempts", row.Kernel)
			}
			if row.BusyNs <= 0 || row.RoundNs <= 0 {
				return fail("metrics row missing time split busy=%d round=%d",
					row.BusyNs, row.RoundNs)
			}
			if row.Rounds == 0 {
				return fail("metrics row for %s without rounds-to-convergence", row.Kernel)
			}
			if len(row.RoundWallNs) > 0 {
				var sum int64
				for _, ns := range row.RoundWallNs {
					sum += ns
				}
				if sum != row.RoundNs {
					return fail("metrics row round_wall_ns sums to %d, round_ns is %d",
						sum, row.RoundNs)
				}
			}
		} else if !(row.NsOp > 0) {
			return fail("non-positive ns_op %v", row.NsOp)
		}
		if row.Bench == "metricsoverhead" {
			// Overhead rows are timed triples of the same kernel under the
			// three instrumentation variants; the variant axis is what the
			// committed baseline exists to pin.
			switch row.Variant {
			case "off", "metrics", "evtrace":
			default:
				return fail("metricsoverhead row with variant %q, want off, metrics or evtrace", row.Variant)
			}
			if row.Kernel == "" {
				return fail("metricsoverhead row missing kernel")
			}
		} else if row.Variant != "" {
			return fail("%s row carries variant %q", row.Bench, row.Variant)
		}
		if row.Bench == "edgebalance" {
			switch {
			case row.Graph == "" || row.Balance == "":
				return fail("edgebalance row missing graph/balance")
			case row.WorkIdeal == 0 || row.WorkCrit < row.WorkIdeal || row.WorkTotal < row.WorkCrit:
				return fail("inconsistent work model total=%d crit=%d ideal=%d",
					row.WorkTotal, row.WorkCrit, row.WorkIdeal)
			case row.Imbalance < 1:
				return fail("imbalance %v < 1", row.Imbalance)
			}
		}
		if row.Policy != "" {
			// Any policy-carrying row (benches "stealing" and "metrics"): the
			// name must parse, and the live deque counters must be nonzero
			// exactly for the stealing-policy cells — a stealing run that
			// claimed no chunks through its deques did not exercise the
			// scheduler it reports on.
			if _, ok := sched.ParsePolicy(row.Policy); !ok {
				return fail("unknown policy %q", row.Policy)
			}
			if row.Policy == "stealing" {
				// Only the counter-carrying benches promise live deque
				// counters; figure rows run uninstrumented machines.
				if (row.Bench == "stealing" || row.Bench == "metrics") && row.ChunksLocal == 0 {
					return fail("stealing-policy row claimed no local chunks")
				}
			} else if row.ChunksLocal != 0 || row.Steals != 0 || row.StealFails != 0 {
				return fail("policy %q row carries steal counters", row.Policy)
			}
		}
		if row.Bench == "locality" {
			// Locality rows are timed cells on the representation × relabel
			// axes. The line-touch model rides on bitmap rows only (carrying
			// both representations' numbers), and the permutation fingerprint
			// rides on relabeled rows only.
			if row.Graph == "" || row.Kernel == "" {
				return fail("locality row missing graph/kernel")
			}
			if !kernel.ValidAxisValue(kernel.AxisRepr, row.Repr) {
				return fail("locality row with repr %q, want word or bitmap", row.Repr)
			}
			if _, ok := graph.ParseRelabel(row.Relabel); !ok {
				return fail("unknown relabel mode %q", row.Relabel)
			}
			if row.Repr == "bitmap" {
				if row.LineTouches == 0 || row.LineTouchesWord == 0 {
					return fail("bitmap locality row missing line-touch model (%d/%d)",
						row.LineTouches, row.LineTouchesWord)
				}
			} else if row.LineTouches != 0 || row.LineTouchesWord != 0 {
				return fail("word locality row carries line touches")
			}
			if (row.Relabel != "none") != (row.PermHash != 0) {
				return fail("relabel %q with perm_hash %#x", row.Relabel, row.PermHash)
			}
		}
		if row.Bench == "stealing" {
			// Stealing rows carry the scheduling model; its Crit includes
			// per-chunk acquisition costs, so Crit >= Ideal is the invariant
			// (Total is the acquisition-free sum).
			switch {
			case row.Graph == "" || row.Policy == "":
				return fail("stealing row missing graph/policy")
			case row.WorkIdeal == 0 || row.WorkCrit < row.WorkIdeal:
				return fail("inconsistent scheduling model crit=%d ideal=%d",
					row.WorkCrit, row.WorkIdeal)
			case row.Imbalance < 1:
				return fail("imbalance %v < 1", row.Imbalance)
			}
		}
	}
	return len(rows), nil
}
