package bench

import (
	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/sched"
)

// This file is the deterministic cache-line-touch model behind the
// locality sweep (locality.go). It answers the question the bit-packed
// representation exists for, in a form a shared host's wall clock cannot:
// how many distinct 64-byte cache lines of *membership state* does one BFS
// run pull through each worker's cache?
//
// Like the work model (workmodel.go) and the scheduling model
// (stealmodel.go), it replays the kernel's rounds exactly — the same
// static vertex shards, the same per-vertex case split as the pull sweep,
// the same bfs.NextDirection decisions — but instead of counting work
// units it counts, per worker per round, the distinct cache lines touched
// in each membership array. Summing those first-touches-per-round is a
// compulsory-traffic proxy: a round's working set is what the worker must
// stream through its cache regardless of hit rate within the round.
//
// Only the arrays the representation axis changes are modelled:
//
//	word repr:   level (the pull filter and probe target) and visited
//	             (the push filter and winner flag) — uint32 cells,
//	             16 per 64-byte line. Discovery stores to level are
//	             charged: they are next round's probe targets.
//	bitmap repr: visBits (filter/winner), curBits (pull probes),
//	             nextBits (discovery buffer) — 1 bit per cell,
//	             512 per line.
//
// The CSR itself (offsets/targets) and the tuple payload (parent, selEdge,
// and — under the bitmap repr — level, which bitmap rounds write once per
// discovery but never read as membership) are identical under both
// representations and are deliberately excluded: including identical terms
// on both sides would only dilute the ratio the sweep exists to measure.
// The bitmap side is instead charged its structural
// extras — the per-level clearing round of the consumed buffer in pure
// pull, and the push→pull conversion round (clear + frontier fetch-ORs)
// in the hybrid — so the 512-cells-per-line advantage has to pay for its
// added rounds.
const (
	cellsPerWordLine = 16  // 64-byte line / 4-byte cell
	cellsPerBitLine  = 512 // 64-byte line / 1-bit cell
)

// Modelled membership arrays. Word and bit arrays are distinct identities:
// a level probe and a curBits probe of the same vertex touch different
// memory in the real kernels.
const (
	arrLevel    = iota // uint32; word repr (filter, probes, discovery stores)
	arrVisited         // uint32; word repr (push filter, winner flag)
	arrVisBits         // bits; bitmap repr (filter, winner flag)
	arrCurBits         // bits; bitmap repr (pull probes, hybrid conversion)
	arrNextBits        // bits; bitmap repr (discovery buffer, pure-pull clears)
	numArrs
)

// lineModel counts distinct line touches over one bfsModel's replay.
type lineModel struct {
	b *bfsModel
	// stamps[a][line] == epoch marks "line of array a already touched in
	// the current (worker, round) scope"; epoch bumps avoid clearing.
	stamps [numArrs][]uint32
	epoch  uint32
	// claimed[v] == claimEpoch marks "v already discovered this push
	// round", attributing the winner's stores to the worker whose arc the
	// id-order replay reaches first — the same first-claimant-wins rule
	// the CAS-LT (or fetch-OR) arbitration implements.
	claimed    []uint32
	claimEpoch uint32
	lines      uint64
}

// newLineModel wraps a bfsModel for line counting.
func newLineModel(b *bfsModel) *lineModel {
	lm := &lineModel{b: b, claimed: make([]uint32, b.n)}
	wordLines := (b.n + cellsPerWordLine - 1) / cellsPerWordLine
	bitLines := (b.n + cellsPerBitLine - 1) / cellsPerBitLine
	for a := 0; a < numArrs; a++ {
		if a == arrLevel || a == arrVisited {
			lm.stamps[a] = make([]uint32, wordLines)
		} else {
			lm.stamps[a] = make([]uint32, bitLines)
		}
	}
	return lm
}

func (lm *lineModel) touch(arr, line int) {
	if lm.stamps[arr][line] != lm.epoch {
		lm.stamps[arr][line] = lm.epoch
		lm.lines++
	}
}

func (lm *lineModel) touchWord(arr int, v uint32) { lm.touch(arr, int(v)/cellsPerWordLine) }
func (lm *lineModel) touchBit(arr int, v uint32)  { lm.touch(arr, int(v)/cellsPerBitLine) }

// pullRound replays one bottom-up level at L over the static vertex
// shards: the unreached filter, the neighbor probes (to the first hit for
// vertices this round discovers, the full list for still-unreached ones),
// and the winner's stores.
func (lm *lineModel) pullRound(L uint32, bitmap bool) {
	b := lm.b
	offsets, targets := b.g.Offsets(), b.g.Targets()
	for w := 0; w < b.p; w++ {
		lm.epoch++
		lo, hi := sched.BlockRange(b.n, b.p, w)
		for v := lo; v < hi; v++ {
			if bitmap {
				lm.touchBit(arrVisBits, uint32(v))
			} else {
				lm.touchWord(arrLevel, uint32(v))
			}
			lv := b.levels[v]
			if lv <= L {
				continue // reached: filter read only
			}
			probes := offsets[v+1] - offsets[v]
			if lv == L+1 {
				probes = b.firstHit[v] // discovered: scan stops at the hit
			}
			for j := offsets[v]; j < offsets[v]+probes; j++ {
				if bitmap {
					lm.touchBit(arrCurBits, targets[j])
				} else {
					lm.touchWord(arrLevel, targets[j])
				}
			}
			if lv == L+1 {
				if bitmap {
					lm.touchBit(arrVisBits, uint32(v))
					lm.touchBit(arrNextBits, uint32(v))
				} else {
					lm.touchWord(arrVisited, uint32(v))
					lm.touchWord(arrLevel, uint32(v)) // next round's probe target
				}
			}
		}
	}
}

// pushRound replays one frontier relaxation at level L: per examined arc
// the membership filter of its target, plus the winner's stores on the
// first arc of the round to reach each discovery (id-order first claimant,
// matching the arbitration rule).
func (lm *lineModel) pushRound(L uint32, bitmap bool) {
	b := lm.b
	offsets, targets := b.g.Offsets(), b.g.Targets()
	f := b.byLevel[L]
	lm.claimEpoch++
	for w := 0; w < b.p; w++ {
		lm.epoch++
		lo, hi := sched.BlockRange(len(f), b.p, w)
		for i := lo; i < hi; i++ {
			u := f[i]
			for j := offsets[u]; j < offsets[u+1]; j++ {
				t := targets[j]
				if bitmap {
					lm.touchBit(arrVisBits, t)
				} else {
					lm.touchWord(arrVisited, t)
				}
				if !bitmap && b.levels[t] == L+1 && lm.claimed[t] != lm.claimEpoch {
					lm.claimed[t] = lm.claimEpoch
					lm.touchWord(arrLevel, t) // next pull round's probe target
				}
			}
		}
	}
}

// clearRound replays one sharded ResetRange over a bit array: each
// worker's contiguous share streams its lines once.
func (lm *lineModel) clearRound(arr int) {
	b := lm.b
	for w := 0; w < b.p; w++ {
		lm.epoch++
		lo, hi := sched.BlockRange(b.n, b.p, w)
		for line := lo / cellsPerBitLine; line <= (hi-1)/cellsPerBitLine; line++ {
			lm.touch(arr, line)
		}
	}
}

// convRound replays the hybrid's push→pull conversion: a clearing round of
// curBits followed by a fetch-OR round over the frontier list.
func (lm *lineModel) convRound(L uint32) {
	b := lm.b
	lm.clearRound(arrCurBits)
	f := b.byLevel[L]
	for w := 0; w < b.p; w++ {
		lm.epoch++
		lo, hi := sched.BlockRange(len(f), b.p, w)
		for i := lo; i < hi; i++ {
			lm.touchBit(arrCurBits, f[i])
		}
	}
}

// Lines returns the modelled distinct-line-touch total of one kernel under
// one representation. Kernel names match the locality sweep: "bfs-pull"
// (pure bottom-up) and "bfs-hybrid" (direction-optimizing).
func (lm *lineModel) Lines(kernel string, bitmap bool) uint64 {
	b := lm.b
	lm.lines = 0
	switch kernel {
	case "bfs-pull":
		for L := 0; L <= b.depth; L++ {
			lm.pullRound(uint32(L), bitmap)
			if bitmap && L < b.depth {
				// Productive levels swap buffers and clear the consumed one.
				lm.clearRound(arrNextBits)
			}
		}
	case "bfs-hybrid":
		mf := uint64(b.g.Degree(b.source))
		mu := uint64(b.g.NumArcs()) - mf
		pull := false
		for L := 0; L <= b.depth; L++ {
			nf := uint64(len(b.byLevel[L]))
			pull = bfs.NextDirection(pull, mf, mu, nf, uint64(b.n))
			if pull {
				if bitmap {
					lm.convRound(uint32(L))
				}
				lm.pullRound(uint32(L), bitmap)
			} else {
				lm.pushRound(uint32(L), bitmap)
			}
			var disc uint64
			if L+1 <= b.depth {
				disc = b.degLevel[L+1]
			}
			mu -= disc
			mf = disc
		}
	default:
		panic("bench: no locality model for kernel " + kernel)
	}
	return lm.lines
}
