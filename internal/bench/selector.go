package bench

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"crcwpram/internal/bench/sweep"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
	"crcwpram/internal/sched"
)

// SelectorResult reports one -run cell: a single registered kernel executed
// under one full axis assignment.
type SelectorResult struct {
	Kernel   string
	Selector kernel.Selector
	Threads  int
	Policy   string
	Timed    bool
	Median   time.Duration
	Out      kernel.Outcome
	Trace    *exec.TraceStats
}

// RunSelector parses a -run selector string against the registry, builds
// the standard workload for the kernel, applies the assignment, and
// executes it once: timed (prepare untimed, median of cfg.Reps runs,
// validation outside the timed region) for the timed backends, or as a
// counted trace replay for exec=trace. Unset axes keep the sweep defaults
// (pool exec, CAS-LT where supported, block policy, cfg.Threads workers).
func RunSelector(reg *kernel.Registry, cfg Config, selStr string) (*SelectorResult, error) {
	cfg = cfg.withDefaults()
	d, sel, err := reg.ParseSelector(selStr)
	if err != nil {
		return nil, err
	}
	threads := cfg.Threads
	if v, ok := sel[kernel.AxisThreads]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("selector: threads=%q is not a positive integer", v)
		}
		threads = n
	}
	pol := cfg.Policy
	if v, ok := sel[kernel.AxisPolicy]; ok {
		pol, _ = sched.ParsePolicy(v) // membership validated by ParseSelector
	}
	s, err := sweep.ParseSettings(sel)
	if err != nil {
		return nil, err
	}
	if _, ok := sel[kernel.AxisMethod]; !ok && len(d.Methods) > 0 {
		// Default the method axis the way the sweeps do: CAS-LT when the
		// kernel supports it, its first registered method otherwise.
		s.Method = d.Methods[0]
		if d.SupportsMethod(s.Method) {
			for _, m := range d.Methods {
				if m.String() == "caslt" {
					s.Method = m
				}
			}
		}
	}
	if d.Stealable && pol == sched.Stealing {
		s.Steal = kernel.StealOn
	}
	w := countWorkload(d, cfg.BFSVertices, cfg.BFSEdges, cfg.Seed)
	if v, ok := sel[kernel.AxisRelabel]; ok {
		mode, _ := graph.ParseRelabel(v)
		if mode != graph.RelabelNone {
			rl := graph.Relabel(w.Graph, mode)
			w.Graph, w.Source = rl.G, rl.Perm[w.Source]
		}
	}
	run := cfg.newRunner()
	defer run.Close()
	m := run.Machine(sweep.MachineKey{Threads: threads, Policy: pol})
	inst := run.Instance(d, m, &w)
	res := &SelectorResult{
		Kernel:   d.Name,
		Selector: sel,
		Threads:  threads,
		Policy:   pol.String(),
	}
	if s.Exec == machine.ExecTrace {
		_, tr, err := run.Counted(inst, s)
		if err != nil {
			return nil, fmt.Errorf("run %s: %w", d.Name, err)
		}
		res.Trace = tr
		return res, nil
	}
	cell, err := run.Timed(inst, s)
	if err != nil {
		return nil, fmt.Errorf("run %s: %w", d.Name, err)
	}
	res.Timed = true
	res.Median = cell.Median
	res.Out = cell.Out
	return res, nil
}

// FormatSelector renders one -run result.
func FormatSelector(w io.Writer, r *SelectorResult) error {
	var b strings.Builder
	keys := make([]string, 0, len(r.Selector))
	for k := range r.Selector {
		if k != kernel.AxisKernel {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+r.Selector[k])
	}
	fmt.Fprintf(&b, "== run: %s (%s; p=%d, policy=%s) ==\n",
		r.Kernel, strings.Join(parts, " "), r.Threads, r.Policy)
	switch {
	case r.Timed:
		fmt.Fprintf(&b, "median %v per run\n", r.Median)
		if r.Out.Depth > 0 {
			fmt.Fprintf(&b, "depth %d\n", r.Out.Depth)
		}
	case r.Trace != nil:
		fmt.Fprintf(&b, "trace replay: %d steps, %d barriers, %d singles, %d cw rounds, iters max/total %d/%d\n",
			r.Trace.Steps, r.Trace.Barriers, r.Trace.Singles, r.Trace.Rounds,
			r.Trace.MaxIters(), r.Trace.TotalIters())
	}
	_, err := io.WriteString(w, b.String())
	return err
}
