package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/bench/sweep"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	evtrace "crcwpram/internal/core/trace"
	"crcwpram/internal/kernel"
)

// ObsOverheadRow is one timed cell of the observability-overhead
// comparison: the same kernel run under one of three instrumentation
// variants — "off" (bare machine, the production default), "metrics"
// (counter shards attached) or "evtrace" (the event-trace flight
// recorder attached, which implies metrics) — so the off-vs-on deltas
// that BENCH_metrics_overhead.json commits are produced by one driver
// on identical prepared inputs.
type ObsOverheadRow struct {
	Variant string
	Kernel  string
	Method  string
	P       int
	NsOp    float64
}

// obsVariants orders the instrumentation axis from cheapest to fullest.
var obsVariants = []string{"off", "metrics", "evtrace"}

// ObservabilityOverhead times a full CAS-LT BFS run (the kernel-level
// overhead witness the old text baseline used) under each
// instrumentation variant at p = 1 and p = cfg.Threads, pool exec,
// median of cfg.Reps repetitions with preparation untimed and
// validation outside the timed region. Unlike the contention sweep no
// probe is attached — these rows ARE timings, and their whole point is
// that the three variants stay within noise of each other.
func ObservabilityOverhead(cfg Config) ([]ObsOverheadRow, error) {
	cfg = cfg.withDefaults()
	d, ok := kernel.Lookup("bfs")
	if !ok {
		return nil, fmt.Errorf("bench: overhead: bfs kernel not registered")
	}
	method := cw.CASLT
	if !d.SupportsMethod(method) && len(d.Methods) > 0 {
		method = d.Methods[0]
	}
	s := kernel.Settings{Exec: machine.ExecPool, Method: method}
	w := countWorkload(d, cfg.BFSVertices, cfg.BFSEdges, cfg.Seed)
	ps := []int{1, cfg.Threads}
	if cfg.Threads <= 1 {
		ps = ps[:1]
	}
	var rows []ObsOverheadRow
	for _, p := range ps {
		for _, variant := range obsVariants {
			var opts []machine.Option
			switch variant {
			case "metrics":
				opts = append(opts, machine.WithMetrics())
			case "evtrace":
				opts = append(opts, machine.WithEventTrace(evtrace.New(p, evtrace.DefaultCap)))
			}
			m := machine.New(p, opts...)
			inst := d.New(m, w)
			sample := sweep.Time(cfg.Reps, func() {
				inst.Prepare(s)
				m.Events().Reset() // nil-safe; keeps each rep's rings fresh
			}, func() {
				inst.Run(s)
			})
			err := inst.Validate()
			m.Close()
			if err != nil {
				return nil, fmt.Errorf("bench: overhead %s/%s p=%d: %w", d.Name, variant, p, err)
			}
			rows = append(rows, ObsOverheadRow{
				Variant: variant,
				Kernel:  d.Name,
				Method:  method.String(),
				P:       p,
				NsOp:    float64(sample.Median().Nanoseconds()),
			})
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "overhead: %s/%s p=%d median %.0f ns\n",
					d.Name, variant, p, rows[len(rows)-1].NsOp)
			}
		}
	}
	return rows, nil
}

// FormatObsOverhead renders the overhead triples with each variant's
// ratio against the bare-machine row of the same worker count.
func FormatObsOverhead(w io.Writer, rows []ObsOverheadRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== overhead: observability-layer cost on a full kernel run ==\n")
	off := map[int]float64{}
	for _, r := range rows {
		if r.Variant == "off" {
			off[r.P] = r.NsOp
		}
	}
	table := [][]string{{"kernel", "method", "p", "variant", "median", "vs off"}}
	for _, r := range rows {
		ratio := "-"
		if base := off[r.P]; base > 0 && r.Variant != "off" {
			ratio = strconv.FormatFloat(r.NsOp/base, 'f', 3, 64) + "x"
		}
		table = append(table, []string{
			r.Kernel,
			r.Method,
			strconv.Itoa(r.P),
			r.Variant,
			strconv.FormatFloat(r.NsOp/1e6, 'f', 3, 64) + "ms",
			ratio,
		})
	}
	writeAligned(&b, table)
	b.WriteString("\noff is the production default (nil recorder: one predictable branch\n" +
		"in the worker loop); metrics adds the counter shards; evtrace adds the\n" +
		"flight recorder on top. The acceptance claim is that off stays within\n" +
		"run-to-run noise of the pre-observability tree and the on-variants'\n" +
		"ratios stay small on a real kernel.\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ObsOverheadJSONRows converts the overhead cells to trajectory rows
// (bench "metricsoverhead" — the JSON successor of the prose
// BENCH_metrics_overhead.txt baseline).
func ObsOverheadJSONRows(rows []ObsOverheadRow) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:   "metricsoverhead",
			Kernel:  r.Kernel,
			Method:  r.Method,
			Exec:    machine.ExecPool.String(),
			Threads: r.P,
			Variant: r.Variant,
			NsOp:    r.NsOp,
		})
	}
	return out
}
