package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
)

// This file measures the fixed cost of one PRAM round under both execution
// modes — the quantity the team mode exists to reduce. An empty-body round
// is pure synchronization: the pool path pays two (P+1)-party barrier
// phases plus a step descriptor per round; the team path pays one P-party
// team barrier inside a region entered once. Both modes run the identical
// SPMD body through exec.Run, so the measured gap is exactly the backend
// difference the -exec axis selects, including the unified layer's own
// dispatch cost. The same measurement is available as
// BenchmarkRoundOverhead in the machine package; this variant feeds the
// CLI's tables and JSON trajectory.

// OverheadRow is one measured (P, exec) cell of the round-overhead sweep.
type OverheadRow struct {
	P          int
	Exec       string
	NsPerRound float64
}

// RoundOverhead measures the median wall time of an empty work-shared
// round, in nanoseconds, for every worker count in ps under both execution
// modes. Each measurement times `rounds` consecutive empty rounds and is
// repeated reps times.
func RoundOverhead(ps []int, rounds, reps int, log io.Writer) []OverheadRow {
	if rounds <= 0 {
		rounds = 5000
	}
	if reps <= 0 {
		reps = 3
	}
	var out []OverheadRow
	for _, p := range ps {
		for _, e := range machine.Execs {
			// Machine construction is the untimed per-repetition reset; a
			// fresh machine per rep keeps barrier state cold, as before the
			// timing helpers were shared.
			var m *machine.Machine
			body := func() {
				exec.Run(m, e, func(ctx exec.Ctx) {
					for i := 0; i < rounds; i++ {
						ctx.For(p, func(int) {})
					}
				})
			}
			ns := medianNs(reps, func() {
				if m != nil {
					m.Close()
				}
				m = machine.New(p)
			}, body)
			m.Close()
			row := OverheadRow{
				P:          p,
				Exec:       e.String(),
				NsPerRound: ns / float64(rounds),
			}
			out = append(out, row)
			if log != nil {
				fmt.Fprintf(log, "roundoverhead p=%d exec=%s ns/round=%.1f\n", p, e.String(), row.NsPerRound)
			}
		}
	}
	return out
}

// FormatRoundOverhead renders the sweep as one row per worker count with
// both modes side by side and the pool/team ratio (how many times cheaper a
// team round is).
func FormatRoundOverhead(w io.Writer, rows []OverheadRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== roundoverhead: ns per empty work-shared round ==\n")
	byP := map[int]map[string]float64{}
	var ps []int
	for _, r := range rows {
		if byP[r.P] == nil {
			byP[r.P] = map[string]float64{}
			ps = append(ps, r.P)
		}
		byP[r.P][r.Exec] = r.NsPerRound
	}
	table := [][]string{{"p", "pool", "team", "pool/team"}}
	for _, p := range ps {
		pool, team := byP[p]["pool"], byP[p]["team"]
		ratio := "-"
		if team > 0 {
			ratio = strconv.FormatFloat(pool/team, 'f', 2, 64) + "x"
		}
		table = append(table, []string{
			strconv.Itoa(p),
			strconv.FormatFloat(pool, 'f', 1, 64),
			strconv.FormatFloat(team, 'f', 1, 64),
			ratio,
		})
	}
	writeAligned(&b, table)
	_, err := io.WriteString(w, b.String())
	return err
}

// OverheadJSONRows converts the sweep to the generic machine-readable rows.
func OverheadJSONRows(rows []OverheadRow) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:   "roundoverhead",
			Kernel:  "empty-round",
			Exec:    r.Exec,
			Threads: r.P,
			NsOp:    r.NsPerRound,
		})
	}
	return out
}
