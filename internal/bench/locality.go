package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/bench/sweep"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
)

// The locality sweep is the memory-layout experiment behind -locality: the
// two bottom-up-capable CAS-LT BFS formulations (pure pull and the
// direction-optimizing hybrid) on an RMAT power-law graph, across the
// representation axis (word-per-cell membership arrays versus the
// bit-packed BitArray frontiers), the CSR relabeling axis (-relabel: none,
// degree-sorted, BFS order) and a worker-count sweep. Each cell reports
// the median wall time and, for the bitmap cells, the deterministic
// cache-line-touch model of both representations (localitymodel.go): on a
// shared host the wall clock cannot separate a cache effect from
// scheduling noise, while the modelled working set exposes exactly what
// the 512-cells-per-line packing buys and what its extra clearing and
// conversion rounds cost.

// locKernels are the swept BFS formulations: the two whose rounds probe
// level membership — the access pattern the bitmap representation packs.
var locKernels = []string{"bfs-pull", "bfs-hybrid"}

// locReprs is the representation axis.
var locReprs = []string{"word", "bitmap"}

// LocalityRow is one measured cell of the sweep.
type LocalityRow struct {
	Graph   string
	Kernel  string
	Repr    string // "word" | "bitmap"
	Relabel graph.RelabelMode
	Exec    string
	Threads int
	NsOp    float64
	Depth   int
	// Lines / LinesWord carry the line-touch model on bitmap rows only:
	// the bitmap run's modelled distinct line touches and the word
	// baseline of the same (kernel, graph, P) cell, so the ratio lives in
	// one row. Word rows are pure timing rows (the model's word number is
	// on the bitmap row they are compared against).
	Lines     uint64
	LinesWord uint64
	// PermHash fingerprints the applied permutation (zero for none):
	// committed baselines then pin not just that a relabeled run was
	// measured but which ordering it ran under.
	PermHash uint64
}

// Locality runs the sweep: for each relabel mode × worker count × kernel ×
// representation, the median wall time over cfg.Reps runs (validated once
// per cell) plus, on bitmap cells, the line-touch model pair. The workload
// size comes from cfg.LocScale, the worker counts from cfg.LocThreads, the
// relabel axis from cfg.Relabels.
func Locality(cfg Config, exec machine.Exec) ([]LocalityRow, error) {
	cfg = cfg.withDefaults()
	name := fmt.Sprintf("rmat%d", cfg.LocScale)
	g := graph.RMAT(cfg.LocScale, 8<<cfg.LocScale, 0.57, 0.19, 0.19, cfg.Seed)
	run := cfg.newRunner()
	defer run.Close()
	var rows []LocalityRow
	for _, mode := range cfg.Relabels {
		rl := graph.Relabel(g, mode)
		var hash uint64
		if mode != graph.RelabelNone {
			hash = graph.PermHash(rl.Perm)
		}
		// The traversal is rooted at the image of vertex 0, so every mode
		// runs the same BFS up to vertex names.
		src := rl.Perm[0]
		seq := bfs.Sequential(rl.G, src)
		w := &kernel.Workload{Graph: rl.G, Source: src}
		for _, p := range cfg.LocThreads {
			lm := newLineModel(newBFSModel(rl.G, src, p, seq))
			m := run.Machine(sweep.MachineKey{Threads: p, Policy: cfg.Policy})
			for _, kname := range locKernels {
				d, ok := kernel.Lookup(kname)
				if !ok {
					return nil, fmt.Errorf("locality: unregistered kernel %s", kname)
				}
				inst := run.Instance(d, m, w)
				for _, repr := range locReprs {
					cell, err := run.Timed(inst, kernel.Settings{
						Exec: exec, Method: cw.CASLT, Bitmap: repr == "bitmap",
					})
					if err != nil {
						return nil, fmt.Errorf("locality %s %s %s relabel=%s p=%d: %w",
							name, kname, repr, mode, p, err)
					}
					row := LocalityRow{
						Graph:    name,
						Kernel:   kname,
						Repr:     repr,
						Relabel:  mode,
						Exec:     exec.String(),
						Threads:  p,
						NsOp:     float64(cell.Median.Nanoseconds()),
						Depth:    seq.Depth,
						PermHash: hash,
					}
					if repr == "bitmap" {
						row.Lines = lm.Lines(kname, true)
						row.LinesWord = lm.Lines(kname, false)
					}
					rows = append(rows, row)
					cfg.logf("locality %s kernel=%s repr=%s relabel=%s p=%d median=%v lines=%d\n",
						name, kname, repr, mode, p, cell.Median, row.Lines)
				}
			}
		}
	}
	return rows, nil
}

// FormatLocality renders the sweep as one table per relabel mode: a
// (kernel, repr, P) line with the wall median and, on bitmap lines, the
// modelled line-touch pair and their ratio.
func FormatLocality(w io.Writer, rows []LocalityRow) error {
	var b strings.Builder
	ms := func(ns float64) string {
		return strconv.FormatFloat(ns/1e6, 'f', 3, 64)
	}
	var modes []string
	for _, r := range rows {
		s := r.Relabel.String()
		if len(modes) == 0 || modes[len(modes)-1] != s {
			modes = append(modes, s)
		}
	}
	for mi, mode := range modes {
		if mi > 0 {
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "== locality: relabel=%s ==\n", mode)
		table := [][]string{{"kernel", "repr", "p", "wall(ms)", "lines", "lines(word)", "ratio"}}
		for _, r := range rows {
			if r.Relabel.String() != mode {
				continue
			}
			lines, word, ratio := "-", "-", "-"
			if r.Repr == "bitmap" {
				lines = strconv.FormatUint(r.Lines, 10)
				word = strconv.FormatUint(r.LinesWord, 10)
				if r.Lines > 0 {
					ratio = strconv.FormatFloat(float64(r.LinesWord)/float64(r.Lines), 'f', 1, 64)
				}
			}
			table = append(table, []string{
				r.Kernel,
				r.Repr,
				strconv.Itoa(r.Threads),
				ms(r.NsOp),
				lines,
				word,
				ratio,
			})
		}
		writeAligned(&b, table)
	}
	b.WriteString("\nlines is the deterministic cache-line-touch model of the membership\n" +
		"state (distinct 64-byte lines per worker per round, summed; bitmap\n" +
		"rows carry their own number and the word baseline of the same cell),\n" +
		"not wall time: on a shared host only the model can attribute a delta\n" +
		"to memory layout.\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// LocalityJSONRows converts the sweep to the machine-readable rows. The
// method field names the membership-write primitive the representation
// uses: round-stamped CAS-LT words or fetch-OR bits.
func LocalityJSONRows(rows []LocalityRow) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		method := "caslt"
		if r.Repr == "bitmap" {
			method = "fetch-or"
		}
		out = append(out, Row{
			Bench:           "locality",
			Kernel:          r.Kernel,
			Method:          method,
			Exec:            r.Exec,
			Threads:         r.Threads,
			NsOp:            r.NsOp,
			Graph:           r.Graph,
			Depth:           r.Depth,
			Repr:            r.Repr,
			Relabel:         r.Relabel.String(),
			LineTouches:     r.Lines,
			LineTouchesWord: r.LinesWord,
			PermHash:        r.PermHash,
		})
	}
	return out
}
