package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/bench/sweep"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
	"crcwpram/internal/sched"
)

// The stealing sweep is the scheduling-policy experiment behind -policy:
// the two frontier-carrying CAS-LT BFS formulations (explicit frontier and
// direction-optimizing hybrid) on a hub-skewed RMAT graph versus a
// degree-uniform random graph, across every partitioning policy and a
// worker-count sweep. Each cell reports the median wall time, the live
// steal counters from the metrics layer (chunks claimed locally, successful
// steals, failed steal attempts — nonzero only under the stealing policy),
// and the deterministic scheduling model (stealmodel.go): on a host with
// fewer cores than workers the wall clock cannot see the straggler a
// coarse-chunked policy leaves behind a hub, while the modelled critical
// path exposes it exactly — stealing's fine chunks and cheap local claims
// beat the shared cursor precisely where degrees are skewed, and cost
// nothing where they are not.

// stealKernels are the swept BFS formulations. Both carry an explicit
// frontier, the loop shape whose per-index cost varies with vertex degree
// — the workload stealing exists for.
var stealKernels = []string{"bfs-frontier", "bfs-hybrid"}

// StealingRow is one measured cell of the sweep.
type StealingRow struct {
	Graph   string
	Kernel  string
	Policy  sched.Policy
	Exec    string
	Threads int
	NsOp    float64
	Model   WorkModel
	// Aggregated over the cell's cfg.Reps measured runs (and their untimed
	// Prepare sweeps, which also run policy-partitioned machine loops).
	ChunksLocal uint64
	Steals      uint64
	StealFails  uint64
}

// Stealing runs the sweep: for each workload × worker count × policy ×
// kernel, the median wall time over cfg.Reps runs (validated once per
// cell), the cell's aggregated steal counters, and the scheduling model.
// The workload sizes come from cfg.StealScale; the worker counts from
// cfg.StealThreads. Kernels are pinned to the cell's policy (stealing
// relaxation exactly when the machine policy is stealing), overriding
// their degree-skew default — the sweep isolates the policy axis.
func Stealing(cfg Config, exec machine.Exec) ([]StealingRow, error) {
	cfg = cfg.withDefaults()
	type workload struct {
		name string
		g    *graph.Graph
	}
	// RMAT at density 4: hubs of degree in the thousands against a mean of
	// 8 — the chunk a coarse policy strands a hub in dominates its level.
	// The uniform graph of the same size is the negative control: every
	// chunk costs the same, so no policy should beat block there.
	workloads := []workload{
		{fmt.Sprintf("rmat%d", cfg.StealScale),
			graph.RMAT(cfg.StealScale, 4<<cfg.StealScale, 0.57, 0.19, 0.19, cfg.Seed)},
		{fmt.Sprintf("uniform%d", cfg.StealScale),
			graph.ConnectedRandom(1<<cfg.StealScale, 4<<cfg.StealScale, cfg.Seed)},
	}
	run := cfg.newRunner()
	defer run.Close()
	var rows []StealingRow
	for _, wl := range workloads {
		seq := bfs.Sequential(wl.g, 0)
		w := &kernel.Workload{Graph: wl.g}
		for _, p := range cfg.StealThreads {
			model := newBFSModel(wl.g, 0, p, seq)
			for _, pol := range sched.Policies {
				m := run.Machine(sweep.MachineKey{Threads: p, Policy: pol, Metrics: true})
				// Kernels are pinned to the cell's policy: stealing
				// relaxation exactly when the machine policy is stealing.
				steal := kernel.StealOff
				if pol == sched.Stealing {
					steal = kernel.StealOn
				}
				for _, kname := range stealKernels {
					d, ok := kernel.Lookup(kname)
					if !ok {
						return nil, fmt.Errorf("stealing: unregistered kernel %s", kname)
					}
					inst := run.Instance(d, m, w)
					m.Metrics().Reset()
					cell, err := run.Timed(inst, kernel.Settings{
						Exec: exec, Method: cw.CASLT, Steal: steal,
					})
					if err != nil {
						return nil, fmt.Errorf("stealing %s %s %s p=%d: %w",
							wl.name, kname, pol, p, err)
					}
					snap := m.Snapshot()
					rows = append(rows, StealingRow{
						Graph:       wl.name,
						Kernel:      kname,
						Policy:      pol,
						Exec:        exec.String(),
						Threads:     p,
						NsOp:        float64(cell.Median.Nanoseconds()),
						Model:       model.ForSched(kname, pol, m.Chunk()),
						ChunksLocal: snap.ChunksLocal,
						Steals:      snap.Steals,
						StealFails:  snap.StealFails,
					})
					cfg.logf("stealing %s kernel=%s policy=%s p=%d median=%v crit=%d steals=%d\n",
						wl.name, kname, pol, p, cell.Median, rows[len(rows)-1].Model.Crit, snap.Steals)
				}
			}
		}
	}
	return rows, nil
}

// FormatStealing renders the sweep as one table per workload: a (kernel,
// policy, P) line with the wall median, the modelled critical path /
// ideal / imbalance, and the steal counters.
func FormatStealing(w io.Writer, rows []StealingRow) error {
	var b strings.Builder
	ms := func(ns float64) string {
		return strconv.FormatFloat(ns/1e6, 'f', 3, 64)
	}
	var graphs []string
	for _, r := range rows {
		if len(graphs) == 0 || graphs[len(graphs)-1] != r.Graph {
			graphs = append(graphs, r.Graph)
		}
	}
	for gi, name := range graphs {
		if gi > 0 {
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "== stealing: %s ==\n", name)
		table := [][]string{{"kernel", "policy", "p", "wall(ms)", "crit", "ideal", "imbal", "local", "steals", "fails"}}
		for _, r := range rows {
			if r.Graph != name {
				continue
			}
			table = append(table, []string{
				r.Kernel,
				r.Policy.String(),
				strconv.Itoa(r.Threads),
				ms(r.NsOp),
				strconv.FormatUint(r.Model.Crit, 10),
				strconv.FormatUint(r.Model.Ideal, 10),
				strconv.FormatFloat(r.Model.Imbalance(), 'f', 2, 64),
				strconv.FormatUint(r.ChunksLocal, 10),
				strconv.FormatUint(r.Steals, 10),
				strconv.FormatUint(r.StealFails, 10),
			})
		}
		writeAligned(&b, table)
	}
	b.WriteString("\ncrit/ideal/imbal are the deterministic scheduling model (one core per\n" +
		"worker; chunk claims charged per policy), not wall time: on an\n" +
		"oversubscribed host only the model can attribute a delta to the\n" +
		"policy. local/steals/fails are live deque counters and are zero by\n" +
		"construction for every policy but stealing.\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// StealingJSONRows converts the sweep to the machine-readable rows.
func StealingJSONRows(rows []StealingRow) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:       "stealing",
			Kernel:      r.Kernel,
			Method:      "caslt",
			Exec:        r.Exec,
			Threads:     r.Threads,
			NsOp:        r.NsOp,
			Graph:       r.Graph,
			Policy:      r.Policy.String(),
			Depth:       r.Model.Depth,
			WorkTotal:   r.Model.Total,
			WorkCrit:    r.Model.Crit,
			WorkIdeal:   r.Model.Ideal,
			Imbalance:   r.Model.Imbalance(),
			ChunksLocal: r.ChunksLocal,
			Steals:      r.Steals,
			StealFails:  r.StealFails,
		})
	}
	return out
}
