package bench

import (
	"time"

	"crcwpram/internal/bench/sweep"
)

// This file is the bench layer's single timing vocabulary. The protocol
// itself (prepare untimed, run timed, median of repetitions) lives in
// sweep.Time so the declarative engine and the hand-shaped sweeps below
// measure identically.

// measure runs prepare (untimed) + run (timed) reps times and returns the
// sample as a Point.
func measure(reps int, prepare func(), run func()) Point {
	s := sweep.Time(reps, prepare, run)
	return Point{Median: s.Median(), Sample: s}
}

// medianNs times body (with an untimed per-repetition reset) reps times and
// returns the median in nanoseconds — the scalar sweeps (round overhead)
// that report ns directly rather than Points use it.
func medianNs(reps int, reset func(), body func()) float64 {
	return float64(sweep.Time(reps, reset, body).Median()) / float64(time.Nanosecond)
}

// warmup runs body once, discarding the measurement — the first run pays
// one-time costs (page faults, lazily allocated kernel state) that the
// paper's protocol excludes from samples.
func warmup(body func()) { body() }
