package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"crcwpram/internal/alg/listrank"
	"crcwpram/internal/bench/sweep"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/kernel"
)

// The list-ranking sweep is the EREW comparison point the paper's
// conclusion proposes: Wyllie's pointer jumping uses no concurrent writes
// at all, so its cost is pure round structure — D(log N) rounds of W(N)
// work — making it the cleanest probe of the execution backends' per-round
// overhead on a kernel that actually moves data (unlike the empty-round
// sweep). Each cell times RankExec on a random single list under one
// backend; every result is validated against the sequential baseline.

// ListRankRow is one measured (size, exec) cell of the sweep.
type ListRankRow struct {
	N       int
	Exec    string
	Threads int
	NsOp    float64
}

// ListRank times Wyllie's list ranking for every list size in
// cfg.ListRankSizes under each given execution mode (default: the timed
// modes), cfg.Reps times per cell, reporting medians.
func ListRank(cfg Config, execs []machine.Exec) ([]ListRankRow, error) {
	cfg = cfg.withDefaults()
	if len(execs) == 0 {
		execs = machine.Execs
	}
	d, ok := kernel.Lookup("listrank")
	if !ok {
		return nil, fmt.Errorf("listrank: kernel not registered")
	}
	run := cfg.newRunner()
	defer run.Close()
	m := run.Machine(sweep.MachineKey{Threads: cfg.Threads, Policy: cfg.Policy})
	var rows []ListRankRow
	for _, n := range cfg.ListRankSizes {
		w := &kernel.Workload{Next: listrank.RandomList(n, cfg.Seed+int64(n))}
		for _, e := range execs {
			inst := run.Instance(d, m, w)
			cell, err := run.Timed(inst, kernel.Settings{Exec: e})
			if err != nil {
				return nil, fmt.Errorf("listrank n=%d exec=%s: %w", n, e, err)
			}
			rows = append(rows, ListRankRow{
				N:       n,
				Exec:    e.String(),
				Threads: cfg.Threads,
				NsOp:    float64(cell.Median.Nanoseconds()),
			})
			cfg.logf("listrank n=%d exec=%s median=%v\n", n, e, cell.Median)
		}
	}
	return rows, nil
}

// FormatListRank renders the sweep as one row per list size with both
// timed modes side by side and the pool/team ratio.
func FormatListRank(w io.Writer, threads int, rows []ListRankRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== listrank: Wyllie pointer jumping, ns per run (p=%d) ==\n", threads)
	byN := map[int]map[string]float64{}
	var ns []int
	for _, r := range rows {
		if byN[r.N] == nil {
			byN[r.N] = map[string]float64{}
			ns = append(ns, r.N)
		}
		byN[r.N][r.Exec] = r.NsOp
	}
	ms := func(v float64) string { return strconv.FormatFloat(v/1e6, 'f', 3, 64) }
	table := [][]string{{"n", "pool(ms)", "team(ms)", "pool/team"}}
	for _, n := range ns {
		pool, team := byN[n]["pool"], byN[n]["team"]
		ratio := "-"
		if team > 0 && pool > 0 {
			ratio = strconv.FormatFloat(pool/team, 'f', 2, 64) + "x"
		}
		table = append(table, []string{
			strconv.Itoa(n), ms(pool), ms(team), ratio,
		})
	}
	writeAligned(&b, table)
	b.WriteString("\nlist ranking is EREW — zero concurrent writes — so the pool/team gap\n" +
		"here is the per-round synchronization cost on a real data-moving kernel.\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ListRankJSONRows converts the sweep to the machine-readable rows.
func ListRankJSONRows(rows []ListRankRow) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{
			Bench:   "listrank",
			Kernel:  "listrank",
			Exec:    r.Exec,
			Threads: r.Threads,
			XLabel:  "n",
			X:       r.N,
			NsOp:    r.NsOp,
		})
	}
	return out
}
