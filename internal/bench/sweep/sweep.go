// Package sweep is the generic engine behind the bench sweeps: it expands
// axis products into runs, binds registered kernels to cached machines, and
// applies the paper's timing protocol (prepare untimed, run timed, median
// of repetitions, validation outside the timed region) uniformly, so each
// sweep in internal/bench is a thin configuration — a workload list, an
// axis product, and a row emitter — instead of a hand-wired harness.
package sweep

import (
	"fmt"
	"time"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	evtrace "crcwpram/internal/core/trace"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
	"crcwpram/internal/sched"
	"crcwpram/internal/stats"
)

// Time applies the measurement protocol shared by every timed sweep: reps
// iterations of prepare (untimed) followed by run (timed), returning the
// full sample. Callers take the median; the sample keeps the spread.
func Time(reps int, prepare, run func()) stats.Sample {
	var s stats.Sample
	for r := 0; r < reps; r++ {
		prepare()
		start := time.Now()
		run()
		s.Add(time.Since(start))
	}
	return s
}

// MachineKey identifies one machine configuration the engine caches:
// everything that is fixed at machine construction rather than per run.
type MachineKey struct {
	Threads int
	Policy  sched.Policy
	Metrics bool
}

// Cell is one measured sweep cell: the timing sample and the final
// repetition's (validated) outcome.
type Cell struct {
	Median time.Duration
	Sample stats.Sample
	Out    kernel.Outcome
}

type instKey struct {
	kernel string
	m      *machine.Machine
	w      *kernel.Workload
}

// Runner executes sweep cells against cached machines and kernel
// instances. Machines are keyed by MachineKey and closed by Close;
// instances are keyed by (kernel, machine, workload identity) so revisiting
// a cell's neighborhood along another axis reuses the bound kernel exactly
// as the hand-written sweeps did.
type Runner struct {
	Reps int
	// Events, when non-nil, attaches an event-trace flight recorder
	// (internal/core/trace) to every machine the runner builds — one
	// recorder per cached machine, registered with the sink so the
	// caller can serve live counters mid-sweep and drain a merged
	// Timeline afterwards. Nil (the default) is tracing off: machines
	// are built exactly as before. Set it before the first Machine call;
	// machines created earlier stay untraced.
	Events    *evtrace.Sink
	machines  map[MachineKey]*machine.Machine
	instances map[instKey]kernel.Instance
}

// NewRunner returns a Runner timing each cell over reps repetitions.
func NewRunner(reps int) *Runner {
	return &Runner{
		Reps:      reps,
		machines:  map[MachineKey]*machine.Machine{},
		instances: map[instKey]kernel.Instance{},
	}
}

// Machine returns the cached machine for key, creating it on first use.
func (r *Runner) Machine(key MachineKey) *machine.Machine {
	if m, ok := r.machines[key]; ok {
		return m
	}
	opts := []machine.Option{machine.WithPolicy(key.Policy)}
	if key.Metrics {
		opts = append(opts, machine.WithMetrics())
	}
	if r.Events != nil {
		opts = append(opts, machine.WithEventTrace(r.Events.Recorder(key.Threads)))
	}
	m := machine.New(key.Threads, opts...)
	r.machines[key] = m
	return m
}

// Instance returns the kernel d bound to machine m and workload w, creating
// it on first use. Workload identity is the pointer: a sweep builds each
// workload once and revisits it across axis values.
func (r *Runner) Instance(d *kernel.Descriptor, m *machine.Machine, w *kernel.Workload) kernel.Instance {
	key := instKey{d.Name, m, w}
	if in, ok := r.instances[key]; ok {
		return in
	}
	in := d.New(m, *w)
	r.instances[key] = in
	return in
}

// Timed measures one axis assignment on a bound instance and validates the
// final repetition's result after timing ends.
func (r *Runner) Timed(inst kernel.Instance, s kernel.Settings) (Cell, error) {
	var out kernel.Outcome
	sample := Time(r.Reps, func() { inst.Prepare(s) }, func() { out = inst.Run(s) })
	if err := inst.Validate(); err != nil {
		return Cell{}, err
	}
	return Cell{Median: sample.Median(), Sample: sample, Out: out}, nil
}

// Counted runs one untimed assignment (the counting sweeps' mode: trace
// replay or metrics collection), validates it, and returns the outcome with
// the structural trace when the backend recorded one.
func (r *Runner) Counted(inst kernel.Instance, s kernel.Settings) (kernel.Outcome, *exec.TraceStats, error) {
	inst.Prepare(s)
	out := inst.Run(s)
	if err := inst.Validate(); err != nil {
		return kernel.Outcome{}, nil, err
	}
	return out, inst.Trace(), nil
}

// Close releases every machine the runner created.
func (r *Runner) Close() {
	for _, m := range r.machines {
		m.Close()
	}
	r.machines = map[MachineKey]*machine.Machine{}
	r.instances = map[instKey]kernel.Instance{}
}

// Product expands the cross product of the given axes in declaration order,
// invoking f once per full assignment. The selector passed to f is reused
// across calls; copy it to retain. An axis with no values collapses the
// product to nothing, mirroring an empty sweep.
func Product(axes []kernel.Axis, f func(kernel.Selector) error) error {
	sel := kernel.Selector{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(axes) {
			return f(sel)
		}
		for _, v := range axes[i].Values {
			sel[axes[i].Name] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(sel, axes[i].Name)
		return nil
	}
	return rec(0)
}

// ParseSettings resolves the kernel-level axes of a selector into Settings
// (machine-level axes — threads, policy — are the caller's MachineKey).
// Absent axes keep zero defaults; the selector is assumed pre-validated by
// kernel.ParseSelector.
func ParseSettings(sel kernel.Selector) (kernel.Settings, error) {
	var s kernel.Settings
	if v, ok := sel[kernel.AxisExec]; ok {
		e, ok := machine.ParseExec(v)
		if !ok {
			return s, fmt.Errorf("sweep: bad exec %q", v)
		}
		s.Exec = e
	}
	if v, ok := sel[kernel.AxisMethod]; ok {
		m, ok := cw.ParseMethod(v)
		if !ok {
			return s, fmt.Errorf("sweep: bad method %q", v)
		}
		s.Method = m
	}
	if v, ok := sel[kernel.AxisBalance]; ok {
		b, ok := graph.ParseBalance(v)
		if !ok {
			return s, fmt.Errorf("sweep: bad balance %q", v)
		}
		s.Balance = b
	}
	if v, ok := sel[kernel.AxisRepr]; ok {
		if v != "word" && v != "bitmap" {
			return s, fmt.Errorf("sweep: bad repr %q", v)
		}
		s.Bitmap = v == "bitmap"
	}
	return s, nil
}
