package sweep

import (
	"fmt"
	"reflect"
	"testing"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
	"crcwpram/internal/sched"
)

// countingInstance records the engine's calls so the tests can pin the
// timing protocol (prepare untimed before every run, validate once after).
type countingInstance struct {
	prepares, runs, validates int
	failValidate              bool
}

func (c *countingInstance) Prepare(kernel.Settings) { c.prepares++ }
func (c *countingInstance) Run(kernel.Settings) kernel.Outcome {
	c.runs++
	return kernel.Outcome{Vector: []uint32{uint32(c.runs)}}
}
func (c *countingInstance) Validate() error {
	c.validates++
	if c.failValidate {
		return fmt.Errorf("bad run")
	}
	return nil
}
func (c *countingInstance) Trace() *exec.TraceStats { return nil }

func testDescriptor(name string) *kernel.Descriptor {
	return &kernel.Descriptor{
		Name: name, Pkg: "sweep",
		New: func(*machine.Machine, kernel.Workload) kernel.Instance {
			return &countingInstance{}
		},
	}
}

func TestTimeSampleSize(t *testing.T) {
	prepares, runs := 0, 0
	s := Time(5, func() { prepares++ }, func() {
		if runs == prepares {
			t.Fatal("run executed before its prepare")
		}
		runs++
	})
	if prepares != 5 || runs != 5 || s.N() != 5 {
		t.Fatalf("prepares=%d runs=%d n=%d, want 5 each", prepares, runs, s.N())
	}
}

func TestRunnerMachineCaching(t *testing.T) {
	r := NewRunner(1)
	defer r.Close()
	a := r.Machine(MachineKey{Threads: 2, Policy: sched.Block})
	b := r.Machine(MachineKey{Threads: 2, Policy: sched.Block})
	c := r.Machine(MachineKey{Threads: 2, Policy: sched.Block, Metrics: true})
	if a != b {
		t.Error("same key returned distinct machines")
	}
	if a == c {
		t.Error("metrics key shared the plain machine")
	}
	if a.P() != 2 {
		t.Errorf("machine has %d workers, want 2", a.P())
	}
}

func TestRunnerInstanceCaching(t *testing.T) {
	r := NewRunner(1)
	defer r.Close()
	m := r.Machine(MachineKey{Threads: 1, Policy: sched.Block})
	d := testDescriptor("toy")
	w1, w2 := &kernel.Workload{}, &kernel.Workload{}
	if r.Instance(d, m, w1) != r.Instance(d, m, w1) {
		t.Error("same (kernel, machine, workload) returned distinct instances")
	}
	if r.Instance(d, m, w1) == r.Instance(d, m, w2) {
		t.Error("distinct workloads shared an instance")
	}
	if r.Instance(d, m, w1) == r.Instance(testDescriptor("toy2"), m, w1) {
		t.Error("distinct kernels shared an instance")
	}
}

func TestRunnerTimedProtocol(t *testing.T) {
	r := NewRunner(3)
	defer r.Close()
	inst := &countingInstance{}
	cell, err := r.Timed(inst, kernel.Settings{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.prepares != 3 || inst.runs != 3 || inst.validates != 1 {
		t.Errorf("prepares=%d runs=%d validates=%d, want 3/3/1",
			inst.prepares, inst.runs, inst.validates)
	}
	if cell.Sample.N() != 3 {
		t.Errorf("sample n=%d, want 3", cell.Sample.N())
	}
	// The cell keeps the final repetition's outcome.
	if !reflect.DeepEqual(cell.Out.Vector, []uint32{3}) {
		t.Errorf("cell outcome = %v, want the last run's", cell.Out.Vector)
	}

	if _, err := r.Timed(&countingInstance{failValidate: true}, kernel.Settings{}); err == nil {
		t.Error("Timed swallowed a validation failure")
	}
}

func TestRunnerCounted(t *testing.T) {
	r := NewRunner(7)
	defer r.Close()
	inst := &countingInstance{}
	out, tr, err := r.Counted(inst, kernel.Settings{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.prepares != 1 || inst.runs != 1 {
		t.Errorf("counted mode ran %d/%d times, want once regardless of reps", inst.prepares, inst.runs)
	}
	if tr != nil || !reflect.DeepEqual(out.Vector, []uint32{1}) {
		t.Errorf("counted = %v trace %v", out.Vector, tr)
	}
	if _, _, err := r.Counted(&countingInstance{failValidate: true}, kernel.Settings{}); err == nil {
		t.Error("Counted swallowed a validation failure")
	}
}

func TestProductExpansion(t *testing.T) {
	axes := []kernel.Axis{
		{Name: "a", Values: []string{"1", "2"}},
		{Name: "b", Values: []string{"x", "y", "z"}},
	}
	var got []string
	if err := Product(axes, func(sel kernel.Selector) error {
		got = append(got, sel["a"]+sel["b"])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"1x", "1y", "1z", "2x", "2y", "2z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("product = %v, want %v", got, want)
	}

	// An empty axis collapses the product; an error aborts it mid-way.
	calls := 0
	if err := Product(append(axes, kernel.Axis{Name: "c"}), func(kernel.Selector) error {
		calls++
		return nil
	}); err != nil || calls != 0 {
		t.Errorf("empty axis: calls=%d err=%v, want no expansion", calls, err)
	}
	calls = 0
	wantErr := fmt.Errorf("stop")
	if err := Product(axes, func(kernel.Selector) error {
		calls++
		if calls == 2 {
			return wantErr
		}
		return nil
	}); err != wantErr || calls != 2 {
		t.Errorf("error propagation: calls=%d err=%v", calls, err)
	}
}

func TestParseSettings(t *testing.T) {
	s, err := ParseSettings(kernel.Selector{
		kernel.AxisExec:    "team",
		kernel.AxisMethod:  "gatekeeper",
		kernel.AxisBalance: "edge",
		kernel.AxisRepr:    "bitmap",
		kernel.AxisThreads: "8", // machine-level: ignored here
	})
	if err != nil {
		t.Fatal(err)
	}
	want := kernel.Settings{Exec: machine.ExecTeam, Method: cw.Gatekeeper, Balance: graph.BalanceEdge, Bitmap: true}
	if s != want {
		t.Errorf("settings = %+v, want %+v", s, want)
	}

	if s, err = ParseSettings(kernel.Selector{}); err != nil || s != (kernel.Settings{}) {
		t.Errorf("empty selector = %+v, %v; want zero settings", s, err)
	}
	for _, bad := range []kernel.Selector{
		{kernel.AxisExec: "block"},
		{kernel.AxisMethod: "fetch-or"},
		{kernel.AxisBalance: "spin"},
		{kernel.AxisRepr: "tape"},
	} {
		if _, err := ParseSettings(bad); err == nil {
			t.Errorf("ParseSettings(%v) accepted an illegal value", bad)
		}
	}
}
