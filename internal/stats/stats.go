// Package stats provides the measurement helpers the benchmark harness
// uses to report results the way the paper does: per-configuration medians
// over repetitions, speedup ratios against a baseline method, and geometric
// means of speedups across a sweep (the paper reports "geometric mean
// speedup ... across all problem sizes").
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is a collection of repeated measurements of one configuration.
type Sample struct {
	runs []time.Duration
}

// NewSample returns a sample over the given runs; the slice is copied.
func NewSample(runs []time.Duration) Sample {
	cp := make([]time.Duration, len(runs))
	copy(cp, runs)
	return Sample{runs: cp}
}

// Add appends one measurement.
func (s *Sample) Add(d time.Duration) { s.runs = append(s.runs, d) }

// N returns the number of measurements.
func (s Sample) N() int { return len(s.runs) }

// Min returns the fastest run, or 0 for an empty sample.
func (s Sample) Min() time.Duration {
	if len(s.runs) == 0 {
		return 0
	}
	m := s.runs[0]
	for _, d := range s.runs[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Max returns the slowest run, or 0 for an empty sample.
func (s Sample) Max() time.Duration {
	var m time.Duration
	for _, d := range s.runs {
		if d > m {
			m = d
		}
	}
	return m
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s Sample) Mean() time.Duration {
	if len(s.runs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.runs {
		sum += d
	}
	return sum / time.Duration(len(s.runs))
}

// Median returns the median run (lower middle for even counts), or 0 for an
// empty sample. The harness reports medians: they are robust to the
// scheduling noise a shared machine injects.
func (s Sample) Median() time.Duration {
	if len(s.runs) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.runs))
	copy(sorted, s.runs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}

// Stddev returns the population standard deviation in nanoseconds.
func (s Sample) Stddev() float64 {
	if len(s.runs) < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var ss float64
	for _, d := range s.runs {
		diff := float64(d) - mean
		ss += diff * diff
	}
	return math.Sqrt(ss / float64(len(s.runs)))
}

// Speedup returns base/other as a ratio: >1 means other is faster than
// base. Returns NaN if other is zero.
func Speedup(base, other time.Duration) float64 {
	if other == 0 {
		return math.NaN()
	}
	return float64(base) / float64(other)
}

// GeoMean returns the geometric mean of the ratios, ignoring non-positive
// and NaN entries; it returns NaN when no valid entry remains.
func GeoMean(ratios []float64) float64 {
	var logSum float64
	n := 0
	for _, r := range ratios {
		if r > 0 && !math.IsNaN(r) && !math.IsInf(r, 0) {
			logSum += math.Log(r)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(logSum / float64(n))
}

// FormatDuration renders a duration with 3 significant-ish digits in the
// unit benchmark tables typically use.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// FormatRatio renders a speedup ratio as the paper writes them ("2.12x");
// NaN renders as "-".
func FormatRatio(r float64) string {
	if math.IsNaN(r) {
		return "-"
	}
	return fmt.Sprintf("%.2fx", r)
}
