package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample statistics not all zero")
	}
}

func TestSampleStatistics(t *testing.T) {
	s := NewSample([]time.Duration{30, 10, 20, 50, 40})
	if s.N() != 5 {
		t.Fatalf("N = %d, want 5", s.N())
	}
	if s.Min() != 10 || s.Max() != 50 {
		t.Fatalf("min/max = %d/%d, want 10/50", s.Min(), s.Max())
	}
	if s.Mean() != 30 {
		t.Fatalf("mean = %d, want 30", s.Mean())
	}
	if s.Median() != 30 {
		t.Fatalf("median = %d, want 30", s.Median())
	}
}

func TestMedianEvenCountTakesLowerMiddle(t *testing.T) {
	s := NewSample([]time.Duration{40, 10, 20, 30})
	if s.Median() != 20 {
		t.Fatalf("median = %d, want 20 (lower middle)", s.Median())
	}
}

func TestAddAndCopySemantics(t *testing.T) {
	src := []time.Duration{5}
	s := NewSample(src)
	src[0] = 99 // mutating the source must not affect the sample
	if s.Min() != 5 {
		t.Fatal("NewSample did not copy its input")
	}
	s.Add(1)
	if s.N() != 2 || s.Min() != 1 {
		t.Fatalf("after Add: N=%d Min=%d", s.N(), s.Min())
	}
}

func TestStddev(t *testing.T) {
	s := NewSample([]time.Duration{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Stddev(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("stddev = %v, want 2.0", got)
	}
	one := NewSample([]time.Duration{3})
	if one.Stddev() != 0 {
		t.Fatal("single-element stddev != 0")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 50); got != 2.0 {
		t.Fatalf("Speedup(100,50) = %v, want 2", got)
	}
	if got := Speedup(50, 100); got != 0.5 {
		t.Fatalf("Speedup(50,100) = %v, want 0.5", got)
	}
	if !math.IsNaN(Speedup(10, 0)) {
		t.Fatal("Speedup by zero not NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("GeoMean(1,1,1) = %v, want 1", got)
	}
	// Invalid entries are skipped, not poisoning the mean.
	if got := GeoMean([]float64{2, math.NaN(), 8, -1, 0}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean with junk = %v, want 4", got)
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{-1})) {
		t.Fatal("GeoMean of no valid entries not NaN")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		1500 * time.Millisecond: "1.500s",
		2500 * time.Microsecond: "2.500ms",
		1500 * time.Nanosecond:  "1.500µs",
		999 * time.Nanosecond:   "999ns",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestFormatRatio(t *testing.T) {
	if got := FormatRatio(2.118); got != "2.12x" {
		t.Fatalf("FormatRatio = %q, want 2.12x", got)
	}
	if got := FormatRatio(math.NaN()); got != "-" {
		t.Fatalf("FormatRatio(NaN) = %q, want -", got)
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max for any non-empty
// sample.
func TestQuickOrderingInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		runs := make([]time.Duration, len(raw))
		for i, r := range raw {
			runs[i] = time.Duration(r)
		}
		s := NewSample(runs)
		return s.Min() <= s.Median() && s.Median() <= s.Max() &&
			s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: GeoMean of speedups is scale-invariant — multiplying base and
// other by the same factor leaves the result unchanged.
func TestQuickGeoMeanScaleInvariance(t *testing.T) {
	f := func(aRaw, bRaw []uint16, kRaw uint8) bool {
		n := len(aRaw)
		if len(bRaw) < n {
			n = len(bRaw)
		}
		if n == 0 {
			return true
		}
		k := time.Duration(kRaw)%9 + 2
		var r1, r2 []float64
		for i := 0; i < n; i++ {
			base := time.Duration(aRaw[i]) + 1
			other := time.Duration(bRaw[i]) + 1
			r1 = append(r1, Speedup(base, other))
			r2 = append(r2, Speedup(base*k, other*k))
		}
		g1, g2 := GeoMean(r1), GeoMean(r2)
		return math.Abs(g1-g2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
