// Package evtrace is the round-level timeline observability layer: a
// low-overhead per-worker flight recorder of timestamped span events that
// the machine's execution backends feed while running at full speed, so
// the paper's per-round cost model — each bulk-synchronous round's wall
// time is set by its slowest worker and the contention it absorbed — can
// be inspected round by round instead of as whole-run aggregates.
//
// (The package lives at internal/core/trace but is named evtrace so it
// cannot clash with the exec trace backend, which replays kernels
// serially; the two observe different things — structure there, time
// here.)
//
// # Design
//
// A Recorder owns one cache-line padded ring buffer (Buf) per worker.
// Emitting an event is a plain store into the owner's own ring plus one
// uncontended atomic add on the owner's own padded line — no shared cache
// line is written on the hot path. Rings are fixed-capacity and wrap,
// overwriting the oldest events: the recorder is a flight recorder, and
// under overflow it keeps the tail of the run (Drain reports how many
// events were dropped). The machine's step barriers order ring writes
// before the coordinator's Drain, exactly like the metrics shards.
//
// When tracing is off (the default; see machine.WithEventTrace) every
// handle in the chain is nil and every method is nil-receiver safe:
// Recorder.Worker(w) on a nil Recorder returns a nil *Buf, whose Begin /
// Point reduce to a single predictable branch. Tracing rides the
// metrics-enable branch in the machine (event tracing implies metrics),
// so the tracing-off hot path keeps the metrics discipline's single
// `rec != nil` branch; BenchmarkEventTraceOffOverhead pins it.
//
// Span round ids follow the emitting layer: KindRound / KindRegion /
// KindBarrier spans carry the machine's step sequence (pool) or the
// region-local loop index (team), KindClaim points carry the cw round id
// of the claim, and KindFault spans carry zero (fault schedules are not
// round-aligned). The Timeline groups per-round summaries over KindRound
// spans only, so the two id spaces never mix.
//
// The live counters (wins, losses, rounds, event totals) are the one
// concession to concurrent readers: they are uncontended atomics on the
// owner's padded line, so the HTTP endpoint (live.go) can poll them while
// a run is in flight without touching the rings.
package evtrace

import (
	"context"
	rtrace "runtime/trace"
	"sync/atomic"
	"time"

	"crcwpram/internal/core/cw"
)

// Kind classifies one recorded event.
type Kind uint8

const (
	// KindRound is a worker's share of one work-shared parallel loop: the
	// span brackets the loop body execution (not the closing barrier).
	KindRound Kind = iota + 1
	// KindRegion is a worker's copy of one whole team region body
	// (machine.Team); the per-loop KindRound spans nest inside it.
	KindRegion
	// KindBarrier is a worker's wait at a closing barrier — pool end
	// phase or in-region team barrier.
	KindBarrier
	// KindSteal is an instant event summarizing one stealing loop's chunk
	// dispatch for the worker (Arg packs local/steals/fails; see
	// PackSteal).
	KindSteal
	// KindFault is a chaos fault injection: the span brackets the
	// injected perturbation (Arg is the fault site code; see
	// FaultSiteName).
	KindFault
	// KindClaim is a sampled winner-selection attempt (every Nth claim
	// the worker executes; Arg packs cell<<1 | won).
	KindClaim
)

// String names the kind as the Chrome-trace category spells it.
func (k Kind) String() string {
	switch k {
	case KindRound:
		return "round"
	case KindRegion:
		return "region"
	case KindBarrier:
		return "barrier"
	case KindSteal:
		return "steal"
	case KindFault:
		return "fault"
	case KindClaim:
		return "claim"
	default:
		return "unknown"
	}
}

// Event is one recorded timeline entry. Start and Dur are nanoseconds
// relative to the recorder's epoch; instant events (KindSteal, KindClaim)
// have Dur zero. Arg is kind-specific packed payload.
type Event struct {
	// Start is the event's start time in nanoseconds since the recorder's
	// epoch.
	Start int64
	// Dur is the event's duration in nanoseconds (zero for instants).
	Dur int64
	// Arg is the kind-specific payload: claim deltas for KindRound
	// (PackClaims), chunk counts for KindSteal (PackSteal), the fault
	// site code for KindFault, cell<<1|won for KindClaim.
	Arg uint64
	// Round is the emitting layer's round id (see the package comment for
	// the id spaces).
	Round uint32
	// Worker is the emitting worker's id.
	Worker int32
	// Kind classifies the event.
	Kind Kind
}

// Buf is one worker's ring buffer plus its live claim counters. Ring
// writes are owner-only plain stores ordered by the machine's barriers;
// the counters are uncontended atomics so the live endpoint can read
// them mid-run. Padded so adjacent workers' buffers never share a cache
// line.
type Buf struct {
	rec     *Recorder
	events  []Event
	n       atomic.Uint64 // total events emitted (ring holds the last cap)
	samples uint64        // claims seen, for every-Nth sampling
	wins    atomic.Uint64
	losses  atomic.Uint64
	w       int32
	_       [128 - 68]byte
}

// Active is an open span returned by Buf.Begin; close it with End. The
// zero Active (from a nil Buf) is a no-op.
type Active struct {
	buf    *Buf
	reg    *rtrace.Region
	start  int64
	w0, l0 uint64
	round  uint32
	kind   Kind
}

// DefaultCap is the default per-worker ring capacity in events.
const DefaultCap = 8192

// DefaultSampleEvery is the default claim sampling interval: every Nth
// executed claim per worker emits a KindClaim instant.
const DefaultSampleEvery = 64

// Option configures a Recorder.
type Option func(*Recorder)

// WithRuntimeTrace makes every span also open a runtime/trace region
// (named by its Kind), so `go tool trace` shows PRAM rounds and barrier
// waits aligned with the goroutine scheduler's view. Regions are begun
// and ended on the emitting worker's goroutine, as runtime/trace
// requires. Collection still needs runtime/trace.Start on the process.
func WithRuntimeTrace() Option { return func(r *Recorder) { r.rt = true } }

// WithSampleEvery sets the claim sampling interval to every nth executed
// claim per worker (default DefaultSampleEvery); n < 1 is treated as 1.
func WithSampleEvery(n int) Option {
	return func(r *Recorder) {
		if n < 1 {
			n = 1
		}
		r.every = uint64(n)
	}
}

// Recorder is the flight recorder for one machine's workers: one ring
// per worker plus the shared epoch. Create with New, attach with
// machine.WithEventTrace, drain with Drain at a synchronization point.
// All methods are nil-receiver safe.
type Recorder struct {
	bufs  []Buf
	epoch time.Time
	every uint64
	rt    bool
	// liveRounds counts KindRound span completions on worker 0 (one per
	// work-shared loop) and liveRound holds the last such round id; both
	// feed the live endpoint's round-rate and current-round vars.
	liveRounds atomic.Uint64
	liveRound  atomic.Uint32
}

// New returns a recorder for p workers with the given per-worker ring
// capacity in events (capPerWorker < 1 selects DefaultCap).
func New(p, capPerWorker int, opts ...Option) *Recorder {
	if p < 1 {
		panic("evtrace: p must be >= 1")
	}
	if capPerWorker < 1 {
		capPerWorker = DefaultCap
	}
	r := &Recorder{
		bufs:  make([]Buf, p),
		epoch: time.Now(),
		every: DefaultSampleEvery,
	}
	for w := range r.bufs {
		r.bufs[w].rec = r
		r.bufs[w].w = int32(w)
		r.bufs[w].events = make([]Event, capPerWorker)
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// P returns the number of per-worker rings. Zero on a nil recorder.
func (r *Recorder) P() int {
	if r == nil {
		return 0
	}
	return len(r.bufs)
}

// Cap returns the per-worker ring capacity in events. Zero on a nil
// recorder.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.bufs[0].events)
}

// RuntimeOn reports whether spans also open runtime/trace regions
// (WithRuntimeTrace). False on a nil recorder.
func (r *Recorder) RuntimeOn() bool { return r != nil && r.rt }

// Worker returns worker w's ring, or nil on a nil recorder — the nil
// propagates into Buf's nil-safe methods, making the tracing-off path a
// branch per call site rather than a flag check per event.
func (r *Recorder) Worker(w int) *Buf {
	if r == nil {
		return nil
	}
	return &r.bufs[w]
}

// now returns nanoseconds since the recorder's epoch (monotonic).
func (r *Recorder) now() int64 { return int64(time.Since(r.epoch)) }

// Begin opens a span of the given kind and round id on this worker's
// ring. On a nil buffer it returns the zero Active, whose End is a
// no-op. Round spans snapshot the worker's claim counters so End can
// record the per-span win/loss deltas.
func (b *Buf) Begin(kind Kind, round uint32) Active {
	if b == nil {
		return Active{}
	}
	a := Active{buf: b, kind: kind, round: round, start: b.rec.now()}
	if kind == KindRound {
		a.w0, a.l0 = b.wins.Load(), b.losses.Load()
	}
	if b.rec.rt {
		a.reg = rtrace.StartRegion(context.Background(), kind.String())
	}
	return a
}

// End closes the span, pushing it onto the ring. Round spans record the
// claim win/loss deltas since Begin in Arg (PackClaims) and, on worker
// 0, advance the recorder's live round counters.
func (a Active) End() {
	b := a.buf
	if b == nil {
		return
	}
	if a.reg != nil {
		a.reg.End()
	}
	ev := Event{Start: a.start, Dur: b.rec.now() - a.start, Round: a.round, Worker: b.w, Kind: a.kind}
	if a.kind == KindRound {
		ev.Arg = PackClaims(b.wins.Load()-a.w0, b.losses.Load()-a.l0)
		if b.w == 0 {
			b.rec.liveRounds.Add(1)
			b.rec.liveRound.Store(a.round)
		}
	}
	b.push(ev)
}

// Point emits an instant event (Dur zero) of the given kind, round id,
// and packed payload. Nil-safe.
func (b *Buf) Point(kind Kind, round uint32, arg uint64) {
	if b == nil {
		return
	}
	b.push(Event{Start: b.rec.now(), Arg: arg, Round: round, Worker: b.w, Kind: kind})
}

// push appends ev to the ring, overwriting the oldest event when full.
// Owner-only: ring slots are plain stores; the emitted-total is atomic so
// the live endpoint can read event counts mid-run without touching slots.
func (b *Buf) push(ev Event) {
	n := b.n.Load()
	b.events[n%uint64(len(b.events))] = ev
	b.n.Store(n + 1)
}

// OnClaim implements metrics.ClaimHook: the metrics layer calls it on
// the claiming worker after every executed winner-selection attempt
// (wins and losses only; pre-check skips never reach the hook). Every
// claim advances the worker's live win/loss counters; every Nth claim
// (WithSampleEvery) additionally emits a KindClaim instant carrying the
// cw round id and cell<<1|won.
func (r *Recorder) OnClaim(w, cell int, round uint32, o cw.Outcome) {
	b := &r.bufs[w]
	won := uint64(0)
	if o == cw.OutcomeWin {
		b.wins.Add(1)
		won = 1
	} else {
		b.losses.Add(1)
	}
	b.samples++
	if b.samples%r.every == 0 {
		b.push(Event{Start: r.now(), Arg: uint64(uint32(cell))<<1 | won, Round: round, Worker: b.w, Kind: KindClaim})
	}
}

// OnFault implements chaos.FaultSink: the injector calls it on the
// perturbed worker after a fired fault finishes burning time, passing
// the fault site name and the measured perturbation duration. The span
// is backdated to cover the perturbation.
func (r *Recorder) OnFault(w int, site string, d time.Duration) {
	if r == nil {
		return
	}
	b := &r.bufs[w]
	end := r.now()
	b.push(Event{Start: end - int64(d), Dur: int64(d), Arg: faultCode(site), Worker: b.w, Kind: KindFault})
}

// Reset clears all rings and counters for reuse across runs. Call at a
// synchronization point (no region in flight); the epoch is kept so
// timestamps stay comparable across runs within one recorder. Nil-safe.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for w := range r.bufs {
		b := &r.bufs[w]
		b.n.Store(0)
		b.samples = 0
		b.wins.Store(0)
		b.losses.Store(0)
	}
	r.liveRounds.Store(0)
	r.liveRound.Store(0)
}

// LiveCounts is a mid-run snapshot of the recorder's atomic counters —
// the only state safe to read while a region is in flight.
type LiveCounts struct {
	// Rounds counts completed worker-0 round spans (work-shared loops).
	Rounds uint64
	// CurrentRound is the round id of the last completed worker-0 span.
	CurrentRound uint32
	// Wins and Losses total the executed claim outcomes across workers.
	Wins, Losses uint64
	// Events totals emitted events across workers; Dropped counts those
	// overwritten by ring wraparound.
	Events, Dropped uint64
}

// Live reads the recorder's atomic counters. Safe to call concurrently
// with a run in flight; zero on a nil recorder.
func (r *Recorder) Live() LiveCounts {
	if r == nil {
		return LiveCounts{}
	}
	lc := LiveCounts{
		Rounds:       r.liveRounds.Load(),
		CurrentRound: r.liveRound.Load(),
	}
	for w := range r.bufs {
		b := &r.bufs[w]
		lc.Wins += b.wins.Load()
		lc.Losses += b.losses.Load()
		n := b.n.Load()
		lc.Events += n
		if c := uint64(len(b.events)); n > c {
			lc.Dropped += n - c
		}
	}
	return lc
}

// PackClaims packs per-span win/loss deltas into a round span's Arg,
// saturating each half at 32 bits.
func PackClaims(wins, losses uint64) uint64 {
	return satTo(wins, 32)<<32 | satTo(losses, 32)
}

// UnpackClaims splits a round span's Arg back into win/loss deltas.
func UnpackClaims(arg uint64) (wins, losses uint64) {
	return arg >> 32, arg & 0xffffffff
}

// PackSteal packs one stealing loop's chunk counts — own-deque pops,
// successful steals, failed steal attempts — into a KindSteal Arg
// (24/20/20 bits, saturating).
func PackSteal(local, steals, fails uint64) uint64 {
	return satTo(local, 24)<<40 | satTo(steals, 20)<<20 | satTo(fails, 20)
}

// UnpackSteal splits a KindSteal Arg back into its chunk counts.
func UnpackSteal(arg uint64) (local, steals, fails uint64) {
	return arg >> 40, arg >> 20 & 0xfffff, arg & 0xfffff
}

func satTo(v uint64, bits uint) uint64 {
	if max := uint64(1)<<bits - 1; v > max {
		return max
	}
	return v
}

// Fault site names, as the chaos injector spells them when reporting to
// its FaultSink. The Chrome exporter names fault spans "fault:<site>".
const (
	// FaultSiteStallPre is a stall before a loop iteration's claim site.
	FaultSiteStallPre = "stall-pre"
	// FaultSiteStallPost is a stall between a committed write and the
	// barrier publishing it.
	FaultSiteStallPost = "stall-post"
	// FaultSiteBarrierJitter is a delay at barrier arrival.
	FaultSiteBarrierJitter = "barrier-jitter"
	// FaultSiteStealDelay is a delay between claiming and running a
	// stolen chunk.
	FaultSiteStealDelay = "steal-delay"
	// FaultSiteClaimStorm is a preemption storm / sticky-loser burst
	// after a lost claim.
	FaultSiteClaimStorm = "claim-storm"
)

var faultSiteNames = [...]string{
	1: FaultSiteStallPre,
	2: FaultSiteStallPost,
	3: FaultSiteBarrierJitter,
	4: FaultSiteStealDelay,
	5: FaultSiteClaimStorm,
}

func faultCode(site string) uint64 {
	for c := 1; c < len(faultSiteNames); c++ {
		if faultSiteNames[c] == site {
			return uint64(c)
		}
	}
	return 0
}

// FaultSiteName returns the site name for a KindFault Arg code, or
// "fault" for an unknown code.
func FaultSiteName(code uint64) string {
	if code >= 1 && code < uint64(len(faultSiteNames)) {
		return faultSiteNames[code]
	}
	return "fault"
}
