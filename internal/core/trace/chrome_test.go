package evtrace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/trace.golden")

// goldenTimeline is a fixed small timeline covering every event kind,
// built the way Drain builds one (sorted spans, recomputed summaries via
// Merge) so the golden file tracks the real export path.
func goldenTimeline() *Timeline {
	return Merge(&Timeline{P: 2, Spans: []Event{
		{Start: 1000, Dur: 5000, Round: 1, Worker: 0, Kind: KindRegion},
		{Start: 1100, Dur: 1500, Round: 1, Worker: 0, Kind: KindRound, Arg: PackClaims(3, 1)},
		{Start: 1200, Dur: 2000, Round: 1, Worker: 1, Kind: KindRound, Arg: PackClaims(2, 2)},
		{Start: 1350, Dur: 0, Round: 1, Worker: 0, Kind: KindClaim, Arg: 42<<1 | 1},
		{Start: 1400, Dur: 300, Worker: 1, Kind: KindFault, Arg: faultCode(FaultSiteBarrierJitter)},
		{Start: 2600, Dur: 600, Round: 1, Worker: 0, Kind: KindBarrier},
		{Start: 3300, Dur: 900, Round: 2, Worker: 0, Kind: KindRound, Arg: PackClaims(0, 0)},
		{Start: 3300, Dur: 950, Round: 2, Worker: 1, Kind: KindRound, Arg: PackClaims(5, 0)},
		{Start: 3400, Dur: 0, Round: 2, Worker: 1, Kind: KindSteal, Arg: PackSteal(7, 2, 1)},
	}})
}

// TestChromeTraceGolden byte-compares the Chrome trace-event export of
// a fixed timeline against testdata/trace.golden (regenerate with
// -update) and validates both the golden bytes and the fresh export
// against the trace-event schema checker.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTimeline().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace diverges from %s (re-run with -update after intentional format changes)\ngot:\n%s", golden, buf.String())
	}
	st, err := ValidateChromeTrace(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden file fails schema validation: %v", err)
	}
	if st.Workers != 2 {
		t.Fatalf("golden trace has %d worker tracks, want 2", st.Workers)
	}
	// 2 rounds x {wins, losses} counter samples.
	if st.Counters != 4 {
		t.Fatalf("golden trace has %d counter samples, want 4", st.Counters)
	}
	// region + 4 rounds... (4 round spans + 1 region + 1 barrier + 1 fault).
	if st.Spans != 7 {
		t.Fatalf("golden trace has %d duration events, want 7", st.Spans)
	}
	if st.Instants != 2 {
		t.Fatalf("golden trace has %d instants, want 2", st.Instants)
	}
}

// TestValidateChromeTraceRejects feeds malformed documents through the
// schema checker.
func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not JSON":        `{"traceEvents":`,
		"empty events":    `{"traceEvents":[]}`,
		"unknown phase":   `{"traceEvents":[{"name":"x","ph":"Q","pid":0}]}`,
		"span sans tid":   `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":1,"pid":0}]}`,
		"span sans dur":   `{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":0,"tid":0}]}`,
		"negative ts":     `{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":0}]}`,
		"counter no args": `{"traceEvents":[{"name":"x","ph":"C","ts":1,"pid":0,"args":{}}]}`,
		"counter non-num": `{"traceEvents":[{"name":"x","ph":"C","ts":1,"pid":0,"args":{"v":"hi"}}]}`,
		"nameless":        `{"traceEvents":[{"ph":"i","ts":1,"pid":0}]}`,
		"bad metadata":    `{"traceEvents":[{"name":"frame_name","ph":"M","pid":0,"args":{"name":"z"}}]}`,
	}
	for what, doc := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validated unexpectedly", what)
		}
	}
}
