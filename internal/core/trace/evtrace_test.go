package evtrace

import (
	"encoding/json"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"crcwpram/internal/core/cw"
)

// TestNilSafety drives every nil-receiver path: a nil recorder and the
// nil buffers it hands out must be complete no-ops, exactly like the
// metrics layer's nil chain.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.P() != 0 || r.Cap() != 0 || r.RuntimeOn() {
		t.Fatal("nil recorder reports non-zero configuration")
	}
	b := r.Worker(3)
	if b != nil {
		t.Fatal("nil recorder returned a non-nil buffer")
	}
	a := b.Begin(KindRound, 1)
	a.End()
	b.Point(KindSteal, 1, 7)
	r.Reset()
	r.OnFault(0, FaultSiteStallPre, 5)
	if lc := r.Live(); lc != (LiveCounts{}) {
		t.Fatalf("nil recorder live counts %+v", lc)
	}
	tl := r.Drain()
	if len(tl.Spans) != 0 || len(tl.Rounds) != 0 {
		t.Fatalf("nil recorder drained %d spans", len(tl.Spans))
	}
	var s *Sink
	if s.Recorder(4) != nil {
		t.Fatal("nil sink returned a recorder")
	}
	s.Timeline()
	s.Live()
}

// TestRingWraparound overflows a tiny ring and checks the flight
// recorder keeps exactly the newest cap events, reports the overwritten
// ones as dropped, and drains the survivors oldest-first.
func TestRingWraparound(t *testing.T) {
	const cap, emitted = 4, 11
	r := New(1, cap)
	b := r.Worker(0)
	for i := 0; i < emitted; i++ {
		b.Point(KindSteal, uint32(i), uint64(i))
	}
	tl := r.Drain()
	if len(tl.Spans) != cap {
		t.Fatalf("drained %d spans, want %d", len(tl.Spans), cap)
	}
	if tl.Dropped != emitted-cap {
		t.Fatalf("dropped %d, want %d", tl.Dropped, emitted-cap)
	}
	for i, ev := range tl.Spans {
		if want := uint64(emitted - cap + i); ev.Arg != want {
			t.Fatalf("span %d has arg %d, want %d (oldest-first drain)", i, ev.Arg, want)
		}
	}
	if lc := r.Live(); lc.Events != emitted || lc.Dropped != emitted-cap {
		t.Fatalf("live counts %+v, want events=%d dropped=%d", lc, emitted, emitted-cap)
	}
	r.Reset()
	if tl := r.Drain(); len(tl.Spans) != 0 || tl.Dropped != 0 {
		t.Fatalf("reset left %d spans, %d dropped", len(tl.Spans), tl.Dropped)
	}
}

// TestDrainOrdering interleaves spans across workers and checks the
// merged timeline is sorted by start time with worker ties broken by
// worker id.
func TestDrainOrdering(t *testing.T) {
	r := New(3, 16)
	// Emit round-robin across workers so per-worker rings hold
	// non-adjacent positions of the global order.
	for i := 0; i < 12; i++ {
		w := i % 3
		a := r.Worker(w).Begin(KindRound, uint32(i/3+1))
		a.End()
	}
	tl := r.Drain()
	if len(tl.Spans) != 12 {
		t.Fatalf("drained %d spans, want 12", len(tl.Spans))
	}
	if !sort.SliceIsSorted(tl.Spans, func(i, j int) bool {
		if tl.Spans[i].Start != tl.Spans[j].Start {
			return tl.Spans[i].Start < tl.Spans[j].Start
		}
		return tl.Spans[i].Worker < tl.Spans[j].Worker
	}) {
		t.Fatal("drained spans not sorted by (start, worker)")
	}
	if len(tl.Rounds) != 4 {
		t.Fatalf("summarized %d rounds, want 4", len(tl.Rounds))
	}
	for i, rs := range tl.Rounds {
		if rs.Round != uint32(i+1) {
			t.Fatalf("summary %d is round %d, want %d", i, rs.Round, i+1)
		}
		if rs.Workers != 3 {
			t.Fatalf("round %d aggregated %d workers, want 3", rs.Round, rs.Workers)
		}
	}
}

// TestConcurrentEmission hammers the rings from one goroutine per
// worker while the main goroutine polls the live counters — the
// concurrency shape of a run with the HTTP endpoint attached. Run under
// -race this pins the owner-only ring discipline and the atomic
// live-counter reads.
func TestConcurrentEmission(t *testing.T) {
	const p, events = 4, 500
	r := New(p, 64)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := r.Worker(w)
			for i := 0; i < events; i++ {
				a := b.Begin(KindRound, uint32(i+1))
				r.OnClaim(w, i, uint32(i+1), cw.OutcomeWin)
				r.OnClaim(w, i, uint32(i+1), cw.OutcomeLoss)
				a.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Live()
		}
	}()
	wg.Wait()
	<-done
	lc := r.Live()
	if lc.Wins != p*events || lc.Losses != p*events {
		t.Fatalf("live wins/losses %d/%d, want %d/%d", lc.Wins, lc.Losses, p*events, p*events)
	}
	tl := r.Drain()
	if tl.Wins != p*events || tl.Losses != p*events {
		t.Fatalf("timeline wins/losses %d/%d, want %d/%d", tl.Wins, tl.Losses, p*events, p*events)
	}
	if len(tl.Spans) != 4*64 {
		t.Fatalf("drained %d spans, want full rings (%d)", len(tl.Spans), 4*64)
	}
}

// TestClaimSampling checks OnClaim counts every claim but only emits
// every Nth as a ring event, with the cell and outcome packed into the
// instant's arg.
func TestClaimSampling(t *testing.T) {
	r := New(1, 64, WithSampleEvery(3))
	for i := 0; i < 10; i++ {
		o := cw.OutcomeWin
		if i%2 == 1 {
			o = cw.OutcomeLoss
		}
		r.OnClaim(0, i, 5, o)
	}
	lc := r.Live()
	if lc.Wins != 5 || lc.Losses != 5 {
		t.Fatalf("wins/losses %d/%d, want 5/5", lc.Wins, lc.Losses)
	}
	tl := r.Drain()
	if len(tl.Spans) != 3 {
		t.Fatalf("sampled %d claim events, want 3 (every 3rd of 10)", len(tl.Spans))
	}
	for _, ev := range tl.Spans {
		if ev.Kind != KindClaim || ev.Round != 5 {
			t.Fatalf("unexpected sampled event %+v", ev)
		}
		// The 3rd, 6th, 9th claims are i=2,5,8: won, lost, won.
		cell, won := ev.Arg>>1, ev.Arg&1
		if wantWon := uint64(1 - cell%2); won != wantWon {
			t.Fatalf("claim on cell %d has won=%d, want %d", cell, won, wantWon)
		}
	}
}

// TestSummaries feeds hand-built spans through Merge (which recomputes
// summaries like Drain does) and checks the per-round aggregation:
// bounds, critical worker, barrier skew, claim totals, histogram.
func TestSummaries(t *testing.T) {
	in := &Timeline{P: 2, Spans: []Event{
		{Start: 100, Dur: 50, Round: 1, Worker: 0, Kind: KindRound, Arg: PackClaims(3, 1)},
		{Start: 110, Dur: 200, Round: 1, Worker: 1, Kind: KindRound, Arg: PackClaims(0, 0)},
		{Start: 150, Dur: 20, Round: 1, Worker: 0, Kind: KindBarrier},
		{Start: 400, Dur: 80, Round: 2, Worker: 0, Kind: KindRound, Arg: PackClaims(300, 0)},
		{Start: 400, Dur: 10, Round: 2, Worker: 1, Kind: KindRound, Arg: PackClaims(1, 0)},
	}}
	tl := Merge(in)
	if len(tl.Rounds) != 2 {
		t.Fatalf("summarized %d rounds, want 2", len(tl.Rounds))
	}
	r1 := tl.Rounds[0]
	if r1.Round != 1 || r1.StartNs != 100 || r1.EndNs != 310 {
		t.Fatalf("round 1 bounds %+v", r1)
	}
	if r1.CritWorker != 1 || r1.CritNs != 200 {
		t.Fatalf("round 1 critical path %+v, want worker 1 at 200ns", r1)
	}
	// Work spans end at 150 (w0) and 310 (w1): skew 160.
	if r1.BarrierSkewNs != 160 {
		t.Fatalf("round 1 barrier skew %d, want 160", r1.BarrierSkewNs)
	}
	if r1.Wins != 3 || r1.Losses != 1 {
		t.Fatalf("round 1 claims %d/%d, want 3/1", r1.Wins, r1.Losses)
	}
	// Worker 0 executed 4 claims (bucket 3: [4,8)), worker 1 zero.
	if r1.ClaimHist[0] != 1 || r1.ClaimHist[3] != 1 {
		t.Fatalf("round 1 claim hist %v", r1.ClaimHist)
	}
	r2 := tl.Rounds[1]
	if r2.CritWorker != 0 || r2.Wins != 301 {
		t.Fatalf("round 2 summary %+v", r2)
	}
}

// TestMergeOffsetsWorkers checks Merge re-numbers the worker tracks of
// successive timelines so they never collide.
func TestMergeOffsetsWorkers(t *testing.T) {
	a := &Timeline{P: 2, Spans: []Event{{Start: 1, Worker: 1, Kind: KindRound, Dur: 5, Round: 1}}}
	b := &Timeline{P: 3, Spans: []Event{{Start: 2, Worker: 0, Kind: KindRound, Dur: 5, Round: 1}}}
	tl := Merge(a, b)
	if tl.P != 5 {
		t.Fatalf("merged P=%d, want 5", tl.P)
	}
	if tl.Spans[0].Worker != 1 || tl.Spans[1].Worker != 2 {
		t.Fatalf("merged workers %d,%d, want 1,2", tl.Spans[0].Worker, tl.Spans[1].Worker)
	}
}

// TestPacking round-trips the packed payload helpers and their
// saturation.
func TestPacking(t *testing.T) {
	if w, l := UnpackClaims(PackClaims(7, 9)); w != 7 || l != 9 {
		t.Fatalf("claims round-trip %d/%d", w, l)
	}
	if w, _ := UnpackClaims(PackClaims(1<<40, 0)); w != 1<<32-1 {
		t.Fatalf("claims saturation gave %d", w)
	}
	if lo, st, f := UnpackSteal(PackSteal(5, 6, 7)); lo != 5 || st != 6 || f != 7 {
		t.Fatalf("steal round-trip %d/%d/%d", lo, st, f)
	}
	if lo, st, f := UnpackSteal(PackSteal(1<<30, 1<<30, 1<<30)); lo != 1<<24-1 || st != 1<<20-1 || f != 1<<20-1 {
		t.Fatalf("steal saturation gave %d/%d/%d", lo, st, f)
	}
	if ClaimBucket(0) != 0 || ClaimBucket(1) != 1 || ClaimBucket(7) != 3 || ClaimBucket(1<<40) != ClaimHistBuckets-1 {
		t.Fatal("claim bucket boundaries off")
	}
	if FaultSiteName(faultCode(FaultSiteBarrierJitter)) != FaultSiteBarrierJitter {
		t.Fatal("fault site code round-trip failed")
	}
	if FaultSiteName(99) != "fault" {
		t.Fatal("unknown fault code should name generically")
	}
}

// TestLiveEndpoint serves the sink's handler and checks /debug/vars
// publishes the evtrace counters.
func TestLiveEndpoint(t *testing.T) {
	s := NewSink(64)
	r := s.Recorder(2)
	a := r.Worker(0).Begin(KindRound, 1)
	r.OnClaim(0, 3, 1, cw.OutcomeWin)
	a.End()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Evtrace struct {
			Machines    int     `json:"machines"`
			RoundsTotal uint64  `json:"rounds_total"`
			CasWins     uint64  `json:"cas_wins"`
			RoundRate   float64 `json:"round_rate_hz"`
		} `json:"evtrace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Evtrace.Machines != 1 || vars.Evtrace.RoundsTotal != 1 || vars.Evtrace.CasWins != 1 {
		t.Fatalf("live vars %+v", vars.Evtrace)
	}
}
