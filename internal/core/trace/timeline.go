package evtrace

import (
	"math/bits"
	"sort"
)

// ClaimHistBuckets is the number of log2 buckets in a round summary's
// claim-rate histogram: bucket 0 holds workers that executed no claims
// in the round, bucket k (1 <= k < ClaimHistBuckets-1) holds workers
// with [2^(k-1), 2^k) claims, and the last bucket holds everything
// beyond.
const ClaimHistBuckets = 10

// ClaimBucket returns the histogram bucket for a worker's per-round
// executed-claim count.
func ClaimBucket(claims uint64) int {
	if claims == 0 {
		return 0
	}
	b := bits.Len64(claims)
	if b > ClaimHistBuckets-1 {
		return ClaimHistBuckets - 1
	}
	return b
}

// RoundSummary aggregates one round's KindRound spans: when every
// worker's span for the round is in the timeline, it answers the
// paper's per-round questions — which worker set the round's wall time
// (the critical path), how skewed the barrier arrivals were, and how
// the executed claims were distributed over workers.
type RoundSummary struct {
	// Round is the emitting layer's round id (step sequence under pool,
	// loop index under team).
	Round uint32
	// StartNs and EndNs bound the round's work spans (epoch-relative).
	StartNs, EndNs int64
	// CritWorker is the worker with the longest work span — the round's
	// critical path — and CritNs its duration.
	CritWorker int
	CritNs     int64
	// BarrierSkewNs is the spread of work-span completion times (latest
	// minus earliest): the imbalance the closing barrier absorbs.
	BarrierSkewNs int64
	// Wins and Losses total the round's executed claim outcomes.
	Wins, Losses uint64
	// ClaimHist is the log2 histogram of per-worker executed claims in
	// the round (see ClaimBucket).
	ClaimHist [ClaimHistBuckets]uint32
	// Workers counts the work spans aggregated (under ring wraparound a
	// round may have lost some workers' spans).
	Workers int
}

// Timeline is the drained, merged view of a recorder: all surviving
// events sorted by start time, plus per-round summaries over the
// KindRound spans.
type Timeline struct {
	// P is the number of worker tracks.
	P int
	// Spans holds every surviving event sorted by Start (ties by
	// Worker).
	Spans []Event
	// Rounds holds one summary per round id seen in KindRound spans,
	// sorted by round id.
	Rounds []RoundSummary
	// Wins and Losses total the executed claim outcomes over the whole
	// recording (from the live counters, so they include claims whose
	// sampled events were dropped).
	Wins, Losses uint64
	// Dropped counts events lost to ring wraparound.
	Dropped uint64
}

// Drain collects every ring into a Timeline. Call at a synchronization
// point (no region in flight), like metrics.Recorder.Snapshot. Draining
// does not clear the rings; use Reset for that. Nil-safe (empty
// timeline).
func (r *Recorder) Drain() *Timeline {
	if r == nil {
		return &Timeline{}
	}
	t := &Timeline{P: len(r.bufs)}
	for w := range r.bufs {
		b := &r.bufs[w]
		n := b.n.Load()
		c := uint64(len(b.events))
		if n <= c {
			t.Spans = append(t.Spans, b.events[:n]...)
		} else {
			// Wrapped: the oldest surviving event is at n%c.
			t.Dropped += n - c
			t.Spans = append(t.Spans, b.events[n%c:]...)
			t.Spans = append(t.Spans, b.events[:n%c]...)
		}
		t.Wins += b.wins.Load()
		t.Losses += b.losses.Load()
	}
	sort.SliceStable(t.Spans, func(i, j int) bool {
		if t.Spans[i].Start != t.Spans[j].Start {
			return t.Spans[i].Start < t.Spans[j].Start
		}
		return t.Spans[i].Worker < t.Spans[j].Worker
	})
	t.Rounds = summarize(t.Spans)
	return t
}

// summarize groups KindRound spans by round id into per-round
// summaries.
func summarize(spans []Event) []RoundSummary {
	byRound := map[uint32]*RoundSummary{}
	for _, ev := range spans {
		if ev.Kind != KindRound {
			continue
		}
		rs := byRound[ev.Round]
		if rs == nil {
			rs = &RoundSummary{Round: ev.Round, StartNs: ev.Start, EndNs: ev.Start + ev.Dur}
			byRound[ev.Round] = rs
		}
		end := ev.Start + ev.Dur
		if ev.Start < rs.StartNs {
			rs.StartNs = ev.Start
		}
		if end > rs.EndNs {
			rs.EndNs = end
		}
		if ev.Dur > rs.CritNs || rs.Workers == 0 {
			rs.CritNs = ev.Dur
			rs.CritWorker = int(ev.Worker)
		}
		w, l := UnpackClaims(ev.Arg)
		rs.Wins += w
		rs.Losses += l
		rs.ClaimHist[ClaimBucket(w+l)]++
		rs.Workers++
	}
	out := make([]RoundSummary, 0, len(byRound))
	for _, rs := range byRound {
		out = append(out, *rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	// Second pass for barrier skew: spread of work-span completion times
	// within each round.
	earliest := map[uint32]int64{}
	latest := map[uint32]int64{}
	for _, ev := range spans {
		if ev.Kind != KindRound {
			continue
		}
		end := ev.Start + ev.Dur
		if e, ok := earliest[ev.Round]; !ok || end < e {
			earliest[ev.Round] = end
		}
		if l, ok := latest[ev.Round]; !ok || end > l {
			latest[ev.Round] = end
		}
	}
	for i := range out {
		out[i].BarrierSkewNs = latest[out[i].Round] - earliest[out[i].Round]
	}
	return out
}

// Merge combines timelines from several recorders (e.g. the machines of
// a sweep) into one: worker tracks are re-numbered with a per-timeline
// offset so tracks never collide, spans are re-sorted, and summaries are
// recomputed over the merged spans. Round ids are left as emitted, so
// merging runs that share round ids folds their summaries together —
// meaningful for repetitions of one kernel, approximate otherwise.
func Merge(ts ...*Timeline) *Timeline {
	out := &Timeline{}
	for _, t := range ts {
		if t == nil {
			continue
		}
		off := int32(out.P)
		for _, ev := range t.Spans {
			ev.Worker += off
			out.Spans = append(out.Spans, ev)
		}
		out.P += t.P
		out.Wins += t.Wins
		out.Losses += t.Losses
		out.Dropped += t.Dropped
	}
	sort.SliceStable(out.Spans, func(i, j int) bool {
		if out.Spans[i].Start != out.Spans[j].Start {
			return out.Spans[i].Start < out.Spans[j].Start
		}
		return out.Spans[i].Worker < out.Spans[j].Worker
	})
	out.Rounds = summarize(out.Spans)
	return out
}
