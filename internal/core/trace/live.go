package evtrace

import (
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"time"
)

// Sink collects the recorders of a run — one per machine, since a sweep
// may build machines with different worker counts — behind one handle
// the bench layer can thread around, merge into a single Timeline, and
// publish live over HTTP. All methods are safe for concurrent use; a
// nil Sink is a no-op whose Recorder returns nil (tracing off).
type Sink struct {
	capPerWorker int
	opts         []Option

	mu   sync.Mutex
	recs []*Recorder
	// Round-rate poll state: the previous poll's wall time and round
	// total, so successive /debug/vars reads report rounds per second
	// over the polling interval.
	lastPoll   time.Time
	lastRounds uint64
}

// NewSink returns a sink whose recorders use the given per-worker ring
// capacity (capPerWorker < 1 selects DefaultCap) and options.
func NewSink(capPerWorker int, opts ...Option) *Sink {
	return &Sink{capPerWorker: capPerWorker, opts: opts}
}

// Recorder creates, registers, and returns a new recorder for a
// p-worker machine. On a nil sink it returns nil — the tracing-off
// value machine.WithEventTrace treats as absent — so call sites thread
// the sink unconditionally.
func (s *Sink) Recorder(p int) *Recorder {
	if s == nil {
		return nil
	}
	r := New(p, s.capPerWorker, s.opts...)
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
	return r
}

// Timeline drains every registered recorder and merges the results
// (worker tracks re-numbered per recorder; see Merge). Call at a
// synchronization point. Nil-safe (empty timeline).
func (s *Sink) Timeline() *Timeline {
	if s == nil {
		return &Timeline{}
	}
	s.mu.Lock()
	recs := append([]*Recorder(nil), s.recs...)
	s.mu.Unlock()
	ts := make([]*Timeline, len(recs))
	for i, r := range recs {
		ts[i] = r.Drain()
	}
	return Merge(ts...)
}

// Live aggregates the mid-run counters of every registered recorder.
// Safe to call while runs are in flight. Nil-safe.
func (s *Sink) Live() LiveCounts {
	if s == nil {
		return LiveCounts{}
	}
	s.mu.Lock()
	recs := append([]*Recorder(nil), s.recs...)
	s.mu.Unlock()
	var lc LiveCounts
	for _, r := range recs {
		c := r.Live()
		lc.Rounds += c.Rounds
		lc.CurrentRound = c.CurrentRound
		lc.Wins += c.Wins
		lc.Losses += c.Losses
		lc.Events += c.Events
		lc.Dropped += c.Dropped
	}
	return lc
}

// vars builds the expvar snapshot: the live counters plus a rolling
// round rate over the interval since the previous poll.
func (s *Sink) vars() any {
	lc := s.Live()
	s.mu.Lock()
	now := time.Now()
	var rate float64
	if !s.lastPoll.IsZero() {
		if dt := now.Sub(s.lastPoll).Seconds(); dt > 0 {
			rate = float64(lc.Rounds-s.lastRounds) / dt
		}
	}
	s.lastPoll, s.lastRounds = now, lc.Rounds
	machines := len(s.recs)
	s.mu.Unlock()
	return map[string]any{
		"machines":      machines,
		"rounds_total":  lc.Rounds,
		"current_round": lc.CurrentRound,
		"round_rate_hz": rate,
		"cas_wins":      lc.Wins,
		"cas_losses":    lc.Losses,
		"events":        lc.Events,
		"dropped":       lc.Dropped,
	}
}

// The "evtrace" expvar is published once per process and reads through
// the most recently served sink, because expvar's global registry
// panics on duplicate names.
var (
	liveMu   sync.Mutex
	liveSink *Sink
	liveOnce sync.Once
)

func (s *Sink) publish() {
	liveMu.Lock()
	liveSink = s
	liveMu.Unlock()
	liveOnce.Do(func() {
		expvar.Publish("evtrace", expvar.Func(func() any {
			liveMu.Lock()
			cur := liveSink
			liveMu.Unlock()
			if cur == nil {
				return map[string]any{}
			}
			return cur.vars()
		}))
	})
}

// Handler returns the live observability mux: /debug/vars (expvar,
// including the "evtrace" rolling counters) and /debug/pprof/*
// (net/http/pprof). Building the handler points the process-wide
// "evtrace" var at this sink.
func (s *Sink) Handler() http.Handler {
	s.publish()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Serve binds addr (e.g. ":6060"; ":0" picks a free port) and serves
// Handler on it in a background goroutine. It returns the server and
// the bound address; the caller shuts it down with Server.Close.
func (s *Sink) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
