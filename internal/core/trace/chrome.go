package evtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the Timeline serialized in the trace-event
// JSON object format (https://docs.google.com/document/d/1CvAClvFfyA5R-
// PhYUmn5OOQtYMH4h6I0nSsKchNAySU), loadable in ui.perfetto.dev and
// chrome://tracing. The mapping is one process (pid 0) with one thread
// track per PRAM worker (tid = worker id): duration events ("ph":"X")
// for round / region / barrier / fault spans, instant events ("ph":"i")
// for steal and claim points, and per-round counter tracks ("ph":"C")
// for CAS wins and losses sampled at each round's start. Timestamps are
// microseconds relative to the recorder's epoch, as the format requires.

// WriteChromeTrace writes the timeline in Chrome trace-event JSON. The
// output is deterministic for a given timeline (events in slice order,
// fixed field order), which the golden test relies on.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[` + "\n")
	fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":0,"args":{"name":"crcwpram"}}`)
	for w := 0; w < t.P; w++ {
		fmt.Fprintf(bw, ",\n"+`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"worker %d"}}`, w, w)
	}
	for _, ev := range t.Spans {
		bw.WriteString(",\n")
		writeChromeEvent(bw, ev)
	}
	for _, rs := range t.Rounds {
		fmt.Fprintf(bw, ",\n"+`{"name":"cas-wins","cat":"claims","ph":"C","ts":%.3f,"pid":0,"args":{"wins":%d}}`, us(rs.StartNs), rs.Wins)
		fmt.Fprintf(bw, ",\n"+`{"name":"cas-losses","cat":"claims","ph":"C","ts":%.3f,"pid":0,"args":{"losses":%d}}`, us(rs.StartNs), rs.Losses)
	}
	bw.WriteString("\n" + `],"displayTimeUnit":"ms"}` + "\n")
	return bw.Flush()
}

// us converts epoch-relative nanoseconds to trace-event microseconds.
func us(ns int64) float64 { return float64(ns) / 1e3 }

func writeChromeEvent(w io.Writer, ev Event) {
	switch ev.Kind {
	case KindRound:
		wins, losses := UnpackClaims(ev.Arg)
		fmt.Fprintf(w, `{"name":"round %d","cat":"round","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"round":%d,"wins":%d,"losses":%d}}`,
			ev.Round, us(ev.Start), us(ev.Dur), ev.Worker, ev.Round, wins, losses)
	case KindRegion:
		fmt.Fprintf(w, `{"name":"region %d","cat":"region","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"round":%d}}`,
			ev.Round, us(ev.Start), us(ev.Dur), ev.Worker, ev.Round)
	case KindBarrier:
		fmt.Fprintf(w, `{"name":"barrier-wait","cat":"barrier","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"round":%d}}`,
			us(ev.Start), us(ev.Dur), ev.Worker, ev.Round)
	case KindFault:
		fmt.Fprintf(w, `{"name":"fault:%s","cat":"fault","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{}}`,
			FaultSiteName(ev.Arg), us(ev.Start), us(ev.Dur), ev.Worker)
	case KindSteal:
		local, steals, fails := UnpackSteal(ev.Arg)
		fmt.Fprintf(w, `{"name":"steal","cat":"steal","ph":"i","s":"t","ts":%.3f,"pid":0,"tid":%d,"args":{"round":%d,"local":%d,"steals":%d,"fails":%d}}`,
			us(ev.Start), ev.Worker, ev.Round, local, steals, fails)
	case KindClaim:
		fmt.Fprintf(w, `{"name":"claim","cat":"claim","ph":"i","s":"t","ts":%.3f,"pid":0,"tid":%d,"args":{"round":%d,"cell":%d,"won":%d}}`,
			us(ev.Start), ev.Worker, ev.Round, ev.Arg>>1, ev.Arg&1)
	default:
		fmt.Fprintf(w, `{"name":"unknown","cat":"unknown","ph":"i","s":"t","ts":%.3f,"pid":0,"tid":%d,"args":{}}`,
			us(ev.Start), ev.Worker)
	}
}

// ChromeStats summarizes a validated trace-event file.
type ChromeStats struct {
	// Events counts all trace events, Spans the "X" duration events,
	// Instants the "i" events, Counters the "C" samples.
	Events, Spans, Instants, Counters int
	// Workers counts distinct thread_name metadata tracks.
	Workers int
}

// ValidateChromeTrace parses r as trace-event JSON and checks every
// event against the schema subset this package emits: the object form
// with a traceEvents array; every event carries a name and a known
// phase; duration events carry non-negative ts/dur and a tid; counter
// events carry ts and at least one numeric arg; metadata events are
// process_name or thread_name with an args.name. It returns counts for
// smoke checks (the CI trace-smoke job asserts Workers and Counters are
// non-zero).
func ValidateChromeTrace(r io.Reader) (ChromeStats, error) {
	var st ChromeStats
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return st, fmt.Errorf("evtrace: trace JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return st, fmt.Errorf("evtrace: trace JSON: empty traceEvents")
	}
	for i, raw := range doc.TraceEvents {
		var ev struct {
			Name string                     `json:"name"`
			Ph   string                     `json:"ph"`
			Ts   *float64                   `json:"ts"`
			Dur  *float64                   `json:"dur"`
			Pid  *int                       `json:"pid"`
			Tid  *int                       `json:"tid"`
			Args map[string]json.RawMessage `json:"args"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return st, fmt.Errorf("evtrace: trace event %d: %w", i, err)
		}
		if ev.Name == "" {
			return st, fmt.Errorf("evtrace: trace event %d: no name", i)
		}
		if ev.Pid == nil {
			return st, fmt.Errorf("evtrace: trace event %d (%s): no pid", i, ev.Name)
		}
		st.Events++
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				return st, fmt.Errorf("evtrace: trace event %d: unexpected metadata %q", i, ev.Name)
			}
			if _, ok := ev.Args["name"]; !ok {
				return st, fmt.Errorf("evtrace: trace event %d (%s): metadata without args.name", i, ev.Name)
			}
			if ev.Name == "thread_name" {
				if ev.Tid == nil {
					return st, fmt.Errorf("evtrace: trace event %d: thread_name without tid", i)
				}
				st.Workers++
			}
		case "X":
			if ev.Ts == nil || ev.Dur == nil || *ev.Ts < 0 || *ev.Dur < 0 {
				return st, fmt.Errorf("evtrace: trace event %d (%s): duration event needs ts >= 0 and dur >= 0", i, ev.Name)
			}
			if ev.Tid == nil {
				return st, fmt.Errorf("evtrace: trace event %d (%s): duration event without tid", i, ev.Name)
			}
			st.Spans++
		case "i":
			if ev.Ts == nil || *ev.Ts < 0 {
				return st, fmt.Errorf("evtrace: trace event %d (%s): instant event needs ts >= 0", i, ev.Name)
			}
			st.Instants++
		case "C":
			if ev.Ts == nil || *ev.Ts < 0 {
				return st, fmt.Errorf("evtrace: trace event %d (%s): counter event needs ts >= 0", i, ev.Name)
			}
			if len(ev.Args) == 0 {
				return st, fmt.Errorf("evtrace: trace event %d (%s): counter event without args", i, ev.Name)
			}
			for k, v := range ev.Args {
				var n float64
				if err := json.Unmarshal(v, &n); err != nil {
					return st, fmt.Errorf("evtrace: trace event %d (%s): counter arg %q not numeric", i, ev.Name, k)
				}
			}
			st.Counters++
		default:
			return st, fmt.Errorf("evtrace: trace event %d (%s): unexpected phase %q", i, ev.Name, ev.Ph)
		}
	}
	return st, nil
}
