// Package chaos is the adversarial-schedule fault-injection layer: a
// deterministic, seed-driven perturbation source that the execution
// backends consult at instrumented yield points — before and after
// claim-bearing loop iterations, at barrier arrival, at steal-chunk
// delivery, and after lost winner-selection attempts — to surface the
// interleavings that normal runs never produce.
//
// The paper's correctness argument for the CAS-LT concurrent-write
// emulation (one committed winner per cell per round, at most P executed
// read-modify-writes per cell per round, no write from round r visible
// after round r's barrier) holds for *every* schedule, but an ordinary
// test run only exercises the handful of schedules the Go runtime happens
// to produce on one machine. An Injector widens that set: each fault
// decision is a pure function of (worker, site, per-worker event counter)
// under a fixed seed, so a failing schedule is replayable by seed alone,
// and two runs with the same seed make identical fault decisions even
// though the OS interleaves them differently. The injector never touches
// algorithm state — it only burns time (spin) and yields (runtime.Gosched)
// — so a perturbed run of a deterministic kernel must produce the same
// bytes as an unperturbed run; internal/kernel.DifferentialChaos enforces
// exactly that, with the metrics.Checker watching the invariants live.
//
// Wiring: machine.WithChaos(inj) attaches an injector to a machine; the
// exec package then wraps the pool and team backends' Ctx so every
// work-shared loop passes through the injector, and the metrics layer
// calls the injector's OnClaim hook (it implements metrics.ClaimHook)
// after every recorded winner-selection attempt. The sticky-loser fault
// additionally needs to re-drive claims, which the hook cannot do; wrap a
// cw.Resolver in NewStickyResolver for that (see resolver.go).
package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// Fault is a bitmask of fault classes an Injector may inject. The zero
// value injects nothing.
type Fault uint32

const (
	// FaultStall stalls a worker before or after individual loop
	// iterations (the iteration is the claim-bearing unit: a stall after
	// iteration i is a stall immediately before iteration i+1's claim),
	// widening the window between a claim's pre-check and its CAS.
	FaultStall Fault = 1 << iota
	// FaultJitter delays a worker's arrival at a barrier, so round
	// boundaries close with maximal skew between the first and last
	// arriving workers.
	FaultJitter
	// FaultStealDelay delays a worker between claiming a chunk from the
	// work-stealing deques and executing it, holding stolen work hostage
	// while the victim's deque drains.
	FaultStealDelay
	// FaultStorm forces a burst of runtime.Gosched calls on a worker that
	// just lost a winner-selection attempt — the preemption-storm-inside-
	// the-CAS-retry-loop schedule that contention pathologies need.
	FaultStorm
	// FaultSticky keeps a losing writer at its cell: at the claim hook the
	// loser lingers (an extended yield burst); through a sticky resolver
	// wrapper (NewStickyResolver) the loser additionally re-drives the
	// claim itself, which must keep losing for the rest of the round.
	FaultSticky
)

// AllFaults enables every fault class.
const AllFaults = FaultStall | FaultJitter | FaultStealDelay | FaultStorm | FaultSticky

// faultNames orders the fault names for String and ParseFaults.
var faultNames = []struct {
	f    Fault
	name string
}{
	{FaultStall, "stall"},
	{FaultJitter, "jitter"},
	{FaultStealDelay, "steal-delay"},
	{FaultStorm, "storm"},
	{FaultSticky, "sticky-loser"},
}

// String renders the mask as a +-joined list of fault names ("none" for
// the zero mask, e.g. "stall+storm").
func (f Fault) String() string {
	if f == 0 {
		return "none"
	}
	var parts []string
	for _, fn := range faultNames {
		if f&fn.f != 0 {
			parts = append(parts, fn.name)
		}
	}
	if rest := f &^ AllFaults; rest != 0 {
		parts = append(parts, fmt.Sprintf("unknown(%#x)", uint32(rest)))
	}
	return strings.Join(parts, "+")
}

// ParseFaults parses a +-joined list of fault names as produced by String;
// "all" and "none" are accepted.
func ParseFaults(s string) (Fault, error) {
	switch s {
	case "all":
		return AllFaults, nil
	case "none", "":
		return 0, nil
	}
	var f Fault
	for _, part := range strings.Split(s, "+") {
		found := false
		for _, fn := range faultNames {
			if part == fn.name {
				f |= fn.f
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("chaos: unknown fault %q (have stall, jitter, steal-delay, storm, sticky-loser, all, none)", part)
		}
	}
	return f, nil
}

// Spec is one parsed -chaos request: the seeds to drive the matrix with
// and the fault classes to inject.
type Spec struct {
	Seeds  []uint64
	Faults Fault
}

// DefaultSeeds is the seed set a Spec without an explicit seed list uses —
// the same short set the CI chaos job runs.
var DefaultSeeds = []uint64{1, 2, 3}

// ParseSpec parses a crcwbench -chaos value: comma-separated key=value
// pairs with keys "seed" (a +-joined list of uint64 seeds) and "faults"
// (a +-joined list of fault names, default all). The empty string and
// "default" select DefaultSeeds with all faults.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Seeds: DefaultSeeds, Faults: AllFaults}
	if s == "" || s == "default" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("chaos: bad spec element %q (want key=value)", kv)
		}
		switch k {
		case "seed", "seeds":
			spec.Seeds = nil
			for _, part := range strings.Split(v, "+") {
				n, err := strconv.ParseUint(part, 10, 64)
				if err != nil {
					return Spec{}, fmt.Errorf("chaos: bad seed %q: %v", part, err)
				}
				spec.Seeds = append(spec.Seeds, n)
			}
		case "faults":
			f, err := ParseFaults(v)
			if err != nil {
				return Spec{}, err
			}
			spec.Faults = f
		default:
			return Spec{}, fmt.Errorf("chaos: unknown spec key %q (want seed=... or faults=...)", k)
		}
	}
	if len(spec.Seeds) == 0 {
		return Spec{}, fmt.Errorf("chaos: empty seed list")
	}
	return spec, nil
}
