package chaos

import (
	"sync"
	"testing"

	"crcwpram/internal/core/cw"
)

// TestStickyResolverNeverRewins drives a sticky gatekeeper resolver —
// whose losses are deterministic: every attempt executes a fetch-add, and
// all but the first per (cell, round) lose — so every loss is re-driven
// within its round, and the protocol must hold: no re-drive may ever win.
func TestStickyResolverNeverRewins(t *testing.T) {
	const n, workers, rounds = 64, 4, 20
	sr := NewStickyResolver(cw.NewResolver(cw.Gatekeeper, n, cw.Packed))
	for r := uint32(1); r <= rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					sr.Do(i, r, func() {})
				}
			}()
		}
		wg.Wait()
		sr.ResetRange(0, n)
	}
	if sr.Redrives() == 0 {
		t.Fatal("contended sticky resolver recorded no re-drives")
	}
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
	if sr.Len() != n || sr.Method() != cw.Gatekeeper {
		t.Fatalf("wrapper identity: len=%d method=%v", sr.Len(), sr.Method())
	}
}

// TestStickyResolverCASLT races workers on a handful of CAS-LT cells; the
// pre-check converts most late arrivals into skips, so re-drives only
// occur in genuine race windows — whatever happens, none may win.
func TestStickyResolverCASLT(t *testing.T) {
	const n, workers, rounds = 4, 4, 50
	sr := NewStickyResolver(cw.NewResolver(cw.CASLT, n, cw.Packed))
	for r := uint32(1); r <= rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					sr.Do(i, r, func() {})
				}
			}()
		}
		wg.Wait()
	}
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStickyResolverGatekeeper runs the same schedule through the checked
// gatekeeper, whose counter resets between rounds.
func TestStickyResolverGatekeeper(t *testing.T) {
	const n, workers = 32, 4
	sr := NewStickyResolver(cw.NewResolver(cw.GatekeeperChecked, n, cw.Packed))
	for r := uint32(1); r <= 10; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					sr.Do(i, r, func() {})
				}
			}()
		}
		wg.Wait()
		sr.ResetRange(0, n)
	}
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStickyResolverRejectsNonSelecting(t *testing.T) {
	for _, m := range []cw.Method{cw.Naive, cw.Mutex} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStickyResolver accepted %v", m)
				}
			}()
			NewStickyResolver(cw.NewResolver(m, 8, cw.Packed))
		}()
	}
}
