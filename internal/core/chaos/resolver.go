package chaos

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"crcwpram/internal/core/cw"
)

// StickyResolver wraps a winner-selecting cw.Resolver so that losing
// writers re-drive their claims for the remainder of the round — the
// sticky-loser schedule. Under a correct protocol a re-driven claim can
// never win: CAS-LT's cell already carries a stamp ≥ round, and a
// gatekeeper's counter is already nonzero; the wrapper asserts exactly
// that, counting any re-drive that wins as a double-commit violation
// (the re-drive's write is swallowed, so a buggy inner resolver corrupts
// the violation counter, not the algorithm's memory).
//
// The re-drive count per loss is a pure function of (cell, round), so the
// sticky schedule is deterministic without any shared wrapper state on
// the claim path. Only wrap winner-selecting methods (CAS-LT and the
// gatekeepers): Naive and Mutex report every call as a win by design.
type StickyResolver struct {
	inner    cw.Resolver
	redrives atomic.Uint64
	rewins   atomic.Uint64
}

// NewStickyResolver wraps inner in sticky-loser re-driving. It panics if
// inner's method has no winner selection (Naive, Mutex), for which
// "re-drive must lose" is not a meaningful invariant.
func NewStickyResolver(inner cw.Resolver) *StickyResolver {
	switch inner.Method() {
	case cw.Naive, cw.Mutex:
		panic("chaos: StickyResolver requires a winner-selecting method, got " + inner.Method().String())
	}
	return &StickyResolver{inner: inner}
}

// Method reports the wrapped resolver's method.
func (r *StickyResolver) Method() cw.Method { return r.inner.Method() }

// Len reports the wrapped resolver's target count.
func (r *StickyResolver) Len() int { return r.inner.Len() }

// Do executes the claim through the wrapped resolver, re-driving on loss.
func (r *StickyResolver) Do(i int, round uint32, write func()) bool {
	return r.DoOutcome(i, round, write) == cw.OutcomeWin
}

// DoOutcome executes the claim through the wrapped resolver; on a loss it
// re-drives the claim 1 + (cell+round) mod 4 more times with a yield
// between drives, asserting every re-drive loses.
func (r *StickyResolver) DoOutcome(i int, round uint32, write func()) cw.Outcome {
	o := r.inner.DoOutcome(i, round, write)
	if o != cw.OutcomeLoss {
		return o
	}
	n := 1 + (uint32(i)+round)%4
	for k := uint32(0); k < n; k++ {
		runtime.Gosched()
		r.redrives.Add(1)
		if ro := r.inner.DoOutcome(i, round, func() {}); ro == cw.OutcomeWin {
			r.rewins.Add(1)
		}
	}
	return o
}

// ResetRange forwards to the wrapped resolver.
func (r *StickyResolver) ResetRange(lo, hi int) { r.inner.ResetRange(lo, hi) }

// Redrives returns the number of re-driven claims so far. Read at a
// synchronization point.
func (r *StickyResolver) Redrives() uint64 { return r.redrives.Load() }

// Err returns nil if no re-driven claim ever won, and an error describing
// the double-commit count otherwise.
func (r *StickyResolver) Err() error {
	if n := r.rewins.Load(); n != 0 {
		return fmt.Errorf("chaos: %d re-driven %s claims won after losing the same round (double commit)",
			n, r.inner.Method())
	}
	return nil
}
