package chaos

import (
	"runtime"
	"time"

	"crcwpram/internal/core/cw"
)

// site identifies one class of instrumented yield point; it feeds the
// per-worker fault trace so two runs can be compared decision by decision.
type site uint8

const (
	siteIterPre site = iota + 1
	siteIterPost
	siteBarrier
	siteSteal
	siteClaim
	numSites
)

// name spells the site as reported to a FaultSink — the names the
// evtrace package recognizes for its fault-span labels.
func (s site) name() string {
	switch s {
	case siteIterPre:
		return "stall-pre"
	case siteIterPost:
		return "stall-post"
	case siteBarrier:
		return "barrier-jitter"
	case siteSteal:
		return "steal-delay"
	case siteClaim:
		return "claim-storm"
	default:
		return "unknown"
	}
}

// FaultSink observes fired faults: the injector calls OnFault on the
// perturbed worker after each fired fault finishes burning time, with
// the site name and the measured perturbation duration. Observation
// only — the decision stream (and so the replayable fault schedule and
// TraceHash) is identical with and without a sink attached. The
// event-trace recorder implements it to render injected faults as
// timeline spans.
type FaultSink interface {
	OnFault(w int, site string, d time.Duration)
}

// Per-site firing rates: a fault decision at site s fires when the
// worker's next pseudo-random draw is divisible by rate[s]. Iteration
// stalls are kept rarer than barrier jitter and steal delays (there are
// orders of magnitude more iterations than barriers), and every lost
// claim perturbs — the loss itself is already the rare event worth
// amplifying.
var siteRate = [numSites]uint64{
	siteIterPre:  13,
	siteIterPost: 11,
	siteBarrier:  3,
	siteSteal:    2,
	siteClaim:    1,
}

// wstate is one worker's private fault stream: a pseudo-random generator,
// a running hash of every decision taken, and a decision counter. Padded
// so adjacent workers' streams never share a cache line.
type wstate struct {
	rng   uint64
	hash  uint64
	calls uint64
	_     [128 - 3*8]byte
}

// Injector is a deterministic schedule perturbator for one machine: one
// decision stream per worker, each a pure function of (seed, worker,
// event counter), so the fault schedule is replayable by seed alone and
// independent of how the OS actually interleaves the workers. All methods
// are nil-receiver safe no-ops, so call sites need no guards.
//
// An Injector burns time and yields; it never reads or writes algorithm
// state. Attach one to a machine with machine.WithChaos; reuse across
// runs is fine (the streams simply continue), but for a replayable fault
// schedule use a fresh Injector per run.
type Injector struct {
	seed   uint64
	faults Fault
	sink   FaultSink
	ws     []wstate
}

// NewInjector returns an injector for p workers injecting the given fault
// classes under the given seed.
func NewInjector(p int, seed uint64, faults Fault) *Injector {
	in := &Injector{seed: seed, faults: faults, ws: make([]wstate, p)}
	for w := range in.ws {
		// splitmix64 of (seed, w): well-distributed, never zero.
		z := seed + uint64(w+1)*0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		in.ws[w].rng = z ^ (z >> 31) | 1
	}
	return in
}

// Seed returns the injector's seed. Zero on a nil injector.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Faults returns the injected fault mask. Zero on a nil injector.
func (in *Injector) Faults() Fault {
	if in == nil {
		return 0
	}
	return in.faults
}

// SetSink attaches s (nil to detach) as the fired-fault observer. The
// machine wires its event-trace recorder here (machine.WithEventTrace).
// Nil-receiver safe.
func (in *Injector) SetSink(s FaultSink) {
	if in != nil {
		in.sink = s
	}
}

// firePerturb burns a fired fault's perturbation and, when a sink is
// attached, reports the fault with its measured duration. The timing
// exists only on the fired (already cold) path and only with a sink.
func (in *Injector) firePerturb(w int, s site, mag uint32) {
	if in.sink == nil {
		perturb(mag)
		return
	}
	t0 := time.Now()
	perturb(mag)
	in.sink.OnFault(w, s.name(), time.Since(t0))
}

// decide advances worker w's stream by one decision at the given site and
// reports whether the fault fires and with what magnitude. Every call —
// firing or not — advances the stream and the trace hash, so the decision
// sequence is a pure function of the call sequence.
func (in *Injector) decide(w int, s site) (fire bool, mag uint32) {
	st := &in.ws[w]
	// xorshift64: full-period for nonzero state.
	x := st.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	st.rng = x
	st.calls++
	fire = x%siteRate[s] == 0
	mag = uint32(x>>33) & 0xff
	bit := uint64(0)
	if fire {
		bit = 1
	}
	// Fold (site, fire, mag) into the trace hash (FNV-1a step).
	st.hash = (st.hash ^ (uint64(s)<<16 | bit<<8 | uint64(mag&0xff))) * 0x100000001b3
	return fire, mag
}

// perturb burns a magnitude-scaled mix of yields and spin. The yields are
// the scheduling perturbation; the spin widens race windows on machines
// with spare cores where a yield alone returns immediately.
func perturb(mag uint32) {
	for i := uint32(0); i <= mag&3; i++ {
		runtime.Gosched()
	}
	spin := (mag >> 2) & 0x3f
	for i := uint32(0); i < spin*8; i++ {
		_ = i // pure delay; kept trivial so the compiler retains the loop shape
	}
}

// IterPre perturbs worker w before a loop iteration — a stall immediately
// before the iteration's claim site.
func (in *Injector) IterPre(w int) {
	if in == nil || in.faults&FaultStall == 0 {
		return
	}
	if fire, mag := in.decide(w, siteIterPre); fire {
		in.firePerturb(w, siteIterPre, mag)
	}
}

// IterPost perturbs worker w after a loop iteration — a stall between a
// committed write and the barrier that publishes it.
func (in *Injector) IterPost(w int) {
	if in == nil || in.faults&FaultStall == 0 {
		return
	}
	if fire, mag := in.decide(w, siteIterPost); fire {
		in.firePerturb(w, siteIterPost, mag)
	}
}

// BarrierJitter perturbs worker w at barrier arrival, skewing the round
// boundary.
func (in *Injector) BarrierJitter(w int) {
	if in == nil || in.faults&FaultJitter == 0 {
		return
	}
	if fire, mag := in.decide(w, siteBarrier); fire {
		// Barriers get the heavy tail: fewer, larger delays.
		in.firePerturb(w, siteBarrier, mag|0x80)
	}
}

// StealDelay perturbs worker w between claiming a steal chunk and running
// it.
func (in *Injector) StealDelay(w int) {
	if in == nil || in.faults&FaultStealDelay == 0 {
		return
	}
	if fire, mag := in.decide(w, siteSteal); fire {
		in.firePerturb(w, siteSteal, mag)
	}
}

// OnClaim implements metrics.ClaimHook: it is called by the metrics layer
// after every recorded winner-selection attempt. Lost attempts trigger
// the storm fault (a Gosched burst, the preemption storm inside a CAS
// retry loop) and the sticky-loser lingering (an extended burst keeping
// the loser scheduled around its cell). Wins and the cell/round identity
// advance the stream too, so the fault schedule covers every claim.
func (in *Injector) OnClaim(w, cell int, round uint32, o cw.Outcome) {
	if in == nil || in.faults&(FaultStorm|FaultSticky) == 0 {
		return
	}
	fire, mag := in.decide(w, siteClaim)
	if o != cw.OutcomeLoss || !fire {
		return
	}
	var t0 time.Time
	if in.sink != nil {
		t0 = time.Now()
	}
	if in.faults&FaultStorm != 0 {
		perturb(mag)
	}
	if in.faults&FaultSticky != 0 {
		// Linger: the loser stays hot near the cell for several extra
		// scheduling quanta instead of retiring into the rest of its share.
		for i := uint32(0); i <= mag&7; i++ {
			perturb(mag >> 1)
		}
	}
	if in.sink != nil {
		in.sink.OnFault(w, siteClaim.name(), time.Since(t0))
	}
}

// TraceHash folds every worker's decision stream into one fingerprint:
// two injectors that made identical per-worker decision sequences — same
// seed, same fault mask, same per-worker call sequences — hash equal,
// regardless of how the OS interleaved the workers against each other.
// Call at a synchronization point (no region in flight).
func (in *Injector) TraceHash() uint64 {
	if in == nil {
		return 0
	}
	h := uint64(0xcbf29ce484222325)
	for w := range in.ws {
		h = (h ^ in.ws[w].hash ^ in.ws[w].calls<<1) * 0x100000001b3
	}
	return h
}

// Decisions returns the total number of fault decisions taken across all
// workers. Call at a synchronization point.
func (in *Injector) Decisions() uint64 {
	if in == nil {
		return 0
	}
	var n uint64
	for w := range in.ws {
		n += in.ws[w].calls
	}
	return n
}
