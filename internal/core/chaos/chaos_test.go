package chaos

import (
	"testing"

	"crcwpram/internal/core/cw"
)

// driveSequence exercises a fixed, worker-tagged sequence of hook calls
// against an injector, simulating the per-worker call streams of a run.
// Decisions are per-worker pure functions of the seed and call order, so
// two injectors fed the same sequence must trace identically no matter
// how a real run would interleave the workers.
func driveSequence(in *Injector, p int) {
	for round := 0; round < 50; round++ {
		for w := 0; w < p; w++ {
			for i := 0; i < 7; i++ {
				in.IterPre(w)
				o := cw.OutcomeWin
				if (round+i+w)%3 == 0 {
					o = cw.OutcomeLoss
				}
				in.OnClaim(w, i, uint32(round+1), o)
				in.IterPost(w)
			}
			in.StealDelay(w)
			in.BarrierJitter(w)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	const p = 4
	a := NewInjector(p, 42, AllFaults)
	b := NewInjector(p, 42, AllFaults)
	driveSequence(a, p)
	driveSequence(b, p)
	if a.TraceHash() != b.TraceHash() {
		t.Fatalf("same seed, same call sequence: trace hashes differ (%#x vs %#x)",
			a.TraceHash(), b.TraceHash())
	}
	if a.Decisions() != b.Decisions() {
		t.Fatalf("decision counts differ: %d vs %d", a.Decisions(), b.Decisions())
	}
	if a.Decisions() == 0 {
		t.Fatal("drive sequence took no fault decisions")
	}
	c := NewInjector(p, 43, AllFaults)
	driveSequence(c, p)
	if c.TraceHash() == a.TraceHash() {
		t.Fatalf("different seeds produced identical trace hash %#x", a.TraceHash())
	}
}

func TestInjectorFaultMaskGatesSites(t *testing.T) {
	const p = 2
	// With only barrier jitter enabled, iteration and claim hooks must not
	// advance the streams: the trace hash depends only on barrier calls.
	a := NewInjector(p, 7, FaultJitter)
	b := NewInjector(p, 7, FaultJitter)
	driveSequence(a, p)
	for w := 0; w < p; w++ {
		for i := 0; i < 50; i++ {
			b.BarrierJitter(w)
		}
	}
	if a.TraceHash() != b.TraceHash() {
		t.Fatalf("jitter-only injector advanced non-barrier streams")
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	in.IterPre(0)
	in.IterPost(1)
	in.BarrierJitter(2)
	in.StealDelay(3)
	in.OnClaim(0, 5, 1, cw.OutcomeLoss)
	if in.TraceHash() != 0 || in.Decisions() != 0 || in.Seed() != 0 || in.Faults() != 0 {
		t.Fatal("nil injector reported nonzero state")
	}
}

func TestFaultStringParseRoundTrip(t *testing.T) {
	cases := []Fault{0, FaultStall, FaultJitter | FaultStorm, AllFaults,
		FaultStall | FaultStealDelay | FaultSticky}
	for _, f := range cases {
		got, err := ParseFaults(f.String())
		if err != nil {
			t.Fatalf("ParseFaults(%q): %v", f.String(), err)
		}
		if got != f {
			t.Fatalf("round trip %q: got %#x want %#x", f.String(), got, f)
		}
	}
	if _, err := ParseFaults("bogus"); err == nil {
		t.Fatal("ParseFaults accepted bogus fault name")
	}
	if f, err := ParseFaults("all"); err != nil || f != AllFaults {
		t.Fatalf("ParseFaults(all) = %#x, %v", f, err)
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=5+9,faults=stall+sticky-loser")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Seeds) != 2 || spec.Seeds[0] != 5 || spec.Seeds[1] != 9 {
		t.Fatalf("seeds = %v", spec.Seeds)
	}
	if spec.Faults != FaultStall|FaultSticky {
		t.Fatalf("faults = %v", spec.Faults)
	}
	def, err := ParseSpec("")
	if err != nil || def.Faults != AllFaults || len(def.Seeds) != len(DefaultSeeds) {
		t.Fatalf("default spec = %+v, %v", def, err)
	}
	for _, bad := range []string{"seed=x", "nonsense", "k=v", "seed="} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}
