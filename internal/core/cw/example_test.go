package cw_test

import (
	"fmt"

	"crcwpram/internal/core/cw"
)

// The paper's Figure 1 protocol on one cell: the first claimant of a round
// wins, later claimants fail the load pre-check, and a new round needs no
// reset — just a larger id.
func ExampleCell_TryClaim() {
	var lastRoundUpdated cw.Cell

	fmt.Println("round 1, first writer: ", lastRoundUpdated.TryClaim(1))
	fmt.Println("round 1, second writer:", lastRoundUpdated.TryClaim(1))
	fmt.Println("round 2, no reset:     ", lastRoundUpdated.TryClaim(2))
	// Output:
	// round 1, first writer:  true
	// round 1, second writer: false
	// round 2, no reset:      true
}

// The Figure 2 comparator: every attempt costs an atomic fetch-and-add,
// and the gate must be re-zeroed before the next round.
func ExampleGate_TryEnter() {
	var gatekeeper cw.Gate

	fmt.Println("round 1, first writer: ", gatekeeper.TryEnter())
	fmt.Println("round 1, second writer:", gatekeeper.TryEnter())
	fmt.Println("round 2, no reset:     ", gatekeeper.TryEnter())
	gatekeeper.Reset() // the O(N)-work pass, per cell
	fmt.Println("round 2, after reset:  ", gatekeeper.TryEnter())
	// Output:
	// round 1, first writer:  true
	// round 1, second writer: false
	// round 2, no reset:      false
	// round 2, after reset:   true
}

// Multi-word payloads commit whole through a Slot: the loser's struct is
// discarded untouched, so fields can never mix.
func ExampleSlot() {
	type update struct {
		Parent int
		Edge   int
	}
	var winner cw.Slot[update]

	first := winner.TryWrite(1, update{Parent: 4, Edge: 40})
	second := winner.TryWrite(1, update{Parent: 7, Edge: 70})
	got := winner.Load()
	fmt.Println(first, second, got.Parent, got.Edge)
	// Output:
	// true false 4 40
}

// Priority CRCW: the smallest (value, id) offer survives regardless of
// arrival order.
func ExamplePriorityMinCell() {
	var cell cw.PriorityMinCell
	cell.Reset()
	cell.Offer(30, 1)
	cell.Offer(10, 2)
	cell.Offer(20, 3)
	fmt.Println(cell.Value(), cell.ID())
	// Output:
	// 10 2
}
