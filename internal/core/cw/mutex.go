package cw

import "sync"

// MutexArray implements concurrent writes by wrapping each target in a
// critical section — the "trivial but bad" solution the paper dismisses in
// Section 4, retained here as a baseline for the ablation benchmarks.
//
// Under this scheme every competing thread performs its write, serially; the
// last writer's value survives, which is a valid arbitrary-CW outcome (and a
// valid common-CW outcome). The cost is full serialization of all writers,
// including their payload writes, plus lock overhead.
type MutexArray struct {
	mu []sync.Mutex
}

// NewMutexArray returns an array of n per-target critical sections.
func NewMutexArray(n int) *MutexArray {
	return &MutexArray{mu: make([]sync.Mutex, n)}
}

// Len returns the number of targets.
func (m *MutexArray) Len() int { return len(m.mu) }

// Do executes write inside target i's critical section. Every caller's
// write runs; callers observe full mutual exclusion per target.
func (m *MutexArray) Do(i int, write func()) {
	m.mu[i].Lock()
	write()
	m.mu[i].Unlock()
}

// Lock acquires target i's critical section directly, for kernels that
// prefer explicit lock/unlock around an inlined payload write.
func (m *MutexArray) Lock(i int) { m.mu[i].Lock() }

// Unlock releases target i's critical section.
func (m *MutexArray) Unlock(i int) { m.mu[i].Unlock() }
