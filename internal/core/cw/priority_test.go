package cw

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestPriorityMinCellSequential(t *testing.T) {
	var c PriorityMinCell
	c.Reset()
	if !c.Empty() {
		t.Fatal("reset cell not Empty")
	}
	if !c.Offer(10, 3) {
		t.Fatal("first offer rejected")
	}
	if c.Offer(10, 5) {
		t.Fatal("offer (10,5) accepted over (10,3): ties must break toward smaller id")
	}
	if !c.Offer(10, 1) {
		t.Fatal("offer (10,1) rejected: smaller id must win ties")
	}
	if !c.Offer(9, 7) {
		t.Fatal("offer (9,7) rejected: smaller value must win")
	}
	if c.Offer(9, 8) || c.Offer(11, 0) {
		t.Fatal("worse offer accepted")
	}
	if c.Value() != 9 || c.ID() != 7 {
		t.Fatalf("winner = (%d,%d), want (9,7)", c.Value(), c.ID())
	}
	if c.Empty() {
		t.Fatal("cell Empty after offers")
	}
}

// Priority CRCW semantics: the final state equals the minimum of all offers
// under (value, id) lexicographic order, no matter the interleaving.
func TestPriorityMinCellConcurrentIsTrueMin(t *testing.T) {
	const goroutines = 48
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var c PriorityMinCell
		c.Reset()
		values := make([]uint32, goroutines)
		for i := range values {
			values[i] = uint32(rng.Intn(100))
		}
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			go func() {
				defer done.Done()
				start.Wait()
				c.Offer(values[g], uint32(g))
			}()
		}
		start.Done()
		done.Wait()

		wantVal, wantID := uint32(math.MaxUint32), uint32(math.MaxUint32)
		for g, v := range values {
			if v < wantVal || (v == wantVal && uint32(g) < wantID) {
				wantVal, wantID = v, uint32(g)
			}
		}
		if c.Value() != wantVal || c.ID() != wantID {
			t.Fatalf("trial %d: winner (%d,%d), want (%d,%d)", trial, c.Value(), c.ID(), wantVal, wantID)
		}
	}
}

func TestPriorityMinArray(t *testing.T) {
	a := NewPriorityMinArray(4)
	if a.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", a.Len())
	}
	for i := 0; i < 4; i++ {
		if !a.Cell(i).Empty() {
			t.Fatalf("cell %d not initialized to identity", i)
		}
	}
	a.Offer(2, 42, 7)
	if a.Cell(2).Value() != 42 {
		t.Fatal("offer did not land on cell 2")
	}
	if !a.Cell(0).Empty() || !a.Cell(1).Empty() || !a.Cell(3).Empty() {
		t.Fatal("offer leaked to other cells")
	}
	a.ResetRange(0, 4)
	if !a.Cell(2).Empty() {
		t.Fatal("ResetRange did not restore identity")
	}
}

func TestPriorityMaxCell(t *testing.T) {
	var c PriorityMaxCell
	if !c.Offer(5, 1) {
		t.Fatal("first offer rejected")
	}
	if c.Offer(5, 0) {
		t.Fatal("offer (5,0) accepted over (5,1): ties must break toward larger id")
	}
	if !c.Offer(5, 2) {
		t.Fatal("offer (5,2) rejected")
	}
	if !c.Offer(9, 0) {
		t.Fatal("offer (9,0) rejected: larger value must win")
	}
	if c.Value() != 9 || c.ID() != 0 {
		t.Fatalf("winner = (%d,%d), want (9,0)", c.Value(), c.ID())
	}
	c.Reset()
	if c.Value() != 0 || c.ID() != 0 {
		t.Fatal("Reset did not restore identity")
	}
}

func TestPriorityMaxCellConcurrentIsTrueMax(t *testing.T) {
	const goroutines = 48
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		var c PriorityMaxCell
		values := make([]uint32, goroutines)
		for i := range values {
			values[i] = uint32(rng.Intn(100)) + 1
		}
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			go func() {
				defer done.Done()
				start.Wait()
				c.Offer(values[g], uint32(g))
			}()
		}
		start.Done()
		done.Wait()

		var wantVal, wantID uint32
		for g, v := range values {
			if v > wantVal || (v == wantVal && uint32(g) > wantID) {
				wantVal, wantID = v, uint32(g)
			}
		}
		if c.Value() != wantVal || c.ID() != wantID {
			t.Fatalf("trial %d: winner (%d,%d), want (%d,%d)", trial, c.Value(), c.ID(), wantVal, wantID)
		}
	}
}
