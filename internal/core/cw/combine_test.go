package cw

import (
	"math/rand"
	"sync"
	"testing"
)

func TestAdderCell(t *testing.T) {
	var c AdderCell
	if got := c.Add(5); got != 0 {
		t.Fatalf("Add(5) returned prior %d, want 0", got)
	}
	if got := c.Add(3); got != 5 {
		t.Fatalf("Add(3) returned prior %d, want 5", got)
	}
	if c.Load() != 8 {
		t.Fatalf("Load() = %d, want 8", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("Reset did not zero the cell")
	}
}

func TestAdderCellConcurrentSum(t *testing.T) {
	const goroutines = 32
	const addsPer = 1000
	var c AdderCell
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < addsPer; i++ {
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if want := uint64(goroutines * addsPer * 2); c.Load() != want {
		t.Fatalf("sum = %d, want %d", c.Load(), want)
	}
}

func TestMaxCellConcurrentIsTrueMax(t *testing.T) {
	const goroutines = 32
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		var c MaxCell
		values := make([]uint32, goroutines)
		var want uint32
		for i := range values {
			values[i] = uint32(rng.Intn(1 << 20))
			if values[i] > want {
				want = values[i]
			}
		}
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			go func() {
				defer wg.Done()
				c.Offer(values[g])
			}()
		}
		wg.Wait()
		if c.Load() != want {
			t.Fatalf("trial %d: max = %d, want %d", trial, c.Load(), want)
		}
	}
}

func TestMinCellConcurrentIsTrueMin(t *testing.T) {
	const goroutines = 32
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		c := NewMinCell()
		values := make([]uint32, goroutines)
		want := ^uint32(0)
		for i := range values {
			values[i] = uint32(rng.Intn(1 << 20))
			if values[i] < want {
				want = values[i]
			}
		}
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			go func() {
				defer wg.Done()
				c.Offer(values[g])
			}()
		}
		wg.Wait()
		if c.Load() != want {
			t.Fatalf("trial %d: min = %d, want %d", trial, c.Load(), want)
		}
	}
}

func TestMaxMinOfferReturn(t *testing.T) {
	var mx MaxCell
	if !mx.Offer(4) {
		t.Fatal("Offer(4) on zero MaxCell rejected")
	}
	if mx.Offer(4) || mx.Offer(3) {
		t.Fatal("non-improving offer accepted")
	}
	mn := NewMinCell()
	if !mn.Offer(4) {
		t.Fatal("Offer(4) on fresh MinCell rejected")
	}
	if mn.Offer(4) || mn.Offer(5) {
		t.Fatal("non-improving offer accepted")
	}
	mn.Reset()
	if mn.Load() != ^uint32(0) {
		t.Fatal("MinCell Reset did not restore identity")
	}
}

func TestMutexArrayLastWriterWins(t *testing.T) {
	const goroutines = 32
	m := NewMutexArray(1)
	if m.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", m.Len())
	}
	var target uint64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			// Multi-word payload simulated by writing twice inside the
			// critical section; mutual exclusion must keep halves paired.
			m.Do(0, func() {
				v := uint64(g + 1)
				target = v<<32 | v
			})
		}()
	}
	wg.Wait()
	hi, lo := uint32(target>>32), uint32(target)
	if hi != lo {
		t.Fatalf("torn write through critical section: hi=%d lo=%d", hi, lo)
	}
	if hi < 1 || hi > goroutines {
		t.Fatalf("final value %d out of range", hi)
	}
}

func TestMutexArrayExplicitLocks(t *testing.T) {
	m := NewMutexArray(2)
	m.Lock(0)
	locked1 := make(chan struct{})
	go func() {
		m.Lock(1) // independent target must not block
		m.Unlock(1)
		close(locked1)
	}()
	<-locked1
	m.Unlock(0)
	m.Lock(0) // re-acquire after unlock
	m.Unlock(0)
}
