package cw

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestCellZeroValueNeverWritten(t *testing.T) {
	var c Cell
	if got := c.Round(); got != 0 {
		t.Fatalf("zero cell Round() = %d, want 0", got)
	}
	if c.Written(1) {
		t.Fatal("zero cell reports Written(1)")
	}
}

func TestCellTryClaimSequential(t *testing.T) {
	var c Cell
	if !c.TryClaim(1) {
		t.Fatal("first TryClaim(1) on fresh cell failed")
	}
	if c.TryClaim(1) {
		t.Fatal("second TryClaim(1) succeeded; winner must be unique")
	}
	if !c.Written(1) {
		t.Fatal("cell not marked written for round 1")
	}
	if c.Written(2) {
		t.Fatal("cell marked written for round 2 before any round-2 claim")
	}
	if !c.TryClaim(2) {
		t.Fatal("TryClaim(2) after round 1 failed")
	}
	if c.Round() != 2 {
		t.Fatalf("Round() = %d, want 2", c.Round())
	}
}

func TestCellTryClaimRejectsStaleRound(t *testing.T) {
	var c Cell
	if !c.TryClaim(5) {
		t.Fatal("TryClaim(5) failed")
	}
	// Equal and smaller rounds must both fail without modifying the cell.
	for _, r := range []uint32{5, 4, 1} {
		if c.TryClaim(r) {
			t.Fatalf("TryClaim(%d) succeeded after round 5 committed", r)
		}
	}
	if c.Round() != 5 {
		t.Fatalf("stale claims modified the cell: Round() = %d, want 5", c.Round())
	}
}

func TestCellRoundsMaySkip(t *testing.T) {
	var c Cell
	// Kernels often use loop iterations as round ids; a cell untouched for
	// many iterations must still accept a later round directly.
	if !c.TryClaim(1) {
		t.Fatal("TryClaim(1) failed")
	}
	if !c.TryClaim(100) {
		t.Fatal("TryClaim(100) failed after round 1")
	}
	if c.Round() != 100 {
		t.Fatalf("Round() = %d, want 100", c.Round())
	}
}

func TestCellReset(t *testing.T) {
	var c Cell
	c.TryClaim(7)
	c.Reset()
	if c.Round() != 0 {
		t.Fatalf("Round() after Reset = %d, want 0", c.Round())
	}
	if !c.TryClaim(1) {
		t.Fatal("TryClaim(1) after Reset failed")
	}
}

// exactly-one-winner is the fundamental safety property of every selection
// method: among G goroutines racing on the same cell in the same round,
// exactly one observes success.
func TestCellExactlyOneWinnerPerRound(t *testing.T) {
	const goroutines = 64
	const rounds = 200
	var c Cell
	for r := uint32(1); r <= rounds; r++ {
		var winners atomic.Int32
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer done.Done()
				start.Wait()
				if c.TryClaim(r) {
					winners.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if w := winners.Load(); w != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", r, w)
		}
		if !c.Written(r) {
			t.Fatalf("round %d: cell not marked written", r)
		}
	}
}

func TestCellClaimExactlyOneWinnerPerRound(t *testing.T) {
	const goroutines = 64
	const rounds = 100
	var c Cell
	for r := uint32(1); r <= rounds; r++ {
		var winners atomic.Int32
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer done.Done()
				start.Wait()
				if c.Claim(r) {
					winners.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if w := winners.Load(); w != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", r, w)
		}
	}
}

// Claim tolerates concurrent claimers from different rounds: the cell ends
// at the maximum round, every round has at most one winner, and the maximum
// round claimed by a winner equals the cell's final state.
func TestCellClaimMixedRounds(t *testing.T) {
	const goroutines = 64
	var c Cell
	wonRound := make([]atomic.Uint32, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer done.Done()
			start.Wait()
			r := uint32(g%8) + 1 // rounds 1..8 racing
			if c.Claim(r) {
				wonRound[g].Store(r)
			}
		}()
	}
	start.Done()
	done.Wait()

	perRound := map[uint32]int{}
	var maxWon uint32
	for g := range wonRound {
		if r := wonRound[g].Load(); r != 0 {
			perRound[r]++
			if r > maxWon {
				maxWon = r
			}
		}
	}
	for r, n := range perRound {
		if n != 1 {
			t.Fatalf("round %d has %d winners, want 1", r, n)
		}
	}
	if maxWon == 0 {
		t.Fatal("no winner at all")
	}
	if got := c.Round(); got != maxWon {
		t.Fatalf("cell final round %d != max winning round %d", got, maxWon)
	}
}

func TestCellTryClaimNoCheckUniqueWinner(t *testing.T) {
	const goroutines = 64
	const rounds = 100
	var c Cell
	for r := uint32(1); r <= rounds; r++ {
		var winners atomic.Int32
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer done.Done()
				start.Wait()
				if c.TryClaimNoCheck(r) {
					winners.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if w := winners.Load(); w != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", r, w)
		}
	}
}

func TestCell64(t *testing.T) {
	var c Cell64
	if !c.TryClaim(1) {
		t.Fatal("TryClaim(1) failed")
	}
	if c.TryClaim(1) {
		t.Fatal("duplicate winner for round 1")
	}
	if !c.Claim(1 << 40) {
		t.Fatal("Claim(2^40) failed")
	}
	if c.Round() != 1<<40 {
		t.Fatalf("Round() = %d, want 2^40", c.Round())
	}
	if !c.Written(1 << 40) {
		t.Fatal("Written(2^40) false")
	}
	c.Reset()
	if c.Round() != 0 {
		t.Fatal("Reset did not clear Cell64")
	}
}

func TestCell64ExactlyOneWinner(t *testing.T) {
	const goroutines = 64
	var c Cell64
	var winners atomic.Int32
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer done.Done()
			start.Wait()
			if c.TryClaim(1) {
				winners.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()
	if w := winners.Load(); w != 1 {
		t.Fatalf("%d winners, want exactly 1", w)
	}
}
