package cw

import (
	"sync"
	"testing"
)

func TestCountingCellMirrorsSemantics(t *testing.T) {
	var ops OpCounts
	c := NewCountingCell(&ops)
	if !c.TryClaim(1) {
		t.Fatal("first claim failed")
	}
	if c.TryClaim(1) {
		t.Fatal("duplicate winner")
	}
	if !c.TryClaim(5) {
		t.Fatal("later round failed")
	}
	if c.Round() != 5 {
		t.Fatalf("Round() = %d, want 5", c.Round())
	}
	loads, rmws, wins := ops.Snapshot()
	// 3 claims: 3 loads; attempt 2 fails the pre-check (no RMW): 2 RMWs,
	// both winning.
	if loads != 3 || rmws != 2 || wins != 2 {
		t.Fatalf("counts = (%d,%d,%d), want (3,2,2)", loads, rmws, wins)
	}
	c.Reset()
	if c.Round() != 0 {
		t.Fatal("Reset did not clear cell")
	}
	ops.Reset()
	if l, r, w := ops.Snapshot(); l|r|w != 0 {
		t.Fatal("ops.Reset did not clear counters")
	}
}

func TestCountingGateMirrorsSemantics(t *testing.T) {
	var ops OpCounts
	g := NewCountingGate(&ops)
	if !g.TryEnter() {
		t.Fatal("first enter failed")
	}
	for i := 0; i < 9; i++ {
		if g.TryEnter() {
			t.Fatal("duplicate winner")
		}
	}
	loads, rmws, wins := ops.Snapshot()
	// Plain gatekeeper: every attempt is an RMW, no loads.
	if loads != 0 || rmws != 10 || wins != 1 {
		t.Fatalf("counts = (%d,%d,%d), want (0,10,1)", loads, rmws, wins)
	}

	ops.Reset()
	g.Reset()
	if !g.TryEnterChecked() {
		t.Fatal("checked enter failed after reset")
	}
	for i := 0; i < 9; i++ {
		if g.TryEnterChecked() {
			t.Fatal("duplicate checked winner")
		}
	}
	loads, rmws, wins = ops.Snapshot()
	// Checked: every attempt loads; only the winner's attempt RMWs.
	if loads != 10 || rmws != 1 || wins != 1 {
		t.Fatalf("checked counts = (%d,%d,%d), want (10,1,1)", loads, rmws, wins)
	}
}

// The Section 6 claim in miniature: with W concurrent writers on one cell,
// CAS-LT's RMW count is bounded by the writers that can race before a
// winner exists (at most W, typically far fewer), while the gatekeeper
// executes exactly W RMWs — always.
func TestCountingSectionSixBounds(t *testing.T) {
	const writers = 64
	var cellOps, gateOps OpCounts
	c := NewCountingCell(&cellOps)
	g := NewCountingGate(&gateOps)

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(2 * writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer done.Done()
			start.Wait()
			c.TryClaim(1)
		}()
		go func() {
			defer done.Done()
			start.Wait()
			g.TryEnter()
		}()
	}
	start.Done()
	done.Wait()

	_, gateRMWs, gateWins := gateOps.Snapshot()
	if gateRMWs != writers {
		t.Fatalf("gatekeeper RMWs = %d, want exactly %d", gateRMWs, writers)
	}
	if gateWins != 1 {
		t.Fatalf("gatekeeper wins = %d", gateWins)
	}
	cellLoads, cellRMWs, cellWins := cellOps.Snapshot()
	if cellLoads != writers {
		t.Fatalf("caslt loads = %d, want %d", cellLoads, writers)
	}
	if cellWins != 1 {
		t.Fatalf("caslt wins = %d", cellWins)
	}
	if cellRMWs > gateRMWs {
		t.Fatalf("caslt RMWs (%d) exceed gatekeeper RMWs (%d)", cellRMWs, gateRMWs)
	}
	if cellRMWs < 1 {
		t.Fatal("caslt executed no RMW at all")
	}
}

func TestCountingCellNoCheckCountsEveryRMW(t *testing.T) {
	var ops OpCounts
	c := NewCountingCell(&ops)
	c.TryClaimNoCheck(1)
	c.TryClaimNoCheck(1)
	c.TryClaimNoCheck(1)
	_, rmws, wins := ops.Snapshot()
	if rmws != 3 {
		t.Fatalf("nocheck RMWs = %d, want 3 (the ablation's point)", rmws)
	}
	if wins != 1 {
		t.Fatalf("nocheck wins = %d, want 1", wins)
	}
}
