package cw

// Method identifies one of the concurrent-write implementations compared by
// the paper (plus the baselines added for ablations). Kernels in
// internal/alg provide one specialized variant per method, exactly as the
// paper wrote one OpenMP version per method; the Resolver interface below
// additionally exposes the methods behind a uniform API for library users
// who prefer genericity over the last measure of performance.
type Method int

const (
	// CASLT is the paper's contribution: round-stamped
	// compare-and-swap-if-less-than with a load pre-check and no
	// re-initialization between rounds.
	CASLT Method = iota
	// Gatekeeper is the atomic prefix-sum method (Figure 2): every attempt
	// performs a fetch-and-add; the gatekeeper array must be re-zeroed
	// between rounds.
	Gatekeeper
	// GatekeeperChecked is Gatekeeper with the load pre-check mitigation
	// the paper suggests in Section 5.
	GatekeeperChecked
	// Naive issues every write and relies on the memory system to
	// serialize them. It is safe only for common concurrent writes of
	// single machine words and is therefore rejected by resolvers guarding
	// arbitrary writes; kernels use it only where the paper does.
	Naive
	// Mutex wraps each target in a critical section — the "trivial but
	// bad" baseline.
	Mutex
)

// Methods lists all methods in presentation order.
var Methods = []Method{CASLT, Gatekeeper, GatekeeperChecked, Naive, Mutex}

// String names the method as the -methods flag and the JSON rows spell
// it ("caslt", "gatekeeper", ...).
func (m Method) String() string {
	switch m {
	case CASLT:
		return "caslt"
	case Gatekeeper:
		return "gatekeeper"
	case GatekeeperChecked:
		return "gatekeeper-checked"
	case Naive:
		return "naive"
	case Mutex:
		return "mutex"
	default:
		return "unknown-method"
	}
}

// SafeForArbitrary reports whether the method preserves arbitrary-CW
// semantics (exactly one writer's complete, untorn payload survives). Naive
// is safe only for common CW of single words.
func (m Method) SafeForArbitrary() bool { return m != Naive }

// NeedsReset reports whether the method requires a re-initialization pass
// over its auxiliary array between concurrent-write rounds.
func (m Method) NeedsReset() bool { return m == Gatekeeper || m == GatekeeperChecked }

// ParseMethod converts a method name (as produced by String) back to a
// Method. It returns false for unknown names.
func ParseMethod(s string) (Method, bool) {
	for _, m := range Methods {
		if m.String() == s {
			return m, true
		}
	}
	return 0, false
}

// Resolver coordinates concurrent writes over n targets behind a uniform
// interface. Exactly one Do call per (target, round) executes its write
// function, except for the Mutex method, where every Do executes its write
// serially (last writer wins — still a valid arbitrary outcome), and the
// Naive method, where every Do executes its write concurrently (safe only
// for common CW).
//
// Rounds must be ≥ 1 and monotone per target, and a synchronization point
// must separate a round's writes from dependent reads and from the next
// round — the same discipline the paper requires. For methods with
// NeedsReset, the caller must invoke ResetRange over all targets between
// rounds (sharding the range over workers as desired).
type Resolver interface {
	// Method identifies the underlying implementation.
	Method() Method
	// Len returns the number of targets.
	Len() int
	// Do executes write if the caller wins target i's concurrent write for
	// the given round, and reports whether it did.
	Do(i int, round uint32, write func()) bool
	// DoOutcome is Do reporting how the attempt resolved, for the metrics
	// layer: OutcomeSkip when a pre-check avoided the atomic, OutcomeWin /
	// OutcomeLoss otherwise. Methods without winner selection report every
	// call as OutcomeWin (Naive: every write runs; Mutex: every write runs
	// serially and the last one survives).
	DoOutcome(i int, round uint32, write func()) Outcome
	// ResetRange prepares targets [lo, hi) for the next round, for methods
	// that need it; it is a no-op otherwise.
	ResetRange(lo, hi int)
}

// NewResolver returns a Resolver over n targets for the given method, with
// auxiliary state (if any) in the given layout.
func NewResolver(m Method, n int, layout Layout) Resolver {
	switch m {
	case CASLT:
		return &casltResolver{a: NewArray(n, layout)}
	case Gatekeeper:
		return &gateResolver{g: NewGateArray(n, layout), checked: false}
	case GatekeeperChecked:
		return &gateResolver{g: NewGateArray(n, layout), checked: true}
	case Naive:
		return naiveResolver{n: n}
	case Mutex:
		return &mutexResolver{m: NewMutexArray(n)}
	default:
		panic("cw: unknown method " + m.String())
	}
}

type casltResolver struct{ a *Array }

func (r *casltResolver) Method() Method { return CASLT }
func (r *casltResolver) Len() int       { return r.a.Len() }
func (r *casltResolver) Do(i int, round uint32, write func()) bool {
	if r.a.TryClaim(i, round) {
		write()
		return true
	}
	return false
}
func (r *casltResolver) DoOutcome(i int, round uint32, write func()) Outcome {
	o := r.a.TryClaimOutcome(i, round)
	if o == OutcomeWin {
		write()
	}
	return o
}
func (r *casltResolver) ResetRange(lo, hi int) {} // CAS-LT never needs reinitialization.

type gateResolver struct {
	g       *GateArray
	checked bool
}

func (r *gateResolver) Method() Method {
	if r.checked {
		return GatekeeperChecked
	}
	return Gatekeeper
}
func (r *gateResolver) Len() int { return r.g.Len() }
func (r *gateResolver) Do(i int, round uint32, write func()) bool {
	var won bool
	if r.checked {
		won = r.g.TryEnterChecked(i)
	} else {
		won = r.g.TryEnter(i)
	}
	if won {
		write()
	}
	return won
}
func (r *gateResolver) DoOutcome(i int, round uint32, write func()) Outcome {
	var o Outcome
	if r.checked {
		o = r.g.TryEnterCheckedOutcome(i)
	} else {
		o = r.g.TryEnterOutcome(i)
	}
	if o == OutcomeWin {
		write()
	}
	return o
}
func (r *gateResolver) ResetRange(lo, hi int) { r.g.ResetRange(lo, hi) }

type naiveResolver struct{ n int }

func (r naiveResolver) Method() Method { return Naive }
func (r naiveResolver) Len() int       { return r.n }
func (r naiveResolver) Do(i int, round uint32, write func()) bool {
	write()
	return true
}
func (r naiveResolver) DoOutcome(i int, round uint32, write func()) Outcome {
	write()
	return OutcomeWin
}
func (r naiveResolver) ResetRange(lo, hi int) {}

type mutexResolver struct{ m *MutexArray }

func (r *mutexResolver) Method() Method { return Mutex }
func (r *mutexResolver) Len() int       { return r.m.Len() }
func (r *mutexResolver) Do(i int, round uint32, write func()) bool {
	r.m.Do(i, write)
	return true
}
func (r *mutexResolver) DoOutcome(i int, round uint32, write func()) Outcome {
	r.m.Do(i, write)
	return OutcomeWin
}
func (r *mutexResolver) ResetRange(lo, hi int) {}
