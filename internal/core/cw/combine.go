package cw

import "sync/atomic"

// This file implements combining concurrent writes: every writer's value is
// folded into the target with an associative, commutative operator instead
// of one writer being selected. Combining CW is strictly stronger than
// common/arbitrary CW (either can be simulated by combining with "first" or
// "any" semantics) and is the natural CRCW extension the paper's conclusion
// points to for reduction-heavy kernels.

// AdderCell combines concurrent writes by addition (Fetch&Add semantics).
// The zero value holds 0 and is ready to use.
type AdderCell struct {
	v atomic.Uint64
}

// Add folds delta into the cell and returns the value before the add.
func (c *AdderCell) Add(delta uint64) uint64 { return c.v.Add(delta) - delta }

// Load returns the current sum. Only meaningful as a final value after a
// synchronization point.
func (c *AdderCell) Load() uint64 { return c.v.Load() }

// Reset restores 0. It must not race with Add.
func (c *AdderCell) Reset() { c.v.Store(0) }

// MaxCell combines concurrent writes by maximum, with a bounded CAS loop.
// The zero value holds 0 and is ready to use for non-negative data.
type MaxCell struct {
	v atomic.Uint32
}

// Offer folds value into the running maximum and reports whether it raised
// the maximum.
func (c *MaxCell) Offer(value uint32) bool {
	for {
		cur := c.v.Load()
		if cur >= value {
			return false
		}
		if c.v.CompareAndSwap(cur, value) {
			return true
		}
	}
}

// Load returns the current maximum. Only meaningful as a final value after
// a synchronization point.
func (c *MaxCell) Load() uint32 { return c.v.Load() }

// Reset restores 0. It must not race with Offer.
func (c *MaxCell) Reset() { c.v.Store(0) }

// MinCell combines concurrent writes by minimum, with a bounded CAS loop.
// The zero value is NOT ready to use: call Reset first (or construct via
// NewMinCell), which installs MaxUint32 as the identity element.
type MinCell struct {
	v atomic.Uint32
}

// NewMinCell returns a MinCell holding the identity element.
func NewMinCell() *MinCell {
	c := &MinCell{}
	c.Reset()
	return c
}

// Offer folds value into the running minimum and reports whether it lowered
// the minimum.
func (c *MinCell) Offer(value uint32) bool {
	for {
		cur := c.v.Load()
		if cur <= value {
			return false
		}
		if c.v.CompareAndSwap(cur, value) {
			return true
		}
	}
}

// Load returns the current minimum. Only meaningful as a final value after
// a synchronization point.
func (c *MinCell) Load() uint32 { return c.v.Load() }

// Reset restores the identity element MaxUint32. It must not race with
// Offer.
func (c *MinCell) Reset() { c.v.Store(^uint32(0)) }
