package cw

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestArrayLayouts(t *testing.T) {
	for _, layout := range []Layout{Packed, PaddedLayout} {
		a := NewArray(16, layout)
		if a.Len() != 16 {
			t.Fatalf("layout %v: Len() = %d, want 16", layout, a.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if !a.TryClaim(i, 1) {
				t.Fatalf("layout %v: TryClaim(%d, 1) failed on fresh array", layout, i)
			}
			if a.TryClaim(i, 1) {
				t.Fatalf("layout %v: duplicate winner on cell %d", layout, i)
			}
			if !a.Written(i, 1) {
				t.Fatalf("layout %v: cell %d not written", layout, i)
			}
		}
		// Cells are independent: round 2 on even cells only.
		for i := 0; i < a.Len(); i += 2 {
			if !a.Claim(i, 2) {
				t.Fatalf("layout %v: Claim(%d, 2) failed", layout, i)
			}
		}
		for i := 0; i < a.Len(); i++ {
			wantRound := uint32(1)
			if i%2 == 0 {
				wantRound = 2
			}
			if got := a.Cell(i).Round(); got != wantRound {
				t.Fatalf("layout %v: cell %d round = %d, want %d", layout, i, got, wantRound)
			}
		}
	}
}

func TestArrayResetRange(t *testing.T) {
	a := NewArray(10, Packed)
	for i := 0; i < 10; i++ {
		a.TryClaim(i, 3)
	}
	a.ResetRange(2, 5)
	for i := 0; i < 10; i++ {
		want := uint32(3)
		if i >= 2 && i < 5 {
			want = 0
		}
		if got := a.Cell(i).Round(); got != want {
			t.Fatalf("cell %d round = %d, want %d", i, got, want)
		}
	}
}

func TestPaddedLayoutSpansCacheLines(t *testing.T) {
	a := NewArray(4, PaddedLayout)
	c0 := uintptr(unsafe.Pointer(a.Cell(0)))
	c1 := uintptr(unsafe.Pointer(a.Cell(1)))
	if d := c1 - c0; d < CacheLineBytes {
		t.Fatalf("padded cells %d bytes apart, want >= %d", d, CacheLineBytes)
	}
	p := NewArray(4, Packed)
	p0 := uintptr(unsafe.Pointer(p.Cell(0)))
	p1 := uintptr(unsafe.Pointer(p.Cell(1)))
	if d := p1 - p0; d != unsafe.Sizeof(Cell{}) {
		t.Fatalf("packed cells %d bytes apart, want %d", d, unsafe.Sizeof(Cell{}))
	}
}

// Concurrent claims on distinct cells never interfere: every cell gets
// exactly one winner even when all cells are contended simultaneously.
func TestArrayConcurrentPerCellWinners(t *testing.T) {
	const cells = 32
	const claimersPerCell = 16
	for _, layout := range []Layout{Packed, PaddedLayout} {
		a := NewArray(cells, layout)
		winners := make([]atomic.Int32, cells)
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(cells * claimersPerCell)
		for i := 0; i < cells; i++ {
			for j := 0; j < claimersPerCell; j++ {
				i := i
				go func() {
					defer done.Done()
					start.Wait()
					if a.TryClaim(i, 1) {
						winners[i].Add(1)
					}
				}()
			}
		}
		start.Done()
		done.Wait()
		for i := 0; i < cells; i++ {
			if w := winners[i].Load(); w != 1 {
				t.Fatalf("layout %v: cell %d has %d winners, want 1", layout, i, w)
			}
		}
	}
}
