package cw

import "sync/atomic"

// Gate is the gatekeeper (atomic prefix-sum) conflict-resolution word of
// Vishkin, Caragea and Lee, as reproduced in the paper's Figure 2: every
// thread attempting the concurrent write performs an atomic fetch-and-add on
// the gatekeeper, and the single thread that observed zero wins.
//
// The zero value is an open gate. After a concurrent-write round completes,
// the gate must be re-zeroed (Reset) before the guarded target can host
// another concurrent write — the O(N)-work re-initialization pass that the
// paper identifies as one of the method's two fundamental costs. The other
// is that every attempt executes an atomic read-modify-write even long after
// a winner exists, serializing all attempts on the cell's cache line.
//
// Gate is a PRODUCTION path: the gatekeeper and gatekeeper-checked kernel
// variants and resolvers run through it in timed benchmarks. The counting
// twin in counting.go (CountingGate) is test/analysis-only.
type Gate struct {
	n atomic.Uint32
}

// TryEnter performs the atomic capture `x = gatekeeper; gatekeeper++` and
// reports whether the caller saw zero, i.e. won the concurrent write. It is
// the paper's canConWriteAtomic (Figure 2).
func (g *Gate) TryEnter() bool {
	return g.n.Add(1) == 1
}

// TryEnterChecked is TryEnter with the load pre-check the paper suggests as
// a mitigation: once the gatekeeper is observed non-zero the atomic
// instruction is skipped entirely. A winner still exists and is unique; only
// the losers' fetch-and-adds are (mostly) avoided.
func (g *Gate) TryEnterChecked() bool {
	if g.n.Load() != 0 {
		return false
	}
	return g.n.Add(1) == 1
}

// Entered reports whether any thread has won this gate since the last Reset.
// It is only meaningful after a synchronization point.
func (g *Gate) Entered() bool { return g.n.Load() != 0 }

// Attempts returns the number of TryEnter calls (and of TryEnterChecked
// calls that reached the atomic) since the last Reset. It is only meaningful
// after a synchronization point; the paper's method does not use it, but it
// is handy in tests and instrumentation.
func (g *Gate) Attempts() uint32 { return g.n.Load() }

// Reset re-opens the gate. It must not race with TryEnter; kernels call it
// in a dedicated parallel pass between rounds, after a barrier.
func (g *Gate) Reset() { g.n.Store(0) }
