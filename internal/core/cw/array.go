package cw

// CacheLineBytes is the assumed size of one cache line, used by the padded
// array layouts. 64 bytes is correct for every x86 part the paper targets
// and for the large majority of 64-bit ARM parts.
const CacheLineBytes = 64

// Layout selects the memory layout of an auxiliary-word array.
type Layout int

const (
	// Packed stores one 4-byte auxiliary word per element, the layout used
	// by the paper's kernels (`unsigned RoundWritten[N]`). Sixteen cells
	// share a cache line, so claims on neighbouring cells contend.
	Packed Layout = iota
	// PaddedLayout stores each auxiliary word on its own cache line,
	// eliminating false sharing at a 16x memory cost. Provided for the
	// padding ablation.
	PaddedLayout
)

// String names the layout ("packed", "padded").
func (l Layout) String() string {
	switch l {
	case Packed:
		return "packed"
	case PaddedLayout:
		return "padded"
	default:
		return "unknown-layout"
	}
}

// layoutStride returns the element spacing, in Cell-sized (4-byte) units,
// of the given layout: 1 for Packed, one cell per cache line for
// PaddedLayout. Both array types below store their cells in a single slice
// indexed i*stride, so the per-access layout decision is a multiply rather
// than a branch — the claim loops of every kernel go through Cell/Gate on
// each probe, and the old two-slice representation re-tested `padded != nil`
// on every one of them.
func layoutStride(layout Layout) int {
	if layout == PaddedLayout {
		return CacheLineBytes / 4
	}
	return 1
}

// Array is a fixed-size array of CAS-LT cells, one per concurrent-write
// target, in either packed or cache-line-padded layout. It is what a kernel
// allocates as `unsigned RoundWritten[N]` in the paper's Figure 3(a).
type Array struct {
	cells  []Cell
	n      int
	stride int
}

// NewArray returns an n-cell array in the given layout, with every cell in
// the never-written state.
func NewArray(n int, layout Layout) *Array {
	stride := layoutStride(layout)
	return &Array{cells: make([]Cell, n*stride), n: n, stride: stride}
}

// Len returns the number of cells.
func (a *Array) Len() int { return a.n }

// Cell returns cell i.
func (a *Array) Cell(i int) *Cell { return &a.cells[i*a.stride] }

// TryClaim applies Cell.TryClaim to cell i.
func (a *Array) TryClaim(i int, round uint32) bool { return a.Cell(i).TryClaim(round) }

// Claim applies Cell.Claim to cell i.
func (a *Array) Claim(i int, round uint32) bool { return a.Cell(i).Claim(round) }

// Written reports whether cell i was claimed in the given round. Only
// meaningful after a synchronization point.
func (a *Array) Written(i int, round uint32) bool { return a.Cell(i).Written(round) }

// ResetRange returns cells [lo, hi) to the never-written state. CAS-LT
// kernels do not need this between rounds; it exists for recycling arrays
// across independent kernel executions. Callers may shard the range over
// workers; distinct shards touch distinct cells.
func (a *Array) ResetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		a.Cell(i).Reset()
	}
}

// GateArray is a fixed-size array of gatekeeper words, the
// `unsigned gatekeeper[N]` of the paper's Figure 3(b).
type GateArray struct {
	gates  []Gate
	n      int
	stride int
}

// NewGateArray returns an n-gate array in the given layout with every gate
// open.
func NewGateArray(n int, layout Layout) *GateArray {
	stride := layoutStride(layout)
	return &GateArray{gates: make([]Gate, n*stride), n: n, stride: stride}
}

// Len returns the number of gates.
func (g *GateArray) Len() int { return g.n }

// Gate returns gate i.
func (g *GateArray) Gate(i int) *Gate { return &g.gates[i*g.stride] }

// TryEnter applies Gate.TryEnter to gate i.
func (g *GateArray) TryEnter(i int) bool { return g.Gate(i).TryEnter() }

// TryEnterChecked applies Gate.TryEnterChecked to gate i.
func (g *GateArray) TryEnterChecked(i int) bool { return g.Gate(i).TryEnterChecked() }

// ResetRange re-opens gates [lo, hi). This is the per-round
// re-initialization pass of the gatekeeper method (Figure 3(b) lines 34-35);
// kernels shard it across workers between a barrier and the next round.
func (g *GateArray) ResetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		g.Gate(i).Reset()
	}
}
