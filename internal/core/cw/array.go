package cw

// CacheLineBytes is the assumed size of one cache line, used by the padded
// array layouts. 64 bytes is correct for every x86 part the paper targets
// and for the large majority of 64-bit ARM parts.
const CacheLineBytes = 64

// Layout selects the memory layout of an auxiliary-word array.
type Layout int

const (
	// Packed stores one 4-byte auxiliary word per element, the layout used
	// by the paper's kernels (`unsigned RoundWritten[N]`). Sixteen cells
	// share a cache line, so claims on neighbouring cells contend.
	Packed Layout = iota
	// PaddedLayout stores each auxiliary word on its own cache line,
	// eliminating false sharing at a 16x memory cost. Provided for the
	// padding ablation.
	PaddedLayout
)

func (l Layout) String() string {
	switch l {
	case Packed:
		return "packed"
	case PaddedLayout:
		return "padded"
	default:
		return "unknown-layout"
	}
}

type paddedCell struct {
	Cell
	_ [CacheLineBytes - 4]byte
}

type paddedGate struct {
	Gate
	_ [CacheLineBytes - 4]byte
}

// Array is a fixed-size array of CAS-LT cells, one per concurrent-write
// target, in either packed or cache-line-padded layout. It is what a kernel
// allocates as `unsigned RoundWritten[N]` in the paper's Figure 3(a).
type Array struct {
	packed []Cell
	padded []paddedCell
}

// NewArray returns an n-cell array in the given layout, with every cell in
// the never-written state.
func NewArray(n int, layout Layout) *Array {
	a := &Array{}
	if layout == PaddedLayout {
		a.padded = make([]paddedCell, n)
	} else {
		a.packed = make([]Cell, n)
	}
	return a
}

// Len returns the number of cells.
func (a *Array) Len() int {
	if a.padded != nil {
		return len(a.padded)
	}
	return len(a.packed)
}

// Cell returns cell i.
func (a *Array) Cell(i int) *Cell {
	if a.padded != nil {
		return &a.padded[i].Cell
	}
	return &a.packed[i]
}

// TryClaim applies Cell.TryClaim to cell i.
func (a *Array) TryClaim(i int, round uint32) bool { return a.Cell(i).TryClaim(round) }

// Claim applies Cell.Claim to cell i.
func (a *Array) Claim(i int, round uint32) bool { return a.Cell(i).Claim(round) }

// Written reports whether cell i was claimed in the given round. Only
// meaningful after a synchronization point.
func (a *Array) Written(i int, round uint32) bool { return a.Cell(i).Written(round) }

// ResetRange returns cells [lo, hi) to the never-written state. CAS-LT
// kernels do not need this between rounds; it exists for recycling arrays
// across independent kernel executions. Callers may shard the range over
// workers; distinct shards touch distinct cells.
func (a *Array) ResetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		a.Cell(i).Reset()
	}
}

// GateArray is a fixed-size array of gatekeeper words, the
// `unsigned gatekeeper[N]` of the paper's Figure 3(b).
type GateArray struct {
	packed []Gate
	padded []paddedGate
}

// NewGateArray returns an n-gate array in the given layout with every gate
// open.
func NewGateArray(n int, layout Layout) *GateArray {
	g := &GateArray{}
	if layout == PaddedLayout {
		g.padded = make([]paddedGate, n)
	} else {
		g.packed = make([]Gate, n)
	}
	return g
}

// Len returns the number of gates.
func (g *GateArray) Len() int {
	if g.padded != nil {
		return len(g.padded)
	}
	return len(g.packed)
}

// Gate returns gate i.
func (g *GateArray) Gate(i int) *Gate {
	if g.padded != nil {
		return &g.padded[i].Gate
	}
	return &g.packed[i]
}

// TryEnter applies Gate.TryEnter to gate i.
func (g *GateArray) TryEnter(i int) bool { return g.Gate(i).TryEnter() }

// TryEnterChecked applies Gate.TryEnterChecked to gate i.
func (g *GateArray) TryEnterChecked(i int) bool { return g.Gate(i).TryEnterChecked() }

// ResetRange re-opens gates [lo, hi). This is the per-round
// re-initialization pass of the gatekeeper method (Figure 3(b) lines 34-35);
// kernels shard it across workers between a barrier and the next round.
func (g *GateArray) ResetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		g.Gate(i).Reset()
	}
}
