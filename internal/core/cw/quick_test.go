package cw

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// Property: for any ascending sequence of rounds applied sequentially to one
// cell, every TryClaim of a strictly larger round than the cell's state wins,
// every other fails, and the final state is the largest round applied.
func TestQuickCellSequentialSemantics(t *testing.T) {
	f := func(roundsRaw []uint16) bool {
		var c Cell
		var state uint32
		for _, rr := range roundsRaw {
			r := uint32(rr) + 1
			won := c.TryClaim(r)
			wantWin := r > state
			if won != wantWin {
				return false
			}
			if wantWin {
				state = r
			}
			if c.Round() != state {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: under any number of concurrent claimers (1..64) and any round
// sequence length, each round executed in lock-step produces exactly one
// winner, for every selection resolver.
func TestQuickLockStepExactlyOneWinner(t *testing.T) {
	selection := []Method{CASLT, Gatekeeper, GatekeeperChecked}
	f := func(gSeed uint8, roundsSeed uint8) bool {
		goroutines := int(gSeed)%63 + 2
		rounds := int(roundsSeed)%20 + 1
		for _, m := range selection {
			r := NewResolver(m, 1, Packed)
			for round := uint32(1); round <= uint32(rounds); round++ {
				var winners atomic.Int32
				var start, done sync.WaitGroup
				start.Add(1)
				done.Add(goroutines)
				for g := 0; g < goroutines; g++ {
					go func() {
						defer done.Done()
						start.Wait()
						r.Do(0, round, func() { winners.Add(1) })
					}()
				}
				start.Done()
				done.Wait()
				if winners.Load() != 1 {
					return false
				}
				r.ResetRange(0, 1)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Claim with arbitrary (not lock-step) concurrent rounds still
// yields at most one winner per round id and a final state equal to the
// maximum won round.
func TestQuickClaimMixedRounds(t *testing.T) {
	f := func(seed int64, gSeed uint8) bool {
		goroutines := int(gSeed)%48 + 2
		rng := rand.New(rand.NewSource(seed))
		rounds := make([]uint32, goroutines)
		for i := range rounds {
			rounds[i] = uint32(rng.Intn(10)) + 1
		}
		var c Cell
		won := make([]bool, goroutines)
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			go func() {
				defer done.Done()
				start.Wait()
				won[g] = c.Claim(rounds[g])
			}()
		}
		start.Done()
		done.Wait()

		perRound := map[uint32]int{}
		var maxWon uint32
		for g := range won {
			if won[g] {
				perRound[rounds[g]]++
				if rounds[g] > maxWon {
					maxWon = rounds[g]
				}
			}
		}
		for _, n := range perRound {
			if n != 1 {
				return false
			}
		}
		return maxWon != 0 && c.Round() == maxWon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a PriorityMinCell fed any multiset of (value, id) offers from
// concurrent goroutines ends at the lexicographic minimum.
func TestQuickPriorityMinIsMin(t *testing.T) {
	f := func(valsRaw []uint16) bool {
		if len(valsRaw) == 0 {
			return true
		}
		if len(valsRaw) > 64 {
			valsRaw = valsRaw[:64]
		}
		var c PriorityMinCell
		c.Reset()
		var wg sync.WaitGroup
		wg.Add(len(valsRaw))
		for i, v := range valsRaw {
			i, v := i, v
			go func() {
				defer wg.Done()
				c.Offer(uint32(v), uint32(i))
			}()
		}
		wg.Wait()

		type pair struct{ v, id uint32 }
		all := make([]pair, len(valsRaw))
		for i, v := range valsRaw {
			all[i] = pair{uint32(v), uint32(i)}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].v != all[b].v {
				return all[a].v < all[b].v
			}
			return all[a].id < all[b].id
		})
		return c.Value() == all[0].v && c.ID() == all[0].id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: AdderCell is a faithful combining write — the final sum equals
// the sum of all deltas regardless of interleaving.
func TestQuickAdderSum(t *testing.T) {
	f := func(deltasRaw []uint8) bool {
		if len(deltasRaw) > 64 {
			deltasRaw = deltasRaw[:64]
		}
		var c AdderCell
		var want uint64
		for _, d := range deltasRaw {
			want += uint64(d)
		}
		var wg sync.WaitGroup
		wg.Add(len(deltasRaw))
		for _, d := range deltasRaw {
			d := d
			go func() {
				defer wg.Done()
				c.Add(uint64(d))
			}()
		}
		wg.Wait()
		return c.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
