package cw

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// bigPayload is deliberately multiple machine words: a torn commit would
// mix fields from different writers.
type bigPayload struct {
	A, B, C, D uint64
	Tag        string
}

func payloadFor(id int) bigPayload {
	v := uint64(id + 1)
	return bigPayload{A: v, B: v * 2, C: v * 3, D: v * 4, Tag: "writer"}
}

func payloadConsistent(p bigPayload) bool {
	return p.B == 2*p.A && p.C == 3*p.A && p.D == 4*p.A && p.Tag == "writer"
}

func TestSlotSequential(t *testing.T) {
	var s Slot[bigPayload]
	if s.Round() != 0 {
		t.Fatal("fresh slot has nonzero round")
	}
	if !s.TryWrite(1, payloadFor(0)) {
		t.Fatal("first write failed")
	}
	if s.TryWrite(1, payloadFor(1)) {
		t.Fatal("second writer won the same round")
	}
	if got := s.Load(); got.A != 1 {
		t.Fatalf("Load = %+v, want writer 0's payload", got)
	}
	if !s.Written(1) || s.Written(2) {
		t.Fatal("Written bookkeeping wrong")
	}
	if !s.TryWrite(3, payloadFor(7)) {
		t.Fatal("later round failed")
	}
	if got := s.Load(); got.A != 8 {
		t.Fatalf("Load after round 3 = %+v", got)
	}
	s.Reset()
	if s.Round() != 0 || s.Load().A != 0 || s.Load().Tag != "" {
		t.Fatal("Reset did not zero slot")
	}
}

// The paper's core safety claim for guarded multi-word writes: under heavy
// contention the committed struct is always exactly one writer's struct.
func TestSlotConcurrentUntorn(t *testing.T) {
	const goroutines = 64
	const rounds = 50
	var s Slot[bigPayload]
	for r := uint32(1); r <= rounds; r++ {
		var wins atomic.Int32
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			go func() {
				defer done.Done()
				start.Wait()
				if s.TryWrite(r, payloadFor(g)) {
					wins.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if w := wins.Load(); w != 1 {
			t.Fatalf("round %d: %d winners", r, w)
		}
		if p := s.Load(); !payloadConsistent(p) {
			t.Fatalf("round %d: torn payload %+v", r, p)
		}
	}
}

func TestSlotArray(t *testing.T) {
	a := NewSlotArray[bigPayload](8)
	if a.Len() != 8 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < 8; i++ {
		if !a.TryWrite(i, 1, payloadFor(i)) {
			t.Fatalf("slot %d first write failed", i)
		}
		if a.TryWrite(i, 1, payloadFor(99)) {
			t.Fatalf("slot %d double win", i)
		}
	}
	for i := 0; i < 8; i++ {
		if got := a.Load(i); got.A != uint64(i+1) {
			t.Fatalf("slot %d holds %+v", i, got)
		}
		if !a.Written(i, 1) {
			t.Fatalf("slot %d not written", i)
		}
	}
	a.ResetRange(2, 5)
	for i := 2; i < 5; i++ {
		if a.Slot(i).Round() != 0 {
			t.Fatalf("slot %d not reset", i)
		}
	}
	if a.Slot(1).Round() == 0 || a.Slot(5).Round() == 0 {
		t.Fatal("ResetRange touched slots outside the range")
	}
}

// Slots work with reference types too; the committed value is the winner's
// slice header, never a mix.
func TestSlotSliceType(t *testing.T) {
	const goroutines = 32
	var s Slot[[]int]
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer done.Done()
			start.Wait()
			s.TryWrite(1, []int{g, g, g})
		}()
	}
	start.Done()
	done.Wait()
	v := s.Load()
	if len(v) != 3 || v[0] != v[1] || v[1] != v[2] {
		t.Fatalf("committed slice inconsistent: %v", v)
	}
}

// Property: for any concurrency level and round count, slot payloads are
// never torn and each round has exactly one winner.
func TestQuickSlotUntorn(t *testing.T) {
	f := func(gRaw, roundsRaw uint8) bool {
		goroutines := int(gRaw)%32 + 2
		rounds := int(roundsRaw)%10 + 1
		var s Slot[bigPayload]
		for r := 1; r <= rounds; r++ {
			var wins atomic.Int32
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				g := g
				go func() {
					defer wg.Done()
					if s.TryWrite(uint32(r), payloadFor(g*r)) {
						wins.Add(1)
					}
				}()
			}
			wg.Wait()
			if wins.Load() != 1 || !payloadConsistent(s.Load()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
