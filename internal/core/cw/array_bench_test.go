package cw

import "testing"

// Micro-benchmarks for the Array.Cell hot path. Every kernel claim loop
// resolves cells through Array.Cell, so the accessor's per-call cost rides
// on every CAS-LT probe. The single-slice + stride representation makes the
// layout decision a multiply; these benchmarks compare it against the
// unavoidable baseline of indexing a raw []Cell directly, for both layouts
// and for the load-only Written probe (the loser fast path).

const benchCells = 1 << 12

func benchmarkArrayTryClaim(b *testing.B, layout Layout) {
	a := NewArray(benchCells, layout)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Round 1+i/benchCells rises slowly, so most probes lose at the
		// load pre-check — the kernel steady state.
		a.TryClaim(i&(benchCells-1), uint32(1+i/benchCells))
	}
}

func BenchmarkArrayTryClaimPacked(b *testing.B) { benchmarkArrayTryClaim(b, Packed) }
func BenchmarkArrayTryClaimPadded(b *testing.B) { benchmarkArrayTryClaim(b, PaddedLayout) }

func BenchmarkRawSliceTryClaim(b *testing.B) {
	cells := make([]Cell, benchCells)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells[i&(benchCells-1)].TryClaim(uint32(1 + i/benchCells))
	}
}

func benchmarkArrayWritten(b *testing.B, layout Layout) {
	a := NewArray(benchCells, layout)
	for i := 0; i < benchCells; i += 2 {
		a.TryClaim(i, 1)
	}
	b.ReportAllocs()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = a.Written(i&(benchCells-1), 1)
	}
	_ = sink
}

func BenchmarkArrayWrittenPacked(b *testing.B) { benchmarkArrayWritten(b, Packed) }
func BenchmarkArrayWrittenPadded(b *testing.B) { benchmarkArrayWritten(b, PaddedLayout) }
