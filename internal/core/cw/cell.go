package cw

import "sync/atomic"

// Cell is the CAS-LT auxiliary word guarding one concurrent-write target.
//
// The zero value is ready to use and corresponds to "never written"; callers
// must therefore use round ids starting at 1. Round ids must be monotone over
// time for a given cell: a concurrent-write step with round r must happen
// after every step with round < r has completed (in lock-step kernels this is
// guaranteed by the barrier between rounds).
//
// Cell is a uint32, matching the paper's `unsigned lastRoundUpdated`. For
// kernels that may exceed 2^32-1 rounds in the lifetime of one cell, use
// Cell64.
type Cell struct {
	last atomic.Uint32
}

// TryClaim reports whether the calling thread wins the concurrent write of
// the given round on this cell. It is the paper's canConWriteCASLT
// (Figure 1): a load pre-check followed by at most one compare-and-swap.
//
// Exactly one thread among all those calling TryClaim with the same round
// receives true; every other caller receives false. Threads that arrive
// after a winner exists fail the pre-check without executing an atomic
// read-modify-write instruction.
//
// TryClaim is single-shot: if the CAS fails it does not retry, which is
// correct when all concurrent callers use the same round id (the lock-step
// discipline). If writers from different rounds may race on the same cell,
// use Claim instead.
func (c *Cell) TryClaim(round uint32) bool {
	cur := c.last.Load()
	if cur >= round {
		return false
	}
	return c.last.CompareAndSwap(cur, round)
}

// Claim is a retrying variant of TryClaim that tolerates concurrent callers
// using different round ids, as long as round ids are globally monotone
// (a caller never uses a round id smaller than one already committed on this
// cell by a happens-before ordered step). It returns true iff the caller is
// the thread that raised the cell to its round id.
func (c *Cell) Claim(round uint32) bool {
	for {
		cur := c.last.Load()
		if cur >= round {
			return false
		}
		if c.last.CompareAndSwap(cur, round) {
			return true
		}
	}
}

// TryClaimNoCheck is TryClaim without the line-6 load pre-check: it always
// executes the compare-and-swap. It exists only to quantify, in the ablation
// benchmarks, what the pre-check saves; kernels should use TryClaim.
//
// Like TryClaim it requires lock-step round discipline.
func (c *Cell) TryClaimNoCheck(round uint32) bool {
	cur := c.last.Load()
	// The CAS runs unconditionally. When cur == round (a winner already
	// exists) the CAS may trivially succeed by writing round over round;
	// the cur != round test rejects that case so exactly one caller wins.
	ok := c.last.CompareAndSwap(cur, round)
	return ok && cur != round
}

// Round returns the id of the last round in which the guarded target was
// written, or 0 if it never was. It is only meaningful after a
// synchronization point.
func (c *Cell) Round() uint32 { return c.last.Load() }

// Written reports whether the guarded target was written in the given round.
// It is only meaningful after a synchronization point.
func (c *Cell) Written(round uint32) bool { return c.last.Load() == round }

// Reset returns the cell to its never-written state. Unlike the gatekeeper
// method, CAS-LT kernels never need Reset between rounds — they advance the
// round id instead. Reset exists so long-lived cells can be recycled across
// independent kernel executions without tracking a base round.
func (c *Cell) Reset() { c.last.Store(0) }

// Cell64 is Cell with a 64-bit round counter, for cells that live across an
// effectively unbounded number of rounds.
type Cell64 struct {
	last atomic.Uint64
}

// TryClaim is the 64-bit equivalent of Cell.TryClaim.
func (c *Cell64) TryClaim(round uint64) bool {
	cur := c.last.Load()
	if cur >= round {
		return false
	}
	return c.last.CompareAndSwap(cur, round)
}

// Claim is the 64-bit equivalent of Cell.Claim.
func (c *Cell64) Claim(round uint64) bool {
	for {
		cur := c.last.Load()
		if cur >= round {
			return false
		}
		if c.last.CompareAndSwap(cur, round) {
			return true
		}
	}
}

// Round returns the id of the last round in which the guarded target was
// written, or 0 if it never was.
func (c *Cell64) Round() uint64 { return c.last.Load() }

// Written reports whether the guarded target was written in the given round.
func (c *Cell64) Written(round uint64) bool { return c.last.Load() == round }

// Reset returns the cell to its never-written state.
func (c *Cell64) Reset() { c.last.Store(0) }
