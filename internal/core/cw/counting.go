package cw

import "sync/atomic"

// This file provides instrumented variants of the selection primitives
// that count the memory operations each method executes. They exist to
// validate the paper's Section 6 asymptotics empirically: for P_PRAM
// virtual processors attempting one concurrent write to a single cell,
//
//   - the gatekeeper method executes one atomic read-modify-write per
//     attempt — Θ(P_PRAM) RMWs, the serialization the paper analyses;
//   - the checked gatekeeper replaces most of those with plain loads;
//   - CAS-LT executes at most one CAS per thread that passes the load
//     pre-check before a winner commits — O(P_Phys) RMWs regardless of
//     P_PRAM — and plain loads for everyone else.
//
// The instrumented types mirror the uninstrumented semantics exactly but
// pay two extra atomic increments per operation; use them for analysis,
// never for timing.
//
// This file is a TEST/ANALYSIS-ONLY path: nothing in it is reached by the
// timed kernels or the production resolvers. The production entry points
// are Cell/Gate (cell.go, gatekeeper.go) and NewResolver (resolver.go);
// live-run measurement without the per-operation atomic cost is the job of
// internal/core/metrics, whose per-worker shards these global atomic
// counters predate.

// OpCounts aggregates the memory operations executed through an
// instrumented primitive. Counters are cumulative; read them at a
// synchronization point.
type OpCounts struct {
	// Loads counts plain atomic loads (the pre-checks).
	Loads atomic.Uint64
	// RMWs counts atomic read-modify-writes (CAS or fetch-and-add),
	// successful or not.
	RMWs atomic.Uint64
	// Wins counts selections won.
	Wins atomic.Uint64
}

// Snapshot returns the current (loads, rmws, wins).
func (c *OpCounts) Snapshot() (loads, rmws, wins uint64) {
	return c.Loads.Load(), c.RMWs.Load(), c.Wins.Load()
}

// Reset zeroes the counters. It must not race with instrumented
// operations.
func (c *OpCounts) Reset() {
	c.Loads.Store(0)
	c.RMWs.Store(0)
	c.Wins.Store(0)
}

// CountingCell is a CAS-LT cell that records its operation counts in an
// external OpCounts (shared across cells of one experiment).
type CountingCell struct {
	last atomic.Uint32
	ops  *OpCounts
}

// NewCountingCell returns a fresh instrumented cell recording into ops.
func NewCountingCell(ops *OpCounts) *CountingCell {
	return &CountingCell{ops: ops}
}

// TryClaim mirrors Cell.TryClaim with operation counting.
func (c *CountingCell) TryClaim(round uint32) bool {
	c.ops.Loads.Add(1)
	cur := c.last.Load()
	if cur >= round {
		return false
	}
	c.ops.RMWs.Add(1)
	won := c.last.CompareAndSwap(cur, round)
	if won {
		c.ops.Wins.Add(1)
	}
	return won
}

// TryClaimNoCheck mirrors Cell.TryClaimNoCheck with operation counting.
func (c *CountingCell) TryClaimNoCheck(round uint32) bool {
	c.ops.Loads.Add(1)
	cur := c.last.Load()
	c.ops.RMWs.Add(1)
	ok := c.last.CompareAndSwap(cur, round)
	won := ok && cur != round
	if won {
		c.ops.Wins.Add(1)
	}
	return won
}

// Round mirrors Cell.Round (uncounted: it is not part of the protocol).
func (c *CountingCell) Round() uint32 { return c.last.Load() }

// Reset returns the cell (not the counters) to the never-written state.
func (c *CountingCell) Reset() { c.last.Store(0) }

// NewCountingResolver returns a Resolver whose selection operations are
// counted into ops. Supported methods: CASLT, Gatekeeper and
// GatekeeperChecked — the three whose operation mix the paper's Section 6
// analyses; other methods panic. Use it with the kernels' RunResolver
// entry points to measure the atomic traffic of a full algorithm run.
func NewCountingResolver(m Method, n int, ops *OpCounts) Resolver {
	switch m {
	case CASLT:
		cells := make([]CountingCell, n)
		for i := range cells {
			cells[i].ops = ops
		}
		return &countingCellResolver{cells: cells}
	case Gatekeeper, GatekeeperChecked:
		gates := make([]CountingGate, n)
		for i := range gates {
			gates[i].ops = ops
		}
		return &countingGateResolver{gates: gates, checked: m == GatekeeperChecked}
	default:
		panic("cw: no counting resolver for method " + m.String())
	}
}

type countingCellResolver struct{ cells []CountingCell }

func (r *countingCellResolver) Method() Method { return CASLT }
func (r *countingCellResolver) Len() int       { return len(r.cells) }
func (r *countingCellResolver) Do(i int, round uint32, write func()) bool {
	if r.cells[i].TryClaim(round) {
		write()
		return true
	}
	return false
}
func (r *countingCellResolver) DoOutcome(i int, round uint32, write func()) Outcome {
	c := &r.cells[i]
	c.ops.Loads.Add(1)
	cur := c.last.Load()
	if cur >= round {
		return OutcomeSkip
	}
	c.ops.RMWs.Add(1)
	if c.last.CompareAndSwap(cur, round) {
		c.ops.Wins.Add(1)
		write()
		return OutcomeWin
	}
	return OutcomeLoss
}
func (r *countingCellResolver) ResetRange(lo, hi int) {}

type countingGateResolver struct {
	gates   []CountingGate
	checked bool
}

func (r *countingGateResolver) Method() Method {
	if r.checked {
		return GatekeeperChecked
	}
	return Gatekeeper
}
func (r *countingGateResolver) Len() int { return len(r.gates) }
func (r *countingGateResolver) Do(i int, round uint32, write func()) bool {
	var won bool
	if r.checked {
		won = r.gates[i].TryEnterChecked()
	} else {
		won = r.gates[i].TryEnter()
	}
	if won {
		write()
	}
	return won
}
func (r *countingGateResolver) DoOutcome(i int, round uint32, write func()) Outcome {
	g := &r.gates[i]
	if r.checked {
		g.ops.Loads.Add(1)
		if g.n.Load() != 0 {
			return OutcomeSkip
		}
	}
	g.ops.RMWs.Add(1)
	if g.n.Add(1) == 1 {
		g.ops.Wins.Add(1)
		write()
		return OutcomeWin
	}
	return OutcomeLoss
}
func (r *countingGateResolver) ResetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		r.gates[i].Reset()
	}
}

// CountingGate is a gatekeeper recording its operation counts.
type CountingGate struct {
	n   atomic.Uint32
	ops *OpCounts
}

// NewCountingGate returns a fresh instrumented gate recording into ops.
func NewCountingGate(ops *OpCounts) *CountingGate {
	return &CountingGate{ops: ops}
}

// TryEnter mirrors Gate.TryEnter with operation counting.
func (g *CountingGate) TryEnter() bool {
	g.ops.RMWs.Add(1)
	won := g.n.Add(1) == 1
	if won {
		g.ops.Wins.Add(1)
	}
	return won
}

// TryEnterChecked mirrors Gate.TryEnterChecked with operation counting.
func (g *CountingGate) TryEnterChecked() bool {
	g.ops.Loads.Add(1)
	if g.n.Load() != 0 {
		return false
	}
	g.ops.RMWs.Add(1)
	won := g.n.Add(1) == 1
	if won {
		g.ops.Wins.Add(1)
	}
	return won
}

// Reset re-opens the gate (not the counters). It must not race with
// TryEnter.
func (g *CountingGate) Reset() { g.n.Store(0) }
