package cw

// Outcome classifies one winner-selection attempt for the metrics layer
// (internal/core/metrics). The three values distinguish exactly what the
// paper's cost model distinguishes: whether an attempt executed an atomic
// read-modify-write at all, and if so, whether it won.
//
// The *Outcome variants of the selection primitives (Cell.TryClaimOutcome,
// Gate.TryEnterOutcome, Resolver.DoOutcome, ...) report an Outcome instead
// of a bare won/lost bool; they are otherwise identical to their boolean
// twins, and kernels that do not record metrics keep calling the boolean
// forms.
type Outcome uint8

const (
	// OutcomeSkip: the load pre-check observed an existing winner and the
	// attempt completed without executing an atomic read-modify-write.
	// This is the cheap late-arrival path of CAS-LT (Figure 1 line 6) and
	// of the checked gatekeeper; the unchecked gatekeeper never skips.
	OutcomeSkip Outcome = iota
	// OutcomeWin: the attempt executed its read-modify-write and won the
	// concurrent write.
	OutcomeWin
	// OutcomeLoss: the attempt executed its read-modify-write and lost
	// (another thread won the cell in the same round).
	OutcomeLoss
)

// Won reports whether the attempt won the concurrent write.
func (o Outcome) Won() bool { return o == OutcomeWin }

// String names the outcome ("win", "loss", "skip").
func (o Outcome) String() string {
	switch o {
	case OutcomeSkip:
		return "skip"
	case OutcomeWin:
		return "win"
	case OutcomeLoss:
		return "loss"
	default:
		return "unknown-outcome"
	}
}

// TryClaimOutcome is Cell.TryClaim reporting how the attempt resolved:
// OutcomeSkip when the pre-check failed (no atomic executed), OutcomeWin
// when the CAS succeeded, OutcomeLoss when the CAS was executed and failed.
// o.Won() is equivalent to what TryClaim would have returned.
func (c *Cell) TryClaimOutcome(round uint32) Outcome {
	cur := c.last.Load()
	if cur >= round {
		return OutcomeSkip
	}
	if c.last.CompareAndSwap(cur, round) {
		return OutcomeWin
	}
	return OutcomeLoss
}

// TryEnterOutcome is Gate.TryEnter reporting how the attempt resolved.
// The unchecked gatekeeper has no pre-check, so the outcome is never
// OutcomeSkip: every attempt executes the fetch-and-add.
func (g *Gate) TryEnterOutcome() Outcome {
	if g.n.Add(1) == 1 {
		return OutcomeWin
	}
	return OutcomeLoss
}

// TryEnterCheckedOutcome is Gate.TryEnterChecked reporting how the attempt
// resolved: OutcomeSkip when the load pre-check observed a closed gate.
func (g *Gate) TryEnterCheckedOutcome() Outcome {
	if g.n.Load() != 0 {
		return OutcomeSkip
	}
	if g.n.Add(1) == 1 {
		return OutcomeWin
	}
	return OutcomeLoss
}

// TryClaimOutcome applies Cell.TryClaimOutcome to cell i.
func (a *Array) TryClaimOutcome(i int, round uint32) Outcome {
	return a.Cell(i).TryClaimOutcome(round)
}

// TryEnterOutcome applies Gate.TryEnterOutcome to gate i.
func (g *GateArray) TryEnterOutcome(i int) Outcome {
	return g.Gate(i).TryEnterOutcome()
}

// TryEnterCheckedOutcome applies Gate.TryEnterCheckedOutcome to gate i.
func (g *GateArray) TryEnterCheckedOutcome(i int) Outcome {
	return g.Gate(i).TryEnterCheckedOutcome()
}
