package cw

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBitArrayBasics(t *testing.T) {
	b := NewBitArray(130) // three words: two full, one 2-bit tail
	if b.Len() != 130 {
		t.Fatalf("Len() = %d, want 130", b.Len())
	}
	if b.Words() != 3 {
		t.Fatalf("Words() = %d, want 3", b.Words())
	}
	for i := 0; i < b.Len(); i++ {
		if b.Test(i) {
			t.Fatalf("fresh bit %d set", i)
		}
	}
	// Set bits around word boundaries and check only they read back.
	set := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range set {
		b.Set(i)
		b.Set(i) // idempotent
	}
	want := make(map[int]bool, len(set))
	for _, i := range set {
		want[i] = true
	}
	for i := 0; i < b.Len(); i++ {
		if b.Test(i) != want[i] {
			t.Fatalf("bit %d = %v, want %v", i, b.Test(i), want[i])
		}
	}
}

func TestBitArrayTryClaimBit(t *testing.T) {
	b := NewBitArray(70)
	for i := 0; i < b.Len(); i++ {
		if !b.TryClaimBit(i) {
			t.Fatalf("TryClaimBit(%d) lost on a fresh bit", i)
		}
		if b.TryClaimBit(i) {
			t.Fatalf("duplicate winner on bit %d", i)
		}
		if !b.Test(i) {
			t.Fatalf("bit %d not set after claim", i)
		}
	}
	// Outcome parity: a set bit skips, a fresh bit wins.
	if got := b.TryClaimBitOutcome(5); got != OutcomeSkip {
		t.Fatalf("TryClaimBitOutcome on set bit = %v, want skip", got)
	}
	c := NewBitArray(8)
	if got := c.TryClaimBitOutcome(3); got != OutcomeWin {
		t.Fatalf("TryClaimBitOutcome on fresh bit = %v, want win", got)
	}
	if !c.Test(3) {
		t.Fatal("winning outcome did not set the bit")
	}
}

func TestBitArrayResetRange(t *testing.T) {
	const n = 256
	cases := [][2]int{{0, n}, {0, 64}, {64, 128}, {3, 61}, {3, 64}, {60, 70},
		{63, 65}, {0, 1}, {255, 256}, {1, 255}, {128, 128}}
	for _, c := range cases {
		b := NewBitArray(n)
		for i := 0; i < n; i++ {
			b.Set(i)
		}
		b.ResetRange(c[0], c[1])
		for i := 0; i < n; i++ {
			want := i < c[0] || i >= c[1]
			if b.Test(i) != want {
				t.Fatalf("ResetRange(%d, %d): bit %d = %v, want %v", c[0], c[1], i, b.Test(i), want)
			}
		}
	}
}

// Sharded clears meeting mid-word must not lose each other's bits: clear
// [0, 100) and [100, 256) concurrently, with survivors outside.
func TestBitArrayResetRangeSharded(t *testing.T) {
	const n = 300
	b := NewBitArray(n)
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	var wg sync.WaitGroup
	for _, r := range [][2]int{{0, 100}, {100, 256}} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.ResetRange(r[0], r[1])
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		want := i >= 256
		if b.Test(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, b.Test(i), want)
		}
	}
}

// Concurrent TryClaimBit on bits sharing one word: exactly one winner per
// bit per round even though all claims RMW the same uint64, mirroring
// TestArrayConcurrentPerCellWinners. Rounds are separated by a full clear.
func TestBitArrayConcurrentPerBitWinners(t *testing.T) {
	const bits = 64 // all in one word: the maximum-aliasing case
	const claimersPerBit = 16
	const rounds = 3
	b := NewBitArray(bits)
	for r := 0; r < rounds; r++ {
		winners := make([]atomic.Int32, bits)
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(bits * claimersPerBit)
		for i := 0; i < bits; i++ {
			for j := 0; j < claimersPerBit; j++ {
				i := i
				go func() {
					defer done.Done()
					start.Wait()
					if b.TryClaimBit(i) {
						winners[i].Add(1)
					}
				}()
			}
		}
		start.Done()
		done.Wait()
		for i := 0; i < bits; i++ {
			if w := winners[i].Load(); w != 1 {
				t.Fatalf("round %d: bit %d has %d winners, want 1", r, i, w)
			}
		}
		b.ResetRange(0, bits)
	}
}

// Set is idempotent and race-free under concurrent writers to every bit of
// a shared word; afterwards all bits read set.
func TestBitArrayConcurrentSetIdempotent(t *testing.T) {
	const bits = 64
	const writersPerBit = 8
	b := NewBitArray(bits)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(bits * writersPerBit)
	for i := 0; i < bits; i++ {
		for j := 0; j < writersPerBit; j++ {
			i := i
			go func() {
				defer done.Done()
				start.Wait()
				b.Set(i)
				b.Set(i)
			}()
		}
	}
	start.Done()
	done.Wait()
	for i := 0; i < bits; i++ {
		if !b.Test(i) {
			t.Fatalf("bit %d clear after concurrent Sets", i)
		}
	}
}
