package cw

import (
	"math"
	"sync/atomic"
)

// PriorityMinCell implements the Priority CRCW rule for one target: among
// all values offered in a round, the smallest survives, with ties broken by
// the smallest writer id. The paper lists Priority as the strongest CW rule
// and notes that weaker rules (arbitrary, common) can simulate on top of it
// in O(1); this cell is the package's extension beyond the paper's two rules.
//
// The cell packs (value, id) into one 64-bit word — value in the high 32
// bits, id in the low 32 — so that the natural uint64 ordering is exactly
// the (value, id) lexicographic priority, and improves it with a bounded CAS
// loop. The zero value of the cell is NOT ready to use: call Reset (or
// NewPriorityMinArray) first, which installs the identity element
// (MaxUint32, MaxUint32).
type PriorityMinCell struct {
	w atomic.Uint64
}

func packPriority(value, id uint32) uint64 { return uint64(value)<<32 | uint64(id) }

// Offer submits (value, id) for the current round and reports whether the
// offer improved the cell's current best. A true return does NOT mean the
// caller is the round's final winner — a later, smaller offer may still
// displace it; the winner is read with Value/ID after the synchronization
// point that ends the round.
func (c *PriorityMinCell) Offer(value, id uint32) bool {
	next := packPriority(value, id)
	for {
		cur := c.w.Load()
		if cur <= next {
			return false
		}
		if c.w.CompareAndSwap(cur, next) {
			return true
		}
	}
}

// Value returns the smallest value offered since the last Reset, or
// math.MaxUint32 if none. Only meaningful after a synchronization point.
func (c *PriorityMinCell) Value() uint32 { return uint32(c.w.Load() >> 32) }

// ID returns the id of the winning writer, or math.MaxUint32 if none.
// Only meaningful after a synchronization point.
func (c *PriorityMinCell) ID() uint32 { return uint32(c.w.Load()) }

// Empty reports whether no offer was made since the last Reset.
func (c *PriorityMinCell) Empty() bool { return c.w.Load() == math.MaxUint64 }

// Reset restores the identity element, making the cell ready for a new
// round. It must not race with Offer.
func (c *PriorityMinCell) Reset() { c.w.Store(math.MaxUint64) }

// PriorityMinArray is a fixed-size array of PriorityMinCells, all
// initialized ready for use.
type PriorityMinArray struct {
	cells []PriorityMinCell
}

// NewPriorityMinArray returns an n-cell priority array with every cell
// holding the identity element.
func NewPriorityMinArray(n int) *PriorityMinArray {
	a := &PriorityMinArray{cells: make([]PriorityMinCell, n)}
	a.ResetRange(0, n)
	return a
}

// Len returns the number of cells.
func (a *PriorityMinArray) Len() int { return len(a.cells) }

// Cell returns cell i.
func (a *PriorityMinArray) Cell(i int) *PriorityMinCell { return &a.cells[i] }

// Offer applies PriorityMinCell.Offer to cell i.
func (a *PriorityMinArray) Offer(i int, value, id uint32) bool { return a.cells[i].Offer(value, id) }

// ResetRange restores the identity element in cells [lo, hi). Like the
// gatekeeper method, priority cells need re-initialization between rounds.
func (a *PriorityMinArray) ResetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		a.cells[i].Reset()
	}
}

// PriorityMaxCell is PriorityMinCell with the opposite order: the largest
// value survives, ties broken by the largest id. Its zero value is ready to
// use for non-negative offers because the identity element is (0, 0) — note
// that an actual offer of (0, 0) is therefore indistinguishable from "no
// offer"; use Offered ids > 0 or values > 0 when that matters.
type PriorityMaxCell struct {
	w atomic.Uint64
}

// Offer submits (value, id) and reports whether it improved the current
// best. The final winner is read with Value/ID after a synchronization
// point.
func (c *PriorityMaxCell) Offer(value, id uint32) bool {
	next := packPriority(value, id)
	for {
		cur := c.w.Load()
		if cur >= next {
			return false
		}
		if c.w.CompareAndSwap(cur, next) {
			return true
		}
	}
}

// Value returns the largest value offered since the last Reset.
func (c *PriorityMaxCell) Value() uint32 { return uint32(c.w.Load() >> 32) }

// ID returns the id of the winning writer.
func (c *PriorityMaxCell) ID() uint32 { return uint32(c.w.Load()) }

// Reset restores the identity element (0, 0). It must not race with Offer.
func (c *PriorityMaxCell) Reset() { c.w.Store(0) }
