// Package cw implements the concurrent-write (CW) conflict-resolution
// primitives of the CRCW PRAM model on ordinary shared-memory multicores,
// following Ghanim, ElWasif and Bernholdt, "Implementing Arbitrary/Common
// Concurrent Writes of CRCW PRAM" (ICPP 2021).
//
// In the CRCW PRAM model, many processors may write the same memory cell in
// the same time step. A conflict-resolution rule decides which write is
// observed by subsequent reads:
//
//   - Common:    all writers write the same value, any of them may commit it.
//   - Arbitrary: writers may write different values; exactly one, chosen
//     arbitrarily, commits.
//   - Priority:  the writer with the highest priority (e.g. smallest value or
//     smallest processor id) commits.
//
// The paper's key primitive is CAS-LT (compare-and-swap-if-less-than), here
// the Cell type: one auxiliary word per concurrent-write target holding the
// id of the last round in which the target was written. A thread may perform
// the concurrent write for round r if and only if it observes the auxiliary
// word to be < r and then wins a single compare-and-swap raising it to r.
// Every other competitor — and, crucially, every thread arriving after a
// winner exists — fails the cheap load pre-check and never executes an atomic
// instruction at all. Advancing to the next round requires no
// re-initialization: callers simply use a larger round id, which in loop-based
// kernels is the loop counter and therefore free.
//
// For comparison the package also provides the two prior-practice mechanisms
// evaluated by the paper:
//
//   - Gate / GateChecked: the gatekeeper (atomic prefix-sum) method of
//     Vishkin et al. — every attempt performs an atomic fetch-and-add and the
//     thread that saw zero wins. The gatekeeper must be re-zeroed before the
//     cell can host another concurrent write, an O(N) parallel pass per round
//     for an N-cell kernel. GateChecked adds the load pre-check the paper
//     suggests as a mitigation.
//
//   - the naive method: issue all stores and let the cache-coherence
//     hardware serialize them. Safe only for common concurrent writes of a
//     single machine word (all writers store identical bytes); unsafe for
//     arbitrary writes and for multi-word payloads, where it can commit a
//     torn mixture of competing writes. See package memcheck for a checker
//     that detects such misuse.
//
//   - MutexArray: the "trivial but bad" critical-section implementation the
//     paper dismisses, kept as a baseline.
//
// Beyond the paper's two rules, PriorityMinCell/PriorityMaxCell implement the
// stronger Priority CRCW rule with a bounded CAS loop, and AdderCell /
// MaxCell / MinCell implement combining concurrent writes (Fetch&Add-style
// reductions), both listed by the paper as natural extensions.
//
// # Synchrony requirements
//
// Cell.TryClaim is the paper's Figure 1 verbatim: it is single-shot and is
// correct under the lock-step discipline the paper assumes — a
// synchronization barrier separates a concurrent-write step from any
// dependent read and from the next concurrent-write round, so all threads
// racing on one cell use the same round id. Cell.Claim is a retrying variant
// that additionally tolerates writers from different (monotone) rounds racing
// on the same cell, at the cost of a CAS loop; it is provided for relaxed,
// non-lock-step usage and for the ablation study.
package cw
