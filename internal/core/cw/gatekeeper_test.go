package cw

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGateSequential(t *testing.T) {
	var g Gate
	if g.Entered() {
		t.Fatal("fresh gate reports Entered")
	}
	if !g.TryEnter() {
		t.Fatal("first TryEnter failed")
	}
	if g.TryEnter() {
		t.Fatal("second TryEnter succeeded; winner must be unique")
	}
	if !g.Entered() {
		t.Fatal("gate not Entered after a win")
	}
	if g.Attempts() != 2 {
		t.Fatalf("Attempts() = %d, want 2", g.Attempts())
	}
	g.Reset()
	if g.Entered() {
		t.Fatal("gate still Entered after Reset")
	}
	if !g.TryEnter() {
		t.Fatal("TryEnter after Reset failed")
	}
}

func TestGateCheckedSequential(t *testing.T) {
	var g Gate
	if !g.TryEnterChecked() {
		t.Fatal("first TryEnterChecked failed")
	}
	if g.TryEnterChecked() {
		t.Fatal("second TryEnterChecked succeeded")
	}
	// The checked variant must skip the atomic once non-zero: attempts stay
	// at 1 no matter how many checked attempts follow.
	for i := 0; i < 100; i++ {
		g.TryEnterChecked()
	}
	if g.Attempts() != 1 {
		t.Fatalf("Attempts() = %d after checked losses, want 1 (pre-check must skip the atomic)", g.Attempts())
	}
}

func TestGateExactlyOneWinner(t *testing.T) {
	const goroutines = 64
	const rounds = 100
	var g Gate
	for r := 0; r < rounds; r++ {
		var winners atomic.Int32
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for i := 0; i < goroutines; i++ {
			go func() {
				defer done.Done()
				start.Wait()
				if g.TryEnter() {
					winners.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if w := winners.Load(); w != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", r, w)
		}
		g.Reset() // the reinitialization the method requires between rounds
	}
}

func TestGateCheckedExactlyOneWinner(t *testing.T) {
	const goroutines = 64
	const rounds = 100
	var g Gate
	for r := 0; r < rounds; r++ {
		var winners atomic.Int32
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for i := 0; i < goroutines; i++ {
			go func() {
				defer done.Done()
				start.Wait()
				if g.TryEnterChecked() {
					winners.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if w := winners.Load(); w != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", r, w)
		}
		g.Reset()
	}
}

func TestGateWithoutResetNoSecondWinner(t *testing.T) {
	// The defining limitation of the gatekeeper method: without the O(N)
	// reinitialization pass, the next round on the same cell has no winner
	// at all — the write would be lost.
	var g Gate
	if !g.TryEnter() {
		t.Fatal("round 1 winner missing")
	}
	won := false
	for i := 0; i < 32; i++ {
		if g.TryEnter() {
			won = true
		}
	}
	if won {
		t.Fatal("gate produced a second winner without Reset")
	}
}

func TestGateArrayIndependentCells(t *testing.T) {
	for _, layout := range []Layout{Packed, PaddedLayout} {
		g := NewGateArray(8, layout)
		if g.Len() != 8 {
			t.Fatalf("layout %v: Len() = %d, want 8", layout, g.Len())
		}
		for i := 0; i < g.Len(); i++ {
			if !g.TryEnter(i) {
				t.Fatalf("layout %v: first TryEnter(%d) failed", layout, i)
			}
			if g.TryEnter(i) {
				t.Fatalf("layout %v: duplicate winner on gate %d", layout, i)
			}
		}
		g.ResetRange(0, 4)
		for i := 0; i < 4; i++ {
			if !g.TryEnterChecked(i) {
				t.Fatalf("layout %v: gate %d not reopened by ResetRange", layout, i)
			}
		}
		for i := 4; i < 8; i++ {
			if g.TryEnterChecked(i) {
				t.Fatalf("layout %v: gate %d outside ResetRange reopened", layout, i)
			}
		}
	}
}
