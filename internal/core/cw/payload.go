package cw

// This file provides typed concurrent-write targets for multi-word
// payloads. One of the paper's stated goals is a concurrent write "that
// supports concurrent write for modern language data structures such as
// structure and class copies": a torn mixture of two racing struct copies
// matches neither writer and is the core hazard of naive arbitrary writes
// (Section 4). A Slot pairs an arbitrary Go value with a CAS-LT cell so
// that exactly one writer per round commits its complete value.

// Slot is a concurrent-write target holding a value of any type. The zero
// value is an empty slot ready for round ids starting at 1.
//
// Writers call TryWrite inside a PRAM round; exactly one succeeds per
// round. Readers call Load after the synchronization point that ends the
// round — the usual PRAM discipline. Load must not race with TryWrite.
type Slot[T any] struct {
	cell Cell
	val  T
}

// TryWrite installs v if the caller wins the slot's concurrent write for
// the given round, and reports whether it did. Losers' values are
// discarded untouched — the payload can never tear.
func (s *Slot[T]) TryWrite(round uint32, v T) bool {
	if !s.cell.TryClaim(round) {
		return false
	}
	s.val = v
	return true
}

// Load returns the committed value. Only meaningful after a
// synchronization point; returns the zero T if no round ever wrote.
func (s *Slot[T]) Load() T { return s.val }

// Written reports whether the slot was written in the given round. Only
// meaningful after a synchronization point.
func (s *Slot[T]) Written(round uint32) bool { return s.cell.Written(round) }

// Round returns the last round that wrote the slot (0 = never).
func (s *Slot[T]) Round() uint32 { return s.cell.Round() }

// Reset empties the slot for reuse with round ids starting at 1 again.
// The stored value is zeroed so stale payloads cannot leak.
func (s *Slot[T]) Reset() {
	var zero T
	s.val = zero
	s.cell.Reset()
}

// SlotArray is a fixed array of typed concurrent-write targets sharing one
// round discipline, the multi-word analogue of Array.
type SlotArray[T any] struct {
	slots []Slot[T]
}

// NewSlotArray returns an n-slot array of empty slots.
func NewSlotArray[T any](n int) *SlotArray[T] {
	return &SlotArray[T]{slots: make([]Slot[T], n)}
}

// Len returns the number of slots.
func (a *SlotArray[T]) Len() int { return len(a.slots) }

// Slot returns slot i.
func (a *SlotArray[T]) Slot(i int) *Slot[T] { return &a.slots[i] }

// TryWrite applies Slot.TryWrite to slot i.
func (a *SlotArray[T]) TryWrite(i int, round uint32, v T) bool {
	return a.slots[i].TryWrite(round, v)
}

// Load applies Slot.Load to slot i.
func (a *SlotArray[T]) Load(i int) T { return a.slots[i].Load() }

// Written reports whether slot i was written in the given round.
func (a *SlotArray[T]) Written(i int, round uint32) bool { return a.slots[i].Written(round) }

// ResetRange empties slots [lo, hi). Like Array.ResetRange this is only
// needed when recycling across independent kernel executions, never
// between rounds.
func (a *SlotArray[T]) ResetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		a.slots[i].Reset()
	}
}
