package cw

import (
	"sync"
	"sync/atomic"
	"testing"

	"crcwpram/internal/race"
)

func TestMethodStringRoundTrip(t *testing.T) {
	for _, m := range Methods {
		got, ok := ParseMethod(m.String())
		if !ok || got != m {
			t.Fatalf("ParseMethod(%q) = (%v, %v), want (%v, true)", m.String(), got, ok, m)
		}
	}
	if _, ok := ParseMethod("bogus"); ok {
		t.Fatal("ParseMethod accepted bogus name")
	}
}

func TestMethodProperties(t *testing.T) {
	cases := []struct {
		m          Method
		safeArb    bool
		needsReset bool
	}{
		{CASLT, true, false},
		{Gatekeeper, true, true},
		{GatekeeperChecked, true, true},
		{Naive, false, false},
		{Mutex, true, false},
	}
	for _, c := range cases {
		if got := c.m.SafeForArbitrary(); got != c.safeArb {
			t.Errorf("%v.SafeForArbitrary() = %v, want %v", c.m, got, c.safeArb)
		}
		if got := c.m.NeedsReset(); got != c.needsReset {
			t.Errorf("%v.NeedsReset() = %v, want %v", c.m, got, c.needsReset)
		}
	}
}

func TestNewResolverMethodAndLen(t *testing.T) {
	for _, m := range Methods {
		r := NewResolver(m, 17, Packed)
		if r.Method() != m {
			t.Errorf("resolver for %v reports method %v", m, r.Method())
		}
		if r.Len() != 17 {
			t.Errorf("%v resolver Len() = %d, want 17", m, r.Len())
		}
	}
}

// Selection methods must produce exactly one executed write per (target,
// round); Naive and Mutex execute all writes by design.
func TestResolverWinnerSemantics(t *testing.T) {
	const goroutines = 32
	const targets = 8
	for _, m := range Methods {
		r := NewResolver(m, targets, Packed)
		for round := uint32(1); round <= 5; round++ {
			var executed [targets]atomic.Int32
			var start, done sync.WaitGroup
			start.Add(1)
			done.Add(goroutines * targets)
			for i := 0; i < targets; i++ {
				for g := 0; g < goroutines; g++ {
					i := i
					go func() {
						defer done.Done()
						start.Wait()
						r.Do(i, round, func() { executed[i].Add(1) })
					}()
				}
			}
			start.Done()
			done.Wait()
			for i := 0; i < targets; i++ {
				got := executed[i].Load()
				switch m {
				case Naive, Mutex:
					if got != goroutines {
						t.Fatalf("%v round %d target %d: %d writes executed, want all %d", m, round, i, got, goroutines)
					}
				default:
					if got != 1 {
						t.Fatalf("%v round %d target %d: %d writes executed, want exactly 1", m, round, i, got)
					}
				}
			}
			r.ResetRange(0, targets)
		}
	}
}

// Without ResetRange the gatekeeper methods lose all subsequent rounds; the
// CAS-LT resolver keeps working because advancing the round id is enough.
func TestResolverResetRequirement(t *testing.T) {
	for _, m := range []Method{CASLT, Gatekeeper, GatekeeperChecked} {
		r := NewResolver(m, 1, Packed)
		won1 := false
		r.Do(0, 1, func() { won1 = true })
		if !won1 {
			t.Fatalf("%v: no winner in round 1", m)
		}
		won2 := false
		r.Do(0, 2, func() { won2 = true })
		if m == CASLT && !won2 {
			t.Fatal("caslt: round 2 lost without reset; CAS-LT must not need reinitialization")
		}
		if m != CASLT && won2 {
			t.Fatalf("%v: round 2 won without reset; gatekeeper requires reinitialization", m)
		}
	}
}

// Arbitrary CW through a selection resolver is untorn: a two-word payload
// written under Do always holds a matched pair.
func TestResolverArbitraryWriteUntorn(t *testing.T) {
	const goroutines = 32
	methods := []Method{CASLT, Gatekeeper, GatekeeperChecked, Mutex}
	for _, m := range methods {
		r := NewResolver(m, 1, Packed)
		var a, b uint32 // the multi-word payload
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			go func() {
				defer done.Done()
				start.Wait()
				r.Do(0, 1, func() {
					v := uint32(g + 1)
					a = v
					b = v
				})
			}()
		}
		start.Done()
		done.Wait()
		if a != b || a == 0 {
			t.Fatalf("%v: torn or missing payload a=%d b=%d", m, a, b)
		}
	}
}

func TestNaiveResolverCommonWrite(t *testing.T) {
	if race.Enabled {
		t.Skip("naive variant is intentionally racy; skipped under -race")
	}
	const goroutines = 32
	r := NewResolver(Naive, 1, Packed)
	var flag uint32
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer done.Done()
			start.Wait()
			r.Do(0, 1, func() { flag = 1 }) // common CW: identical value
		}()
	}
	start.Done()
	done.Wait()
	if flag != 1 {
		t.Fatalf("flag = %d, want 1", flag)
	}
}

func TestNewResolverUnknownMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown method accepted")
		}
	}()
	NewResolver(Method(99), 1, Packed)
}

func TestUnknownEnumStrings(t *testing.T) {
	if Method(99).String() != "unknown-method" {
		t.Fatal("unknown method string wrong")
	}
	if Layout(99).String() != "unknown-layout" {
		t.Fatal("unknown layout string wrong")
	}
	if Packed.String() != "packed" || PaddedLayout.String() != "padded" {
		t.Fatal("layout strings wrong")
	}
}

func TestResolverPaddedLayout(t *testing.T) {
	for _, m := range Methods {
		r := NewResolver(m, 8, PaddedLayout)
		executed := 0
		r.Do(3, 1, func() { executed++ })
		if executed != 1 {
			t.Fatalf("%v padded: first Do did not execute", m)
		}
	}
}

func TestNewCountingResolverUnsupportedPanics(t *testing.T) {
	var ops OpCounts
	defer func() {
		if recover() == nil {
			t.Fatal("counting resolver for mutex accepted")
		}
	}()
	NewCountingResolver(Mutex, 1, &ops)
}

func TestCountingResolverSemantics(t *testing.T) {
	for _, m := range []Method{CASLT, Gatekeeper, GatekeeperChecked} {
		var ops OpCounts
		r := NewCountingResolver(m, 2, &ops)
		if r.Method() != m || r.Len() != 2 {
			t.Fatalf("%v: wrong method/len surface", m)
		}
		wins := 0
		for i := 0; i < 5; i++ {
			r.Do(0, 1, func() { wins++ })
		}
		if wins != 1 {
			t.Fatalf("%v: %d wins, want 1", m, wins)
		}
		r.ResetRange(0, 2)
		r.Do(0, 2, func() { wins++ })
		if wins != 2 {
			t.Fatalf("%v: round 2 after reset lost (wins=%d)", m, wins)
		}
		if _, _, w := ops.Snapshot(); w != 2 {
			t.Fatalf("%v: counted %d wins, want 2", m, w)
		}
	}
}
