package cw

import "sync/atomic"

// bitsPerWord is the packing factor of BitArray: one uint64 carries 64
// boolean common-write cells, so 512 cells share each 64-byte cache line
// (versus 16 for a Packed Array of 4-byte cells).
const bitsPerWord = 64

// BitArray is a bit-packed array of boolean common-concurrent-write cells:
// 64 cells per atomic.Uint64 word. It implements common CW for the special
// case where every writer stores the same value ("this bit is now set") —
// BFS visited flags, CC hook markers, matching proposal flags. Because the
// winning value is identical for all writers, a fetch-OR on the word is a
// complete common-write implementation: it needs no round stamp, no
// gatekeeper reinit, and the paper's arbitration question ("which writer's
// value survives?") is vacuous. Winner *selection* (who gets to execute the
// dependent exclusive writes) still matters, and TryClaimBit provides it by
// reporting whether the caller's OR was the one that flipped the bit.
//
// Cost model versus the word-per-cell CAS-LT Array. CAS-LT bounds executed
// RMWs at ≤P per cell per round (each of P workers attempts a cell at most
// once, and the load pre-check turns late arrivals into plain loads).
// BitArray keeps the per-*cell* bound — Test pre-check skips set bits with
// zero RMWs, and at most P workers race one bit — but 64 cells now alias
// one word, so the per-*word* bound weakens to ≤64P executed RMWs (every
// one of the 64 bits contended by all P workers in the same round). That is
// the price of packing; what it buys is a 32× cache-line density gain
// (512 vs 16 cells per line), so scan-heavy phases (the pull direction's
// membership probes, the accept phase's proposal filter) touch 64× fewer
// words and 32× fewer lines. Correctness is unaffected: an OR that loses
// the race still leaves the bit set to the common value; Set's discarded-
// result atomic Or compiles to a single wait-free LOCK OR on amd64, while
// TryClaimBit observes the old word and so pays a CAS loop.
type BitArray struct {
	words []atomic.Uint64
	n     int
}

// NewBitArray returns an n-bit array with every bit clear.
func NewBitArray(n int) *BitArray {
	return &BitArray{words: make([]atomic.Uint64, (n+bitsPerWord-1)/bitsPerWord), n: n}
}

// Len returns the number of bits (cells).
func (b *BitArray) Len() int { return b.n }

// Words returns the number of backing uint64 words.
func (b *BitArray) Words() int { return len(b.words) }

// Test reports whether bit i is set: one atomic load, the pre-check that
// lets late arrivals complete with zero RMWs (CAS-LT Figure 1 line 6 shape).
func (b *BitArray) Test(i int) bool {
	return b.words[i/bitsPerWord].Load()&(uint64(1)<<(uint(i)%bitsPerWord)) != 0
}

// Set sets bit i unconditionally — the pure common concurrent write. The
// fetch-OR's old value is discarded, which on amd64 compiles to one
// wait-free LOCK OR instruction (no CAS loop); concurrent Sets of any bits
// in the same word all land, and repeating Set is idempotent.
func (b *BitArray) Set(i int) {
	b.words[i/bitsPerWord].Or(uint64(1) << (uint(i) % bitsPerWord))
}

// TryClaimBit sets bit i and reports whether this call was the one that
// flipped it — the winner-selection form, the BitArray analogue of
// Array.TryClaim. The Test pre-check resolves late arrivals with a plain
// load and zero RMWs; otherwise a CAS loop ORs the bit in and the caller
// won exactly when the bit was clear in the word it swapped out. At most
// one caller per bit ever observes a win, under any interleaving.
//
// The loop is spelled out with CompareAndSwap rather than w.Or(mask) with
// the returned old value inspected: go1.24.0's inlined expansion of the
// Or-with-result intrinsic can clobber a register the caller holds a live
// value in (observed corrupting a loop counter in an enclosing kernel),
// while the CompareAndSwap intrinsic is sound. Semantically the two are
// identical — Or with an observed result lowers to this same CAS loop.
func (b *BitArray) TryClaimBit(i int) bool {
	w := &b.words[i/bitsPerWord]
	mask := uint64(1) << (uint(i) % bitsPerWord)
	for {
		old := w.Load()
		if old&mask != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|mask) {
			return true
		}
	}
}

// TryClaimBitOutcome is TryClaimBit reporting how the attempt resolved for
// the metrics layer: OutcomeSkip when the pre-check observed a set bit (no
// RMW executed), OutcomeWin when this call's OR flipped the bit,
// OutcomeLoss when the OR executed but another writer had already flipped
// it. o.Won() is equivalent to what TryClaimBit would have returned, so
// cas_attempts/precheck_skips aggregate exactly as they do for cw.Array.
func (b *BitArray) TryClaimBitOutcome(i int) Outcome {
	w := &b.words[i/bitsPerWord]
	mask := uint64(1) << (uint(i) % bitsPerWord)
	old := w.Load()
	if old&mask != 0 {
		return OutcomeSkip
	}
	for {
		if w.CompareAndSwap(old, old|mask) {
			return OutcomeWin
		}
		if old = w.Load(); old&mask != 0 {
			return OutcomeLoss
		}
	}
}

// ResetRange clears bits [lo, hi). Callers may shard a full clear over
// workers with arbitrary contiguous bit ranges: words fully inside the
// range are cleared with a plain atomic store, and a word that straddles a
// range boundary is cleared with an atomic AND of just this range's bits,
// so two workers meeting in the middle of a word never lose each other's
// clears. Like Array.ResetRange this is a between-rounds operation — it
// must not race concurrent Set/TryClaimBit on the same bits.
func (b *BitArray) ResetRange(lo, hi int) {
	if lo >= hi {
		return
	}
	first, last := lo/bitsPerWord, (hi-1)/bitsPerWord
	headMask := ^uint64(0) << (uint(lo) % bitsPerWord)
	tailMask := ^uint64(0) >> (bitsPerWord - 1 - uint(hi-1)%bitsPerWord)
	if first == last {
		if m := headMask & tailMask; m == ^uint64(0) {
			b.words[first].Store(0)
		} else {
			b.words[first].And(^m)
		}
		return
	}
	if headMask == ^uint64(0) {
		b.words[first].Store(0)
	} else {
		b.words[first].And(^headMask)
	}
	for w := first + 1; w < last; w++ {
		b.words[w].Store(0)
	}
	if tailMask == ^uint64(0) {
		b.words[last].Store(0)
	} else {
		b.words[last].And(^tailMask)
	}
}
