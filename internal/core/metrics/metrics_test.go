package metrics

import (
	"sync"
	"testing"
	"time"

	"crcwpram/internal/core/cw"
)

// TestNilSafety: the metrics-off path is a nil Recorder; every method must
// behave as a no-op and Claim must still return the kernel's won bool.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.P() != 0 {
		t.Fatal("nil recorder has workers")
	}
	sh := r.Shard(3)
	if sh != nil {
		t.Fatal("nil recorder returned a live shard")
	}
	if !sh.Claim(0, 1, cw.OutcomeWin) {
		t.Fatal("nil shard dropped a win")
	}
	if sh.Claim(0, 1, cw.OutcomeLoss) || sh.Claim(0, 1, cw.OutcomeSkip) {
		t.Fatal("nil shard invented a win")
	}
	sh.AddBusy(time.Second)
	sh.AddBarrierWait(time.Second)
	r.AddRoundTime(time.Second)
	r.AddRounds(5)
	r.EnableProbe(10)
	r.Reset()
	if s := r.Snapshot(); s.P != 0 || s.CASAttempts != 0 || s.Rounds != 0 ||
		s.BusyNs != 0 || s.BarrierWaitNs != 0 || s.RoundNs != 0 ||
		s.MaxCellClaims != 0 || len(s.WorkerBusyNs) != 0 {
		t.Fatalf("nil recorder snapshot not zero: %+v", s)
	}
}

// TestShardingMerge: each worker records into its own shard concurrently
// (as the machine's workers do between barriers); the snapshot after the
// join must be the exact sum. Run under -race this also proves the shards
// are genuinely disjoint.
func TestShardingMerge(t *testing.T) {
	const p, perWorker = 8, 10000
	r := NewRecorder(p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := r.Shard(w)
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0:
					sh.Claim(i, 1, cw.OutcomeWin)
				case 1:
					sh.Claim(i, 1, cw.OutcomeLoss)
				default:
					sh.Claim(i, 1, cw.OutcomeSkip)
				}
			}
			sh.AddBusy(time.Duration(w+1) * time.Millisecond)
			sh.AddBarrierWait(time.Duration(w+1) * time.Microsecond)
		}(w)
	}
	wg.Wait()

	s := r.Snapshot()
	wantWins := uint64(p * ((perWorker + 2) / 3))
	wantLosses := uint64(p * ((perWorker + 1) / 3))
	wantSkips := uint64(p * (perWorker / 3))
	if s.P != p || s.CASWins != wantWins || s.CASLosses != wantLosses || s.PrecheckSkips != wantSkips {
		t.Fatalf("merge mismatch: %+v want wins=%d losses=%d skips=%d", s, wantWins, wantLosses, wantSkips)
	}
	if s.CASAttempts != s.CASWins+s.CASLosses {
		t.Fatalf("attempts %d != wins+losses %d", s.CASAttempts, s.CASWins+s.CASLosses)
	}
	var busy int64
	for w := 0; w < p; w++ {
		busy += int64(w+1) * int64(time.Millisecond)
		if s.WorkerBusyNs[w] != int64(w+1)*int64(time.Millisecond) {
			t.Fatalf("worker %d busy %d", w, s.WorkerBusyNs[w])
		}
		if s.WorkerAttempts[w] != uint64((perWorker+2)/3+(perWorker+1)/3) {
			t.Fatalf("worker %d attempts %d", w, s.WorkerAttempts[w])
		}
	}
	if s.BusyNs != busy {
		t.Fatalf("busy sum %d want %d", s.BusyNs, busy)
	}

	r.Reset()
	if s := r.Snapshot(); s.CASAttempts != 0 || s.BusyNs != 0 || s.Rounds != 0 {
		t.Fatalf("reset left residue: %+v", s)
	}
}

// TestProbeMaxPerRound: the probe must track the per-(cell, round) maximum
// — counts restart when the round advances, and the running max survives.
func TestProbeMaxPerRound(t *testing.T) {
	r := NewRecorder(2)
	r.EnableProbe(4)
	sh := r.Shard(0)

	// Round 1: three executed attempts on cell 2, one on cell 0.
	sh.Claim(2, 1, cw.OutcomeWin)
	sh.Claim(2, 1, cw.OutcomeLoss)
	sh.Claim(2, 1, cw.OutcomeLoss)
	sh.Claim(0, 1, cw.OutcomeWin)
	// Skips never reach the probe.
	for i := 0; i < 10; i++ {
		sh.Claim(2, 1, cw.OutcomeSkip)
	}
	if got := r.Snapshot().MaxCellClaims; got != 3 {
		t.Fatalf("round 1 max = %d, want 3", got)
	}

	// Round 2: cell 2 is touched twice — the count restarted, so the
	// historical max of 3 must survive.
	sh.Claim(2, 2, cw.OutcomeWin)
	sh.Claim(2, 2, cw.OutcomeLoss)
	if got := r.Snapshot().MaxCellClaims; got != 3 {
		t.Fatalf("max after round 2 = %d, want 3", got)
	}

	// Out-of-range cells are counted but not probed.
	sh.Claim(99, 2, cw.OutcomeWin)
	if got := r.Snapshot().MaxCellClaims; got != 3 {
		t.Fatalf("out-of-range touch changed max to %d", got)
	}

	// Reset clears the probe but keeps it enabled.
	r.Reset()
	if got := r.Snapshot().MaxCellClaims; got != 0 {
		t.Fatalf("max after reset = %d", got)
	}
	sh.Claim(1, 1, cw.OutcomeWin)
	if got := r.Snapshot().MaxCellClaims; got != 1 {
		t.Fatalf("probe dead after reset: max = %d", got)
	}
	r.DisableProbe()
	sh.Claim(1, 2, cw.OutcomeWin)
	if got := r.Snapshot().MaxCellClaims; got != 0 {
		t.Fatalf("disabled probe still reporting: %d", got)
	}
}

// TestProbeConcurrent hammers one probe cell from many goroutines in the
// same round; under -race this checks the CAS loops, and the max must
// equal the total number of executed attempts.
func TestProbeConcurrent(t *testing.T) {
	const p, per = 8, 500
	r := NewRecorder(p)
	r.EnableProbe(1)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := r.Shard(w)
			for i := 0; i < per; i++ {
				sh.Claim(0, 7, cw.OutcomeLoss)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Snapshot().MaxCellClaims; got != p*per {
		t.Fatalf("concurrent probe max = %d, want %d", got, p*per)
	}
}
