package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"

	"crcwpram/internal/core/cw"
)

// ClaimHook observes every recorded winner-selection attempt, called from
// Shard.record with the recording worker's id. The chaos injector
// implements it to perturb losers (metrics must not import chaos, so the
// dependency points this way). Hooks run on the claiming worker's hot
// path — implementations must be safe for concurrent use and must not
// touch algorithm state.
type ClaimHook interface {
	// OnClaim is called after the attempt on cell with outcome o in the
	// given round was counted on worker w's shard. Pre-check skips are not
	// reported.
	OnClaim(w, cell int, round uint32, o cw.Outcome)
}

// ViolationKind classifies one invariant violation the Checker caught.
type ViolationKind int

const (
	// ViolationDoubleWinner: more commits landed on one cell in one round
	// than the kernel's winners-per-cell allowance (1 for every kernel
	// except matching, whose propose and accept arrays share the cell
	// index space) — the arbitrary-CW guarantee is broken.
	ViolationDoubleWinner ViolationKind = iota
	// ViolationBoundExceeded: more read-modify-writes executed on one cell
	// in one round than the paper's ≤P bound (scaled by the kernel's
	// probe-bound factor) allows under CAS-LT.
	ViolationBoundExceeded
	// ViolationLateWrite: a commit carrying round r was recorded after a
	// commit from a later round had already been observed — a write from
	// round r landed after round r's closing barrier.
	ViolationLateWrite
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case ViolationDoubleWinner:
		return "double-winner"
	case ViolationBoundExceeded:
		return "bound-exceeded"
	case ViolationLateWrite:
		return "late-write"
	default:
		return "unknown-violation"
	}
}

// Violation is one caught invariant breach: which invariant, where, and
// the observed count that crossed the allowance.
type Violation struct {
	Kind   ViolationKind
	Cell   int
	Round  uint32
	Worker int
	// Count is the per-(cell, round) commit count (double-winner), the
	// executed-attempt count (bound-exceeded), or the frontier round the
	// late commit trailed (late-write), including the triggering event.
	Count uint64
}

// String renders the violation for reports.
func (v Violation) String() string {
	switch v.Kind {
	case ViolationLateWrite:
		return fmt.Sprintf("late-write: worker %d committed round %d on cell %d after round %d had closed",
			v.Worker, v.Round, v.Cell, v.Count)
	case ViolationBoundExceeded:
		return fmt.Sprintf("bound-exceeded: cell %d absorbed %d executed RMWs in round %d (worker %d crossed the bound)",
			v.Cell, v.Count, v.Round, v.Worker)
	default:
		return fmt.Sprintf("double-winner: cell %d committed %d winners in round %d (worker %d's commit was extra)",
			v.Cell, v.Count, v.Round, v.Worker)
	}
}

// WinRecord is one decoded winner-log entry: worker won cell in round.
type WinRecord struct {
	Cell   int
	Round  uint32
	Worker int
}

// winnerRingSize is the winner-log capacity; the ring keeps the most
// recent commits for diagnostics, overwriting the oldest.
const winnerRingSize = 1024

// maxViolations caps the retained violation records (the count keeps
// growing past the cap).
const maxViolations = 64

// Checker verifies the concurrent-write invariants at runtime, fed from
// Shard.record exactly like the Probe: per-(cell, round) commit and
// executed-attempt counts in round-stamped words (round<<32|count, a
// later round restarts the count — no reset pass between rounds), a
// monotone frontier of the highest committed round, and a ring of recent
// winner commits for diagnosing a violation's neighborhood. Like the
// probe it adds contention of its own (two CAS words per executed
// attempt), so it is opt-in via Recorder.EnableChecker and checked runs
// should not be timed.
//
// The invariants, per the paper's CAS-LT argument:
//
//   - every cell commits at most winnersPerCell winners per round
//     (ViolationDoubleWinner);
//   - every cell absorbs at most attemptBound executed read-modify-writes
//     per round, when attemptBound > 0 (ViolationBoundExceeded; enable
//     for CAS-LT runs of guarded kernels, where the paper's bound is
//     factor×P);
//   - no commit carries a round older than one already observed
//     (ViolationLateWrite) — rounds are globally monotone across a run's
//     commits because a round's writes are barrier-separated from the
//     next round.
//
// The checker's methods are safe for concurrent use by all workers; read
// the report at a synchronization point.
type Checker struct {
	winners  uint64
	bound    uint64
	frontier atomic.Uint64
	wins     []atomic.Uint64
	attempts []atomic.Uint64

	ringCur atomic.Uint64
	ring    [winnerRingSize]atomic.Uint64

	nviol atomic.Uint64
	mu    sync.Mutex
	viol  []Violation
}

// newChecker builds a checker over n cells allowing winnersPerCell
// commits and (if > 0) attemptBound executed attempts per (cell, round).
func newChecker(n int, winnersPerCell, attemptBound uint64) *Checker {
	if winnersPerCell == 0 {
		winnersPerCell = 1
	}
	return &Checker{
		winners:  winnersPerCell,
		bound:    attemptBound,
		wins:     make([]atomic.Uint64, n),
		attempts: make([]atomic.Uint64, n),
	}
}

// stampedInc bumps the round-stamped counter word c for the given round
// and returns the post-increment count: a word stamped with an older
// round restarts at 1, the CAS-LT trick that makes per-round counters
// need no reset pass. Counts from rounds newer than the word's stamp are
// never destroyed (the stamp only moves forward).
func stampedInc(c *atomic.Uint64, round uint32) uint64 {
	for {
		old := c.Load()
		cnt := uint64(1)
		if uint32(old>>32) == round {
			cnt = old&0xffffffff + 1
		} else if uint32(old>>32) > round {
			// A later round already claimed the word: this event is stale
			// (and the late-write check will flag its commit); count it as
			// a fresh single event without clobbering the newer stamp.
			return 1
		}
		if c.CompareAndSwap(old, uint64(round)<<32|cnt) {
			return cnt
		}
	}
}

// observe is the Shard.record feed point: one executed attempt on cell in
// round by worker w, with outcome o (never a skip).
func (c *Checker) observe(w, cell int, round uint32, o cw.Outcome) {
	if cell < 0 || cell >= len(c.attempts) {
		return
	}
	if n := stampedInc(&c.attempts[cell], round); c.bound != 0 && n > c.bound {
		c.report(Violation{Kind: ViolationBoundExceeded, Cell: cell, Round: round, Worker: w, Count: n})
	}
	if o != cw.OutcomeWin {
		return
	}
	if n := stampedInc(&c.wins[cell], round); n > c.winners {
		c.report(Violation{Kind: ViolationDoubleWinner, Cell: cell, Round: round, Worker: w, Count: n})
	}
	// Advance the commit-round frontier; a commit trailing it is a write
	// from a closed round.
	for {
		f := c.frontier.Load()
		if uint64(round) <= f {
			if uint64(round) < f {
				c.report(Violation{Kind: ViolationLateWrite, Cell: cell, Round: round, Worker: w, Count: f})
			}
			break
		}
		if c.frontier.CompareAndSwap(f, uint64(round)) {
			break
		}
	}
	// Winner log: pack worker | round | cell into one word so readers can
	// never observe a torn record. Cell and round are truncated to their
	// field widths — the ring is diagnostic, not an oracle.
	slot := c.ringCur.Add(1) - 1
	c.ring[slot%winnerRingSize].Store(uint64(uint8(w))<<56 | uint64(round&0xffffff)<<32 | uint64(uint32(cell)))
}

func (c *Checker) report(v Violation) {
	c.nviol.Add(1)
	c.mu.Lock()
	if len(c.viol) < maxViolations {
		c.viol = append(c.viol, v)
	}
	c.mu.Unlock()
}

// Violations returns the retained violation records (at most
// maxViolations; ViolationCount has the true total). Read at a
// synchronization point.
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Violation, len(c.viol))
	copy(out, c.viol)
	return out
}

// ViolationCount returns the total number of violations caught, including
// any dropped past the retention cap.
func (c *Checker) ViolationCount() uint64 { return c.nviol.Load() }

// WinnerLog decodes the winner ring: the most recent commits (up to
// winnerRingSize), oldest first. Read at a synchronization point.
func (c *Checker) WinnerLog() []WinRecord {
	cur := c.ringCur.Load()
	n := cur
	if n > winnerRingSize {
		n = winnerRingSize
	}
	out := make([]WinRecord, 0, n)
	for i := cur - n; i < cur; i++ {
		e := c.ring[i%winnerRingSize].Load()
		out = append(out, WinRecord{
			Cell:   int(uint32(e)),
			Round:  uint32(e >> 32 & 0xffffff),
			Worker: int(e >> 56),
		})
	}
	return out
}

// Err returns nil if no invariant was violated, and an error summarizing
// the violations otherwise.
func (c *Checker) Err() error {
	n := c.nviol.Load()
	if n == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	msg := fmt.Sprintf("metrics: checker caught %d invariant violation(s)", n)
	for i, v := range c.viol {
		if i == 3 {
			msg += fmt.Sprintf("; ... (%d retained)", len(c.viol))
			break
		}
		msg += "; " + v.String()
	}
	return fmt.Errorf("%s", msg)
}

// reset clears the checker's cells, frontier, ring, and violations.
func (c *Checker) reset() {
	for i := range c.wins {
		c.wins[i].Store(0)
		c.attempts[i].Store(0)
	}
	c.frontier.Store(0)
	c.ringCur.Store(0)
	c.nviol.Store(0)
	c.mu.Lock()
	c.viol = nil
	c.mu.Unlock()
}
