package metrics

import (
	"strings"
	"testing"

	"crcwpram/internal/core/cw"
)

func TestCheckerCleanRun(t *testing.T) {
	r := NewRecorder(2)
	ck := r.EnableChecker(8, 1, 2)
	// A legal round: per cell one winner, one loser, attempts within 2.
	r.Shard(0).Claim(3, 1, cw.OutcomeWin)
	r.Shard(1).Claim(3, 1, cw.OutcomeLoss)
	r.Shard(1).Claim(4, 1, cw.OutcomeWin)
	// Next round reuses cell 3 — the round stamp restarts the counters.
	r.Shard(1).Claim(3, 2, cw.OutcomeWin)
	r.Shard(0).Claim(3, 2, cw.OutcomeLoss)
	if err := ck.Err(); err != nil {
		t.Fatal(err)
	}
	log := ck.WinnerLog()
	if len(log) != 3 {
		t.Fatalf("winner log has %d entries, want 3: %v", len(log), log)
	}
	last := log[len(log)-1]
	if last.Cell != 3 || last.Round != 2 || last.Worker != 1 {
		t.Fatalf("last winner = %+v, want cell 3 round 2 worker 1", last)
	}
}

func TestCheckerDoubleWinner(t *testing.T) {
	r := NewRecorder(2)
	ck := r.EnableChecker(8, 1, 0)
	r.Shard(0).Claim(5, 1, cw.OutcomeWin)
	r.Shard(1).Claim(5, 1, cw.OutcomeWin)
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Kind != ViolationDoubleWinner {
		t.Fatalf("violations = %v, want one double-winner", vs)
	}
	if vs[0].Cell != 5 || vs[0].Round != 1 || vs[0].Count != 2 {
		t.Fatalf("violation = %+v", vs[0])
	}
	if err := ck.Err(); err == nil || !strings.Contains(err.Error(), "double-winner") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestCheckerWinnersAllowance(t *testing.T) {
	// winnersPerCell = 2 (matching's shared propose/accept index space):
	// two winners per (cell, round) are legal, a third is not.
	r := NewRecorder(1)
	ck := r.EnableChecker(4, 2, 0)
	sh := r.Shard(0)
	sh.Claim(0, 1, cw.OutcomeWin)
	sh.Claim(0, 1, cw.OutcomeWin)
	if err := ck.Err(); err != nil {
		t.Fatal(err)
	}
	sh.Claim(0, 1, cw.OutcomeWin)
	if ck.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1", ck.ViolationCount())
	}
}

func TestCheckerBoundExceeded(t *testing.T) {
	r := NewRecorder(1)
	ck := r.EnableChecker(4, 1, 2)
	sh := r.Shard(0)
	sh.Claim(2, 1, cw.OutcomeWin)
	sh.Claim(2, 1, cw.OutcomeLoss)
	if err := ck.Err(); err != nil {
		t.Fatal(err)
	}
	sh.Claim(2, 1, cw.OutcomeLoss)
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Kind != ViolationBoundExceeded || vs[0].Count != 3 {
		t.Fatalf("violations = %v, want one bound-exceeded at count 3", vs)
	}
	// Skips execute no RMW and must not count against the bound.
	sh.Claim(2, 2, cw.OutcomeWin)
	sh.Claim(2, 2, cw.OutcomeSkip)
	sh.Claim(2, 2, cw.OutcomeSkip)
	sh.Claim(2, 2, cw.OutcomeSkip)
	if ck.ViolationCount() != 1 {
		t.Fatalf("skips counted as attempts: %d violations", ck.ViolationCount())
	}
}

func TestCheckerLateWrite(t *testing.T) {
	r := NewRecorder(2)
	ck := r.EnableChecker(8, 1, 0)
	r.Shard(0).Claim(1, 3, cw.OutcomeWin)
	r.Shard(1).Claim(2, 2, cw.OutcomeWin) // round 2 commit after round 3 closed
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Kind != ViolationLateWrite {
		t.Fatalf("violations = %v, want one late-write", vs)
	}
	if vs[0].Round != 2 || vs[0].Count != 3 {
		t.Fatalf("violation = %+v, want round 2 trailing frontier 3", vs[0])
	}
}

func TestCheckerOutOfRangeCellIgnored(t *testing.T) {
	r := NewRecorder(1)
	ck := r.EnableChecker(2, 1, 1)
	sh := r.Shard(0)
	sh.Claim(99, 1, cw.OutcomeWin)
	sh.Claim(99, 1, cw.OutcomeWin)
	sh.Claim(-1, 1, cw.OutcomeWin)
	if ck.ViolationCount() != 0 {
		t.Fatalf("out-of-range cells were checked: %v", ck.Violations())
	}
}

func TestCheckerResetAndDisable(t *testing.T) {
	r := NewRecorder(1)
	ck := r.EnableChecker(4, 1, 0)
	sh := r.Shard(0)
	sh.Claim(0, 1, cw.OutcomeWin)
	sh.Claim(0, 1, cw.OutcomeWin)
	if ck.ViolationCount() == 0 {
		t.Fatal("setup violation not caught")
	}
	r.Reset()
	if ck.ViolationCount() != 0 || len(ck.WinnerLog()) != 0 || ck.Err() != nil {
		t.Fatal("Reset did not clear the checker")
	}
	// The same double commit is again a fresh violation after Reset.
	sh.Claim(0, 1, cw.OutcomeWin)
	sh.Claim(0, 1, cw.OutcomeWin)
	if ck.ViolationCount() != 1 {
		t.Fatalf("post-reset violations = %d, want 1", ck.ViolationCount())
	}
	r.DisableChecker()
	if r.Checker() != nil {
		t.Fatal("DisableChecker left a checker attached")
	}
	sh.Claim(0, 1, cw.OutcomeWin) // must not panic or count
	if ck.ViolationCount() != 1 {
		t.Fatal("detached checker still observing")
	}
}

// recordingHook captures claim-hook invocations for inspection.
type recordingHook struct {
	calls []struct {
		w, cell int
		round   uint32
		o       cw.Outcome
	}
}

func (h *recordingHook) OnClaim(w, cell int, round uint32, o cw.Outcome) {
	h.calls = append(h.calls, struct {
		w, cell int
		round   uint32
		o       cw.Outcome
	}{w, cell, round, o})
}

func TestClaimHookSeesExecutedAttempts(t *testing.T) {
	r := NewRecorder(2)
	h := &recordingHook{}
	r.SetClaimHook(h)
	r.Shard(0).Claim(1, 1, cw.OutcomeWin)
	r.Shard(1).Claim(2, 1, cw.OutcomeLoss)
	r.Shard(1).Claim(3, 1, cw.OutcomeSkip) // pre-check skip: no RMW, no hook
	if len(h.calls) != 2 {
		t.Fatalf("hook saw %d calls, want 2", len(h.calls))
	}
	if h.calls[0].w != 0 || h.calls[0].o != cw.OutcomeWin {
		t.Fatalf("first call = %+v", h.calls[0])
	}
	if h.calls[1].w != 1 || h.calls[1].cell != 2 || h.calls[1].o != cw.OutcomeLoss {
		t.Fatalf("second call = %+v", h.calls[1])
	}
	r.SetClaimHook(nil)
	r.Shard(0).Claim(1, 2, cw.OutcomeWin)
	if len(h.calls) != 2 {
		t.Fatal("detached hook still called")
	}
}

func TestCheckerNilRecorder(t *testing.T) {
	var r *Recorder
	if ck := r.EnableChecker(4, 1, 0); ck != nil {
		t.Fatal("nil recorder returned a checker")
	}
	r.DisableChecker()
	r.SetClaimHook(&recordingHook{})
	if r.Checker() != nil {
		t.Fatal("nil recorder has a checker")
	}
}
