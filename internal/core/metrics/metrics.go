// Package metrics is the live-contention observability layer: per-worker
// sharded counters that the pool and team execution backends and the
// instrumented kernels feed while running at full speed, so the paper's
// central contention claims — CAS-LT executes at most P read-modify-writes
// per cell per round, late arrivals fail a plain-load pre-check — can be
// checked on real parallel hardware instead of by serial trace replay
// (internal/core/exec/trace.go) or by the atomic counting twins
// (internal/core/cw/counting.go), both of which distort or avoid the very
// concurrency being measured.
//
// # Design
//
// A Recorder owns one cache-line padded Shard per worker. Every counter
// update is a plain (non-atomic) increment on the caller's own shard —
// no shared cache line is written on the hot path, so the instrumented-on
// cost is a few predictable instructions per selection attempt. The
// machine's existing step barriers order all shard writes before the
// coordinator's Snapshot read (the same happens-before edge the machine
// already relies on for panic propagation), so Snapshot is race-free
// with no atomics in the per-claim recording path. The one exception is
// the barrier-wait stamp: it is credited as the worker leaves the closing
// barrier — after the coordinator may already be running — so that field
// alone is atomic, written once per step rather than per claim, still on
// the worker's own padded line.
//
// When metrics are off (the default; see machine.WithMetrics) every handle
// in the chain is nil, and every method in this package is nil-receiver
// safe: Recorder.Shard(w) on a nil Recorder returns a nil *Shard, and a
// nil Shard's Claim reduces to a single predictable branch around the
// boolean the kernel needed anyway. That branch is the entire
// instrumented-off cost; BenchmarkMetricsOffOverhead in the machine
// package pins it against the uninstrumented baseline.
//
// The optional per-cell Probe is the exception to "no shared writes": it
// CASes one word per guarded cell on every executed attempt, to record the
// maximum number of read-modify-writes any cell absorbed in any single
// round — the quantity the paper bounds by P for CAS-LT. Because it is an
// observer that adds contention of its own, it is off unless a caller
// opts in with EnableProbe, and timing from probe-enabled runs should be
// discarded.
package metrics

import (
	"sync/atomic"
	"time"

	"crcwpram/internal/core/cw"
)

// Shard holds one worker's counters. Fields are written only by that
// worker between two machine barriers and read only by the coordinator
// after the closing barrier, so plain stores suffice. The struct is padded
// to two cache lines so adjacent workers' shards never share a line
// regardless of how the shard slice is aligned.
type Shard struct {
	attempts uint64 // read-modify-writes executed (wins + losses)
	wins     uint64
	losses   uint64
	skips    uint64 // pre-check skips: no atomic executed
	busyNs   int64  // time spent inside loop bodies
	// barrierNs is the one atomic field: the end-of-step wait is credited
	// as the worker *leaves* the closing barrier, which may be after the
	// coordinator has already been released — so this write alone is not
	// ordered by the barrier and needs atomicity against Snapshot/Reset.
	// It is still uncontended (only the owning worker adds) and happens
	// once per step/barrier, not per recorded claim.
	barrierNs atomic.Int64
	// Work-stealing scheduler counters (the sched.Stealing policy): chunks
	// popped from the worker's own deque, chunks stolen from victims, and
	// steal CAS attempts lost to a racing claimant. Credited once per
	// stealing loop from the worker's own StealCounts — plain fields,
	// ordered by the loop's closing barrier like the claim counters.
	chunksLocal uint64
	steals      uint64
	stealFails  uint64
	probe       *Probe   // nil unless Recorder.EnableProbe
	checker     *Checker // nil unless Recorder.EnableChecker
	hook        ClaimHook
	w           int // this shard's worker index, for checker/hook attribution
	_           [128 - 14*8]byte
}

// Claim records the outcome of one winner-selection attempt on cell i in
// the given round and reports whether the caller won — so kernels can wrap
// their existing claim sites in place:
//
//	if sh.Claim(v, round, cells.TryClaimOutcome(v, round)) { ... }
//
// On a nil shard (metrics off) it reduces to o.Won(). The method stays
// under the inliner's budget — the recording body lives in record — so the
// nil branch compiles into the call site rather than costing a call per
// selection attempt.
func (s *Shard) Claim(i int, round uint32, o cw.Outcome) bool {
	if s == nil {
		return o == cw.OutcomeWin
	}
	return s.record(i, round, o)
}

// record is Claim's metrics-on body, outlined to keep Claim inlinable.
func (s *Shard) record(i int, round uint32, o cw.Outcome) bool {
	switch o {
	case cw.OutcomeWin:
		s.attempts++
		s.wins++
	case cw.OutcomeLoss:
		s.attempts++
		s.losses++
	default:
		s.skips++
		return false
	}
	if p := s.probe; p != nil {
		p.touch(i, round)
	}
	if c := s.checker; c != nil {
		c.observe(s.w, i, round, o)
	}
	if h := s.hook; h != nil {
		h.OnClaim(s.w, i, round, o)
	}
	return o == cw.OutcomeWin
}

// AddSteal credits one stealing loop's chunk-dispatch outcome to this
// worker: local own-deque pops, successful steals, and failed steal CAS
// attempts. Called once per stealing loop, not per chunk. Nil-safe.
func (s *Shard) AddSteal(local, steals, fails uint64) {
	if s != nil {
		s.chunksLocal += local
		s.steals += steals
		s.stealFails += fails
	}
}

// AddBusy credits d of loop-body execution time to this worker. Nil-safe.
func (s *Shard) AddBusy(d time.Duration) {
	if s != nil {
		s.busyNs += int64(d)
	}
}

// AddBarrierWait credits d of barrier waiting time to this worker. The
// add is atomic because end-of-step waits are credited after the worker
// clears the closing barrier, concurrently with a coordinator that the
// same barrier already released (see Shard.barrierNs). Nil-safe.
func (s *Shard) AddBarrierWait(d time.Duration) {
	if s != nil {
		s.barrierNs.Add(int64(d))
	}
}

// BarrierWaitTotal returns the barrier wait credited to this worker so
// far. The machine uses before/after readings to subtract in-region team
// barrier waits from a region's wall time when crediting busy time.
// Nil-safe; call from the owning worker or at a synchronization point.
func (s *Shard) BarrierWaitTotal() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.barrierNs.Load())
}

// Recorder aggregates the shards of one machine's workers plus the
// coordinator-side counters (round wall time, round count). The
// coordinator fields are written by exactly one goroutine per region — the
// caller under the pool backend, worker 0 under the team backend — with
// the machine's barriers ordering them against Snapshot.
type Recorder struct {
	shards  []Shard
	probe   *Probe
	checker *Checker
	roundNs int64 // wall time of the parallel rounds, as seen by the coordinator
	// roundDur keeps the individual per-round wall times behind the
	// roundNs aggregate, in coordinator call order — the round-resolved
	// view the timeline summaries and -metricsjson expose.
	roundDur []int64
	rounds   uint64 // NextRound advances (rounds-to-convergence for looping kernels)
}

// NewRecorder returns a recorder with one shard per worker.
func NewRecorder(p int) *Recorder {
	r := &Recorder{shards: make([]Shard, p)}
	for w := range r.shards {
		r.shards[w].w = w
	}
	return r
}

// P returns the number of shards (workers). Zero on a nil recorder.
func (r *Recorder) P() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// Shard returns worker w's shard, or nil on a nil recorder — the nil
// propagates into Shard's nil-safe methods, making the metrics-off path a
// branch per call site rather than a flag check per counter.
func (r *Recorder) Shard(w int) *Shard {
	if r == nil {
		return nil
	}
	return &r.shards[w]
}

// AddRoundTime credits d of parallel-round wall time, both to the
// aggregate and to the per-round slice Snapshot.RoundWallNs exposes.
// Coordinator only; nil-safe.
func (r *Recorder) AddRoundTime(d time.Duration) {
	if r != nil {
		r.roundNs += int64(d)
		r.roundDur = append(r.roundDur, int64(d))
	}
}

// AddRounds credits n lock-step round advances. Coordinator only;
// nil-safe.
func (r *Recorder) AddRounds(n uint64) {
	if r != nil {
		r.rounds += n
	}
}

// EnableProbe attaches a fresh n-cell probe, resetting any previous one.
// Claims with cell index ≥ n are recorded in the counters but not probed.
// The probe adds one CAS per executed attempt; do not time probed runs.
func (r *Recorder) EnableProbe(n int) {
	if r == nil {
		return
	}
	r.probe = newProbe(n)
	for w := range r.shards {
		r.shards[w].probe = r.probe
	}
}

// DisableProbe detaches the probe.
func (r *Recorder) DisableProbe() {
	if r == nil {
		return
	}
	r.probe = nil
	for w := range r.shards {
		r.shards[w].probe = nil
	}
}

// EnableChecker attaches a fresh n-cell invariant checker allowing
// winnersPerCell commits per (cell, round) and — when attemptBound > 0 —
// at most attemptBound executed attempts per (cell, round), replacing any
// previous checker. Claims with cell index ≥ n are counted but not
// checked. Like the probe, the checker adds CAS traffic per executed
// attempt; do not time checked runs. Nil-safe (returns nil).
func (r *Recorder) EnableChecker(n int, winnersPerCell, attemptBound uint64) *Checker {
	if r == nil {
		return nil
	}
	r.checker = newChecker(n, winnersPerCell, attemptBound)
	for w := range r.shards {
		r.shards[w].checker = r.checker
	}
	return r.checker
}

// DisableChecker detaches the checker.
func (r *Recorder) DisableChecker() {
	if r == nil {
		return
	}
	r.checker = nil
	for w := range r.shards {
		r.shards[w].checker = nil
	}
}

// Checker returns the attached invariant checker, or nil when none is
// enabled.
func (r *Recorder) Checker() *Checker {
	if r == nil {
		return nil
	}
	return r.checker
}

// ClaimHooks fans one claim notification out to several hooks in
// order. The machine composes it when more than one observer wants the
// claim stream (the chaos injector and the event-trace recorder); with
// a single observer it attaches the hook directly, so the fan-out loop
// costs nothing in the common case.
type ClaimHooks []ClaimHook

// OnClaim implements ClaimHook by forwarding to every hook in order.
func (hs ClaimHooks) OnClaim(w, cell int, round uint32, o cw.Outcome) {
	for _, h := range hs {
		h.OnClaim(w, cell, round, o)
	}
}

// SetClaimHook attaches h (nil to detach) to every shard: the hook runs
// on the claiming worker after each executed attempt is counted. The
// machine wires its chaos injector and event-trace recorder here
// (machine.WithChaos, machine.WithEventTrace), composing them with
// ClaimHooks when both are present.
func (r *Recorder) SetClaimHook(h ClaimHook) {
	if r == nil {
		return
	}
	for w := range r.shards {
		r.shards[w].hook = h
	}
}

// Reset zeroes all counters (keeping an enabled probe enabled, with its
// cells cleared). It must not race with recording — call it between runs,
// outside any parallel region. (The barrier-wait field is stored
// atomically so that a worker still crediting the previous step's
// end-barrier wait cannot corrupt it; at worst that one wait lands on
// whichever side of the reset the scheduler picks.)
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for w := range r.shards {
		sh := &r.shards[w]
		sh.attempts, sh.wins, sh.losses, sh.skips = 0, 0, 0, 0
		sh.chunksLocal, sh.steals, sh.stealFails = 0, 0, 0
		sh.busyNs = 0
		sh.barrierNs.Store(0)
	}
	r.roundNs, r.rounds = 0, 0
	r.roundDur = r.roundDur[:0]
	if r.probe != nil {
		r.probe.reset()
	}
	if r.checker != nil {
		r.checker.reset()
	}
}

// Snapshot is the aggregated view of a recorder at a synchronization
// point. Totals sum over workers; the per-worker slices expose the busy /
// barrier-wait split that the totals hide (load imbalance shows up as
// variance across WorkerBusyNs and its mirror image in WorkerBarrierNs).
type Snapshot struct {
	P int
	// CASAttempts counts executed read-modify-writes (CAS or
	// fetch-and-add), i.e. wins + losses; pre-check skips are not attempts.
	CASAttempts uint64
	CASWins     uint64
	CASLosses   uint64
	// PrecheckSkips counts selection calls resolved by the plain-load
	// pre-check without touching an atomic.
	PrecheckSkips uint64
	BusyNs        int64
	BarrierWaitNs int64
	RoundNs       int64
	// RoundWallNs lists each parallel round's wall time in coordinator
	// call order; its entries sum to RoundNs. Empty when no rounds were
	// timed.
	RoundWallNs []int64
	Rounds      uint64
	// MaxCellClaims is the maximum number of executed attempts observed on
	// any single cell within any single round — the paper's ≤ P quantity.
	// Zero unless a probe was enabled.
	MaxCellClaims uint64
	// Work-stealing chunk dispatch totals (zero unless some loop ran under
	// sched.Stealing): own-deque pops, successful steals, and steal CAS
	// attempts lost to a racing claimant.
	ChunksLocal    uint64
	Steals         uint64
	StealFails     uint64
	WorkerBusyNs   []int64
	WorkerBarrier  []int64
	WorkerAttempts []uint64
}

// Snapshot aggregates the shards. Call only at a synchronization point
// (no region in flight). A nil recorder yields a zero Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		P:              len(r.shards),
		RoundNs:        r.roundNs,
		RoundWallNs:    append([]int64(nil), r.roundDur...),
		Rounds:         r.rounds,
		WorkerBusyNs:   make([]int64, len(r.shards)),
		WorkerBarrier:  make([]int64, len(r.shards)),
		WorkerAttempts: make([]uint64, len(r.shards)),
	}
	for w := range r.shards {
		sh := &r.shards[w]
		s.CASAttempts += sh.attempts
		s.CASWins += sh.wins
		s.CASLosses += sh.losses
		s.PrecheckSkips += sh.skips
		s.ChunksLocal += sh.chunksLocal
		s.Steals += sh.steals
		s.StealFails += sh.stealFails
		s.BusyNs += sh.busyNs
		bw := sh.barrierNs.Load()
		s.BarrierWaitNs += bw
		s.WorkerBusyNs[w] = sh.busyNs
		s.WorkerBarrier[w] = bw
		s.WorkerAttempts[w] = sh.attempts
	}
	if r.probe != nil {
		s.MaxCellClaims = r.probe.Max()
	}
	return s
}

// Probe tracks, per guarded cell, how many read-modify-writes landed on it
// in the current round, and the running maximum over all cells and rounds.
// Each cell's word packs round<<32 | count; a touch from a later round
// restarts the count, so no per-round reset pass is needed — the same
// trick as CAS-LT's own round stamping.
type Probe struct {
	max   atomic.Uint64
	cells []atomic.Uint64
}

func newProbe(n int) *Probe {
	return &Probe{cells: make([]atomic.Uint64, n)}
}

func (p *Probe) touch(i int, round uint32) {
	if i < 0 || i >= len(p.cells) {
		return
	}
	c := &p.cells[i]
	var cnt uint64
	for {
		old := c.Load()
		cnt = 1
		if uint32(old>>32) == round {
			cnt = old&0xffffffff + 1
		}
		if c.CompareAndSwap(old, uint64(round)<<32|cnt) {
			break
		}
	}
	for {
		m := p.max.Load()
		if cnt <= m || p.max.CompareAndSwap(m, cnt) {
			return
		}
	}
}

// Max returns the maximum executed-attempt count observed on any single
// cell within any single round. Read at a synchronization point.
func (p *Probe) Max() uint64 { return p.max.Load() }

func (p *Probe) reset() {
	p.max.Store(0)
	for i := range p.cells {
		p.cells[i].Store(0)
	}
}
