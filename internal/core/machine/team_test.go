package machine

import (
	"runtime"
	"sync/atomic"
	"testing"

	"crcwpram/internal/sched"
)

func TestTeamForExactCover(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, policy := range sched.Policies {
			m := New(p, WithPolicy(policy), WithChunk(16))
			for _, n := range []int{0, 1, 7, 100, 1023} {
				counts := make([]atomic.Int32, n)
				m.Team(func(tc *TeamCtx) {
					tc.For(n, func(i int) { counts[i].Add(1) })
				})
				for i := range counts {
					if k := counts[i].Load(); k != 1 {
						t.Fatalf("p=%d %v n=%d: index %d visited %d times", p, policy, n, i, k)
					}
				}
			}
			m.Close()
		}
	}
}

func TestTeamManyRoundsOneRegion(t *testing.T) {
	// Many work-shared rounds inside a single region: the mode's point.
	for _, policy := range sched.Policies {
		m := New(4, WithPolicy(policy), WithChunk(8))
		const rounds, n = 200, 37
		var total atomic.Int64
		m.Team(func(tc *TeamCtx) {
			for r := 0; r < rounds; r++ {
				tc.For(n, func(i int) { total.Add(1) })
			}
		})
		if total.Load() != rounds*n {
			t.Fatalf("%v: total = %d, want %d", policy, total.Load(), rounds*n)
		}
		m.Close()
	}
}

func TestTeamForImplicitBarrier(t *testing.T) {
	// Values written in round k must be visible in round k+1 — the
	// defining property of the barrier that ends each team loop.
	m := New(4)
	defer m.Close()
	const n = 10000
	a := make([]uint32, n)
	b := make([]uint32, n)
	m.Team(func(tc *TeamCtx) {
		tc.For(n, func(i int) { a[i] = uint32(i) + 1 })
		tc.For(n, func(i int) { b[i] = a[(i+1)%n] })
	})
	for i := 0; i < n; i++ {
		if b[i] != uint32((i+1)%n)+1 {
			t.Fatalf("b[%d] = %d: round-1 write not visible in round 2", i, b[i])
		}
	}
}

func TestTeamRangeSingleAndWorkerIDs(t *testing.T) {
	const p = 4
	m := New(p)
	defer m.Close()
	const n = 103
	counts := make([]atomic.Int32, n)
	var singles atomic.Int32
	var badW atomic.Int32
	perWorker := make([]int, p)
	m.Team(func(tc *TeamCtx) {
		if tc.W < 0 || tc.W >= p || tc.P() != p {
			badW.Add(1)
		}
		tc.Range(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
			perWorker[tc.W] = hi - lo // worker-local slot: no race
		})
		tc.Single(func() { singles.Add(1) })
		// Single's writes are team-visible after its barrier.
		if singles.Load() != 1 {
			badW.Add(1)
		}
	})
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, counts[i].Load())
		}
	}
	total := 0
	for _, c := range perWorker {
		total += c
	}
	if total != n {
		t.Fatalf("block shares sum to %d, want %d", total, n)
	}
	if singles.Load() != 1 {
		t.Fatalf("Single ran %d times, want 1", singles.Load())
	}
	if badW.Load() != 0 {
		t.Fatal("worker id/size out of range or Single write not visible")
	}
}

func TestTeamDynamicCursorReuseAcrossRounds(t *testing.T) {
	// Dynamic/guided team loops share ONE pre-allocated cursor via the
	// epoch reset protocol; loops of different sizes must all be exact
	// covers, across several regions on the same machine.
	for _, policy := range []sched.Policy{sched.Dynamic, sched.Guided} {
		m := New(4, WithPolicy(policy), WithChunk(4))
		for region := 0; region < 3; region++ {
			sizes := []int{5, 400, 1, 73, 256, 0, 999}
			var counts [][]atomic.Int32
			for _, n := range sizes {
				counts = append(counts, make([]atomic.Int32, n))
			}
			m.Team(func(tc *TeamCtx) {
				for r, n := range sizes {
					c := counts[r]
					tc.For(n, func(i int) { c[i].Add(1) })
				}
			})
			for r := range counts {
				for i := range counts[r] {
					if counts[r][i].Load() != 1 {
						t.Fatalf("%v region %d loop %d: index %d visited %d times",
							policy, region, r, i, counts[r][i].Load())
					}
				}
			}
		}
		m.Close()
	}
}

func TestTeamFlagConvergenceLoop(t *testing.T) {
	// The rotating-flag pattern: a countdown loop where every worker must
	// observe the same number of rounds, repeated to shake out races.
	m := New(4)
	defer m.Close()
	const n = 256
	for rep := 0; rep < 50; rep++ {
		work := make([]uint32, n)
		for i := range work {
			work[i] = uint32(3 + rep%5)
		}
		var done TeamFlag
		done.Set(0, 1)
		roundsSeen := make([]uint32, m.P())
		m.Team(func(tc *TeamCtx) {
			r := uint32(0)
			for {
				done.Set(r+1, 1) // prime next round (common CW)
				tc.Range(n, func(lo, hi int) {
					progress := false
					for i := lo; i < hi; i++ {
						if work[i] > 0 {
							work[i]--
							progress = true
						}
					}
					if progress {
						done.Set(r, 0)
					}
				})
				if done.Get(r) == 1 {
					roundsSeen[tc.W] = r
					break
				}
				r++
			}
		})
		want := roundsSeen[0]
		for w, r := range roundsSeen {
			if r != want {
				t.Fatalf("rep %d: worker %d exited at round %d, worker 0 at %d", rep, w, r, want)
			}
		}
		if want != uint32(3+rep%5) {
			t.Fatalf("rep %d: converged after %d rounds, want %d", rep, want, 3+rep%5)
		}
	}
}

// TestTeamBodyPanicPropagatesAndPoolSurvives mirrors the pool-path panic
// test: a panic on one worker inside a team body — while its peers are
// parked at a team barrier — must re-raise on the caller and leave the
// machine usable for both subsequent ParallelFor and Team calls.
func TestTeamBodyPanicPropagatesAndPoolSurvives(t *testing.T) {
	m := New(4)
	defer m.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic in team body did not propagate to caller")
			}
		}()
		m.Team(func(tc *TeamCtx) {
			// A few healthy rounds first, so the panic lands mid-region.
			tc.For(100, func(i int) {})
			tc.Barrier()
			if tc.W == 1 {
				panic("team boom")
			}
			// The other workers park here; the abort must release them.
			tc.For(100, func(i int) {})
			tc.For(100, func(i int) {})
		})
	}()
	// The pool must still run pool rounds...
	var n atomic.Int32
	m.ParallelFor(50, func(i int) { n.Add(1) })
	if n.Load() != 50 {
		t.Fatalf("pool broken after team panic: %d visits, want 50", n.Load())
	}
	// ...and fresh team regions, including their barriers.
	var total atomic.Int64
	m.Team(func(tc *TeamCtx) {
		for r := 0; r < 20; r++ {
			tc.For(64, func(i int) { total.Add(1) })
		}
	})
	if total.Load() != 20*64 {
		t.Fatalf("team broken after panic: %d visits, want %d", total.Load(), 20*64)
	}
}

func TestTeamPanicInSingle(t *testing.T) {
	m := New(3)
	defer m.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic in Single did not propagate")
			}
		}()
		m.Team(func(tc *TeamCtx) {
			tc.Single(func() { panic("single boom") })
			tc.For(10, func(i int) {})
		})
	}()
	var n atomic.Int32
	m.Team(func(tc *TeamCtx) { tc.For(30, func(i int) { n.Add(1) }) })
	if n.Load() != 30 {
		t.Fatalf("machine broken after Single panic: %d, want 30", n.Load())
	}
}

func TestTeamSingleWorkerInline(t *testing.T) {
	// p == 1 runs the body inline on the caller; a panic propagates raw.
	m := New(1)
	defer m.Close()
	ran := 0
	m.Team(func(tc *TeamCtx) {
		if tc.W != 0 || tc.P() != 1 {
			t.Errorf("W=%d P=%d, want 0/1", tc.W, tc.P())
		}
		tc.For(10, func(i int) { ran++ })
		tc.Barrier()
		tc.Single(func() { ran++ })
		tc.Range(5, func(lo, hi int) { ran += hi - lo })
	})
	if ran != 16 {
		t.Fatalf("ran = %d, want 16", ran)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inline team panic did not propagate")
		}
	}()
	m.Team(func(tc *TeamCtx) { panic("inline boom") })
}

func TestTeamUseAfterClosePanics(t *testing.T) {
	m := New(2)
	m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Team after Close did not panic")
		}
	}()
	m.Team(func(tc *TeamCtx) {})
}

func TestTeamInterleavedWithPoolRounds(t *testing.T) {
	for _, policy := range sched.Policies {
		m := New(4, WithPolicy(policy), WithChunk(8))
		var total atomic.Int64
		for r := 0; r < 10; r++ {
			m.ParallelFor(100, func(i int) { total.Add(1) })
			m.Team(func(tc *TeamCtx) {
				tc.For(100, func(i int) { total.Add(1) })
				tc.For(100, func(i int) { total.Add(1) })
			})
		}
		if total.Load() != 3000 {
			t.Fatalf("%v: total = %d, want 3000", policy, total.Load())
		}
		m.Close()
	}
}

func TestExecParseRoundTrip(t *testing.T) {
	for _, e := range Execs {
		got, ok := ParseExec(e.String())
		if !ok || got != e {
			t.Fatalf("ParseExec(%q) = %v, %v", e.String(), got, ok)
		}
	}
	if _, ok := ParseExec("warp"); ok {
		t.Fatal("ParseExec accepted an unknown mode")
	}
}

// BenchmarkRoundOverhead quantifies the fixed cost of one empty PRAM round
// under both execution modes: pool pays two (P+1)-party barrier phases plus
// a step descriptor per round; team pays one P-party team barrier inside a
// region entered once. This is the microbenchmark behind the team mode's
// reason to exist — at small per-round work the fixed cost dominates.
func BenchmarkRoundOverhead(b *testing.B) {
	ps := []int{1, 2, 4, 8}
	if ncpu := runtime.NumCPU(); ncpu > 8 {
		ps = append(ps, ncpu)
	}
	for _, p := range ps {
		b.Run("exec=pool/p="+itoa(p), func(b *testing.B) {
			m := New(p)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ParallelFor(p, func(int) {})
			}
		})
		b.Run("exec=team/p="+itoa(p), func(b *testing.B) {
			m := New(p)
			defer m.Close()
			b.ResetTimer()
			m.Team(func(tc *TeamCtx) {
				for i := 0; i < b.N; i++ {
					tc.For(p, func(int) {})
				}
			})
		})
	}
}
