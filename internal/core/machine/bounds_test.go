package machine

import (
	"sync/atomic"
	"testing"
)

func boundsFor(n, p int, skew bool) []int {
	bounds := make([]int, p+1)
	if skew && p > 1 {
		// First shard tiny, rest even: exercises empty/uneven shards.
		bounds[1] = 1
		rest := n - 1
		for w := 2; w <= p; w++ {
			bounds[w] = 1 + rest*(w-1)/(p-1)
		}
	} else {
		for w := 0; w <= p; w++ {
			bounds[w] = n * w / p
		}
	}
	bounds[p] = n
	return bounds
}

func TestParallelBoundsExactCover(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, skew := range []bool{false, true} {
			m := New(p)
			n := 1000
			counts := make([]atomic.Uint32, n)
			sawWorker := make([]atomic.Uint32, p)
			m.ParallelBounds(boundsFor(n, p, skew), func(lo, hi, w int) {
				sawWorker[w].Add(1)
				for i := lo; i < hi; i++ {
					counts[i].Add(1)
				}
			})
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("p=%d skew=%v: index %d visited %d times", p, skew, i, c)
				}
			}
			for w := range sawWorker {
				if c := sawWorker[w].Load(); c > 1 {
					t.Fatalf("p=%d skew=%v: worker %d invoked %d times", p, skew, w, c)
				}
			}
			m.Close()
		}
	}
}

func TestParallelBoundsEmptyAndMismatch(t *testing.T) {
	m := New(2)
	defer m.Close()
	ran := false
	m.ParallelBounds([]int{0, 0, 0}, func(lo, hi, w int) { ran = true })
	if ran {
		t.Fatal("empty bounds invoked body")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bounds length did not panic")
		}
	}()
	m.ParallelBounds([]int{0, 10}, func(lo, hi, w int) {})
}

func TestTeamBoundsExactCover(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		m := New(p)
		n := 512
		counts := make([]atomic.Uint32, n)
		bounds := boundsFor(n, p, true)
		m.Team(func(tc *TeamCtx) {
			// Two rounds back to back: the closing barrier of the first
			// must order it before the second.
			tc.Bounds(bounds, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					counts[i].Add(1)
				}
			})
			tc.Bounds(bounds, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if counts[i].Load() != 1 {
						panic("first round not complete at second round")
					}
					counts[i].Add(1)
				}
			})
		})
		for i := range counts {
			if c := counts[i].Load(); c != 2 {
				t.Fatalf("p=%d: index %d visited %d times, want 2", p, i, c)
			}
		}
		m.Close()
	}
}
