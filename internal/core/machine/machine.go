// Package machine executes PRAM algorithm steps on a fixed pool of physical
// workers.
//
// A PRAM algorithm is a sequence of rounds, each applying one operation per
// virtual processor to a shared memory, in lock-step. Following the paper
// (Section 4, building on Ghanim et al.'s ICE results), lock-step semantics
// are recovered on an asynchronous shared-memory machine by (1) work-sharing
// each round's virtual processors over the physical workers and (2) placing
// a synchronization barrier between a round and anything that depends on it.
// Machine provides exactly that: ParallelFor runs one round — n virtual
// processors over P workers with an implicit barrier at the end — and an
// internal monotone round counter supplies the round ids consumed by the cw
// package's CAS-LT cells.
//
// The pool is persistent: workers are started once and parked on a reusable
// barrier between rounds, so a round costs two barrier phases rather than P
// goroutine spawns, mirroring an OpenMP parallel region with an active wait
// policy (the configuration the paper measures).
//
// Two execution modes drive the pool. ParallelFor/ParallelRange run one
// round per call, re-entering the pool from the caller each time. Team runs
// a whole kernel inside one persistent parallel region — the exact shape of
// the paper's OpenMP listings, at one team barrier per round instead of two
// pool phases — see team.go.
package machine

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"crcwpram/internal/barrier"
	"crcwpram/internal/core/chaos"
	"crcwpram/internal/core/metrics"
	evtrace "crcwpram/internal/core/trace"
	"crcwpram/internal/sched"
)

// Machine is a fixed pool of P workers executing PRAM rounds. Create with
// New, release with Close. A Machine is driven by one caller goroutine at a
// time; the rounds themselves run on all P workers.
type Machine struct {
	p       int
	policy  sched.Policy
	chunk   int
	barKind barrier.Kind
	bar     barrier.Barrier

	// step is the work descriptor for the round in flight. It is written
	// by the caller before the start barrier and read by workers after it;
	// the barrier provides the happens-before edge.
	step stepDesc

	// Team-region state (team.go): the worker-only barrier, the one
	// pre-allocated cursor shared by all dynamic/guided team loops, the
	// ticket/ready words of its per-loop reset protocol, and the abort
	// flag a panicking team body raises.
	teamBar     *teamBarrier
	teamCur     *sched.Cursor
	teamTicket  atomic.Uint64
	teamReady   atomic.Uint64
	teamAborted atomic.Bool

	// steal is the one pre-allocated work-stealing deque set shared by all
	// stealing loops (the sched.Stealing policy and ParallelSteal). Like
	// teamCur it is reset per loop, never per machine: caller-side under
	// the pool backend, via the team ticket protocol in-region.
	steal *sched.Stealer

	// rec is the live-metrics recorder, nil unless WithMetrics was given.
	// Every instrumented path in the machine hangs off a single
	// `m.rec != nil` branch, so the metrics-off hot path is unchanged.
	rec *metrics.Recorder

	// chaos is the schedule-perturbation injector, nil unless WithChaos
	// was given. The exec backends wrap their contexts around it and the
	// recorder drives it from the claim sites (it implies metrics).
	chaos *chaos.Injector

	// evt is the event-trace flight recorder, nil unless WithEventTrace
	// was given. Like chaos it implies metrics: its span emission lives
	// inside the instrumented step path behind the one `m.rec != nil`
	// branch, so the tracing-off hot path is the metrics-off hot path.
	evt *evtrace.Recorder
	// stepSeq numbers the machine's pool steps and team regions for span
	// round ids; advanced only when evt is attached.
	stepSeq uint32

	exec   Exec
	round  uint32
	closed bool
}

type stepDesc struct {
	n      int
	seq    uint32 // step sequence number for event-trace span round ids
	body   func(i, w int)
	ranged func(lo, hi, w int)
	bounds []int // optional shard boundaries for ranged (ParallelBounds)
	cursor *sched.Cursor
	// stealer, when non-nil, makes workers drain the work-stealing deques
	// instead of a static share or cursor: body (if set) runs per index,
	// otherwise ranged runs per claimed chunk.
	stealer *sched.Stealer
	team    func(tc *TeamCtx)
	quit    bool
	panics  []any // one slot per worker, pre-sized; nil = no panic
}

// Option configures a Machine.
type Option func(*Machine)

// WithPolicy selects the loop partitioning policy (default sched.Block).
func WithPolicy(p sched.Policy) Option { return func(m *Machine) { m.policy = p } }

// WithChunk sets the chunk size for dynamic/guided policies (default
// sched.DefaultChunk).
func WithChunk(c int) Option { return func(m *Machine) { m.chunk = c } }

// WithBarrier selects the barrier construction (default barrier.KindSense).
func WithBarrier(k barrier.Kind) Option { return func(m *Machine) { m.barKind = k } }

// WithExec selects the machine's default execution backend (default
// ExecPool). Kernels dispatched without an explicit backend — the plain
// Run entry points — use this choice via Exec().
func WithExec(e Exec) Option { return func(m *Machine) { m.exec = e } }

// WithMetrics enables live contention metrics: the machine allocates a
// per-worker-sharded metrics.Recorder that the pool and team backends and
// the instrumented kernels feed while running. Off by default; when off,
// Metrics() returns nil and the hot paths keep their uninstrumented cost
// (BenchmarkMetricsOffOverhead pins this). Probed runs and timed runs
// should be separate: see metrics.Recorder.EnableProbe.
func WithMetrics() Option { return func(m *Machine) { m.rec = metrics.NewRecorder(m.p) } }

// WithEventTrace attaches an event-trace flight recorder (see the
// evtrace package at internal/core/trace): the pool and team backends
// emit per-worker round, region, barrier-wait, and steal events into its
// ring buffers, and every recorded claim feeds its sampled claim stream
// through the metrics claim hook. Event tracing implies metrics — a
// machine built with WithEventTrace allocates a recorder even without
// WithMetrics — so the tracing-off hot path keeps the metrics
// discipline's single branch (BenchmarkEventTraceOffOverhead pins it).
// The recorder's worker count must match the machine's. Tracing only
// observes; kernel.DifferentialEventTrace proves traced runs stay
// byte-identical to untraced ones.
func WithEventTrace(r *evtrace.Recorder) Option { return func(m *Machine) { m.evt = r } }

// WithChaos attaches a deterministic schedule-perturbation injector: the
// pool and team execution backends deliver its faults at their
// instrumented yield points (loop iterations, barrier arrivals, steal
// chunk deliveries), and every recorded claim site drives its loss
// perturbations through the metrics claim hook. Chaos implies metrics —
// a machine built with WithChaos allocates a recorder even without
// WithMetrics — because the claim sites are the metrics layer's. Faults
// only burn time and yield, so a perturbed run of a deterministic kernel
// must produce byte-identical results; kernel.DifferentialChaos enforces
// that across the whole registry. Never time a chaos run.
func WithChaos(inj *chaos.Injector) Option { return func(m *Machine) { m.chaos = inj } }

// New returns a Machine with p workers. p must be >= 1. The caller owns the
// machine and must Close it to release the workers.
func New(p int, opts ...Option) *Machine {
	if p < 1 {
		panic("machine: p must be >= 1")
	}
	m := &Machine{
		p:       p,
		policy:  sched.Block,
		chunk:   sched.DefaultChunk,
		barKind: barrier.KindSense,
	}
	for _, o := range opts {
		o(m)
	}
	if m.evt != nil && m.evt.P() != p {
		panic(fmt.Sprintf("machine: event-trace recorder has %d workers, machine has %d", m.evt.P(), p))
	}
	if m.chaos != nil || m.evt != nil {
		// Chaos and event tracing imply metrics: the claim sites that feed
		// the injector's loss faults, the invariant checker, and the trace
		// recorder's sampled claim stream all live on the recorder.
		if m.rec == nil {
			m.rec = metrics.NewRecorder(p)
		}
		var hooks metrics.ClaimHooks
		if m.chaos != nil {
			hooks = append(hooks, m.chaos)
		}
		if m.evt != nil {
			hooks = append(hooks, m.evt)
			// Fired chaos faults render as timeline spans.
			m.chaos.SetSink(m.evt)
		}
		if len(hooks) == 1 {
			m.rec.SetClaimHook(hooks[0])
		} else {
			m.rec.SetClaimHook(hooks)
		}
	}
	// The caller participates in both barrier phases, so the party is p+1.
	m.bar = barrier.New(m.barKind, p+1)
	m.teamBar = newTeamBarrier(p)
	m.teamCur = sched.NewCursor(m.policy, 0, p, m.chunk)
	m.steal = sched.NewStealer(p)
	m.step.panics = make([]any, p)
	for w := 0; w < p; w++ {
		go m.worker(w)
	}
	return m
}

// P returns the number of physical workers.
func (m *Machine) P() int { return m.p }

// Policy returns the partitioning policy.
func (m *Machine) Policy() sched.Policy { return m.policy }

// Chunk returns the configured chunk size (WithChunk, default
// sched.DefaultChunk). The trace backend needs it to replay the stealing
// policy's chunk geometry deterministically.
func (m *Machine) Chunk() int { return m.chunk }

// Exec returns the default execution backend chosen with WithExec.
func (m *Machine) Exec() Exec { return m.exec }

// Metrics returns the machine's live-metrics recorder, or nil when the
// machine was created without WithMetrics. The nil propagates through the
// recorder's nil-safe methods, so callers thread it unconditionally.
func (m *Machine) Metrics() *metrics.Recorder { return m.rec }

// Chaos returns the machine's schedule-perturbation injector, or nil when
// the machine was created without WithChaos. The exec backends consult it
// when building their contexts.
func (m *Machine) Chaos() *chaos.Injector { return m.chaos }

// Events returns the machine's event-trace flight recorder, or nil when
// the machine was created without WithEventTrace. The nil propagates
// through the recorder's nil-safe methods, so callers thread it
// unconditionally.
func (m *Machine) Events() *evtrace.Recorder { return m.evt }

// nextSeq advances the machine's step sequence for event-trace span
// round ids. It stays zero with tracing off: the ids only label spans.
func (m *Machine) nextSeq() uint32 {
	if m.evt == nil {
		return 0
	}
	m.stepSeq++
	return m.stepSeq
}

// Snapshot aggregates the metrics recorder at a synchronization point (no
// round or region in flight). It returns a zero Snapshot when metrics are
// off.
func (m *Machine) Snapshot() metrics.Snapshot { return m.rec.Snapshot() }

// Round returns the current round id. Round ids start at 0 and advance by
// NextRound (or by kernels using their own loop counters).
func (m *Machine) Round() uint32 { return m.round }

// NextRound advances the machine's round counter and returns the new id,
// which is always >= 1 and therefore valid for cw.Cell claims.
func (m *Machine) NextRound() uint32 {
	m.round++
	return m.round
}

// ResetRound rewinds the round counter to 0, for reusing a machine across
// independent kernel executions whose cw arrays have been Reset.
func (m *Machine) ResetRound() { m.round = 0 }

// Close shuts the worker pool down. The machine must not be used after
// Close.
func (m *Machine) Close() {
	if m.closed {
		return
	}
	m.closed = true
	m.step = stepDesc{quit: true}
	m.bar.Wait(m.p) // start phase: release workers into the quit branch
}

// ParallelFor executes one PRAM round: body(i) for every i in [0, n),
// work-shared over the P workers, with an implicit barrier before
// ParallelFor returns. The barrier is the synchronization point the paper
// requires between a concurrent write and its dependent reads.
//
// body must be safe for concurrent invocation on distinct i.
func (m *Machine) ParallelFor(n int, body func(i int)) {
	m.ParallelForWorker(n, func(i, _ int) { body(i) })
}

// ParallelForWorker is ParallelFor with the executing worker's id (in
// [0, P())) passed to the body, for per-worker accumulators.
func (m *Machine) ParallelForWorker(n int, body func(i, w int)) {
	if m.closed {
		panic("machine: use after Close")
	}
	if n <= 0 {
		return
	}
	// Single worker: run inline; the pool would only add barrier latency.
	if m.p == 1 {
		if m.rec != nil {
			a := m.evt.Worker(0).Begin(evtrace.KindRound, m.nextSeq())
			t0 := time.Now()
			runSerial(m.policy, m.chunk, n, body)
			m.rec.Shard(0).AddBusy(time.Since(t0))
			a.End()
			return
		}
		runSerial(m.policy, m.chunk, n, body)
		return
	}
	m.step = stepDesc{
		n:       n,
		seq:     m.nextSeq(),
		body:    body,
		cursor:  m.cursorFor(n),
		stealer: m.stealerFor(n),
		panics:  m.step.panics,
	}
	m.runStep()
}

// ParallelSteal executes one PRAM round under work stealing regardless of
// the machine's configured policy: the index space [0, n) is cut into
// chunks seeded onto per-worker deques (each worker's block share), and
// body receives claimed chunks [lo, hi) with the claiming worker's id —
// owners in ascending index order, thieves wherever they struck. It is the
// entry point for irregular loops (skewed per-index cost) whose kernels
// opt into stealing explicitly; regular loops should keep ParallelRange /
// ParallelBounds. Implicit barrier on return, like every Parallel* round.
func (m *Machine) ParallelSteal(n int, body func(lo, hi, w int)) {
	if m.closed {
		panic("machine: use after Close")
	}
	if n <= 0 {
		return
	}
	if m.p == 1 {
		if m.rec != nil {
			a := m.evt.Worker(0).Begin(evtrace.KindRound, m.nextSeq())
			t0 := time.Now()
			body(0, n, 0)
			m.rec.Shard(0).AddBusy(time.Since(t0))
			a.End()
			return
		}
		body(0, n, 0)
		return
	}
	m.steal.Reset(n, m.chunk)
	m.step = stepDesc{
		n:       n,
		seq:     m.nextSeq(),
		ranged:  body,
		stealer: m.steal,
		panics:  m.step.panics,
	}
	m.runStep()
}

// ParallelRange executes one PRAM round in block form: each worker receives
// its contiguous share [lo, hi) once. It is the natural shape for
// re-initialization passes (e.g. the gatekeeper method's per-round reset)
// and for per-worker reductions. The partitioning policy is always Block.
func (m *Machine) ParallelRange(n int, body func(lo, hi, w int)) {
	if m.closed {
		panic("machine: use after Close")
	}
	if n <= 0 {
		return
	}
	if m.p == 1 {
		if m.rec != nil {
			a := m.evt.Worker(0).Begin(evtrace.KindRound, m.nextSeq())
			t0 := time.Now()
			body(0, n, 0)
			m.rec.Shard(0).AddBusy(time.Since(t0))
			a.End()
			return
		}
		body(0, n, 0)
		return
	}
	m.step = stepDesc{
		n:      n,
		seq:    m.nextSeq(),
		ranged: body,
		panics: m.step.panics,
	}
	m.runStep()
}

// ParallelBounds executes one PRAM round in block form over caller-supplied
// shard boundaries: worker w receives the contiguous range
// [bounds[w], bounds[w+1]) once. It is ParallelRange with the boundary
// placement chosen by the caller — typically the equal-arc vertex shards of
// graph.ArcBounds — so loops whose per-index cost is skewed can balance by
// work instead of count. len(bounds) must be P()+1 and bounds must be
// non-decreasing; workers with an empty shard skip the body.
func (m *Machine) ParallelBounds(bounds []int, body func(lo, hi, w int)) {
	if m.closed {
		panic("machine: use after Close")
	}
	if len(bounds) != m.p+1 {
		panic(fmt.Sprintf("machine: ParallelBounds: %d bounds for %d workers", len(bounds), m.p))
	}
	if bounds[m.p] <= bounds[0] {
		return
	}
	if m.p == 1 {
		if m.rec != nil {
			a := m.evt.Worker(0).Begin(evtrace.KindRound, m.nextSeq())
			t0 := time.Now()
			body(bounds[0], bounds[1], 0)
			m.rec.Shard(0).AddBusy(time.Since(t0))
			a.End()
			return
		}
		body(bounds[0], bounds[1], 0)
		return
	}
	m.step = stepDesc{
		n:      bounds[m.p],
		seq:    m.nextSeq(),
		ranged: body,
		bounds: bounds,
		panics: m.step.panics,
	}
	m.runStep()
}

// ParallelFor2D executes body(i, j) for every pair in [0, n1) x [0, n2),
// collapsing the two loops into one index space exactly like the paper's
// `#pragma omp for collapse(2)` in the maximum kernel (Figure 4).
func (m *Machine) ParallelFor2D(n1, n2 int, body func(i, j int)) {
	if n1 <= 0 || n2 <= 0 {
		return
	}
	total := n1 * n2
	if total/n1 != n2 {
		panic(fmt.Sprintf("machine: ParallelFor2D overflow: %d x %d", n1, n2))
	}
	m.ParallelFor(total, func(k int) {
		body(k/n2, k%n2)
	})
}

func (m *Machine) cursorFor(n int) *sched.Cursor {
	if m.policy == sched.Dynamic || m.policy == sched.Guided {
		return sched.NewCursor(m.policy, n, m.p, m.chunk)
	}
	return nil
}

// stealerFor resets and returns the machine's stealer when the configured
// policy is Stealing, nil otherwise. Safe to reset caller-side: all claims
// of the previous round happened before its end barrier, which the caller
// passed before setting up this round.
func (m *Machine) stealerFor(n int) *sched.Stealer {
	if m.policy != sched.Stealing {
		return nil
	}
	m.steal.Reset(n, m.chunk)
	return m.steal
}

func (m *Machine) runStep() {
	m.bar.Wait(m.p) // start phase: workers pick up m.step
	m.bar.Wait(m.p) // end phase: all workers finished their shares
	m.reraise()
}

// reraise re-raises the first recorded worker panic on the caller,
// clearing every slot so a multi-worker panic cannot leak into the next
// step.
func (m *Machine) reraise() {
	var first any
	for w := 0; w < m.p; w++ {
		if pv := m.step.panics[w]; pv != nil {
			m.step.panics[w] = nil
			if first == nil {
				first = pv
			}
		}
	}
	if first != nil {
		panic(first)
	}
}

func (m *Machine) worker(id int) {
	for {
		m.bar.Wait(id) // start phase
		st := m.step
		if st.quit {
			return
		}
		// The per-machine metrics enable is this one branch: the entire
		// instrumented step path (busy/barrier timing, pprof round-phase
		// labels) lives behind it, so a machine without WithMetrics runs
		// the loop below exactly as before.
		if m.rec != nil {
			m.runStepMetrics(st, id)
			continue // runStepMetrics includes the end-phase wait
		}
		if st.team != nil {
			m.runTeamShare(st, id)
		} else {
			m.runShare(st, id)
		}
		m.bar.Wait(id) // end phase
	}
}

// runStepMetrics is worker id's instrumented step path. The share runs
// under a pprof "round-phase: work" label with its wall time credited to
// the worker's shard as busy time — minus, for team regions, the in-region
// barrier waits that TeamCtx.Barrier credits separately — and the
// end-phase pool wait runs under "round-phase: barrier-wait" and is
// credited as barrier wait. The start-phase wait is deliberately not
// counted: it measures the caller's serial sections, not the round.
//
// The event-trace spans ride the same two phases: the work share becomes
// a per-worker round span (region span for team steps — the in-region
// team loops emit their own nested round spans) and the end-phase wait a
// barrier span. With tracing off the spans are nil-buffer no-ops, so the
// path's enable stays the worker loop's single `m.rec != nil` branch.
func (m *Machine) runStepMetrics(st stepDesc, id int) {
	sh := m.rec.Shard(id)
	eb := m.evt.Worker(id)
	pprof.Do(context.Background(), pprof.Labels("round-phase", "work"), func(context.Context) {
		kind := evtrace.KindRound
		if st.team != nil {
			kind = evtrace.KindRegion
		}
		a := eb.Begin(kind, st.seq)
		b0 := sh.BarrierWaitTotal()
		t0 := time.Now()
		if st.team != nil {
			m.runTeamShare(st, id)
		} else {
			m.runShare(st, id)
		}
		sh.AddBusy(time.Since(t0) - (sh.BarrierWaitTotal() - b0))
		a.End()
	})
	pprof.Do(context.Background(), pprof.Labels("round-phase", "barrier-wait"), func(context.Context) {
		a := eb.Begin(evtrace.KindBarrier, st.seq)
		t0 := time.Now()
		m.bar.Wait(id) // end phase
		sh.AddBarrierWait(time.Since(t0))
		a.End()
	})
}

// runShare executes worker id's share of the step, capturing panics so a
// failing body cannot deadlock the pool at the end barrier.
func (m *Machine) runShare(st stepDesc, id int) {
	defer func() {
		if pv := recover(); pv != nil {
			st.panics[id] = pv
		}
	}()
	if st.stealer != nil {
		var c sched.StealCounts
		if st.body != nil {
			c = st.stealer.Run(id, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					st.body(i, id)
				}
			})
		} else {
			c = st.stealer.Run(id, func(lo, hi int) { st.ranged(lo, hi, id) })
		}
		m.rec.Shard(id).AddSteal(c.Local, c.Steals, c.Fails)
		m.evt.Worker(id).Point(evtrace.KindSteal, st.seq, evtrace.PackSteal(c.Local, c.Steals, c.Fails))
		return
	}
	if st.ranged != nil {
		var lo, hi int
		if st.bounds != nil {
			lo, hi = st.bounds[id], st.bounds[id+1]
		} else {
			lo, hi = sched.BlockRange(st.n, m.p, id)
		}
		if lo < hi {
			st.ranged(lo, hi, id)
		}
		return
	}
	sched.For(m.policy, st.cursor, st.n, m.p, id, func(i int) {
		st.body(i, id)
	})
}

func runSerial(policy sched.Policy, chunk, n int, body func(i, w int)) {
	cur := (*sched.Cursor)(nil)
	if policy == sched.Dynamic || policy == sched.Guided {
		cur = sched.NewCursor(policy, n, 1, chunk)
	}
	sched.For(policy, cur, n, 1, 0, func(i int) { body(i, 0) })
}
