// Team execution mode: one persistent parallel region per kernel.
//
// ParallelFor re-enters the worker pool from the caller on every PRAM
// round, which costs two (P+1)-party barrier phases, a fresh step
// descriptor, and (for dynamic/guided policies) a cursor allocation per
// round — plus any serial caller-side work between rounds runs with all P
// workers parked. The paper's OpenMP kernels instead open a single
// `#pragma omp parallel` region around the whole round loop (Figures 3-5)
// and pay one team barrier per round. Team reproduces that shape: the
// kernel body runs once on all P workers simultaneously, and the in-region
// primitives on TeamCtx — For / ForWorker / Range (work-shared loop ending
// in a team barrier), Single (one worker executes, the rest wait), and
// Barrier — mirror `omp for`, `omp single` and `#pragma omp barrier`. Per
// empty round the fixed cost drops from two (P+1)-party phases plus step
// setup to one P-party phase.
//
// A team body is SPMD code: every worker executes the same statements on
// the same shared state, so control flow that feeds a team primitive
// (loop trip counts, the n passed to For/Range, break decisions) must be
// computed identically by all workers — either from worker-local
// deterministic state or from shared state read after a barrier. TeamFlag
// packages the standard convergence-flag pattern race-free.
package machine

import (
	"runtime"
	"sync/atomic"
	"time"

	evtrace "crcwpram/internal/core/trace"
	"crcwpram/internal/sched"
)

// teamSpins bounds busy-waiting in team-internal spin loops before
// yielding, mirroring the barrier package's spin-then-yield policy.
const teamSpins = 128

// teamAbort is the sentinel panic a worker raises to bail out of a team
// body after another worker's panic poisoned the region. It is recovered
// by the team driver and never recorded as a user panic.
type teamAbort struct{}

// teamBarrier is a sense-reversing barrier for the P workers only (the
// caller is not a party: it waits at the machine's end phase). Unlike
// barrier.Sense it is abortable: when a worker panics inside a team body it
// can never arrive, so waiters poll the machine's abort flag and bail out
// instead of deadlocking. After an aborted step the internal state is
// mid-phase garbage; the driver replaces the barrier wholesale.
type teamBarrier struct {
	parties int32
	count   atomic.Int32
	sense   atomic.Uint32
}

func newTeamBarrier(parties int) *teamBarrier {
	b := &teamBarrier{parties: int32(parties)}
	b.count.Store(int32(parties))
	return b
}

// wait blocks until all workers arrive, returning false if the team was
// aborted while waiting.
func (b *teamBarrier) wait(abort *atomic.Bool) bool {
	local := b.sense.Load() ^ 1
	if b.count.Add(-1) == 0 {
		b.count.Store(b.parties)
		b.sense.Store(local)
		return true
	}
	for spins := 0; b.sense.Load() != local; spins++ {
		if spins > teamSpins {
			// Abort is the cold path: check it only once spinning has
			// clearly stalled, keeping the hot release loop load-only.
			if abort.Load() {
				return false
			}
			runtime.Gosched()
		}
	}
	return true
}

// TeamCtx is one worker's view of a team region. It is valid only inside
// the body passed to Machine.Team and must not leak to other goroutines.
type TeamCtx struct {
	m *Machine
	// W is this worker's id in [0, P). Use it for worker-local scratch
	// that lives across rounds without per-round closure captures.
	W int
	// epoch counts this worker's dynamic/guided work-shared loops, keying
	// the shared cursor's reset protocol. All workers execute the same
	// loop sequence, so their epochs agree.
	epoch uint64
	// loops counts this worker's work-shared loops of every policy — the
	// region-local round ids event-trace spans carry. Like epoch it
	// advances identically in every SPMD copy.
	loops uint32
}

// beginLoop advances the worker's loop counter and opens the loop's
// event-trace round span — a nil-buffer no-op when tracing is off.
func (tc *TeamCtx) beginLoop() evtrace.Active {
	tc.loops++
	return tc.m.evt.Worker(tc.W).Begin(evtrace.KindRound, tc.loops)
}

// P returns the team size (the machine's worker count).
func (tc *TeamCtx) P() int { return tc.m.p }

// Barrier synchronizes the team: no worker proceeds until all have
// arrived. It is the in-region synchronization point the paper requires
// between a concurrent-write round and its dependent reads.
func (tc *TeamCtx) Barrier() {
	if tc.m.p == 1 {
		return
	}
	// Metrics on: time the wait and credit it to this worker's shard; the
	// machine's region-wall accounting subtracts it from busy time. The
	// event-trace barrier span (nil-buffer no-op when tracing is off)
	// carries the current loop id, so barrier skew lines up with the
	// round whose writes the barrier publishes.
	if tc.m.rec != nil {
		a := tc.m.evt.Worker(tc.W).Begin(evtrace.KindBarrier, tc.loops)
		t0 := time.Now()
		ok := tc.m.teamBar.wait(&tc.m.teamAborted)
		tc.m.rec.Shard(tc.W).AddBarrierWait(time.Since(t0))
		a.End()
		if !ok {
			panic(teamAbort{})
		}
		return
	}
	if !tc.m.teamBar.wait(&tc.m.teamAborted) {
		panic(teamAbort{})
	}
}

// For executes one work-shared PRAM round inside the region: body(i) for
// every i in [0, n), partitioned over the team by the machine's policy,
// with a team barrier before For returns. All workers must call For with
// the same n (SPMD discipline); bodies run concurrently on distinct i.
func (tc *TeamCtx) For(n int, body func(i int)) {
	m := tc.m
	if m.p == 1 {
		if n > 0 {
			a := tc.beginLoop()
			runSerial(m.policy, m.chunk, n, func(i, _ int) { body(i) })
			a.End()
		}
		return
	}
	if n > 0 {
		a := tc.beginLoop()
		if m.policy == sched.Stealing {
			st := tc.loopStealer(n)
			c := st.Run(tc.W, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					body(i)
				}
			})
			m.rec.Shard(tc.W).AddSteal(c.Local, c.Steals, c.Fails)
			m.evt.Worker(tc.W).Point(evtrace.KindSteal, tc.loops, evtrace.PackSteal(c.Local, c.Steals, c.Fails))
		} else {
			sched.For(m.policy, tc.loopCursor(n), n, m.p, tc.W, body)
		}
		a.End()
	}
	tc.Barrier()
}

// ForWorker is For with the executing worker's id passed to the body, for
// per-worker accumulators.
func (tc *TeamCtx) ForWorker(n int, body func(i, w int)) {
	w := tc.W
	tc.For(n, func(i int) { body(i, w) })
}

// Range executes one work-shared round in block form: this worker's
// contiguous share [lo, hi) of [0, n) is passed once, followed by a team
// barrier. The partitioning is always Block, like ParallelRange. The
// worker id is available as tc.W.
func (tc *TeamCtx) Range(n int, body func(lo, hi int)) {
	m := tc.m
	if m.p == 1 {
		if n > 0 {
			a := tc.beginLoop()
			body(0, n)
			a.End()
		}
		return
	}
	if n > 0 {
		a := tc.beginLoop()
		lo, hi := sched.BlockRange(n, m.p, tc.W)
		if lo < hi {
			body(lo, hi)
		}
		a.End()
	}
	tc.Barrier()
}

// Bounds executes one work-shared round in block form over caller-supplied
// shard boundaries: this worker receives [bounds[tc.W], bounds[tc.W+1])
// once, followed by a team barrier — the in-region analogue of
// Machine.ParallelBounds. All workers must pass the same bounds slice (SPMD
// discipline), with len(bounds) == P()+1 and non-decreasing entries; a
// worker with an empty shard goes straight to the barrier.
func (tc *TeamCtx) Bounds(bounds []int, body func(lo, hi int)) {
	m := tc.m
	if len(bounds) != m.p+1 {
		panic("machine: TeamCtx.Bounds: bounds length must be P()+1")
	}
	if m.p == 1 {
		if bounds[0] < bounds[1] {
			a := tc.beginLoop()
			body(bounds[0], bounds[1])
			a.End()
		}
		return
	}
	a := tc.beginLoop()
	if lo, hi := bounds[tc.W], bounds[tc.W+1]; lo < hi {
		body(lo, hi)
	}
	a.End()
	tc.Barrier()
}

// Steal executes one work-shared round under work stealing regardless of
// the machine's policy — the in-region analogue of Machine.ParallelSteal.
// The index space [0, n) is cut into chunks seeded onto per-worker deques;
// body receives each chunk this worker claims (its own share in ascending
// order, then whatever it steals), followed by a team barrier. All workers
// must call Steal with the same n (SPMD discipline).
func (tc *TeamCtx) Steal(n int, body func(lo, hi int)) {
	m := tc.m
	if m.p == 1 {
		if n > 0 {
			a := tc.beginLoop()
			body(0, n)
			a.End()
		}
		return
	}
	if n > 0 {
		a := tc.beginLoop()
		st := tc.loopStealer(n)
		c := st.Run(tc.W, body)
		m.rec.Shard(tc.W).AddSteal(c.Local, c.Steals, c.Fails)
		m.evt.Worker(tc.W).Point(evtrace.KindSteal, tc.loops, evtrace.PackSteal(c.Local, c.Steals, c.Fails))
		a.End()
	}
	tc.Barrier()
}

// Single executes f on exactly one worker (worker 0) while the others wait
// at the closing team barrier — the in-region replacement for caller-side
// serial sections (OpenMP's `single`). Data f reads must have been
// published by a preceding For/Range/Barrier; f's writes are visible to
// the whole team after Single returns.
func (tc *TeamCtx) Single(f func()) {
	if tc.m.p == 1 {
		f()
		return
	}
	if tc.W == 0 {
		f()
	}
	tc.Barrier()
}

// loopCursor returns the machine's pre-allocated shared cursor, reset for
// a fresh dynamic/guided loop over [0, n), or nil for static policies.
// Exactly one worker per loop instance wins the reset ticket (a CAS from
// epoch-1 to epoch), performs the reset, and publishes it through the
// ready word; the rest spin until the reset is visible. All claims of the
// previous loop happened before its closing barrier, which every worker
// passed before entering this loop, so the reset can never race a stale
// claim.
func (tc *TeamCtx) loopCursor(n int) *sched.Cursor {
	m := tc.m
	if m.policy != sched.Dynamic && m.policy != sched.Guided {
		return nil
	}
	tc.epoch++
	e := tc.epoch
	if m.teamTicket.CompareAndSwap(e-1, e) {
		m.teamCur.Reset(n)
		m.teamReady.Store(e)
	} else {
		for spins := 0; m.teamReady.Load() < e; spins++ {
			if spins > teamSpins {
				if m.teamAborted.Load() {
					panic(teamAbort{})
				}
				runtime.Gosched()
			}
		}
	}
	return m.teamCur
}

// loopStealer is loopCursor's work-stealing twin: exactly one worker per
// stealing loop wins the reset ticket, seeds the machine's stealer for
// [0, n), and publishes it through the ready word. It shares the epoch
// sequence with loopCursor — a worker has one loop counter, and all
// workers execute the same loop sequence, so the ticket words stay
// consistent however cursor and stealing loops interleave.
func (tc *TeamCtx) loopStealer(n int) *sched.Stealer {
	m := tc.m
	tc.epoch++
	e := tc.epoch
	if m.teamTicket.CompareAndSwap(e-1, e) {
		m.steal.Reset(n, m.chunk)
		m.teamReady.Store(e)
	} else {
		for spins := 0; m.teamReady.Load() < e; spins++ {
			if spins > teamSpins {
				if m.teamAborted.Load() {
					panic(teamAbort{})
				}
				runtime.Gosched()
			}
		}
	}
	return m.steal
}

// Team runs body once on all P workers simultaneously — one persistent
// parallel region, the shape of the paper's OpenMP kernels. The caller
// blocks until every worker has returned from body. Rounds inside the
// region are expressed with tc.For/tc.Range (implicit team barrier each)
// and serial sections with tc.Single, so a whole kernel pays region entry
// once instead of two pool barrier phases per round.
//
// If a worker's body panics, the region is aborted: the remaining workers
// bail at their next team synchronization point, the panic is re-raised on
// the caller, and the machine remains usable. ParallelFor and Team calls
// may be freely interleaved on one machine.
func (m *Machine) Team(body func(tc *TeamCtx)) {
	if m.closed {
		panic("machine: use after Close")
	}
	if m.p == 1 {
		// Single worker: the caller is the team. Barriers are no-ops.
		if m.rec != nil {
			a := m.evt.Worker(0).Begin(evtrace.KindRegion, m.nextSeq())
			t0 := time.Now()
			body(&TeamCtx{m: m})
			m.rec.Shard(0).AddBusy(time.Since(t0))
			a.End()
			return
		}
		body(&TeamCtx{m: m})
		return
	}
	// Fresh region: worker-local epochs restart at 0, so rewind the shared
	// cursor protocol words. The start barrier publishes this to workers.
	m.teamTicket.Store(0)
	m.teamReady.Store(0)
	m.step = stepDesc{team: body, seq: m.nextSeq(), panics: m.step.panics}
	m.bar.Wait(m.p) // start phase: workers pick up the region body
	m.bar.Wait(m.p) // end phase: all workers have left the region
	if m.teamAborted.Load() {
		// The team barrier was abandoned mid-phase; replace it.
		m.teamBar = newTeamBarrier(m.p)
		m.teamAborted.Store(false)
	}
	m.reraise()
}

// runTeamShare executes worker id's copy of the region body, capturing
// panics so a failing body cannot deadlock the pool: a user panic is
// recorded and poisons the region (peers bail at their next barrier with a
// teamAbort, which is swallowed here).
func (m *Machine) runTeamShare(st stepDesc, id int) {
	defer func() {
		if pv := recover(); pv != nil {
			if _, bail := pv.(teamAbort); !bail {
				st.panics[id] = pv
				m.teamAborted.Store(true)
			}
		}
	}()
	st.team(&TeamCtx{m: m, W: id})
}

// TeamFlag is a rotating convergence flag for team-mode round loops: the
// race-free, barrier-free replacement for the caller-owned atomic that
// pool-mode kernels reset between rounds.
//
// A round loop needs one shared word per round — "did anything change?" —
// that is primed before the round, written during it, and read after it to
// decide termination. Inside one region the priming is the subtle part: a
// worker that primes the flag for round r while a slow peer is still
// reading it for round r-1 would corrupt the peer's break decision. Three
// rotating slots (indexed round mod 3) make the pattern safe with no extra
// barrier, provided each round ends with at least one team barrier and the
// calls follow the round structure:
//
//	Set(r+1, primeValue)  at the top of round r (any or all workers);
//	Set(r,   seenValue)   during round r's work-shared loops;
//	Get(r)                after round r's closing barrier.
//
// Why three slots suffice: slot (r+1)%3 equals slot (r-2)%3, and its last
// reader — Get(r-2) — ran before that worker arrived at round r-1's
// closing barrier, which every worker passes before priming at the top of
// round r. Writes for round r+1 begin only after round r's barrier, after
// all primes. Two slots would put the prime and the previous read in the
// same unsynchronized window; three separates every conflicting pair by a
// barrier. All accesses are atomic, so concurrent primes/sets of the same
// value (the common-CW idiom) are race-detector clean.
type TeamFlag struct {
	slots [3]atomic.Uint32
}

// Set stores v into round r's slot. Safe for concurrent use by all workers
// when they store the same value (prime and progress-mark are both common
// concurrent writes).
func (f *TeamFlag) Set(r, v uint32) { f.slots[r%3].Store(v) }

// Get loads round r's slot. Call it only after round r's closing barrier.
func (f *TeamFlag) Get(r uint32) uint32 { return f.slots[r%3].Load() }

// Exec selects how a kernel drives the machine: one pool round per
// ParallelFor call, one persistent team region per kernel, or a serial
// counting replay (trace).
type Exec int

const (
	// ExecPool re-enters the worker pool from the caller each round
	// (ParallelFor / ParallelRange).
	ExecPool Exec = iota
	// ExecTeam runs the whole kernel inside one Team region.
	ExecTeam
	// ExecTrace replays the kernel serially with P logical workers,
	// counting steps, barriers, and per-worker iterations instead of
	// using the pool (see internal/core/exec). It is an observability
	// mode, not a timed one, so Execs excludes it.
	ExecTrace
)

// Execs lists the timed execution modes in presentation order. ExecTrace
// is deliberately absent: its serial replay measures structure, not time.
var Execs = []Exec{ExecPool, ExecTeam}

// String names the execution mode as the -exec flag spells it ("pool",
// "team", "trace").
func (e Exec) String() string {
	switch e {
	case ExecPool:
		return "pool"
	case ExecTeam:
		return "team"
	case ExecTrace:
		return "trace"
	default:
		return "unknown-exec"
	}
}

// ParseExec converts an execution-mode name (as produced by String) back
// to an Exec. It accepts every backend, including the untimed "trace".
func ParseExec(s string) (Exec, bool) {
	for _, e := range []Exec{ExecPool, ExecTeam, ExecTrace} {
		if e.String() == s {
			return e, true
		}
	}
	return 0, false
}
