package machine

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"crcwpram/internal/barrier"
	"crcwpram/internal/sched"
)

func TestNewRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestParallelForExactCover(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, policy := range sched.Policies {
			m := New(p, WithPolicy(policy), WithChunk(16))
			for _, n := range []int{0, 1, 7, 100, 1023} {
				counts := make([]atomic.Int32, n)
				m.ParallelFor(n, func(i int) { counts[i].Add(1) })
				for i := range counts {
					if k := counts[i].Load(); k != 1 {
						t.Fatalf("p=%d %v n=%d: index %d visited %d times", p, policy, n, i, k)
					}
				}
			}
			m.Close()
		}
	}
}

func TestParallelForWorkerIDsInRange(t *testing.T) {
	const p = 4
	m := New(p)
	defer m.Close()
	var bad atomic.Int32
	m.ParallelForWorker(1000, func(i, w int) {
		if w < 0 || w >= p {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id out of range")
	}
}

func TestParallelForImplicitBarrier(t *testing.T) {
	// Values written in round k must all be visible in round k+1: the
	// defining property of the implicit barrier.
	m := New(4)
	defer m.Close()
	const n = 10000
	a := make([]uint32, n)
	b := make([]uint32, n)
	m.ParallelFor(n, func(i int) { a[i] = uint32(i) + 1 })
	m.ParallelFor(n, func(i int) { b[i] = a[(i+1)%n] })
	for i := 0; i < n; i++ {
		if b[i] != uint32((i+1)%n)+1 {
			t.Fatalf("b[%d] = %d: round-1 write not visible in round 2", i, b[i])
		}
	}
}

func TestParallelRangeBlocksPartition(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		m := New(p)
		const n = 103
		counts := make([]atomic.Int32, n)
		var calls atomic.Int32
		m.ParallelRange(n, func(lo, hi, w int) {
			calls.Add(1)
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
		})
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("p=%d: index %d covered %d times", p, i, counts[i].Load())
			}
		}
		if c := calls.Load(); c > int32(p) {
			t.Fatalf("p=%d: %d range calls, want <= %d", p, c, p)
		}
		m.Close()
	}
}

func TestParallelFor2DCollapse(t *testing.T) {
	m := New(4)
	defer m.Close()
	const n1, n2 = 37, 53
	counts := make([]atomic.Int32, n1*n2)
	m.ParallelFor2D(n1, n2, func(i, j int) {
		if i < 0 || i >= n1 || j < 0 || j >= n2 {
			panic("index out of range")
		}
		counts[i*n2+j].Add(1)
	})
	for k := range counts {
		if counts[k].Load() != 1 {
			t.Fatalf("pair %d visited %d times", k, counts[k].Load())
		}
	}
	// Degenerate dimensions are no-ops.
	m.ParallelFor2D(0, 10, func(i, j int) { t.Error("body called for n1=0") })
	m.ParallelFor2D(10, 0, func(i, j int) { t.Error("body called for n2=0") })
}

func TestRoundCounter(t *testing.T) {
	m := New(2)
	defer m.Close()
	if m.Round() != 0 {
		t.Fatalf("fresh Round() = %d, want 0", m.Round())
	}
	if r := m.NextRound(); r != 1 {
		t.Fatalf("first NextRound() = %d, want 1", r)
	}
	if r := m.NextRound(); r != 2 {
		t.Fatalf("second NextRound() = %d, want 2", r)
	}
	m.ResetRound()
	if m.Round() != 0 {
		t.Fatal("ResetRound did not rewind")
	}
}

func TestMachineReuseManyRounds(t *testing.T) {
	m := New(3)
	defer m.Close()
	const rounds = 500
	var total atomic.Int64
	for r := 0; r < rounds; r++ {
		m.ParallelFor(10, func(i int) { total.Add(1) })
	}
	if total.Load() != rounds*10 {
		t.Fatalf("total = %d, want %d", total.Load(), rounds*10)
	}
}

func TestBodyPanicPropagatesAndPoolSurvives(t *testing.T) {
	m := New(4)
	defer m.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic in body did not propagate to caller")
			}
		}()
		m.ParallelFor(100, func(i int) {
			if i == 41 {
				panic("boom")
			}
		})
	}()
	// The pool must still work after a body panic.
	var n atomic.Int32
	m.ParallelFor(50, func(i int) { n.Add(1) })
	if n.Load() != 50 {
		t.Fatalf("pool broken after panic: %d visits, want 50", n.Load())
	}
}

func TestUseAfterClosePanics(t *testing.T) {
	m := New(2)
	m.Close()
	m.Close() // double Close is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("ParallelFor after Close did not panic")
		}
	}()
	m.ParallelFor(1, func(i int) {})
}

func TestAllBarrierKinds(t *testing.T) {
	for _, k := range barrier.Kinds {
		m := New(4, WithBarrier(k))
		var total atomic.Int32
		for r := 0; r < 50; r++ {
			m.ParallelFor(100, func(i int) { total.Add(1) })
		}
		if total.Load() != 5000 {
			t.Fatalf("%v: total = %d, want 5000", k, total.Load())
		}
		m.Close()
	}
}

// Property: any (n, p, policy) combination yields an exact cover and the
// machine survives repeated rounds.
func TestQuickMachineExactCover(t *testing.T) {
	f := func(nRaw uint16, pRaw, polRaw uint8) bool {
		n := int(nRaw) % 3000
		p := int(pRaw)%8 + 1
		policy := sched.Policies[int(polRaw)%len(sched.Policies)]
		m := New(p, WithPolicy(policy))
		defer m.Close()
		counts := make([]atomic.Int32, n)
		m.ParallelFor(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParallelForOverhead(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run("p="+itoa(p), func(b *testing.B) {
			m := New(p)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ParallelFor(p, func(int) {})
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestParallelFor2DOverflowPanics(t *testing.T) {
	m := New(2)
	defer m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing dimensions did not panic")
		}
	}()
	const huge = 1 << 32
	m.ParallelFor2D(huge, huge, func(i, j int) {})
}

func TestAccessors(t *testing.T) {
	m := New(3, WithPolicy(sched.Cyclic))
	defer m.Close()
	if m.P() != 3 {
		t.Fatalf("P() = %d, want 3", m.P())
	}
	if m.Policy() != sched.Cyclic {
		t.Fatalf("Policy() = %v, want cyclic", m.Policy())
	}
}

func TestParallelRangeAfterCloseAndZeroN(t *testing.T) {
	m := New(2)
	m.ParallelRange(0, func(lo, hi, w int) { t.Error("body called for n=0") })
	m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("ParallelRange after Close did not panic")
		}
	}()
	m.ParallelRange(1, func(lo, hi, w int) {})
}
