package machine

import (
	"testing"

	"crcwpram/internal/core/cw"
	evtrace "crcwpram/internal/core/trace"
)

// BenchmarkMetricsOffOverhead pins the claim in WithMetrics's doc comment:
// with metrics off (the default) the entire cost of the observability layer
// is one predictable branch in the worker loop plus one nil-shard branch
// per selection attempt. The benchmark body is the kernels' claim-site
// shape — a work-shared range whose every iteration runs a CAS-LT claim
// through Shard.Claim — so the "off" sub-benchmarks measure the
// instrumented-off path end to end, and comparing them against the same
// benchmark on the pre-metrics tree (or against "on" for the recording
// cost) is the overhead argument. BENCH_metrics_overhead.json at the
// repo root holds a committed comparison.
// BenchmarkEventTraceOffOverhead extends the metrics overhead argument
// one layer up: WithEventTrace implies metrics, so its "off" mode is the
// same single-branch path BenchmarkMetricsOffOverhead measures, and the
// "on" mode prices the full flight recorder — per-round span Begin/End
// pairs, the sampled claim hook, and the atomic win/loss counters — on
// the same claim-site-shaped body. The tracing-off row must stay within
// noise of the metrics-off row; the committed comparison lives in
// BENCH_metrics_overhead.json.
func BenchmarkEventTraceOffOverhead(b *testing.B) {
	const n = 1 << 15
	for _, mode := range []string{"off", "on"} {
		for _, p := range []int{1, 4} {
			b.Run(mode+"/p="+itoa(p), func(b *testing.B) {
				var opts []Option
				if mode == "on" {
					opts = append(opts, WithEventTrace(evtrace.New(p, evtrace.DefaultCap)))
				}
				m := New(p, opts...)
				defer m.Close()
				cells := cw.NewArray(n, cw.Packed)
				rec := m.Metrics() // nil in the off mode, as in production
				evt := m.Events()
				round := uint32(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					round++
					if round > 1<<31 {
						b.StopTimer()
						m.ParallelRange(n, func(lo, hi, _ int) { cells.ResetRange(lo, hi) })
						evt.Reset()
						round = 1
						b.StartTimer()
					}
					m.ParallelRange(n, func(lo, hi, w int) {
						sh := rec.Shard(w)
						for j := lo; j < hi; j++ {
							sh.Claim(j, round, cells.TryClaimOutcome(j, round))
						}
					})
				}
			})
		}
	}
}

func BenchmarkMetricsOffOverhead(b *testing.B) {
	const n = 1 << 15
	for _, mode := range []string{"off", "on"} {
		for _, p := range []int{1, 4} {
			b.Run(mode+"/p="+itoa(p), func(b *testing.B) {
				var opts []Option
				if mode == "on" {
					opts = append(opts, WithMetrics())
				}
				m := New(p, opts...)
				defer m.Close()
				cells := cw.NewArray(n, cw.Packed)
				rec := m.Metrics() // nil in the off mode, as in production
				round := uint32(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					round++
					if round > 1<<31 {
						b.StopTimer()
						m.ParallelRange(n, func(lo, hi, _ int) { cells.ResetRange(lo, hi) })
						round = 1
						b.StartTimer()
					}
					m.ParallelRange(n, func(lo, hi, w int) {
						sh := rec.Shard(w)
						for j := lo; j < hi; j++ {
							sh.Claim(j, round, cells.TryClaimOutcome(j, round))
						}
					})
				}
			})
		}
	}
}
