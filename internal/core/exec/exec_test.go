package exec

import (
	"reflect"
	"sync/atomic"
	"testing"

	"crcwpram/internal/core/machine"
)

// sumBody is a miniature SPMD kernel exercising every Ctx primitive: a
// flag-driven round loop that repeatedly doubles a vector until a cap,
// accumulating per-worker partial sums reduced in a Single.
func sumBody(n int, out *int64) func(Ctx) {
	// Shared scratch is allocated driver-side: under team every worker runs
	// its own copy of the body, so an in-body allocation would be
	// worker-local.
	vals := make([]int64, n)
	part := make([]int64, 64)
	return func(ctx Ctx) {
		ctx.For(n, func(i int) { vals[i] = 1 })
		done := ctx.Flag()
		done.Set(0, 0)
		for it := uint32(0); ; it++ {
			round := ctx.NextRound()
			_ = round
			done.Set(it+1, 1) // prime: assume converged
			ctx.For(n, func(i int) {
				if vals[i] < 8 {
					vals[i] *= 2
					done.Set(it, 0)
				}
			})
			if done.Get(it) == 1 {
				break
			}
		}
		ctx.Range(n, func(lo, hi, w int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			part[w] = s
		})
		ctx.Single(func() {
			var tot int64
			for w := 0; w < ctx.P(); w++ {
				tot += part[w]
				part[w] = 0
			}
			atomic.StoreInt64(out, tot)
		})
		ctx.Barrier()
		if ctx.Worker() == 0 {
			atomic.AddInt64(out, 0)
		}
	}
}

// TestBackendsAgree runs the same body under pool, team, and trace and
// expects identical results.
func TestBackendsAgree(t *testing.T) {
	for _, p := range []int{1, 3, 4} {
		m := machine.New(p)
		for _, e := range []machine.Exec{machine.ExecPool, machine.ExecTeam, machine.ExecTrace} {
			const n = 37
			var got int64
			st := Run(m, e, sumBody(n, &got))
			if got != 8*n {
				t.Errorf("p=%d exec=%v: sum = %d, want %d", p, e, got, 8*n)
			}
			if (st != nil) != (e == machine.ExecTrace) {
				t.Errorf("p=%d exec=%v: TraceStats presence wrong (%v)", p, e, st)
			}
		}
		m.Close()
	}
}

// TestTraceCounts pins the structural record of a known body: steps,
// barriers, singles, iteration totals, and the block partitioning of
// Iters.
func TestTraceCounts(t *testing.T) {
	m := machine.New(4)
	defer m.Close()
	st := Run(m, machine.ExecTrace, func(ctx Ctx) {
		ctx.For(10, func(int) {})                                // step 1
		ctx.ForWorker(6, func(int, int) {})                      // step 2
		ctx.Range(4, func(int, int, int) {})                     // step 3
		ctx.Bounds([]int{0, 0, 2, 2, 3}, func(int, int, int) {}) // step 4
		ctx.Barrier()
		ctx.Single(func() {})
		if r := ctx.NextRound(); r != 1 {
			t.Errorf("first NextRound = %d, want 1", r)
		}
		if r := ctx.NextRound(); r != 2 {
			t.Errorf("second NextRound = %d, want 2", r)
		}
	})
	if st.Steps != 4 {
		t.Errorf("Steps = %d, want 4", st.Steps)
	}
	// 4 loop barriers + 1 explicit + 1 single.
	if st.Barriers != 6 {
		t.Errorf("Barriers = %d, want 6", st.Barriers)
	}
	if st.Singles != 1 {
		t.Errorf("Singles = %d, want 1", st.Singles)
	}
	if st.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", st.Rounds)
	}
	// For(10): block over 4 = 3,3,2,2. ForWorker(6): 2,2,1,1.
	// Range(4): 1,1,1,1. Bounds: 0,2,0,1.
	want := []uint64{3 + 2 + 1 + 0, 3 + 2 + 1 + 2, 2 + 1 + 1 + 0, 2 + 1 + 1 + 1}
	if !reflect.DeepEqual(st.Iters, want) {
		t.Errorf("Iters = %v, want %v", st.Iters, want)
	}
	if st.TotalIters() != 10+6+4+3 {
		t.Errorf("TotalIters = %d, want %d", st.TotalIters(), 10+6+4+3)
	}
	if st.MaxIters() != 8 {
		t.Errorf("MaxIters = %d, want 8", st.MaxIters())
	}
}

// TestWorkerIds checks the worker id plumbing per backend: the SPMD-level
// Worker() and the per-share ids of Range.
func TestWorkerIds(t *testing.T) {
	m := machine.New(3)
	defer m.Close()
	for _, e := range []machine.Exec{machine.ExecPool, machine.ExecTeam, machine.ExecTrace} {
		var seen [3]atomic.Uint32
		var zeroes atomic.Uint32
		Run(m, e, func(ctx Ctx) {
			if ctx.Worker() == 0 {
				zeroes.Add(1)
			}
			ctx.Range(3, func(lo, hi, w int) {
				for i := lo; i < hi; i++ {
					seen[w].Add(1)
				}
			})
		})
		if zeroes.Load() != 1 {
			t.Errorf("exec=%v: %d workers claimed Worker()==0, want 1", e, zeroes.Load())
		}
		for w := range seen {
			if seen[w].Load() != 1 {
				t.Errorf("exec=%v: worker %d ran %d iterations, want 1", e, w, seen[w].Load())
			}
		}
	}
}

// TestPanicPropagates checks that a body panic surfaces on the caller
// under every backend and leaves the machine usable.
func TestPanicPropagates(t *testing.T) {
	m := machine.New(4)
	defer m.Close()
	for _, e := range []machine.Exec{machine.ExecPool, machine.ExecTeam, machine.ExecTrace} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("exec=%v: panic did not propagate", e)
				}
			}()
			Run(m, e, func(ctx Ctx) {
				ctx.For(4, func(i int) {
					if i == 2 {
						panic("boom")
					}
				})
			})
		}()
		var ok int64
		Run(m, e, sumBody(5, &ok))
		if ok != 40 {
			t.Errorf("exec=%v: machine unusable after panic (sum=%d)", e, ok)
		}
	}
}
