package exec

import (
	"crcwpram/internal/core/chaos"
	"crcwpram/internal/core/metrics"
)

// chaosCtx wraps another backend's Ctx so that every work-shared loop
// passes through the machine's chaos.Injector: per-worker stalls before
// and after loop iterations (the iteration is the claim-bearing unit —
// a stall after iteration i lands immediately before iteration i+1's
// claim), jitter at barrier arrival, and delays between claiming a steal
// chunk and executing it. The loss-driven faults (Gosched storms, sticky
// losers) do not live here: they fire from the metrics claim hook, which
// the machine wires when WithChaos is given.
//
// The wrapper is pure scheduling perturbation — it forwards every value
// and every body unchanged — so a kernel body cannot observe it except
// through timing. Run installs it around the pool and team contexts when
// the machine carries an injector; the trace backend is never wrapped
// (its serial replay has no schedule to perturb).
type chaosCtx struct {
	inner Ctx
	inj   *chaos.Injector
}

func (c *chaosCtx) P() int      { return c.inner.P() }
func (c *chaosCtx) Worker() int { return c.inner.Worker() }

func (c *chaosCtx) For(n int, body func(i int)) {
	c.inner.ForWorker(n, func(i, w int) {
		c.inj.IterPre(w)
		body(i)
		c.inj.IterPost(w)
	})
}

func (c *chaosCtx) ForWorker(n int, body func(i, w int)) {
	c.inner.ForWorker(n, func(i, w int) {
		c.inj.IterPre(w)
		body(i, w)
		c.inj.IterPost(w)
	})
}

func (c *chaosCtx) Range(n int, body func(lo, hi, w int)) {
	c.inner.Range(n, func(lo, hi, w int) {
		c.inj.IterPre(w)
		body(lo, hi, w)
		c.inj.IterPost(w)
	})
}

func (c *chaosCtx) Bounds(bounds []int, body func(lo, hi, w int)) {
	c.inner.Bounds(bounds, func(lo, hi, w int) {
		c.inj.IterPre(w)
		body(lo, hi, w)
		c.inj.IterPost(w)
	})
}

func (c *chaosCtx) StealRange(n int, body func(lo, hi, w int)) {
	c.inner.StealRange(n, func(lo, hi, w int) {
		c.inj.StealDelay(w)
		body(lo, hi, w)
		c.inj.IterPost(w)
	})
}

func (c *chaosCtx) Barrier() {
	c.inj.BarrierJitter(c.inner.Worker())
	c.inner.Barrier()
}

func (c *chaosCtx) Single(f func())            { c.inner.Single(f) }
func (c *chaosCtx) Flag() *Flag                { return c.inner.Flag() }
func (c *chaosCtx) NextRound() uint32          { return c.inner.NextRound() }
func (c *chaosCtx) Metrics() *metrics.Recorder { return c.inner.Metrics() }
