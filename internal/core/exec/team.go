package exec

import (
	"time"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
)

// teamCtx adapts a machine.TeamCtx: the body runs once per worker inside
// one persistent parallel region, every loop ends in a real sense
// barrier, and Single elects worker 0. The only translation needed is
// injecting the worker id into the Range/Bounds body signature, which
// TeamCtx exposes as a field rather than an argument.
//
// With metrics on, worker 0 is the region's coordinator: its copy of each
// loop — which opens and closes at the same barriers as everyone else's —
// supplies the round wall time, and its NextRound advances supply the
// round count, so coordinator counters are written by exactly one worker
// (the region's closing barrier publishes them to the caller).
type teamCtx struct {
	tc    *machine.TeamCtx
	flag  *Flag
	rec   *metrics.Recorder
	round uint32
}

func (c *teamCtx) P() int      { return c.tc.P() }
func (c *teamCtx) Worker() int { return c.tc.W }

// coordinates reports whether this worker records coordinator metrics.
func (c *teamCtx) coordinates() bool { return c.rec != nil && c.tc.W == 0 }

func (c *teamCtx) For(n int, body func(i int)) {
	if c.coordinates() {
		t0 := time.Now()
		c.tc.For(n, body)
		c.rec.AddRoundTime(time.Since(t0))
		return
	}
	c.tc.For(n, body)
}

func (c *teamCtx) ForWorker(n int, body func(i, w int)) {
	if c.coordinates() {
		t0 := time.Now()
		c.tc.ForWorker(n, body)
		c.rec.AddRoundTime(time.Since(t0))
		return
	}
	c.tc.ForWorker(n, body)
}

func (c *teamCtx) Range(n int, body func(lo, hi, w int)) {
	w := c.tc.W
	if c.coordinates() {
		t0 := time.Now()
		c.tc.Range(n, func(lo, hi int) { body(lo, hi, w) })
		c.rec.AddRoundTime(time.Since(t0))
		return
	}
	c.tc.Range(n, func(lo, hi int) { body(lo, hi, w) })
}

func (c *teamCtx) Bounds(bounds []int, body func(lo, hi, w int)) {
	w := c.tc.W
	if c.coordinates() {
		t0 := time.Now()
		c.tc.Bounds(bounds, func(lo, hi int) { body(lo, hi, w) })
		c.rec.AddRoundTime(time.Since(t0))
		return
	}
	c.tc.Bounds(bounds, func(lo, hi int) { body(lo, hi, w) })
}

func (c *teamCtx) StealRange(n int, body func(lo, hi, w int)) {
	w := c.tc.W
	if c.coordinates() {
		t0 := time.Now()
		c.tc.Steal(n, func(lo, hi int) { body(lo, hi, w) })
		c.rec.AddRoundTime(time.Since(t0))
		return
	}
	c.tc.Steal(n, func(lo, hi int) { body(lo, hi, w) })
}

func (c *teamCtx) Barrier()        { c.tc.Barrier() }
func (c *teamCtx) Single(f func()) { c.tc.Single(f) }

func (c *teamCtx) Flag() *Flag { return c.flag }

// NextRound advances this worker's copy of the region round counter. All
// workers execute the same round sequence (SPMD discipline), so their
// counters agree without synchronization.
func (c *teamCtx) NextRound() uint32 {
	c.round++
	if c.coordinates() {
		c.rec.AddRounds(1)
	}
	return c.round
}

func (c *teamCtx) Metrics() *metrics.Recorder { return c.rec }
