package exec

import "crcwpram/internal/core/machine"

// teamCtx adapts a machine.TeamCtx: the body runs once per worker inside
// one persistent parallel region, every loop ends in a real sense
// barrier, and Single elects worker 0. The only translation needed is
// injecting the worker id into the Range/Bounds body signature, which
// TeamCtx exposes as a field rather than an argument.
type teamCtx struct {
	tc    *machine.TeamCtx
	flag  *Flag
	round uint32
}

func (c *teamCtx) P() int      { return c.tc.P() }
func (c *teamCtx) Worker() int { return c.tc.W }

func (c *teamCtx) For(n int, body func(i int))          { c.tc.For(n, body) }
func (c *teamCtx) ForWorker(n int, body func(i, w int)) { c.tc.ForWorker(n, body) }

func (c *teamCtx) Range(n int, body func(lo, hi, w int)) {
	w := c.tc.W
	c.tc.Range(n, func(lo, hi int) { body(lo, hi, w) })
}

func (c *teamCtx) Bounds(bounds []int, body func(lo, hi, w int)) {
	w := c.tc.W
	c.tc.Bounds(bounds, func(lo, hi int) { body(lo, hi, w) })
}

func (c *teamCtx) Barrier()        { c.tc.Barrier() }
func (c *teamCtx) Single(f func()) { c.tc.Single(f) }

func (c *teamCtx) Flag() *Flag { return c.flag }

// NextRound advances this worker's copy of the region round counter. All
// workers execute the same round sequence (SPMD discipline), so their
// counters agree without synchronization.
func (c *teamCtx) NextRound() uint32 {
	c.round++
	return c.round
}
