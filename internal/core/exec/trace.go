package exec

import (
	"fmt"

	"crcwpram/internal/core/metrics"
	"crcwpram/internal/sched"
)

// TraceStats is the structural record of one traced kernel execution:
// how many work-shared steps and synchronization points the kernel's
// round structure costs, and how the iteration load splits across the
// logical workers. CAS-attempt totals are not counted here — they live in
// the cw layer's counting resolvers, which compose with the trace backend
// (see internal/bench/kernelops.go).
type TraceStats struct {
	// P is the logical worker count the replay partitioned loops for.
	P int
	// Steps counts work-shared loops (For/ForWorker/Range/Bounds calls).
	Steps int
	// Barriers counts synchronization points: the implicit barrier closing
	// each work-shared loop, each explicit Barrier(), and the barrier
	// closing each Single. Under pool mode each would be a step join;
	// under team mode each would be one sense barrier.
	Barriers int
	// Singles counts serial sections.
	Singles int
	// Iters is the per-logical-worker iteration count over all loops
	// (elements of the worker's shares, for Range/Bounds).
	Iters []uint64
	// Rounds is the number of region-local round ids consumed via
	// NextRound.
	Rounds uint32
}

// MaxIters returns the busiest logical worker's iteration count — the
// critical path of the traced execution under the unit-cost model.
func (st *TraceStats) MaxIters() uint64 {
	var max uint64
	for _, it := range st.Iters {
		if it > max {
			max = it
		}
	}
	return max
}

// TotalIters returns the summed iteration count over all logical workers.
func (st *TraceStats) TotalIters() uint64 {
	var tot uint64
	for _, it := range st.Iters {
		tot += it
	}
	return tot
}

// traceCtx replays the kernel serially on the caller with P logical
// workers: every loop is partitioned exactly as the Block pool/team
// backends would partition it, the shares run in worker order, and the
// structure (steps, barriers, singles, per-worker iterations) is counted
// instead of synchronized. The replay is deterministic — logical worker w
// always runs before w+1 — so traced results double as a reference
// execution in differential tests.
type traceCtx struct {
	p     int
	chunk int // machine chunk size, bounding the stealing chunk geometry
	flag  *Flag
	stats *TraceStats
	round uint32
}

func (c *traceCtx) P() int      { return c.p }
func (c *traceCtx) Worker() int { return 0 }

// loop counts and serially executes one work-shared round: one step, one
// implicit closing barrier.
func (c *traceCtx) loop(n int, body func(i, w int)) {
	c.stats.Steps++
	c.stats.Barriers++
	if n <= 0 {
		return
	}
	for w := 0; w < c.p; w++ {
		lo, hi := sched.BlockRange(n, c.p, w)
		c.stats.Iters[w] += uint64(hi - lo)
		for i := lo; i < hi; i++ {
			body(i, w)
		}
	}
}

func (c *traceCtx) For(n int, body func(i int)) {
	c.loop(n, func(i, _ int) { body(i) })
}

func (c *traceCtx) ForWorker(n int, body func(i, w int)) {
	c.loop(n, body)
}

func (c *traceCtx) Range(n int, body func(lo, hi, w int)) {
	c.stats.Steps++
	c.stats.Barriers++
	if n <= 0 {
		return
	}
	for w := 0; w < c.p; w++ {
		// Like ParallelRange and TeamCtx.Range, empty shares skip the body.
		if lo, hi := sched.BlockRange(n, c.p, w); lo < hi {
			c.stats.Iters[w] += uint64(hi - lo)
			body(lo, hi, w)
		}
	}
}

func (c *traceCtx) Bounds(bounds []int, body func(lo, hi, w int)) {
	if len(bounds) != c.p+1 {
		panic(fmt.Sprintf("exec: Bounds: %d bounds for %d workers", len(bounds), c.p))
	}
	c.stats.Steps++
	c.stats.Barriers++
	if bounds[c.p] <= bounds[0] {
		return
	}
	for w := 0; w < c.p; w++ {
		if lo, hi := bounds[w], bounds[w+1]; lo < hi {
			c.stats.Iters[w] += uint64(hi - lo)
			body(lo, hi, w)
		}
	}
}

// StealRange replays the stealing loop's recorded chunk log: with a serial
// replay no worker ever idles, so no steals occur and each logical worker's
// log is exactly its seeded deque drained in ascending index order — the
// block partition of [0, n), walked chunk by chunk with the real chunk
// geometry (sched.StealChunk of the machine's chunk bound). Deterministic,
// like every trace loop.
func (c *traceCtx) StealRange(n int, body func(lo, hi, w int)) {
	c.stats.Steps++
	c.stats.Barriers++
	if n <= 0 {
		return
	}
	chunk := sched.StealChunk(n, c.p, c.chunk)
	for w := 0; w < c.p; w++ {
		lo, hi := sched.BlockRange(n, c.p, w)
		c.stats.Iters[w] += uint64(hi - lo)
		for clo := lo; clo < hi; clo += chunk {
			chi := clo + chunk
			if chi > hi {
				chi = hi
			}
			body(clo, chi, w)
		}
	}
}

func (c *traceCtx) Barrier() { c.stats.Barriers++ }

func (c *traceCtx) Single(f func()) {
	c.stats.Singles++
	c.stats.Barriers++
	f()
}

func (c *traceCtx) Flag() *Flag { return c.flag }

func (c *traceCtx) NextRound() uint32 {
	c.round++
	c.stats.Rounds = c.round
	return c.round
}

// Metrics is always nil under trace: the serial replay records structure
// in TraceStats, and live timing of a serial replay would be meaningless.
func (c *traceCtx) Metrics() *metrics.Recorder { return nil }
