// Package exec presents one kernel-facing execution context over the
// machine's backends, so every PRAM kernel is written exactly once.
//
// A CRCW PRAM kernel is a sequence of lock-step rounds: work-shared loops
// separated by synchronization points, with the occasional serial section
// and convergence flag in between. The machine package offers two ways to
// run that shape — pool mode (one fork/join step per loop, driven from the
// caller) and team mode (one persistent parallel region per kernel,
// SPMD-style) — and this package adds a third, trace, which replays the
// kernel serially while counting its structure. Ctx abstracts over all
// three: a kernel body written against Ctx runs unmodified under each
// backend, dispatched by Run on a machine.Exec value.
//
// The body is SPMD code under every backend. Under team it literally runs
// once per worker; under pool and trace it runs once on the caller, which
// behaves like the team's worker 0 (Worker() == 0, Single inline, Barrier
// where team mode would place one). The discipline is therefore the team
// one: control flow feeding a Ctx primitive — loop trip counts, break
// decisions, round ids — must be computed identically by every worker,
// from worker-local deterministic state or from shared state read after a
// barrier. Per-worker scratch flows through the loop-body worker argument
// (ForWorker/Range/Bounds), never through Worker(), whose only sanctioned
// use is electing worker 0 to capture a region result.
//
// Barrier semantics per backend:
//
//   - pool: every For/Range/Bounds call is a complete fork/join step with
//     its own closing barrier, so an explicit Barrier() is a no-op — the
//     PRAM round boundary the paper requires after a concurrent write is
//     already paid by the step split. Single runs inline on the caller
//     while the workers are parked, which is the same serial section.
//   - team: For/Range/Bounds end in one real sense barrier (TeamCtx
//     semantics), Barrier() is that barrier alone, and Single elects
//     worker 0 with a closing barrier.
//   - trace: no synchronization exists (the replay is serial); barriers
//     are counted, not executed.
//
// Because the convergence-flag idiom needs one shared word visible to all
// workers, Flag() returns a region-level triple-buffered flag allocated
// once per Run — all SPMD copies of the body observe the same Flag, which
// a per-worker allocation inside the body could not provide.
package exec

import (
	"context"
	rtrace "runtime/trace"
	"sync/atomic"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
)

// Ctx is one worker's view of a kernel execution region. It is valid only
// inside the body passed to Run and must not leak to other goroutines.
type Ctx interface {
	// P returns the number of workers sharing each loop (logical workers
	// under trace).
	P() int
	// Worker returns this SPMD copy's worker id. Under pool and trace the
	// single body acts as worker 0. Use it only to elect one worker for
	// result capture; per-iteration worker ids come from the loop bodies.
	Worker() int
	// For executes one work-shared PRAM round: body(i) for every i in
	// [0, n), with a (possibly implicit) barrier before For returns.
	For(n int, body func(i int))
	// ForWorker is For with the executing worker's id passed to the body.
	ForWorker(n int, body func(i, w int))
	// Range executes one round in block form: each worker receives its
	// contiguous share [lo, hi) of [0, n) once, with its id. Workers with
	// an empty share skip the body.
	Range(n int, body func(lo, hi, w int))
	// Bounds is Range over caller-supplied shard boundaries
	// (len(bounds) == P()+1, non-decreasing), the edge-balanced form.
	Bounds(bounds []int, body func(lo, hi, w int))
	// StealRange executes one round under work stealing regardless of the
	// machine's configured policy: [0, n) is cut into chunks seeded onto
	// per-worker deques (each worker's block share), and body receives each
	// claimed chunk [lo, hi) with the claiming worker's id — owners in
	// ascending index order, thieves wherever they struck. It is the form
	// for irregular loops whose per-index cost is skewed (frontier
	// relaxation, randmate hooking); regular sweeps should keep Range or
	// the edge-balanced Bounds. Under trace, the replay walks each worker's
	// seeded chunk log in worker order, so traced coverage equals the
	// block partition and stays deterministic.
	StealRange(n int, body func(lo, hi, w int))
	// Barrier closes the current PRAM round: no dependent read proceeds
	// until every write of the round is visible. Under pool it is free
	// (each loop already closed its step); under team it is one sense
	// barrier.
	Barrier()
	// Single executes f on exactly one worker, with f's writes visible to
	// the whole team after Single returns.
	Single(f func())
	// Flag returns the region's convergence flag, shared by all workers.
	// One flag exists per Run; kernels needing more declare driver-side
	// Flag values before entering the region.
	Flag() *Flag
	// NextRound returns the next region-local round id (1, 2, 3, ...).
	// The counter is worker-local and advances identically in every SPMD
	// copy, so all workers agree on the id without synchronization.
	// Kernels add their machine-lifetime base offset themselves.
	NextRound() uint32
	// Metrics returns the machine's live-metrics recorder, or nil when
	// metrics are off (always nil under trace: the serial replay has its
	// own counters). Kernels thread it unconditionally — a nil recorder's
	// Shard is nil, and a nil shard's methods are single-branch no-ops.
	Metrics() *metrics.Recorder
}

// Flag is a rotating convergence flag for round loops, usable under every
// backend. It is the exec-layer twin of machine.TeamFlag: one shared word
// per round — primed before the round, written during it, read after its
// closing barrier — with three rotating slots (indexed round mod 3) so a
// prime for round r+1 can never race a slow peer's read for round r-1.
// The protocol is
//
//	Set(r+1, primeValue)  at the top of round r (any or all workers);
//	Set(r,   seenValue)   during round r's work-shared loops;
//	Get(r)                after round r's closing barrier.
//
// See machine.TeamFlag for the three-slot sufficiency argument. Under
// pool and trace the rotation is unnecessary but harmless; using one
// protocol everywhere keeps kernel bodies backend-agnostic.
type Flag struct {
	slots [3]atomic.Uint32
}

// Set stores v into round r's slot. Safe for concurrent use by all
// workers when they store the same value (the common-CW idiom).
func (f *Flag) Set(r, v uint32) { f.slots[r%3].Store(v) }

// Get loads round r's slot. Call it only after round r's closing barrier.
func (f *Flag) Get(r uint32) uint32 { return f.slots[r%3].Load() }

// Run executes body under the backend selected by e: pool (fork/join
// steps), team (one persistent parallel region), or trace (serial
// counting replay). It returns the trace statistics for ExecTrace and nil
// otherwise.
func Run(m *machine.Machine, e machine.Exec, body func(Ctx)) *TraceStats {
	// A machine whose event-trace recorder opts into runtime/trace gets
	// the whole kernel execution wrapped in a runtime/trace task, so `go
	// tool trace` groups the workers' per-round regions under one task
	// per Run. No-op unless runtime tracing was requested (and inert
	// until runtime/trace.Start actually collects).
	if m.Events().RuntimeOn() {
		_, task := rtrace.NewTask(context.Background(), "pram/"+e.String())
		defer task.End()
	}
	// The region's one shared Flag: allocated here, before the SPMD split,
	// so every worker's Flag() call observes the same word.
	flag := new(Flag)
	// A machine carrying a chaos injector gets its timed backends wrapped
	// in the fault-delivering context; the trace backend stays bare (a
	// serial replay has no schedule to perturb).
	wrap := func(c Ctx) Ctx {
		if inj := m.Chaos(); inj != nil {
			return &chaosCtx{inner: c, inj: inj}
		}
		return c
	}
	switch e {
	case machine.ExecTeam:
		m.Team(func(tc *machine.TeamCtx) {
			body(wrap(&teamCtx{tc: tc, flag: flag, rec: m.Metrics()}))
		})
		return nil
	case machine.ExecTrace:
		st := &TraceStats{P: m.P(), Iters: make([]uint64, m.P())}
		body(&traceCtx{p: m.P(), chunk: m.Chunk(), flag: flag, stats: st})
		return st
	default:
		body(wrap(&poolCtx{m: m, flag: flag, rec: m.Metrics()}))
		return nil
	}
}
