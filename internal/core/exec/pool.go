package exec

import "crcwpram/internal/core/machine"

// poolCtx drives the machine one fork/join step per loop. The body runs
// once, on the caller, which plays the role of team worker 0: loops fan
// out to the pool and join before returning, so every loop boundary is
// already a PRAM round boundary and Barrier degenerates to a no-op.
// Serial code between loops — the Single sections of the SPMD form — runs
// inline while the workers are parked, exactly as today's pool kernels
// wrote it.
type poolCtx struct {
	m     *machine.Machine
	flag  *Flag
	round uint32
}

func (c *poolCtx) P() int      { return c.m.P() }
func (c *poolCtx) Worker() int { return 0 }

func (c *poolCtx) For(n int, body func(i int))              { c.m.ParallelFor(n, body) }
func (c *poolCtx) ForWorker(n int, body func(i, w int))     { c.m.ParallelForWorker(n, body) }
func (c *poolCtx) Range(n int, body func(lo, hi, w int))    { c.m.ParallelRange(n, body) }
func (c *poolCtx) Bounds(b []int, body func(lo, hi, w int)) { c.m.ParallelBounds(b, body) }

// Barrier is a no-op: each pool loop closed its own step, which is the
// barrier. Nothing runs concurrently with the caller between loops.
func (c *poolCtx) Barrier() {}

// Single runs f inline: between steps the caller is the only goroutine
// touching kernel state.
func (c *poolCtx) Single(f func()) { f() }

func (c *poolCtx) Flag() *Flag { return c.flag }

func (c *poolCtx) NextRound() uint32 {
	c.round++
	return c.round
}
