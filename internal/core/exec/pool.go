package exec

import (
	"time"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
)

// poolCtx drives the machine one fork/join step per loop. The body runs
// once, on the caller, which plays the role of team worker 0: loops fan
// out to the pool and join before returning, so every loop boundary is
// already a PRAM round boundary and Barrier degenerates to a no-op.
// Serial code between loops — the Single sections of the SPMD form — runs
// inline while the workers are parked, exactly as today's pool kernels
// wrote it.
//
// With metrics on, the caller is the coordinator: it wraps every loop in
// a wall clock (AddRoundTime) and counts NextRound advances. With metrics
// off (rec == nil), each loop pays one extra nil check and nothing else.
type poolCtx struct {
	m     *machine.Machine
	flag  *Flag
	rec   *metrics.Recorder
	round uint32
}

func (c *poolCtx) P() int      { return c.m.P() }
func (c *poolCtx) Worker() int { return 0 }

func (c *poolCtx) For(n int, body func(i int)) {
	if c.rec != nil {
		t0 := time.Now()
		c.m.ParallelFor(n, body)
		c.rec.AddRoundTime(time.Since(t0))
		return
	}
	c.m.ParallelFor(n, body)
}

func (c *poolCtx) ForWorker(n int, body func(i, w int)) {
	if c.rec != nil {
		t0 := time.Now()
		c.m.ParallelForWorker(n, body)
		c.rec.AddRoundTime(time.Since(t0))
		return
	}
	c.m.ParallelForWorker(n, body)
}

func (c *poolCtx) Range(n int, body func(lo, hi, w int)) {
	if c.rec != nil {
		t0 := time.Now()
		c.m.ParallelRange(n, body)
		c.rec.AddRoundTime(time.Since(t0))
		return
	}
	c.m.ParallelRange(n, body)
}

func (c *poolCtx) Bounds(b []int, body func(lo, hi, w int)) {
	if c.rec != nil {
		t0 := time.Now()
		c.m.ParallelBounds(b, body)
		c.rec.AddRoundTime(time.Since(t0))
		return
	}
	c.m.ParallelBounds(b, body)
}

func (c *poolCtx) StealRange(n int, body func(lo, hi, w int)) {
	if c.rec != nil {
		t0 := time.Now()
		c.m.ParallelSteal(n, body)
		c.rec.AddRoundTime(time.Since(t0))
		return
	}
	c.m.ParallelSteal(n, body)
}

// Barrier is a no-op: each pool loop closed its own step, which is the
// barrier. Nothing runs concurrently with the caller between loops.
func (c *poolCtx) Barrier() {}

// Single runs f inline: between steps the caller is the only goroutine
// touching kernel state.
func (c *poolCtx) Single(f func()) { f() }

func (c *poolCtx) Flag() *Flag { return c.flag }

func (c *poolCtx) NextRound() uint32 {
	c.round++
	c.rec.AddRounds(1)
	return c.round
}

func (c *poolCtx) Metrics() *metrics.Recorder { return c.rec }
