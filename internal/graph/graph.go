// Package graph provides the compressed-sparse-row graphs, random graph
// generators and serialization used by the paper's BFS and connected-
// components benchmarks.
//
// The paper evaluates on "randomly-generated undirected graphs" with up to
// 100K vertices and 30M edges (Figures 7-12). This package reproduces that
// input family (RandomUndirected / ConnectedRandom) and adds structured
// generators (grid, star, path, cycle, complete, R-MAT) useful for tests
// and for stressing the concurrent-write collision behaviour the paper
// analyses: stars maximize write collisions on the hub, paths minimize
// them.
package graph

import "fmt"

// Graph is an immutable directed multigraph in compressed-sparse-row form.
// Undirected graphs are represented by storing each edge in both
// directions; the builders in this package do this automatically.
//
// Vertex ids are uint32, matching the paper's kernels; a graph may hold up
// to 2^32-1 vertices and 2^32-1 directed arcs.
type Graph struct {
	offsets []uint32 // len = NumVertices+1; arc targets of v are targets[offsets[v]:offsets[v+1]]
	targets []uint32

	undirected bool
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumArcs returns the number of directed arcs stored (for an undirected
// graph, twice the number of edges).
func (g *Graph) NumArcs() int { return len(g.targets) }

// NumEdges returns the number of undirected edges if the graph was built
// undirected, else the number of directed arcs.
func (g *Graph) NumEdges() int {
	if g.undirected {
		return len(g.targets) / 2
	}
	return len(g.targets)
}

// Undirected reports whether the graph stores every edge in both
// directions.
func (g *Graph) Undirected() bool { return g.undirected }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v uint32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns v's adjacency slice. The slice aliases the graph's
// internal storage and must not be modified.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// Offsets returns the CSR offset array (length NumVertices+1). The slice
// aliases internal storage and must not be modified. It is exposed for
// kernels that, like the paper's Figure 3, walk `V[v] .. V[v+1]` directly.
func (g *Graph) Offsets() []uint32 { return g.offsets }

// Targets returns the CSR target array. The slice aliases internal storage
// and must not be modified.
func (g *Graph) Targets() []uint32 { return g.targets }

// Edge is one undirected edge (or directed arc) between U and V.
type Edge struct {
	U, V uint32
}

// FromEdges builds a CSR graph over n vertices from an edge list. When
// undirected is true every edge contributes arcs in both directions.
// Endpoints must be < n; self-loops and parallel edges are preserved
// (matching the Rodinia generator's behaviour).
func FromEdges(n int, edges []Edge, undirected bool) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	arcs := len(edges)
	if undirected {
		arcs *= 2
	}
	offsets := make([]uint32, n+1)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for %d vertices", e.U, e.V, n)
		}
		offsets[e.U+1]++
		if undirected {
			offsets[e.V+1]++
		}
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]uint32, arcs)
	cursor := make([]uint32, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		targets[cursor[e.U]] = e.V
		cursor[e.U]++
		if undirected {
			targets[cursor[e.V]] = e.U
			cursor[e.V]++
		}
	}
	return &Graph{offsets: offsets, targets: targets, undirected: undirected}, nil
}

// MustFromEdges is FromEdges that panics on error, for tests and
// generators whose inputs are valid by construction.
func MustFromEdges(n int, edges []Edge, undirected bool) *Graph {
	g, err := FromEdges(n, edges, undirected)
	if err != nil {
		panic(err)
	}
	return g
}

// Edges reconstructs an edge list from the CSR form. For undirected graphs
// each edge is reported once, with U <= V for canonical ordering of
// distinct endpoints; self-loops are reported once per stored pair of arcs.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	n := g.NumVertices()
	selfSeen := 0
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			switch {
			case !g.undirected:
				out = append(out, Edge{uint32(v), u})
			case uint32(v) < u:
				out = append(out, Edge{uint32(v), u})
			case uint32(v) == u:
				// Each undirected self-loop stored as two arcs; emit every
				// second occurrence.
				selfSeen++
				if selfSeen%2 == 0 {
					out = append(out, Edge{u, u})
				}
			}
		}
	}
	return out
}
