package graph

import "testing"

func TestBalanceParseRoundTrip(t *testing.T) {
	for _, b := range Balances {
		got, ok := ParseBalance(b.String())
		if !ok || got != b {
			t.Fatalf("ParseBalance(%q) = %v, %v", b.String(), got, ok)
		}
	}
	if _, ok := ParseBalance("nope"); ok {
		t.Fatal("ParseBalance accepted garbage")
	}
}

// TestArcBoundsInvariants checks, for structured and random graphs, that the
// arc-prefix partitioner covers [0, n) exactly and that every shard's arc
// count is within one max degree of the even share.
func TestArcBoundsInvariants(t *testing.T) {
	empty, err := FromEdges(0, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	isolated, err := FromEdges(10, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*Graph{
		"star":     Star(257),
		"path":     Path(100),
		"grid":     Grid2D(13, 17),
		"complete": Complete(24),
		"rmat":     RMAT(10, 4096, 0.57, 0.19, 0.19, 7),
		"disjoint": Disjoint(Star(63), 4),
		"empty":    empty,
		"isolated": isolated,
	}
	for name, g := range graphs {
		n := g.NumVertices()
		stats := ComputeStats(g)
		for _, p := range []int{1, 2, 3, 4, 8, 16} {
			bounds := ArcBounds(g, p)
			if len(bounds) != p+1 || bounds[0] != 0 || bounds[p] != n {
				t.Fatalf("%s p=%d: bad bounds shape %v", name, p, bounds)
			}
			share := (g.NumArcs() + p - 1) / p
			for w := 0; w < p; w++ {
				lo, hi := bounds[w], bounds[w+1]
				if lo > hi || lo < 0 || hi > n {
					t.Fatalf("%s p=%d w=%d: bad shard [%d,%d)", name, p, w, lo, hi)
				}
				arcs := 0
				for v := lo; v < hi; v++ {
					arcs += g.Degree(uint32(v))
				}
				if arcs > share+stats.MaxDegree {
					t.Fatalf("%s p=%d w=%d: shard has %d arcs, even share %d + max degree %d",
						name, p, w, arcs, share, stats.MaxDegree)
				}
			}
		}
	}
}

// TestArcBoundsStarSkew pins the motivating case: on a star at P=4 the
// vertex split gives one worker the whole hub while the edge split caps
// every shard at the hub's degree plus its share of leaves.
func TestArcBoundsStarSkew(t *testing.T) {
	g := Star(1024) // hub 0 with degree 1023; arcs = 2046
	bounds := ArcBounds(g, 4)
	hubShard := bounds[1] - bounds[0]
	if hubShard >= g.NumVertices()/4 {
		t.Fatalf("edge balance left shard 0 with %d vertices; expected far fewer than n/4=%d",
			hubShard, g.NumVertices()/4)
	}
	// The hub outweighs one even share, so the shard after it may be empty;
	// the leaves must still split near-evenly over the remaining shards.
	leafLo := bounds[2]
	per := (g.NumVertices() - leafLo) / 2
	for w := 2; w < 4; w++ {
		got := bounds[w+1] - bounds[w]
		if got < per-1 || got > per+1 {
			t.Fatalf("leaf shard %d has %d vertices, want ~%d: bounds %v", w, got, per, bounds)
		}
	}
}

func TestFrontierDegrees(t *testing.T) {
	g := Star(8)
	frontier := []uint32{0, 3, 7}
	deg := FrontierDegrees(g, frontier, make([]uint32, 8))
	want := []uint32{7, 1, 1}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("deg[%d] = %d, want %d", i, deg[i], want[i])
		}
	}
}

func TestStatsSkewFields(t *testing.T) {
	g := Star(100) // hub degree 99, avg degree 198/100
	s := ComputeStats(g)
	if s.MaxDegree != 99 {
		t.Fatalf("MaxDegree = %d, want 99", s.MaxDegree)
	}
	if s.P99Degree != 1 {
		t.Fatalf("P99Degree = %d, want 1 (leaf degree)", s.P99Degree)
	}
	if s.Skew < 49 || s.Skew > 51 {
		t.Fatalf("Skew = %.2f, want ~50", s.Skew)
	}
	r := Complete(10)
	rs := ComputeStats(r)
	if rs.Skew != 1 || rs.P99Degree != 9 {
		t.Fatalf("regular graph: skew=%.2f p99=%d, want 1, 9", rs.Skew, rs.P99Degree)
	}
}
