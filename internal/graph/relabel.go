package graph

import "sort"

// RelabelMode selects a vertex-relabeling order for cache locality.
//
// Relabeling permutes vertex ids so that vertices touched together sit in
// nearby CSR rows (and nearby bits of a bitmap frontier). The kernels are
// unchanged — they run on the permuted graph and their per-vertex outputs
// are mapped back through the inverse permutation, so results stay
// byte-comparable with the unrelabeled run.
type RelabelMode int

const (
	// RelabelNone keeps the original vertex ids (identity permutation).
	RelabelNone RelabelMode = iota
	// RelabelDegree orders vertices by decreasing degree (ties by original
	// id). Hubs — the vertices most frontier scans and membership probes
	// hit — land in the first few cache lines of every per-vertex array.
	RelabelDegree
	// RelabelBFS orders vertices by their breadth-first discovery order
	// from vertex 0 (unreached vertices keep their relative order after
	// the reached ones). Vertices of one BFS level, which pull rounds scan
	// as the current-frontier membership set, become contiguous.
	RelabelBFS
)

// RelabelModes lists all relabel modes in presentation order.
var RelabelModes = []RelabelMode{RelabelNone, RelabelDegree, RelabelBFS}

func (m RelabelMode) String() string {
	switch m {
	case RelabelNone:
		return "none"
	case RelabelDegree:
		return "degree"
	case RelabelBFS:
		return "bfs"
	default:
		return "unknown-relabel"
	}
}

// ParseRelabel converts a relabel-mode name (as produced by String) back to
// a RelabelMode.
func ParseRelabel(s string) (RelabelMode, bool) {
	for _, m := range RelabelModes {
		if m.String() == s {
			return m, true
		}
	}
	return 0, false
}

// Relabeling is a relabeled graph together with its permutation maps.
type Relabeling struct {
	G    *Graph
	Perm []uint32 // Perm[old] = new id
	Inv  []uint32 // Inv[new] = old id
}

// Relabel builds the permuted CSR graph for the given mode. For
// RelabelNone the returned Relabeling aliases g itself with an identity
// permutation. Arc order within each relabeled adjacency list follows the
// original list's order (targets mapped in place), so the permuted graph is
// the exact isomorphic image of g.
func Relabel(g *Graph, mode RelabelMode) Relabeling {
	n := g.NumVertices()
	perm := make([]uint32, n)
	inv := make([]uint32, n)
	switch mode {
	case RelabelDegree:
		order := make([]uint32, n)
		for v := range order {
			order[v] = uint32(v)
		}
		sort.SliceStable(order, func(i, j int) bool {
			di, dj := g.Degree(order[i]), g.Degree(order[j])
			if di != dj {
				return di > dj
			}
			return order[i] < order[j]
		})
		copy(inv, order)
	case RelabelBFS:
		next := bfsOrder(g, inv[:0])
		// Unreached vertices follow in original-id order.
		seen := make([]bool, n)
		for _, v := range next {
			seen[v] = true
		}
		for v := 0; v < n; v++ {
			if !seen[v] {
				next = append(next, uint32(v))
			}
		}
		copy(inv, next)
	default:
		for v := range perm {
			perm[v] = uint32(v)
			inv[v] = uint32(v)
		}
		return Relabeling{G: g, Perm: perm, Inv: inv}
	}
	for newID, oldID := range inv {
		perm[oldID] = uint32(newID)
	}
	offsets := make([]uint32, n+1)
	for newID := 0; newID < n; newID++ {
		offsets[newID+1] = offsets[newID] + uint32(g.Degree(inv[newID]))
	}
	targets := make([]uint32, g.NumArcs())
	for newID := 0; newID < n; newID++ {
		row := targets[offsets[newID]:offsets[newID+1]]
		for i, u := range g.Neighbors(inv[newID]) {
			row[i] = perm[u]
		}
	}
	return Relabeling{
		G:    &Graph{offsets: offsets, targets: targets, undirected: g.undirected},
		Perm: perm,
		Inv:  inv,
	}
}

// bfsOrder appends the breadth-first discovery order from vertex 0 to dst
// (arc order within each list decides ties, matching bfs.Sequential).
func bfsOrder(g *Graph, dst []uint32) []uint32 {
	n := g.NumVertices()
	if n == 0 {
		return dst
	}
	visited := make([]bool, n)
	visited[0] = true
	dst = append(dst, 0)
	for head := len(dst) - 1; head < len(dst); head++ {
		for _, u := range g.Neighbors(dst[head]) {
			if !visited[u] {
				visited[u] = true
				dst = append(dst, u)
			}
		}
	}
	return dst
}

// Unpermute maps a per-vertex result array computed on the relabeled graph
// back to original vertex ids: dst[old] = src[Perm[old]]. dst and src must
// both have length NumVertices and must not alias.
func (r Relabeling) Unpermute(dst, src []uint32) {
	for old, newID := range r.Perm {
		dst[old] = src[newID]
	}
}

// PermHash returns a deterministic FNV-1a hash of the permutation, the
// fingerprint the locality bench emits so a baseline diff can tell two
// relabelings apart without storing the permutation itself. The identity
// permutation of any length hashes to a nonzero value like any other, so
// callers that want "zero means unrelabeled" emit the hash only for
// non-identity modes.
func PermHash(perm []uint32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range perm {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(v>>s) & 0xff
			h *= prime64
		}
	}
	return h
}
