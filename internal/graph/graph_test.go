package graph

import (
	"testing"
	"testing/quick"
)

func checkCSRInvariants(t *testing.T, g *Graph) {
	t.Helper()
	if err := validateCSR(g); err != nil {
		t.Fatalf("CSR invariant violated: %v", err)
	}
	if g.undirected && g.NumArcs()%2 != 0 {
		t.Fatalf("undirected graph with odd arc count %d", g.NumArcs())
	}
}

func TestFromEdgesSmallUndirected(t *testing.T) {
	// Triangle plus pendant: 0-1, 1-2, 2-0, 2-3
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}}, true)
	checkCSRInvariants(t, g)
	if g.NumVertices() != 4 || g.NumEdges() != 4 || g.NumArcs() != 8 {
		t.Fatalf("n=%d m=%d arcs=%d, want 4/4/8", g.NumVertices(), g.NumEdges(), g.NumArcs())
	}
	wantDeg := []int{2, 2, 3, 1}
	for v, want := range wantDeg {
		if got := g.Degree(uint32(v)); got != want {
			t.Fatalf("degree(%d) = %d, want %d", v, got, want)
		}
	}
	// Adjacency is symmetric.
	for v := 0; v < 4; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			found := false
			for _, w := range g.Neighbors(u) {
				if int(w) == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("arc %d->%d has no reverse", v, u)
			}
		}
	}
}

func TestFromEdgesDirected(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 0}}, false)
	checkCSRInvariants(t, g)
	if g.NumArcs() != 3 || g.NumEdges() != 3 {
		t.Fatalf("arcs=%d edges=%d, want 3/3", g.NumArcs(), g.NumEdges())
	}
	if g.Undirected() {
		t.Fatal("directed graph reports Undirected")
	}
	if g.Degree(0) != 1 || len(g.Neighbors(0)) != 1 || g.Neighbors(0)[0] != 1 {
		t.Fatal("directed adjacency wrong")
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2}}, true); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := FromEdges(2, []Edge{{5, 0}}, false); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := FromEdges(-1, nil, false); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 3}} // includes a self-loop
	g := MustFromEdges(4, orig, true)
	back := g.Edges()
	if len(back) != len(orig) {
		t.Fatalf("Edges() returned %d edges, want %d", len(back), len(orig))
	}
	count := func(edges []Edge) map[[2]uint32]int {
		m := map[[2]uint32]int{}
		for _, e := range edges {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			m[[2]uint32{u, v}]++
		}
		return m
	}
	want, got := count(orig), count(back)
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("edge %v: got %d, want %d", k, got[k], n)
		}
	}
}

func TestRandomUndirectedProperties(t *testing.T) {
	g := RandomUndirected(100, 500, 42)
	checkCSRInvariants(t, g)
	if g.NumVertices() != 100 || g.NumEdges() != 500 {
		t.Fatalf("n=%d m=%d, want 100/500", g.NumVertices(), g.NumEdges())
	}
	// No self-loops.
	for v := 0; v < 100; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if int(u) == v {
				t.Fatalf("self-loop at %d", v)
			}
		}
	}
}

func TestRandomUndirectedDeterministic(t *testing.T) {
	a := RandomUndirected(50, 200, 7)
	b := RandomUndirected(50, 200, 7)
	c := RandomUndirected(50, 200, 8)
	ea, eb, ec := a.Edges(), b.Edges(), c.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same-seed graphs differ in size")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same-seed graphs differ at edge %d", i)
		}
	}
	same := len(ea) == len(ec)
	if same {
		same = false
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestConnectedRandomIsConnected(t *testing.T) {
	for _, c := range []struct{ n, m int }{{2, 1}, {10, 9}, {100, 300}, {1000, 5000}} {
		g := ConnectedRandom(c.n, c.m, 11)
		checkCSRInvariants(t, g)
		if g.NumEdges() != c.m {
			t.Fatalf("n=%d: m=%d, want %d", c.n, g.NumEdges(), c.m)
		}
		if comps := CountComponents(g); comps != 1 {
			t.Fatalf("n=%d m=%d: %d components, want 1", c.n, c.m, comps)
		}
	}
}

func TestConnectedRandomRejectsTooFewEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m < n-1 accepted")
		}
	}()
	ConnectedRandom(10, 5, 1)
}

func TestRMATProperties(t *testing.T) {
	g := RMAT(8, 1000, 0.57, 0.19, 0.19, 3)
	checkCSRInvariants(t, g)
	if g.NumVertices() != 256 {
		t.Fatalf("n = %d, want 256", g.NumVertices())
	}
	if g.NumEdges() != 1000 {
		t.Fatalf("m = %d, want 1000", g.NumEdges())
	}
	// Skew: max degree should well exceed the average for RMAT parameters.
	s := ComputeStats(g)
	if float64(s.MaxDegree) < 2*s.AvgDegree {
		t.Fatalf("RMAT not skewed: max=%d avg=%.2f", s.MaxDegree, s.AvgDegree)
	}
}

func TestStructuredGenerators(t *testing.T) {
	cases := []struct {
		name             string
		g                *Graph
		n, m, components int
		minDeg, maxDeg   int
	}{
		{"star", Star(10), 10, 9, 1, 1, 9},
		{"path", Path(10), 10, 9, 1, 1, 2},
		{"cycle", Cycle(10), 10, 10, 1, 2, 2},
		{"complete", Complete(6), 6, 15, 1, 5, 5},
		{"grid", Grid2D(3, 4), 12, 17, 1, 2, 4},
	}
	for _, c := range cases {
		checkCSRInvariants(t, c.g)
		s := ComputeStats(c.g)
		if s.Vertices != c.n || s.Edges != c.m || s.Components != c.components {
			t.Fatalf("%s: n=%d m=%d comps=%d, want %d/%d/%d", c.name, s.Vertices, s.Edges, s.Components, c.n, c.m, c.components)
		}
		if s.MinDegree != c.minDeg || s.MaxDegree != c.maxDeg {
			t.Fatalf("%s: deg [%d,%d], want [%d,%d]", c.name, s.MinDegree, s.MaxDegree, c.minDeg, c.maxDeg)
		}
	}
}

func TestDisjointCopies(t *testing.T) {
	g := Disjoint(Cycle(5), 4)
	checkCSRInvariants(t, g)
	if g.NumVertices() != 20 || g.NumEdges() != 20 {
		t.Fatalf("n=%d m=%d, want 20/20", g.NumVertices(), g.NumEdges())
	}
	if comps := CountComponents(g); comps != 4 {
		t.Fatalf("components = %d, want 4", comps)
	}
}

func TestComponentLabels(t *testing.T) {
	g := Disjoint(Path(3), 2) // components {0,1,2} and {3,4,5}
	labels := ComponentLabels(g)
	want := []uint32{0, 0, 0, 3, 3, 3}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

// Property: degree sum equals arc count, arc count is twice the edge count
// for undirected builds, and every CSR invariant holds, for random inputs.
func TestQuickCSRInvariants(t *testing.T) {
	f := func(nRaw uint8, mRaw uint16, seed int64) bool {
		n := int(nRaw)%200 + 2
		m := int(mRaw) % 2000
		g := RandomUndirected(n, m, seed)
		if validateCSR(g) != nil {
			return false
		}
		if g.NumArcs() != 2*m {
			return false
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(uint32(v))
		}
		return sum == g.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
