package graph

import (
	"fmt"
	"math/rand"
)

// RandomUndirected generates an undirected multigraph with n vertices and m
// edges whose endpoints are chosen uniformly at random (self-loops
// excluded, parallel edges allowed), the input family of the paper's BFS
// and CC experiments. Generation is deterministic in seed.
func RandomUndirected(n, m int, seed int64) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: RandomUndirected needs n >= 2, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n - 1))
		if v >= u {
			v++ // uniform over vertices != u, excluding self-loops
		}
		edges[i] = Edge{u, v}
	}
	return MustFromEdges(n, edges, true)
}

// ConnectedRandom generates a connected undirected multigraph with n
// vertices and m >= n-1 edges: a uniformly random spanning tree-ish
// backbone (each vertex i>0 attaches to a random earlier vertex of a random
// permutation) plus m-(n-1) uniform random extra edges. BFS experiments use
// it so that every vertex is reachable from the source and all methods
// traverse identical frontiers. Deterministic in seed.
func ConnectedRandom(n, m int, seed int64) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: ConnectedRandom needs n >= 2, got %d", n))
	}
	if m < n-1 {
		panic(fmt.Sprintf("graph: ConnectedRandom needs m >= n-1, got n=%d m=%d", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	edges := make([]Edge, 0, m)
	for i := 1; i < n; i++ {
		parent := perm[rng.Intn(i)]
		edges = append(edges, Edge{uint32(perm[i]), uint32(parent)})
	}
	for len(edges) < m {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n - 1))
		if v >= u {
			v++
		}
		edges = append(edges, Edge{u, v})
	}
	return MustFromEdges(n, edges, true)
}

// RMAT generates an undirected multigraph with 2^scale vertices and m edges
// by recursive-matrix sampling with the canonical partition probabilities
// (a, b, c, d); use a=0.57, b=c=0.19, d=0.05 for Graph500-like skew. Skewed
// degree distributions maximize concurrent-write collisions on hub
// vertices, the regime in which the paper's CC speedups grow.
// Deterministic in seed.
func RMAT(scale, m int, a, b, c float64, seed int64) *Graph {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("graph: RMAT scale %d out of range [1,30]", scale))
	}
	if a <= 0 || b < 0 || c < 0 || a+b+c >= 1 {
		panic("graph: RMAT probabilities must satisfy a>0, b,c>=0, a+b+c<1")
	}
	n := 1 << scale
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue // skip self-loops, as in the uniform generator
		}
		edges = append(edges, Edge{uint32(u), uint32(v)})
	}
	return MustFromEdges(n, edges, true)
}

// Grid2D generates the rows x cols grid graph (4-neighbour connectivity),
// a low-collision structured input.
func Grid2D(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: Grid2D needs rows, cols >= 1")
	}
	n := rows * cols
	edges := make([]Edge, 0, 2*n)
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)})
			}
		}
	}
	return MustFromEdges(n, edges, true)
}

// Star generates the star on n vertices: vertex 0 is the hub. Every
// non-hub's write in BFS targets distinct cells but every CC hooking write
// collides on the hub's component — the maximal-collision input.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: Star needs n >= 2")
	}
	edges := make([]Edge, n-1)
	for i := 1; i < n; i++ {
		edges[i-1] = Edge{0, uint32(i)}
	}
	return MustFromEdges(n, edges, true)
}

// Path generates the path 0-1-2-...-(n-1), the minimal-collision input and
// the worst case for level-synchronous BFS depth.
func Path(n int) *Graph {
	if n < 2 {
		panic("graph: Path needs n >= 2")
	}
	edges := make([]Edge, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = Edge{uint32(i), uint32(i + 1)}
	}
	return MustFromEdges(n, edges, true)
}

// Cycle generates the n-cycle.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	edges := make([]Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = Edge{uint32(i), uint32((i + 1) % n)}
	}
	return MustFromEdges(n, edges, true)
}

// Complete generates the complete graph K_n: every CC hooking round
// collides all writers, and BFS finishes in one level.
func Complete(n int) *Graph {
	if n < 2 {
		panic("graph: Complete needs n >= 2")
	}
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{uint32(u), uint32(v)})
		}
	}
	return MustFromEdges(n, edges, true)
}

// Disjoint unions k copies of g into one graph with k*g.NumVertices()
// vertices and no inter-copy edges — k components by construction, used to
// validate connected-components labelling.
func Disjoint(g *Graph, k int) *Graph {
	if k < 1 {
		panic("graph: Disjoint needs k >= 1")
	}
	n := g.NumVertices()
	base := g.Edges()
	edges := make([]Edge, 0, len(base)*k)
	for copyi := 0; copyi < k; copyi++ {
		off := uint32(copyi * n)
		for _, e := range base {
			edges = append(edges, Edge{e.U + off, e.V + off})
		}
	}
	return MustFromEdges(n*k, edges, g.undirected)
}
