package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes a graph for experiment logs.
type Stats struct {
	Vertices   int
	Edges      int
	Arcs       int
	MinDegree  int
	MaxDegree  int
	P99Degree  int // 99th-percentile degree
	AvgDegree  float64
	Skew       float64 // MaxDegree / AvgDegree; 1.0 = perfectly regular
	Components int
	Isolated   int // vertices of degree 0
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d arcs=%d deg[min=%d avg=%.2f p99=%d max=%d skew=%.1f] components=%d isolated=%d",
		s.Vertices, s.Edges, s.Arcs, s.MinDegree, s.AvgDegree, s.P99Degree, s.MaxDegree, s.Skew, s.Components, s.Isolated)
}

// ComputeStats walks the graph once (plus one sequential component sweep)
// and returns its summary.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	s := Stats{
		Vertices: n,
		Edges:    g.NumEdges(),
		Arcs:     g.NumArcs(),
	}
	if n == 0 {
		return s
	}
	degrees := make([]int, n)
	s.MinDegree = g.Degree(0)
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		degrees[v] = d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	sort.Ints(degrees)
	// Nearest-rank p99: the degree at rank ceil(0.99*n) (1-based).
	rank := (99*n + 99) / 100
	if rank < 1 {
		rank = 1
	}
	s.P99Degree = degrees[rank-1]
	s.AvgDegree = float64(g.NumArcs()) / float64(n)
	if s.AvgDegree > 0 {
		s.Skew = float64(s.MaxDegree) / s.AvgDegree
	}
	s.Components = CountComponents(g)
	return s
}

// DegreeSkewed reports whether g's degree distribution is hub-heavy enough
// that equal-count vertex shards are likely to straggle — the condition
// under which the irregular kernels (frontier BFS relaxation, randmate CC
// hooking, matching proposals) default to the work-stealing scheduler
// instead of static partitioning. The test is deliberately coarse: some
// vertex carries both an absolute hub's worth of arcs (≥ stealHubDegree)
// and ≥ stealSkewFactor times the average, which holds for R-MAT and star
// families and fails for paths, grids and uniform random multigraphs.
// One O(n) degree sweep; no allocation.
func DegreeSkewed(g *Graph) bool {
	const (
		stealHubDegree  = 64
		stealSkewFactor = 8
	)
	n := g.NumVertices()
	if n == 0 {
		return false
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(uint32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(g.NumArcs()) / float64(n)
	return maxDeg >= stealHubDegree && float64(maxDeg) >= stealSkewFactor*avg
}

// CountComponents returns the number of connected components, treating arcs
// as traversable in the stored direction only (for undirected graphs both
// directions are stored, so this is the usual undirected component count).
// It uses an iterative sequential BFS and is intended for validation, not
// benchmarking.
func CountComponents(g *Graph) int {
	n := g.NumVertices()
	seen := make([]bool, n)
	queue := make([]uint32, 0, 1024)
	components := 0
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		components++
		seen[start] = true
		queue = append(queue[:0], uint32(start))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return components
}

// ComponentLabels returns, for every vertex, the smallest vertex id in its
// component — the canonical labelling used to validate the parallel CC
// kernels. Sequential; validation only.
func ComponentLabels(g *Graph) []uint32 {
	n := g.NumVertices()
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = ^uint32(0)
	}
	queue := make([]uint32, 0, 1024)
	for start := 0; start < n; start++ {
		if labels[start] != ^uint32(0) {
			continue
		}
		root := uint32(start) // smallest id in the component: vertices are scanned in order
		labels[start] = root
		queue = append(queue[:0], uint32(start))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if labels[u] == ^uint32(0) {
					labels[u] = root
					queue = append(queue, u)
				}
			}
		}
	}
	return labels
}
