package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary checks that the binary decoder never panics or
// over-allocates on arbitrary input, and that anything it accepts
// satisfies the CSR invariants and round-trips.
func FuzzReadBinary(f *testing.F) {
	// Seed with valid encodings of assorted graphs plus corruptions.
	for _, g := range []*Graph{
		MustFromEdges(1, nil, true),
		Path(5),
		Star(8),
		RandomUndirected(20, 40, 1),
		MustFromEdges(3, []Edge{{U: 0, V: 1}}, false),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 4 {
			f.Add(buf.Bytes()[:buf.Len()/2]) // truncation
		}
	}
	f.Add([]byte{})
	f.Add([]byte("CRCWGR1\n"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := validateCSR(g); err != nil {
			t.Fatalf("accepted graph violates CSR invariants: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !graphsEqual(g, back) {
			t.Fatal("decode/encode/decode not a fixed point")
		}
	})
}

// FuzzReadEdgeList checks the text parser never panics and that accepted
// graphs are well-formed.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# 3 2 undirected\n0 1\n1 2\n")
	f.Add("# 2 1 directed\n0 1\n")
	f.Add("# 0 0 undirected\n")
	f.Add("")
	f.Add("# x y z\n")
	f.Add("# 3 2 undirected\n0 1\n# comment\n\n1 2\n")
	f.Add("# 9999999 1 undirected\n0 1\n")

	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			return
		}
		g, err := ReadEdgeList(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := validateCSR(g); err != nil {
			t.Fatalf("accepted graph violates CSR invariants: %v", err)
		}
	})
}
