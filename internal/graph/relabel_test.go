package graph_test

import (
	"sort"
	"testing"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/graph"
)

func checkBijection(t *testing.T, r graph.Relabeling, n int) {
	t.Helper()
	if len(r.Perm) != n || len(r.Inv) != n {
		t.Fatalf("perm/inv lengths %d/%d, want %d", len(r.Perm), len(r.Inv), n)
	}
	seen := make([]bool, n)
	for old, newID := range r.Perm {
		if int(newID) >= n || seen[newID] {
			t.Fatalf("Perm[%d] = %d is out of range or duplicated", old, newID)
		}
		seen[newID] = true
		if r.Inv[newID] != uint32(old) {
			t.Fatalf("Inv[Perm[%d]] = %d, want %d", old, r.Inv[newID], old)
		}
	}
}

func degreeMultiset(g *graph.Graph) []int {
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(uint32(v))
	}
	sort.Ints(degs)
	return degs
}

func TestRelabelNoneIsIdentity(t *testing.T) {
	g := graph.RMAT(6, 128, 0.45, 0.22, 0.22, 7)
	r := graph.Relabel(g, graph.RelabelNone)
	if r.G != g {
		t.Fatal("RelabelNone should alias the input graph")
	}
	checkBijection(t, r, g.NumVertices())
	for v := range r.Perm {
		if r.Perm[v] != uint32(v) {
			t.Fatalf("Perm[%d] = %d, want identity", v, r.Perm[v])
		}
	}
}

func TestRelabelDegreeOrdersByDegree(t *testing.T) {
	g := graph.RMAT(7, 400, 0.5, 0.2, 0.2, 3)
	r := graph.Relabel(g, graph.RelabelDegree)
	checkBijection(t, r, g.NumVertices())
	for newID := 1; newID < r.G.NumVertices(); newID++ {
		prev, cur := r.G.Degree(uint32(newID-1)), r.G.Degree(uint32(newID))
		if cur > prev {
			t.Fatalf("degree order violated at new id %d: %d > %d", newID, cur, prev)
		}
		if cur == prev && r.Inv[newID-1] > r.Inv[newID] {
			t.Fatalf("degree tie at new id %d not broken by original id", newID)
		}
	}
}

func TestRelabelBFSOrdersByDiscovery(t *testing.T) {
	g := graph.ConnectedRandom(300, 900, 11)
	r := graph.Relabel(g, graph.RelabelBFS)
	checkBijection(t, r, g.NumVertices())
	// Vertex 0 maps to new id 0 and levels are non-decreasing in new-id
	// order (BFS discovery order never goes back a level).
	if r.Perm[0] != 0 {
		t.Fatalf("Perm[0] = %d, want 0", r.Perm[0])
	}
	seq := bfs.Sequential(g, 0)
	for newID := 1; newID < g.NumVertices(); newID++ {
		if seq.Level[r.Inv[newID]] < seq.Level[r.Inv[newID-1]] {
			t.Fatalf("BFS order violated at new id %d", newID)
		}
	}
}

func TestRelabelUnpermute(t *testing.T) {
	g := graph.RMAT(6, 100, 0.45, 0.22, 0.22, 5)
	r := graph.Relabel(g, graph.RelabelDegree)
	n := g.NumVertices()
	src := make([]uint32, n)
	for newID := range src {
		src[newID] = uint32(newID) * 10
	}
	dst := make([]uint32, n)
	r.Unpermute(dst, src)
	for old := 0; old < n; old++ {
		if dst[old] != r.Perm[old]*10 {
			t.Fatalf("Unpermute: dst[%d] = %d, want %d", old, dst[old], r.Perm[old]*10)
		}
	}
}

func TestPermHash(t *testing.T) {
	a := []uint32{0, 1, 2, 3}
	b := []uint32{1, 0, 2, 3}
	if graph.PermHash(a) == graph.PermHash(b) {
		t.Fatal("distinct permutations hashed equal")
	}
	if graph.PermHash(a) != graph.PermHash([]uint32{0, 1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
	if graph.PermHash(a) == 0 || graph.PermHash(nil) == 0 {
		t.Fatal("hash returned the zero sentinel")
	}
}

// checkRelabelInvariants is the shared body of the fuzz test and its seed
// cases: for every mode, the permutation is a bijection, the degree
// multiset is preserved, and BFS levels / CC component structure computed
// on the relabeled graph map back exactly through the inverse permutation.
func checkRelabelInvariants(t *testing.T, g *graph.Graph) {
	t.Helper()
	n := g.NumVertices()
	wantDegs := degreeMultiset(g)
	seqLevels := bfs.Sequential(g, 0).Level
	ccLabels := cc.SequentialLabels(g)
	for _, mode := range graph.RelabelModes {
		r := graph.Relabel(g, mode)
		checkBijection(t, r, n)
		if got := degreeMultiset(r.G); len(got) != len(wantDegs) {
			t.Fatalf("%v: degree multiset length changed", mode)
		} else {
			for i := range got {
				if got[i] != wantDegs[i] {
					t.Fatalf("%v: degree multiset differs at %d: %d != %d", mode, i, got[i], wantDegs[i])
				}
			}
		}
		if r.G.NumArcs() != g.NumArcs() || r.G.Undirected() != g.Undirected() {
			t.Fatalf("%v: arc count or undirectedness changed", mode)
		}
		// BFS from the image of vertex 0 maps back to the original levels.
		rel := bfs.Sequential(r.G, r.Perm[0])
		mapped := make([]uint32, n)
		r.Unpermute(mapped, rel.Level)
		for v := 0; v < n; v++ {
			if mapped[v] != seqLevels[v] {
				t.Fatalf("%v: BFS level of %d maps back to %d, want %d", mode, v, mapped[v], seqLevels[v])
			}
		}
		// CC labels are representatives, not canonical across relabelings;
		// the partition must match: the label-to-label correspondence
		// between original and mapped-back labels must be one-to-one.
		relCC := cc.SequentialLabels(r.G)
		r.Unpermute(mapped, relCC)
		fwd := make(map[uint32]uint32, 8)
		rev := make(map[uint32]uint32, 8)
		for v := 0; v < n; v++ {
			if want, ok := fwd[ccLabels[v]]; ok && want != mapped[v] {
				t.Fatalf("%v: component of %d split by relabeling", mode, v)
			}
			fwd[ccLabels[v]] = mapped[v]
			if want, ok := rev[mapped[v]]; ok && want != ccLabels[v] {
				t.Fatalf("%v: components of %d merged by relabeling", mode, v)
			}
			rev[mapped[v]] = ccLabels[v]
		}
	}
}

func FuzzRelabel(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 2, 3})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(9), []byte{0, 8, 8, 0, 3, 3, 7, 2, 2, 7, 5, 6})
	f.Add(uint8(16), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0, 15})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw%64) + 1
		edges := make([]graph.Edge, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			edges = append(edges, graph.Edge{
				U: uint32(data[i]) % uint32(n),
				V: uint32(data[i+1]) % uint32(n),
			})
		}
		checkRelabelInvariants(t, graph.MustFromEdges(n, edges, true))
	})
}

func TestRelabelInvariantsOnGenerators(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.RMAT(7, 500, 0.45, 0.22, 0.22, 42),
		graph.ConnectedRandom(500, 1500, 4),
		graph.Star(64),
		graph.Path(100),
		graph.Disjoint(graph.Path(40), 3),
	} {
		checkRelabelInvariants(t, g)
	}
}
