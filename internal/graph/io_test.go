package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() || a.undirected != b.undirected {
		return false
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	for i := range a.targets {
		if a.targets[i] != b.targets[i] {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	graphs := []*Graph{
		RandomUndirected(100, 300, 5),
		MustFromEdges(3, []Edge{{0, 1}, {1, 2}}, false),
		MustFromEdges(1, nil, true),
		Star(50),
	}
	for i, g := range graphs {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("graph %d: WriteBinary: %v", i, err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("graph %d: ReadBinary: %v", i, err)
		}
		if !graphsEqual(g, back) {
			t.Fatalf("graph %d: round trip mismatch", i)
		}
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Path(5)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Truncated targets.
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated input accepted")
	}

	// Out-of-range target: last 4 bytes are the final target id.
	bad = append([]byte{}, raw...)
	bad[len(bad)-1] = 0xFF
	bad[len(bad)-2] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range target accepted")
	}

	// Empty input.
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	graphs := []*Graph{
		RandomUndirected(40, 100, 6),
		MustFromEdges(4, []Edge{{0, 1}, {2, 3}, {1, 2}}, false),
	}
	for i, g := range graphs {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("graph %d: WriteEdgeList: %v", i, err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("graph %d: ReadEdgeList: %v", i, err)
		}
		// Edge lists do not preserve arc order, so compare degree
		// sequences and edge multisets.
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("graph %d: size mismatch", i)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if back.Degree(uint32(v)) != g.Degree(uint32(v)) {
				t.Fatalf("graph %d: degree(%d) differs", i, v)
			}
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "3 2 undirected\n0 1\n1 2\n",
		"bad kind":     "# 3 2 sideways\n0 1\n1 2\n",
		"count err":    "# 3 5 undirected\n0 1\n1 2\n",
		"bad line":     "# 2 1 undirected\nzero one\n",
		"out of range": "# 2 1 undirected\n0 7\n",
		"bad n":        "# x 1 undirected\n0 1\n",
		"bad m":        "# 2 x undirected\n0 1\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestReadEdgeListSkipsBlanksAndComments(t *testing.T) {
	in := "# 3 2 undirected\n\n# a comment\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d, want 3/2", g.NumVertices(), g.NumEdges())
	}
}

// Property: binary round trip is the identity on randomly generated graphs.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(nRaw uint8, mRaw uint16, seed int64) bool {
		n := int(nRaw)%100 + 2
		m := int(mRaw) % 1000
		g := RandomUndirected(n, m, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return graphsEqual(g, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
