package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary serialization: a fixed little-endian header followed by the raw
// CSR arrays. The format is versioned via the magic so incompatible future
// layouts fail loudly instead of decoding garbage.
//
//	magic   [8]byte  "CRCWGR1\n"
//	flags   uint32   bit 0: undirected
//	n       uint32   vertex count
//	arcs    uint32   arc count
//	offsets [n+1]uint32
//	targets [arcs]uint32

var binaryMagic = [8]byte{'C', 'R', 'C', 'W', 'G', 'R', '1', '\n'}

const flagUndirected = 1

// WriteBinary serializes g to w in the package's binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("graph: write magic: %w", err)
	}
	var flags uint32
	if g.undirected {
		flags |= flagUndirected
	}
	head := []uint32{flags, uint32(g.NumVertices()), uint32(g.NumArcs())}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("graph: write header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return fmt.Errorf("graph: write offsets: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.targets); err != nil {
		return fmt.Errorf("graph: write targets: %w", err)
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary and validates the
// CSR invariants before returning it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: read magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var flags, n, arcs uint32
	for _, p := range []*uint32{&flags, &n, &arcs} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: read header: %w", err)
		}
	}
	g := &Graph{undirected: flags&flagUndirected != 0}
	var err error
	// Read incrementally: a corrupt header claiming billions of entries
	// must fail at the truncation point, not pre-allocate the claimed
	// size.
	if g.offsets, err = readUint32Slice(br, uint64(n)+1); err != nil {
		return nil, fmt.Errorf("graph: read offsets: %w", err)
	}
	if g.targets, err = readUint32Slice(br, uint64(arcs)); err != nil {
		return nil, fmt.Errorf("graph: read targets: %w", err)
	}
	if err := validateCSR(g); err != nil {
		return nil, err
	}
	return g, nil
}

// readUint32Slice reads exactly count little-endian uint32 values,
// allocating in bounded chunks so corrupt headers cannot force huge
// up-front allocations.
func readUint32Slice(br *bufio.Reader, count uint64) ([]uint32, error) {
	const chunk = 1 << 16
	out := make([]uint32, 0, min(count, chunk))
	buf := make([]byte, 4*chunk)
	for uint64(len(out)) < count {
		want := count - uint64(len(out))
		if want > chunk {
			want = chunk
		}
		if _, err := io.ReadFull(br, buf[:4*want]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < want; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return out, nil
}

func validateCSR(g *Graph) error {
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if int(g.offsets[n]) != len(g.targets) {
		return fmt.Errorf("graph: offsets end %d != %d arcs", g.offsets[n], len(g.targets))
	}
	for i, t := range g.targets {
		if int(t) >= n {
			return fmt.Errorf("graph: arc %d targets out-of-range vertex %d (n=%d)", i, t, n)
		}
	}
	return nil
}

// WriteEdgeList writes g as a plain-text edge list: a header line
// "# n m undirected|directed" followed by one "u v" pair per line (each
// undirected edge once).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	kind := "directed"
	if g.undirected {
		kind = "undirected"
	}
	if _, err := fmt.Fprintf(bw, "# %d %d %s\n", g.NumVertices(), g.NumEdges(), kind); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("graph: write edge: %w", err)
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("graph: read header: %w", err)
		}
		return nil, fmt.Errorf("graph: empty edge-list input")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 4 || fields[0] != "#" {
		return nil, fmt.Errorf("graph: bad edge-list header %q", sc.Text())
	}
	// The text format is for human-scale graphs; bound the declared sizes
	// so a corrupt header cannot force a giant allocation.
	const maxTextSize = 1 << 26
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n > maxTextSize {
		return nil, fmt.Errorf("graph: bad vertex count %q", fields[1])
	}
	m, err := strconv.Atoi(fields[2])
	if err != nil || m < 0 || m > maxTextSize {
		return nil, fmt.Errorf("graph: bad edge count %q", fields[2])
	}
	var undirected bool
	switch fields[3] {
	case "undirected":
		undirected = true
	case "directed":
	default:
		return nil, fmt.Errorf("graph: bad kind %q", fields[3])
	}
	edges := make([]Edge, 0, min(m, 1<<20))
	line := 1
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		var u, v uint32
		if _, err := fmt.Sscanf(txt, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		edges = append(edges, Edge{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	if len(edges) != m {
		return nil, fmt.Errorf("graph: header claims %d edges, found %d", m, len(edges))
	}
	return FromEdges(n, edges, undirected)
}
