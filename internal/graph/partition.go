package graph

import "crcwpram/internal/sched"

// Balance selects how a kernel's vertex loops are divided over workers.
//
// The paper's kernels (and ours, by default) split every loop by vertex
// count. On skewed-degree graphs that concentrates arc work: the worker
// whose block contains a hub walks its whole adjacency list while the rest
// of the party idles at the round barrier. BalanceEdge splits the same
// vertex range by *arc* count instead, using the CSR offsets array as the
// prefix-weight array, so each worker walks a near-equal number of arcs.
// Either way a worker owns a contiguous vertex range, so the PRAM round
// semantics (who writes what, exactly-once coverage) are unchanged — only
// the boundary placement moves.
type Balance int

const (
	// BalanceVertex splits loops into equal-count vertex blocks.
	BalanceVertex Balance = iota
	// BalanceEdge splits loops into equal-arc vertex shards.
	BalanceEdge
)

// Balances lists all balance policies in presentation order.
var Balances = []Balance{BalanceVertex, BalanceEdge}

func (b Balance) String() string {
	switch b {
	case BalanceVertex:
		return "vertex"
	case BalanceEdge:
		return "edge"
	default:
		return "unknown-balance"
	}
}

// ParseBalance converts a balance name (as produced by String) back to a
// Balance.
func ParseBalance(s string) (Balance, bool) {
	for _, b := range Balances {
		if b.String() == s {
			return b, true
		}
	}
	return 0, false
}

// ArcBounds splits the graph's vertex range [0, n) into p contiguous shards
// of near-equal arc count: shard w is [bounds[w], bounds[w+1]). The CSR
// offsets array is already the arc-prefix array, so this is p-1 binary
// searches and no graph traversal. Each shard carries at most
// ceil(arcs/p) + maxDegree arcs (a boundary cannot split one vertex's
// adjacency list). Zero-degree vertices ride along with whichever shard
// spans their id.
func ArcBounds(g *Graph, p int) []int {
	return sched.WeightedBounds(g.offsets, p)
}

// FrontierDegrees fills deg[i] with the degree of frontier[i] and returns
// the slice. An exclusive prefix scan of deg (see scan.BlockExclusive) turns
// it into the arc-prefix array that sched.WeightedRange shards a frontier
// relaxation by, and its total is the frontier edge count m_f that the
// direction-optimizing BFS switch tests.
func FrontierDegrees(g *Graph, frontier []uint32, deg []uint32) []uint32 {
	deg = deg[:len(frontier)]
	for i, v := range frontier {
		deg[i] = uint32(g.Degree(v))
	}
	return deg
}
