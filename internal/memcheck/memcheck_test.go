package memcheck

import (
	"strings"
	"sync"
	"testing"

	"crcwpram/internal/core/cw"
)

func TestCleanSequentialUse(t *testing.T) {
	for _, mode := range []Mode{EREW, CREW, CRCWCommon, CRCWArbitrary} {
		a := New(mode, 4)
		a.Write(0, 7)
		a.NextRound()
		if got := a.Read(0); got != 7 {
			t.Fatalf("%v: Read = %d, want 7", mode, got)
		}
		a.NextRound()
		a.Write(0, 9)
		a.NextRound()
		if got := a.Read(0); got != 9 {
			t.Fatalf("%v: Read = %d, want 9", mode, got)
		}
		if !a.Ok() {
			t.Fatalf("%v: clean round-separated use reported violations: %v", mode, a.Violations())
		}
	}
}

func TestEREWDetectsConcurrentRead(t *testing.T) {
	a := New(EREW, 2)
	a.Read(1)
	a.Read(1)
	if a.Ok() {
		t.Fatal("double read under EREW not detected")
	}
	vs := a.Violations()
	if vs[0].Kind != ConcurrentRead || vs[0].Index != 1 {
		t.Fatalf("got violation %v, want concurrent-read at cell 1", vs[0])
	}
	// Distinct cells are fine.
	b := New(EREW, 2)
	b.Read(0)
	b.Read(1)
	if !b.Ok() {
		t.Fatal("reads of distinct cells flagged under EREW")
	}
}

func TestCREWAllowsConcurrentReadsRejectsSecondWrite(t *testing.T) {
	a := New(CREW, 1)
	a.Read(0)
	a.Read(0)
	a.Read(0)
	if !a.Ok() {
		t.Fatal("concurrent reads flagged under CREW")
	}
	a.NextRound()
	a.Write(0, 1)
	a.Write(0, 1)
	if a.Ok() {
		t.Fatal("second write under CREW not detected")
	}
	if a.Violations()[0].Kind != ConcurrentWrite {
		t.Fatalf("got %v, want concurrent-write", a.Violations()[0])
	}
}

func TestCommonAcceptsEqualRejectsDifferingWrites(t *testing.T) {
	a := New(CRCWCommon, 1)
	a.Write(0, 5)
	a.Write(0, 5)
	a.Write(0, 5)
	if !a.Ok() {
		t.Fatal("equal-value concurrent writes flagged under CRCWCommon")
	}
	a.NextRound()
	a.Write(0, 1)
	a.Write(0, 2)
	if a.Ok() {
		t.Fatal("differing-value writes under CRCWCommon not detected")
	}
	v := a.Violations()[0]
	if v.Kind != UncommonWrite || v.Want != 1 || v.Got != 2 {
		t.Fatalf("got %v, want uncommon-write want=1 got=2", v)
	}
	if !strings.Contains(v.String(), "first wrote 1, then 2") {
		t.Fatalf("violation string %q lacks value detail", v.String())
	}
}

func TestArbitraryAcceptsDifferingWrites(t *testing.T) {
	a := New(CRCWArbitrary, 1)
	a.Write(0, 1)
	a.Write(0, 2)
	a.Write(0, 3)
	if !a.Ok() {
		t.Fatalf("differing writes flagged under CRCWArbitrary: %v", a.Violations())
	}
}

func TestReadWriteRaceDetectedInAllModes(t *testing.T) {
	for _, mode := range []Mode{EREW, CREW, CRCWCommon, CRCWArbitrary} {
		a := New(mode, 1)
		a.Write(0, 1)
		a.Read(0)
		found := false
		for _, v := range a.Violations() {
			if v.Kind == ReadWriteRace {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v: read-after-write in same round not flagged", mode)
		}
	}
}

func TestRoundSeparationClearsState(t *testing.T) {
	a := New(EREW, 1)
	for r := 0; r < 100; r++ {
		a.Read(0)
		a.NextRound()
	}
	if !a.Ok() {
		t.Fatal("one access per round flagged under EREW")
	}
}

func TestNewFromAndData(t *testing.T) {
	src := []uint32{3, 1, 4, 1, 5}
	a := NewFrom(CREW, src)
	if a.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", a.Len())
	}
	got := a.Data()
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("Data()[%d] = %d, want %d", i, got[i], src[i])
		}
	}
	if a.Mode() != CREW {
		t.Fatalf("Mode() = %v, want CREW", a.Mode())
	}
}

func TestTotalCountExactBeyondRecordCap(t *testing.T) {
	a := New(EREW, 1)
	for i := 0; i < 300; i++ {
		a.Read(0) // every read after the first violates
	}
	if got := a.TotalViolations(); got != 299 {
		t.Fatalf("TotalViolations() = %d, want 299", got)
	}
	if got := len(a.Violations()); got != maxRecorded {
		t.Fatalf("recorded %d violations, want cap %d", got, maxRecorded)
	}
}

// Failure injection: the exact scenario of the paper's Section 4-5. A naive
// arbitrary concurrent write (different threads writing different values to
// one cell with no selection) is a detectable violation under the common
// checker, while the same kernel guarded by CAS-LT is clean because only
// the winner writes.
func TestNaiveArbitraryWriteIsDetectedCASLTIsNot(t *testing.T) {
	const writers = 16

	naive := New(CRCWCommon, 1)
	var wg sync.WaitGroup
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		g := g
		go func() {
			defer wg.Done()
			naive.Write(0, uint32(g)) // arbitrary CW done naively
		}()
	}
	wg.Wait()
	if naive.Ok() {
		t.Fatal("naive arbitrary concurrent write was not detected as unsafe")
	}

	guarded := New(CRCWCommon, 1)
	var cell cw.Cell
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		g := g
		go func() {
			defer wg.Done()
			if cell.TryClaim(1) {
				guarded.Write(0, uint32(g))
			}
		}()
	}
	wg.Wait()
	if !guarded.Ok() {
		t.Fatalf("CAS-LT-guarded write reported violations: %v", guarded.Violations())
	}
}

func TestModeAndViolationStrings(t *testing.T) {
	modes := map[Mode]string{EREW: "erew", CREW: "crew", CRCWCommon: "crcw-common", CRCWArbitrary: "crcw-arbitrary"}
	for m, want := range modes {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
	kinds := map[ViolationKind]string{
		ConcurrentRead:  "concurrent-read",
		ConcurrentWrite: "concurrent-write",
		UncommonWrite:   "uncommon-write",
		ReadWriteRace:   "read-write-race",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("ViolationKind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// The checker itself must be safe under heavy concurrent use: hammer one
// array from many goroutines across modes and verify the counters add up.
func TestCheckerConcurrentStress(t *testing.T) {
	const goroutines = 32
	const writesPer = 200

	// Arbitrary mode accepts everything except mixed R+W; writers only.
	a := New(CRCWArbitrary, 8)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < writesPer; i++ {
				a.Write(i%8, uint32(g))
			}
		}()
	}
	wg.Wait()
	if !a.Ok() {
		t.Fatalf("arbitrary-mode writes flagged: %v", a.Violations())
	}

	// EREW mode under the same storm must count exactly the excess
	// accesses: per cell, goroutines*writesPer/8 writes landed in one
	// round, all but the first violating.
	e := New(EREW, 8)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < writesPer; i++ {
				e.Write(i%8, 1)
			}
		}()
	}
	wg.Wait()
	want := goroutines*writesPer - 8
	if got := e.TotalViolations(); got != want {
		t.Fatalf("EREW violations = %d, want %d", got, want)
	}
}
