// Package memcheck provides instrumented PRAM shared-memory arrays that
// verify, at runtime, that an algorithm's memory accesses conform to a
// declared PRAM access mode.
//
// The paper's Section 2 notes that "in all these modes if a concurrent
// read/write is attempted in an exclusive read/write mode, the algorithm
// fails", and Section 4 explains why a naive (unguarded) implementation of
// *arbitrary* concurrent writes is unsafe on real machines: racing writers
// with different values — especially multi-word payloads — can commit a
// torn mixture matching none of the attempted writes. This package makes
// both failure classes observable: tests wrap a kernel's shared arrays in
// checked arrays and assert that the expected violations are (or are not)
// reported.
//
// A checked array tracks, per cell and per round, how many reads and writes
// occurred and whether all writes in a round carried the same value. The
// enforced rules per mode:
//
//	mode           reads/cell/round   writes/cell/round        mixed R+W
//	EREW           <= 1               <= 1                     forbidden
//	CREW           any                <= 1                     forbidden
//	CRCWCommon     any                any, all equal values    forbidden
//	CRCWArbitrary  any                any                      forbidden
//
// Mixed reads and writes of one cell within one round are flagged in every
// mode: PRAM defines reads-before-writes inside a step, but an asynchronous
// machine provides no such ordering without a synchronization point — this
// is exactly the "synchronization point is required before any subsequent
// dependent read" discipline the paper imposes.
//
// Checked arrays serialize accesses per cell and are for tests and
// debugging only; kernels use raw slices in benchmarked paths.
package memcheck

import (
	"fmt"
	"sync"
)

// Mode declares the PRAM access mode an array is checked against.
type Mode int

const (
	// EREW allows at most one access (read or write) per cell per round.
	EREW Mode = iota
	// CREW allows concurrent reads but at most one write per cell per round.
	CREW
	// CRCWCommon allows concurrent writes that all carry the same value.
	CRCWCommon
	// CRCWArbitrary allows concurrent writes with arbitrary values.
	CRCWArbitrary
)

func (m Mode) String() string {
	switch m {
	case EREW:
		return "erew"
	case CREW:
		return "crew"
	case CRCWCommon:
		return "crcw-common"
	case CRCWArbitrary:
		return "crcw-arbitrary"
	default:
		return "unknown-mode"
	}
}

// ViolationKind classifies a detected access-mode violation.
type ViolationKind int

const (
	// ConcurrentRead: second read of a cell in one round under EREW.
	ConcurrentRead ViolationKind = iota
	// ConcurrentWrite: second write of a cell in one round under EREW/CREW.
	ConcurrentWrite
	// UncommonWrite: writes with differing values in one round under
	// CRCWCommon — the race that makes naive arbitrary CW unsafe.
	UncommonWrite
	// ReadWriteRace: a cell both read and written in one round.
	ReadWriteRace
)

func (k ViolationKind) String() string {
	switch k {
	case ConcurrentRead:
		return "concurrent-read"
	case ConcurrentWrite:
		return "concurrent-write"
	case UncommonWrite:
		return "uncommon-write"
	case ReadWriteRace:
		return "read-write-race"
	default:
		return "unknown-violation"
	}
}

// Violation describes one detected access-mode violation.
type Violation struct {
	Kind  ViolationKind
	Index int    // cell index
	Round uint32 // round in which it occurred
	Want  uint32 // for UncommonWrite: the round's first written value
	Got   uint32 // for UncommonWrite: the conflicting value
}

func (v Violation) String() string {
	if v.Kind == UncommonWrite {
		return fmt.Sprintf("%s at cell %d round %d: first wrote %d, then %d", v.Kind, v.Index, v.Round, v.Want, v.Got)
	}
	return fmt.Sprintf("%s at cell %d round %d", v.Kind, v.Index, v.Round)
}

// maxRecorded bounds the violations kept verbatim; the total count is
// always exact.
const maxRecorded = 100

type cellState struct {
	mu       sync.Mutex
	val      uint32
	tag      uint32 // round of the counters below; 0 = never touched
	reads    uint32
	writes   uint32
	firstVal uint32
}

// Array is a checked shared array of uint32 cells.
type Array struct {
	mode  Mode
	cells []cellState

	round uint32

	vmu        sync.Mutex
	violations []Violation
	total      int
}

// New returns a checked array of n zero cells under the given mode, at
// round 1.
func New(mode Mode, n int) *Array {
	return &Array{mode: mode, cells: make([]cellState, n), round: 1}
}

// NewFrom returns a checked array initialized from src.
func NewFrom(mode Mode, src []uint32) *Array {
	a := New(mode, len(src))
	for i, v := range src {
		a.cells[i].val = v
	}
	return a
}

// Len returns the number of cells.
func (a *Array) Len() int { return len(a.cells) }

// Mode returns the declared access mode.
func (a *Array) Mode() Mode { return a.mode }

// Round returns the current round id.
func (a *Array) Round() uint32 { return a.round }

// NextRound starts a new round: accesses before and after NextRound never
// conflict. NextRound must not race with Read/Write (call it at a
// synchronization point, as the paper prescribes).
func (a *Array) NextRound() { a.round++ }

// Read returns cell i's value and checks read exclusivity for the current
// round.
func (a *Array) Read(i int) uint32 {
	c := &a.cells[i]
	c.mu.Lock()
	a.syncCell(c)
	c.reads++
	if a.mode == EREW && c.reads > 1 {
		a.record(Violation{Kind: ConcurrentRead, Index: i, Round: a.round})
	}
	if c.writes > 0 {
		a.record(Violation{Kind: ReadWriteRace, Index: i, Round: a.round})
	}
	v := c.val
	c.mu.Unlock()
	return v
}

// Write stores v into cell i and checks write exclusivity / commonality for
// the current round.
func (a *Array) Write(i int, v uint32) {
	c := &a.cells[i]
	c.mu.Lock()
	a.syncCell(c)
	c.writes++
	switch {
	case c.writes == 1:
		c.firstVal = v
	case a.mode == EREW || a.mode == CREW:
		a.record(Violation{Kind: ConcurrentWrite, Index: i, Round: a.round})
	case a.mode == CRCWCommon && v != c.firstVal:
		a.record(Violation{Kind: UncommonWrite, Index: i, Round: a.round, Want: c.firstVal, Got: v})
	}
	if c.reads > 0 {
		a.record(Violation{Kind: ReadWriteRace, Index: i, Round: a.round})
	}
	c.val = v
	c.mu.Unlock()
}

// syncCell lazily resets a cell's per-round counters when first touched in
// a new round; caller holds the cell lock.
func (a *Array) syncCell(c *cellState) {
	if c.tag != a.round {
		c.tag = a.round
		c.reads = 0
		c.writes = 0
	}
}

func (a *Array) record(v Violation) {
	a.vmu.Lock()
	a.total++
	if len(a.violations) < maxRecorded {
		a.violations = append(a.violations, v)
	}
	a.vmu.Unlock()
}

// Violations returns the recorded violations (at most the first 100).
func (a *Array) Violations() []Violation {
	a.vmu.Lock()
	defer a.vmu.Unlock()
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// TotalViolations returns the exact number of violations detected.
func (a *Array) TotalViolations() int {
	a.vmu.Lock()
	defer a.vmu.Unlock()
	return a.total
}

// Ok reports whether no violation has been detected.
func (a *Array) Ok() bool { return a.TotalViolations() == 0 }

// Data copies the array contents out. Call only at a synchronization point.
func (a *Array) Data() []uint32 {
	out := make([]uint32, len(a.cells))
	for i := range a.cells {
		out[i] = a.cells[i].val
	}
	return out
}
