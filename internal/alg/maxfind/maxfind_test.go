package maxfind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/race"
)

// selectionMethods are the CW methods that are race-detector-clean; Naive
// is tested separately and skipped under -race.
var selectionMethods = []cw.Method{cw.CASLT, cw.Gatekeeper, cw.GatekeeperChecked, cw.Mutex}

func testMachine(t *testing.T, p int) *machine.Machine {
	t.Helper()
	m := machine.New(p)
	t.Cleanup(m.Close)
	return m
}

func TestSequential(t *testing.T) {
	cases := []struct {
		list []uint32
		want int
	}{
		{nil, -1},
		{[]uint32{7}, 0},
		{[]uint32{1, 9, 3}, 1},
		{[]uint32{9, 1, 3}, 0},
		{[]uint32{1, 3, 9}, 2},
		{[]uint32{5, 5, 5}, 2},    // ties: largest index wins
		{[]uint32{5, 9, 9, 1}, 2}, // tie among maxima
		{[]uint32{0, 0}, 1},
	}
	for _, c := range cases {
		if got := Sequential(c.list); got != c.want {
			t.Errorf("Sequential(%v) = %d, want %d", c.list, got, c.want)
		}
	}
}

func TestKernelMatchesSequentialAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for _, n := range []int{1, 2, 3, 17, 100, 257} {
			k := NewKernel(m, n)
			if k.N() != n {
				t.Fatalf("N() = %d, want %d", k.N(), n)
			}
			for trial := 0; trial < 3; trial++ {
				list := make([]uint32, n)
				for i := range list {
					list[i] = uint32(rng.Intn(n + 1)) // small range forces ties
				}
				want := Sequential(list)
				for _, method := range selectionMethods {
					k.Prepare(list)
					if got := k.Run(method); got != want {
						t.Fatalf("p=%d n=%d %v: got %d (value %d), want %d (value %d), list=%v",
							p, n, method, got, list[got], want, list[want], list)
					}
				}
			}
		}
	}
}

func TestKernelNaiveMatchesSequential(t *testing.T) {
	if race.Enabled {
		t.Skip("naive variant is intentionally racy (benign common CW); skipped under -race")
	}
	rng := rand.New(rand.NewSource(2))
	m := testMachine(t, 4)
	for _, n := range []int{1, 5, 64, 200} {
		k := NewKernel(m, n)
		list := make([]uint32, n)
		for i := range list {
			list[i] = uint32(rng.Intn(50))
		}
		k.Prepare(list)
		if got, want := k.RunNaive(), Sequential(list); got != want {
			t.Fatalf("n=%d naive: got %d, want %d", n, got, want)
		}
	}
}

// CAS-LT needs no re-preparation of its cells between runs: repeated runs
// on fresh inputs must stay correct with only Prepare (isMax reset) in
// between — the round id advances instead.
func TestCASLTRepeatedRunsNoCellReset(t *testing.T) {
	m := testMachine(t, 4)
	const n = 50
	k := NewKernel(m, n)
	rng := rand.New(rand.NewSource(3))
	for rep := 0; rep < 20; rep++ {
		list := make([]uint32, n)
		for i := range list {
			list[i] = uint32(rng.Intn(100))
		}
		k.Prepare(list)
		if got, want := k.RunCASLT(), Sequential(list); got != want {
			t.Fatalf("rep %d: got %d, want %d", rep, got, want)
		}
	}
}

// The gatekeeper methods DO need their reset: running twice without
// Prepare must lose the second run's writes (flags stay stale), which is
// precisely the failure mode the paper describes. We verify by running on
// an input whose maximum changes.
func TestGatekeeperRequiresReset(t *testing.T) {
	m := testMachine(t, 2)
	const n = 8
	k := NewKernel(m, n)
	listA := []uint32{1, 2, 3, 4, 5, 6, 7, 8} // max at 7
	listB := []uint32{8, 7, 6, 5, 4, 3, 2, 1} // max at 0
	k.Prepare(listA)
	if got := k.RunGatekeeper(); got != 7 {
		t.Fatalf("first run: got %d, want 7", got)
	}
	// Swap the input but skip Prepare: gates are all closed, so no flag
	// can be cleared and every candidate survives — scan returns the last
	// index, not listB's true maximum at 0. (We re-set isMax by hand to
	// isolate the gate staleness from flag staleness.)
	k.list = listB
	for i := range k.isMax {
		k.isMax[i] = 1
	}
	if got := k.RunGatekeeper(); got == 0 {
		t.Fatal("gatekeeper run without reset still found the new maximum; expected stale gates to lose all writes")
	}
}

func TestPrepareRejectsWrongLength(t *testing.T) {
	m := testMachine(t, 1)
	k := NewKernel(m, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Prepare with wrong length did not panic")
		}
	}()
	k.Prepare([]uint32{1, 2, 3})
}

func TestTournamentMax(t *testing.T) {
	m := testMachine(t, 4)
	if got := TournamentMax(m, nil); got != -1 {
		t.Fatalf("empty: got %d, want -1", got)
	}
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 5, 8, 100, 1000} {
		list := make([]uint32, n)
		for i := range list {
			list[i] = uint32(rng.Intn(n + 1))
		}
		if got, want := TournamentMax(m, list), Sequential(list); got != want {
			t.Fatalf("n=%d: got %d (value %d), want %d (value %d)", n, got, list[got], want, list[want])
		}
	}
}

func TestReduceMax(t *testing.T) {
	m := testMachine(t, 4)
	if got := ReduceMax(m, nil); got != -1 {
		t.Fatalf("empty: got %d, want -1", got)
	}
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 7, 100, 1000} {
		list := make([]uint32, n)
		for i := range list {
			list[i] = uint32(rng.Intn(n + 1))
		}
		if got, want := ReduceMax(m, list), Sequential(list); got != want {
			t.Fatalf("n=%d: got %d, want %d", n, got, want)
		}
	}
	// All-zero input: the identity-element corner of PriorityMaxCell.
	if got := ReduceMax(m, []uint32{0, 0, 0}); got != 2 {
		t.Fatalf("all-zero: got %d, want 2", got)
	}
}

func TestDoublyLogMax(t *testing.T) {
	m := testMachine(t, 4)
	if got := DoublyLogMax(m, nil); got != -1 {
		t.Fatalf("empty: got %d, want -1", got)
	}
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 8, 9, 64, 100, 500} {
		list := make([]uint32, n)
		for i := range list {
			list[i] = uint32(rng.Intn(n + 1))
		}
		if got, want := DoublyLogMax(m, list), Sequential(list); got != want {
			t.Fatalf("n=%d: got %d (value %d), want %d (value %d)", n, got, list[got], want, list[want])
		}
	}
}

// Property: every method agrees with Sequential on random inputs.
func TestQuickAllMethodsAgree(t *testing.T) {
	m := testMachine(t, 4)
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 300 {
			return true
		}
		list := make([]uint32, len(raw))
		for i, r := range raw {
			list[i] = uint32(r % 64) // force ties
		}
		want := Sequential(list)
		k := NewKernel(m, len(list))
		for _, method := range selectionMethods {
			k.Prepare(list)
			if k.Run(method) != want {
				return false
			}
		}
		return TournamentMax(m, list) == want &&
			ReduceMax(m, list) == want &&
			DoublyLogMax(m, list) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
