package maxfind

import (
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/sched"
)

// This file implements the comparison algorithms the paper's conclusion
// motivates: EREW/CREW-style maximum algorithms with better work bounds
// than the W(N²) constant-time kernel, for studying the work/depth vs.
// concurrency trade-off on real machines.

// TournamentMax returns the index of the maximum via a balanced binary
// tournament: D(log N) rounds of pairwise comparisons, W(N) total work, no
// concurrent writes at all (each round's writes target distinct cells —
// EREW). Tie-breaking matches Sequential/Kernel: on equal values the larger
// index survives.
//
// Returns -1 for an empty list.
func TournamentMax(m *machine.Machine, list []uint32) int {
	n := len(list)
	if n == 0 {
		return -1
	}
	// cur[i] is the surviving index of subtree i at the current level; each
	// round writes the next level into a separate buffer so reads and
	// writes of one round never overlap (EREW discipline).
	cur := make([]uint32, n)
	next := make([]uint32, (n+1)/2)
	m.ParallelFor(n, func(i int) { cur[i] = uint32(i) })
	for width := n; width > 1; {
		half := (width + 1) / 2
		m.ParallelFor(half, func(i int) {
			if 2*i+1 >= width {
				next[i] = cur[2*i] // odd element gets a bye
				return
			}
			a, b := cur[2*i], cur[2*i+1]
			// The larger value — or on ties the larger index — survives.
			if list[b] > list[a] || (list[b] == list[a] && b > a) {
				next[i] = b
			} else {
				next[i] = a
			}
		})
		cur, next = next, cur
		width = half
	}
	return int(cur[0])
}

// ReduceMax returns the index of the maximum via per-worker sequential
// scans combined through a priority concurrent write (PriorityMaxCell) —
// the W(N), D(N/P + 1) "practical" reduction, using the CRCW extension
// cells. Tie-breaking matches Sequential.
//
// Returns -1 for an empty list.
func ReduceMax(m *machine.Machine, list []uint32) int {
	n := len(list)
	if n == 0 {
		return -1
	}
	var best cw.PriorityMaxCell
	m.ParallelRange(n, func(lo, hi, _ int) {
		localIdx := lo
		for i := lo + 1; i < hi; i++ {
			if list[i] >= list[localIdx] {
				localIdx = i
			}
		}
		best.Offer(list[localIdx], uint32(localIdx))
	})
	return int(best.ID())
}

// DoublyLogMax returns the index of the maximum using the classic
// O(log log N)-depth CRCW strategy: recursively split the list into √N
// groups, find each group's maximum recursively, then combine the group
// winners with the constant-time all-pairs kernel. Work is O(N log log N).
// It requires common concurrent writes (the all-pairs combine step), which
// it performs with CAS-LT.
//
// This implementation parallelizes within each step (the all-pairs
// combines and leaf scans run on the machine) but orchestrates sibling
// groups sequentially, so its wall-clock depth on P workers is not the
// theoretical O(log log N); it is here to exercise the CW primitives in a
// second classic CRCW algorithm shape and as a correctness oracle.
//
// Returns -1 for an empty list.
func DoublyLogMax(m *machine.Machine, list []uint32) int {
	n := len(list)
	if n == 0 {
		return -1
	}
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(i)
	}
	return int(doublyLog(m, list, idx))
}

// doublyLog returns the original-list index of the maximum among the
// candidate indices idx.
func doublyLog(m *machine.Machine, list []uint32, idx []uint32) uint32 {
	n := len(idx)
	if n == 1 {
		return idx[0]
	}
	if n <= 8 {
		best := idx[0]
		for _, c := range idx[1:] {
			if list[c] > list[best] || (list[c] == list[best] && c > best) {
				best = c
			}
		}
		return best
	}
	groups := isqrt(n)
	winners := make([]uint32, 0, groups)
	for g := 0; g < groups; g++ {
		lo, hi := sched.BlockRange(n, groups, g)
		if lo < hi {
			winners = append(winners, doublyLog(m, list, idx[lo:hi]))
		}
	}
	return allPairsMax(m, list, winners)
}

// allPairsMax is the constant-time combine: the loser of every pair has its
// candidate flag cleared by a CAS-LT-guarded common write.
func allPairsMax(m *machine.Machine, list []uint32, cand []uint32) uint32 {
	k := len(cand)
	if k == 1 {
		return cand[0]
	}
	alive := make([]uint32, k)
	for i := range alive {
		alive[i] = 1
	}
	cells := cw.NewArray(k, cw.Packed)
	m.ParallelRange(k*k, func(lo, hi, _ int) {
		for p := lo; p < hi; p++ {
			i, j := p/k, p%k
			if i == j {
				continue
			}
			a, b := cand[i], cand[j]
			loser := i
			if list[a] > list[b] || (list[a] == list[b] && a > b) {
				loser = j
			}
			if cells.TryClaim(loser, 1) {
				alive[loser] = 0
			}
		}
	})
	for i := 0; i < k; i++ {
		if alive[i] == 1 {
			return cand[i]
		}
	}
	// Unreachable: exactly one candidate survives.
	panic("maxfind: all-pairs combine eliminated every candidate")
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
