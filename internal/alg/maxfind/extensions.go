package maxfind

import (
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/sched"
)

// This file implements the comparison algorithms the paper's conclusion
// motivates: EREW/CREW-style maximum algorithms with better work bounds
// than the W(N²) constant-time kernel, for studying the work/depth vs.
// concurrency trade-off on real machines. All three run over exec.Ctx, so
// they execute under the pool, team, and trace backends like the main
// kernel.

// TournamentMax returns the index of the maximum via a balanced binary
// tournament under the machine's default execution backend: D(log N)
// rounds of pairwise comparisons, W(N) total work, no concurrent writes at
// all (each round's writes target distinct cells — EREW). Tie-breaking
// matches Sequential/Kernel: on equal values the larger index survives.
//
// Returns -1 for an empty list.
func TournamentMax(m *machine.Machine, list []uint32) int {
	return TournamentMaxExec(m, m.Exec(), list)
}

// TournamentMaxExec is TournamentMax under an explicit execution backend.
func TournamentMaxExec(m *machine.Machine, e machine.Exec, list []uint32) int {
	n := len(list)
	if n == 0 {
		return -1
	}
	// The two level buffers are shared, allocated driver-side; the swap
	// between rounds happens on worker-local slice headers inside the body,
	// which every SPMD copy performs identically.
	bufA := make([]uint32, n)
	bufB := make([]uint32, (n+1)/2)
	res := -1
	exec.Run(m, e, func(ctx exec.Ctx) {
		// cur[i] is the surviving index of subtree i at the current level;
		// each round writes the next level into the other buffer so reads
		// and writes of one round never overlap (EREW discipline).
		cur, next := bufA, bufB
		ctx.For(n, func(i int) { cur[i] = uint32(i) })
		for width := n; width > 1; {
			half := (width + 1) / 2
			src, dst := cur, next
			ctx.For(half, func(i int) {
				if 2*i+1 >= width {
					dst[i] = src[2*i] // odd element gets a bye
					return
				}
				a, b := src[2*i], src[2*i+1]
				// The larger value — or on ties the larger index — survives.
				if list[b] > list[a] || (list[b] == list[a] && b > a) {
					dst[i] = b
				} else {
					dst[i] = a
				}
			})
			cur, next = next, cur
			width = half
		}
		if ctx.Worker() == 0 {
			res = int(cur[0])
		}
	})
	return res
}

// ReduceMax returns the index of the maximum via per-worker sequential
// scans combined through a priority concurrent write (PriorityMaxCell) —
// the W(N), D(N/P + 1) "practical" reduction, using the CRCW extension
// cells, under the machine's default execution backend. Tie-breaking
// matches Sequential.
//
// Returns -1 for an empty list.
func ReduceMax(m *machine.Machine, list []uint32) int {
	return ReduceMaxExec(m, m.Exec(), list)
}

// ReduceMaxExec is ReduceMax under an explicit execution backend.
func ReduceMaxExec(m *machine.Machine, e machine.Exec, list []uint32) int {
	n := len(list)
	if n == 0 {
		return -1
	}
	var best cw.PriorityMaxCell
	exec.Run(m, e, func(ctx exec.Ctx) {
		ctx.Range(n, func(lo, hi, _ int) {
			localIdx := lo
			for i := lo + 1; i < hi; i++ {
				if list[i] >= list[localIdx] {
					localIdx = i
				}
			}
			best.Offer(list[localIdx], uint32(localIdx))
		})
	})
	return int(best.ID())
}

// DoublyLogMax returns the index of the maximum using the classic
// O(log log N)-depth CRCW strategy under the machine's default execution
// backend: recursively split the list into √N groups, find each group's
// maximum recursively, then combine the group winners with the
// constant-time all-pairs kernel. Work is O(N log log N). It requires
// common concurrent writes (the all-pairs combine step), which it performs
// with CAS-LT.
//
// This implementation parallelizes within each step (the all-pairs
// combines and leaf scans run on the machine) but orchestrates sibling
// groups sequentially, so its wall-clock depth on P workers is not the
// theoretical O(log log N); it is here to exercise the CW primitives in a
// second classic CRCW algorithm shape and as a correctness oracle.
//
// Returns -1 for an empty list.
func DoublyLogMax(m *machine.Machine, list []uint32) int {
	return DoublyLogMaxExec(m, m.Exec(), list)
}

// DoublyLogMaxExec is DoublyLogMax under an explicit execution backend.
// The recursion is a pure function of the input, so under the team backend
// every worker walks the same recursion tree; per-combine shared scratch
// is published through a Single.
func DoublyLogMaxExec(m *machine.Machine, e machine.Exec, list []uint32) int {
	n := len(list)
	if n == 0 {
		return -1
	}
	idx := make([]uint32, n)
	s := new(dlScratch)
	res := -1
	exec.Run(m, e, func(ctx exec.Ctx) {
		ctx.For(n, func(i int) { idx[i] = uint32(i) })
		win := doublyLog(ctx, s, list, idx)
		if ctx.Worker() == 0 {
			res = int(win)
		}
	})
	return res
}

// dlScratch is the shared combine scratch of one DoublyLogMax execution,
// declared driver-side (one value for all SPMD copies) and refilled inside
// a Single per combine.
type dlScratch struct {
	alive []uint32
	cells *cw.Array
}

// doublyLog returns the original-list index of the maximum among the
// candidate indices idx. Every SPMD copy computes the same return value:
// the sequential cases read only immutable input, and the combine's
// survivor scan runs after the round's closing barrier.
func doublyLog(ctx exec.Ctx, s *dlScratch, list []uint32, idx []uint32) uint32 {
	n := len(idx)
	if n == 1 {
		return idx[0]
	}
	if n <= 8 {
		best := idx[0]
		for _, c := range idx[1:] {
			if list[c] > list[best] || (list[c] == list[best] && c > best) {
				best = c
			}
		}
		return best
	}
	groups := isqrt(n)
	winners := make([]uint32, 0, groups)
	for g := 0; g < groups; g++ {
		lo, hi := sched.BlockRange(n, groups, g)
		if lo < hi {
			winners = append(winners, doublyLog(ctx, s, list, idx[lo:hi]))
		}
	}
	return allPairsMax(ctx, s, list, winners)
}

// allPairsMax is the constant-time combine: the loser of every pair has its
// candidate flag cleared by a CAS-LT-guarded common write.
func allPairsMax(ctx exec.Ctx, s *dlScratch, list []uint32, cand []uint32) uint32 {
	k := len(cand)
	if k == 1 {
		return cand[0]
	}
	// One worker refills the shared scratch; the Single's closing barrier
	// publishes it to the team before anyone claims.
	ctx.Single(func() {
		if cap(s.alive) < k {
			s.alive = make([]uint32, k)
		}
		s.alive = s.alive[:k]
		for i := range s.alive {
			s.alive[i] = 1
		}
		s.cells = cw.NewArray(k, cw.Packed)
	})
	alive, cells := s.alive, s.cells
	rec := ctx.Metrics()
	ctx.Range(k*k, func(lo, hi, w int) {
		sh := rec.Shard(w)
		for p := lo; p < hi; p++ {
			i, j := p/k, p%k
			if i == j {
				continue
			}
			a, b := cand[i], cand[j]
			loser := i
			if list[a] > list[b] || (list[a] == list[b] && a > b) {
				loser = j
			}
			if sh.Claim(loser, 1, cells.TryClaimOutcome(loser, 1)) {
				alive[loser] = 0
			}
		}
	})
	// Every worker scans for the survivor identically: the scan is
	// read-only and runs after the combine round's barrier.
	for i := 0; i < k; i++ {
		if alive[i] == 1 {
			return cand[i]
		}
	}
	// Unreachable: exactly one candidate survives.
	panic("maxfind: all-pairs combine eliminated every candidate")
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
