package maxfind

import (
	"fmt"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/kernel"
)

// instance adapts Kernel to the registry's Instance contract. The winner
// index is compared against the sequential scan computed once up front.
type instance struct {
	k    *Kernel
	list []uint32
	want int
	last int
	out  [1]uint32
}

func (in *instance) Prepare(kernel.Settings) { in.k.Prepare(in.list) }

func (in *instance) Run(s kernel.Settings) kernel.Outcome {
	in.last = in.k.RunExec(s.Exec, s.Method)
	in.out[0] = uint32(in.last)
	return kernel.Outcome{Vector: in.out[:]}
}

func (in *instance) Validate() error {
	if in.last != in.want {
		return fmt.Errorf("maxfind: winner %d, want %d", in.last, in.want)
	}
	return nil
}

func (in *instance) Trace() *exec.TraceStats { return in.k.Trace() }

func init() {
	kernel.Register(kernel.Descriptor{
		Name:       "maxfind",
		Pkg:        "maxfind",
		Summary:    "constant-round CRCW maximum finding (the paper's Section 3 kernel)",
		Methods:    cw.Methods,
		Input:      kernel.InputList,
		Contention: kernel.ContentionGuarded,
		New: func(m *machine.Machine, w kernel.Workload) kernel.Instance {
			return &instance{
				k:    NewKernel(m, len(w.List)),
				list: w.List,
				want: Sequential(w.List),
			}
		},
	})
}
