package maxfind

import (
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
)

// This file ports the maximum kernel to the machine's team execution mode.
// The algorithm is a single pair-comparison round plus a serial scan, so
// team mode turns the caller-side scan into a tc.Single and pays one region
// entry instead of a pool round plus caller work — small per run, but it is
// the per-Run fixed cost the opcount benchmarks repeat thousands of times.

// RunTeam executes the maximum algorithm with the given method inside one
// team region and returns the index of the maximum element. Prepare must
// have been called for the current input.
func (k *Kernel) RunTeam(method cw.Method) int {
	var write func(loser int)
	switch method {
	case cw.CASLT:
		round := k.nextRound()
		write = func(loser int) {
			if k.cells.TryClaim(loser, round) {
				k.isMax[loser] = 0
			}
		}
	case cw.Gatekeeper:
		write = func(loser int) {
			if k.gates.TryEnter(loser) {
				k.isMax[loser] = 0
			}
		}
	case cw.GatekeeperChecked:
		write = func(loser int) {
			if k.gates.TryEnterChecked(loser) {
				k.isMax[loser] = 0
			}
		}
	case cw.Naive:
		write = func(loser int) { k.isMax[loser] = 0 }
	case cw.Mutex:
		write = func(loser int) {
			k.mtx.Lock(loser)
			k.isMax[loser] = 0
			k.mtx.Unlock(loser)
		}
	default:
		panic("maxfind: unknown method " + method.String())
	}
	n := k.n
	max := -1
	k.m.Team(func(tc *machine.TeamCtx) {
		// The paper's collapse(2) pair loop as one team round: the loser of
		// each comparison takes a common concurrent write.
		tc.Range(n*n, func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				i, j := idx/n, idx%n
				if i == j {
					continue
				}
				write(k.loserOf(i, j))
			}
		})
		// The final scan moves in-region: one worker scans while the team
		// waits, replacing the pool variant's caller-side serial pass.
		tc.Single(func() { max = k.scan() })
	})
	return max
}
