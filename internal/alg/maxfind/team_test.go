package maxfind

import (
	"math/rand"
	"testing"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/race"
)

func TestTeamMatchesSequentialAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for _, n := range []int{1, 2, 3, 17, 100, 257} {
			k := NewKernel(m, n)
			list := make([]uint32, n)
			for i := range list {
				list[i] = uint32(rng.Intn(n + 1)) // small range forces ties
			}
			want := Sequential(list)
			for _, method := range selectionMethods {
				k.Prepare(list)
				if got := k.RunTeam(method); got != want {
					t.Fatalf("p=%d n=%d %v: got %d, want %d, list=%v", p, n, method, got, want, list)
				}
			}
		}
	}
}

func TestTeamNaive(t *testing.T) {
	if race.Enabled {
		t.Skip("naive variant races by design")
	}
	m := testMachine(t, 4)
	rng := rand.New(rand.NewSource(7))
	k := NewKernel(m, 120)
	for trial := 0; trial < 4; trial++ {
		list := make([]uint32, 120)
		for i := range list {
			list[i] = uint32(rng.Intn(60))
		}
		k.Prepare(list)
		if got, want := k.RunTeam(cw.Naive), Sequential(list); got != want {
			t.Fatalf("trial %d: got %d, want %d", trial, got, want)
		}
	}
}

func TestTeamInterleavedWithPool(t *testing.T) {
	// Team and pool CAS-LT runs share the cells and the round counter.
	m := testMachine(t, 4)
	k := NewKernel(m, 64)
	rng := rand.New(rand.NewSource(11))
	for rep := 0; rep < 8; rep++ {
		list := make([]uint32, 64)
		for i := range list {
			list[i] = uint32(rng.Intn(32))
		}
		want := Sequential(list)
		k.Prepare(list)
		var got int
		if rep%2 == 0 {
			got = k.RunTeam(cw.CASLT)
		} else {
			got = k.RunCASLT()
		}
		if got != want {
			t.Fatalf("rep %d: got %d, want %d", rep, got, want)
		}
	}
}
