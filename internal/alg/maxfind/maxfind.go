// Package maxfind implements the paper's first benchmark: the classic
// constant-time CRCW PRAM maximum algorithm (Figure 4).
//
// The algorithm compares all N² ordered pairs of the input list; the loser
// of each comparison has its isMax flag cleared by a *common* concurrent
// write (every writer stores the same value, "not maximum"). After one
// lock-step round exactly one flag survives — the maximum — found by a
// final scan. Work is W(N²), depth is D(1): an extreme stress test in which
// the whole algorithm is concurrent writes, which is why the paper uses it
// to expose the per-attempt cost of each CW method.
//
// Ties are broken exactly as in the paper's listing: for equal values the
// pair's smaller index is marked "not maximum", so the largest index among
// equal maxima wins.
//
// The Kernel type pre-allocates all auxiliary state so that Run measures
// only the algorithm, matching the paper's "measurement ... excludes all
// time spent in initialization code".
package maxfind

import (
	"fmt"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
)

// Kernel holds the shared arrays for repeated maximum runs over lists of a
// fixed size.
type Kernel struct {
	m    *machine.Machine
	n    int
	list []uint32

	isMax []uint32 // 1 = still a maximum candidate
	cells *cw.Array
	gates *cw.GateArray
	mtx   *cw.MutexArray

	round uint32 // CAS-LT round id, advanced once per Run

	trace *exec.TraceStats // structural record of the last trace-backend run
}

// NewKernel returns a kernel for lists of n elements executed on m.
// The machine is borrowed, not owned: Close it yourself.
func NewKernel(m *machine.Machine, n int) *Kernel {
	return &Kernel{
		m:     m,
		n:     n,
		isMax: make([]uint32, n),
		cells: cw.NewArray(n, cw.Packed),
		gates: cw.NewGateArray(n, cw.Packed),
		mtx:   cw.NewMutexArray(n),
	}
}

// N returns the kernel's list size.
func (k *Kernel) N() int { return k.n }

// Prepare installs the input list and re-initializes the candidate flags
// and (for the gatekeeper methods) the gatekeeper array. Prepare is the
// untimed initialization phase; note that the CAS-LT cells need *no*
// preparation between runs — the kernel just advances its round id.
func (k *Kernel) Prepare(list []uint32) {
	if len(list) != k.n {
		panic(fmt.Sprintf("maxfind: list length %d != kernel size %d", len(list), k.n))
	}
	k.list = list
	k.m.ParallelRange(k.n, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			k.isMax[i] = 1
		}
		k.gates.ResetRange(lo, hi)
	})
}

// Run executes the maximum algorithm with the given concurrent-write
// method under the machine's default execution backend and returns the
// index of the maximum element. Prepare must have been called for the
// current input.
func (k *Kernel) Run(method cw.Method) int {
	return k.RunExec(k.m.Exec(), method)
}

// RunExec is Run under an explicit execution backend.
func (k *Kernel) RunExec(e machine.Exec, method cw.Method) int {
	// The write closure and (for CAS-LT) the round id are chosen
	// driver-side: nextRound mutates kernel state, which SPMD bodies must
	// not do. Each write threads the caller's metrics shard through
	// Shard.Claim, which reduces to the won bool when metrics are off.
	var write func(sh *metrics.Shard, loser int)
	switch method {
	case cw.CASLT:
		round := k.nextRound()
		write = func(sh *metrics.Shard, loser int) {
			if sh.Claim(loser, round, k.cells.TryClaimOutcome(loser, round)) {
				k.isMax[loser] = 0
			}
		}
	case cw.Gatekeeper:
		write = func(sh *metrics.Shard, loser int) {
			if sh.Claim(loser, 1, k.gates.TryEnterOutcome(loser)) {
				k.isMax[loser] = 0
			}
		}
	case cw.GatekeeperChecked:
		write = func(sh *metrics.Shard, loser int) {
			if sh.Claim(loser, 1, k.gates.TryEnterCheckedOutcome(loser)) {
				k.isMax[loser] = 0
			}
		}
	case cw.Naive:
		// Naive has no winner selection: every write is issued, so every
		// attempt records as an executed win.
		write = func(sh *metrics.Shard, loser int) {
			sh.Claim(loser, 1, cw.OutcomeWin)
			k.isMax[loser] = 0
		}
	case cw.Mutex:
		write = func(sh *metrics.Shard, loser int) {
			k.mtx.Lock(loser)
			k.isMax[loser] = 0
			k.mtx.Unlock(loser)
			sh.Claim(loser, 1, cw.OutcomeWin)
		}
	default:
		panic("maxfind: unknown method " + method.String())
	}
	n := k.n
	max := -1
	k.trace = exec.Run(k.m, e, func(ctx exec.Ctx) {
		rec := ctx.Metrics()
		if ctx.Worker() == 0 {
			rec.AddRounds(1) // constant-round kernel: one CW round per run
		}
		// The paper's collapse(2) pair loop as one round: the loser of each
		// comparison takes a common concurrent write.
		ctx.Range(n*n, func(lo, hi, w int) {
			sh := rec.Shard(w)
			for idx := lo; idx < hi; idx++ {
				i, j := idx/n, idx%n
				if i == j {
					continue
				}
				write(sh, k.loserOf(i, j))
			}
		})
		// The final scan of Figure 4: one worker scans while the rest wait.
		ctx.Single(func() { max = k.scan() })
	})
	return max
}

// Trace returns the structural record of the kernel's last run under the
// trace backend, or nil if the last run used a timed backend.
func (k *Kernel) Trace() *exec.TraceStats { return k.trace }

// loserOf returns the index whose flag the pair (i, j) clears, following
// the paper's comparison: the smaller value loses; on ties the smaller
// index loses.
func (k *Kernel) loserOf(i, j int) int {
	li, lj := k.list[i], k.list[j]
	if li < lj || (li == lj && i < j) {
		return i
	}
	return j
}

// scan is the final pass of Figure 4: the last surviving candidate is the
// maximum.
func (k *Kernel) scan() int {
	max := -1
	for j := 0; j < k.n; j++ {
		if k.isMax[j] == 1 {
			max = j
		}
	}
	return max
}

// RunNaive is the paper's 'naive' version: every loser write is issued and
// the memory system serializes them. Safe here because the write is a
// common CW of a single word (all writers store 0), but every one of the
// ~N² writes goes to memory.
func (k *Kernel) RunNaive() int { return k.Run(cw.Naive) }

// RunGatekeeper is the atomic prefix-sum version (Figure 2): every loser
// write attempt performs a fetch-and-add on the loser's gatekeeper; only
// the first writer stores. The atomic executes on every attempt, long
// after a winner exists — the serialization the paper blames for this
// method losing to naive on this kernel.
func (k *Kernel) RunGatekeeper() int { return k.Run(cw.Gatekeeper) }

// RunGateChecked is RunGatekeeper with the load pre-check mitigation.
func (k *Kernel) RunGateChecked() int { return k.Run(cw.GatekeeperChecked) }

// RunCASLT is the paper's method: the first attempt on each loser cell
// wins a CAS-LT claim; every later attempt fails the load pre-check and
// skips both the atomic and the store.
func (k *Kernel) RunCASLT() int { return k.Run(cw.CASLT) }

// RunMutex is the critical-section baseline: every loser write acquires the
// loser's lock.
func (k *Kernel) RunMutex() int { return k.Run(cw.Mutex) }

// nextRound advances the CAS-LT round, resetting the cells on the rare
// uint32 wrap so stale claims can never alias.
func (k *Kernel) nextRound() uint32 {
	k.round++
	if k.round == 0 {
		k.m.ParallelRange(k.n, func(lo, hi, _ int) { k.cells.ResetRange(lo, hi) })
		k.round = 1
	}
	return k.round
}

// Sequential returns the index of the maximum by a left-to-right scan with
// the same tie-breaking as the parallel kernel (largest index among equal
// maxima), as the validation baseline. Returns -1 for an empty list.
func Sequential(list []uint32) int {
	max := -1
	for i, v := range list {
		if max == -1 || v >= list[max] {
			max = i
		}
	}
	return max
}
