package cc

import (
	"testing"
	"testing/quick"

	"crcwpram/internal/graph"
)

func TestRandMateMatchesUnionFind(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			k.Prepare()
			r := k.RunRandMate(12345)
			if err := Validate(g, r); err != nil {
				t.Fatalf("p=%d %s: %v", p, name, err)
			}
		}
	}
}

func TestRandMateManySeeds(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(200, 700, 3)
	k := NewKernel(m, g)
	for seed := uint64(0); seed < 25; seed++ {
		k.Prepare()
		r := k.RunRandMate(seed)
		if err := Validate(g, r); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandMateDeterministicPerSeed(t *testing.T) {
	// Coin flips are seed-deterministic, so iteration counts must match
	// across single-worker runs (full execution is deterministic at p=1).
	m := testMachine(t, 1)
	g := graph.ConnectedRandom(150, 400, 9)
	k := NewKernel(m, g)
	k.Prepare()
	r1 := k.RunRandMate(7)
	labels1 := append([]uint32(nil), r1.Labels...)
	k.Prepare()
	r2 := k.RunRandMate(7)
	if r1.Iterations != r2.Iterations {
		t.Fatalf("iterations differ across identical runs: %d vs %d", r1.Iterations, r2.Iterations)
	}
	for i := range labels1 {
		if labels1[i] != r2.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

func TestRandMateRepeatedRunsNoCellReset(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.Disjoint(graph.ConnectedRandom(40, 100, 5), 3)
	k := NewKernel(m, g)
	for rep := 0; rep < 10; rep++ {
		k.Prepare()
		r := k.RunRandMate(uint64(rep))
		if err := Validate(g, r); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}

func TestRandMateSingletons(t *testing.T) {
	m := testMachine(t, 2)
	g := graph.MustFromEdges(5, nil, true)
	k := NewKernel(m, g)
	k.Prepare()
	r := k.RunRandMate(1)
	for v := 0; v < 5; v++ {
		if r.Labels[v] != uint32(v) || r.HookEdge[v] != NoHook {
			t.Fatalf("singleton %d: label %d hook %d", v, r.Labels[v], r.HookEdge[v])
		}
	}
}

func TestCoinDeterministicAndBalanced(t *testing.T) {
	heads := 0
	const n = 10000
	for v := uint32(0); v < n; v++ {
		if coin(1, 0, v) != coin(1, 0, v) {
			t.Fatal("coin not deterministic")
		}
		if coin(1, 0, v) {
			heads++
		}
	}
	if heads < n/2-n/10 || heads > n/2+n/10 {
		t.Fatalf("coin badly unbalanced: %d/%d heads", heads, n)
	}
	// Different iterations and seeds decorrelate.
	same := 0
	for v := uint32(0); v < n; v++ {
		if coin(1, 0, v) == coin(1, 1, v) {
			same++
		}
	}
	if same < n/2-n/10 || same > n/2+n/10 {
		t.Fatalf("iterations correlated: %d/%d agree", same, n)
	}
}

// Property: random mate agrees with Awerbuch-Shiloach (CAS-LT) and the
// union-find baseline on random multigraphs.
func TestQuickRandMateCorrect(t *testing.T) {
	m := testMachine(t, 4)
	f := func(nRaw uint8, mRaw uint16, seed int64, coinSeed uint64) bool {
		n := int(nRaw)%120 + 2
		edges := int(mRaw) % 400
		g := graph.RandomUndirected(n, edges, seed)
		k := NewKernel(m, g)
		k.Prepare()
		return Validate(g, k.RunRandMate(coinSeed)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
