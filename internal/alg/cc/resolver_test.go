package cc

import (
	"testing"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/graph"
)

func TestRunResolverAllMethods(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.RandomUndirected(200, 600, 53)
	k := NewKernel(m, g)
	for _, method := range []cw.Method{cw.CASLT, cw.Gatekeeper, cw.GatekeeperChecked, cw.Mutex} {
		r := cw.NewResolver(method, g.NumVertices(), cw.Packed)
		k.Prepare()
		res := k.RunResolver(r)
		if err := Validate(g, res); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
	}
}

func TestRunResolverCounting(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(150, 500, 59)
	k := NewKernel(m, g)

	var ops cw.OpCounts
	r := cw.NewCountingResolver(cw.Gatekeeper, g.NumVertices(), &ops)
	k.Prepare()
	res := k.RunResolver(r)
	if err := Validate(g, res); err != nil {
		t.Fatal(err)
	}
	_, rmws, wins := ops.Snapshot()
	// Connected graph: exactly n-1 hooks win across the whole run. The
	// resolver reports a "win" whenever the gate admits a claimant, which
	// can exceed committed hooks only via the root re-verification; hook
	// records are the ground truth.
	hooks := 0
	for _, e := range res.HookEdge {
		if e != NoHook {
			hooks++
		}
	}
	if hooks != g.NumVertices()-1 {
		t.Fatalf("hooks = %d, want %d", hooks, g.NumVertices()-1)
	}
	if wins < uint64(hooks) {
		t.Fatalf("resolver wins %d < committed hooks %d", wins, hooks)
	}
	if rmws < wins {
		t.Fatalf("RMWs %d < wins %d", rmws, wins)
	}
}

func TestRunResolverRejectsSmallResolver(t *testing.T) {
	m := testMachine(t, 1)
	g := graph.Cycle(10)
	k := NewKernel(m, g)
	k.Prepare()
	defer func() {
		if recover() == nil {
			t.Fatal("undersized resolver accepted")
		}
	}()
	k.RunResolver(cw.NewResolver(cw.CASLT, 3, cw.Packed))
}
