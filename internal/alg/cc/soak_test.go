package cc

import (
	"testing"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// TestSoakRandomizedGraphs hammers the hooking logic — the subtlest
// concurrency in the repository — across many random graphs, shapes, seeds
// and worker counts. The directional-hooking cycle bug this package fixes
// reproduced roughly once per few hundred runs at p=4, so the soak's value
// is its volume; skip it in -short mode.
func TestSoakRandomizedGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, p := range []int{2, 4, 8} {
		m := machine.New(p)
		for trial := 0; trial < 120; trial++ {
			seed := int64(p*1000 + trial)
			n := 30 + trial%170
			edges := (trial % 7) * n
			var g *graph.Graph
			switch trial % 4 {
			case 0:
				g = graph.RandomUndirected(n, edges, seed)
			case 1:
				g = graph.ConnectedRandom(n, edges+n, seed)
			case 2:
				g = graph.Disjoint(graph.Star(n/4+2), 4)
			default:
				g = graph.RMAT(7, edges+16, 0.57, 0.19, 0.19, seed)
			}
			k := NewKernel(m, g)

			k.Prepare()
			if err := Validate(g, k.RunCASLT()); err != nil {
				t.Fatalf("p=%d trial %d caslt: %v", p, trial, err)
			}
			k.Prepare()
			if err := Validate(g, k.RunGatekeeper()); err != nil {
				t.Fatalf("p=%d trial %d gatekeeper: %v", p, trial, err)
			}
			k.Prepare()
			if err := Validate(g, k.RunRandMate(uint64(seed))); err != nil {
				t.Fatalf("p=%d trial %d randmate: %v", p, trial, err)
			}
		}
		m.Close()
	}
}
