package cc

import (
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
)

// RunResolver executes Awerbuch–Shiloach with the hooking write handled by
// an arbitrary cw.Resolver — the generic entry point used by the harness
// to count the atomic traffic of full CC runs (cw.NewCountingResolver) —
// under the machine's default execution backend. Prepare must have been
// called first; the resolver must be fresh and span the vertex set.
//
// Round ids passed to the resolver restart at 1 for every RunResolver
// call, so a CAS-LT-backed resolver must not be reused across calls
// (counting resolvers are per-experiment anyway).
func (k *Kernel) RunResolver(r cw.Resolver) Result {
	return k.RunResolverExec(k.m.Exec(), r)
}

// RunResolverExec is RunResolver under an explicit execution backend.
// Combined with ExecTrace it yields both the resolver's operation counts
// and the kernel's structural trace in one deterministic replay.
func (k *Kernel) RunResolverExec(e machine.Exec, r cw.Resolver) Result {
	if r.Len() < k.n {
		panic("cc: resolver smaller than the vertex set")
	}
	needsReset := r.Method().NeedsReset()
	return k.runExec(e,
		func(round uint32) hookFunc {
			return func(sh *metrics.Shard, root int, j, target uint32) bool {
				won := false
				o := r.DoOutcome(root, round, func() { won = k.commit(root, j, target) })
				sh.Claim(root, round, o)
				return won
			}
		},
		false,
		func(ctx exec.Ctx) {
			if needsReset {
				ctx.Range(k.n, func(lo, hi, _ int) { r.ResetRange(lo, hi) })
			}
		},
	)
}
