package cc

import (
	"testing"
	"testing/quick"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

var methods = []cw.Method{cw.CASLT, cw.Gatekeeper, cw.GatekeeperChecked, cw.Mutex}

func testMachine(t *testing.T, p int) *machine.Machine {
	t.Helper()
	m := machine.New(p)
	t.Cleanup(m.Close)
	return m
}

func TestSequentialLabels(t *testing.T) {
	g := graph.Disjoint(graph.Path(3), 2) // {0,1,2} {3,4,5}
	labels := SequentialLabels(g)
	want := []uint32{0, 0, 0, 3, 3, 3}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"singletons":   graph.MustFromEdges(8, nil, true),
		"one-edge":     graph.MustFromEdges(4, []graph.Edge{{U: 1, V: 2}}, true),
		"path":         graph.Path(60),
		"cycle":        graph.Cycle(45),
		"star":         graph.Star(80),
		"complete":     graph.Complete(24),
		"grid":         graph.Grid2D(9, 11),
		"random":       graph.ConnectedRandom(250, 900, 19),
		"random-multi": graph.RandomUndirected(200, 500, 29),
		"disconnected": graph.Disjoint(graph.ConnectedRandom(60, 150, 7), 4),
		"two-stars":    graph.Disjoint(graph.Star(30), 2),
		"rmat":         graph.RMAT(7, 600, 0.57, 0.19, 0.19, 13),
	}
}

func TestAllMethodsMatchUnionFind(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			for _, method := range methods {
				k.Prepare()
				r := k.Run(method)
				if err := Validate(g, r); err != nil {
					t.Fatalf("p=%d %s %v: %v", p, name, method, err)
				}
				if r.Iterations < 1 {
					t.Fatalf("p=%d %s %v: %d iterations", p, name, method, r.Iterations)
				}
			}
		}
	}
}

func TestCASLTRepeatedRunsNoCellReset(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(150, 600, 43)
	k := NewKernel(m, g)
	for rep := 0; rep < 10; rep++ {
		k.Prepare()
		r := k.RunCASLT()
		if err := Validate(g, r); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}

func TestGatekeeperRepeatedRuns(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(150, 600, 47)
	k := NewKernel(m, g)
	for rep := 0; rep < 5; rep++ {
		k.Prepare()
		if err := Validate(g, k.RunGatekeeper()); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}

func TestNaivePanics(t *testing.T) {
	m := testMachine(t, 1)
	k := NewKernel(m, graph.Path(4))
	k.Prepare()
	defer func() {
		if recover() == nil {
			t.Fatal("Run(Naive) did not panic; naive arbitrary CW must be rejected")
		}
	}()
	k.Run(cw.Naive)
}

func TestDirectedGraphRejected(t *testing.T) {
	m := testMachine(t, 1)
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("directed graph accepted")
		}
	}()
	NewKernel(m, g)
}

func TestHookForestSizes(t *testing.T) {
	m := testMachine(t, 4)
	// 4 components of 25 vertices each: expect exactly 4*24 hooks.
	g := graph.Disjoint(graph.ConnectedRandom(25, 60, 3), 4)
	k := NewKernel(m, g)
	k.Prepare()
	r := k.RunCASLT()
	hooks := 0
	for _, e := range r.HookEdge {
		if e != NoHook {
			hooks++
		}
	}
	if hooks != 96 {
		t.Fatalf("hooks = %d, want 96", hooks)
	}
	if err := Validate(g, r); err != nil {
		t.Fatal(err)
	}
}

func TestSingletonGraph(t *testing.T) {
	m := testMachine(t, 2)
	g := graph.MustFromEdges(1, nil, true)
	k := NewKernel(m, g)
	for _, method := range methods {
		k.Prepare()
		r := k.Run(method)
		if r.Labels[0] != 0 {
			t.Fatalf("%v: label = %d, want 0", method, r.Labels[0])
		}
		if r.HookEdge[0] != NoHook {
			t.Fatalf("%v: singleton recorded a hook", method)
		}
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	m := testMachine(t, 2)
	g := graph.Disjoint(graph.Cycle(10), 2)
	k := NewKernel(m, g)

	fresh := func() Result {
		k.Prepare()
		return k.RunCASLT()
	}

	r := fresh()
	if err := Validate(g, r); err != nil {
		t.Fatalf("clean result rejected: %v", err)
	}

	r = fresh()
	r.Labels[3] = r.Labels[15] // merge two true components
	if Validate(g, r) == nil {
		t.Fatal("cross-component label accepted")
	}

	r = fresh()
	// Split one component: relabel vertex 3 to itself (making a bogus root).
	if r.Labels[3] != 3 {
		r.Labels[3] = 3
		if Validate(g, r) == nil {
			t.Fatal("split component accepted")
		}
	}

	r = fresh()
	// Erase one hook record: forest no longer spans.
	for v, e := range r.HookEdge {
		if e != NoHook {
			r.HookEdge[v] = NoHook
			break
		}
	}
	if Validate(g, r) == nil {
		t.Fatal("missing hook record accepted")
	}
}

// Stress: many repetitions on a collision-heavy graph (star) where every
// hooking round contends on one root cell.
func TestStarStress(t *testing.T) {
	m := testMachine(t, 8)
	g := graph.Star(500)
	k := NewKernel(m, g)
	for rep := 0; rep < 10; rep++ {
		k.Prepare()
		for _, method := range methods {
			k.Prepare()
			if err := Validate(g, k.Run(method)); err != nil {
				t.Fatalf("rep %d %v: %v", rep, method, err)
			}
		}
	}
}

// Property: all methods produce the true partition on random multigraphs
// (connected or not).
func TestQuickAllMethodsCorrect(t *testing.T) {
	m := testMachine(t, 4)
	f := func(nRaw uint8, mRaw uint16, seed int64) bool {
		n := int(nRaw)%120 + 2
		edges := int(mRaw) % 500
		g := graph.RandomUndirected(n, edges, seed)
		k := NewKernel(m, g)
		for _, method := range methods {
			k.Prepare()
			if Validate(g, k.Run(method)) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
