package cc

import (
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
)

// instance adapts Kernel to the registry's Instance contract. randmate
// selects the random-mate formulation (seeded, CAS-LT claims, bitmap-able
// star membership) instead of the deterministic hook-and-shortcut one.
type instance struct {
	k        *Kernel
	g        *graph.Graph
	seed     uint64
	randmate bool
	stealDef bool
	last     Result
}

func newInstance(randmate bool) func(m *machine.Machine, w kernel.Workload) kernel.Instance {
	return func(m *machine.Machine, w kernel.Workload) kernel.Instance {
		k := NewKernel(m, w.Graph)
		in := &instance{k: k, g: w.Graph, seed: w.Seed, randmate: randmate, stealDef: k.Stealing()}
		if !randmate {
			return resolverInstance{in}
		}
		return in
	}
}

func (in *instance) Prepare(s kernel.Settings) {
	in.k.SetBitmap(s.Bitmap)
	switch s.Steal {
	case kernel.StealOn:
		in.k.SetStealing(true)
	case kernel.StealOff:
		in.k.SetStealing(false)
	default:
		in.k.SetStealing(in.stealDef)
	}
	in.k.Prepare()
}

func (in *instance) Run(s kernel.Settings) kernel.Outcome {
	if in.randmate {
		in.last = in.k.RunRandMateExec(s.Exec, in.seed)
	} else {
		in.last = in.k.RunExec(s.Exec, s.Method)
	}
	return kernel.Outcome{Vector: in.last.Labels}
}

func (in *instance) Validate() error { return Validate(in.g, in.last) }

func (in *instance) Trace() *exec.TraceStats { return in.k.Trace() }

type resolverInstance struct{ *instance }

func (in resolverInstance) RunResolver(e machine.Exec, r cw.Resolver) kernel.Outcome {
	in.last = in.k.RunResolverExec(e, r)
	return kernel.Outcome{Vector: in.last.Labels}
}

func init() {
	kernel.Register(kernel.Descriptor{
		Name:    "cc",
		Pkg:     "cc",
		Summary: "hook-and-shortcut connected components (Shiloach-Vishkin style)",
		// Naive is excluded: unguarded hooking can tear the parent forest.
		Methods:     []cw.Method{cw.CASLT, cw.Gatekeeper, cw.GatekeeperChecked, cw.Mutex},
		Stealable:   true,
		Relabelable: true,
		Input:       kernel.InputGraph,
		Symmetric:   true,
		Contention:  kernel.ContentionGuarded,
		Canon:       kernel.CanonicalPartition,
		New:         newInstance(false),
	})
	kernel.Register(kernel.Descriptor{
		Name:        "cc-randmate",
		Pkg:         "cc",
		Summary:     "random-mate connected components, seeded coin flips, CAS-LT hooks",
		Methods:     []cw.Method{cw.CASLT},
		Bitmap:      true,
		Stealable:   true,
		Relabelable: true,
		Input:       kernel.InputGraph,
		Symmetric:   true,
		Contention:  kernel.ContentionGuarded,
		Canon:       kernel.CanonicalPartition,
		New:         newInstance(true),
	})
}
