package cc

import (
	"fmt"

	"crcwpram/internal/graph"
)

// Validate checks a CC result against the graph:
//
//  1. the labelling is a fixed point (Labels[Labels[v]] == Labels[v]) with
//     roots labelled by themselves;
//  2. the partition induced by Labels equals the true connectivity
//     partition (via SequentialLabels);
//  3. the recorded hook arcs form a spanning forest: exactly
//     n - #components arcs, and union-find over just those arcs reproduces
//     the same partition. This is the end-to-end witness that every
//     committed (parent, edge) tuple was untorn — a torn tuple would record
//     an arc that does not justify its merge.
//
// Validate returns nil if the result is consistent.
func Validate(g *graph.Graph, r Result) error {
	n := g.NumVertices()
	if len(r.Labels) != n || len(r.HookEdge) != n {
		return fmt.Errorf("cc: result arrays sized %d/%d, want %d", len(r.Labels), len(r.HookEdge), n)
	}
	for v := 0; v < n; v++ {
		l := r.Labels[v]
		if int(l) >= n {
			return fmt.Errorf("cc: label[%d] = %d out of range", v, l)
		}
		if r.Labels[l] != l {
			return fmt.Errorf("cc: label[%d] = %d is not a root (label[%d] = %d)", v, l, l, r.Labels[l])
		}
	}

	want := SequentialLabels(g)
	// Two labellings induce the same partition iff the mapping between
	// them is a bijection on observed pairs.
	fwd := make(map[uint32]uint32)
	rev := make(map[uint32]uint32)
	for v := 0; v < n; v++ {
		got, exp := r.Labels[v], want[v]
		if prev, ok := fwd[got]; ok && prev != exp {
			return fmt.Errorf("cc: label %d spans true components %d and %d", got, prev, exp)
		}
		if prev, ok := rev[exp]; ok && prev != got {
			return fmt.Errorf("cc: true component %d split into labels %d and %d", exp, prev, got)
		}
		fwd[got] = exp
		rev[exp] = got
	}

	// Spanning-forest check over the hook records.
	components := len(rev)
	hooks := 0
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	targets := g.Targets()
	for v := 0; v < n; v++ {
		e := r.HookEdge[v]
		if e == NoHook {
			continue
		}
		hooks++
		if int(e) >= g.NumArcs() {
			return fmt.Errorf("cc: hookEdge[%d] = %d out of range", v, e)
		}
		src := arcSource(g.Offsets(), e)
		dst := targets[e]
		a, b := find(src), find(dst)
		if a == b {
			return fmt.Errorf("cc: hook arcs contain a cycle at vertex %d (arc %d-%d)", v, src, dst)
		}
		parent[a] = b
	}
	if hooks != n-components {
		return fmt.Errorf("cc: %d hook records for %d vertices in %d components, want %d", hooks, n, components, n-components)
	}
	// The forest must reproduce the exact partition: every vertex connects
	// to its label through hook arcs alone.
	for v := 0; v < n; v++ {
		if find(uint32(v)) != find(r.Labels[v]) {
			return fmt.Errorf("cc: hook forest does not connect %d to its label %d", v, r.Labels[v])
		}
	}
	return nil
}

// arcSource finds the source vertex of CSR arc e by binary search over the
// offsets array.
func arcSource(offsets []uint32, e uint32) uint32 {
	lo, hi := 0, len(offsets)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if offsets[mid] <= e {
			lo = mid
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}
