package cc

import (
	"testing"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// TestRandMateBitmapMatchesUnionFind validates bit-packed hooking across
// worker counts, backends and seeds: the fetch-OR claim must produce a
// valid spanning forest and labelling just like the round-stamped cells.
func TestRandMateBitmapMatchesUnionFind(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			k.SetBitmap(true)
			for _, e := range []machine.Exec{machine.ExecPool, machine.ExecTeam} {
				k.Prepare()
				r := k.RunRandMateExec(e, 12345)
				if err := Validate(g, r); err != nil {
					t.Fatalf("p=%d %s %v: %v", p, name, e, err)
				}
			}
		}
	}
}

// TestRandMateBitmapDeterministicWordParity: at one worker the fetch-OR
// and the round-stamped cell arbitrate identically (serial order), so the
// bitmap run must reproduce the word run bit for bit — labels, hook edges
// and iteration count.
func TestRandMateBitmapDeterministicWordParity(t *testing.T) {
	m := testMachine(t, 1)
	g := graph.ConnectedRandom(150, 400, 9)
	k := NewKernel(m, g)
	k.Prepare()
	word := k.RunRandMate(7)
	labels := append([]uint32(nil), word.Labels...)
	hooks := append([]uint32(nil), word.HookEdge...)
	k.SetBitmap(true)
	k.Prepare()
	bm := k.RunRandMate(7)
	if word.Iterations != bm.Iterations {
		t.Fatalf("iterations differ: word %d, bitmap %d", word.Iterations, bm.Iterations)
	}
	for i := range labels {
		if labels[i] != bm.Labels[i] || hooks[i] != bm.HookEdge[i] {
			t.Fatalf("bitmap run diverged from word run at vertex %d", i)
		}
	}
}

// TestRandMateBitmapToggleInterleaved alternates representations on one
// kernel across runs: the per-iteration bit clear must leave no state
// behind, and the word cells' round offset must stay monotone.
func TestRandMateBitmapToggleInterleaved(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.Disjoint(graph.ConnectedRandom(60, 150, 5), 3)
	k := NewKernel(m, g)
	for rep := 0; rep < 8; rep++ {
		k.SetBitmap(rep%2 == 0)
		k.Prepare()
		if err := Validate(g, k.RunRandMate(uint64(rep))); err != nil {
			t.Fatalf("rep %d (bitmap=%v): %v", rep, k.Bitmap(), err)
		}
	}
}
