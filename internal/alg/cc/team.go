package cc

import (
	"fmt"
	"sync/atomic"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
)

// This file ports the connected-components kernel to the machine's team
// execution mode: one persistent parallel region around the whole
// convergence loop. Each Awerbuch–Shiloach iteration is the same fixed
// sequence of rounds as the pool driver in cc.go — star check, conditional
// hook, star check, directional hook, shortcut — expressed as tc.Range
// rounds (one team barrier each) instead of ParallelRange calls (two pool
// phases each). The per-iteration "did anything change?" word becomes a
// rotating machine.TeamFlag, so no round is spent resetting it.

// RunTeam executes the algorithm with the given method inside one team
// region. Prepare must have been called first. Like Run, it panics for
// cw.Naive (see the package comment).
func (k *Kernel) RunTeam(method cw.Method) Result {
	switch method {
	case cw.CASLT:
		return k.runTeam(
			func(round uint32) hookFunc {
				return func(r int, j, target uint32) bool {
					return k.cells.TryClaim(r, round) && k.commit(r, j, target)
				}
			},
			true, false)
	case cw.Gatekeeper:
		return k.runGateTeam(false)
	case cw.GatekeeperChecked:
		return k.runGateTeam(true)
	case cw.Mutex:
		return k.runTeam(
			func(uint32) hookFunc {
				return func(r int, j, target uint32) bool {
					k.mtx.Lock(r)
					ok := k.commit(r, j, target)
					k.mtx.Unlock(r)
					return ok
				}
			},
			false, false)
	case cw.Naive:
		panic("cc: the naive method cannot implement the arbitrary multi-array hooking write (see the paper, Section 7)")
	default:
		panic("cc: unknown method " + method.String())
	}
}

func (k *Kernel) runGateTeam(checked bool) Result {
	return k.runTeam(
		func(uint32) hookFunc {
			return func(r int, j, target uint32) bool {
				var won bool
				if checked {
					won = k.gates.TryEnterChecked(r)
				} else {
					won = k.gates.TryEnter(r)
				}
				return won && k.commit(r, j, target)
			}
		},
		false, true)
}

// runTeam drives the iteration structure inside one team region. mk yields
// the hook guard for a given round id; useRounds derives CAS-LT round ids
// from the iteration counter (two hooking phases per iteration, so the
// round offset advances by 2*iterations); gateReset re-zeroes the
// gatekeeper array after each hooking phase.
func (k *Kernel) runTeam(mk func(round uint32) hookFunc, useRounds, gateReset bool) Result {
	maxIter := k.maxIterations()
	var changed machine.TeamFlag
	var iters int
	k.m.Team(func(tc *machine.TeamCtx) {
		it := uint32(0)
		for {
			changed.Set(it+1, 0) // prime next iteration's flag (common CW)
			var r1, r2 uint32
			if useRounds {
				r1 = k.base + 2*it + 1
				r2 = k.base + 2*it + 2
			}

			k.teamStarCheck(tc)
			k.teamHookPhase(tc, true, mk(r1), &changed, it)
			if gateReset {
				tc.Range(k.n, func(lo, hi int) { k.gates.ResetRange(lo, hi) })
			}

			k.teamStarCheck(tc)
			k.teamHookPhase(tc, false, mk(r2), &changed, it)
			if gateReset {
				tc.Range(k.n, func(lo, hi int) { k.gates.ResetRange(lo, hi) })
			}

			k.teamShortcut(tc, &changed, it)

			it++
			if changed.Get(it-1) == 0 {
				if tc.W == 0 {
					iters = int(it)
				}
				break
			}
			if int(it) > maxIter {
				panic(fmt.Sprintf("cc: no convergence after %d iterations on %d vertices (bug)", it, k.n))
			}
		}
	})
	if useRounds {
		k.base += uint32(2 * iters)
	}
	return Result{Labels: k.d, HookEdge: k.hookEdge, Iterations: iters}
}

// teamStarCheck is starCheck as three team rounds; see starCheck for the
// safety argument on the plain/atomic access mix.
func (k *Kernel) teamStarCheck(tc *machine.TeamCtx) {
	d, star := k.d, k.star
	tc.Range(k.n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			star[v] = 1
		}
	})
	tc.Range(k.n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			p := d[v]
			gp := d[p]
			if p != gp {
				atomic.StoreUint32(&star[v], 0)
				atomic.StoreUint32(&star[gp], 0)
			}
		}
	})
	tc.Range(k.n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&star[v]) == 1 && atomic.LoadUint32(&star[d[v]]) == 0 {
				atomic.StoreUint32(&star[v], 0)
			}
		}
	})
}

// teamHookPhase is hookPhase as two team rounds (snapshot copy, then the
// arc sweep); progress marks iteration it's slot of the rotating flag.
func (k *Kernel) teamHookPhase(tc *machine.TeamCtx, conditional bool, hook hookFunc, changed *machine.TeamFlag, it uint32) {
	d, star, arcSrc, targets := k.dprev, k.star, k.arcSrc, k.g.Targets()
	tc.Range(k.n, func(lo, hi int) {
		copy(k.dprev[lo:hi], k.d[lo:hi])
	})
	tc.Range(len(arcSrc), func(lo, hi int) {
		progress := false
		for j := lo; j < hi; j++ {
			u := arcSrc[j]
			if star[u] == 0 {
				continue
			}
			du := d[u]
			dv := d[targets[j]]
			var want bool
			if conditional {
				want = dv < du
			} else {
				// Directional rule; see hookPhase for why `!=` is unsafe.
				want = dv > du
			}
			if want && hook(int(du), uint32(j), dv) {
				progress = true
			}
		}
		if progress {
			changed.Set(it, 1)
		}
	})
}

// teamShortcut is shortcut as one team round.
func (k *Kernel) teamShortcut(tc *machine.TeamCtx, changed *machine.TeamFlag, it uint32) {
	d := k.d
	tc.Range(k.n, func(lo, hi int) {
		progress := false
		for v := lo; v < hi; v++ {
			p := atomic.LoadUint32(&d[v])
			gp := atomic.LoadUint32(&d[p])
			if p != gp {
				atomic.StoreUint32(&d[v], gp)
				progress = true
			}
		}
		if progress {
			changed.Set(it, 1)
		}
	})
}
