package cc

import (
	"testing"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/graph"
)

func TestTeamMatchesUnionFind(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			for _, method := range methods {
				k.Prepare()
				r := k.RunTeam(method)
				if err := Validate(g, r); err != nil {
					t.Fatalf("p=%d %s %v: %v", p, name, method, err)
				}
				if r.Iterations < 1 {
					t.Fatalf("p=%d %s %v: iterations = %d", p, name, method, r.Iterations)
				}
			}
		}
	}
}

func TestTeamNaivePanics(t *testing.T) {
	m := testMachine(t, 2)
	k := NewKernel(m, graph.Path(4))
	k.Prepare()
	defer func() {
		if recover() == nil {
			t.Fatal("RunTeam(Naive) did not panic")
		}
	}()
	k.RunTeam(cw.Naive)
}

func TestTeamRepeatedAndInterleavedWithPool(t *testing.T) {
	// Team and pool CAS-LT runs share the cells array; interleaving them
	// must keep the round offset discipline intact (team advances base by
	// 2*iterations, exactly like the pool driver).
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(250, 900, 19)
	k := NewKernel(m, g)
	for rep := 0; rep < 8; rep++ {
		k.Prepare()
		var r Result
		if rep%2 == 0 {
			r = k.RunTeam(cw.CASLT)
		} else {
			r = k.RunCASLT()
		}
		if err := Validate(g, r); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}
