package cc

import (
	"math/bits"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
)

// This file implements Reif's random-mate connected components as a second
// arbitrary-CW algorithm (an extension beyond the paper's benchmarks; the
// paper's conclusion calls for broader CRCW algorithm coverage). Each
// iteration every live root flips a fair coin; every edge whose endpoints
// lie under a head root and a tail root hooks the head root beneath the
// tail root — an arbitrary concurrent write per head root, guarded here by
// CAS-LT — followed by pointer jumping. Heads hook onto tails and tails
// never hook, so a round's hook graph is trivially acyclic (no directional
// id trick needed), and each component contracts to one vertex in O(log n)
// expected iterations.

// splitmix64 is a fixed-increment hash used to derive deterministic,
// uncorrelated per-(iteration, vertex) coin flips without shared RNG
// state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// coin returns the deterministic coin flip of vertex v in iteration it for
// the given seed: true = head.
func coin(seed uint64, it uint32, v uint32) bool {
	return splitmix64(seed^uint64(it)<<32^uint64(v))&1 == 1
}

// RunRandMate executes random-mate connected components with
// CAS-LT-guarded hooking under the machine's default execution backend.
// Prepare must have been called first. Like the Awerbuch–Shiloach runs it
// fills the hook records, so Validate applies unchanged. seed makes the
// coin flips deterministic.
func (k *Kernel) RunRandMate(seed uint64) Result {
	return k.RunRandMateExec(k.m.Exec(), seed)
}

// RunRandMateExec is RunRandMate under an explicit execution backend.
func (k *Kernel) RunRandMateExec(e machine.Exec, seed uint64) Result {
	// A generous bound: random mate halves the expected live-root count
	// per iteration; exceeding ~64 + 8 log2 n is overwhelmingly a bug (or
	// an astronomically unlucky seed) rather than a slow input.
	maxIter := 8*bits.Len(uint(k.n)) + 64

	if k.bitmap && k.hookBits == nil {
		k.hookBits = cw.NewBitArray(k.n) // allocate outside the region
	}
	d, dprev, arcSrc, targets := k.d, k.dprev, k.arcSrc, k.g.Targets()
	// The region's Flag tracks per-iteration progress; cross-tree liveness
	// needs a second rotating flag, declared driver-side so every SPMD copy
	// shares it.
	var live exec.Flag
	var iters uint32
	k.trace = exec.Run(k.m, e, func(ctx exec.Ctx) {
		rec := ctx.Metrics()
		changed := ctx.Flag()
		it := uint32(0)
		for {
			changed.Set(it+1, 0) // prime next iteration's flags (common CW)
			live.Set(it+1, 0)
			round := k.base + ctx.NextRound()

			// Snapshot the forest: hooks read phase-start roots only. In
			// bitmap mode the same round clears the hook bits — the
			// per-iteration reinit the bit representation reintroduces, at
			// 1/64 of a word array's store count (sharded clears are
			// word-boundary safe).
			ctx.Range(k.n, func(lo, hi, _ int) {
				copy(dprev[lo:hi], d[lo:hi])
				if k.bitmap {
					k.hookBits.ResetRange(lo, hi)
				}
			})

			// Hooking: arcs whose source's root is a head and whose target's
			// root is a tail hook head beneath tail. dprev[u] is u's parent at
			// phase start; it equals u's root only when u is in a star, so —
			// unlike Awerbuch–Shiloach — random mate additionally requires the
			// parent to be a root (dprev[dprev[u]] == dprev[u]), which is the
			// textbook formulation (hooking is attempted between mated roots).
			// live records whether any arc still connects two distinct roots:
			// an unlucky coin assignment can produce a hook-free iteration
			// that must NOT terminate the loop while such arcs remain.
			// The hook body accumulates its progress/cross flags per share
			// (or per stolen chunk — the flag sets are idempotent common
			// writes, so chunk granularity changes nothing).
			hook := func(lo, hi, w int) {
				sh := rec.Shard(w)
				progress, cross := false, false
				for j := lo; j < hi; j++ {
					u := arcSrc[j]
					ru := dprev[u]
					if dprev[ru] != ru {
						continue // u's parent is not a root
					}
					rv := dprev[targets[j]]
					if dprev[rv] != rv || ru == rv {
						continue // v's parent is not a root, or same tree
					}
					cross = true
					if !coin(seed, it, ru) || coin(seed, it, rv) {
						continue // not a head-to-tail pairing this iteration
					}
					// Winner selection: one hook per head root per iteration.
					// The bit-packed claim is a fetch-OR ("r hooked" is a
					// common write); the word claim stamps the round id.
					var o cw.Outcome
					if k.bitmap {
						o = k.hookBits.TryClaimBitOutcome(int(ru))
					} else {
						o = k.cells.TryClaimOutcome(int(ru), round)
					}
					if sh.Claim(int(ru), round, o) && k.commit(int(ru), uint32(j), rv) {
						progress = true
					}
				}
				if progress {
					changed.Set(it, 1)
				}
				if cross {
					live.Set(it, 1)
				}
			}
			if k.steal {
				ctx.StealRange(len(arcSrc), hook)
			} else {
				ctx.Range(len(arcSrc), hook)
			}

			k.shortcut(ctx, changed, it)

			it++
			if changed.Get(it-1) == 0 && live.Get(it-1) == 0 {
				if ctx.Worker() == 0 {
					iters = it
				}
				break
			}
			if int(it) > maxIter {
				panic("cc: random mate did not converge (bug or pathological seed)")
			}
		}
	})
	k.base += iters
	return Result{Labels: k.d, HookEdge: k.hookEdge, Iterations: int(iters)}
}
