// Package cc implements the paper's third benchmark: the Awerbuch–Shiloach
// connected-components algorithm (a Shiloach–Vishkin variant with
// simplified hooking decisions), which requires *arbitrary* CRCW concurrent
// writes.
//
// Vertices carry a parent pointer D forming a forest; each iteration is a
// fixed sequence of PRAM rounds:
//
//  1. star check                 (is every vertex in a depth-<=1 tree?)
//  2. conditional star hooking   for each arc (u,v): if star[u] and
//     D[v] < D[u] then D[D[u]] := D[v]
//  3. star check
//  4. directional star hooking   for each arc (u,v): if star[u] and
//     D[v] > D[u] then D[D[u]] := D[v]
//  5. pointer jumping            D[v] := D[D[v]]
//
// until nothing changes; on termination every component is a single star
// and D is the component labelling.
//
// The hooking steps are the arbitrary concurrent write: many arcs
// simultaneously hook the same star root r to *different* targets, and the
// winner also records which arc performed the hook (HookEdge[r]) — a
// multi-word payload whose fields must come from one writer. This is
// exactly why the paper implements no naive CC variant: "this algorithm
// concurrently writes updates to multiple arrays during the hooking stage,
// rendering the naive method an unsafe approach". Run(cw.Naive) therefore
// panics. The recorded hook arcs double as a spanning forest of the graph,
// which the validator checks — a strong end-to-end witness that every
// committed tuple was untorn.
//
// Cycle freedom relies on three ingredients: hooking reads come from a
// phase-start snapshot of D (PRAM reads-before-writes semantics), each root
// is hooked by at most one winner per round (the concurrent-write guard),
// and both hooking rules are directional — conditional hooks only onto
// strictly smaller roots, the second phase only onto strictly larger ones.
// The textbook `D[v] != D[u]` rule for the second phase is NOT safe under
// arbitrary winner selection (see the comment in hookPhase); the
// directional variant preserves the algorithm's structure, CW pattern and
// O(log n) behaviour while being provably acyclic.
package cc

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
	"crcwpram/internal/graph"
)

// NoHook marks a vertex that never performed a hook (never was a hooked
// root).
const NoHook = math.MaxUint32

// Result gives read-only access to the arrays produced by a run.
type Result struct {
	// Labels[v] is the id of the root of v's component. Roots are
	// arbitrary component members (not necessarily minima), but labels are
	// consistent: two vertices share a label iff they are connected.
	Labels []uint32
	// HookEdge[r] is the CSR arc index whose hook attached former root r
	// beneath another tree, or NoHook. The non-NoHook arcs form a spanning
	// forest.
	HookEdge []uint32
	// Iterations is the number of hook/shortcut iterations executed.
	Iterations int
}

// Kernel holds the shared arrays for repeated CC runs over one graph.
type Kernel struct {
	m *machine.Machine
	g *graph.Graph
	n int

	d        []uint32 // parent pointers
	dprev    []uint32 // phase-start snapshot of d read by hooking rounds
	star     []uint32 // 1 = in a star
	hookEdge []uint32
	arcSrc   []uint32 // source vertex of each CSR arc

	cells *cw.Array
	gates *cw.GateArray
	mtx   *cw.MutexArray

	base  uint32           // CAS-LT round offset carried across runs
	trace *exec.TraceStats // structural record of the last trace-backend run

	// steal routes random mate's hooking loop through the work-stealing
	// scheduler: a hub's arcs are contiguous in CSR order, so on skewed
	// graphs a static arc share concentrates both the branchy root checks
	// and the CAS contention on one worker. Defaults to the graph's degree
	// skew; see SetStealing.
	steal bool

	// bitmap switches random mate's hooking claim to a bit-packed
	// fetch-OR array (see SetBitmap); hookBits is cleared each iteration
	// inside the snapshot round.
	bitmap   bool
	hookBits *cw.BitArray
}

// NewKernel returns a CC kernel over g executed on m. The machine and graph
// are borrowed, not owned. g must be undirected (both arc directions
// stored); the hooking safety argument depends on it.
func NewKernel(m *machine.Machine, g *graph.Graph) *Kernel {
	if !g.Undirected() {
		panic("cc: kernel requires an undirected graph")
	}
	n := g.NumVertices()
	k := &Kernel{
		steal:    graph.DegreeSkewed(g),
		m:        m,
		g:        g,
		n:        n,
		d:        make([]uint32, n),
		dprev:    make([]uint32, n),
		star:     make([]uint32, n),
		hookEdge: make([]uint32, n),
		arcSrc:   make([]uint32, g.NumArcs()),
		cells:    cw.NewArray(n, cw.Packed),
		gates:    cw.NewGateArray(n, cw.Packed),
		mtx:      cw.NewMutexArray(n),
	}
	// Precompute each arc's source vertex so hooking can parallelize
	// across arcs, "parallelizing across all edges to perform the hooking
	// step" as the paper describes. The pass itself costs deg(v) per
	// vertex, so it is sharded by arcs (graph.ArcBounds), not vertices — on
	// a hub-skewed graph an equal-vertex split would serialize it behind
	// the worker that owns the hubs.
	offsets := g.Offsets()
	m.ParallelBounds(graph.ArcBounds(g, m.P()), func(lo, hi, _ int) {
		for v := lo; v < hi; v++ {
			for j := offsets[v]; j < offsets[v+1]; j++ {
				k.arcSrc[j] = uint32(v)
			}
		}
	})
	return k
}

// SetStealing selects whether random mate's hooking loop runs under the
// work-stealing scheduler instead of the machine's configured policy.
// Defaults to graph.DegreeSkewed(g). Stealing changes which worker walks
// which arcs, never who may write what, so results are unaffected. The
// Awerbuch–Shiloach runs are untouched: their hook phase is a regular
// whole-range sweep. Call it before Run*, not during.
func (k *Kernel) SetStealing(on bool) { k.steal = on }

// Stealing returns whether random mate's hooking uses work stealing.
func (k *Kernel) Stealing() bool { return k.steal }

// SetBitmap selects a bit-packed (cw.BitArray) winner-selection state for
// random mate's hooking claim: "root r hooked this iteration" is a boolean
// common write, so a fetch-OR on r's bit replaces the round-stamped CAS-LT
// cell, and the root checks that precede most attempts read 512 roots per
// cache line instead of 16. The bits carry no round id, so — unlike
// CAS-LT, whose point is reinit-free rounds — the bitmap is cleared once
// per iteration, folded into the forest-snapshot round at 1/64 of the
// word-array cost (see DESIGN §3e for why this trade differs from the
// gatekeeper's O(N) word reinit). Winner selection semantics are
// unchanged: at most one hook commits per root per iteration, so results
// match the word runs. The Awerbuch–Shiloach runs ignore it. Call it
// before Run*, not during.
func (k *Kernel) SetBitmap(on bool) { k.bitmap = on }

// Bitmap returns whether random mate's hooking claim is bit-packed.
func (k *Kernel) Bitmap() bool { return k.bitmap }

// Prepare resets the forest to singletons and the hook records. Prepare is
// the untimed initialization phase; CAS-LT cells are reused across runs via
// the round offset.
func (k *Kernel) Prepare() {
	if k.base > math.MaxUint32/2 {
		k.m.ParallelRange(k.n, func(lo, hi, _ int) { k.cells.ResetRange(lo, hi) })
		k.base = 0
	}
	k.m.ParallelRange(k.n, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			k.d[i] = uint32(i)
			k.hookEdge[i] = NoHook
		}
		k.gates.ResetRange(lo, hi)
	})
}

// Run executes the algorithm with the given method under the machine's
// default execution backend and returns a Result view over the kernel's
// arrays (valid until the next Prepare/Run). Prepare must have been called
// first. Run panics for cw.Naive: naive arbitrary concurrent writes are
// unsafe (see package comment).
func (k *Kernel) Run(method cw.Method) Result {
	return k.RunExec(k.m.Exec(), method)
}

// RunExec is Run under an explicit execution backend.
func (k *Kernel) RunExec(e machine.Exec, method cw.Method) Result {
	switch method {
	case cw.CASLT:
		// The per-phase round id is derived from the region round counter
		// plus the kernel's base offset, so no auxiliary state is ever
		// re-initialized.
		return k.runExec(e,
			func(round uint32) hookFunc {
				return func(sh *metrics.Shard, r int, j, target uint32) bool {
					return sh.Claim(r, round, k.cells.TryClaimOutcome(r, round)) && k.commit(r, j, target)
				}
			},
			true, func(exec.Ctx) {})
	case cw.Gatekeeper:
		return k.runGate(e, false)
	case cw.GatekeeperChecked:
		return k.runGate(e, true)
	case cw.Mutex:
		return k.runExec(e,
			func(round uint32) hookFunc {
				return func(sh *metrics.Shard, r int, j, target uint32) bool {
					k.mtx.Lock(r)
					ok := k.commit(r, j, target)
					k.mtx.Unlock(r)
					// Each lock acquisition is one executed attempt; the
					// root re-verification inside commit decides win/loss.
					o := cw.OutcomeLoss
					if ok {
						o = cw.OutcomeWin
					}
					sh.Claim(r, round, o)
					return ok
				}
			},
			false, func(exec.Ctx) {})
	case cw.Naive:
		panic("cc: the naive method cannot implement the arbitrary multi-array hooking write (see the paper, Section 7)")
	default:
		panic("cc: unknown method " + method.String())
	}
}

// Trace returns the structural record of the kernel's last run under the
// trace backend, or nil if the last run used a timed backend.
func (k *Kernel) Trace() *exec.TraceStats { return k.trace }

// maxIterations bounds the convergence loop: Awerbuch–Shiloach provably
// finishes in O(log n) iterations, so exceeding a generous multiple
// indicates an implementation bug rather than a slow input.
func (k *Kernel) maxIterations() int {
	return 4*bits.Len(uint(k.n)) + 16
}

// starCheck recomputes k.star from k.d in three rounds. D is not written
// during the check, so plain reads of d are safe; star is written with
// atomic stores because marks race benignly (common CW of 0).
func (k *Kernel) starCheck(ctx exec.Ctx) {
	d, star := k.d, k.star
	ctx.Range(k.n, func(lo, hi, _ int) {
		for v := lo; v < hi; v++ {
			star[v] = 1
		}
	})
	ctx.Range(k.n, func(lo, hi, _ int) {
		for v := lo; v < hi; v++ {
			p := d[v]
			gp := d[p]
			if p != gp {
				// v has a grandparent: neither v nor the grandparent can
				// be in a star.
				atomic.StoreUint32(&star[v], 0)
				atomic.StoreUint32(&star[gp], 0)
			}
		}
	})
	// Propagate the root's verdict to depth-1 members. Only lowers, never
	// raises, so racy interleavings within the round are benign.
	ctx.Range(k.n, func(lo, hi, _ int) {
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&star[v]) == 1 && atomic.LoadUint32(&star[d[v]]) == 0 {
				atomic.StoreUint32(&star[v], 0)
			}
		}
	})
}

// shortcut performs one pointer-jumping round, marking iteration it's slot
// of the rotating flag if any pointer moved. Reading a neighbour's
// already-jumped pointer only jumps further up the (acyclic) forest, so
// atomic loads of concurrent writes are safe.
func (k *Kernel) shortcut(ctx exec.Ctx, changed *exec.Flag, it uint32) {
	d := k.d
	ctx.Range(k.n, func(lo, hi, _ int) {
		progress := false
		for v := lo; v < hi; v++ {
			p := atomic.LoadUint32(&d[v])
			gp := atomic.LoadUint32(&d[p])
			if p != gp {
				atomic.StoreUint32(&d[v], gp)
				progress = true
			}
		}
		if progress {
			changed.Set(it, 1)
		}
	})
}

// hookFunc attempts the guarded multi-array hook of root r via arc j to
// target; it returns true if this caller won the write. sh is the calling
// worker's metrics shard (nil when metrics are off).
type hookFunc func(sh *metrics.Shard, r int, j uint32, target uint32) bool

// hookPhase runs one hooking round over all arcs, reading parent pointers
// from the phase-start snapshot dprev (PRAM reads-before-writes semantics:
// without the snapshot, an arc sourced at a root hooked earlier in the same
// phase reads its freshly written pointer and can hook its new parent back,
// forming a cycle). conditional selects the D[v] < D[u] rule (vs.
// D[v] != D[u]); progress marks iteration it's slot of the rotating flag.
func (k *Kernel) hookPhase(ctx exec.Ctx, conditional bool, hook hookFunc, changed *exec.Flag, it uint32) {
	d, star, arcSrc, targets := k.dprev, k.star, k.arcSrc, k.g.Targets()
	// Snapshot the parent pointers; this copy is part of every method's
	// timed cost, identically, so method comparisons are unaffected.
	ctx.Range(k.n, func(lo, hi, _ int) {
		copy(k.dprev[lo:hi], k.d[lo:hi])
	})
	rec := ctx.Metrics()
	ctx.Range(len(arcSrc), func(lo, hi, w int) {
		sh := rec.Shard(w)
		progress := false
		for j := lo; j < hi; j++ {
			u := arcSrc[j]
			if star[u] == 0 {
				continue
			}
			du := d[u]
			dv := d[targets[j]]
			var want bool
			if conditional {
				want = dv < du
			} else {
				// Directional variant of the textbook `dv != du` rule: hook
				// only onto strictly larger roots. With an arbitrary winner
				// per root per round, `!=` is unsafe — a singleton hooked
				// into star A during the conditional phase can make A and
				// another star B adjacent afterwards, and `!=` then hooks A
				// and B onto each other, forming a 2-cycle. With `>` every
				// unconditional write increases ids: a hypothetical cycle
				// a1 -> a2 -> ... -> ak -> a1 of same-round hooks would
				// need a1 < a2 < ... < ak < a1 (hook targets in star trees
				// are exactly the roots' ids), a contradiction. Stagnation
				// is impossible: a star root that is a local minimum among
				// neighbouring roots hooks here, a local maximum hooks in
				// the conditional phase.
				want = dv > du
			}
			if want && hook(sh, int(du), uint32(j), dv) {
				progress = true
			}
		}
		if progress {
			changed.Set(it, 1)
		}
	})
}

// runExec drives the iteration structure shared by all methods under
// backend e, as one SPMD body around the whole convergence loop. mk yields
// the hook guard for a given round id — the region round counter plus the
// kernel's base offset when useBase is set (CAS-LT), the bare counter
// otherwise (two hooking phases per iteration either way). afterPhase runs
// after each hooking phase for methods needing re-initialization
// (gatekeeper). The per-iteration "did anything change?" word is the
// region's rotating Flag, so no round is spent resetting it.
func (k *Kernel) runExec(e machine.Exec, mk func(round uint32) hookFunc, useBase bool, afterPhase func(exec.Ctx)) Result {
	maxIter := k.maxIterations()
	off := uint32(0)
	if useBase {
		off = k.base
	}
	var iters int
	k.trace = exec.Run(k.m, e, func(ctx exec.Ctx) {
		changed := ctx.Flag()
		it := uint32(0)
		for {
			changed.Set(it+1, 0) // prime next iteration's flag (common CW)
			r1 := off + ctx.NextRound()
			r2 := off + ctx.NextRound()

			k.starCheck(ctx)
			k.hookPhase(ctx, true, mk(r1), changed, it)
			afterPhase(ctx)

			k.starCheck(ctx)
			k.hookPhase(ctx, false, mk(r2), changed, it)
			afterPhase(ctx)

			k.shortcut(ctx, changed, it)

			it++
			if changed.Get(it-1) == 0 {
				if ctx.Worker() == 0 {
					iters = int(it)
				}
				break
			}
			if int(it) > maxIter {
				panic(fmt.Sprintf("cc: no convergence after %d iterations on %d vertices (bug)", it, k.n))
			}
		}
	})
	if useBase {
		k.base += uint32(2 * iters)
	}
	return Result{Labels: k.d, HookEdge: k.hookEdge, Iterations: iters}
}

// commit writes the hook tuple; it runs only on a claimant holding the
// exclusive write right for d[r] in the current round. Because hook
// conditions are evaluated on the phase-start snapshot, r is always a
// phase-start root here; the verification is pure defense in depth (it is
// stable because the caller owns the only write right to d[r] this round).
func (k *Kernel) commit(r int, j, target uint32) bool {
	if k.d[r] != uint32(r) {
		return false
	}
	k.d[r] = target
	k.hookEdge[r] = j
	return true
}

// RunCASLT guards each hooking write with a CAS-LT claim on the root's
// cell; the per-phase round id is derived from the region round counter,
// so no auxiliary state is ever re-initialized.
func (k *Kernel) RunCASLT() Result { return k.Run(cw.CASLT) }

// RunGatekeeper guards each hooking write with an atomic fetch-and-add
// gatekeeper per root, and re-zeroes the whole gatekeeper array after
// every hooking phase — the O(N)-work re-initialization pass the method
// requires, inside the timed region.
func (k *Kernel) RunGatekeeper() Result { return k.Run(cw.Gatekeeper) }

// RunGateChecked is RunGatekeeper with the load pre-check mitigation.
func (k *Kernel) RunGateChecked() Result { return k.Run(cw.GatekeeperChecked) }

func (k *Kernel) runGate(e machine.Exec, checked bool) Result {
	return k.runExec(e,
		func(round uint32) hookFunc {
			return func(sh *metrics.Shard, r int, j, target uint32) bool {
				var o cw.Outcome
				if checked {
					o = k.gates.TryEnterCheckedOutcome(r)
				} else {
					o = k.gates.TryEnterOutcome(r)
				}
				return sh.Claim(r, round, o) && k.commit(r, j, target)
			}
		},
		false,
		func(ctx exec.Ctx) {
			ctx.Range(k.n, func(lo, hi, _ int) { k.gates.ResetRange(lo, hi) })
		},
	)
}

// RunMutex serializes each root's hooking writes behind the root's lock;
// the first writer to commit wins (the root re-verification makes later
// writers skip), and the tuple stays consistent because both fields are
// written inside the critical section.
func (k *Kernel) RunMutex() Result { return k.Run(cw.Mutex) }

// SequentialLabels computes component labels with a union-find (path
// halving + union by smaller id), the validation baseline. Labels are the
// smallest vertex id of each component.
func SequentialLabels(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	offsets, targets := g.Offsets(), g.Targets()
	for v := 0; v < n; v++ {
		for j := offsets[v]; j < offsets[v+1]; j++ {
			ru, rv := find(uint32(v)), find(targets[j])
			if ru != rv {
				if ru < rv {
					parent[rv] = ru
				} else {
					parent[ru] = rv
				}
			}
		}
	}
	labels := make([]uint32, n)
	for v := range labels {
		labels[v] = find(uint32(v))
	}
	return labels
}
