package matching

import (
	"testing"

	"crcwpram/internal/graph"
)

func TestTeamProducesMaximalMatching(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			k.Prepare()
			r := k.RunTeam(99)
			if err := Validate(g, r); err != nil {
				t.Fatalf("p=%d %s: %v", p, name, err)
			}
		}
	}
}

// TestTeamAgreesWithPool: proposal winners are arbitrary under real
// concurrency, so exact agreement is only guaranteed with one worker, where
// both drivers visit arcs in the same deterministic order and the coin
// flips are deterministic in (seed, iteration, vertex).
func TestTeamAgreesWithPool(t *testing.T) {
	m := testMachine(t, 1)
	g := graph.ConnectedRandom(200, 800, 21)
	k := NewKernel(m, g)
	for _, seed := range []uint64{1, 42, 9999} {
		k.Prepare()
		pool := k.Run(seed)
		poolMate := append([]uint32(nil), pool.Mate...)
		poolIters := pool.Iterations
		k.Prepare()
		team := k.RunTeam(seed)
		if poolIters != team.Iterations {
			t.Fatalf("seed %d: iterations differ: pool %d, team %d", seed, poolIters, team.Iterations)
		}
		for v := range poolMate {
			if poolMate[v] != team.Mate[v] {
				t.Fatalf("seed %d mate[%d]: pool %d, team %d", seed, v, poolMate[v], team.Mate[v])
			}
		}
	}
}

func TestTeamRepeatedAndInterleavedWithPool(t *testing.T) {
	// Both drivers share the proposal/acceptance cells via the round offset.
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(150, 500, 31)
	k := NewKernel(m, g)
	for rep := 0; rep < 8; rep++ {
		k.Prepare()
		var r Result
		if rep%2 == 0 {
			r = k.RunTeam(uint64(rep))
		} else {
			r = k.Run(uint64(rep))
		}
		if err := Validate(g, r); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}
