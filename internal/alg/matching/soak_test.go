package matching

import (
	"testing"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// TestSoakRandomizedGraphs exercises the two-level arbitrary-CW protocol
// (propose then accept) across many random shapes, seeds and worker
// counts; the torn-tuple and double-match hazards it guards against are
// timing-dependent, so volume is the point. Skipped in -short mode.
func TestSoakRandomizedGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, p := range []int{2, 4, 8} {
		m := machine.New(p)
		for trial := 0; trial < 120; trial++ {
			seed := int64(p*2000 + trial)
			n := 20 + trial%180
			edges := (trial % 6) * n
			var g *graph.Graph
			switch trial % 3 {
			case 0:
				g = graph.RandomUndirected(n, edges, seed)
			case 1:
				g = graph.ConnectedRandom(n, edges+n, seed)
			default:
				g = graph.Grid2D(trial%12+2, trial%9+2)
			}
			k := NewKernel(m, g)
			k.Prepare()
			if err := Validate(g, k.Run(uint64(seed))); err != nil {
				t.Fatalf("p=%d trial %d: %v", p, trial, err)
			}
		}
		m.Close()
	}
}
