package matching

import (
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
)

// instance adapts Kernel to the registry's Instance contract. The outcome
// vector is Mate followed by MateEdge, rebuilt into a reused buffer; at
// P>1 the arbitrary-write winners legitimately differ, which the
// descriptor's DetP=1 declares.
type instance struct {
	k        *Kernel
	g        *graph.Graph
	seed     uint64
	stealDef bool
	last     Result
	buf      []uint32
}

func (in *instance) Prepare(s kernel.Settings) {
	in.k.SetBitmap(s.Bitmap)
	switch s.Steal {
	case kernel.StealOn:
		in.k.SetStealing(true)
	case kernel.StealOff:
		in.k.SetStealing(false)
	default:
		in.k.SetStealing(in.stealDef)
	}
	in.k.Prepare()
}

func (in *instance) Run(s kernel.Settings) kernel.Outcome {
	in.last = in.k.RunExec(s.Exec, in.seed)
	in.buf = in.buf[:0]
	in.buf = append(in.buf, in.last.Mate...)
	in.buf = append(in.buf, in.last.MateEdge...)
	return kernel.Outcome{Vector: in.buf}
}

func (in *instance) Validate() error { return Validate(in.g, in.last) }

func (in *instance) Trace() *exec.TraceStats { return in.k.Trace() }

func init() {
	kernel.Register(kernel.Descriptor{
		Name:    "matching",
		Pkg:     "matching",
		Summary: "randomized greedy maximal matching, propose/accept CW rounds",
		// The matching's propose and accept arrays share the probe's index
		// space, hence the doubled per-cell claim bound.
		Bitmap:           true,
		Stealable:        true,
		Input:            kernel.InputGraph,
		Symmetric:        true,
		Contention:       kernel.ContentionGuarded,
		ProbeBoundFactor: 2,
		DetP:             1,
		New: func(m *machine.Machine, w kernel.Workload) kernel.Instance {
			k := NewKernel(m, w.Graph)
			return &instance{k: k, g: w.Graph, seed: w.Seed, stealDef: k.Stealing()}
		},
	})
}
