package matching

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"crcwpram/internal/core/machine"
)

// This file ports the randomized maximal matching to the machine's team
// execution mode: one persistent parallel region around the whole
// propose/accept loop, two team barriers per iteration (one per level of
// the two-level arbitrary concurrent write) instead of four pool phases.
// The per-iteration liveness word becomes a rotating machine.TeamFlag.

// RunTeam executes the randomized maximal matching inside one team region.
// Prepare must have been called first; seed makes the coin flips
// deterministic. Semantics and round-id bookkeeping match Run exactly.
func (k *Kernel) RunTeam(seed uint64) Result {
	maxIter := 8*bits.Len(uint(k.g.NumArcs()+2)) + 64
	targets := k.g.Targets()
	var live machine.TeamFlag
	var rounds uint32
	k.m.Team(func(tc *machine.TeamCtx) {
		it := uint32(0)
		for {
			live.Set(it+1, 0) // prime next iteration's flag (common CW)
			round := k.base + it + 1

			// Level 1 — propose: heads race on each live tail's slot.
			tc.Range(len(k.arcSrc), func(lo, hi int) {
				sawLive := false
				for j := lo; j < hi; j++ {
					u := k.arcSrc[j]
					v := targets[j]
					if k.alive[u] == 0 || k.alive[v] == 0 || u == v {
						continue
					}
					sawLive = true
					if !head(seed, it, u) || head(seed, it, v) {
						continue
					}
					if k.propCells.TryClaim(int(v), round) {
						k.proposer[v] = u
						k.propArc[v] = uint32(j)
					}
				}
				if sawLive {
					live.Set(it, 1)
				}
			})

			// Level 2 — accept: proposed-to tails race on their proposer's
			// slot; the winner forms the match and both endpoints die.
			tc.Range(k.n, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					if !k.propCells.Written(v, round) {
						continue
					}
					u := k.proposer[v]
					if k.acceptCells.TryClaim(int(u), round) {
						j := k.propArc[v]
						k.mate[v] = u
						k.mate[u] = uint32(v)
						k.mateEdge[v] = j
						k.mateEdge[u] = j
						atomic.StoreUint32(&k.alive[v], 0)
						atomic.StoreUint32(&k.alive[u], 0)
					}
				}
			})

			it++
			if live.Get(it-1) == 0 {
				if tc.W == 0 {
					rounds = it
				}
				break
			}
			if int(it) > maxIter {
				panic(fmt.Sprintf("matching: no convergence after %d iterations (bug or pathological seed)", it))
			}
		}
	})
	k.base += rounds
	return Result{Mate: k.mate, MateEdge: k.mateEdge, Iterations: int(rounds)}
}
