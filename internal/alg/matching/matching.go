// Package matching implements randomized parallel maximal matching in the
// style of Yang, Dhall and Lakshmivarahan (the paper's reference [23]) —
// a workload the paper singles out as typical of CRCW algorithms that get
// reformulated for CREW machines because concurrent writes were thought
// unimplementable. Here the CRCW formulation runs as-is on CAS-LT.
//
// Each iteration is a two-level arbitrary concurrent write:
//
//  1. Propose: every vertex flips a coin; for every live edge (u, v) with
//     u a head and v a tail, u's processors race an arbitrary CW on v's
//     proposal slot — one proposer (and the arc it arrived by) commits.
//  2. Accept: a head u may have won proposals on several tails; the tails
//     race a second arbitrary CW on u's acceptance slot. The winning pair
//     (u, v) is matched and both vertices leave the graph.
//
// Both levels write multi-word payloads (who + via which arc), so an
// unguarded implementation could tear them; the recorded match edges are
// validated against the graph. Expected O(log m) iterations remove all
// live edges; on termination no edge joins two unmatched vertices, i.e.
// the matching is maximal.
package matching

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// Unmatched marks a vertex with no mate.
const Unmatched = math.MaxUint32

// Result gives read-only access to the arrays produced by a run.
type Result struct {
	// Mate[v] is v's matched partner, or Unmatched.
	Mate []uint32
	// MateEdge[v] is the CSR arc index that created v's match (stored on
	// both endpoints), or Unmatched.
	MateEdge []uint32
	// Iterations is the number of propose/accept rounds executed.
	Iterations int
}

// Size returns the number of matched pairs.
func (r Result) Size() int {
	n := 0
	for _, m := range r.Mate {
		if m != Unmatched {
			n++
		}
	}
	return n / 2
}

// Kernel holds the shared arrays for repeated matching runs over one
// graph.
type Kernel struct {
	m *machine.Machine
	g *graph.Graph
	n int

	alive    []uint32
	mate     []uint32
	mateEdge []uint32
	proposer []uint32 // per tail: winning head
	propArc  []uint32 // per tail: arc the proposal arrived by
	arcSrc   []uint32

	propCells   *cw.Array // level-1 guard: one per tail
	acceptCells *cw.Array // level-2 guard: one per head

	base  uint32
	trace *exec.TraceStats // structural record of the last trace-backend run

	// steal routes the propose loop (arc-parallel, CSR-contiguous hub arcs)
	// through the work-stealing scheduler. Defaults to the graph's degree
	// skew; see SetStealing. The accept loop stays a regular vertex sweep.
	steal bool

	// bitmap switches the boolean per-vertex state to bit-packed arrays
	// (see SetBitmap): propBits replaces the proposal claim cells, deadBits
	// the alive words. The accept claim keeps its word cells — its payload
	// (mate + arc) is multi-word either way.
	bitmap   bool
	propBits *cw.BitArray
	deadBits *cw.BitArray
}

// NewKernel returns a matching kernel over g executed on m. g must be
// undirected.
func NewKernel(m *machine.Machine, g *graph.Graph) *Kernel {
	if !g.Undirected() {
		panic("matching: kernel requires an undirected graph")
	}
	n := g.NumVertices()
	k := &Kernel{
		steal:       graph.DegreeSkewed(g),
		m:           m,
		g:           g,
		n:           n,
		alive:       make([]uint32, n),
		mate:        make([]uint32, n),
		mateEdge:    make([]uint32, n),
		proposer:    make([]uint32, n),
		propArc:     make([]uint32, n),
		arcSrc:      make([]uint32, g.NumArcs()),
		propCells:   cw.NewArray(n, cw.Packed),
		acceptCells: cw.NewArray(n, cw.Packed),
	}
	offsets := g.Offsets()
	m.ParallelFor(n, func(v int) {
		for j := offsets[v]; j < offsets[v+1]; j++ {
			k.arcSrc[j] = uint32(v)
		}
	})
	return k
}

// SetStealing selects whether the propose loop runs under the
// work-stealing scheduler instead of the machine's configured policy.
// Defaults to graph.DegreeSkewed(g). Stealing changes which worker walks
// which arcs, never who may write what, so results are unaffected. Call it
// before Run*, not during.
func (k *Kernel) SetStealing(on bool) { k.steal = on }

// Stealing returns whether the propose loop uses work stealing.
func (k *Kernel) Stealing() bool { return k.steal }

// SetBitmap selects bit-packed (cw.BitArray) state for the matching's
// boolean payloads: the proposal flag ("tail v was proposed to this
// iteration" — the arbitration is who fills proposer[v], and the flag
// itself is a common write) becomes a fetch-OR claim on propBits, and the
// liveness words become deadBits ("v left the graph" is a monotone common
// write, set by the accept winner for both endpoints). The propose loop's
// two liveness reads per arc and the accept loop's proposal filter then
// scan 512 vertices per cache line instead of 16. propBits carries no
// round id, so it is cleared once per iteration in its own O(N/64) round —
// see DESIGN §3e for the bound trade. Winner arbitration is unchanged, so
// results match the word runs. Call it before Prepare, not during a run.
func (k *Kernel) SetBitmap(on bool) { k.bitmap = on }

// Bitmap returns whether the boolean matching state is bit-packed.
func (k *Kernel) Bitmap() bool { return k.bitmap }

// Prepare resets the matching state. Untimed; CAS-LT cells carry over via
// the round offset.
func (k *Kernel) Prepare() {
	if k.base > math.MaxUint32/2 {
		k.m.ParallelRange(k.n, func(lo, hi, _ int) {
			k.propCells.ResetRange(lo, hi)
			k.acceptCells.ResetRange(lo, hi)
		})
		k.base = 0
	}
	if k.bitmap && k.propBits == nil {
		k.propBits = cw.NewBitArray(k.n)
		k.deadBits = cw.NewBitArray(k.n)
	}
	k.m.ParallelRange(k.n, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			k.alive[i] = 1
			k.mate[i] = Unmatched
			k.mateEdge[i] = Unmatched
		}
		if k.bitmap {
			// Everyone alive again; sharded bit clears are word-boundary safe.
			k.deadBits.ResetRange(lo, hi)
		}
	})
}

// splitmix64 hashes per-(seed, iteration, vertex) coin flips.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func head(seed uint64, it uint32, v uint32) bool {
	return splitmix64(seed^uint64(it)<<32^uint64(v))&1 == 1
}

// Run executes the randomized maximal matching with CAS-LT-guarded
// proposal and acceptance writes, under the machine's default execution
// backend. Prepare must have been called first. seed makes the coin flips
// deterministic.
func (k *Kernel) Run(seed uint64) Result {
	return k.RunExec(k.m.Exec(), seed)
}

// RunExec is Run under an explicit execution backend: one SPMD body around
// the whole propose/accept loop, two barriers per iteration (one per level
// of the two-level arbitrary concurrent write). The per-iteration liveness
// word is the region's rotating Flag.
func (k *Kernel) RunExec(e machine.Exec, seed uint64) Result {
	maxIter := 8*bits.Len(uint(k.g.NumArcs()+2)) + 64
	targets := k.g.Targets()
	var rounds uint32
	k.trace = exec.Run(k.m, e, func(ctx exec.Ctx) {
		rec := ctx.Metrics()
		live := ctx.Flag()
		it := uint32(0)
		for {
			live.Set(it+1, 0) // prime next iteration's flag (common CW)
			round := k.base + ctx.NextRound()

			if k.bitmap {
				// The bit claims carry no round id: clear last iteration's
				// proposal bits in their own O(N/64) round before proposing.
				ctx.Range(k.n, func(lo, hi, _ int) { k.propBits.ResetRange(lo, hi) })
			}

			// Level 1 — propose: heads race on each live tail's slot. The
			// liveness flag is accumulated per share (or per stolen chunk —
			// the flag set is an idempotent common write either way).
			propose := func(lo, hi, w int) {
				sh := rec.Shard(w)
				sawLive := false
				for j := lo; j < hi; j++ {
					u := k.arcSrc[j]
					v := targets[j]
					if k.bitmap {
						if k.deadBits.Test(int(u)) || k.deadBits.Test(int(v)) || u == v {
							continue
						}
					} else if k.alive[u] == 0 || k.alive[v] == 0 || u == v {
						continue
					}
					sawLive = true
					if !head(seed, it, u) || head(seed, it, v) {
						continue
					}
					var o cw.Outcome
					if k.bitmap {
						o = k.propBits.TryClaimBitOutcome(int(v))
					} else {
						o = k.propCells.TryClaimOutcome(int(v), round)
					}
					if sh.Claim(int(v), round, o) {
						k.proposer[v] = u
						k.propArc[v] = uint32(j)
					}
				}
				if sawLive {
					live.Set(it, 1)
				}
			}
			if k.steal {
				ctx.StealRange(len(k.arcSrc), propose)
			} else {
				ctx.Range(len(k.arcSrc), propose)
			}

			// Level 2 — accept: proposed-to tails race on their proposer's
			// slot; the winner forms the match and both endpoints die.
			ctx.Range(k.n, func(lo, hi, w int) {
				sh := rec.Shard(w)
				for v := lo; v < hi; v++ {
					if k.bitmap {
						if !k.propBits.Test(v) {
							continue
						}
					} else if !k.propCells.Written(v, round) {
						continue
					}
					u := k.proposer[v]
					if sh.Claim(int(u), round, k.acceptCells.TryClaimOutcome(int(u), round)) {
						j := k.propArc[v]
						k.mate[v] = u
						k.mate[u] = uint32(v)
						k.mateEdge[v] = j
						k.mateEdge[u] = j
						// Dying is a write to the vertex's own cells plus the
						// partner's; the acceptance win makes it exclusive —
						// and in bitmap form a monotone common write (the OR
						// arbitrates only word aliasing with neighbor bits).
						if k.bitmap {
							k.deadBits.Set(v)
							k.deadBits.Set(int(u))
						} else {
							atomic.StoreUint32(&k.alive[v], 0)
							atomic.StoreUint32(&k.alive[u], 0)
						}
					}
				}
			})

			it++
			if live.Get(it-1) == 0 {
				if ctx.Worker() == 0 {
					rounds = it
				}
				break
			}
			if int(it) > maxIter {
				panic(fmt.Sprintf("matching: no convergence after %d iterations (bug or pathological seed)", it))
			}
		}
	})
	k.base += rounds
	return Result{Mate: k.mate, MateEdge: k.mateEdge, Iterations: int(rounds)}
}

// Trace returns the structural record of the kernel's last run under the
// trace backend, or nil if the last run used a timed backend.
func (k *Kernel) Trace() *exec.TraceStats { return k.trace }

// Validate checks that a result is a valid maximal matching of g:
// symmetry, edge-backed pairs (untorn payloads), and maximality (no edge
// joins two unmatched vertices).
func Validate(g *graph.Graph, r Result) error {
	n := g.NumVertices()
	if len(r.Mate) != n || len(r.MateEdge) != n {
		return fmt.Errorf("matching: result arrays sized %d/%d, want %d", len(r.Mate), len(r.MateEdge), n)
	}
	offsets, targets := g.Offsets(), g.Targets()
	for v := 0; v < n; v++ {
		m := r.Mate[v]
		if m == Unmatched {
			if r.MateEdge[v] != Unmatched {
				return fmt.Errorf("matching: unmatched vertex %d has mate edge %d", v, r.MateEdge[v])
			}
			continue
		}
		if int(m) >= n {
			return fmt.Errorf("matching: mate[%d] = %d out of range", v, m)
		}
		if r.Mate[m] != uint32(v) {
			return fmt.Errorf("matching: asymmetric pair %d -> %d -> %d", v, m, r.Mate[m])
		}
		e := r.MateEdge[v]
		if e == Unmatched || int(e) >= g.NumArcs() {
			return fmt.Errorf("matching: matched vertex %d has invalid mate edge %d", v, e)
		}
		if r.MateEdge[m] != e {
			return fmt.Errorf("matching: pair (%d,%d) disagrees on mate edge: %d vs %d (torn payload)", v, m, e, r.MateEdge[m])
		}
		// The arc must join exactly this pair.
		src := arcSource(offsets, e)
		dst := targets[e]
		if !(src == uint32(v) && dst == m) && !(src == m && dst == uint32(v)) {
			return fmt.Errorf("matching: mate edge %d joins (%d,%d), not (%d,%d)", e, src, dst, v, m)
		}
	}
	// Maximality: every edge must have a matched endpoint (self-loops
	// cannot be matched and are exempt).
	for v := 0; v < n; v++ {
		for j := offsets[v]; j < offsets[v+1]; j++ {
			u := targets[j]
			if u == uint32(v) {
				continue
			}
			if r.Mate[v] == Unmatched && r.Mate[u] == Unmatched {
				return fmt.Errorf("matching: edge (%d,%d) joins two unmatched vertices — not maximal", v, u)
			}
		}
	}
	return nil
}

// SequentialGreedy returns a maximal matching built by a greedy edge scan,
// the baseline for size comparisons (any maximal matching is at least half
// the maximum matching).
func SequentialGreedy(g *graph.Graph) Result {
	n := g.NumVertices()
	mate := make([]uint32, n)
	mateEdge := make([]uint32, n)
	for i := range mate {
		mate[i] = Unmatched
		mateEdge[i] = Unmatched
	}
	offsets, targets := g.Offsets(), g.Targets()
	for v := 0; v < n; v++ {
		if mate[v] != Unmatched {
			continue
		}
		for j := offsets[v]; j < offsets[v+1]; j++ {
			u := targets[j]
			if u != uint32(v) && mate[u] == Unmatched {
				mate[v] = u
				mate[u] = uint32(v)
				mateEdge[v] = j
				mateEdge[u] = j
				break
			}
		}
	}
	return Result{Mate: mate, MateEdge: mateEdge, Iterations: 1}
}

// arcSource finds the source vertex of CSR arc e by binary search over the
// offsets array.
func arcSource(offsets []uint32, e uint32) uint32 {
	lo, hi := 0, len(offsets)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if offsets[mid] <= e {
			lo = mid
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}
