package matching

import (
	"testing"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// TestBitmapProducesMaximalMatching validates the bit-packed proposal and
// liveness state across worker counts, backends and seeds.
func TestBitmapProducesMaximalMatching(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"star":  graph.Star(40),
		"path":  graph.Path(101),
		"rmat":  graph.RMAT(7, 400, 0.5, 0.2, 0.2, 6),
		"dense": graph.ConnectedRandom(80, 600, 2),
	}
	for _, p := range []int{1, 2, 4, 8} {
		m := testMachine(t, p)
		for name, g := range graphs {
			k := NewKernel(m, g)
			k.SetBitmap(true)
			for _, e := range []machine.Exec{machine.ExecPool, machine.ExecTeam} {
				for seed := uint64(0); seed < 3; seed++ {
					k.Prepare()
					if err := Validate(g, k.RunExec(e, seed)); err != nil {
						t.Fatalf("p=%d %s %v seed %d: %v", p, name, e, seed, err)
					}
				}
			}
		}
	}
}

// TestBitmapWordParityAtOneWorker: serial arbitration orders coincide, so
// the bitmap run must reproduce the word run's mates, edges and iteration
// count exactly at P=1.
func TestBitmapWordParityAtOneWorker(t *testing.T) {
	m := testMachine(t, 1)
	g := graph.ConnectedRandom(120, 500, 8)
	k := NewKernel(m, g)
	k.Prepare()
	word := k.Run(42)
	mates := append([]uint32(nil), word.Mate...)
	edges := append([]uint32(nil), word.MateEdge...)
	k.SetBitmap(true)
	k.Prepare()
	bm := k.Run(42)
	if word.Iterations != bm.Iterations {
		t.Fatalf("iterations differ: word %d, bitmap %d", word.Iterations, bm.Iterations)
	}
	for v := range mates {
		if mates[v] != bm.Mate[v] || edges[v] != bm.MateEdge[v] {
			t.Fatalf("bitmap run diverged from word run at vertex %d", v)
		}
	}
}

// TestBitmapToggleInterleaved alternates representations across runs on
// one kernel; Prepare must fully reset deadBits each time.
func TestBitmapToggleInterleaved(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.RMAT(7, 500, 0.45, 0.22, 0.22, 3)
	k := NewKernel(m, g)
	for rep := 0; rep < 8; rep++ {
		k.SetBitmap(rep%2 == 0)
		k.Prepare()
		if err := Validate(g, k.Run(uint64(rep))); err != nil {
			t.Fatalf("rep %d (bitmap=%v): %v", rep, k.Bitmap(), err)
		}
	}
}
