package matching

import (
	"testing"
	"testing/quick"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

func testMachine(t *testing.T, p int) *machine.Machine {
	t.Helper()
	m := machine.New(p)
	t.Cleanup(m.Close)
	return m
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":        graph.MustFromEdges(6, nil, true),
		"one-edge":     graph.MustFromEdges(4, []graph.Edge{{U: 1, V: 2}}, true),
		"path":         graph.Path(50),
		"cycle-even":   graph.Cycle(40),
		"cycle-odd":    graph.Cycle(41),
		"star":         graph.Star(60),
		"complete":     graph.Complete(20),
		"grid":         graph.Grid2D(7, 9),
		"random":       graph.ConnectedRandom(200, 800, 21),
		"random-multi": graph.RandomUndirected(150, 400, 31),
		"disconnected": graph.Disjoint(graph.ConnectedRandom(40, 100, 3), 4),
	}
}

func TestSequentialGreedyValid(t *testing.T) {
	for name, g := range testGraphs() {
		if err := Validate(g, SequentialGreedy(g)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunProducesMaximalMatching(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			k.Prepare()
			r := k.Run(99)
			if err := Validate(g, r); err != nil {
				t.Fatalf("p=%d %s: %v", p, name, err)
			}
		}
	}
}

func TestKnownSizes(t *testing.T) {
	m := testMachine(t, 4)
	cases := []struct {
		name string
		g    *graph.Graph
		want int // exact maximal-matching size where forced
	}{
		{"one-edge", graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}}, true), 1},
		{"star", graph.Star(50), 1},  // any maximal matching of a star has one edge
		{"path-4", graph.Path(4), 0}, // size in {1,2}; checked below separately
		{"complete-2", graph.Complete(2), 1},
	}
	for _, c := range cases {
		k := NewKernel(m, c.g)
		k.Prepare()
		r := k.Run(7)
		if err := Validate(c.g, r); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if c.want > 0 && r.Size() != c.want {
			t.Fatalf("%s: size %d, want %d", c.name, r.Size(), c.want)
		}
	}
	// Half-approximation bound vs the greedy baseline on a bigger input:
	// any maximal matching is >= 1/2 maximum >= 1/2 any other maximal.
	g := graph.ConnectedRandom(300, 1200, 5)
	k := NewKernel(m, g)
	k.Prepare()
	r := k.Run(11)
	greedy := SequentialGreedy(g)
	if 2*r.Size() < greedy.Size() {
		t.Fatalf("parallel matching size %d < half of greedy %d", r.Size(), greedy.Size())
	}
}

func TestRepeatedRunsAndSeeds(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(150, 600, 13)
	k := NewKernel(m, g)
	for seed := uint64(0); seed < 15; seed++ {
		k.Prepare()
		r := k.Run(seed)
		if err := Validate(g, r); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDeterministicAtOneWorker(t *testing.T) {
	m := testMachine(t, 1)
	g := graph.ConnectedRandom(120, 400, 17)
	k := NewKernel(m, g)
	k.Prepare()
	r1 := k.Run(5)
	mates := append([]uint32(nil), r1.Mate...)
	k.Prepare()
	r2 := k.Run(5)
	for v := range mates {
		if mates[v] != r2.Mate[v] {
			t.Fatalf("p=1 runs with same seed differ at vertex %d", v)
		}
	}
}

func TestDirectedRejected(t *testing.T) {
	m := testMachine(t, 1)
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("directed graph accepted")
		}
	}()
	NewKernel(m, g)
}

func TestValidateRejectsCorruption(t *testing.T) {
	m := testMachine(t, 2)
	g := graph.Cycle(10)
	k := NewKernel(m, g)
	fresh := func() Result {
		k.Prepare()
		return k.Run(3)
	}

	r := fresh()
	if err := Validate(g, r); err != nil {
		t.Fatalf("clean result rejected: %v", err)
	}

	// Break symmetry.
	r = fresh()
	for v, mt := range r.Mate {
		if mt != Unmatched {
			r.Mate[v] = uint32((int(mt) + 1) % g.NumVertices())
			break
		}
	}
	if Validate(g, r) == nil {
		t.Fatal("asymmetric matching accepted")
	}

	// Un-match a pair: maximality must fail on its edge.
	r = fresh()
	for v, mt := range r.Mate {
		if mt != Unmatched {
			u := mt
			r.Mate[v], r.Mate[u] = Unmatched, Unmatched
			r.MateEdge[v], r.MateEdge[u] = Unmatched, Unmatched
			break
		}
	}
	if Validate(g, r) == nil {
		t.Fatal("non-maximal matching accepted")
	}

	// Torn payload: endpoints disagree on the mate edge.
	r = fresh()
	for v, mt := range r.Mate {
		if mt != Unmatched {
			r.MateEdge[v] = (r.MateEdge[v] + 1) % uint32(g.NumArcs())
			break
		}
	}
	if Validate(g, r) == nil {
		t.Fatal("torn mate-edge payload accepted")
	}
}

// Property: valid maximal matching on random multigraphs for random seeds
// and both worker counts.
func TestQuickMaximalMatching(t *testing.T) {
	m := testMachine(t, 4)
	f := func(nRaw uint8, mRaw uint16, seed int64, coinSeed uint64) bool {
		n := int(nRaw)%120 + 2
		edges := int(mRaw) % 400
		g := graph.RandomUndirected(n, edges, seed)
		k := NewKernel(m, g)
		k.Prepare()
		return Validate(g, k.Run(coinSeed)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
