package mis

import (
	"testing"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// TestSoakRandomizedGraphs drives the common-CW kill step across many
// random graphs, methods, seeds and worker counts. Independence violations
// from racy kill/select interleavings would be timing-dependent, so volume
// is the point. Skipped in -short mode.
func TestSoakRandomizedGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, p := range []int{2, 4, 8} {
		m := machine.New(p)
		for trial := 0; trial < 120; trial++ {
			seed := int64(p*3000 + trial)
			n := 20 + trial%180
			edges := (trial % 6) * n
			var g *graph.Graph
			if trial%2 == 0 {
				g = graph.RandomUndirected(n, edges, seed)
			} else {
				g = graph.ConnectedRandom(n, edges+n, seed)
			}
			k := NewKernel(m, g)
			method := guardedMethods[trial%len(guardedMethods)]
			k.Prepare()
			if err := Validate(g, k.Run(method, uint64(seed))); err != nil {
				t.Fatalf("p=%d trial %d %v: %v", p, trial, method, err)
			}
		}
		m.Close()
	}
}
