package mis

import (
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
)

// instance adapts Kernel to the registry's Instance contract. The returned
// membership vector aliases kernel state (valid until the next Prepare),
// which Outcome permits.
type instance struct {
	k    *Kernel
	g    *graph.Graph
	seed uint64
	last []uint32
}

func (in *instance) Prepare(kernel.Settings) { in.k.Prepare() }

func (in *instance) Run(s kernel.Settings) kernel.Outcome {
	in.last = in.k.RunExec(s.Exec, s.Method, in.seed)
	return kernel.Outcome{Vector: in.last}
}

func (in *instance) Validate() error { return Validate(in.g, in.last) }

func (in *instance) Trace() *exec.TraceStats { return in.k.Trace() }

func init() {
	kernel.Register(kernel.Descriptor{
		Name:       "mis",
		Pkg:        "mis",
		Summary:    "Luby-style maximal independent set, seeded priorities",
		Methods:    cw.Methods,
		Input:      kernel.InputGraph,
		Symmetric:  true,
		Contention: kernel.ContentionGuarded,
		New: func(m *machine.Machine, w kernel.Workload) kernel.Instance {
			return &instance{k: NewKernel(m, w.Graph), g: w.Graph, seed: w.Seed}
		},
	})
}
