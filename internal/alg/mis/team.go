package mis

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
)

// This file ports Luby's MIS to the machine's team execution mode: one
// persistent parallel region around the whole round loop. Each round is the
// same select / commit / kill (/ gate-reset) sequence as the pool driver,
// expressed as tc.Range rounds at one team barrier each; the liveness word
// becomes a rotating machine.TeamFlag.

// RunTeam executes Luby's algorithm with the given concurrent-write method
// inside one team region. Prepare must have been called first; seed makes
// the priorities deterministic. Semantics and round-id bookkeeping match
// Run exactly; the returned slice aliases kernel state valid until the next
// Prepare.
func (k *Kernel) RunTeam(method cw.Method, seed uint64) []uint32 {
	kill := k.killFunc(method)
	needsReset := method.NeedsReset()
	offsets, targets := k.g.Offsets(), k.g.Targets()
	maxIter := 8*bits.Len(uint(k.n)) + 64
	var anyLive machine.TeamFlag
	var rounds uint32
	k.m.Team(func(tc *machine.TeamCtx) {
		it := uint32(0)
		for {
			anyLive.Set(it+1, 0) // prime next round's flag (common CW)
			round := k.base + it + 1

			// Select: a live vertex joins iff its priority beats every live
			// neighbour's. Reads only; live is stable within the phase.
			// Sharded by arcs, matching the pool driver.
			tc.Bounds(k.arcBounds, func(lo, hi int) {
				sawLive := false
				for v := lo; v < hi; v++ {
					if k.live[v] == 0 {
						continue
					}
					sawLive = true
					mine := prio(seed, it, uint32(v))
					wins := true
					for j := offsets[v]; j < offsets[v+1]; j++ {
						u := targets[j]
						if u != uint32(v) && k.live[u] == 1 && prio(seed, it, u) < mine {
							wins = false
							break
						}
					}
					if wins {
						k.joins[v] = 1 // exclusive write to own cell
					}
				}
				if sawLive {
					anyLive.Set(it, 1)
				}
			})
			if anyLive.Get(it) == 0 {
				if tc.W == 0 {
					rounds = it + 1 // one select phase per consumed round id
				}
				break
			}

			// Commit winners: own-cell exclusive writes.
			tc.Range(k.n, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					if k.joins[v] == 1 {
						k.joins[v] = 0
						k.inSet[v] = 1
						k.live[v] = 0
					}
				}
			})

			// Kill neighbourhoods: the common concurrent write under study.
			tc.Range(len(k.arcSrc), func(lo, hi int) {
				for j := lo; j < hi; j++ {
					u := k.arcSrc[j]
					if k.inSet[u] == 0 {
						continue
					}
					v := targets[j]
					if atomic.LoadUint32(&k.live[v]) == 1 {
						kill(int(v), round)
					}
				}
			})
			if needsReset {
				tc.Range(k.n, func(lo, hi int) { k.gates.ResetRange(lo, hi) })
			}

			it++
			if int(it) > maxIter {
				panic(fmt.Sprintf("mis: no convergence after %d iterations (bug)", it))
			}
		}
	})
	k.base += rounds
	return k.inSet
}
