package mis

import (
	"testing"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/graph"
	"crcwpram/internal/race"
)

func TestTeamGuardedMethodsProduceValidMIS(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			for _, method := range guardedMethods {
				k.Prepare()
				inSet := k.RunTeam(method, 77)
				if err := Validate(g, inSet); err != nil {
					t.Fatalf("p=%d %s %v: %v", p, name, method, err)
				}
			}
		}
	}
}

func TestTeamNaiveProducesValidMIS(t *testing.T) {
	if race.Enabled {
		t.Skip("naive variant is intentionally racy (benign common CW); skipped under -race")
	}
	m := testMachine(t, 4)
	for name, g := range testGraphs() {
		k := NewKernel(m, g)
		k.Prepare()
		if err := Validate(g, k.RunTeam(cw.Naive, 3)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestTeamAgreesWithPool: the priorities are deterministic in (seed,
// iteration, vertex) and the select/commit structure is unchanged, so pool
// and team runs from the same seed compute the same set.
func TestTeamAgreesWithPool(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(250, 900, 61)
	k := NewKernel(m, g)
	for _, seed := range []uint64{1, 77, 4242} {
		k.Prepare()
		pool := append([]uint32(nil), k.Run(cw.CASLT, seed)...)
		k.Prepare()
		team := k.RunTeam(cw.CASLT, seed)
		for v := range pool {
			if pool[v] != team[v] {
				t.Fatalf("seed %d inSet[%d]: pool %d, team %d", seed, v, pool[v], team[v])
			}
		}
	}
}

func TestTeamRepeatedAndInterleavedWithPool(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(200, 700, 67)
	k := NewKernel(m, g)
	for rep := 0; rep < 8; rep++ {
		k.Prepare()
		var inSet []uint32
		if rep%2 == 0 {
			inSet = k.RunTeam(cw.CASLT, uint64(rep))
		} else {
			inSet = k.Run(cw.CASLT, uint64(rep))
		}
		if err := Validate(g, inSet); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}
