// Package mis implements Luby's randomized maximal-independent-set
// algorithm, a fourth classic CRCW PRAM kernel in the mould of the paper's
// benchmarks: its per-round "kill the neighbourhood" step is a *common*
// concurrent write (every writer stores the same value, "dead"), so the
// package provides one variant per concurrent-write method, exactly as the
// paper structured its kernels.
//
// Each round, every live vertex draws a deterministic pseudo-random
// priority; a vertex joins the set iff its priority beats every live
// neighbour's (a pure concurrent-read step), then the winners and their
// neighbourhoods leave the graph — the winners by an exclusive write to
// their own cell, the neighbourhoods by the common concurrent write that
// the methods under study guard:
//
//   - Naive:      plain stores (safe here: common CW of one word — the
//     same argument as the paper's BFS visited flags);
//   - CASLT:      one winner per victim per round, everyone else skips;
//   - Gatekeeper: fetch-and-add per attempt plus the O(N) reset pass per
//     round;
//   - Mutex:      per-victim critical section.
//
// Expected O(log n) rounds; results are validated for independence and
// maximality against the graph.
package mis

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
	"crcwpram/internal/graph"
)

// Kernel holds the shared arrays for repeated MIS runs over one graph.
type Kernel struct {
	m *machine.Machine
	g *graph.Graph
	n int

	live      []uint32
	inSet     []uint32
	joins     []uint32
	arcSrc    []uint32
	arcBounds []int // equal-arc vertex shards for the select phases

	cells *cw.Array
	gates *cw.GateArray
	mtx   *cw.MutexArray

	base  uint32
	trace *exec.TraceStats // structural record of the last trace-backend run
}

// NewKernel returns an MIS kernel over g executed on m. g must be
// undirected (both arc directions stored) so that the neighbour-priority
// comparison is symmetric.
func NewKernel(m *machine.Machine, g *graph.Graph) *Kernel {
	if !g.Undirected() {
		panic("mis: kernel requires an undirected graph")
	}
	n := g.NumVertices()
	k := &Kernel{
		m:      m,
		g:      g,
		n:      n,
		live:   make([]uint32, n),
		inSet:  make([]uint32, n),
		joins:  make([]uint32, n),
		arcSrc: make([]uint32, g.NumArcs()),
		cells:  cw.NewArray(n, cw.Packed),
		gates:  cw.NewGateArray(n, cw.Packed),
		mtx:    cw.NewMutexArray(n),
	}
	// Both the arc-source precompute and every select phase walk each
	// vertex's whole adjacency list, so they are sharded by arcs
	// (graph.ArcBounds), not vertices; the shards are static for the
	// kernel's lifetime and shared by the pool and team drivers.
	k.arcBounds = graph.ArcBounds(g, m.P())
	offsets := g.Offsets()
	m.ParallelBounds(k.arcBounds, func(lo, hi, _ int) {
		for v := lo; v < hi; v++ {
			for j := offsets[v]; j < offsets[v+1]; j++ {
				k.arcSrc[j] = uint32(v)
			}
		}
	})
	return k
}

// Prepare resets the kernel state. Untimed; CAS-LT cells carry over via
// the round offset.
func (k *Kernel) Prepare() {
	if k.base > 1<<31 {
		k.m.ParallelRange(k.n, func(lo, hi, _ int) { k.cells.ResetRange(lo, hi) })
		k.base = 0
	}
	k.m.ParallelRange(k.n, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			k.live[i] = 1
			k.inSet[i] = 0
			k.joins[i] = 0
		}
		k.gates.ResetRange(lo, hi)
	})
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// prio returns vertex v's priority for iteration it: lexicographic
// (hash, id), a total order, so two adjacent vertices can never both win.
func prio(seed uint64, it uint32, v uint32) uint64 {
	return splitmix64(seed^uint64(it)<<32^uint64(v))<<32 | uint64(v)
}

// Run executes Luby's algorithm with the given concurrent-write method for
// the neighbourhood-kill writes, under the machine's default execution
// backend. Prepare must have been called first; seed makes the priorities
// deterministic. The returned slice (1 = in the set) aliases kernel state
// valid until the next Prepare.
func (k *Kernel) Run(method cw.Method, seed uint64) []uint32 {
	return k.RunExec(k.m.Exec(), method, seed)
}

// RunExec is Run under an explicit execution backend. The round loop is one
// SPMD body: the liveness word is the region's rotating Flag, round ids
// come from the worker-local NextRound counter (offset by the kernel's
// base), and the consumed-round count is captured by worker 0 for the
// caller-side base advance.
func (k *Kernel) RunExec(e machine.Exec, method cw.Method, seed uint64) []uint32 {
	kill := k.killFunc(method)
	needsReset := method.NeedsReset()
	offsets, targets := k.g.Offsets(), k.g.Targets()
	maxIter := 8*bits.Len(uint(k.n)) + 64
	var rounds uint32
	k.trace = exec.Run(k.m, e, func(ctx exec.Ctx) {
		rec := ctx.Metrics()
		anyLive := ctx.Flag()
		it := uint32(0)
		for {
			anyLive.Set(it+1, 0) // prime next round's flag (common CW)
			round := k.base + ctx.NextRound()

			// Select: a live vertex joins iff its priority beats every live
			// neighbour's. Reads only; live is stable within the phase. The
			// phase's cost is the arc scan, so it runs over the equal-arc
			// shards.
			ctx.Bounds(k.arcBounds, func(lo, hi, _ int) {
				sawLive := false
				for v := lo; v < hi; v++ {
					if k.live[v] == 0 {
						continue
					}
					sawLive = true
					mine := prio(seed, it, uint32(v))
					wins := true
					for j := offsets[v]; j < offsets[v+1]; j++ {
						u := targets[j]
						if u != uint32(v) && k.live[u] == 1 && prio(seed, it, u) < mine {
							wins = false
							break
						}
					}
					if wins {
						k.joins[v] = 1 // exclusive write to own cell
					}
				}
				if sawLive {
					anyLive.Set(it, 1)
				}
			})
			if anyLive.Get(it) == 0 {
				if ctx.Worker() == 0 {
					rounds = it + 1 // one select phase per consumed round id
				}
				break
			}

			// Commit winners: own-cell exclusive writes.
			ctx.Range(k.n, func(lo, hi, _ int) {
				for v := lo; v < hi; v++ {
					if k.joins[v] == 1 {
						k.joins[v] = 0
						k.inSet[v] = 1
						k.live[v] = 0
					}
				}
			})

			// Kill neighbourhoods: the common concurrent write under study.
			// Arcs out of fresh set members all store "dead" into the
			// neighbour's cell.
			ctx.Range(len(k.arcSrc), func(lo, hi, w int) {
				sh := rec.Shard(w)
				for j := lo; j < hi; j++ {
					u := k.arcSrc[j]
					if k.inSet[u] == 0 {
						continue
					}
					v := targets[j]
					if atomic.LoadUint32(&k.live[v]) == 1 {
						kill(sh, int(v), round)
					}
				}
			})
			if needsReset {
				ctx.Range(k.n, func(lo, hi, _ int) { k.gates.ResetRange(lo, hi) })
			}

			it++
			if int(it) > maxIter {
				panic(fmt.Sprintf("mis: no convergence after %d iterations (bug)", it))
			}
		}
	})
	k.base += rounds
	return k.inSet
}

// Trace returns the structural record of the kernel's last run under the
// trace backend, or nil if the last run used a timed backend.
func (k *Kernel) Trace() *exec.TraceStats { return k.trace }

// killFunc returns the guarded common write `live[v] = 0` for the method.
// Each variant reports its attempt to the worker's metrics shard (nil under
// metrics-off). Naive and Mutex always execute their store, so they record
// OutcomeWin unconditionally; the guarded methods record whatever the guard
// decided. All pass the kernel's real round so the per-cell probe restarts
// its count each round.
func (k *Kernel) killFunc(method cw.Method) func(sh *metrics.Shard, v int, round uint32) {
	switch method {
	case cw.Naive:
		return func(sh *metrics.Shard, v int, round uint32) {
			sh.Claim(v, round, cw.OutcomeWin) // every issued store executes
			k.live[v] = 0                     // common CW: every writer stores 0
		}
	case cw.CASLT:
		return func(sh *metrics.Shard, v int, round uint32) {
			if sh.Claim(v, round, k.cells.TryClaimOutcome(v, round)) {
				atomic.StoreUint32(&k.live[v], 0)
			}
		}
	case cw.Gatekeeper:
		return func(sh *metrics.Shard, v int, round uint32) {
			if sh.Claim(v, round, k.gates.TryEnterOutcome(v)) {
				atomic.StoreUint32(&k.live[v], 0)
			}
		}
	case cw.GatekeeperChecked:
		return func(sh *metrics.Shard, v int, round uint32) {
			if sh.Claim(v, round, k.gates.TryEnterCheckedOutcome(v)) {
				atomic.StoreUint32(&k.live[v], 0)
			}
		}
	case cw.Mutex:
		return func(sh *metrics.Shard, v int, round uint32) {
			k.mtx.Lock(v)
			// Atomic store: the pre-check loads of other arcs do not take
			// the victim's lock.
			atomic.StoreUint32(&k.live[v], 0)
			k.mtx.Unlock(v)
			sh.Claim(v, round, cw.OutcomeWin) // every acquisition writes
		}
	default:
		panic("mis: unknown method " + method.String())
	}
}

// kill sites read live[v] with an atomic load in the guarded paths because
// the winner's store races with other arcs' pre-checks; the naive variant
// reproduces the plain-store Rodinia idiom and is skipped under -race.

// Validate checks that inSet is a maximal independent set of g:
// independence (no two set members adjacent, self-loops exempt) and
// maximality (every non-member has a member neighbour, unless its only
// edges are self-loops or it is isolated — then it must be a member).
func Validate(g *graph.Graph, inSet []uint32) error {
	n := g.NumVertices()
	if len(inSet) != n {
		return fmt.Errorf("mis: result sized %d, want %d", len(inSet), n)
	}
	offsets, targets := g.Offsets(), g.Targets()
	for v := 0; v < n; v++ {
		if inSet[v] == 1 {
			for j := offsets[v]; j < offsets[v+1]; j++ {
				u := targets[j]
				if u != uint32(v) && inSet[u] == 1 {
					return fmt.Errorf("mis: adjacent members %d and %d", v, u)
				}
			}
			continue
		}
		covered := false
		for j := offsets[v]; j < offsets[v+1]; j++ {
			u := targets[j]
			if u != uint32(v) && inSet[u] == 1 {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("mis: non-member %d has no member neighbour — not maximal", v)
		}
	}
	return nil
}

// SequentialGreedy returns the lexicographic greedy MIS, the baseline.
func SequentialGreedy(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	inSet := make([]uint32, n)
	blocked := make([]bool, n)
	offsets, targets := g.Offsets(), g.Targets()
	for v := 0; v < n; v++ {
		if blocked[v] {
			continue
		}
		inSet[v] = 1
		for j := offsets[v]; j < offsets[v+1]; j++ {
			if targets[j] != uint32(v) {
				blocked[targets[j]] = true
			}
		}
	}
	return inSet
}
