package mis

import (
	"testing"
	"testing/quick"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/race"
)

var guardedMethods = []cw.Method{cw.CASLT, cw.Gatekeeper, cw.GatekeeperChecked, cw.Mutex}

func testMachine(t *testing.T, p int) *machine.Machine {
	t.Helper()
	m := machine.New(p)
	t.Cleanup(m.Close)
	return m
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":        graph.MustFromEdges(5, nil, true),
		"one-edge":     graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 2}}, true),
		"self-loops":   graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 0}, {U: 1, V: 2}}, true),
		"path":         graph.Path(60),
		"cycle":        graph.Cycle(45),
		"star":         graph.Star(70),
		"complete":     graph.Complete(25),
		"grid":         graph.Grid2D(8, 9),
		"random":       graph.ConnectedRandom(250, 900, 61),
		"random-multi": graph.RandomUndirected(180, 500, 67),
		"disconnected": graph.Disjoint(graph.ConnectedRandom(50, 120, 7), 3),
	}
}

func TestSequentialGreedyValid(t *testing.T) {
	for name, g := range testGraphs() {
		if err := Validate(g, SequentialGreedy(g)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestGuardedMethodsProduceValidMIS(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			for _, method := range guardedMethods {
				k.Prepare()
				inSet := k.Run(method, 77)
				if err := Validate(g, inSet); err != nil {
					t.Fatalf("p=%d %s %v: %v", p, name, method, err)
				}
			}
		}
	}
}

func TestNaiveProducesValidMIS(t *testing.T) {
	if race.Enabled {
		t.Skip("naive variant is intentionally racy (benign common CW); skipped under -race")
	}
	m := testMachine(t, 4)
	for name, g := range testGraphs() {
		k := NewKernel(m, g)
		k.Prepare()
		if err := Validate(g, k.Run(cw.Naive, 3)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestKnownStructures(t *testing.T) {
	m := testMachine(t, 4)
	// Complete graph: exactly one member.
	k := NewKernel(m, graph.Complete(20))
	k.Prepare()
	inSet := k.Run(cw.CASLT, 5)
	count := 0
	for _, s := range inSet {
		count += int(s)
	}
	if count != 1 {
		t.Fatalf("complete graph MIS size %d, want 1", count)
	}
	// Star: either the hub alone or all leaves.
	k = NewKernel(m, graph.Star(30))
	k.Prepare()
	inSet = k.Run(cw.CASLT, 5)
	if inSet[0] == 1 {
		for v := 1; v < 30; v++ {
			if inSet[v] == 1 {
				t.Fatal("hub and leaf both in set")
			}
		}
	} else {
		for v := 1; v < 30; v++ {
			if inSet[v] != 1 {
				t.Fatalf("hub excluded but leaf %d missing", v)
			}
		}
	}
	// Empty graph: everyone is a member.
	k = NewKernel(m, graph.MustFromEdges(7, nil, true))
	k.Prepare()
	inSet = k.Run(cw.CASLT, 5)
	for v, s := range inSet {
		if s != 1 {
			t.Fatalf("isolated vertex %d not in MIS", v)
		}
	}
}

func TestRepeatedRunsAndSeeds(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(200, 700, 71)
	k := NewKernel(m, g)
	for seed := uint64(0); seed < 10; seed++ {
		for _, method := range guardedMethods {
			k.Prepare()
			if err := Validate(g, k.Run(method, seed)); err != nil {
				t.Fatalf("seed %d %v: %v", seed, method, err)
			}
		}
	}
}

func TestDeterministicAtOneWorker(t *testing.T) {
	m := testMachine(t, 1)
	g := graph.ConnectedRandom(150, 500, 73)
	k := NewKernel(m, g)
	k.Prepare()
	r1 := append([]uint32(nil), k.Run(cw.CASLT, 9)...)
	k.Prepare()
	r2 := k.Run(cw.CASLT, 9)
	for v := range r1 {
		if r1[v] != r2[v] {
			t.Fatalf("same-seed p=1 runs differ at %d", v)
		}
	}
}

func TestDirectedRejected(t *testing.T) {
	m := testMachine(t, 1)
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("directed graph accepted")
		}
	}()
	NewKernel(m, g)
}

func TestValidateRejectsCorruption(t *testing.T) {
	g := graph.Path(6)
	inSet := SequentialGreedy(g) // {0,2,4}
	if err := Validate(g, inSet); err != nil {
		t.Fatal(err)
	}
	bad := append([]uint32(nil), inSet...)
	bad[1] = 1 // adjacent to 0 and 2
	if Validate(g, bad) == nil {
		t.Fatal("dependent set accepted")
	}
	bad = append([]uint32(nil), inSet...)
	bad[4] = 0 // 3,4,5 now uncovered around 4? vertex 5 loses its only member neighbour
	if Validate(g, bad) == nil {
		t.Fatal("non-maximal set accepted")
	}
	if Validate(g, inSet[:3]) == nil {
		t.Fatal("short result accepted")
	}
}

// Property: every guarded method yields a valid MIS on random multigraphs.
func TestQuickValidMIS(t *testing.T) {
	m := testMachine(t, 4)
	f := func(nRaw uint8, mRaw uint16, seed int64, prioSeed uint64, mi uint8) bool {
		n := int(nRaw)%120 + 2
		edges := int(mRaw) % 400
		g := graph.RandomUndirected(n, edges, seed)
		k := NewKernel(m, g)
		k.Prepare()
		method := guardedMethods[int(mi)%len(guardedMethods)]
		return Validate(g, k.Run(method, prioSeed)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
