package listrank

import (
	"testing"
	"testing/quick"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/memcheck"
)

func testMachine(t *testing.T, p int) *machine.Machine {
	t.Helper()
	m := machine.New(p)
	t.Cleanup(m.Close)
	return m
}

func TestSequentialRankSimple(t *testing.T) {
	// List 2 -> 0 -> 1 (tail 1).
	next := []uint32{1, Nil, 0}
	want := []uint32{1, 0, 2}
	got := SequentialRank(next)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SequentialRank = %v, want %v", got, want)
		}
	}
}

func TestRankMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for _, n := range []int{0, 1, 2, 3, 8, 100, 1000, 1023} {
			next := RandomList(n, int64(n)+3)
			want := SequentialRank(next)
			got := Rank(m, next)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d n=%d: rank[%d] = %d, want %d", p, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRankForest(t *testing.T) {
	m := testMachine(t, 4)
	next := RandomForest([]int{1, 2, 10, 57, 100}, 5)
	want := SequentialRank(next)
	got := Rank(m, next)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRankRejectsMalformedInputs(t *testing.T) {
	m := testMachine(t, 2)
	cases := map[string][]uint32{
		"out of range":     {5, Nil},
		"self loop":        {0, Nil},
		"shared successor": {2, 2, Nil},
		"two-cycle":        {1, 0},
		"cycle plus chain": {1, 2, 0, 0},
	}
	for name, next := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: accepted %v", name, next)
				}
			}()
			Rank(m, next)
		}()
	}
}

// Wyllie's algorithm is EREW: run it over memcheck-instrumented arrays and
// assert zero violations under the strictest access mode.
func TestRankIsEREW(t *testing.T) {
	const n = 64
	m := testMachine(t, 4)
	next := RandomList(n, 9)

	rank := memcheck.New(memcheck.EREW, n)
	succ := memcheck.New(memcheck.EREW, n)
	nextRank := memcheck.New(memcheck.EREW, n)
	nextSucc := memcheck.New(memcheck.EREW, n)
	step := func() {
		rank.NextRound()
		succ.NextRound()
		nextRank.NextRound()
		nextSucc.NextRound()
	}

	m.ParallelFor(n, func(i int) {
		succ.Write(i, next[i])
		if next[i] != Nil {
			rank.Write(i, 1)
		}
	})
	for reach := 1; reach < n; reach *= 2 {
		step()
		// Split each jumping round into a read phase and a write phase so
		// the checker's mixed-read/write rule is respected, mirroring the
		// double buffering of the real kernel.
		rs := make([]uint32, n)
		ss := make([]uint32, n)
		m.ParallelFor(n, func(i int) {
			ss[i] = succ.Read(i)
			rs[i] = rank.Read(i)
		})
		step()
		m.ParallelFor(n, func(i int) {
			s := ss[i]
			if s == Nil {
				nextRank.Write(i, rs[i])
				nextSucc.Write(i, Nil)
				return
			}
			// Reads of the successor's state: distinct successors, so
			// exclusive.
			nextRank.Write(i, rs[i]+rank.Read(int(s)))
			nextSucc.Write(i, succ.Read(int(s)))
		})
		step()
		m.ParallelFor(n, func(i int) {
			rank.Write(i, nextRank.Read(i))
			succ.Write(i, nextSucc.Read(i))
		})
	}
	for _, a := range []*memcheck.Array{rank, succ, nextRank, nextSucc} {
		if !a.Ok() {
			t.Fatalf("EREW violation in list ranking: %v", a.Violations())
		}
	}
	want := SequentialRank(next)
	got := rank.Data()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checked rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// Property: parallel ranks equal sequential ranks on random forests.
func TestQuickRankCorrect(t *testing.T) {
	m := testMachine(t, 4)
	f := func(sizesRaw []uint8, seed int64) bool {
		if len(sizesRaw) > 12 {
			sizesRaw = sizesRaw[:12]
		}
		sizes := make([]int, 0, len(sizesRaw))
		for _, s := range sizesRaw {
			sizes = append(sizes, int(s)%80+1)
		}
		next := RandomForest(sizes, seed)
		want := SequentialRank(next)
		got := Rank(m, next)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
