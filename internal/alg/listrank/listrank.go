// Package listrank implements Wyllie's list-ranking algorithm — the
// canonical EREW PRAM pointer-jumping kernel — on the PRAM machine.
//
// The paper's conclusion proposes "performance comparisons of EREW or CREW
// PRAM algorithms-based implementations currently in use, against relevant
// implementations of CRCW PRAM algorithms with better Work-Depth asymptotic
// complexities". This package supplies the EREW side of that comparison
// (list ranking uses no concurrent writes at all: in every round each node
// writes only its own rank and successor, and reads only its unique
// successor's state) and doubles as a second consumer of the machine's
// lock-step rounds.
//
// Given a linked list as a successor array (next[i] is i's successor, the
// tail's successor is Nil), Rank computes each node's distance to the tail
// in D(log N) rounds of W(N) work each: rank and successor double in reach
// every round. Reads-before-writes is respected with double buffering,
// keeping the kernel exactly EREW — which the tests verify through the
// memcheck access checker.
package listrank

import (
	"fmt"
	"math"
	"math/rand"

	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
)

// Nil marks the end of a list (the tail's successor) in successor arrays.
const Nil = math.MaxUint32

// Rank returns, for every node of every list in the successor array, its
// distance to its list's tail (tail = 0), under the machine's default
// execution backend. next must be a valid successor forest: every value is
// Nil or an in-range index, and no two nodes share a successor (each node
// has at most one predecessor). Rank validates these preconditions and
// panics on violations, since pointer jumping on a malformed "list" (a rho
// shape) never terminates.
func Rank(m *machine.Machine, next []uint32) []uint32 {
	return RankExec(m, m.Exec(), next)
}

// RankExec is Rank under an explicit execution backend. The round loop is
// one SPMD body: the trip count depends only on n, and the double-buffer
// swaps happen on worker-local slice headers, so every worker agrees on
// which buffer is current in every round.
func RankExec(m *machine.Machine, e machine.Exec, next []uint32) []uint32 {
	ranks, _ := RankExecTrace(m, e, next)
	return ranks
}

// RankExecTrace is RankExec additionally returning the structural record
// of the run — non-nil only under machine.ExecTrace (the kernel holds no
// state between calls, so the trace is returned rather than stored).
func RankExecTrace(m *machine.Machine, e machine.Exec, next []uint32) ([]uint32, *exec.TraceStats) {
	n := len(next)
	validate(next)
	if n == 0 {
		return make([]uint32, 0), nil
	}
	bufRank := make([]uint32, n)
	bufSucc := make([]uint32, n)
	bufNextRank := make([]uint32, n)
	bufNextSucc := make([]uint32, n)

	var res []uint32
	trace := exec.Run(m, e, func(ctx exec.Ctx) {
		rec := ctx.Metrics()
		rank, succ := bufRank, bufSucc
		nextRank, nextSucc := bufNextRank, bufNextSucc

		// Round 0: rank 1 for every node with a successor, 0 for tails.
		ctx.For(n, func(i int) {
			succ[i] = next[i]
			if next[i] != Nil {
				rank[i] = 1
			}
		})

		// ceil(log2(n)) pointer-jumping rounds suffice: reach doubles.
		for reach := 1; reach < n; reach *= 2 {
			if ctx.Worker() == 0 {
				rec.AddRounds(1) // EREW rounds: no round ids, count the jumps
			}
			r, s, nr, ns := rank, succ, nextRank, nextSucc
			ctx.For(n, func(i int) {
				si := s[i]
				if si == Nil {
					nr[i] = r[i]
					ns[i] = Nil
					return
				}
				nr[i] = r[i] + r[si]
				ns[i] = s[si]
			})
			rank, nextRank = nextRank, rank
			succ, nextSucc = nextSucc, succ
		}
		// Worker 0 publishes which buffer holds the final ranks; the
		// region-closing barrier orders the write before the caller's read.
		if ctx.Worker() == 0 {
			res = rank
		}
	})
	return res, trace
}

// validate panics unless next is a successor forest (see Rank).
func validate(next []uint32) {
	n := len(next)
	predecessors := make([]uint32, n)
	for i, s := range next {
		if s == Nil {
			continue
		}
		if int(s) >= n {
			panic(fmt.Sprintf("listrank: next[%d] = %d out of range", i, s))
		}
		if uint32(i) == s {
			panic(fmt.Sprintf("listrank: node %d is its own successor", i))
		}
		predecessors[s]++
		if predecessors[s] > 1 {
			panic(fmt.Sprintf("listrank: node %d has multiple predecessors", s))
		}
	}
	// In-degree <= 1 and no self-loops still admit cycles (every node of a
	// cycle has in-degree exactly 1); reject them by checking that every
	// chain reaches Nil within n steps from some head. Equivalently: the
	// number of tails must equal the number of heads, and following any
	// head must terminate. Cheapest sound check: count nodes reachable
	// from heads; a cycle's nodes are reachable from no head.
	reached := 0
	for i := range next {
		if predecessors[i] == 0 { // head of a chain
			for j := uint32(i); j != Nil; j = next[j] {
				reached++
			}
		}
	}
	if reached != n {
		panic(fmt.Sprintf("listrank: successor array contains a cycle (%d of %d nodes on proper chains)", reached, n))
	}
}

// SequentialRank is the O(N) baseline: walk each list once from its head.
func SequentialRank(next []uint32) []uint32 {
	n := len(next)
	rank := make([]uint32, n)
	pred := make([]bool, n)
	for _, s := range next {
		if s != Nil {
			pred[s] = true
		}
	}
	order := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		if !pred[i] {
			// Collect the chain from head i, then rank back to front.
			order = order[:0]
			for j := uint32(i); j != Nil; j = next[j] {
				order = append(order, j)
			}
			for k, node := range order {
				rank[node] = uint32(len(order) - 1 - k)
			}
		}
	}
	return rank
}

// RandomList returns a successor array encoding one list over n nodes in a
// uniformly random order, deterministic in seed.
func RandomList(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	next := make([]uint32, n)
	for i := range next {
		next[i] = Nil
	}
	for k := 0; k+1 < n; k++ {
		next[perm[k]] = uint32(perm[k+1])
	}
	return next
}

// RandomForest returns a successor array encoding lists of the given sizes
// over a randomly permuted node set, deterministic in seed.
func RandomForest(sizes []int, seed int64) []uint32 {
	n := 0
	for _, s := range sizes {
		n += s
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	next := make([]uint32, n)
	for i := range next {
		next[i] = Nil
	}
	base := 0
	for _, s := range sizes {
		for k := 0; k+1 < s; k++ {
			next[perm[base+k]] = uint32(perm[base+k+1])
		}
		base += s
	}
	return next
}
