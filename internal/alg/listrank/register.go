package listrank

import (
	"fmt"

	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/kernel"
)

// instance adapts the pointer-jumping ranker to the registry's Instance
// contract. Ranking is EREW — no concurrent writes at all — so it carries
// no method axis and serves as the contention sweep's negative control.
type instance struct {
	m     *machine.Machine
	next  []uint32
	want  []uint32
	last  []uint32
	trace *exec.TraceStats
}

func (in *instance) Prepare(kernel.Settings) {}

func (in *instance) Run(s kernel.Settings) kernel.Outcome {
	in.last, in.trace = RankExecTrace(in.m, s.Exec, in.next)
	return kernel.Outcome{Vector: in.last}
}

func (in *instance) Validate() error {
	if in.want == nil {
		in.want = SequentialRank(in.next)
	}
	for i := range in.want {
		if in.last[i] != in.want[i] {
			return fmt.Errorf("listrank: rank[%d] = %d, want %d", i, in.last[i], in.want[i])
		}
	}
	return nil
}

func (in *instance) Trace() *exec.TraceStats { return in.trace }

func init() {
	kernel.Register(kernel.Descriptor{
		Name:       "listrank",
		Pkg:        "listrank",
		Summary:    "Wyllie pointer-jumping list ranking (EREW negative control)",
		Input:      kernel.InputChain,
		Contention: kernel.ContentionEREW,
		New: func(m *machine.Machine, w kernel.Workload) kernel.Instance {
			return &instance{m: m, next: w.Next}
		},
	})
}
