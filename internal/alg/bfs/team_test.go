package bfs

import (
	"testing"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/graph"
	"crcwpram/internal/race"
)

func TestTeamMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			for _, method := range selectionMethods {
				k.Prepare(0)
				r := k.RunTeam(method)
				if err := Validate(g, 0, r, true); err != nil {
					t.Fatalf("p=%d %s %v: %v", p, name, method, err)
				}
			}
		}
	}
}

// TestTeamAgreesWithPool cross-checks the two execution modes: levels and
// depth must be identical (parents may legitimately differ — different CW
// winners — so those are covered by Validate above).
func TestTeamAgreesWithPool(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(300, 1500, 13)
	k := NewKernel(m, g)
	for _, method := range selectionMethods {
		k.Prepare(5)
		pool := k.Run(method)
		poolLevels := append([]uint32(nil), pool.Level...)
		poolDepth := pool.Depth
		k.Prepare(5)
		team := k.RunTeam(method)
		if poolDepth != team.Depth {
			t.Fatalf("%v: depths differ: pool %d, team %d", method, poolDepth, team.Depth)
		}
		for v := range poolLevels {
			if poolLevels[v] != team.Level[v] {
				t.Fatalf("%v level[%d]: pool %d, team %d", method, v, poolLevels[v], team.Level[v])
			}
		}
	}
}

func TestTeamNaive(t *testing.T) {
	if race.Enabled {
		t.Skip("naive variant races by design")
	}
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		g := graph.ConnectedRandom(200, 800, 17)
		k := NewKernel(m, g)
		k.Prepare(0)
		r := k.RunTeam(cw.Naive)
		// Levels are a common CW and therefore exact even unguarded.
		if err := Validate(g, 0, r, false); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestTeamRepeatedAndInterleavedWithPool(t *testing.T) {
	// Team and pool runs share the CAS-LT cells; interleaving them must
	// keep the round offset discipline intact.
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(200, 900, 17)
	k := NewKernel(m, g)
	for rep := 0; rep < 9; rep++ {
		src := uint32(rep * 13 % g.NumVertices())
		k.Prepare(src)
		var r Result
		switch rep % 3 {
		case 0:
			r = k.RunTeam(cw.CASLT)
		case 1:
			r = k.RunCASLT()
		default:
			r = k.RunCASLTFrontierTeam()
		}
		if err := Validate(g, src, r, true); err != nil {
			t.Fatalf("rep %d src %d: %v", rep, src, err)
		}
	}
}

func TestFrontierTeamMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			k.Prepare(0)
			r := k.RunCASLTFrontierTeam()
			if err := Validate(g, 0, r, true); err != nil {
				t.Fatalf("p=%d %s: %v", p, name, err)
			}
		}
	}
}

func TestFrontierTeamAgreesWithPoolFrontier(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(300, 1500, 13)
	k := NewKernel(m, g)
	k.Prepare(5)
	pool := k.RunCASLTFrontier()
	poolLevels := append([]uint32(nil), pool.Level...)
	poolDepth := pool.Depth
	k.Prepare(5)
	team := k.RunCASLTFrontierTeam()
	if poolDepth != team.Depth {
		t.Fatalf("depths differ: pool %d, team %d", poolDepth, team.Depth)
	}
	for v := range poolLevels {
		if poolLevels[v] != team.Level[v] {
			t.Fatalf("level[%d]: pool %d, team %d", v, poolLevels[v], team.Level[v])
		}
	}
}

func TestFrontierTeamMemoryStaysLinear(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(1000, 4000, 29)
	k := NewKernel(m, g)
	for rep := 0; rep < 5; rep++ {
		k.Prepare(0)
		k.RunCASLTFrontierTeam()
	}
	if got, limit := k.frontierStateBytes(), 16*g.NumVertices()+4096; got > limit {
		t.Fatalf("frontier state %d bytes exceeds %d", got, limit)
	}
}

func TestTeamDeepPath(t *testing.T) {
	// Many levels → many team rounds in one region; exercises the rotating
	// convergence flag and (for the frontier) the buffer swap at depth.
	m := testMachine(t, 2)
	g := graph.Path(2000)
	k := NewKernel(m, g)
	k.Prepare(0)
	if err := Validate(g, 0, k.RunTeam(cw.CASLT), true); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	k.Prepare(0)
	r := k.RunCASLTFrontierTeam()
	if err := Validate(g, 0, r, true); err != nil {
		t.Fatalf("frontier: %v", err)
	}
	if r.Depth != 1999 {
		t.Fatalf("depth = %d, want 1999", r.Depth)
	}
}
