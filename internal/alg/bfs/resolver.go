package bfs

import (
	"sync/atomic"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
)

// RunResolver executes the Figure 3 BFS with the concurrent write handled
// by an arbitrary cw.Resolver, under the machine's default execution
// backend. It is the generic entry point: slightly slower than the
// specialized Run* variants (one closure per winning write), and therefore
// not what the timing figures use, but it composes with any resolver — in
// particular cw.NewCountingResolver, which is how the harness measures the
// atomic traffic of a whole BFS run per method.
//
// The resolver must be fresh (or ResetRange over all targets must have
// been applied) and must span the graph's vertices. Prepare must have been
// called first.
func (k *Kernel) RunResolver(r cw.Resolver) Result {
	return k.RunResolverExec(k.m.Exec(), r)
}

// RunResolverExec is RunResolver under an explicit execution backend.
// Combined with ExecTrace it yields both the resolver's operation counts
// and the kernel's structural trace in one deterministic replay. Round ids
// passed to the resolver restart at 1 for every call, so a CAS-LT-backed
// resolver must not be reused across calls (counting resolvers are
// per-experiment anyway).
func (k *Kernel) RunResolverExec(e machine.Exec, r cw.Resolver) Result {
	if r.Len() < k.n {
		panic("bfs: resolver smaller than the vertex set")
	}
	offsets, targets := k.g.Offsets(), k.g.Targets()
	needsReset := r.Method().NeedsReset()
	var depth uint32
	k.trace = exec.Run(k.m, e, func(ctx exec.Ctx) {
		rec := ctx.Metrics()
		progress := ctx.Flag()
		L := uint32(0)
		for {
			progress.Set(L+1, 0) // prime next level's flag (common CW)
			round := L + 1
			ctx.Range(k.n, func(lo, hi, w int) {
				sh := rec.Shard(w)
				prog := false
				for v := lo; v < hi; v++ {
					if atomic.LoadUint32(&k.level[v]) != L {
						continue
					}
					for j := offsets[v]; j < offsets[v+1]; j++ {
						u := targets[j]
						if atomic.LoadUint32(&k.visited[u]) != 0 {
							continue
						}
						v := v
						if sh.Claim(int(u), round, r.DoOutcome(int(u), round, func() {
							k.parent[u] = uint32(v)
							k.selEdge[u] = j
							atomic.StoreUint32(&k.visited[u], 1)
							atomic.StoreUint32(&k.level[u], L+1)
						})) {
							prog = true
						}
					}
				}
				if prog {
					progress.Set(L, 1)
				}
			})
			if progress.Get(L) == 0 {
				if ctx.Worker() == 0 {
					depth = L
				}
				break
			}
			if needsReset {
				ctx.Range(k.n, func(lo, hi, _ int) { r.ResetRange(lo, hi) })
			}
			L++
		}
	})
	return k.result(int(depth))
}
