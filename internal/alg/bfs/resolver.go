package bfs

import (
	"sync/atomic"

	"crcwpram/internal/core/cw"
)

// RunResolver executes the Figure 3 BFS with the concurrent write handled
// by an arbitrary cw.Resolver. It is the generic entry point: slightly
// slower than the specialized Run* variants (one closure per winning
// write), and therefore not what the timing figures use, but it composes
// with any resolver — in particular cw.NewCountingResolver, which is how
// the harness measures the atomic traffic of a whole BFS run per method.
//
// The resolver must be fresh (or ResetRange over all targets must have
// been applied) and must span the graph's vertices. Prepare must have been
// called first.
func (k *Kernel) RunResolver(r cw.Resolver) Result {
	if r.Len() < k.n {
		panic("bfs: resolver smaller than the vertex set")
	}
	offsets, targets := k.g.Offsets(), k.g.Targets()
	needsReset := r.Method().NeedsReset()
	var done atomic.Uint32
	L := uint32(0)
	for {
		done.Store(1)
		round := L + 1
		k.m.ParallelRange(k.n, func(lo, hi, _ int) {
			progress := false
			for v := lo; v < hi; v++ {
				if atomic.LoadUint32(&k.level[v]) != L {
					continue
				}
				for j := offsets[v]; j < offsets[v+1]; j++ {
					u := targets[j]
					if atomic.LoadUint32(&k.visited[u]) != 0 {
						continue
					}
					v := v
					if r.Do(int(u), round, func() {
						k.parent[u] = uint32(v)
						k.selEdge[u] = j
						atomic.StoreUint32(&k.visited[u], 1)
						atomic.StoreUint32(&k.level[u], L+1)
					}) {
						progress = true
					}
				}
			}
			if progress {
				done.Store(0)
			}
		})
		if done.Load() == 1 {
			break
		}
		L++
		if needsReset {
			k.m.ParallelRange(k.n, func(lo, hi, _ int) { r.ResetRange(lo, hi) })
		}
	}
	return k.result(int(L))
}
