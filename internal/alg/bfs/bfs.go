// Package bfs implements the paper's second benchmark: the Rodinia-style
// level-synchronous Breadth-First Search of Figure 3, in one variant per
// concurrent-write method.
//
// Each level L is one PRAM round: every vertex v on the frontier
// (level[v] == L) relaxes its edges, and each undiscovered endpoint u is the
// target of a concurrent write of the tuple (Parent[u], SelEdge[u],
// Visited[u], Level[u]). Discoverers at the same level write *different*
// parents and edges, so an unguarded implementation can commit a torn tuple
// (parent from one writer, edge from another) — the multi-location race the
// paper's Section 4 warns about and the reason the naive variant's parent
// tree is only weakly consistent. The selection variants guard the tuple:
//
//   - CASLT:      cells.TryClaim(u, L+1); the round id is the level counter,
//     which the paper notes comes "for free" — no per-level reinitialization.
//   - Gatekeeper: gates.TryEnter(u) plus the paper's Figure 3(b) full
//     re-initialization pass over all N gates after every level, inside the
//     timed region, exactly as in the listing.
//   - Mutex:      per-vertex critical section (baseline).
//
// Reads that race with winner writes inside a round (the visited filter and
// the frontier's level test) use sync/atomic loads in the guarded variants;
// on x86 these compile to plain loads, so the guarded kernels stay faithful
// to the paper's cost model while being race-detector clean. The naive
// variant is plain loads and stores throughout, reproducing the Rodinia
// original (and is therefore skipped under -race in tests).
package bfs

import (
	"fmt"
	"math"
	"sync/atomic"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
	"crcwpram/internal/graph"
)

// Unreached marks a vertex not (yet) reached; it is also the parent and
// selected-edge value of the source and of unreachable vertices.
const Unreached = math.MaxUint32

// Result gives read-only access to the arrays produced by a run.
type Result struct {
	// Level[u] is u's BFS depth, or Unreached.
	Level []uint32
	// Parent[u] is the frontier vertex that discovered u, or Unreached.
	Parent []uint32
	// SelEdge[u] is the CSR arc index by which u was discovered, or
	// Unreached.
	SelEdge []uint32
	// Depth is the number of levels traversed (max finite level).
	Depth int
}

// Kernel holds the shared arrays for repeated BFS runs over one graph.
type Kernel struct {
	m *machine.Machine
	g *graph.Graph
	n int

	level   []uint32
	visited []uint32
	parent  []uint32
	selEdge []uint32

	cells *cw.Array
	gates *cw.GateArray
	mtx   *cw.MutexArray

	source uint32
	base   uint32           // CAS-LT round offset carried across runs
	trace  *exec.TraceStats // structural record of the last trace-backend run

	// balance selects vertex- or edge-balanced loop partitioning;
	// arcBounds caches the equal-arc vertex shards for the whole range.
	balance   graph.Balance
	arcBounds []int

	// steal routes the frontier relaxation (the irregular per-vertex-cost
	// loop) through the work-stealing scheduler. Defaults to the graph's
	// degree skew; see SetStealing. Edge balance takes precedence: when
	// both are on, the WeightedRange shards already equalize arc work.
	steal bool

	// bitmap switches the pull/hybrid/frontier CAS-LT variants to
	// bit-packed visited and frontier-membership state (see SetBitmap).
	// visBits is the visited set (doubling as the claim state: the
	// fetch-OR winner owns the discovery tuple); curBits/nextBits are the
	// double-buffered level-membership bitmaps of the pure pull driver,
	// with curBits rebuilt from the explicit frontier each hybrid pull
	// level (the push→pull conversion round).
	bitmap   bool
	visBits  *cw.BitArray
	curBits  *cw.BitArray
	nextBits *cw.BitArray

	// Frontier-variant state (frontier.go), allocated on first use.
	frontier []uint32
	next     []uint32
	bufs     [][]uint32 // per-worker discovery buffers
	wOff     []int      // per-worker offsets into next
	degSum   []uint64   // per-worker arc count of the level's discoveries
	discArcs uint64     // level's total discovered arcs (team hybrid Single)

	// Edge-balanced frontier scratch (allocated when balance is edge):
	// per-vertex frontier degrees, their prefix scan, and the per-worker
	// partial sums of the team-mode in-region scan.
	deg     []uint32
	cum     []uint32
	degPart []uint32
}

// NewKernel returns a BFS kernel over g executed on m. The machine and
// graph are borrowed, not owned.
func NewKernel(m *machine.Machine, g *graph.Graph) *Kernel {
	n := g.NumVertices()
	return &Kernel{
		m:       m,
		g:       g,
		n:       n,
		level:   make([]uint32, n),
		visited: make([]uint32, n),
		parent:  make([]uint32, n),
		selEdge: make([]uint32, n),
		cells:   cw.NewArray(n, cw.Packed),
		gates:   cw.NewGateArray(n, cw.Packed),
		mtx:     cw.NewMutexArray(n),
		steal:   graph.DegreeSkewed(g),
	}
}

// SetBalance selects how the kernel's vertex loops are partitioned:
// equal-vertex blocks (the default, the paper's formulation) or the
// equal-arc shards of graph.ArcBounds, which unskew the per-worker arc work
// on hub-heavy graphs. Frontier variants additionally shard each level's
// frontier by its edge count. Balance changes which worker walks which
// vertices, never who may write what, so results are unaffected. Call it
// before Run*, not during.
func (k *Kernel) SetBalance(b graph.Balance) { k.balance = b }

// Balance returns the kernel's current balance policy.
func (k *Kernel) Balance() graph.Balance { return k.balance }

// SetStealing selects whether the frontier relaxation — the one loop whose
// per-index cost is the frontier vertex's degree — runs under the
// work-stealing scheduler instead of the machine's configured policy. The
// default is graph.DegreeSkewed(g): hub-heavy graphs steal, regular ones
// keep static shares. Like balance, stealing changes which worker walks
// which vertices, never who may write what, so results are unaffected.
// Edge balance (SetBalance) takes precedence over stealing when both are
// set. Call it before Run*, not during.
func (k *Kernel) SetStealing(on bool) { k.steal = on }

// Stealing returns whether the frontier relaxation uses work stealing.
func (k *Kernel) Stealing() bool { return k.steal }

// SetBitmap selects bit-packed (cw.BitArray) visited and frontier state for
// the CAS-LT pull, hybrid and frontier variants — the Beamer/GAP bottom-up
// representation. The visited filter, the pull membership probe and the
// discovery claim then read 512 vertices per cache line instead of 16, and
// the claim itself is a fetch-OR common write (the discovery payload "u is
// now visited" is identical for all writers, so no round stamp is needed;
// winner selection still picks exactly one tuple writer per vertex). Like
// balance and stealing this changes the memory representation of who-saw-
// what, never which vertex gets which level, so results are byte-identical
// to the word-per-vertex runs. The push level-sweep variants (RunCASLT,
// gatekeeper, naive, mutex) ignore it. Call it before Prepare, not during
// a run.
func (k *Kernel) SetBitmap(on bool) { k.bitmap = on }

// Bitmap returns whether the pull/hybrid/frontier variants use bit-packed
// visited and frontier state.
func (k *Kernel) Bitmap() bool { return k.bitmap }

// ensureBits lazily allocates the bitmap-state arrays. Must be called from
// the driver goroutine (before any region opens).
func (k *Kernel) ensureBits() {
	if k.visBits == nil {
		k.visBits = cw.NewBitArray(k.n)
		k.curBits = cw.NewBitArray(k.n)
		k.nextBits = cw.NewBitArray(k.n)
	}
}

// ensureArcBounds caches the equal-arc shards of the full vertex range.
// Must be called from the driver goroutine (in team mode: before the
// region opens).
func (k *Kernel) ensureArcBounds() []int {
	if len(k.arcBounds) != k.m.P()+1 {
		k.arcBounds = graph.ArcBounds(k.g, k.m.P())
	}
	return k.arcBounds
}

// ctxSweep executes one whole-vertex-range round under the kernel's
// balance policy: equal-vertex blocks or equal-arc shards.
// Re-initialization passes (gate resets, Prepare) stay on plain Range —
// their per-vertex cost is uniform, so vertex balance is already optimal
// there. Edge balance requires k.arcBounds to be populated before the
// region opens (runLevels and the hybrid driver do so).
func (k *Kernel) ctxSweep(ctx exec.Ctx, body func(lo, hi, w int)) {
	if k.balance == graph.BalanceEdge {
		ctx.Bounds(k.arcBounds, body)
		return
	}
	ctx.Range(k.n, body)
}

// Prepare resets the traversal arrays for a run from the given source.
// Prepare is the untimed initialization phase. The CAS-LT cells are not
// reset: runs after the first reuse them by advancing the round offset,
// which is the method's point.
func (k *Kernel) Prepare(source uint32) {
	if int(source) >= k.n {
		panic(fmt.Sprintf("bfs: source %d out of range for %d vertices", source, k.n))
	}
	k.source = source
	// Guard the (astronomically distant) uint32 round wrap: recycle cells.
	if k.base > math.MaxUint32/2 {
		k.m.ParallelRange(k.n, func(lo, hi, _ int) { k.cells.ResetRange(lo, hi) })
		k.base = 0
	}
	if k.bitmap {
		k.ensureBits()
	}
	k.m.ParallelRange(k.n, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			k.level[i] = Unreached
			k.visited[i] = 0
			k.parent[i] = Unreached
			k.selEdge[i] = Unreached
		}
		k.gates.ResetRange(lo, hi)
		if k.bitmap {
			// Sharded bit clears are word-boundary safe (BitArray.ResetRange).
			k.visBits.ResetRange(lo, hi)
			k.curBits.ResetRange(lo, hi)
			k.nextBits.ResetRange(lo, hi)
		}
	})
	k.level[source] = 0
	k.visited[source] = 1
	if k.bitmap {
		k.visBits.Set(int(source))
	}
}

// Run executes BFS with the given method under the machine's default
// execution backend. Prepare must have been called first; a Result view
// over the kernel's arrays is returned (valid until the next Prepare/Run).
func (k *Kernel) Run(method cw.Method) Result {
	return k.RunExec(k.m.Exec(), method)
}

// RunExec is Run under an explicit execution backend.
func (k *Kernel) RunExec(e machine.Exec, method cw.Method) Result {
	switch method {
	case cw.CASLT:
		return k.RunCASLTExec(e)
	case cw.Gatekeeper:
		return k.runGate(e, false)
	case cw.GatekeeperChecked:
		return k.runGate(e, true)
	case cw.Naive:
		return k.RunNaiveExec(e)
	case cw.Mutex:
		return k.RunMutexExec(e)
	default:
		panic("bfs: unknown method " + method.String())
	}
}

func (k *Kernel) result(depth int) Result {
	return Result{Level: k.level, Parent: k.parent, SelEdge: k.selEdge, Depth: depth}
}

// Trace returns the structural record of the kernel's last run under the
// trace backend, or nil if the last run used a timed backend.
func (k *Kernel) Trace() *exec.TraceStats { return k.trace }

// runLevels drives the level loop through the execution layer. sweep
// executes one worker's share [lo, hi) of level L's vertex sweep (under
// the kernel's balance policy) and reports whether it discovered anything;
// gateReset adds the gatekeeper's O(N) re-initialization pass between
// levels, inside the timed region as in Figure 3(b). Returns the depth
// (max finite level). The per-level convergence word is the region's
// rotating Flag; each level is one round under every backend (pool closes
// it with the loop's own join, team with the sense barrier).
func (k *Kernel) runLevels(e machine.Exec, sweep func(lo, hi, w int, L, round uint32, sh *metrics.Shard) bool, gateReset bool) uint32 {
	if k.balance == graph.BalanceEdge {
		k.ensureArcBounds() // allocate outside the region
	}
	var depth uint32
	k.trace = exec.Run(k.m, e, func(ctx exec.Ctx) {
		rec := ctx.Metrics()
		progress := ctx.Flag()
		L := uint32(0)
		for {
			progress.Set(L+1, 0) // prime next level's flag (common CW)
			round := k.base + L + 1
			if ctx.Worker() == 0 {
				// The level counter doubles as the round id (no NextRound
				// call to count), so credit the consumed round here.
				rec.AddRounds(1)
			}
			k.ctxSweep(ctx, func(lo, hi, w int) {
				if sweep(lo, hi, w, L, round, rec.Shard(w)) {
					progress.Set(L, 1)
				}
			})
			if progress.Get(L) == 0 {
				if ctx.Worker() == 0 {
					depth = L
				}
				break
			}
			if gateReset {
				// Figure 3(b) lines 34-35: re-open every gate before the
				// next level — the O(N)-work re-initialization the method
				// requires.
				ctx.Range(k.n, func(lo, hi, _ int) { k.gates.ResetRange(lo, hi) })
			}
			L++ // "round could be substituted by the loop iteration ... for free"
		}
	})
	return depth
}

// RunCASLT is Figure 3(a): the concurrent write of each discovery tuple is
// guarded by canConWriteCASLT(&RoundWritten[u], L+1); the level counter is
// the round id.
func (k *Kernel) RunCASLT() Result { return k.RunCASLTExec(k.m.Exec()) }

// RunCASLTExec is RunCASLT under an explicit execution backend.
func (k *Kernel) RunCASLTExec(e machine.Exec) Result {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	depth := k.runLevels(e, func(lo, hi, _ int, L, round uint32, sh *metrics.Shard) bool {
		progress := false
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&k.level[v]) != L {
				continue
			}
			for j := offsets[v]; j < offsets[v+1]; j++ {
				u := targets[j]
				if atomic.LoadUint32(&k.visited[u]) != 0 {
					continue
				}
				if sh.Claim(int(u), round, k.cells.TryClaimOutcome(int(u), round)) {
					k.parent[u] = uint32(v)
					k.selEdge[u] = j
					atomic.StoreUint32(&k.visited[u], 1)
					atomic.StoreUint32(&k.level[u], L+1)
					progress = true
				}
			}
		}
		return progress
	}, false)
	k.base += depth + 1
	return k.result(int(depth))
}

// RunGatekeeper is Figure 3(b): canConWriteAtomic(&gatekeeper[u]) guards
// the tuple, and after every level the whole gatekeeper array is re-zeroed
// in a parallel pass — inside the timed region, as in the listing.
func (k *Kernel) RunGatekeeper() Result { return k.runGate(k.m.Exec(), false) }

// RunGateChecked is RunGatekeeper with the load pre-check mitigation the
// paper suggests (skip the atomic once the gatekeeper is non-zero).
func (k *Kernel) RunGateChecked() Result { return k.runGate(k.m.Exec(), true) }

func (k *Kernel) runGate(e machine.Exec, checked bool) Result {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	depth := k.runLevels(e, func(lo, hi, _ int, L, round uint32, sh *metrics.Shard) bool {
		progress := false
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&k.level[v]) != L {
				continue
			}
			for j := offsets[v]; j < offsets[v+1]; j++ {
				u := targets[j]
				if atomic.LoadUint32(&k.visited[u]) != 0 {
					continue
				}
				var o cw.Outcome
				if checked {
					o = k.gates.TryEnterCheckedOutcome(int(u))
				} else {
					o = k.gates.TryEnterOutcome(int(u))
				}
				if sh.Claim(int(u), round, o) {
					k.parent[u] = uint32(v)
					k.selEdge[u] = j
					atomic.StoreUint32(&k.visited[u], 1)
					atomic.StoreUint32(&k.level[u], L+1)
					progress = true
				}
			}
		}
		return progress
	}, true)
	return k.result(int(depth))
}

// RunNaive reproduces the unmodified Rodinia approach: every discoverer
// writes the whole tuple with plain stores and the memory system picks the
// survivors, field by field. Levels are a common CW (all discoverers write
// L+1) and therefore correct; Parent and SelEdge are arbitrary CWs and may
// be torn across fields (see package comment).
func (k *Kernel) RunNaive() Result { return k.RunNaiveExec(k.m.Exec()) }

// RunNaiveExec is RunNaive under an explicit execution backend.
func (k *Kernel) RunNaiveExec(e machine.Exec) Result {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	depth := k.runLevels(e, func(lo, hi, _ int, L, round uint32, sh *metrics.Shard) bool {
		progress := false
		for v := lo; v < hi; v++ {
			if k.level[v] != L {
				continue
			}
			for j := offsets[v]; j < offsets[v+1]; j++ {
				u := targets[j]
				if k.visited[u] == 0 {
					// No winner selection: every issued write counts as an
					// executed win; the visited filter plays the pre-check.
					sh.Claim(int(u), round, cw.OutcomeWin)
					k.parent[u] = uint32(v)
					k.selEdge[u] = j
					k.visited[u] = 1
					k.level[u] = L + 1
					progress = true
				}
			}
		}
		return progress
	}, false)
	return k.result(int(depth))
}

// RunMutex is the critical-section baseline: the whole discovery tuple is
// written under the target vertex's lock, with the visited test inside the
// lock so each vertex is discovered exactly once.
func (k *Kernel) RunMutex() Result { return k.RunMutexExec(k.m.Exec()) }

// RunMutexExec is RunMutex under an explicit execution backend.
func (k *Kernel) RunMutexExec(e machine.Exec) Result {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	depth := k.runLevels(e, func(lo, hi, _ int, L, round uint32, sh *metrics.Shard) bool {
		progress := false
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&k.level[v]) != L {
				continue
			}
			for j := offsets[v]; j < offsets[v+1]; j++ {
				u := targets[j]
				if atomic.LoadUint32(&k.visited[u]) != 0 {
					continue
				}
				k.mtx.Lock(int(u))
				// Each lock acquisition is one executed attempt; the
				// visited re-check decides win vs loss.
				o := cw.OutcomeLoss
				if k.visited[u] == 0 {
					o = cw.OutcomeWin
					k.parent[u] = uint32(v)
					k.selEdge[u] = j
					atomic.StoreUint32(&k.visited[u], 1)
					atomic.StoreUint32(&k.level[u], L+1)
					progress = true
				}
				k.mtx.Unlock(int(u))
				sh.Claim(int(u), round, o)
			}
		}
		return progress
	}, false)
	return k.result(int(depth))
}

// Sequential is the queue-based validation baseline: it returns the exact
// level of every vertex and a (valid but arbitrary) parent tree.
func Sequential(g *graph.Graph, source uint32) Result {
	n := g.NumVertices()
	level := make([]uint32, n)
	parent := make([]uint32, n)
	selEdge := make([]uint32, n)
	for i := range level {
		level[i] = Unreached
		parent[i] = Unreached
		selEdge[i] = Unreached
	}
	level[source] = 0
	queue := make([]uint32, 0, 1024)
	queue = append(queue, source)
	depth := 0
	offsets, targets := g.Offsets(), g.Targets()
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for j := offsets[v]; j < offsets[v+1]; j++ {
			u := targets[j]
			if level[u] == Unreached {
				level[u] = level[v] + 1
				parent[u] = v
				selEdge[u] = j
				if int(level[u]) > depth {
					depth = int(level[u])
				}
				queue = append(queue, u)
			}
		}
	}
	return Result{Level: level, Parent: parent, SelEdge: selEdge, Depth: depth}
}
