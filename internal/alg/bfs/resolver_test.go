package bfs

import (
	"testing"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/graph"
)

func TestRunResolverAllMethods(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(200, 800, 41)
	k := NewKernel(m, g)
	for _, method := range selectionMethods {
		r := cw.NewResolver(method, g.NumVertices(), cw.Packed)
		k.Prepare(0)
		res := k.RunResolver(r)
		if err := Validate(g, 0, res, true); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
	}
}

func TestRunResolverCountsMatchRun(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(150, 500, 43)
	k := NewKernel(m, g)

	var ops cw.OpCounts
	r := cw.NewCountingResolver(cw.CASLT, g.NumVertices(), &ops)
	k.Prepare(0)
	res := k.RunResolver(r)
	if err := Validate(g, 0, res, true); err != nil {
		t.Fatal(err)
	}
	_, _, wins := ops.Snapshot()
	// Every vertex except the source is discovered by exactly one win.
	if want := uint64(g.NumVertices() - 1); wins != want {
		t.Fatalf("wins = %d, want %d", wins, want)
	}
}

func TestRunResolverGatekeeperNeedsItsResets(t *testing.T) {
	// RunResolver must perform the per-level resets for gatekeeper
	// resolvers; a multi-level graph exercises them.
	m := testMachine(t, 2)
	g := graph.Path(30)
	k := NewKernel(m, g)
	r := cw.NewResolver(cw.Gatekeeper, g.NumVertices(), cw.Packed)
	k.Prepare(0)
	res := k.RunResolver(r)
	if res.Depth != 29 {
		t.Fatalf("depth = %d, want 29", res.Depth)
	}
	if err := Validate(g, 0, res, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunResolverRejectsSmallResolver(t *testing.T) {
	m := testMachine(t, 1)
	g := graph.Path(10)
	k := NewKernel(m, g)
	k.Prepare(0)
	defer func() {
		if recover() == nil {
			t.Fatal("undersized resolver accepted")
		}
	}()
	k.RunResolver(cw.NewResolver(cw.CASLT, 5, cw.Packed))
}
