package bfs

import (
	"testing"
	"testing/quick"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/race"
)

var selectionMethods = []cw.Method{cw.CASLT, cw.Gatekeeper, cw.GatekeeperChecked, cw.Mutex}

func testMachine(t *testing.T, p int) *machine.Machine {
	t.Helper()
	m := machine.New(p)
	t.Cleanup(m.Close)
	return m
}

func TestSequentialPath(t *testing.T) {
	g := graph.Path(5)
	r := Sequential(g, 0)
	wantLevel := []uint32{0, 1, 2, 3, 4}
	for i, w := range wantLevel {
		if r.Level[i] != w {
			t.Fatalf("level = %v, want %v", r.Level, wantLevel)
		}
	}
	if r.Depth != 4 {
		t.Fatalf("depth = %d, want 4", r.Depth)
	}
	if r.Parent[0] != Unreached || r.Parent[3] != 2 {
		t.Fatalf("parents wrong: %v", r.Parent)
	}
	if err := Validate(g, 0, r, true); err != nil {
		t.Fatalf("sequential result invalid: %v", err)
	}
}

func TestSequentialDisconnected(t *testing.T) {
	g := graph.Disjoint(graph.Path(3), 2) // {0,1,2} and {3,4,5}
	r := Sequential(g, 0)
	for u := 3; u < 6; u++ {
		if r.Level[u] != Unreached {
			t.Fatalf("vertex %d reached across components", u)
		}
	}
	if err := Validate(g, 0, r, true); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":         graph.Path(40),
		"cycle":        graph.Cycle(31),
		"star":         graph.Star(64),
		"complete":     graph.Complete(20),
		"grid":         graph.Grid2D(8, 9),
		"random":       graph.ConnectedRandom(200, 800, 17),
		"random-multi": graph.RandomUndirected(150, 400, 23),
		"disconnected": graph.Disjoint(graph.ConnectedRandom(50, 120, 5), 3),
		"rmat":         graph.RMAT(7, 500, 0.57, 0.19, 0.19, 9),
	}
}

func TestSelectionMethodsMatchSequential(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			for _, method := range selectionMethods {
				k.Prepare(0)
				r := k.Run(method)
				if err := Validate(g, 0, r, true); err != nil {
					t.Fatalf("p=%d %s %v: %v", p, name, method, err)
				}
			}
		}
	}
}

func TestNaiveMatchesSequentialLevels(t *testing.T) {
	if race.Enabled {
		t.Skip("naive variant is intentionally racy; skipped under -race")
	}
	m := testMachine(t, 4)
	for name, g := range testGraphs() {
		k := NewKernel(m, g)
		k.Prepare(0)
		r := k.RunNaive()
		// Non-strict: levels exact, parent/edge independently valid, tuple
		// may be torn.
		if err := Validate(g, 0, r, false); err != nil {
			t.Fatalf("%s naive: %v", name, err)
		}
	}
}

// Repeated CAS-LT runs reuse the cells without any reset, via the round
// offset; every run must stay correct, including from different sources.
func TestCASLTRepeatedRunsNoCellReset(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(120, 500, 31)
	k := NewKernel(m, g)
	for rep := 0; rep < 10; rep++ {
		src := uint32(rep * 11 % g.NumVertices())
		k.Prepare(src)
		r := k.RunCASLT()
		if err := Validate(g, src, r, true); err != nil {
			t.Fatalf("rep %d src %d: %v", rep, src, err)
		}
	}
}

func TestGatekeeperRepeatedRuns(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(120, 500, 37)
	k := NewKernel(m, g)
	for rep := 0; rep < 5; rep++ {
		src := uint32(rep * 7 % g.NumVertices())
		k.Prepare(src)
		r := k.RunGatekeeper()
		if err := Validate(g, src, r, true); err != nil {
			t.Fatalf("rep %d src %d: %v", rep, src, err)
		}
	}
}

func TestPrepareRejectsBadSource(t *testing.T) {
	m := testMachine(t, 1)
	k := NewKernel(m, graph.Path(4))
	defer func() {
		if recover() == nil {
			t.Fatal("bad source did not panic")
		}
	}()
	k.Prepare(4)
}

func TestDepthValues(t *testing.T) {
	m := testMachine(t, 2)
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.Path(10), 9},
		{graph.Star(10), 1},
		{graph.Complete(10), 1},
		{graph.Cycle(10), 5},
	}
	for _, c := range cases {
		k := NewKernel(m, c.g)
		k.Prepare(0)
		if r := k.RunCASLT(); r.Depth != c.want {
			t.Fatalf("depth = %d, want %d", r.Depth, c.want)
		}
	}
}

func TestValidateRejectsCorruptedResults(t *testing.T) {
	g := graph.ConnectedRandom(60, 200, 41)
	m := testMachine(t, 2)
	k := NewKernel(m, g)

	corrupt := func(f func(r Result)) error {
		k.Prepare(0)
		r := k.RunCASLT()
		f(r)
		return Validate(g, 0, r, true)
	}

	if err := corrupt(func(r Result) {}); err != nil {
		t.Fatalf("clean result rejected: %v", err)
	}
	if err := corrupt(func(r Result) { r.Level[10]++ }); err == nil {
		t.Fatal("wrong level accepted")
	}
	if err := corrupt(func(r Result) { r.Parent[10] = Unreached }); err == nil {
		t.Fatal("missing parent accepted")
	}
	if err := corrupt(func(r Result) { r.SelEdge[10] = r.SelEdge[20] }); err == nil {
		t.Fatal("foreign selEdge accepted")
	}
}

// A torn tuple — parent from one discoverer, edge from another — passes the
// non-strict validator but fails the strict one. Construct it on a 4-cycle
// where vertex 2 is discoverable from both 1 and 3.
func TestValidateStrictCatchesTornTuple(t *testing.T) {
	g := graph.Cycle(4)
	r := Sequential(g, 0)
	// Sequential discovered 2 via one of its neighbors; re-point the parent
	// to the other while keeping the edge — a torn tuple.
	other := uint32(3)
	if r.Parent[2] == 3 {
		other = 1
	}
	r.Parent[2] = other
	if err := Validate(g, 0, r, true); err == nil {
		t.Fatal("strict validation accepted a torn tuple")
	}
	if err := Validate(g, 0, r, false); err != nil {
		t.Fatalf("non-strict validation rejected a level-consistent torn tuple: %v", err)
	}
}

// Property: on random connected graphs all selection methods agree with
// Sequential, for random sources.
func TestQuickSelectionMethodsAgree(t *testing.T) {
	m := testMachine(t, 4)
	f := func(nRaw uint8, mRaw uint16, seed int64, srcRaw uint8) bool {
		n := int(nRaw)%150 + 2
		edges := int(mRaw)%600 + n
		g := graph.ConnectedRandom(n, edges, seed)
		src := uint32(int(srcRaw) % n)
		k := NewKernel(m, g)
		for _, method := range selectionMethods {
			k.Prepare(src)
			if Validate(g, src, k.Run(method), true) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
