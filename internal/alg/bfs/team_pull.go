package bfs

import (
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// Team-mode ports of the direction-optimizing variants (pull.go). The pull
// sweep slots straight into the generic teamLevels driver — it is just
// another whole-range sweep, with exclusive writes instead of CAS-LT
// claims. The hybrid driver needs its own region body: the per-level
// direction decision must be SPMD-consistent, so every worker tracks
// (m_f, m_u, direction) in worker-local variables that are updated from
// shared per-worker counters only after the level's Single published them —
// all workers therefore compute the identical decision sequence.

// RunCASLTPullTeam is the pure bottom-up BFS inside one team region.
// Prepare must have been called first.
func (k *Kernel) RunCASLTPullTeam() Result {
	k.requireSymmetric()
	depth := k.teamLevels(func(lo, hi int, L, _ uint32) bool {
		return k.pullLevel(lo, hi, L, nil)
	}, false)
	return k.result(int(depth))
}

// RunCASLTHybridTeam is the direction-optimizing BFS inside one team
// region. Per level it costs the relax/pull sweep barrier, the Single that
// assembles offsets and the level's arc count, and the copy barrier —
// the same three-barrier shape as RunCASLTFrontierTeam regardless of
// direction. Prepare must have been called first.
func (k *Kernel) RunCASLTHybridTeam() Result {
	k.requireSymmetric()
	offsets := k.g.Offsets()
	p := k.m.P()
	k.ensureFrontierState()
	if k.balance == graph.BalanceEdge {
		k.ensureArcBounds()
	}
	k.frontier = append(k.frontier[:0], k.source)
	mfInit := uint64(k.g.Degree(k.source))
	muInit := uint64(k.g.NumArcs()) - mfInit
	var depth uint32
	k.m.Team(func(tc *machine.TeamCtx) {
		w := tc.W
		mf, mu := mfInit, muInit
		pull := false
		L := uint32(0)
		for {
			pull = NextDirection(pull, mf, mu, uint64(len(k.frontier)), uint64(k.n))
			round := k.base + L + 1
			frontier := k.frontier
			k.degSum[w] = 0
			if pull {
				k.teamSweep(tc, func(lo, hi int) {
					k.pullLevel(lo, hi, L, func(u uint32) {
						k.bufs[w] = append(k.bufs[w], u)
						k.degSum[w] += uint64(offsets[u+1] - offsets[u])
					})
				})
			} else {
				k.teamRelaxFrontier(tc, frontier, L, round)
			}
			tc.Single(func() {
				total := 0
				var disc uint64
				for i := 0; i < p; i++ {
					k.wOff[i] = total
					total += len(k.bufs[i])
					disc += k.degSum[i]
				}
				k.wOff[p] = total
				k.discArcs = disc
				k.frontier, k.next = k.next[:total], frontier[:0]
			})
			// Single's barrier published the offsets, the swap and discArcs.
			mu -= k.discArcs
			mf = k.discArcs
			if len(k.frontier) == 0 {
				if w == 0 {
					depth = L
				}
				break
			}
			next := k.frontier
			copy(next[k.wOff[w]:k.wOff[w+1]], k.bufs[w])
			k.bufs[w] = k.bufs[w][:0]
			tc.Barrier()
			L++
		}
	})
	k.base += depth + 1
	return k.result(int(depth))
}
