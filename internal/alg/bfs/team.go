package bfs

import (
	"sync/atomic"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/sched"
)

// This file ports the BFS variants to the machine's team execution mode:
// one persistent parallel region around the whole level loop, the exact
// shape of the paper's Figure 3 OpenMP listings (`#pragma omp parallel`
// outside the while). Per level the kernel pays one team barrier after the
// sweep (plus one after the gate reset, for the gatekeeper variants)
// instead of two pool barrier phases per ParallelRange; the convergence
// flag is a rotating machine.TeamFlag, so no extra barrier is spent on
// resetting it. Results are identical to the pool-mode counterparts.

// RunTeam executes BFS with the given method inside one team region.
// Prepare must have been called first.
func (k *Kernel) RunTeam(method cw.Method) Result {
	switch method {
	case cw.CASLT:
		return k.RunCASLTTeam()
	case cw.Gatekeeper:
		return k.runGateTeam(false)
	case cw.GatekeeperChecked:
		return k.runGateTeam(true)
	case cw.Naive:
		return k.RunNaiveTeam()
	case cw.Mutex:
		return k.RunMutexTeam()
	default:
		panic("bfs: unknown method " + method.String())
	}
}

// teamSweep executes one worker's share of a whole-vertex-range round
// under the kernel's balance policy — the in-region analogue of
// Kernel.sweep. Edge balance requires k.arcBounds to be populated before
// the region opens (teamLevels and the hybrid driver do so).
func (k *Kernel) teamSweep(tc *machine.TeamCtx, body func(lo, hi int)) {
	if k.balance == graph.BalanceEdge {
		tc.Bounds(k.arcBounds, body)
		return
	}
	tc.Range(k.n, body)
}

// teamLevels drives the level loop inside one team region. sweep executes
// one worker's share [lo, hi) of level L's vertex sweep and reports whether
// it discovered anything; gateReset adds the gatekeeper's O(N)
// re-initialization pass between levels. Returns the depth (max finite
// level), identical to the pool drivers' L at loop exit.
func (k *Kernel) teamLevels(sweep func(lo, hi int, L, round uint32) bool, gateReset bool) uint32 {
	if k.balance == graph.BalanceEdge {
		k.ensureArcBounds() // allocate outside the region
	}
	var done machine.TeamFlag
	done.Set(0, 1)
	var depth uint32
	k.m.Team(func(tc *machine.TeamCtx) {
		L := uint32(0)
		for {
			done.Set(L+1, 1) // prime next level's flag (common CW)
			round := k.base + L + 1
			k.teamSweep(tc, func(lo, hi int) {
				if sweep(lo, hi, L, round) {
					done.Set(L, 0)
				}
			})
			if done.Get(L) == 1 {
				if tc.W == 0 {
					depth = L
				}
				break
			}
			if gateReset {
				// Figure 3(b) lines 34-35: re-open every gate before the
				// next level, inside the region and the timed section.
				tc.Range(k.n, func(lo, hi int) { k.gates.ResetRange(lo, hi) })
			}
			L++
		}
	})
	return depth
}

// RunCASLTTeam is Figure 3(a) in team form: same CAS-LT-guarded tuple
// writes as RunCASLT, one region for the whole traversal.
func (k *Kernel) RunCASLTTeam() Result {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	depth := k.teamLevels(func(lo, hi int, L, round uint32) bool {
		progress := false
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&k.level[v]) != L {
				continue
			}
			for j := offsets[v]; j < offsets[v+1]; j++ {
				u := targets[j]
				if atomic.LoadUint32(&k.visited[u]) != 0 {
					continue
				}
				if k.cells.TryClaim(int(u), round) {
					k.parent[u] = uint32(v)
					k.selEdge[u] = j
					atomic.StoreUint32(&k.visited[u], 1)
					atomic.StoreUint32(&k.level[u], L+1)
					progress = true
				}
			}
		}
		return progress
	}, false)
	k.base += depth + 1
	return k.result(int(depth))
}

func (k *Kernel) runGateTeam(checked bool) Result {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	depth := k.teamLevels(func(lo, hi int, L, _ uint32) bool {
		progress := false
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&k.level[v]) != L {
				continue
			}
			for j := offsets[v]; j < offsets[v+1]; j++ {
				u := targets[j]
				if atomic.LoadUint32(&k.visited[u]) != 0 {
					continue
				}
				var won bool
				if checked {
					won = k.gates.TryEnterChecked(int(u))
				} else {
					won = k.gates.TryEnter(int(u))
				}
				if won {
					k.parent[u] = uint32(v)
					k.selEdge[u] = j
					atomic.StoreUint32(&k.visited[u], 1)
					atomic.StoreUint32(&k.level[u], L+1)
					progress = true
				}
			}
		}
		return progress
	}, true)
	return k.result(int(depth))
}

// RunNaiveTeam is RunNaive in team form: plain loads and stores, arbitrary
// CW semantics left to the memory system (skipped under -race in tests).
func (k *Kernel) RunNaiveTeam() Result {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	depth := k.teamLevels(func(lo, hi int, L, _ uint32) bool {
		progress := false
		for v := lo; v < hi; v++ {
			if k.level[v] != L {
				continue
			}
			for j := offsets[v]; j < offsets[v+1]; j++ {
				u := targets[j]
				if k.visited[u] == 0 {
					k.parent[u] = uint32(v)
					k.selEdge[u] = j
					k.visited[u] = 1
					k.level[u] = L + 1
					progress = true
				}
			}
		}
		return progress
	}, false)
	return k.result(int(depth))
}

// RunMutexTeam is the critical-section baseline in team form.
func (k *Kernel) RunMutexTeam() Result {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	depth := k.teamLevels(func(lo, hi int, L, _ uint32) bool {
		progress := false
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&k.level[v]) != L {
				continue
			}
			for j := offsets[v]; j < offsets[v+1]; j++ {
				u := targets[j]
				if atomic.LoadUint32(&k.visited[u]) != 0 {
					continue
				}
				k.mtx.Lock(int(u))
				if k.visited[u] == 0 {
					k.parent[u] = uint32(v)
					k.selEdge[u] = j
					atomic.StoreUint32(&k.visited[u], 1)
					atomic.StoreUint32(&k.level[u], L+1)
					progress = true
				}
				k.mtx.Unlock(int(u))
			}
		}
		return progress
	}, false)
	return k.result(int(depth))
}

// teamRelaxFrontier runs one worker's share of a push level inside the
// region: the in-region analogue of relaxFrontier, with the same balance
// behavior. Under edge balance the frontier-degree prefix scan runs
// in-region too (two aligned tc.Range passes around a tc.Single, the
// textbook block scan), after which every worker derives its own
// near-equal-arc slice with sched.WeightedRange — no extra serial step.
// Ends with the level's closing barrier either way.
func (k *Kernel) teamRelaxFrontier(tc *machine.TeamCtx, frontier []uint32, L, round uint32) {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	w := tc.W
	relax := func(v uint32) {
		for j := offsets[v]; j < offsets[v+1]; j++ {
			u := targets[j]
			if atomic.LoadUint32(&k.visited[u]) != 0 {
				continue
			}
			if k.cells.TryClaim(int(u), round) {
				k.parent[u] = v
				k.selEdge[u] = j
				atomic.StoreUint32(&k.visited[u], 1)
				atomic.StoreUint32(&k.level[u], L+1)
				k.bufs[w] = append(k.bufs[w], u)
				k.degSum[w] += uint64(offsets[u+1] - offsets[u])
			}
		}
	}
	nf := len(frontier)
	if k.balance == graph.BalanceEdge && nf > 1 {
		p := tc.P()
		deg := k.deg[:nf]
		cum := k.cum[:nf+1]
		// Pass 1: degrees plus this worker's block partial sum. Workers
		// with an empty block publish zero.
		k.degPart[w] = 0
		tc.Range(nf, func(lo, hi int) {
			var s uint32
			for i := lo; i < hi; i++ {
				v := frontier[i]
				deg[i] = offsets[v+1] - offsets[v]
				s += deg[i]
			}
			k.degPart[w] = s
		})
		// Serial P-element exclusive scan of the partials.
		tc.Single(func() {
			var tot uint32
			for i := 0; i < p; i++ {
				s := k.degPart[i]
				k.degPart[i] = tot
				tot += s
			}
			cum[nf] = tot
		})
		// Pass 2: same block ranges, so each worker's partial lines up.
		tc.Range(nf, func(lo, hi int) {
			run := k.degPart[w]
			for i := lo; i < hi; i++ {
				cum[i] = run
				run += deg[i]
			}
		})
		lo, hi := sched.WeightedRange(cum, p, w)
		for i := lo; i < hi; i++ {
			relax(frontier[i])
		}
		tc.Barrier()
		return
	}
	tc.ForWorker(nf, func(i, _ int) { relax(frontier[i]) })
}

// RunCASLTFrontierTeam is the frontier variant inside one team region. The
// serial P-element offset scan that the pool variant runs on the caller —
// with all P workers parked across two extra barrier phases — becomes a
// tc.Single, and the buffer swap moves with it, so a level costs three team
// barriers total (sweep, single, copy) instead of four pool phases plus
// caller-side serial work.
func (k *Kernel) RunCASLTFrontierTeam() Result {
	p := k.m.P()
	k.ensureFrontierState()
	k.frontier = append(k.frontier[:0], k.source)
	var depth uint32
	k.m.Team(func(tc *machine.TeamCtx) {
		w := tc.W
		L := uint32(0)
		for {
			round := k.base + L + 1
			frontier := k.frontier
			k.teamRelaxFrontier(tc, frontier, L, round)
			tc.Single(func() {
				total := 0
				for i := 0; i < p; i++ {
					k.wOff[i] = total
					total += len(k.bufs[i])
				}
				k.wOff[p] = total
				// Swap the kernel-owned buffers, exactly as the pool
				// variant does on the caller.
				k.frontier, k.next = k.next[:total], frontier[:0]
			})
			// Single's barrier published the offsets and the swap.
			if len(k.frontier) == 0 {
				if w == 0 {
					depth = L
				}
				break
			}
			next := k.frontier
			copy(next[k.wOff[w]:k.wOff[w+1]], k.bufs[w])
			k.bufs[w] = k.bufs[w][:0]
			tc.Barrier()
			L++
		}
	})
	k.base += depth + 1
	return k.result(int(depth))
}
