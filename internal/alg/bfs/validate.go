package bfs

import (
	"fmt"

	"crcwpram/internal/graph"
)

// Validate checks a BFS result against the graph. Levels are compared to
// the exact Sequential levels. Parent/edge consistency is checked for every
// reached non-source vertex:
//
//   - the parent must itself be reached, one level above;
//   - strict (selection methods, exactly-one-winner): SelEdge[u] must be an
//     arc out of Parent[u] whose target is u — the tuple is untorn;
//   - non-strict (the naive method): Parent[u] must merely be *some*
//     neighbor of u at level[u]-1; SelEdge[u] must be *some* arc reaching u
//     from a vertex at level[u]-1, but the two fields need not agree,
//     because the naive method can commit a torn tuple.
//
// Validate returns nil if the result is consistent.
func Validate(g *graph.Graph, source uint32, r Result, strict bool) error {
	n := g.NumVertices()
	if len(r.Level) != n || len(r.Parent) != n || len(r.SelEdge) != n {
		return fmt.Errorf("bfs: result arrays sized %d/%d/%d, want %d", len(r.Level), len(r.Parent), len(r.SelEdge), n)
	}
	want := Sequential(g, source)
	if r.Depth != want.Depth {
		return fmt.Errorf("bfs: depth %d, want %d", r.Depth, want.Depth)
	}
	offsets, targets := g.Offsets(), g.Targets()
	for u := 0; u < n; u++ {
		if r.Level[u] != want.Level[u] {
			return fmt.Errorf("bfs: level[%d] = %d, want %d", u, r.Level[u], want.Level[u])
		}
		if uint32(u) == source {
			if r.Level[u] != 0 {
				return fmt.Errorf("bfs: source level %d", r.Level[u])
			}
			continue
		}
		if r.Level[u] == Unreached {
			if r.Parent[u] != Unreached || r.SelEdge[u] != Unreached {
				return fmt.Errorf("bfs: unreached vertex %d has parent %d / edge %d", u, r.Parent[u], r.SelEdge[u])
			}
			continue
		}
		p := r.Parent[u]
		if p == Unreached || int(p) >= n {
			return fmt.Errorf("bfs: reached vertex %d has invalid parent %d", u, p)
		}
		if r.Level[p] != r.Level[u]-1 {
			return fmt.Errorf("bfs: parent[%d] = %d at level %d, want level %d", u, p, r.Level[p], r.Level[u]-1)
		}
		e := r.SelEdge[u]
		if e == Unreached || int(e) >= g.NumArcs() {
			return fmt.Errorf("bfs: reached vertex %d has invalid selEdge %d", u, e)
		}
		if targets[e] != uint32(u) {
			return fmt.Errorf("bfs: selEdge[%d] = %d targets %d, not %d", u, e, targets[e], u)
		}
		if strict {
			// The arc must come out of the recorded parent: tuple untorn.
			if e < offsets[p] || e >= offsets[p+1] {
				return fmt.Errorf("bfs: selEdge[%d] = %d is not an arc of parent %d (torn tuple)", u, e, p)
			}
		} else {
			// The arc's source must be at the previous level; find it.
			src := arcSource(offsets, e)
			if r.Level[src] != r.Level[u]-1 {
				return fmt.Errorf("bfs: selEdge[%d] = %d comes from %d at level %d, want level %d",
					u, e, src, r.Level[src], r.Level[u]-1)
			}
			// Parent must be a neighbor of u at the previous level.
			ok := false
			for j := offsets[u]; j < offsets[u+1]; j++ {
				if targets[j] == p {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("bfs: parent[%d] = %d is not a neighbor of %d", u, p, u)
			}
		}
	}
	return nil
}

// ValidateBidir checks a result whose discoveries may have been made in
// either traversal direction — the pull and hybrid variants. Levels,
// parent reachability and parent level are checked exactly as in strict
// Validate; the untorn-tuple check accepts either arc orientation for
// SelEdge[u]: the arc parent→u (a push discovery) or the arc u→parent (a
// pull discovery records the arc its own scan examined). In both cases the
// (Parent, SelEdge) pair must agree on one edge, so a torn tuple still
// fails.
func ValidateBidir(g *graph.Graph, source uint32, r Result) error {
	n := g.NumVertices()
	if len(r.Level) != n || len(r.Parent) != n || len(r.SelEdge) != n {
		return fmt.Errorf("bfs: result arrays sized %d/%d/%d, want %d", len(r.Level), len(r.Parent), len(r.SelEdge), n)
	}
	want := Sequential(g, source)
	if r.Depth != want.Depth {
		return fmt.Errorf("bfs: depth %d, want %d", r.Depth, want.Depth)
	}
	offsets, targets := g.Offsets(), g.Targets()
	for u := 0; u < n; u++ {
		if r.Level[u] != want.Level[u] {
			return fmt.Errorf("bfs: level[%d] = %d, want %d", u, r.Level[u], want.Level[u])
		}
		if uint32(u) == source {
			continue
		}
		if r.Level[u] == Unreached {
			if r.Parent[u] != Unreached || r.SelEdge[u] != Unreached {
				return fmt.Errorf("bfs: unreached vertex %d has parent %d / edge %d", u, r.Parent[u], r.SelEdge[u])
			}
			continue
		}
		p := r.Parent[u]
		if p == Unreached || int(p) >= n {
			return fmt.Errorf("bfs: reached vertex %d has invalid parent %d", u, p)
		}
		if r.Level[p] != r.Level[u]-1 {
			return fmt.Errorf("bfs: parent[%d] = %d at level %d, want level %d", u, p, r.Level[p], r.Level[u]-1)
		}
		e := r.SelEdge[u]
		if e == Unreached || int(e) >= g.NumArcs() {
			return fmt.Errorf("bfs: reached vertex %d has invalid selEdge %d", u, e)
		}
		pushArc := e >= offsets[p] && e < offsets[p+1] && targets[e] == uint32(u)
		pullArc := e >= offsets[u] && e < offsets[u+1] && targets[e] == p
		if !pushArc && !pullArc {
			return fmt.Errorf("bfs: selEdge[%d] = %d matches neither arc %d->%d nor %d->%d (torn tuple)",
				u, e, p, u, u, p)
		}
	}
	return nil
}

// arcSource finds the source vertex of CSR arc e by binary search over the
// offsets array.
func arcSource(offsets []uint32, e uint32) uint32 {
	lo, hi := 0, len(offsets)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if offsets[mid] <= e {
			lo = mid
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}
