package bfs

import (
	"testing"
	"testing/quick"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

func TestFrontierMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for name, g := range testGraphs() {
			k := NewKernel(m, g)
			k.Prepare(0)
			r := k.RunCASLTFrontier()
			if err := Validate(g, 0, r, true); err != nil {
				t.Fatalf("p=%d %s: %v", p, name, err)
			}
		}
	}
}

func TestFrontierAgreesWithSweepVariant(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(300, 1500, 13)
	k := NewKernel(m, g)
	k.Prepare(5)
	sweep := k.RunCASLT()
	sweepLevels := append([]uint32(nil), sweep.Level...)
	k.Prepare(5)
	front := k.RunCASLTFrontier()
	if sweep.Depth != front.Depth {
		t.Fatalf("depths differ: sweep %d, frontier %d", sweep.Depth, front.Depth)
	}
	for v := range sweepLevels {
		if sweepLevels[v] != front.Level[v] {
			t.Fatalf("level[%d]: sweep %d, frontier %d", v, sweepLevels[v], front.Level[v])
		}
	}
}

func TestFrontierRepeatedRunsAndSources(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(200, 900, 17)
	k := NewKernel(m, g)
	for rep := 0; rep < 8; rep++ {
		src := uint32(rep * 13 % g.NumVertices())
		k.Prepare(src)
		if err := Validate(g, src, k.RunCASLTFrontier(), true); err != nil {
			t.Fatalf("rep %d src %d: %v", rep, src, err)
		}
	}
}

func TestFrontierInterleavedWithOtherVariants(t *testing.T) {
	// The frontier variant shares the CAS-LT cells with the sweep variant;
	// interleaving them must keep the round offset discipline intact.
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(150, 500, 23)
	k := NewKernel(m, g)
	for rep := 0; rep < 6; rep++ {
		k.Prepare(0)
		var r Result
		if rep%2 == 0 {
			r = k.RunCASLTFrontier()
		} else {
			r = k.RunCASLT()
		}
		if err := Validate(g, 0, r, true); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}

func TestFrontierMemoryStaysLinear(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(1000, 4000, 29)
	k := NewKernel(m, g)
	if k.frontierStateBytes() != 0 {
		t.Fatal("frontier state allocated before first use")
	}
	for rep := 0; rep < 5; rep++ {
		k.Prepare(0)
		k.RunCASLTFrontier()
	}
	// frontier + next + per-worker buffers: comfortably under ~16 bytes
	// per vertex plus slack.
	if got, limit := k.frontierStateBytes(), 16*g.NumVertices()+4096; got > limit {
		t.Fatalf("frontier state %d bytes exceeds %d", got, limit)
	}
	// The team backend shares the same state; running under it must not
	// allocate a second copy.
	for rep := 0; rep < 5; rep++ {
		k.Prepare(0)
		k.RunCASLTFrontierExec(machine.ExecTeam)
	}
	if got, limit := k.frontierStateBytes(), 16*g.NumVertices()+4096; got > limit {
		t.Fatalf("frontier state %d bytes exceeds %d after team runs", got, limit)
	}
}

func TestFrontierDeepPath(t *testing.T) {
	// The frontier variant's advantage case: a long path where the sweep
	// formulation does N work per level. Correctness check only here;
	// timing is in the ablation bench.
	m := testMachine(t, 2)
	g := graph.Path(2000)
	k := NewKernel(m, g)
	k.Prepare(0)
	r := k.RunCASLTFrontier()
	if r.Depth != 1999 {
		t.Fatalf("depth = %d, want 1999", r.Depth)
	}
	if err := Validate(g, 0, r, true); err != nil {
		t.Fatal(err)
	}
}

// Property: frontier and sweep variants agree on random connected graphs.
func TestQuickFrontierAgrees(t *testing.T) {
	m := testMachine(t, 4)
	f := func(nRaw uint8, mRaw uint16, seed int64, srcRaw uint8) bool {
		n := int(nRaw)%150 + 2
		edges := int(mRaw)%600 + n
		g := graph.ConnectedRandom(n, edges, seed)
		src := uint32(int(srcRaw) % n)
		k := NewKernel(m, g)
		k.Prepare(src)
		return Validate(g, src, k.RunCASLTFrontier(), true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
