package bfs

import (
	"sync/atomic"

	"crcwpram/internal/graph"
	"crcwpram/internal/scan"
	"crcwpram/internal/sched"
)

// This file implements the frontier-based refinement of the paper's BFS:
// instead of sweeping all N vertices per level to find the frontier (the
// Rodinia formulation of Figure 3, whose per-level cost is Θ(N) even for
// tiny frontiers), the kernel carries the frontier explicitly. Winners
// append their discoveries to per-worker buffers, and the next frontier is
// assembled with a serial P-element offset scan plus a parallel copy — the
// same work-sharing shape as everything else on the machine. The
// concurrent-write handling is unchanged (CAS-LT with the level as the
// round id), so the variant isolates the algorithmic sweep cost from the
// CW method cost; the ablation benchmark compares the two formulations.
//
// Under edge balance the frontier itself is re-sharded every level: the
// frontier vertices' degrees are prefix-scanned (scan.BlockExclusive) into
// an arc-prefix array and each worker takes a near-equal-arc slice of it
// (sched.WeightedRange), so one hub on the frontier no longer serializes
// the level behind a single worker.

// ensureFrontierState lazily allocates the frontier variant's buffers: the
// two level buffers (current and next frontier), the per-worker discovery
// buffers, the offset scratch, and — when the kernel is edge-balanced — the
// frontier-degree arrays. Both level buffers are owned by the kernel and
// survive across runs, so repeated runs reuse grown capacity instead of
// re-appending into a stale slice header. Team-mode entry points call this
// before the region opens, so allocation never races.
func (k *Kernel) ensureFrontierState() {
	p := k.m.P()
	if k.bufs == nil {
		k.bufs = make([][]uint32, p)
		k.wOff = make([]int, p+1)
		k.degSum = make([]uint64, p)
	}
	if cap(k.frontier) < k.n {
		k.frontier = make([]uint32, 0, k.n)
		k.next = make([]uint32, 0, k.n)
	}
	if k.balance == graph.BalanceEdge && len(k.cum) < k.n+1 {
		k.deg = make([]uint32, k.n)
		k.cum = make([]uint32, k.n+1)
		k.degPart = make([]uint32, p)
	}
}

// relaxFrontier runs one push level: every frontier vertex relaxes its
// arcs, CAS-LT winners write the discovery tuple and append the vertex to
// their worker's buffer, adding its degree to the worker's degSum slot (the
// hybrid driver's frontier-edge counter). Partitioning follows the
// kernel's balance policy.
func (k *Kernel) relaxFrontier(L, round uint32) {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	frontier := k.frontier
	bufs := k.bufs
	relax := func(v uint32, w int) {
		for j := offsets[v]; j < offsets[v+1]; j++ {
			u := targets[j]
			if atomic.LoadUint32(&k.visited[u]) != 0 {
				continue
			}
			if k.cells.TryClaim(int(u), round) {
				k.parent[u] = v
				k.selEdge[u] = j
				atomic.StoreUint32(&k.visited[u], 1)
				atomic.StoreUint32(&k.level[u], L+1)
				bufs[w] = append(bufs[w], u)
				k.degSum[w] += uint64(offsets[u+1] - offsets[u])
			}
		}
	}
	nf := len(frontier)
	if k.balance == graph.BalanceEdge && nf > 1 {
		p := k.m.P()
		deg := graph.FrontierDegrees(k.g, frontier, k.deg)
		cum := k.cum[:nf+1]
		cum[nf] = scan.BlockExclusive(k.m, deg, cum[:nf])
		// One index per shard; the executing worker (not the shard id) owns
		// the discovery buffer, so this is balanced under any loop policy.
		k.m.ParallelForWorker(p, func(shard, w int) {
			lo, hi := sched.WeightedRange(cum, p, shard)
			for i := lo; i < hi; i++ {
				relax(frontier[i], w)
			}
		})
		return
	}
	k.m.ParallelForWorker(nf, func(i, w int) { relax(frontier[i], w) })
}

// assembleNext turns the per-worker discovery buffers into the next
// frontier: a serial scan of the P buffer sizes, then each worker copies
// its buffer to its offset. The kernel-owned buffers are swapped — the
// assembled frontier becomes current, the consumed one (passed in) becomes
// the next level's target — and the new frontier size is returned.
func (k *Kernel) assembleNext(consumed []uint32) int {
	p := k.m.P()
	total := 0
	for w := 0; w < p; w++ {
		k.wOff[w] = total
		total += len(k.bufs[w])
	}
	k.wOff[p] = total
	next := k.next[:total]
	k.m.ParallelFor(p, func(w int) {
		copy(next[k.wOff[w]:k.wOff[w+1]], k.bufs[w])
		k.bufs[w] = k.bufs[w][:0]
	})
	k.frontier, k.next = next, consumed[:0]
	return total
}

// RunCASLTFrontier executes BFS with an explicit frontier and
// CAS-LT-guarded discovery tuples. Prepare must have been called first.
func (k *Kernel) RunCASLTFrontier() Result {
	k.ensureFrontierState()
	k.frontier = append(k.frontier[:0], k.source)
	L := uint32(0)
	for len(k.frontier) > 0 {
		frontier := k.frontier
		k.relaxFrontier(L, k.base+L+1)
		if k.assembleNext(frontier) == 0 {
			break
		}
		L++
	}
	k.base += L + 1
	return k.result(int(L))
}

// frontierStateBytes reports the extra memory the frontier variant keeps,
// for tests asserting it stays O(N + P).
func (k *Kernel) frontierStateBytes() int {
	if k.bufs == nil {
		return 0
	}
	b := cap(k.frontier)*4 + cap(k.next)*4 + len(k.wOff)*8
	for _, buf := range k.bufs {
		b += cap(buf) * 4
	}
	return b
}
