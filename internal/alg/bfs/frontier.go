package bfs

import (
	"sync/atomic"

	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/sched"
)

// This file implements the frontier-based refinement of the paper's BFS:
// instead of sweeping all N vertices per level to find the frontier (the
// Rodinia formulation of Figure 3, whose per-level cost is Θ(N) even for
// tiny frontiers), the kernel carries the frontier explicitly. Winners
// append their discoveries to per-worker buffers, and the next frontier is
// assembled with a serial P-element offset scan plus a parallel copy — the
// same work-sharing shape as everything else on the machine. The
// concurrent-write handling is unchanged (CAS-LT with the level as the
// round id), so the variant isolates the algorithmic sweep cost from the
// CW method cost; the ablation benchmark compares the two formulations.
//
// The level loop is one SPMD body over exec.Ctx: the offset scan runs in a
// Single (one worker between barriers under team, inline under pool), and
// a level costs three region rounds — relax, single, copy — under every
// backend. Under edge balance the frontier itself is re-sharded every
// level: the frontier vertices' degrees are block-scanned in-region (two
// aligned Range passes around a Single, the textbook block scan) into an
// arc-prefix array, and each shard takes a near-equal-arc slice of it
// (sched.WeightedRange), so one hub on the frontier no longer serializes
// the level behind a single worker.

// ensureFrontierState lazily allocates the frontier variant's buffers: the
// two level buffers (current and next frontier), the per-worker discovery
// buffers, the offset scratch, and — when the kernel is edge-balanced — the
// frontier-degree arrays. Both level buffers are owned by the kernel and
// survive across runs, so repeated runs reuse grown capacity instead of
// re-appending into a stale slice header. Entry points call this before
// the region opens, so allocation never races.
func (k *Kernel) ensureFrontierState() {
	p := k.m.P()
	if k.bufs == nil {
		k.bufs = make([][]uint32, p)
		k.wOff = make([]int, p+1)
		k.degSum = make([]uint64, p)
	}
	if cap(k.frontier) < k.n {
		k.frontier = make([]uint32, 0, k.n)
		k.next = make([]uint32, 0, k.n)
	}
	if k.balance == graph.BalanceEdge && len(k.cum) < k.n+1 {
		k.deg = make([]uint32, k.n)
		k.cum = make([]uint32, k.n+1)
		k.degPart = make([]uint32, p)
	}
}

// relaxFrontier runs one push level: every frontier vertex relaxes its
// arcs, CAS-LT winners write the discovery tuple and append the vertex to
// the share's buffer, adding its degree to the share's degSum slot (the
// hybrid driver's frontier-edge counter). Partitioning follows the
// kernel's balance policy. Ends with the level's closing barrier either
// way (the loop constructs' own).
func (k *Kernel) relaxFrontier(ctx exec.Ctx, frontier []uint32, L, round uint32) {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	bufs := k.bufs
	rec := ctx.Metrics()
	relax := func(v uint32, w int) {
		sh := rec.Shard(w)
		for j := offsets[v]; j < offsets[v+1]; j++ {
			u := targets[j]
			if k.bitmap {
				// Bit-packed path: the visited filter and the claim both live
				// in visBits. The filter Test plays the role of the word
				// path's visited load (unrecorded, zero RMWs); the claim's
				// own pre-check then mirrors the CAS-LT cell pre-check, so
				// cas_attempts/precheck_skips keep their meaning. The winning
				// fetch-OR needs no round id — "visited" is a common write —
				// and winner selection arbitrates the tuple exactly as the
				// round-stamped cell does.
				if k.visBits.Test(int(u)) {
					continue
				}
				if sh.Claim(int(u), round, k.visBits.TryClaimBitOutcome(int(u))) {
					k.parent[u] = v
					k.selEdge[u] = j
					atomic.StoreUint32(&k.level[u], L+1)
					bufs[w] = append(bufs[w], u)
					k.degSum[w] += uint64(offsets[u+1] - offsets[u])
				}
				continue
			}
			if atomic.LoadUint32(&k.visited[u]) != 0 {
				continue
			}
			if sh.Claim(int(u), round, k.cells.TryClaimOutcome(int(u), round)) {
				k.parent[u] = v
				k.selEdge[u] = j
				atomic.StoreUint32(&k.visited[u], 1)
				atomic.StoreUint32(&k.level[u], L+1)
				bufs[w] = append(bufs[w], u)
				k.degSum[w] += uint64(offsets[u+1] - offsets[u])
			}
		}
	}
	nf := len(frontier)
	if k.balance == graph.BalanceEdge && nf > 1 {
		p := ctx.P()
		deg := k.deg[:nf]
		cum := k.cum[:nf+1]
		// Pass 1: degrees plus each block's partial sum. Shares map to
		// workers block-wise under every backend, so the partial lands in
		// the share's own slot.
		ctx.Range(nf, func(lo, hi, w int) {
			var s uint32
			for i := lo; i < hi; i++ {
				v := frontier[i]
				deg[i] = offsets[v+1] - offsets[v]
				s += deg[i]
			}
			k.degPart[w] = s
		})
		// Serial P-element exclusive scan of the partials. Empty shares
		// never ran pass 1, so their stale slots are re-derived from the
		// same block partition the loops use.
		ctx.Single(func() {
			var tot uint32
			for i := 0; i < p; i++ {
				if lo, hi := sched.BlockRange(nf, p, i); lo == hi {
					k.degPart[i] = 0
				}
				s := k.degPart[i]
				k.degPart[i] = tot
				tot += s
			}
			cum[nf] = tot
		})
		// Pass 2: same block ranges, so each share's partial lines up.
		ctx.Range(nf, func(lo, hi, w int) {
			run := k.degPart[w]
			for i := lo; i < hi; i++ {
				cum[i] = run
				run += deg[i]
			}
		})
		// One shard per slot; the executing worker owns the discovery
		// buffer, so this is balanced under any loop policy.
		ctx.ForWorker(p, func(shard, w int) {
			lo, hi := sched.WeightedRange(cum, p, shard)
			for i := lo; i < hi; i++ {
				relax(frontier[i], w)
			}
		})
		return
	}
	if k.steal && nf > 1 {
		// Work-stealing relaxation: chunks of the frontier migrate from
		// straggling workers (the ones that drew the hubs) to idle ones.
		// The executing worker owns the discovery buffer it appends to, so
		// chunk migration never moves a buffer between workers mid-append.
		ctx.StealRange(nf, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				relax(frontier[i], w)
			}
		})
		return
	}
	ctx.ForWorker(nf, func(i, w int) { relax(frontier[i], w) })
}

// RunCASLTFrontier executes BFS with an explicit frontier and
// CAS-LT-guarded discovery tuples under the machine's default execution
// backend. Prepare must have been called first.
func (k *Kernel) RunCASLTFrontier() Result { return k.RunCASLTFrontierExec(k.m.Exec()) }

// RunCASLTFrontierExec is RunCASLTFrontier under an explicit execution
// backend.
func (k *Kernel) RunCASLTFrontierExec(e machine.Exec) Result {
	p := k.m.P()
	k.ensureFrontierState()
	k.frontier = append(k.frontier[:0], k.source)
	var depth uint32
	k.trace = exec.Run(k.m, e, func(ctx exec.Ctx) {
		L := uint32(0)
		for {
			round := k.base + L + 1
			frontier := k.frontier
			k.relaxFrontier(ctx, frontier, L, round)
			ctx.Single(func() {
				total := 0
				for i := 0; i < p; i++ {
					k.wOff[i] = total
					total += len(k.bufs[i])
					k.degSum[i] = 0 // consumed by the hybrid only; keep zeroed
				}
				k.wOff[p] = total
				// Swap the kernel-owned buffers: the assembled frontier
				// becomes current, the consumed one the next level's target.
				k.frontier, k.next = k.next[:total], frontier[:0]
			})
			// Single's barrier published the offsets and the swap.
			if len(k.frontier) == 0 {
				if ctx.Worker() == 0 {
					depth = L
				}
				break
			}
			next := k.frontier
			ctx.ForWorker(p, func(i, _ int) {
				copy(next[k.wOff[i]:k.wOff[i+1]], k.bufs[i])
				k.bufs[i] = k.bufs[i][:0]
			})
			L++
		}
	})
	k.base += depth + 1
	return k.result(int(depth))
}

// frontierStateBytes reports the extra memory the frontier variant keeps,
// for tests asserting it stays O(N + P).
func (k *Kernel) frontierStateBytes() int {
	if k.bufs == nil {
		return 0
	}
	b := cap(k.frontier)*4 + cap(k.next)*4 + len(k.wOff)*8
	for _, buf := range k.bufs {
		b += cap(buf) * 4
	}
	return b
}
