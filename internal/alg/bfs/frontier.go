package bfs

import "sync/atomic"

// This file implements the frontier-based refinement of the paper's BFS:
// instead of sweeping all N vertices per level to find the frontier (the
// Rodinia formulation of Figure 3, whose per-level cost is Θ(N) even for
// tiny frontiers), the kernel carries the frontier explicitly. Winners
// append their discoveries to per-worker buffers, and the next frontier is
// assembled with a serial P-element offset scan plus a parallel copy — the
// same work-sharing shape as everything else on the machine. The
// concurrent-write handling is unchanged (CAS-LT with the level as the
// round id), so the variant isolates the algorithmic sweep cost from the
// CW method cost; the ablation benchmark compares the two formulations.

// ensureFrontierState lazily allocates the frontier variant's buffers: the
// two level buffers (current and next frontier), the per-worker discovery
// buffers and the offset scratch. Both level buffers are owned by the kernel
// and survive across runs, so repeated runs reuse grown capacity instead of
// re-appending into a stale slice header.
func (k *Kernel) ensureFrontierState() {
	p := k.m.P()
	if k.bufs == nil {
		k.bufs = make([][]uint32, p)
		k.wOff = make([]int, p+1)
	}
	if cap(k.frontier) < k.n {
		k.frontier = make([]uint32, 0, k.n)
		k.next = make([]uint32, 0, k.n)
	}
}

// RunCASLTFrontier executes BFS with an explicit frontier and
// CAS-LT-guarded discovery tuples. Prepare must have been called first.
func (k *Kernel) RunCASLTFrontier() Result {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	p := k.m.P()
	k.ensureFrontierState()
	k.frontier = append(k.frontier[:0], k.source)
	L := uint32(0)
	for len(k.frontier) > 0 {
		round := k.base + L + 1
		frontier := k.frontier
		bufs := k.bufs
		k.m.ParallelForWorker(len(frontier), func(i, w int) {
			v := frontier[i]
			for j := offsets[v]; j < offsets[v+1]; j++ {
				u := targets[j]
				if atomic.LoadUint32(&k.visited[u]) != 0 {
					continue
				}
				if k.cells.TryClaim(int(u), round) {
					k.parent[u] = v
					k.selEdge[u] = j
					atomic.StoreUint32(&k.visited[u], 1)
					atomic.StoreUint32(&k.level[u], L+1)
					bufs[w] = append(bufs[w], u)
				}
			}
		})

		// Assemble the next frontier: serial scan of the P buffer sizes,
		// then each worker copies its buffer to its offset.
		total := 0
		for w := 0; w < p; w++ {
			k.wOff[w] = total
			total += len(bufs[w])
		}
		k.wOff[p] = total
		next := k.next[:total]
		k.m.ParallelFor(p, func(w int) {
			copy(next[k.wOff[w]:k.wOff[w+1]], bufs[w])
			bufs[w] = bufs[w][:0]
		})

		// Swap the kernel-owned buffers: the assembled frontier becomes
		// current, the just-consumed one becomes next level's target.
		k.frontier, k.next = next, frontier[:0]
		if total == 0 {
			break
		}
		L++
	}
	k.base += L + 1
	return k.result(int(L))
}

// frontierStateBytes reports the extra memory the frontier variant keeps,
// for tests asserting it stays O(N + P).
func (k *Kernel) frontierStateBytes() int {
	if k.bufs == nil {
		return 0
	}
	b := cap(k.frontier)*4 + cap(k.next)*4 + len(k.wOff)*8
	for _, buf := range k.bufs {
		b += cap(buf) * 4
	}
	return b
}
