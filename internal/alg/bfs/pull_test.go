package bfs

import (
	"testing"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// directionGraphs is the ISSUE's cross-validation corpus for the
// direction-optimizing variants: hub-skewed, regular, power-law and
// disconnected shapes.
func directionGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"star":     graph.Star(64),
		"grid":     graph.Grid2D(8, 9),
		"rmat":     graph.RMAT(7, 500, 0.57, 0.19, 0.19, 9),
		"disjoint": graph.Disjoint(graph.ConnectedRandom(50, 120, 5), 3),
	}
}

// checkPullResult validates a pull/hybrid result: exact levels vs
// Sequential (via ValidateBidir) and level-for-level equality with the
// CAS-LT push result on the same graph.
func checkPullResult(t *testing.T, g *graph.Graph, source uint32, r Result, push Result, tag string) {
	t.Helper()
	if err := ValidateBidir(g, source, r); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	for u := range r.Level {
		if r.Level[u] != push.Level[u] {
			t.Fatalf("%s: level[%d] = %d, push CAS-LT has %d", tag, u, r.Level[u], push.Level[u])
		}
	}
	if r.Depth != push.Depth {
		t.Fatalf("%s: depth %d, push CAS-LT has %d", tag, r.Depth, push.Depth)
	}
}

// TestPullHybridMatchPush is the full cross-validation matrix: pull and
// hybrid, pool and team, vertex and edge balance, P in {1,2,4,8}, against
// the CAS-LT push result and the sequential baseline. It runs under -short
// and -race as well — the pull path's exclusive writes and the hybrid's
// direction switches are exactly what the race detector should see.
func TestPullHybridMatchPush(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		m := testMachine(t, p)
		for name, g := range directionGraphs() {
			for _, bal := range graph.Balances {
				// Fresh kernel per balance so lazily-built shards match.
				k := NewKernel(m, g)
				k.SetBalance(bal)
				k.Prepare(0)
				push := k.RunCASLT()
				pushLevels := append([]uint32(nil), push.Level...)
				push.Level = pushLevels
				runs := map[string]func() Result{
					"pull-pool":   k.RunCASLTPull,
					"pull-team":   func() Result { return k.RunCASLTPullExec(machine.ExecTeam) },
					"hybrid-pool": k.RunCASLTHybrid,
					"hybrid-team": func() Result { return k.RunCASLTHybridExec(machine.ExecTeam) },
				}
				for kind, run := range runs {
					k.Prepare(0)
					r := run()
					tag := name + "/" + bal.String() + "/" + kind
					checkPullResult(t, g, 0, r, push, tag)
				}
			}
		}
	}
}

// TestPullHybridNonZeroSource exercises a leaf source on the star (the
// worst straggler case: the hub is the entire level-1 frontier) and an
// interior source on the grid.
func TestPullHybridNonZeroSource(t *testing.T) {
	cases := map[string]struct {
		g   *graph.Graph
		src uint32
	}{
		"star-leaf": {graph.Star(64), 63},
		"grid-mid":  {graph.Grid2D(8, 9), 35},
		"rmat-mid":  {graph.RMAT(7, 500, 0.57, 0.19, 0.19, 9), 100},
	}
	m := testMachine(t, 4)
	for name, tc := range cases {
		for _, bal := range graph.Balances {
			k := NewKernel(m, tc.g)
			k.SetBalance(bal)
			k.Prepare(tc.src)
			push := k.RunCASLT()
			pushLevels := append([]uint32(nil), push.Level...)
			push.Level = pushLevels
			for kind, run := range map[string]func() Result{
				"pull-pool":   k.RunCASLTPull,
				"hybrid-pool": k.RunCASLTHybrid,
				"hybrid-team": func() Result { return k.RunCASLTHybridExec(machine.ExecTeam) },
			} {
				k.Prepare(tc.src)
				r := run()
				checkPullResult(t, tc.g, tc.src, r, push, name+"/"+bal.String()+"/"+kind)
			}
		}
	}
}

// TestEdgeBalancedPushMatchesVertex checks that every push variant yields a
// valid strict result under edge balance, and that repeated mixed runs on
// one kernel (push, frontier, hybrid interleaved — all sharing the CAS-LT
// cells via the round offset) stay correct with no cell reset.
func TestEdgeBalancedPushMatchesVertex(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		m := testMachine(t, p)
		for name, gr := range testGraphs() {
			k := NewKernel(m, gr)
			k.SetBalance(graph.BalanceEdge)
			k.Prepare(0)
			if err := Validate(gr, 0, k.RunCASLT(), true); err != nil {
				t.Fatalf("p=%d %s edge sweep: %v", p, name, err)
			}
			k.Prepare(0)
			if err := Validate(gr, 0, k.RunCASLTFrontier(), true); err != nil {
				t.Fatalf("p=%d %s edge frontier: %v", p, name, err)
			}
			k.Prepare(0)
			if err := Validate(gr, 0, k.RunCASLTExec(machine.ExecTeam), true); err != nil {
				t.Fatalf("p=%d %s edge team sweep: %v", p, name, err)
			}
			k.Prepare(0)
			if err := Validate(gr, 0, k.RunCASLTFrontierExec(machine.ExecTeam), true); err != nil {
				t.Fatalf("p=%d %s edge team frontier: %v", p, name, err)
			}
			if gr.Undirected() {
				k.Prepare(0)
				if err := ValidateBidir(gr, 0, k.RunCASLTHybrid()); err != nil {
					t.Fatalf("p=%d %s edge hybrid after push runs: %v", p, name, err)
				}
			}
		}
	}
}

// TestHybridRepeatedRuns checks the round-offset bookkeeping across
// repeated hybrid runs (pull levels consume no rounds; push levels must
// still never collide with a previous run's claims).
func TestHybridRepeatedRuns(t *testing.T) {
	m := testMachine(t, 4)
	gr := graph.ConnectedRandom(120, 500, 31)
	k := NewKernel(m, gr)
	k.SetBalance(graph.BalanceEdge)
	for rep := 0; rep < 10; rep++ {
		src := uint32(rep * 13 % gr.NumVertices())
		k.Prepare(src)
		var r Result
		switch rep % 3 {
		case 0:
			r = k.RunCASLTHybrid()
		case 1:
			r = k.RunCASLTHybridExec(machine.ExecTeam)
		case 2:
			r = k.RunCASLTFrontier()
		}
		if rep%3 == 2 {
			if err := Validate(gr, src, r, true); err != nil {
				t.Fatalf("rep %d: %v", rep, err)
			}
		} else if err := ValidateBidir(gr, src, r); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}

// TestPullRejectsDirected pins the symmetric-graph guard.
func TestPullRejectsDirected(t *testing.T) {
	gr, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, false)
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, 2)
	k := NewKernel(m, gr)
	k.Prepare(0)
	defer func() {
		if recover() == nil {
			t.Fatal("pull on a directed graph did not panic")
		}
	}()
	k.RunCASLTPull()
}
