package bfs

import (
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/kernel"
)

// variant selects which BFS formulation a registered descriptor runs.
type variant int

const (
	vSweep variant = iota
	vFrontier
	vPull
	vHybrid
)

// instance adapts Kernel to the registry's Instance contract for one
// variant. Run leaves validation to Validate so timed regions stay pure.
type instance struct {
	k        *Kernel
	g        *graph.Graph
	src      uint32
	v        variant
	stealDef bool
	last     Result
	strict   bool
}

func newInstance(v variant) func(m *machine.Machine, w kernel.Workload) kernel.Instance {
	return func(m *machine.Machine, w kernel.Workload) kernel.Instance {
		k := NewKernel(m, w.Graph)
		in := &instance{k: k, g: w.Graph, src: w.Source, v: v, stealDef: k.Stealing(), strict: true}
		if v == vSweep {
			return resolverInstance{in}
		}
		return in
	}
}

func (in *instance) Prepare(s kernel.Settings) {
	in.k.SetBalance(s.Balance)
	in.k.SetBitmap(s.Bitmap)
	switch s.Steal {
	case kernel.StealOn:
		in.k.SetStealing(true)
	case kernel.StealOff:
		in.k.SetStealing(false)
	default:
		in.k.SetStealing(in.stealDef)
	}
	in.k.Prepare(in.src)
}

func (in *instance) Run(s kernel.Settings) kernel.Outcome {
	var r Result
	switch in.v {
	case vFrontier:
		r = in.k.RunCASLTFrontierExec(s.Exec)
	case vPull:
		r = in.k.RunCASLTPullExec(s.Exec)
	case vHybrid:
		r = in.k.RunCASLTHybridExec(s.Exec)
	default:
		r = in.k.RunExec(s.Exec, s.Method)
	}
	in.last = r
	in.strict = in.v != vSweep || s.Method.SafeForArbitrary()
	return kernel.Outcome{Vector: r.Level, Depth: r.Depth}
}

func (in *instance) Validate() error {
	if in.v == vPull || in.v == vHybrid {
		return ValidateBidir(in.g, in.src, in.last)
	}
	return Validate(in.g, in.src, in.last, in.strict)
}

func (in *instance) Trace() *exec.TraceStats { return in.k.Trace() }

// resolverInstance exposes the generic-resolver entry point on the sweep
// variant only (the frontier formulations hard-wire CAS-LT).
type resolverInstance struct{ *instance }

func (in resolverInstance) RunResolver(e machine.Exec, r cw.Resolver) kernel.Outcome {
	res := in.k.RunResolverExec(e, r)
	in.last, in.strict = res, true
	return kernel.Outcome{Vector: res.Level, Depth: res.Depth}
}

func init() {
	kernel.Register(kernel.Descriptor{
		Name:        "bfs",
		Pkg:         "bfs",
		Summary:     "level-synchronous BFS, full vertex sweep per round, one variant per CW method",
		Methods:     cw.Methods,
		Balanced:    true,
		Stealable:   true,
		Relabelable: true,
		Input:       kernel.InputGraph,
		Contention:  kernel.ContentionGuarded,
		New:         newInstance(vSweep),
	})
	kernel.Register(kernel.Descriptor{
		Name:        "bfs-frontier",
		Pkg:         "bfs",
		Summary:     "frontier-queue BFS, CAS-LT claims, optional bit-packed visited set",
		Methods:     []cw.Method{cw.CASLT},
		Bitmap:      true,
		Balanced:    true,
		Stealable:   true,
		Relabelable: true,
		Input:       kernel.InputGraph,
		Contention:  kernel.ContentionCAS,
		New:         newInstance(vFrontier),
	})
	kernel.Register(kernel.Descriptor{
		Name:        "bfs-pull",
		Pkg:         "bfs",
		Summary:     "bottom-up (pull) BFS; exclusive writes, needs a symmetric graph",
		Methods:     []cw.Method{cw.CASLT},
		Bitmap:      true,
		Balanced:    true,
		Relabelable: true,
		Input:       kernel.InputGraph,
		Symmetric:   true,
		Contention:  kernel.ContentionNone,
		New:         newInstance(vPull),
	})
	kernel.Register(kernel.Descriptor{
		Name:        "bfs-hybrid",
		Pkg:         "bfs",
		Summary:     "direction-optimizing BFS switching push/pull per round",
		Methods:     []cw.Method{cw.CASLT},
		Bitmap:      true,
		Balanced:    true,
		Stealable:   true,
		Relabelable: true,
		Input:       kernel.InputGraph,
		Symmetric:   true,
		Contention:  kernel.ContentionCAS,
		New:         newInstance(vHybrid),
	})
}
