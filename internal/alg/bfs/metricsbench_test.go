package bfs

import (
	"testing"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// BenchmarkMetricsOverheadBFS measures the metrics layer's cost on a real
// kernel: a full CAS-LT BFS, metrics off vs on. The "off" sub-benchmark is
// the committed overhead witness against the pre-metrics tree (the same
// benchmark body runs there without the layer; BENCH_metrics_overhead.json
// holds the committed comparison): per-claim the off path costs one inlined nil
// branch plus materializing the claim outcome — about a nanosecond — and a
// traversal kernel buries that in memory traffic. "on" additionally pays
// the shard increments and the per-worker timestamping (no probe here;
// EnableProbe adds a CAS per executed attempt on top).
func BenchmarkMetricsOverheadBFS(b *testing.B) {
	g := graph.ConnectedRandom(20000, 120000, 1)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			var opts []machine.Option
			if mode == "on" {
				opts = append(opts, machine.WithMetrics())
			}
			m := machine.New(4, opts...)
			defer m.Close()
			k := NewKernel(m, g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Prepare(0)
				k.RunCASLTExec(machine.ExecPool)
			}
		})
	}
}
