package bfs

import "sync/atomic"

// Direction-optimizing BFS (Beamer, Asanović, Patterson, SC'12) on top of
// the CAS-LT kernel.
//
// The push formulations above relax every arc out of the frontier, and
// each discovery is a *common concurrent write*: several frontier vertices
// may discover the same u in one round, so the tuple write needs a CW
// method. The pull (bottom-up) formulation inverts the loop: every
// still-unreached vertex u scans its own adjacency list for a neighbor at
// the current level and, on success, writes its *own* tuple
// (Parent[u], SelEdge[u], Visited[u], Level[u]). Exactly one virtual
// processor writes each location — an *exclusive* write in PRAM terms — so
// no CAS-LT claim (and no round id) is needed at all. That makes pull the
// repo's EW ablation point against the paper's CW methods: same traversal,
// same tuple, no write contention by construction.
//
// Pull pays for that by touching every unreached vertex each level; it wins
// only when the frontier's arc count dwarfs the unexplored arc count,
// because most pull scans then terminate after a few arcs (the first
// neighbor probed is already at level L). The hybrid driver switches
// per level on Beamer's heuristic: push→pull when the frontier's outgoing
// arcs m_f exceed the unexplored arcs m_u / α, and pull→push when the
// frontier shrinks below N/β vertices. Each level is still one PRAM round
// bracketed by machine barriers; only the loop *shape* (and hence the CW
// class) changes between rounds, never the round protocol around it.
//
// SelEdge direction: a push discovery records the arc parent→u, a pull
// discovery the arc u→parent (the arc the scan actually examined — the
// reverse arc need not exist at a findable index in a directed CSR).
// ValidateBidir accepts either orientation; the strict push validator
// applies to push-only runs.

const (
	// HybridAlpha is the push→pull threshold: switch when
	// m_f * HybridAlpha > m_u (frontier arcs outgrow unexplored arcs/α).
	HybridAlpha = 14
	// HybridBeta is the pull→push threshold: switch back when the frontier
	// holds fewer than N/HybridBeta vertices.
	HybridBeta = 24
)

// NextDirection applies the Beamer switch with hysteresis: pull reports
// whether the *previous* level ran bottom-up; the return value directs the
// next level. mf is the arc count out of the current frontier, mu the arc
// count out of still-unvisited vertices, nf the frontier vertex count.
// Exported so the bench harness's deterministic work model replays the
// hybrid's direction decisions with the kernel's own rule.
func NextDirection(pull bool, mf, mu, nf, n uint64) bool {
	if !pull {
		return mf*HybridAlpha > mu
	}
	return nf*HybridBeta >= n
}

// pullLevel runs one bottom-up level over worker range [lo, hi): each
// still-unreached vertex scans its arcs for a neighbor at level L and
// claims itself for level L+1. level[u] is written only by the worker that
// owns u's shard (shards are static across levels), so the filter read is
// plain; neighbor levels are cross-worker and read atomically. Returns
// whether anything was discovered. onFound, if non-nil, observes each
// discovery (the hybrid driver's frontier collection).
func (k *Kernel) pullLevel(lo, hi int, L uint32, onFound func(u uint32)) bool {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	progress := false
	for u := lo; u < hi; u++ {
		if k.level[u] != Unreached {
			continue
		}
		for j := offsets[u]; j < offsets[u+1]; j++ {
			v := targets[j]
			if atomic.LoadUint32(&k.level[v]) == L {
				k.parent[u] = v
				k.selEdge[u] = j
				atomic.StoreUint32(&k.visited[u], 1)
				atomic.StoreUint32(&k.level[u], L+1)
				progress = true
				if onFound != nil {
					onFound(uint32(u))
				}
				break
			}
		}
	}
	return progress
}

// RunCASLTPull executes a pure bottom-up BFS. Prepare must have been called
// first. Every level sweeps all unreached vertices (under the kernel's
// balance policy), so this is the ablation endpoint, not the practical
// kernel — use RunCASLTHybrid for that. No CAS-LT rounds are consumed: all
// writes are exclusive.
// requireSymmetric guards the bottom-up variants: pull scans a vertex's
// *out*-arcs to find a parent, which finds the in-neighbors only when the
// CSR stores both directions.
func (k *Kernel) requireSymmetric() {
	if !k.g.Undirected() {
		panic("bfs: pull/hybrid BFS requires an undirected (symmetric) graph")
	}
}

func (k *Kernel) RunCASLTPull() Result {
	k.requireSymmetric()
	var done atomic.Uint32
	L := uint32(0)
	for {
		done.Store(1)
		k.sweep(func(lo, hi, _ int) {
			if k.pullLevel(lo, hi, L, nil) {
				done.Store(0)
			}
		})
		if done.Load() == 1 {
			break
		}
		L++
	}
	return k.result(int(L))
}

// pullFrontierLevel is one bottom-up level that also collects discoveries
// into the per-worker buffers (with degSum bookkeeping), so the hybrid
// driver can keep its explicit frontier across direction switches.
func (k *Kernel) pullFrontierLevel(L uint32) {
	offsets := k.g.Offsets()
	k.sweep(func(lo, hi, w int) {
		k.pullLevel(lo, hi, L, func(u uint32) {
			k.bufs[w] = append(k.bufs[w], u)
			k.degSum[w] += uint64(offsets[u+1] - offsets[u])
		})
	})
}

// RunCASLTHybrid executes the direction-optimizing BFS: push levels are the
// CAS-LT frontier relaxation (edge- or vertex-balanced), pull levels the
// bottom-up scan, chosen per level by NextDirection. The explicit frontier
// is maintained through both directions; m_u starts at the graph's arc
// count minus the source's degree and decreases by each level's discovered
// arc count. Prepare must have been called first.
func (k *Kernel) RunCASLTHybrid() Result {
	k.requireSymmetric()
	p := k.m.P()
	k.ensureFrontierState()
	k.frontier = append(k.frontier[:0], k.source)
	mf := uint64(k.g.Degree(k.source))
	mu := uint64(k.g.NumArcs()) - mf
	pull := false
	L := uint32(0)
	for len(k.frontier) > 0 {
		pull = NextDirection(pull, mf, mu, uint64(len(k.frontier)), uint64(k.n))
		frontier := k.frontier
		for w := 0; w < p; w++ {
			k.degSum[w] = 0
		}
		if pull {
			k.pullFrontierLevel(L)
		} else {
			k.relaxFrontier(L, k.base+L+1)
		}
		total := k.assembleNext(frontier)
		var disc uint64
		for w := 0; w < p; w++ {
			disc += k.degSum[w]
		}
		mu -= disc
		mf = disc
		if total == 0 {
			break
		}
		L++
	}
	k.base += L + 1
	return k.result(int(L))
}
