package bfs

import (
	"sync/atomic"

	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
	"crcwpram/internal/graph"
)

// Direction-optimizing BFS (Beamer, Asanović, Patterson, SC'12) on top of
// the CAS-LT kernel.
//
// The push formulations above relax every arc out of the frontier, and
// each discovery is a *common concurrent write*: several frontier vertices
// may discover the same u in one round, so the tuple write needs a CW
// method. The pull (bottom-up) formulation inverts the loop: every
// still-unreached vertex u scans its own adjacency list for a neighbor at
// the current level and, on success, writes its *own* tuple
// (Parent[u], SelEdge[u], Visited[u], Level[u]). Exactly one virtual
// processor writes each location — an *exclusive* write in PRAM terms — so
// no CAS-LT claim (and no round id) is needed at all. That makes pull the
// repo's EW ablation point against the paper's CW methods: same traversal,
// same tuple, no write contention by construction.
//
// Pull pays for that by touching every unreached vertex each level; it wins
// only when the frontier's arc count dwarfs the unexplored arc count,
// because most pull scans then terminate after a few arcs (the first
// neighbor probed is already at level L). The hybrid driver switches
// per level on Beamer's heuristic: push→pull when the frontier's outgoing
// arcs m_f exceed the unexplored arcs m_u / α, and pull→push when the
// frontier shrinks below N/β vertices. Each level is still one PRAM round
// bracketed by region barriers; only the loop *shape* (and hence the CW
// class) changes between rounds, never the round protocol around it. The
// per-level direction decision must be SPMD-consistent, so every worker
// tracks (m_f, m_u, direction) in worker-local variables updated from
// shared counters only after the level's Single published them — all
// workers therefore compute the identical decision sequence.
//
// SelEdge direction: a push discovery records the arc parent→u, a pull
// discovery the arc u→parent (the arc the scan actually examined — the
// reverse arc need not exist at a findable index in a directed CSR).
// ValidateBidir accepts either orientation; the strict push validator
// applies to push-only runs.

const (
	// HybridAlpha is the push→pull threshold: switch when
	// m_f * HybridAlpha > m_u (frontier arcs outgrow unexplored arcs/α).
	HybridAlpha = 14
	// HybridBeta is the pull→push threshold: switch back when the frontier
	// holds fewer than N/HybridBeta vertices.
	HybridBeta = 24
)

// NextDirection applies the Beamer switch with hysteresis: pull reports
// whether the *previous* level ran bottom-up; the return value directs the
// next level. mf is the arc count out of the current frontier, mu the arc
// count out of still-unvisited vertices, nf the frontier vertex count.
// Exported so the bench harness's deterministic work model replays the
// hybrid's direction decisions with the kernel's own rule.
func NextDirection(pull bool, mf, mu, nf, n uint64) bool {
	if !pull {
		return mf*HybridAlpha > mu
	}
	return nf*HybridBeta >= n
}

// pullLevel runs one bottom-up level over worker range [lo, hi): each
// still-unreached vertex scans its arcs for a neighbor at level L and
// claims itself for level L+1. level[u] is written only by the worker that
// owns u's shard (shards are static across levels), so the filter read is
// plain; neighbor levels are cross-worker and read atomically. Returns
// whether anything was discovered. onFound, if non-nil, observes each
// discovery (the hybrid driver's frontier collection).
func (k *Kernel) pullLevel(lo, hi int, L uint32, onFound func(u uint32)) bool {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	progress := false
	for u := lo; u < hi; u++ {
		if k.level[u] != Unreached {
			continue
		}
		for j := offsets[u]; j < offsets[u+1]; j++ {
			v := targets[j]
			if atomic.LoadUint32(&k.level[v]) == L {
				k.parent[u] = v
				k.selEdge[u] = j
				atomic.StoreUint32(&k.visited[u], 1)
				atomic.StoreUint32(&k.level[u], L+1)
				progress = true
				if onFound != nil {
					onFound(uint32(u))
				}
				break
			}
		}
	}
	return progress
}

// pullLevelBits is pullLevel over the bit-packed representation: the
// unreached filter reads visBits and the neighbor-membership probe reads
// curBits (512 vertices per cache line each, versus 16 for the word
// arrays — the point of the bitmap variant). A discovery sets the vertex's
// bit in visBits and nextBits by fetch-OR; the bits are common CWs (every
// writer stores "set"), and since u is shard-owned this level the write is
// in fact exclusive — the OR only arbitrates word aliasing with the 63
// neighboring bits. level/parent/selEdge are written exactly as in
// pullLevel, so the output arrays stay byte-identical.
func (k *Kernel) pullLevelBits(lo, hi int, L uint32, onFound func(u uint32)) bool {
	offsets, targets := k.g.Offsets(), k.g.Targets()
	progress := false
	for u := lo; u < hi; u++ {
		if k.visBits.Test(u) {
			continue
		}
		for j := offsets[u]; j < offsets[u+1]; j++ {
			v := targets[j]
			if k.curBits.Test(int(v)) {
				k.parent[u] = v
				k.selEdge[u] = j
				k.visBits.Set(u)
				k.nextBits.Set(u)
				atomic.StoreUint32(&k.level[u], L+1)
				progress = true
				if onFound != nil {
					onFound(uint32(u))
				}
				break
			}
		}
	}
	return progress
}

// requireSymmetric guards the bottom-up variants: pull scans a vertex's
// *out*-arcs to find a parent, which finds the in-neighbors only when the
// CSR stores both directions.
func (k *Kernel) requireSymmetric() {
	if !k.g.Undirected() {
		panic("bfs: pull/hybrid BFS requires an undirected (symmetric) graph")
	}
}

// RunCASLTPull executes a pure bottom-up BFS under the machine's default
// execution backend. Prepare must have been called first. Every level
// sweeps all unreached vertices (under the kernel's balance policy), so
// this is the ablation endpoint, not the practical kernel — use
// RunCASLTHybrid for that. No CAS-LT rounds are consumed: all writes are
// exclusive.
func (k *Kernel) RunCASLTPull() Result { return k.RunCASLTPullExec(k.m.Exec()) }

// RunCASLTPullExec is RunCASLTPull under an explicit execution backend.
func (k *Kernel) RunCASLTPullExec(e machine.Exec) Result {
	k.requireSymmetric()
	if k.bitmap {
		return k.runPullBitmap(e)
	}
	// Pull's writes are exclusive (each vertex writes only its own tuple),
	// so there are no selection attempts to record — the shard is unused.
	depth := k.runLevels(e, func(lo, hi, _ int, L, _ uint32, _ *metrics.Shard) bool {
		return k.pullLevel(lo, hi, L, nil)
	}, false)
	return k.result(int(depth))
}

// runPullBitmap is the bit-packed pure pull driver: the level-membership
// set lives in double-buffered bitmaps (curBits holds level L, discoveries
// OR into nextBits), swapped in a Single and followed by an O(N/64)
// clearing round of the consumed buffer. Per level that is three region
// rounds — sweep, swap, clear — versus runLevels' one, but the sweep (the
// part proportional to arcs) now reads 32× denser membership state.
func (k *Kernel) runPullBitmap(e machine.Exec) Result {
	if k.balance == graph.BalanceEdge {
		k.ensureArcBounds() // allocate outside the region
	}
	k.curBits.Set(int(k.source))
	var depth uint32
	k.trace = exec.Run(k.m, e, func(ctx exec.Ctx) {
		rec := ctx.Metrics()
		progress := ctx.Flag()
		L := uint32(0)
		for {
			progress.Set(L+1, 0) // prime next level's flag (common CW)
			if ctx.Worker() == 0 {
				rec.AddRounds(1)
			}
			k.ctxSweep(ctx, func(lo, hi, w int) {
				if k.pullLevelBits(lo, hi, L, nil) {
					progress.Set(L, 1)
				}
			})
			if progress.Get(L) == 0 {
				if ctx.Worker() == 0 {
					depth = L
				}
				break
			}
			ctx.Single(func() { k.curBits, k.nextBits = k.nextBits, k.curBits })
			// Clear the consumed buffer (now nextBits) for level L+1's
			// discoveries; sharded bit clears are word-boundary safe.
			ctx.Range(k.n, func(lo, hi, _ int) { k.nextBits.ResetRange(lo, hi) })
			L++
		}
	})
	return k.result(int(depth))
}

// RunCASLTHybrid executes the direction-optimizing BFS under the machine's
// default execution backend: push levels are the CAS-LT frontier
// relaxation (edge- or vertex-balanced), pull levels the bottom-up scan,
// chosen per level by NextDirection. The explicit frontier is maintained
// through both directions; m_u starts at the graph's arc count minus the
// source's degree and decreases by each level's discovered arc count.
// Prepare must have been called first.
func (k *Kernel) RunCASLTHybrid() Result { return k.RunCASLTHybridExec(k.m.Exec()) }

// RunCASLTHybridExec is RunCASLTHybrid under an explicit execution
// backend. Per level it costs the relax/pull sweep round, the Single that
// assembles offsets and the level's arc count, and the copy round — the
// same three-round shape as RunCASLTFrontierExec regardless of direction.
func (k *Kernel) RunCASLTHybridExec(e machine.Exec) Result {
	k.requireSymmetric()
	offsets := k.g.Offsets()
	p := k.m.P()
	k.ensureFrontierState()
	if k.balance == graph.BalanceEdge {
		k.ensureArcBounds() // allocate outside the region
	}
	k.frontier = append(k.frontier[:0], k.source)
	mfInit := uint64(k.g.Degree(k.source))
	muInit := uint64(k.g.NumArcs()) - mfInit
	var depth uint32
	k.trace = exec.Run(k.m, e, func(ctx exec.Ctx) {
		mf, mu := mfInit, muInit
		pull := false
		L := uint32(0)
		for {
			pull = NextDirection(pull, mf, mu, uint64(len(k.frontier)), uint64(k.n))
			round := k.base + L + 1
			frontier := k.frontier
			if pull {
				onFound := func(w int) func(u uint32) {
					return func(u uint32) {
						k.bufs[w] = append(k.bufs[w], u)
						k.degSum[w] += uint64(offsets[u+1] - offsets[u])
					}
				}
				if k.bitmap {
					// Push→pull conversion: rebuild the level-L membership
					// bitmap from the explicit frontier list (one clearing
					// round plus one fetch-OR per frontier vertex), so the
					// pull sweep probes bits regardless of which direction
					// produced the frontier.
					ctx.Range(k.n, func(lo, hi, _ int) { k.curBits.ResetRange(lo, hi) })
					ctx.ForWorker(len(frontier), func(i, _ int) { k.curBits.Set(int(frontier[i])) })
					k.ctxSweep(ctx, func(lo, hi, w int) {
						k.pullLevelBits(lo, hi, L, onFound(w))
					})
				} else {
					k.ctxSweep(ctx, func(lo, hi, w int) {
						k.pullLevel(lo, hi, L, onFound(w))
					})
				}
			} else {
				k.relaxFrontier(ctx, frontier, L, round)
			}
			ctx.Single(func() {
				total := 0
				var disc uint64
				for i := 0; i < p; i++ {
					k.wOff[i] = total
					total += len(k.bufs[i])
					disc += k.degSum[i]
					k.degSum[i] = 0 // re-zero for the next level's counters
				}
				k.wOff[p] = total
				k.discArcs = disc
				k.frontier, k.next = k.next[:total], frontier[:0]
			})
			// Single's barrier published the offsets, the swap and discArcs.
			mu -= k.discArcs
			mf = k.discArcs
			if len(k.frontier) == 0 {
				if ctx.Worker() == 0 {
					depth = L
				}
				break
			}
			next := k.frontier
			ctx.ForWorker(p, func(i, _ int) {
				copy(next[k.wOff[i]:k.wOff[i+1]], k.bufs[i])
				k.bufs[i] = k.bufs[i][:0]
			})
			L++
		}
	})
	k.base += depth + 1
	return k.result(int(depth))
}
