package bfs

import (
	"testing"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// TestBitmapVariantsMatchWord is the bit-packed twin of
// TestPullHybridMatchPush: pull, hybrid and frontier with SetBitmap(true),
// pool and team, both balances, P in {1,2,4,8}, checked level-for-level
// against the word-representation CAS-LT push result and the sequential
// baseline. The representations must be output-identical by construction.
func TestBitmapVariantsMatchWord(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		m := testMachine(t, p)
		for name, g := range directionGraphs() {
			for _, bal := range graph.Balances {
				k := NewKernel(m, g)
				k.SetBalance(bal)
				k.Prepare(0)
				push := k.RunCASLT()
				pushLevels := append([]uint32(nil), push.Level...)
				push.Level = pushLevels
				k.SetBitmap(true)
				runs := map[string]func() Result{
					"pull-pool":     k.RunCASLTPull,
					"pull-team":     func() Result { return k.RunCASLTPullExec(machine.ExecTeam) },
					"hybrid-pool":   k.RunCASLTHybrid,
					"hybrid-team":   func() Result { return k.RunCASLTHybridExec(machine.ExecTeam) },
					"frontier-pool": k.RunCASLTFrontier,
					"frontier-team": func() Result { return k.RunCASLTFrontierExec(machine.ExecTeam) },
				}
				for kind, run := range runs {
					k.Prepare(0)
					r := run()
					tag := name + "/" + bal.String() + "/bitmap-" + kind
					if kind == "frontier-pool" || kind == "frontier-team" {
						// Frontier is push-only: the strict validator applies.
						if err := Validate(g, 0, r, true); err != nil {
							t.Fatalf("%s: %v", tag, err)
						}
						for u := range r.Level {
							if r.Level[u] != push.Level[u] {
								t.Fatalf("%s: level[%d] = %d, word push has %d", tag, u, r.Level[u], push.Level[u])
							}
						}
						continue
					}
					checkPullResult(t, g, 0, r, push, tag)
				}
			}
		}
	}
}

// TestBitmapToggleInterleaved toggles the representation between runs on
// one kernel (Prepare between each, as documented): word and bitmap runs
// must not perturb each other through the shared level/parent arrays or
// the CAS-LT round offset.
func TestBitmapToggleInterleaved(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(150, 600, 17)
	k := NewKernel(m, g)
	seq := Sequential(g, 3)
	for rep := 0; rep < 8; rep++ {
		k.SetBitmap(rep%2 == 0)
		k.Prepare(3)
		var r Result
		switch rep % 4 {
		case 0, 1:
			r = k.RunCASLTHybrid()
		case 2:
			r = k.RunCASLTPull()
		case 3:
			r = k.RunCASLTFrontier()
		}
		for u := range r.Level {
			if r.Level[u] != seq.Level[u] {
				t.Fatalf("rep %d (bitmap=%v): level[%d] = %d, want %d",
					rep, k.Bitmap(), u, r.Level[u], seq.Level[u])
			}
		}
	}
}

// TestBitmapDeepPath drives the pure-pull double-buffer swap/clear through
// many levels (a path graph is one swap per vertex) and a star through the
// single-level worst case.
func TestBitmapDeepPath(t *testing.T) {
	m := testMachine(t, 4)
	for name, g := range map[string]*graph.Graph{
		"path": graph.Path(300),
		"star": graph.Star(200),
	} {
		k := NewKernel(m, g)
		k.SetBitmap(true)
		seq := Sequential(g, 0)
		for _, run := range []func() Result{k.RunCASLTPull, k.RunCASLTHybrid} {
			k.Prepare(0)
			r := run()
			if r.Depth != seq.Depth {
				t.Fatalf("%s: depth %d, want %d", name, r.Depth, seq.Depth)
			}
			for u := range r.Level {
				if r.Level[u] != seq.Level[u] {
					t.Fatalf("%s: level[%d] = %d, want %d", name, u, r.Level[u], seq.Level[u])
				}
			}
		}
	}
}
