// The execution-backend differential matrix: every kernel of the suite,
// under every concurrent-write method it supports, runs on fixed-seed
// inputs under all three exec backends (pool, team, trace), and the
// deterministic projection of each result must be byte-identical across
// backends. Kernels with a bit-packed membership representation (BFS
// frontiers, CC hook claims, matching proposal flags) run under both
// representations, and the bitmap projection must additionally match the
// word run's; the relabeling axis (TestExecMatrixRelabel) runs on permuted
// CSR images and must match the unrelabeled run after unpermuting. This is the single test that replaces the per-algorithm
// team_test.go files: a kernel whose SPMD body behaves differently under
// any backend — a missed barrier, a stale flag slot, a partition mismatch
// — diverges here. CI additionally runs this package under -race, where
// the team backend's sense barriers and the pool backend's fork/join
// steps are both exercised with real concurrency.
//
// What "deterministic projection" means per kernel:
//
//   - bfs (all variants): Level and Depth are the distance metric — unique
//     regardless of which parent wins the arbitrary write.
//   - cc (both algorithms): the partition (labels up to renaming); label
//     values depend on hook winners, the partition cannot.
//   - maxfind: the winning index (the tie-break is a total order).
//   - mis: the membership vector (priorities are seed-deterministic and
//     kills are common writes, so the set itself is unique).
//   - matching: validator-checked always; the full mate vector is compared
//     only at P=1, where all three backends execute serially and the
//     arbitrary-write winners coincide.
//   - listrank: the rank vector (EREW — no concurrent writes at all).
package integration

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/alg/listrank"
	"crcwpram/internal/alg/matching"
	"crcwpram/internal/alg/maxfind"
	"crcwpram/internal/alg/mis"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/race"
)

// matrixExecs is every backend, including the untimed trace replay.
var matrixExecs = []machine.Exec{machine.ExecPool, machine.ExecTeam, machine.ExecTrace}

// guardedMethods are the methods that safely implement the kernels'
// arbitrary concurrent writes (cw.Naive is not among them; where a kernel's
// writes are common, naive joins the matrix unless -race is on, matching
// the per-package test policy for the intentionally racy Rodinia idiom).
var guardedMethods = []cw.Method{cw.CASLT, cw.Gatekeeper, cw.GatekeeperChecked, cw.Mutex}

func commonWriteMethods() []cw.Method {
	if race.Enabled {
		return guardedMethods
	}
	return append(append([]cw.Method(nil), guardedMethods...), cw.Naive)
}

// matrixGraphs are the fixed-seed workloads: a deep path (2000 levels — the
// round-structure stress case), a hub-skewed power-law graph, and a
// disconnected multi-component graph. All are undirected, so every BFS
// variant (including pull and hybrid) runs on all of them.
func matrixGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"path2000", graph.Path(2000)},
		{"rmat", graph.RMAT(7, 600, 0.57, 0.19, 0.19, 9)},
		{"disjoint", graph.Disjoint(graph.ConnectedRandom(60, 220, 5), 3)},
	}
}

func u32bytes(xs []uint32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], x)
	}
	return out
}

// canonicalPartition renames labels to the smallest vertex index of each
// class, making partitions comparable byte-for-byte.
func canonicalPartition(labels []uint32) []uint32 {
	first := map[uint32]uint32{}
	out := make([]uint32, len(labels))
	for v, l := range labels {
		if _, ok := first[l]; !ok {
			first[l] = uint32(v)
		}
		out[v] = first[l]
	}
	return out
}

// runMatrix runs one (kernel, method, graph) cell under every backend and
// fails unless every backend's projection is byte-identical to the pool
// backend's.
func runMatrix(t *testing.T, tag string, run func(e machine.Exec) []byte) {
	t.Helper()
	var want []byte
	for i, e := range matrixExecs {
		got := run(e)
		if i == 0 {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: %s backend diverges from %s (projections %d vs %d bytes)",
				tag, e, matrixExecs[0], len(got), len(want))
		}
	}
}

func bfsProjection(r bfs.Result) []byte {
	return append(u32bytes(r.Level), byte(r.Depth), byte(r.Depth>>8), byte(r.Depth>>16), byte(r.Depth>>24))
}

func TestExecMatrixBFS(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		m := testMachine(t, p)
		for _, wl := range matrixGraphs() {
			k := bfs.NewKernel(m, wl.g)
			for _, method := range commonWriteMethods() {
				// BFS's parent/selEdge writes are arbitrary; the naive method
				// can only promise the level metric (validated non-strictly).
				strict := method != cw.Naive
				tag := fmt.Sprintf("p=%d %s bfs/%v", p, wl.name, method)
				runMatrix(t, tag, func(e machine.Exec) []byte {
					k.Prepare(0)
					r := k.RunExec(e, method)
					if err := bfs.Validate(wl.g, 0, r, strict); err != nil {
						t.Fatalf("%s under %s: %v", tag, e, err)
					}
					return bfsProjection(r)
				})
			}
			// The CAS-LT formulation variants share the same projection,
			// across both membership representations: the word run seeds the
			// reference and every bitmap run must match it byte for byte (the
			// level metric is unique, so bit-packing the visited and frontier
			// state must not move a single level).
			variants := map[string]func(e machine.Exec) bfs.Result{
				"frontier": k.RunCASLTFrontierExec,
				"pull":     k.RunCASLTPullExec,
				"hybrid":   k.RunCASLTHybridExec,
			}
			for name, run := range variants {
				var word []byte
				for _, bitmap := range []bool{false, true} {
					k.SetBitmap(bitmap)
					tag := fmt.Sprintf("p=%d %s bfs-%s/bitmap=%v", p, wl.name, name, bitmap)
					runMatrix(t, tag, func(e machine.Exec) []byte {
						k.Prepare(0)
						r := run(e)
						if err := bfs.ValidateBidir(wl.g, 0, r); err != nil {
							t.Fatalf("%s under %s: %v", tag, e, err)
						}
						got := bfsProjection(r)
						if bitmap && !bytes.Equal(got, word) {
							t.Fatalf("%s under %s: bitmap projection diverges from the word representation", tag, e)
						}
						word = got
						return got
					})
				}
				k.SetBitmap(false)
			}
		}
	}
}

func TestExecMatrixCC(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		m := testMachine(t, p)
		for _, wl := range matrixGraphs() {
			k := cc.NewKernel(m, wl.g)
			for _, method := range guardedMethods {
				tag := fmt.Sprintf("p=%d %s cc/%v", p, wl.name, method)
				runMatrix(t, tag, func(e machine.Exec) []byte {
					k.Prepare()
					r := k.RunExec(e, method)
					if err := cc.Validate(wl.g, r); err != nil {
						t.Fatalf("%s under %s: %v", tag, e, err)
					}
					return u32bytes(canonicalPartition(r.Labels))
				})
			}
			// Random mate joins under both hook-claim representations: the
			// partition is unique, so the bit-packed fetch-OR claim must
			// reproduce the word run's canonical partition exactly.
			var word []byte
			for _, bitmap := range []bool{false, true} {
				k.SetBitmap(bitmap)
				tag := fmt.Sprintf("p=%d %s cc/randmate/bitmap=%v", p, wl.name, bitmap)
				runMatrix(t, tag, func(e machine.Exec) []byte {
					k.Prepare()
					r := k.RunRandMateExec(e, 42)
					if err := cc.Validate(wl.g, r); err != nil {
						t.Fatalf("%s under %s: %v", tag, e, err)
					}
					got := u32bytes(canonicalPartition(r.Labels))
					if bitmap && !bytes.Equal(got, word) {
						t.Fatalf("%s under %s: bitmap partition diverges from the word representation", tag, e)
					}
					word = got
					return got
				})
			}
			k.SetBitmap(false)
		}
	}
}

func TestExecMatrixMaxfind(t *testing.T) {
	list := make([]uint32, 300)
	for i := range list {
		list[i] = uint32((i * 131) % 197)
	}
	want := maxfind.Sequential(list)
	for _, p := range []int{1, 2, 4} {
		m := testMachine(t, p)
		k := maxfind.NewKernel(m, len(list))
		for _, method := range commonWriteMethods() {
			tag := fmt.Sprintf("p=%d maxfind/%v", p, method)
			runMatrix(t, tag, func(e machine.Exec) []byte {
				k.Prepare(list)
				got := k.RunExec(e, method)
				if got != want {
					t.Fatalf("%s under %s: max %d, want %d", tag, e, got, want)
				}
				return []byte{byte(got), byte(got >> 8), byte(got >> 16), byte(got >> 24)}
			})
		}
	}
}

func TestExecMatrixMIS(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		m := testMachine(t, p)
		for _, wl := range matrixGraphs() {
			k := mis.NewKernel(m, wl.g)
			for _, method := range commonWriteMethods() {
				tag := fmt.Sprintf("p=%d %s mis/%v", p, wl.name, method)
				runMatrix(t, tag, func(e machine.Exec) []byte {
					k.Prepare()
					inSet := k.RunExec(e, method, 7)
					if err := mis.Validate(wl.g, inSet); err != nil {
						t.Fatalf("%s under %s: %v", tag, e, err)
					}
					return u32bytes(inSet)
				})
			}
		}
	}
}

func TestExecMatrixMatching(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		m := testMachine(t, p)
		for _, wl := range matrixGraphs() {
			k := matching.NewKernel(m, wl.g)
			// Both proposal-flag representations join; at P=1 all backends
			// (and both representations) execute serially with the same
			// id-order winners, so the full mate vector must coincide.
			var word []byte
			for _, bitmap := range []bool{false, true} {
				k.SetBitmap(bitmap)
				tag := fmt.Sprintf("p=%d %s matching/bitmap=%v", p, wl.name, bitmap)
				runMatrix(t, tag, func(e machine.Exec) []byte {
					k.Prepare()
					r := k.RunExec(e, 7)
					if err := matching.Validate(wl.g, r); err != nil {
						t.Fatalf("%s under %s: %v", tag, e, err)
					}
					if p != 1 {
						// At P>1 the arbitrary-write winners (and thus the
						// matching) legitimately differ per backend; the
						// validator above is the check, and the projection
						// collapses to nothing.
						return nil
					}
					got := append(u32bytes(r.Mate), u32bytes(r.MateEdge)...)
					if bitmap && !bytes.Equal(got, word) {
						t.Fatalf("%s under %s: bitmap mates diverge from the word representation", tag, e)
					}
					word = got
					return got
				})
			}
			k.SetBitmap(false)
		}
	}
}

func TestExecMatrixListRank(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		m := testMachine(t, p)
		for _, n := range []int{1, 2, 257, 2000} {
			next := listrank.RandomList(n, int64(n))
			want := u32bytes(listrank.SequentialRank(next))
			tag := fmt.Sprintf("p=%d listrank n=%d", p, n)
			runMatrix(t, tag, func(e machine.Exec) []byte {
				got := u32bytes(listrank.RankExec(m, e, next))
				if !bytes.Equal(got, want) {
					t.Fatalf("%s under %s: ranks diverge from sequential", tag, e)
				}
				return got
			})
		}
	}
}

// TestExecMatrixRelabel adds the CSR-relabeling axis: BFS and CC run on the
// degree- and BFS-relabeled images of every matrix graph, under every
// backend and both membership representations, and the per-vertex results
// mapped back through the inverse permutation must be byte-identical to the
// unrelabeled pool run's projection. Relabeling is a pure memory-layout
// change — an exact isomorphism — so it must be invisible up to vertex
// names, on top of being backend- and representation-invariant.
func TestExecMatrixRelabel(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for _, wl := range matrixGraphs() {
			// Unrelabeled word-representation references (pool backend).
			bk := bfs.NewKernel(m, wl.g)
			bk.Prepare(0)
			wantBFS := bfsProjection(bk.RunCASLTHybridExec(machine.ExecPool))
			ck := cc.NewKernel(m, wl.g)
			ck.Prepare()
			wantCC := u32bytes(canonicalPartition(ck.RunExec(machine.ExecPool, cw.CASLT).Labels))
			for _, mode := range []graph.RelabelMode{graph.RelabelDegree, graph.RelabelBFS} {
				rl := graph.Relabel(wl.g, mode)
				rbk := bfs.NewKernel(m, rl.G)
				rck := cc.NewKernel(m, rl.G)
				unperm := make([]uint32, wl.g.NumVertices())
				for _, bitmap := range []bool{false, true} {
					rbk.SetBitmap(bitmap)
					src := rl.Perm[0]
					tag := fmt.Sprintf("p=%d %s relabel=%v bfs-hybrid/bitmap=%v", p, wl.name, mode, bitmap)
					runMatrix(t, tag, func(e machine.Exec) []byte {
						rbk.Prepare(src)
						r := rbk.RunCASLTHybridExec(e)
						if err := bfs.ValidateBidir(rl.G, src, r); err != nil {
							t.Fatalf("%s under %s: %v", tag, e, err)
						}
						rl.Unpermute(unperm, r.Level)
						got := bfsProjection(bfs.Result{Level: unperm, Depth: r.Depth})
						if !bytes.Equal(got, wantBFS) {
							t.Fatalf("%s under %s: unpermuted levels diverge from the unrelabeled run", tag, e)
						}
						return got
					})
				}
				tag := fmt.Sprintf("p=%d %s relabel=%v cc", p, wl.name, mode)
				runMatrix(t, tag, func(e machine.Exec) []byte {
					rck.Prepare()
					r := rck.RunExec(e, cw.CASLT)
					if err := cc.Validate(rl.G, r); err != nil {
						t.Fatalf("%s under %s: %v", tag, e, err)
					}
					rl.Unpermute(unperm, r.Labels)
					got := u32bytes(canonicalPartition(unperm))
					if !bytes.Equal(got, wantCC) {
						t.Fatalf("%s under %s: unpermuted partition diverges from the unrelabeled run", tag, e)
					}
					return got
				})
			}
		}
	}
}

// TestExecInterleavedRoundOffsets drives one kernel instance through the
// backends in rotation with no state reset beyond Prepare: the CAS-LT
// round base must carry across backend switches (a stale claim from a pool
// run must never alias a later team run's round, and the trace replay must
// consume rounds from the same sequence).
func TestExecInterleavedRoundOffsets(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(150, 600, 23)

	bk := bfs.NewKernel(m, g)
	ck := cc.NewKernel(m, g)
	sk := mis.NewKernel(m, g)
	for rep := 0; rep < 9; rep++ {
		e := matrixExecs[rep%len(matrixExecs)]
		src := uint32(rep * 17 % g.NumVertices())
		bk.Prepare(src)
		if err := bfs.Validate(g, src, bk.RunExec(e, cw.CASLT), true); err != nil {
			t.Fatalf("rep %d bfs under %s: %v", rep, e, err)
		}
		ck.Prepare()
		if err := cc.Validate(g, ck.RunExec(e, cw.CASLT)); err != nil {
			t.Fatalf("rep %d cc under %s: %v", rep, e, err)
		}
		sk.Prepare()
		if err := mis.Validate(g, sk.RunExec(e, cw.CASLT, uint64(rep))); err != nil {
			t.Fatalf("rep %d mis under %s: %v", rep, e, err)
		}
	}
}

// TestExecTraceRecords pins the observability contract: a trace-backend
// run records a structural trace, a timed run clears it.
func TestExecTraceRecords(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(100, 400, 3)
	k := bfs.NewKernel(m, g)

	k.Prepare(0)
	k.RunExec(machine.ExecTrace, cw.CASLT)
	st := k.Trace()
	if st == nil {
		t.Fatal("trace run recorded no trace")
	}
	if st.P != 4 || st.Steps == 0 || st.Barriers == 0 || len(st.Iters) != 4 {
		t.Fatalf("implausible trace: %+v", st)
	}
	if st.TotalIters() < uint64(g.NumVertices()) {
		t.Fatalf("trace counted %d iterations, want at least n=%d", st.TotalIters(), g.NumVertices())
	}

	k.Prepare(0)
	k.RunExec(machine.ExecPool, cw.CASLT)
	if k.Trace() != nil {
		t.Fatal("timed run left a stale trace")
	}
}
