// Cross-backend state tests: the differential matrices themselves (every
// registered kernel × method × backend × representation × policy ×
// relabeling, byte-compared against the pool/block/word reference) are
// implemented in internal/kernel (DifferentialExec, DifferentialPolicy,
// DifferentialRelabel, Smoke) and driven by registrymatrix_test.go in this
// package. What remains here are the contracts a registry-driven sweep
// cannot express: round-id continuity when one kernel instance alternates
// backends without reset, and the trace backend's recording contract.
//
// CI runs this package under -race, where the team backend's sense
// barriers and the pool backend's fork/join steps are exercised with real
// concurrency.
package integration

import (
	"encoding/binary"
	"testing"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/alg/mis"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// matrixExecs is every backend, including the untimed trace replay.
var matrixExecs = []machine.Exec{machine.ExecPool, machine.ExecTeam, machine.ExecTrace}

// guardedMethods are the methods that safely implement the kernels'
// arbitrary concurrent writes (cw.Naive is not among them; the metrics
// differential sweeps them all).
var guardedMethods = []cw.Method{cw.CASLT, cw.Gatekeeper, cw.GatekeeperChecked, cw.Mutex}

func u32bytes(xs []uint32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], x)
	}
	return out
}

// canonicalPartition renames labels to the smallest vertex index of each
// class, making partitions comparable byte-for-byte.
func canonicalPartition(labels []uint32) []uint32 {
	first := map[uint32]uint32{}
	out := make([]uint32, len(labels))
	for v, l := range labels {
		if _, ok := first[l]; !ok {
			first[l] = uint32(v)
		}
		out[v] = first[l]
	}
	return out
}

func bfsProjection(r bfs.Result) []byte {
	return append(u32bytes(r.Level), byte(r.Depth), byte(r.Depth>>8), byte(r.Depth>>16), byte(r.Depth>>24))
}

// TestExecInterleavedRoundOffsets drives one kernel instance through the
// backends in rotation with no state reset beyond Prepare: the CAS-LT
// round base must carry across backend switches (a stale claim from a pool
// run must never alias a later team run's round, and the trace replay must
// consume rounds from the same sequence).
func TestExecInterleavedRoundOffsets(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(150, 600, 23)

	bk := bfs.NewKernel(m, g)
	ck := cc.NewKernel(m, g)
	sk := mis.NewKernel(m, g)
	for rep := 0; rep < 9; rep++ {
		e := matrixExecs[rep%len(matrixExecs)]
		src := uint32(rep * 17 % g.NumVertices())
		bk.Prepare(src)
		if err := bfs.Validate(g, src, bk.RunExec(e, cw.CASLT), true); err != nil {
			t.Fatalf("rep %d bfs under %s: %v", rep, e, err)
		}
		ck.Prepare()
		if err := cc.Validate(g, ck.RunExec(e, cw.CASLT)); err != nil {
			t.Fatalf("rep %d cc under %s: %v", rep, e, err)
		}
		sk.Prepare()
		if err := mis.Validate(g, sk.RunExec(e, cw.CASLT, uint64(rep))); err != nil {
			t.Fatalf("rep %d mis under %s: %v", rep, e, err)
		}
	}
}

// TestExecTraceRecords pins the observability contract: a trace-backend
// run records a structural trace, a timed run clears it.
func TestExecTraceRecords(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.ConnectedRandom(100, 400, 3)
	k := bfs.NewKernel(m, g)

	k.Prepare(0)
	k.RunExec(machine.ExecTrace, cw.CASLT)
	st := k.Trace()
	if st == nil {
		t.Fatal("trace run recorded no trace")
	}
	if st.P != 4 || st.Steps == 0 || st.Barriers == 0 || len(st.Iters) != 4 {
		t.Fatalf("implausible trace: %+v", st)
	}
	if st.TotalIters() < uint64(g.NumVertices()) {
		t.Fatalf("trace counted %d iterations, want at least n=%d", st.TotalIters(), g.NumVertices())
	}

	k.Prepare(0)
	k.RunExec(machine.ExecPool, cw.CASLT)
	if k.Trace() != nil {
		t.Fatal("timed run left a stale trace")
	}
}
