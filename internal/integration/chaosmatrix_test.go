// Chaos matrix: every registered kernel runs under adversarial schedule
// perturbation with the runtime invariant checker attached, and nothing
// may change — results stay byte-identical to unperturbed runs, the
// validator passes, and the checker catches zero violations. The canary
// test then proves the checker has teeth: a deliberately broken resolver
// that double-commits must fail it.
package integration

import (
	"strings"
	"testing"

	"crcwpram/internal/core/chaos"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
	"crcwpram/internal/kernel"
)

// TestChaosMatrixDifferential drives kernel.DifferentialChaos over the
// default registry: kernel × method × pool/team × block/stealing × seed,
// all faults on, at P=4. The CI chaos job runs this under -race.
func TestChaosMatrixDifferential(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	if err := kernel.DifferentialChaos(kernel.Default, 4, seeds, chaos.AllFaults); err != nil {
		t.Fatal(err)
	}
}

// doubleCommitResolver wraps a correct resolver and breaks it: a losing
// claim executes its write anyway and reports a win — the double commit
// the invariant checker exists to catch.
type doubleCommitResolver struct {
	inner cw.Resolver
}

func (r *doubleCommitResolver) Method() cw.Method { return r.inner.Method() }
func (r *doubleCommitResolver) Len() int          { return r.inner.Len() }
func (r *doubleCommitResolver) Do(i int, round uint32, write func()) bool {
	return r.DoOutcome(i, round, write) == cw.OutcomeWin
}
func (r *doubleCommitResolver) DoOutcome(i int, round uint32, write func()) cw.Outcome {
	o := r.inner.DoOutcome(i, round, write)
	if o == cw.OutcomeLoss {
		write()
		return cw.OutcomeWin
	}
	return o
}
func (r *doubleCommitResolver) ResetRange(lo, hi int) { r.inner.ResetRange(lo, hi) }

// driveResolver has every worker claim every cell once per round through
// r, feeding the metrics layer exactly like an instrumented kernel. The
// write closures are empty so a broken resolver corrupts only the
// checker's accounting, never shared memory.
func driveResolver(m *machine.Machine, n, rounds int, r cw.Resolver) {
	exec.Run(m, machine.ExecPool, func(ctx exec.Ctx) {
		for rd := 1; rd <= rounds; rd++ {
			round := uint32(rd)
			ctx.ForWorker(n*ctx.P(), func(i, w int) {
				sh := ctx.Metrics().Shard(w)
				cell := i % n
				sh.Claim(cell, round, r.DoOutcome(cell, round, func() {}))
			})
			ctx.Range(n, func(lo, hi, w int) { r.ResetRange(lo, hi) })
		}
	})
}

// TestChaosCheckerCatchesBrokenResolver is the canary: the same driver
// that passes the checker with a correct gatekeeper resolver must fail it
// — with double-winner violations — when the resolver double-commits.
// The gatekeeper makes the breakage deterministic: every attempt executes
// a fetch-add, so each (cell, round) sees one true win plus P-1 losses
// the broken wrapper converts into extra commits.
func TestChaosCheckerCatchesBrokenResolver(t *testing.T) {
	const n, rounds, p = 32, 3, 4
	m := machine.New(p, machine.WithMetrics())
	defer m.Close()

	ck := m.Metrics().EnableChecker(n, 1, 0)
	driveResolver(m, n, rounds, cw.NewResolver(cw.Gatekeeper, n, cw.Packed))
	if err := ck.Err(); err != nil {
		t.Fatalf("correct resolver failed the checker: %v", err)
	}

	m.Metrics().Reset()
	ck = m.Metrics().EnableChecker(n, 1, 0)
	broken := &doubleCommitResolver{inner: cw.NewResolver(cw.Gatekeeper, n, cw.Packed)}
	driveResolver(m, n, rounds, broken)
	err := ck.Err()
	if err == nil {
		t.Fatal("double-committing resolver passed the invariant checker")
	}
	if !strings.Contains(err.Error(), "double-winner") {
		t.Fatalf("checker error is not a double-winner report: %v", err)
	}
	found := false
	for _, v := range ck.Violations() {
		if v.Kind == metrics.ViolationDoubleWinner {
			found = true
		}
	}
	if !found {
		t.Fatalf("no double-winner violation recorded: %v", ck.Violations())
	}
	if len(ck.WinnerLog()) == 0 {
		t.Fatal("winner log empty after committed wins")
	}
}

// TestChaosCheckerBoundCanary breaks the other invariant: with the
// attempt bound set below the real contention (every worker executes a
// gatekeeper RMW per cell per round), the checker must flag the excess —
// proving the ≤P accounting is live, not vacuous.
func TestChaosCheckerBoundCanary(t *testing.T) {
	const n, p = 16, 4
	m := machine.New(p, machine.WithMetrics())
	defer m.Close()
	ck := m.Metrics().EnableChecker(n, 1, p-1) // one below the true attempt count
	driveResolver(m, n, 1, cw.NewResolver(cw.Gatekeeper, n, cw.Packed))
	found := false
	for _, v := range ck.Violations() {
		if v.Kind == metrics.ViolationBoundExceeded {
			found = true
		}
	}
	if !found {
		t.Fatalf("bound %d with %d attempts per cell raised no bound-exceeded violation", p-1, p)
	}
}

// TestChaosMachineWiring pins the WithChaos plumbing: chaos implies a
// recorder, the injector is reachable from the machine, and a perturbed
// machine still runs regions correctly.
func TestChaosMachineWiring(t *testing.T) {
	inj := chaos.NewInjector(2, 99, chaos.AllFaults)
	m := machine.New(2, machine.WithChaos(inj))
	defer m.Close()
	if m.Chaos() != inj {
		t.Fatal("Chaos() does not return the injector")
	}
	if m.Metrics() == nil {
		t.Fatal("WithChaos did not imply a metrics recorder")
	}
	var sum [2]int
	exec.Run(m, machine.ExecPool, func(ctx exec.Ctx) {
		ctx.ForWorker(1000, func(i, w int) { sum[w] += i })
		ctx.Barrier()
	})
	if sum[0]+sum[1] != 999*1000/2 {
		t.Fatalf("perturbed region dropped iterations: sum=%d", sum[0]+sum[1])
	}
	if inj.Decisions() == 0 {
		t.Fatal("injector took no decisions during a perturbed region")
	}
}
