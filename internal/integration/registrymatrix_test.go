// Registry-driven differential matrices: every kernel in the default
// registry is cross-validated over backends, policies, representations and
// relabelings by the generic matrices in internal/kernel, so a kernel
// added by a single Register call is covered here with no test edits. The
// completeness and extension tests below pin exactly that property.
package integration

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"crcwpram/internal/alg/maxfind"
	"crcwpram/internal/bench"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/kernel"
)

// TestRegistryDifferentialExec byte-compares every registered kernel's
// projection across all execution backends, methods and representations
// against the single-threaded pool/word reference.
func TestRegistryDifferentialExec(t *testing.T) {
	if err := kernel.DifferentialExec(kernel.Default, []int{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryDifferentialPolicy byte-compares every registered kernel
// across all scheduling policies and backends against the block/pool
// reference.
func TestRegistryDifferentialPolicy(t *testing.T) {
	if err := kernel.DifferentialPolicy(kernel.Default); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryDifferentialRelabel checks every relabelable kernel's result
// is invariant under CSR relabeling after unpermuting.
func TestRegistryDifferentialRelabel(t *testing.T) {
	if err := kernel.DifferentialRelabel(kernel.Default, []int{1, 4}); err != nil {
		t.Fatal(err)
	}
}

// TestRegistrySmoke executes every (kernel, axis, value) pair at least
// once: the guarantee behind -run accepting any advertised selector.
func TestRegistrySmoke(t *testing.T) {
	if err := kernel.Smoke(kernel.Default); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryCompleteness walks the algorithm packages on disk and
// demands each registers at least one kernel (and that no registration
// claims a package that does not exist): the registry cannot silently
// drift from the source tree.
func TestRegistryCompleteness(t *testing.T) {
	byPkg := map[string][]string{}
	for _, d := range kernel.All() {
		byPkg[d.Pkg] = append(byPkg[d.Pkg], d.Name)
	}
	entries, err := os.ReadDir("../alg")
	if err != nil {
		t.Fatal(err)
	}
	dirs := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dirs[e.Name()] = true
		if len(byPkg[e.Name()]) == 0 {
			t.Errorf("package internal/alg/%s registers no kernels", e.Name())
		}
	}
	for pkg, names := range byPkg {
		if !dirs[pkg] {
			t.Errorf("kernels %v claim package %q, which is not under internal/alg", names, pkg)
		}
	}
}

// toyInstance adapts the maxfind kernel under a second name, standing in
// for a brand-new algorithm registered by an external package.
type toyInstance struct {
	k    *maxfind.Kernel
	list []uint32
	want int
	last int
	out  [1]uint32
}

func (in *toyInstance) Prepare(kernel.Settings) { in.k.Prepare(in.list) }

func (in *toyInstance) Run(s kernel.Settings) kernel.Outcome {
	in.last = in.k.RunExec(s.Exec, s.Method)
	in.out[0] = uint32(in.last)
	return kernel.Outcome{Vector: in.out[:]}
}

func (in *toyInstance) Validate() error {
	if in.last != in.want {
		return fmt.Errorf("toymax: winner %d, want %d", in.last, in.want)
	}
	return nil
}

func (in *toyInstance) Trace() *exec.TraceStats { return in.k.Trace() }

// TestRegistryToyExtension is the acceptance test for the registry's
// extension story: a toy kernel added through one Register call — and no
// other edit anywhere — appears in -list introspection, is selectable by
// -run's parser, passes the differential exec matrix and the axis smoke
// matrix, and shows up in a bench sweep. A private registry keeps the toy
// out of the real suite.
func TestRegistryToyExtension(t *testing.T) {
	reg := kernel.NewRegistry()
	reg.MustRegister(kernel.Descriptor{
		Name:       "toymax",
		Pkg:        "integration",
		Summary:    "maxfind under an alias, registered by the extension test",
		Methods:    []cw.Method{cw.CASLT, cw.Gatekeeper},
		Input:      kernel.InputList,
		Contention: kernel.ContentionGuarded,
		New: func(m *machine.Machine, w kernel.Workload) kernel.Instance {
			return &toyInstance{
				k:    maxfind.NewKernel(m, len(w.List)),
				list: w.List,
				want: maxfind.Sequential(w.List),
			}
		},
	})

	// -list introspection: the registry enumerates the kernel and its axes.
	names := reg.Names()
	if len(names) != 1 || names[0] != "toymax" {
		t.Fatalf("registry names = %v, want [toymax]", names)
	}
	d, _ := reg.Lookup("toymax")
	var axisNames []string
	for _, ax := range d.Axes() {
		axisNames = append(axisNames, ax.Name)
	}
	if got := strings.Join(axisNames, ","); got != "method,exec,policy" {
		t.Fatalf("toymax axes = %s, want method,exec,policy", got)
	}

	// -run selection: the generic parser accepts the advertised axes and
	// rejects the ones the toy kernel does not declare.
	if _, _, err := reg.ParseSelector("kernel=toymax,method=gatekeeper,exec=team"); err != nil {
		t.Fatalf("ParseSelector rejected a legal toymax selector: %v", err)
	}
	if _, _, err := reg.ParseSelector("kernel=toymax,repr=bitmap"); err == nil {
		t.Fatal("ParseSelector accepted repr for a kernel without a repr axis")
	}

	// Differential matrices: the toy kernel is cross-validated across
	// backends and swept through every axis value without any test edits.
	if err := kernel.DifferentialExec(reg, []int{1, 2}); err != nil {
		t.Fatalf("differential exec matrix over the toy registry: %v", err)
	}
	if err := kernel.Smoke(reg); err != nil {
		t.Fatalf("smoke matrix over the toy registry: %v", err)
	}

	// Bench sweeps: the generic trace sweep picks the kernel up from the
	// registry alone.
	rows := bench.KernelTraceCounts(reg, 2, 300, 900, 7)
	if len(rows) != 1 || rows[0].Kernel != "toymax" {
		t.Fatalf("trace sweep rows = %+v, want exactly one toymax row", rows)
	}
	if rows[0].Steps == 0 || rows[0].Barriers == 0 {
		t.Fatalf("toymax trace row has empty structure: %+v", rows[0])
	}
}
