// Package integration holds cross-module tests: scenarios that exercise
// the machine, the concurrent-write primitives, the access-mode checker,
// the graph substrate (including serialization) and the kernels together,
// the way a downstream application would.
package integration

import (
	"bytes"
	"testing"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/alg/maxfind"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/memcheck"
	"crcwpram/internal/sched"
)

func testMachine(t *testing.T, p int) *machine.Machine {
	t.Helper()
	m := machine.New(p)
	t.Cleanup(m.Close)
	return m
}

// The paper's Figure 4 kernel run on memcheck-instrumented shared memory:
// the CAS-LT-guarded common write conforms to the CRCW-common access mode
// (in fact to CREW: one winner per cell per round), while the naive version
// of an *arbitrary* write on the same machine is detected.
func TestMaxKernelThroughAccessChecker(t *testing.T) {
	const n = 24
	m := testMachine(t, 4)
	list := []uint32{}
	for i := 0; i < n; i++ {
		list = append(list, uint32((i*7)%13))
	}

	// CAS-LT-guarded all-pairs elimination on a checked array: with a
	// winner per cell per round, even CREW's one-write-per-cell rule holds.
	checked := memcheck.New(memcheck.CREW, n)
	for i := 0; i < n; i++ {
		checked.Write(i, 1)
		checked.NextRound()
	}
	cells := cw.NewArray(n, cw.Packed)
	m.ParallelRange(n*n, func(lo, hi, _ int) {
		for idx := lo; idx < hi; idx++ {
			i, j := idx/n, idx%n
			if i == j {
				continue
			}
			loser := i
			if list[j] < list[i] || (list[i] == list[j] && j < i) {
				loser = j
			}
			if cells.TryClaim(loser, 1) {
				checked.Write(loser, 0)
			}
		}
	})
	if !checked.Ok() {
		t.Fatalf("CAS-LT-guarded kernel violated CREW: %v", checked.Violations())
	}
	checked.NextRound()
	max := -1
	for j := 0; j < n; j++ {
		if checked.Read(j) == 1 {
			max = j
		}
	}
	if want := maxfind.Sequential(list); max != want {
		t.Fatalf("checked kernel found %d, want %d", max, want)
	}
	if !checked.Ok() {
		t.Fatalf("final scan violated CREW: %v", checked.Violations())
	}

	// The same shape done naively with *different* values (an arbitrary
	// write) is caught by the common-mode checker — the paper's Section 4
	// hazard, demonstrated through the real machine.
	bad := memcheck.New(memcheck.CRCWCommon, 1)
	m.ParallelFor(64, func(i int) {
		bad.Write(0, uint32(i))
	})
	if bad.Ok() {
		t.Fatal("naive arbitrary write on the machine went undetected")
	}
}

// Graph pipeline: generate -> serialize -> deserialize -> run both graph
// kernels on the round-tripped graph -> validate against baselines.
func TestSerializedGraphThroughKernels(t *testing.T) {
	g := graph.ConnectedRandom(300, 1200, 77)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := graph.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}

	m := testMachine(t, 4)
	bk := bfs.NewKernel(m, loaded)
	bk.Prepare(3)
	if err := bfs.Validate(loaded, 3, bk.RunCASLT(), true); err != nil {
		t.Fatalf("bfs on round-tripped graph: %v", err)
	}
	ck := cc.NewKernel(m, loaded)
	ck.Prepare()
	if err := cc.Validate(loaded, ck.RunCASLT()); err != nil {
		t.Fatalf("cc on round-tripped graph: %v", err)
	}
}

// One machine drives all three kernels back to back across scheduling
// policies: shared worker pools must not leak state between kernels.
func TestOneMachineManyKernels(t *testing.T) {
	for _, policy := range sched.Policies {
		m := machine.New(4, machine.WithPolicy(policy), machine.WithChunk(64))
		g := graph.ConnectedRandom(150, 600, 5)
		list := make([]uint32, 200)
		for i := range list {
			list[i] = uint32((i * 31) % 97)
		}

		mk := maxfind.NewKernel(m, len(list))
		bk := bfs.NewKernel(m, g)
		ck := cc.NewKernel(m, g)
		for rep := 0; rep < 3; rep++ {
			mk.Prepare(list)
			if got, want := mk.RunCASLT(), maxfind.Sequential(list); got != want {
				t.Fatalf("%v rep %d: max %d, want %d", policy, rep, got, want)
			}
			bk.Prepare(0)
			if err := bfs.Validate(g, 0, bk.RunCASLT(), true); err != nil {
				t.Fatalf("%v rep %d: bfs: %v", policy, rep, err)
			}
			ck.Prepare()
			if err := cc.Validate(g, ck.RunCASLT()); err != nil {
				t.Fatalf("%v rep %d: cc: %v", policy, rep, err)
			}
		}
		m.Close()
	}
}

// Awerbuch-Shiloach and random mate must induce the same partition on the
// same inputs (labels differ; the partition must not).
func TestASAndRandMateAgree(t *testing.T) {
	m := testMachine(t, 4)
	for _, seed := range []int64{1, 2, 3} {
		g := graph.Disjoint(graph.ConnectedRandom(60, 200, seed), 3)
		k := cc.NewKernel(m, g)
		k.Prepare()
		as := append([]uint32(nil), k.RunCASLT().Labels...)
		k.Prepare()
		rm := k.RunRandMate(uint64(seed))
		// Same partition: labels agree up to bijection.
		fwd := map[uint32]uint32{}
		rev := map[uint32]uint32{}
		for v := range as {
			a, b := as[v], rm.Labels[v]
			if x, ok := fwd[a]; ok && x != b {
				t.Fatalf("seed %d: partitions differ at vertex %d", seed, v)
			}
			if x, ok := rev[b]; ok && x != a {
				t.Fatalf("seed %d: partitions differ at vertex %d", seed, v)
			}
			fwd[a] = b
			rev[b] = a
		}
	}
}

// The BFS tree's levels must agree with CC reachability: vertices with
// finite BFS level are exactly the source's component.
func TestBFSLevelsMatchCCComponent(t *testing.T) {
	m := testMachine(t, 4)
	g := graph.Disjoint(graph.ConnectedRandom(80, 250, 11), 2)
	bk := bfs.NewKernel(m, g)
	bk.Prepare(0)
	br := bk.RunCASLT()
	ck := cc.NewKernel(m, g)
	ck.Prepare()
	cr := ck.RunCASLT()
	src := cr.Labels[0]
	for v := 0; v < g.NumVertices(); v++ {
		reachable := br.Level[v] != bfs.Unreached
		sameComp := cr.Labels[v] == src
		if reachable != sameComp {
			t.Fatalf("vertex %d: BFS reachable=%v but CC same-component=%v", v, reachable, sameComp)
		}
	}
}
