// The metrics differential: every kernel of the suite runs the same
// fixed-seed input twice per timed backend — once on a plain machine, once
// on a machine.WithMetrics machine with the per-cell probe attached — and
// the deterministic projection of each result must be byte-identical. This
// pins the observability layer's core contract: recording changes what you
// know, never what the kernel computes. The projections are the same ones
// the exec matrix uses (level/depth for BFS, the canonical partition for
// CC, and so on), so any metrics-induced divergence — a Claim wrapper that
// swallows a win, a probe CAS that perturbs a guard — shows up as a byte
// diff rather than a statistical anomaly.
//
// The test name starts with TestExec so CI's exec-matrix job (which runs
// -run 'TestExec' under -race) picks it up: under -race it additionally
// proves the recording path is race-free against real concurrency.
package integration

import (
	"bytes"
	"fmt"
	"testing"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/alg/listrank"
	"crcwpram/internal/alg/matching"
	"crcwpram/internal/alg/maxfind"
	"crcwpram/internal/alg/mis"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
	"crcwpram/internal/graph"
)

// timedExecs are the backends whose workers actually record: the trace
// backend's Ctx.Metrics is nil by design (its serial replay has no
// contention to observe), so a metrics differential there is vacuous.
var timedExecs = []machine.Exec{machine.ExecPool, machine.ExecTeam}

// metricsMachine is testMachine with recording enabled and the probe
// attached over n cells.
func metricsMachine(t *testing.T, p, n int) *machine.Machine {
	t.Helper()
	m := machine.New(p, machine.WithMetrics())
	m.Metrics().EnableProbe(n)
	t.Cleanup(m.Close)
	return m
}

// runDifferential executes run on both machines under every timed backend
// and compares projections, then sanity-checks the instrumented machine's
// snapshot with check (which receives the backend for error messages).
func runDifferential(t *testing.T, tag string, plain, inst *machine.Machine,
	run func(m *machine.Machine, e machine.Exec) []byte,
	check func(e machine.Exec, s metrics.Snapshot) error) {
	t.Helper()
	for _, e := range timedExecs {
		want := run(plain, e)
		inst.Metrics().Reset()
		got := run(inst, e)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s under %s: metrics-on projection diverges from metrics-off (%d vs %d bytes)",
				tag, e, len(got), len(want))
		}
		if check != nil {
			if err := check(e, inst.Snapshot()); err != nil {
				t.Fatalf("%s under %s: %v", tag, e, err)
			}
		}
	}
}

// checkGuarded asserts the snapshot of a guarded kernel run: work was
// recorded, the attempt ledger is consistent, and — for the round-stamped
// resolver — no cell absorbed more executed attempts in one round than the
// paper's bound of P allows.
func checkGuarded(p int, method cw.Method) func(machine.Exec, metrics.Snapshot) error {
	return func(e machine.Exec, s metrics.Snapshot) error {
		if s.CASAttempts == 0 || s.CASWins == 0 {
			return fmt.Errorf("no executed attempts recorded (snapshot %+v)", s)
		}
		if s.CASAttempts != s.CASWins+s.CASLosses {
			return fmt.Errorf("attempts %d != wins %d + losses %d", s.CASAttempts, s.CASWins, s.CASLosses)
		}
		if method == cw.CASLT && s.MaxCellClaims > uint64(p) {
			return fmt.Errorf("%d executed CASes on one cell in one round, paper bounds it by P=%d",
				s.MaxCellClaims, p)
		}
		if s.Rounds == 0 {
			return fmt.Errorf("no rounds recorded")
		}
		return nil
	}
}

func TestExecMetricsDifferentialBFS(t *testing.T) {
	g := graph.RMAT(7, 600, 0.57, 0.19, 0.19, 9)
	for _, p := range []int{1, 2, 4} {
		plain, inst := testMachine(t, p), metricsMachine(t, p, g.NumVertices())
		kp, ki := bfs.NewKernel(plain, g), bfs.NewKernel(inst, g)
		kernelOf := func(m *machine.Machine) *bfs.Kernel {
			if m == inst {
				return ki
			}
			return kp
		}
		for _, method := range guardedMethods {
			tag := fmt.Sprintf("p=%d bfs/%v", p, method)
			runDifferential(t, tag, plain, inst, func(m *machine.Machine, e machine.Exec) []byte {
				k := kernelOf(m)
				k.Prepare(0)
				r := k.RunExec(e, method)
				if err := bfs.Validate(g, 0, r, true); err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				return bfsProjection(r)
			}, checkGuarded(p, method))
		}
		// The frontier variant exercises the Shard path through
		// relaxFrontier (shards flow through ForWorker, not Range).
		tag := fmt.Sprintf("p=%d bfs-frontier", p)
		runDifferential(t, tag, plain, inst, func(m *machine.Machine, e machine.Exec) []byte {
			k := kernelOf(m)
			k.Prepare(0)
			r := k.RunCASLTFrontierExec(e)
			if err := bfs.ValidateBidir(g, 0, r); err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			return bfsProjection(r)
		}, nil)
	}
}

func TestExecMetricsDifferentialCC(t *testing.T) {
	g := graph.RMAT(7, 600, 0.57, 0.19, 0.19, 9)
	for _, p := range []int{1, 2, 4} {
		plain, inst := testMachine(t, p), metricsMachine(t, p, g.NumVertices())
		kp, ki := cc.NewKernel(plain, g), cc.NewKernel(inst, g)
		for _, method := range guardedMethods {
			tag := fmt.Sprintf("p=%d cc/%v", p, method)
			runDifferential(t, tag, plain, inst, func(m *machine.Machine, e machine.Exec) []byte {
				k := kp
				if m == inst {
					k = ki
				}
				k.Prepare()
				r := k.RunExec(e, method)
				if err := cc.Validate(g, r); err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				return u32bytes(canonicalPartition(r.Labels))
			}, checkGuarded(p, method))
		}
	}
}

func TestExecMetricsDifferentialMaxfind(t *testing.T) {
	list := make([]uint32, 300)
	for i := range list {
		list[i] = uint32((i * 131) % 197)
	}
	want := maxfind.Sequential(list)
	for _, p := range []int{1, 2, 4} {
		plain, inst := testMachine(t, p), metricsMachine(t, p, len(list))
		kp, ki := maxfind.NewKernel(plain, len(list)), maxfind.NewKernel(inst, len(list))
		for _, method := range guardedMethods {
			tag := fmt.Sprintf("p=%d maxfind/%v", p, method)
			runDifferential(t, tag, plain, inst, func(m *machine.Machine, e machine.Exec) []byte {
				k := kp
				if m == inst {
					k = ki
				}
				k.Prepare(list)
				got := k.RunExec(e, method)
				if got != want {
					t.Fatalf("%s: max %d, want %d", tag, got, want)
				}
				return []byte{byte(got), byte(got >> 8), byte(got >> 16), byte(got >> 24)}
			}, checkGuarded(p, method))
		}
	}
}

func TestExecMetricsDifferentialMIS(t *testing.T) {
	g := graph.RMAT(7, 600, 0.57, 0.19, 0.19, 9)
	for _, p := range []int{1, 2, 4} {
		plain, inst := testMachine(t, p), metricsMachine(t, p, g.NumVertices())
		kp, ki := mis.NewKernel(plain, g), mis.NewKernel(inst, g)
		for _, method := range guardedMethods {
			tag := fmt.Sprintf("p=%d mis/%v", p, method)
			runDifferential(t, tag, plain, inst, func(m *machine.Machine, e machine.Exec) []byte {
				k := kp
				if m == inst {
					k = ki
				}
				k.Prepare()
				inSet := k.RunExec(e, method, 7)
				if err := mis.Validate(g, inSet); err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				return u32bytes(inSet)
			}, checkGuarded(p, method))
		}
	}
}

func TestExecMetricsDifferentialMatching(t *testing.T) {
	g := graph.RMAT(7, 600, 0.57, 0.19, 0.19, 9)
	for _, p := range []int{1, 2, 4} {
		plain, inst := testMachine(t, p), metricsMachine(t, p, g.NumVertices())
		kp, ki := matching.NewKernel(plain, g), matching.NewKernel(inst, g)
		tag := fmt.Sprintf("p=%d matching", p)
		runDifferential(t, tag, plain, inst, func(m *machine.Machine, e machine.Exec) []byte {
			k := kp
			if m == inst {
				k = ki
			}
			k.Prepare()
			r := k.RunExec(e, 7)
			if err := matching.Validate(g, r); err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			if p == 1 {
				return append(u32bytes(r.Mate), u32bytes(r.MateEdge)...)
			}
			// At P>1 the arbitrary-write winners legitimately differ run to
			// run; the validator is the check (as in the exec matrix).
			return nil
		}, func(e machine.Exec, s metrics.Snapshot) error {
			if s.CASAttempts == 0 {
				return fmt.Errorf("no executed attempts recorded")
			}
			// Two cell arrays (propose, accept) share the probe index
			// space, so the bound doubles.
			if s.MaxCellClaims > 2*uint64(p) {
				return fmt.Errorf("%d executed CASes on one cell in one round, bound is 2P=%d",
					s.MaxCellClaims, 2*p)
			}
			return nil
		})
	}
}

func TestExecMetricsDifferentialListRank(t *testing.T) {
	next := listrank.RandomList(2000, 11)
	want := u32bytes(listrank.SequentialRank(next))
	for _, p := range []int{1, 2, 4} {
		plain, inst := testMachine(t, p), metricsMachine(t, p, len(next))
		tag := fmt.Sprintf("p=%d listrank", p)
		runDifferential(t, tag, plain, inst, func(m *machine.Machine, e machine.Exec) []byte {
			got := u32bytes(listrank.RankExec(m, e, next))
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: ranks diverge from sequential", tag)
			}
			return got
		}, func(e machine.Exec, s metrics.Snapshot) error {
			// EREW negative control: recording ran (time accrued, rounds
			// counted) but no concurrent-write attempts exist to count.
			if s.CASAttempts != 0 || s.PrecheckSkips != 0 {
				return fmt.Errorf("EREW kernel recorded CW traffic: %+v", s)
			}
			if s.Rounds == 0 {
				return fmt.Errorf("no rounds recorded")
			}
			return nil
		})
	}
}
