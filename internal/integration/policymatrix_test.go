// The scheduling-policy differential matrix: every kernel of the suite
// runs on fixed-seed inputs under every partitioning policy
// (block | cyclic | dynamic | guided | stealing) on both timed backends,
// and the deterministic projection of each result must be byte-identical
// to the block/pool reference. Policy selects which worker visits which
// index — never who may write what — so any divergence here is a
// partition-coverage bug (an index visited twice or not at all) or a
// missing synchronization edge in a policy's claim path. CI runs this
// package under -race, which puts the stealing deques' owner-pop/thief-CAS
// races and the dynamic/guided cursor fetch-adds under the detector with
// real concurrency.
//
// The kernels whose irregular loops auto-default to stealing on skewed
// graphs (BFS frontier/hybrid, randmate CC, matching) keep their defaults
// here: on the hub-skewed workload their StealRange path runs in every
// cell on top of the machine-policy axis, so both stealing entry points
// (machine policy and kernel opt-in) are covered.
package integration

import (
	"bytes"
	"fmt"
	"testing"

	"crcwpram/internal/alg/bfs"
	"crcwpram/internal/alg/cc"
	"crcwpram/internal/alg/listrank"
	"crcwpram/internal/alg/matching"
	"crcwpram/internal/alg/maxfind"
	"crcwpram/internal/alg/mis"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/sched"
)

// policyExecs are the timed backends; the trace replay is policy-blind by
// design (it always replays the block partition) and is covered by the
// exec matrix.
var policyExecs = []machine.Exec{machine.ExecPool, machine.ExecTeam}

// policyMachines returns one 4-worker machine per scheduling policy,
// closed on test cleanup. Policies[0] is Block — the reference cell.
func policyMachines(t *testing.T) []*machine.Machine {
	t.Helper()
	ms := make([]*machine.Machine, 0, len(sched.Policies))
	for _, pol := range sched.Policies {
		m := machine.New(4, machine.WithPolicy(pol))
		t.Cleanup(m.Close)
		ms = append(ms, m)
	}
	return ms
}

// runPolicyMatrix evaluates one kernel cell under every policy × backend
// and fails unless all projections match the block/pool reference.
func runPolicyMatrix(t *testing.T, ms []*machine.Machine, tag string, run func(m *machine.Machine, e machine.Exec) []byte) {
	t.Helper()
	var want []byte
	first := true
	for i, m := range ms {
		for _, e := range policyExecs {
			got := run(m, e)
			if first {
				want = got
				first = false
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: policy %v under %s diverges from %v/%s (projections %d vs %d bytes)",
					tag, sched.Policies[i], e, sched.Policies[0], policyExecs[0], len(got), len(want))
			}
		}
	}
}

func TestPolicyMatrixBFS(t *testing.T) {
	ms := policyMachines(t)
	for _, wl := range matrixGraphs() {
		// One kernel per machine: kernels borrow their machine for life.
		for name, variant := range map[string]func(*bfs.Kernel, machine.Exec) bfs.Result{
			"caslt":    func(k *bfs.Kernel, e machine.Exec) bfs.Result { return k.RunExec(e, cw.CASLT) },
			"frontier": func(k *bfs.Kernel, e machine.Exec) bfs.Result { return k.RunCASLTFrontierExec(e) },
			"hybrid":   func(k *bfs.Kernel, e machine.Exec) bfs.Result { return k.RunCASLTHybridExec(e) },
		} {
			kernels := make(map[*machine.Machine]*bfs.Kernel, len(ms))
			for _, m := range ms {
				kernels[m] = bfs.NewKernel(m, wl.g)
			}
			tag := fmt.Sprintf("%s bfs-%s", wl.name, name)
			runPolicyMatrix(t, ms, tag, func(m *machine.Machine, e machine.Exec) []byte {
				k := kernels[m]
				k.Prepare(0)
				r := variant(k, e)
				if err := bfs.ValidateBidir(wl.g, 0, r); err != nil {
					t.Fatalf("%s policy=%v under %s: %v", tag, m.Policy(), e, err)
				}
				return bfsProjection(r)
			})
		}
	}
}

func TestPolicyMatrixCC(t *testing.T) {
	ms := policyMachines(t)
	for _, wl := range matrixGraphs() {
		kernels := make(map[*machine.Machine]*cc.Kernel, len(ms))
		for _, m := range ms {
			kernels[m] = cc.NewKernel(m, wl.g)
		}
		tag := fmt.Sprintf("%s cc/caslt", wl.name)
		runPolicyMatrix(t, ms, tag, func(m *machine.Machine, e machine.Exec) []byte {
			k := kernels[m]
			k.Prepare()
			r := k.RunExec(e, cw.CASLT)
			if err := cc.Validate(wl.g, r); err != nil {
				t.Fatalf("%s policy=%v under %s: %v", tag, m.Policy(), e, err)
			}
			return u32bytes(canonicalPartition(r.Labels))
		})
		tag = fmt.Sprintf("%s cc/randmate", wl.name)
		runPolicyMatrix(t, ms, tag, func(m *machine.Machine, e machine.Exec) []byte {
			k := kernels[m]
			k.Prepare()
			r := k.RunRandMateExec(e, 42)
			if err := cc.Validate(wl.g, r); err != nil {
				t.Fatalf("%s policy=%v under %s: %v", tag, m.Policy(), e, err)
			}
			return u32bytes(canonicalPartition(r.Labels))
		})
	}
}

func TestPolicyMatrixMaxfindMIS(t *testing.T) {
	ms := policyMachines(t)

	list := make([]uint32, 300)
	for i := range list {
		list[i] = uint32((i * 131) % 197)
	}
	want := maxfind.Sequential(list)
	kernels := make(map[*machine.Machine]*maxfind.Kernel, len(ms))
	for _, m := range ms {
		kernels[m] = maxfind.NewKernel(m, len(list))
	}
	runPolicyMatrix(t, ms, "maxfind/caslt", func(m *machine.Machine, e machine.Exec) []byte {
		k := kernels[m]
		k.Prepare(list)
		got := k.RunExec(e, cw.CASLT)
		if got != want {
			t.Fatalf("maxfind policy=%v under %s: max %d, want %d", m.Policy(), e, got, want)
		}
		return []byte{byte(got), byte(got >> 8), byte(got >> 16), byte(got >> 24)}
	})

	for _, wl := range matrixGraphs() {
		misKernels := make(map[*machine.Machine]*mis.Kernel, len(ms))
		for _, m := range ms {
			misKernels[m] = mis.NewKernel(m, wl.g)
		}
		tag := fmt.Sprintf("%s mis/caslt", wl.name)
		runPolicyMatrix(t, ms, tag, func(m *machine.Machine, e machine.Exec) []byte {
			k := misKernels[m]
			k.Prepare()
			inSet := k.RunExec(e, cw.CASLT, 7)
			if err := mis.Validate(wl.g, inSet); err != nil {
				t.Fatalf("%s policy=%v under %s: %v", tag, m.Policy(), e, err)
			}
			return u32bytes(inSet)
		})
	}
}

func TestPolicyMatrixMatchingListRank(t *testing.T) {
	ms := policyMachines(t)

	for _, wl := range matrixGraphs() {
		kernels := make(map[*machine.Machine]*matching.Kernel, len(ms))
		for _, m := range ms {
			kernels[m] = matching.NewKernel(m, wl.g)
		}
		tag := fmt.Sprintf("%s matching", wl.name)
		runPolicyMatrix(t, ms, tag, func(m *machine.Machine, e machine.Exec) []byte {
			k := kernels[m]
			k.Prepare()
			r := k.RunExec(e, 7)
			if err := matching.Validate(wl.g, r); err != nil {
				t.Fatalf("%s policy=%v under %s: %v", tag, m.Policy(), e, err)
			}
			// At P=4 the arbitrary-write winners legitimately differ per
			// policy; the validator is the check (as in the exec matrix).
			return nil
		})
	}

	next := listrank.RandomList(2000, 2000)
	want := u32bytes(listrank.SequentialRank(next))
	runPolicyMatrix(t, ms, "listrank", func(m *machine.Machine, e machine.Exec) []byte {
		got := u32bytes(listrank.RankExec(m, e, next))
		if !bytes.Equal(got, want) {
			t.Fatalf("listrank policy=%v under %s: ranks diverge from sequential", m.Policy(), e)
		}
		return got
	})
}
