// The event-trace differential: every registered kernel runs the same
// fixed-seed inputs on a bare machine and on a machine carrying an
// evtrace flight recorder (machine.WithEventTrace, which implies
// metrics), across both timed backends and every method, and the
// deterministic projections must be byte-identical — the timeline layer
// observes the schedule, it must never perturb results. The recorder is
// sized small enough that deep-path workloads wrap its rings, so the
// matrix also covers flight-recorder overwrite. Each traced run's
// drained timeline is structurally validated (round spans present,
// summaries consistent, workers in range).
//
// The test names start with TestExec so CI's exec-matrix job (which
// runs -run 'TestRegistry|TestExec' under -race) picks them up: under
// -race they additionally prove the span-emission and live-counter
// paths are race-free against real concurrency.
package integration

import (
	"testing"

	"crcwpram/internal/kernel"

	_ "crcwpram/internal/alg/bfs"
	_ "crcwpram/internal/alg/cc"
	_ "crcwpram/internal/alg/listrank"
	_ "crcwpram/internal/alg/matching"
	_ "crcwpram/internal/alg/maxfind"
	_ "crcwpram/internal/alg/mis"
)

// TestExecEventTraceDifferentialMatrix byte-compares tracing-on against
// tracing-off for the whole registry at several worker counts.
func TestExecEventTraceDifferentialMatrix(t *testing.T) {
	if err := kernel.DifferentialEventTrace(kernel.Default, []int{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
}
