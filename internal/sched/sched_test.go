package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range Policies {
		got, ok := ParsePolicy(p.String())
		if !ok || got != p {
			t.Fatalf("ParsePolicy(%q) = (%v, %v)", p.String(), got, ok)
		}
	}
	if _, ok := ParsePolicy("what"); ok {
		t.Fatal("ParsePolicy accepted unknown name")
	}
}

func TestBlockRangePartition(t *testing.T) {
	cases := []struct{ n, p int }{
		{0, 1}, {0, 4}, {1, 1}, {1, 4}, {10, 3}, {10, 10}, {10, 16}, {1000, 7},
	}
	for _, c := range cases {
		covered := make([]int, c.n)
		prevHi := 0
		for w := 0; w < c.p; w++ {
			lo, hi := BlockRange(c.n, c.p, w)
			if lo != prevHi {
				t.Fatalf("n=%d p=%d w=%d: range [%d,%d) not contiguous with previous end %d", c.n, c.p, w, lo, hi, prevHi)
			}
			if hi < lo {
				t.Fatalf("n=%d p=%d w=%d: inverted range [%d,%d)", c.n, c.p, w, lo, hi)
			}
			size := hi - lo
			if size < c.n/c.p || size > c.n/c.p+1 {
				t.Fatalf("n=%d p=%d w=%d: unbalanced size %d", c.n, c.p, w, size)
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			prevHi = hi
		}
		if prevHi != c.n {
			t.Fatalf("n=%d p=%d: partition ends at %d", c.n, c.p, prevHi)
		}
		for i, k := range covered {
			if k != 1 {
				t.Fatalf("n=%d p=%d: index %d covered %d times", c.n, c.p, i, k)
			}
		}
	}
}

// Every policy must visit each index exactly once across the whole party,
// even when workers run concurrently.
func TestForExactCover(t *testing.T) {
	for _, policy := range Policies {
		for _, c := range []struct{ n, p, chunk int }{
			{0, 3, 4}, {1, 3, 4}, {17, 1, 4}, {100, 4, 7}, {1000, 8, 0}, {37, 5, 100},
		} {
			counts := make([]atomic.Int32, c.n)
			cur := NewCursor(policy, c.n, c.p, c.chunk)
			var wg sync.WaitGroup
			wg.Add(c.p)
			for w := 0; w < c.p; w++ {
				w := w
				go func() {
					defer wg.Done()
					For(policy, cur, c.n, c.p, w, func(i int) {
						counts[i].Add(1)
					})
				}()
			}
			wg.Wait()
			for i := range counts {
				if k := counts[i].Load(); k != 1 {
					t.Fatalf("%v n=%d p=%d chunk=%d: index %d visited %d times", policy, c.n, c.p, c.chunk, i, k)
				}
			}
		}
	}
}

func TestCursorSequentialExhaustion(t *testing.T) {
	cur := NewCursor(Dynamic, 10, 2, 4)
	var got []int
	for {
		lo, hi, ok := cur.Next()
		if !ok {
			break
		}
		for i := lo; i < hi; i++ {
			got = append(got, i)
		}
	}
	if len(got) != 10 {
		t.Fatalf("claimed %d indices, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("dynamic cursor out of order at %d: %d", i, v)
		}
	}
	// After exhaustion Next stays false.
	if _, _, ok := cur.Next(); ok {
		t.Fatal("cursor yielded after exhaustion")
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	cur := NewCursor(Guided, 10000, 4, 16)
	var sizes []int
	for {
		lo, hi, ok := cur.Next()
		if !ok {
			break
		}
		sizes = append(sizes, hi-lo)
	}
	if len(sizes) < 3 {
		t.Fatalf("guided produced only %d chunks", len(sizes))
	}
	if sizes[0] <= sizes[len(sizes)-1] && sizes[0] != 16 {
		t.Fatalf("guided chunks did not shrink: first=%d last=%d", sizes[0], sizes[len(sizes)-1])
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 10000 {
		t.Fatalf("guided chunks sum to %d, want 10000", total)
	}
	// No chunk below the minimum except possibly the final remainder.
	for i, s := range sizes[:len(sizes)-1] {
		if s < 16 {
			t.Fatalf("guided chunk %d has size %d < minimum 16", i, s)
		}
	}
}

// Regression: the constructor sanitizes degenerate shapes instead of
// relying on callers — chunk <= 0 falls back to the default, a negative
// index space is empty, and an oversubscribed party (n < p) still makes
// progress under Guided because grabs floor at the minimum chunk rather
// than shrinking to remaining/parties = 0.
func TestNewCursorClamps(t *testing.T) {
	// chunk <= 0: Dynamic grabs DefaultChunk, not 0 (which would spin).
	cur := NewCursor(Dynamic, 1000, 4, 0)
	lo, hi, ok := cur.Next()
	if !ok || lo != 0 || hi != DefaultChunk {
		t.Fatalf("Dynamic chunk<=0: first grab [%d,%d) ok=%v, want [0,%d)", lo, hi, ok, DefaultChunk)
	}
	cur = NewCursor(Dynamic, 1000, 4, -7)
	if _, hi, _ := cur.Next(); hi != DefaultChunk {
		t.Fatalf("Dynamic negative chunk: grab ends at %d, want %d", hi, DefaultChunk)
	}

	// Negative n: empty, exhausted immediately.
	cur = NewCursor(Dynamic, -10, 4, 16)
	if _, _, ok := cur.Next(); ok {
		t.Fatal("cursor over negative n yielded a chunk")
	}

	// n < p under Guided: remaining/parties is 0 for every grab, so the
	// floor at chunk is what makes progress. Exact cover, chunk-size grabs.
	cur = NewCursor(Guided, 10, 16, 4)
	var sizes []int
	total := 0
	for {
		lo, hi, ok := cur.Next()
		if !ok {
			break
		}
		sizes = append(sizes, hi-lo)
		total += hi - lo
	}
	if total != 10 {
		t.Fatalf("guided n<p covered %d indices, want 10", total)
	}
	for i, s := range sizes[:len(sizes)-1] {
		if s != 4 {
			t.Fatalf("guided n<p grab %d has size %d, want the 4-index floor", i, s)
		}
	}

	// p <= 0 is clamped to a party of one.
	cur = NewCursor(Guided, 100, 0, 10)
	if lo, hi, ok := cur.Next(); !ok || lo != 0 || hi-lo < 10 {
		t.Fatalf("guided p=0: first grab [%d,%d) ok=%v", lo, hi, ok)
	}
}

// Regression: Guided's geometric shrink floors at the minimum chunk — tail
// grabs must never degrade to per-index fetch-adds.
func TestGuidedFloorsAtChunk(t *testing.T) {
	cur := NewCursor(Guided, 5000, 8, 32)
	var sizes []int
	for {
		lo, hi, ok := cur.Next()
		if !ok {
			break
		}
		sizes = append(sizes, hi-lo)
	}
	for i, s := range sizes[:len(sizes)-1] {
		if s < 32 {
			t.Fatalf("guided grab %d has size %d < floor 32", i, s)
		}
	}
	if last := sizes[len(sizes)-1]; last > 32 && last != 5000%32 && sizes[0] == 32 {
		t.Fatalf("unexpected final grab %d", last)
	}
}

// Property: for any (n, p, policy, chunk) the partition is an exact cover.
func TestQuickExactCover(t *testing.T) {
	f := func(nRaw uint16, pRaw, chunkRaw uint8, polRaw uint8) bool {
		n := int(nRaw) % 2000
		p := int(pRaw)%16 + 1
		chunk := int(chunkRaw) % 64 // 0 exercises the default
		policy := Policies[int(polRaw)%len(Policies)]
		counts := make([]atomic.Int32, n)
		cur := NewCursor(policy, n, p, chunk)
		var wg sync.WaitGroup
		wg.Add(p)
		for w := 0; w < p; w++ {
			w := w
			go func() {
				defer wg.Done()
				For(policy, cur, n, p, w, func(i int) { counts[i].Add(1) })
			}()
		}
		wg.Wait()
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForPolicies(b *testing.B) {
	const n = 1 << 16
	for _, policy := range Policies {
		b.Run(policy.String(), func(b *testing.B) {
			var sink atomic.Int64
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				cur := NewCursor(policy, n, 4, 0)
				var wg sync.WaitGroup
				wg.Add(4)
				for w := 0; w < 4; w++ {
					w := w
					go func() {
						defer wg.Done()
						local := int64(0)
						For(policy, cur, n, 4, w, func(i int) { local += int64(i) })
						sink.Add(local)
					}()
				}
				wg.Wait()
			}
		})
	}
}
